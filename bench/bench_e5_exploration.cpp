// E5 — code-path exploration effectiveness (paper §2).
//
// "DiCE drives exploration by using concolic execution to produce inputs
// that systematically explore all possible paths at one node." This bench
// plots unique paths and branch coverage of the instrumented UPDATE
// handler against the execution budget, comparing:
//   - concolic: generational search with solver-negated constraints;
//   - grammar:  grammar-based fuzzing (valid-biased, no feedback);
//   - random:   uniform random bytes (blackbox baseline).
// Expected shape: concolic dominates both on paths per execution and on
// branch coverage; grammar beats random by parsing deeper.
#include <cstdio>

#include "bench_util.hpp"
#include "bgp/sym_update.hpp"
#include "bgp/topology.hpp"
#include "concolic/engine.hpp"
#include "fuzz/bgp_grammar.hpp"

namespace {

using namespace dice;

struct Coverage {
  std::uint64_t executions = 0;
  std::uint64_t unique_paths = 0;
  std::uint64_t branch_points = 0;
  std::uint64_t crashes = 0;
};

/// Runs `budget` executions of the handler over inputs from `next_input`,
/// tracking path/branch coverage the same way the engine does.
template <typename NextInput>
Coverage run_blackbox(const bgp::SymHandlerEnv& env, std::size_t budget,
                      NextInput&& next_input) {
  Coverage cov;
  std::unordered_set<std::uint64_t> paths;
  std::unordered_set<std::uint64_t> branches;
  for (std::size_t i = 0; i < budget; ++i) {
    concolic::SymCtx ctx(next_input());
    {
      concolic::SymScope scope(ctx);
      try {
        (void)bgp::sym_handle_update(ctx, env);
      } catch (const concolic::CrashSignal&) {
        ++cov.crashes;
      }
    }
    ++cov.executions;
    paths.insert(ctx.path().signature());
    for (const concolic::BranchRecord& r : ctx.path().records()) {
      branches.insert((static_cast<std::uint64_t>(r.site) << 1) | (r.taken ? 1 : 0));
    }
  }
  cov.unique_paths = paths.size();
  cov.branch_points = branches.size();
  return cov;
}

}  // namespace

int main() {
  using bench::fmt;

  std::puts("== E5: exploration effectiveness — concolic vs grammar vs random ==\n");

  const bgp::SystemBlueprint bp = bgp::make_internet({2, 3, 4});
  const bgp::RouterConfig config = bp.configs[3];
  bgp::SymHandlerEnv env;
  env.config = &config;
  env.neighbor_index = 0;

  bench::Table table({"budget (execs)", "strategy", "unique paths", "branch points",
                      "paths/100 execs"});

  for (const std::size_t budget : {100UL, 400UL, 1600UL}) {
    // --- concolic ----------------------------------------------------------
    {
      concolic::EngineOptions options;
      options.max_executions = static_cast<std::uint32_t>(budget);
      // Cap negation fan-out per execution: path conditions here run to
      // hundreds of records, and solving every suffix flip is what the
      // full engine does offline; the bench trades a little coverage for
      // a fast harness.
      options.max_branches_per_exec = 64;
      options.solver.search_budget = 2500;
      options.solver.restarts = 2;
      concolic::ConcolicEngine engine(
          [&env](concolic::SymCtx& ctx) { (void)bgp::sym_handle_update(ctx, env); }, options);
      util::Rng seed_rng(1);
      const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(config));
      for (int i = 0; i < 6; ++i) engine.add_seed(grammar.generate_body(seed_rng));
      const concolic::RunResult result = engine.run();
      table.row({std::to_string(budget), "concolic",
                 std::to_string(result.stats.unique_paths),
                 std::to_string(result.stats.branch_points),
                 fmt(100.0 * static_cast<double>(result.stats.unique_paths) /
                         static_cast<double>(result.stats.executions),
                     1)});
    }
    // --- grammar -----------------------------------------------------------
    {
      util::Rng rng(2);
      const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(config));
      const Coverage cov = run_blackbox(env, budget, [&] {
        return grammar.generate_body(rng, /*corruption_rate=*/0.05);
      });
      table.row({std::to_string(budget), "grammar", std::to_string(cov.unique_paths),
                 std::to_string(cov.branch_points),
                 fmt(100.0 * static_cast<double>(cov.unique_paths) /
                         static_cast<double>(cov.executions),
                     1)});
    }
    // --- random ------------------------------------------------------------
    {
      util::Rng rng(3);
      const Coverage cov = run_blackbox(env, budget, [&] {
        util::Bytes body(4 + rng.below(60));
        for (auto& b : body) b = rng.byte();
        return body;
      });
      table.row({std::to_string(budget), "random", std::to_string(cov.unique_paths),
                 std::to_string(cov.branch_points),
                 fmt(100.0 * static_cast<double>(cov.unique_paths) /
                         static_cast<double>(cov.executions),
                     1)});
    }
  }
  table.print();
  std::puts("\nexpected shape: concolic discovers the most distinct paths and branch");
  std::puts("directions at every budget; random plateaus almost immediately (inputs");
  std::puts("die in the first length checks).");
  return 0;
}
