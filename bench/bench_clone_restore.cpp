// E9 — clone setup cost: legacy clone_from vs the zero-redecode pipeline.
//
// The legacy path pays O(construct + decode) per clone: build a System from
// the blueprint, then re-parse every node checkpoint from raw bytes. The
// prepared path decodes once (PreparedSnapshot) and either constructs fresh
// Systems that apply typed state, or — the arena path — resets one reusable
// System per worker. This harness measures per-clone setup microseconds and
// checkpoint-decode counts for all three on the 27-router Figure 1 topology
// and emits one JSON line (also written to BENCH_clone_restore.json) for the
// perf-trajectory records. Acceptance: arena reset >= 2x faster than legacy.
#include <cstdio>

#include "bench_util.hpp"
#include "dice/system.hpp"
#include "explore/arena.hpp"

namespace {

using namespace dice;

struct Measurement {
  double us_per_clone = 0.0;
  double decodes_per_clone = 0.0;
};

constexpr std::size_t kClones = 64;

}  // namespace

int main() {
  using bench::fmt;

  std::puts("== E9: per-clone setup — legacy clone_from vs prepared reset ==\n");

  bgp::SystemBlueprint blueprint = bgp::make_internet();  // 27 routers
  bgp::inject_hijack(blueprint, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  auto prototype = std::make_shared<const core::SystemPrototype>(std::move(blueprint));

  core::System live(prototype);
  live.start();
  if (!live.converge()) {
    std::puts("live system failed to converge");
    return 1;
  }
  const snapshot::SnapshotId id = live.take_snapshot(0);
  if (id == 0) {
    std::puts("snapshot failed");
    return 1;
  }
  const snapshot::Snapshot* raw = live.snapshots().find(id);
  std::printf("snapshot: %zu nodes, %zu state bytes, %zu in flight\n\n", raw->nodes.size(),
              raw->total_state_bytes(), raw->total_in_flight());

  // Decode-once cost (amortized over every clone of the episode).
  const std::uint64_t decodes_prepare_before = bgp::checkpoint_decode_count();
  bench::Stopwatch prepare_watch;
  const auto prepared = live.prepare_snapshot(id);
  const double prepare_us = prepare_watch.ms() * 1000.0;
  const std::uint64_t prepare_decodes =
      bgp::checkpoint_decode_count() - decodes_prepare_before;
  if (prepared == nullptr) {
    std::puts("prepare_snapshot failed");
    return 1;
  }

  const auto measure = [](auto&& setup_one) {
    const std::uint64_t decodes_before = bgp::checkpoint_decode_count();
    bench::Stopwatch watch;
    for (std::size_t i = 0; i < kClones; ++i) setup_one();
    Measurement m;
    m.us_per_clone = watch.ms() * 1000.0 / static_cast<double>(kClones);
    m.decodes_per_clone =
        static_cast<double>(bgp::checkpoint_decode_count() - decodes_before) /
        static_cast<double>(kClones);
    return m;
  };

  const Measurement legacy = measure([&] {
    auto clone = core::System::clone_from(live.blueprint(), *raw);
    if (clone == nullptr) std::abort();
  });

  const Measurement prepared_fresh = measure([&] {
    core::System clone(prototype);
    if (!clone.reset_from(*prepared).ok()) std::abort();
  });

  explore::CloneArena arena;
  const Measurement arena_reset = measure([&] {
    bool reused = false;
    if (arena.acquire(prototype, *prepared, reused) == nullptr) std::abort();
  });

  bench::Table table({"path", "us/clone", "decodes/clone", "speedup vs legacy"});
  const auto row = [&](const char* name, const Measurement& m) {
    table.row({name, fmt(m.us_per_clone, 1), fmt(m.decodes_per_clone, 2),
               fmt(legacy.us_per_clone / m.us_per_clone, 2)});
  };
  row("legacy clone_from (construct + decode)", legacy);
  row("prepared, fresh System (construct + apply)", prepared_fresh);
  row("prepared, arena reset (apply only)", arena_reset);
  table.print();
  std::printf("\none-time prepare: %.1f us, %llu decode(s) — amortized over all clones\n",
              prepare_us, static_cast<unsigned long long>(prepare_decodes));

  const double speedup = legacy.us_per_clone / arena_reset.us_per_clone;
  std::printf("arena speedup >= 2x: %s (%.2fx)\n", speedup >= 2.0 ? "YES" : "NO", speedup);

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"clone_restore\",\"topology\":\"internet27\",\"clones\":%zu,"
                "\"legacy_us_per_clone\":%.2f,\"prepared_fresh_us_per_clone\":%.2f,"
                "\"arena_us_per_clone\":%.2f,\"prepare_once_us\":%.2f,"
                "\"legacy_decodes_per_clone\":%.2f,\"arena_decodes_per_clone\":%.2f,"
                "\"speedup_arena_vs_legacy\":%.2f}",
                kClones, legacy.us_per_clone, prepared_fresh.us_per_clone,
                arena_reset.us_per_clone, prepare_us, legacy.decodes_per_clone,
                arena_reset.decodes_per_clone, speedup);
  bench::emit_json("clone_restore", json);
  return 0;
}
