// E10 — matrix cell startup: fresh bootstrap per cell vs LiveStateCache.
//
// Every ScenarioMatrix cell needs a converged live system before its first
// episode. Without the cache each cell replays start()+converge from
// scratch; with it the first cell of a (scenario, seed) key donates a
// PreparedLiveState and the rest resume in microseconds. This harness runs
// the same reduced-budget matrix both ways, compares per-cell startup on
// the repeated-key cells, and asserts the two runs' fault sets are
// byte-identical (the smoke half: CI runs this binary, so a startup
// regression OR an equivalence break fails the check).
//
// Acceptance: cached repeated-cell startup >= 5x faster than fresh, and a
// bad-gadget bootstrap with the oscillation early-exit no longer burns the
// full event budget. Emits BENCH_matrix_startup.json.
#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include "bench_util.hpp"
#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"

namespace {

using namespace dice;

constexpr std::size_t kBootstrapBudget = 300'000;

[[nodiscard]] std::vector<explore::ScenarioSpec> scenarios() {
  std::vector<explore::ScenarioSpec> specs;
  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  specs.push_back({"internet9-hijack", std::move(hijack)});
  specs.push_back({"bad-gadget", bgp::make_bad_gadget()});
  specs.push_back({"ring6", bgp::make_ring(6)});
  return specs;
}

struct RunOutput {
  explore::CampaignResult result;
  std::string fault_lines;
};

[[nodiscard]] RunOutput run_matrix(bool cached, bool bootstrap_early_exit) {
  // Driven through the Campaign facade (one object instead of the old
  // ScenarioMatrix + ExplorePool wiring; the lowered options are
  // identical, so fault sets and timings stay comparable to earlier
  // receipts). Four strategies x one seed: every (scenario, seed) key is
  // hit four times, so three of every four cells are "repeated" — the
  // cells the cache is for.
  explore::CampaignOptions::Caching caching;
  caching.live_state_cache = cached;
  explore::CampaignOptions::Determinism determinism;
  determinism.seeds = {1};
  determinism.bootstrap_early_exit = bootstrap_early_exit;
  const explore::CampaignOptions options =
      explore::CampaignOptions::builder()
          .strategies({explore::StrategyKind::kGrammar, explore::StrategyKind::kRandom,
                       explore::StrategyKind::kGrammarStrict,
                       explore::StrategyKind::kConcolic})
          .determinism(std::move(determinism))
          .caching(caching)
          .episodes_per_cell(1)
          .bootstrap_events(kBootstrapBudget)
          .inputs_per_episode(4)
          .clone_event_budget(60'000)
          .parallelism(1)  // serial: per-cell timings stay comparable
          .build()
          .take();
  explore::Campaign campaign(scenarios(), options);
  RunOutput output;
  output.result = campaign.run();
  for (const core::FaultReport& fault : output.result.faults) {
    output.fault_lines += fault.to_string();
    output.fault_lines += "\n";
  }
  return output;
}

/// Mean startup of the cells a cache could serve: every cell of a key
/// except its first encounter in cross-product order.
[[nodiscard]] double repeated_cell_startup_ms(const explore::CampaignResult& result) {
  std::map<std::pair<std::string, std::uint64_t>, bool> seen;
  double total = 0.0;
  std::size_t count = 0;
  for (const explore::CellResult& cell : result.cells) {
    if (!seen.emplace(std::make_pair(cell.scenario, cell.seed), true).second) {
      total += cell.bootstrap_ms;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace

int main() {
  using bench::fmt;

  std::puts("== E10: matrix cell startup — fresh bootstrap vs LiveStateCache ==\n");

  // Three configurations:
  //   baseline — the seed behavior this PR replaces: every cell replays
  //              bootstrap AND a dispute wheel burns the full event budget
  //              (no oscillation exit for the live system);
  //   fresh    — bootstrap early-exit on, cache off: the equivalence
  //              reference for the cached run (same live states by
  //              construction, so fault sets must match byte for byte);
  //   cached   — this PR's default: early-exit + LiveStateCache.
  bench::Stopwatch baseline_watch;
  const RunOutput baseline = run_matrix(/*cached=*/false, /*bootstrap_early_exit=*/false);
  const double baseline_wall_ms = baseline_watch.ms();
  bench::Stopwatch fresh_watch;
  const RunOutput fresh = run_matrix(/*cached=*/false, /*bootstrap_early_exit=*/true);
  const double fresh_wall_ms = fresh_watch.ms();
  bench::Stopwatch cached_watch;
  const RunOutput cached = run_matrix(/*cached=*/true, /*bootstrap_early_exit=*/true);
  const double cached_wall_ms = cached_watch.ms();

  bench::Table cells({"scenario/strategy", "baseline boot ms", "fresh boot ms",
                      "cached boot ms", "resume"});
  for (std::size_t i = 0; i < fresh.result.cells.size(); ++i) {
    const explore::CellResult& b = baseline.result.cells[i];
    const explore::CellResult& f = fresh.result.cells[i];
    const explore::CellResult& c = cached.result.cells[i];
    cells.row({f.scenario + "/" + std::string(to_string(f.strategy)),
               fmt(b.bootstrap_ms, 3), fmt(f.bootstrap_ms, 3), fmt(c.bootstrap_ms, 3),
               c.bootstrap_from_cache ? "cache" : "fresh"});
  }
  cells.print();

  const double baseline_repeat_ms = repeated_cell_startup_ms(baseline.result);
  const double fresh_repeat_ms = repeated_cell_startup_ms(fresh.result);
  const double cached_repeat_ms = repeated_cell_startup_ms(cached.result);
  const double speedup =
      cached_repeat_ms > 0.0 ? baseline_repeat_ms / cached_repeat_ms : 0.0;
  const bool identical = fresh.fault_lines == cached.fault_lines &&
                         !fresh.fault_lines.empty();
  std::printf(
      "\nrepeated-(scenario, seed) cell startup: %.3f ms baseline -> %.3f ms fresh "
      "-> %.3f ms cached (%.1fx vs baseline); cache %llu miss / %llu hit "
      "(%llu uncacheable lookups)\n",
      baseline_repeat_ms, fresh_repeat_ms, cached_repeat_ms, speedup,
      static_cast<unsigned long long>(cached.result.live_cache.misses),
      static_cast<unsigned long long>(cached.result.live_cache.hits),
      static_cast<unsigned long long>(cached.result.live_cache.uncacheable));
  std::printf("fault sets byte-identical cached vs fresh: %s\n",
              identical ? "YES" : "NO (equivalence bug!)");

  // The other half of the startup story: a dispute-wheel bootstrap now
  // takes the deterministic oscillation exit instead of burning the budget.
  const auto gadget_events = [](bool early_exit) {
    explore::CampaignOptions::Determinism determinism;
    determinism.bootstrap_early_exit = early_exit;
    const core::DiceOptions options = explore::CampaignOptions::builder()
                                          .determinism(std::move(determinism))
                                          .build()
                                          .take()
                                          .to_dice_options();
    core::Orchestrator dice(bgp::make_bad_gadget(), options);
    (void)dice.bootstrap(kBootstrapBudget);
    return dice.live().simulator().executed();
  };
  const std::uint64_t gadget_full = gadget_events(/*early_exit=*/false);
  const std::uint64_t gadget_exit = gadget_events(/*early_exit=*/true);
  std::printf("bad-gadget bootstrap events: %llu (no exit) -> %llu (oscillation exit)\n",
              static_cast<unsigned long long>(gadget_full),
              static_cast<unsigned long long>(gadget_exit));

  char json[768];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"matrix_startup\",\"cells\":%zu,"
      "\"baseline_repeat_boot_ms\":%.3f,\"fresh_repeat_boot_ms\":%.3f,"
      "\"cached_repeat_boot_ms\":%.3f,\"startup_speedup\":%.1f,"
      "\"cache_misses\":%llu,\"cache_hits\":%llu,"
      "\"badgadget_bootstrap_events_full\":%llu,"
      "\"badgadget_bootstrap_events_early_exit\":%llu,"
      "\"baseline_wall_ms\":%.1f,\"fresh_wall_ms\":%.1f,\"cached_wall_ms\":%.1f,"
      "\"fault_sets_identical\":%s}",
      cached.result.cells.size(), baseline_repeat_ms, fresh_repeat_ms,
      cached_repeat_ms, speedup,
      static_cast<unsigned long long>(cached.result.live_cache.misses),
      static_cast<unsigned long long>(cached.result.live_cache.hits),
      static_cast<unsigned long long>(gadget_full),
      static_cast<unsigned long long>(gadget_exit), baseline_wall_ms, fresh_wall_ms,
      cached_wall_ms, identical ? "true" : "false");
  bench::emit_json("matrix_startup", json);

  const bool pass = identical && speedup >= 5.0 && gadget_exit * 4 < gadget_full;
  std::printf("\nacceptance (>=5x repeated-cell startup, early-exit bootstrap, "
              "identical faults): %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
