// Snapshot cost vs topology size vs churn: the delta-checkpoint receipt.
//
// Per-episode snapshots used to re-encode EVERY router's full state, so
// snapshot bytes (and encode latency) grew with topology size even when an
// episode churned a handful of routers. With delta checkpoints the cost
// follows churn: unchanged routers write one byte against the previous
// prepared snapshot. This harness runs make_internet at 27, 500 and 2000
// routers, takes a baseline cut, churns ~5% of the routers (administrative
// session resets — the paper's local-reset scenario), and re-snapshots on
// both paths. Emits one JSON line (also BENCH_snapshot_scale.json).
//
// Acceptance (exit 1 on breach): at 2000 nodes with <=5% churn, the delta
// cut is < 25% of the full cut's bytes.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dice/system.hpp"

namespace {

using namespace dice;

struct ScaleSpec {
  std::size_t tier1 = 0;
  std::size_t tier2 = 0;
  std::size_t stubs = 0;
  std::size_t originate_every = 1;  ///< thin origination so convergence stays bounded
};

struct Measurement {
  std::size_t nodes = 0;
  std::size_t churned = 0;      ///< routers administratively reset
  std::size_t full_bytes = 0;   ///< second cut, delta disabled
  std::size_t delta_bytes = 0;  ///< second cut, delta enabled
  std::size_t delta_nodes = 0;  ///< nodes that rode the 1-byte envelope
  double full_ms = 0.0;         ///< take_snapshot wall, full path
  double delta_ms = 0.0;        ///< take_snapshot wall, delta path
  bool ok = false;
};

/// One system runs the deterministic script on one encoding path: converge,
/// baseline cut (+prepare), churn `churned` routers, second cut. Returns the
/// second cut's byte count and take_snapshot latency.
bool run_path(const bgp::InternetTopologyParams& params, std::size_t churned, bool delta,
              Measurement& out) {
  core::System system(bgp::make_internet(params));
  system.set_delta_checkpoints(delta);
  system.start();
  if (!system.converge(20'000'000, 7200 * sim::kSecond)) {
    std::printf("  %zu nodes: convergence failed\n", system.size());
    return false;
  }
  const snapshot::SnapshotId baseline = system.take_snapshot(0);
  if (baseline == 0 || system.prepare_snapshot(baseline) == nullptr) return false;

  // Churn: spread administrative session resets across the topology. Each
  // reset dirties the router immediately (and its peer once the NOTIFICATION
  // lands during the marker sweep).
  const std::size_t stride = std::max<std::size_t>(1, system.size() / std::max<std::size_t>(churned, 1));
  for (std::size_t i = 0; i < churned; ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>((i * stride) % system.size());
    const auto& neighbors = system.network().neighbors(node);
    if (!neighbors.empty()) system.router(node).reset_session(neighbors.front());
  }

  bench::Stopwatch watch;
  const snapshot::SnapshotId second = system.take_snapshot(0);
  const double ms = watch.ms();
  if (second == 0) return false;
  const snapshot::Snapshot* raw = system.snapshots().find(second);
  if (raw == nullptr) return false;

  if (delta) {
    out.delta_bytes = raw->total_state_bytes();
    out.delta_ms = ms;
    for (const auto& [node, checkpoint] : raw->nodes) {
      if (checkpoint.state.size() == 1 &&
          checkpoint.state[0] == snapshot::kCheckpointSameAsBaseline) {
        ++out.delta_nodes;
      }
    }
    // The delta cut must still prepare (resolve against the baseline).
    if (system.prepare_snapshot(second) == nullptr) return false;
  } else {
    out.full_bytes = raw->total_state_bytes();
    out.full_ms = ms;
  }
  out.nodes = system.size();
  return true;
}

Measurement measure(const ScaleSpec& spec) {
  Measurement m;
  bgp::InternetTopologyParams params;
  params.tier1 = spec.tier1;
  params.tier2 = spec.tier2;
  params.stubs = spec.stubs;
  params.originate_every = spec.originate_every;
  const std::size_t total = spec.tier1 + spec.tier2 + spec.stubs;
  m.churned = std::max<std::size_t>(1, total / 40);  // ~2.5% resets => ~5% dirtied
  m.ok = run_path(params, m.churned, /*delta=*/false, m) &&
         run_path(params, m.churned, /*delta=*/true, m);
  return m;
}

}  // namespace

int main() {
  using bench::fmt;
  using bench::fmt_count;

  std::puts("== snapshot scale: full vs delta checkpoint cost ==\n");

  const std::vector<ScaleSpec> scales = {
      {3, 8, 16, 1},       // the Figure 1 demo topology (27 routers)
      {5, 45, 450, 10},    // 500 routers, 50 originated prefixes
      {8, 192, 1800, 50},  // 2000 routers, 40 originated prefixes
  };

  std::vector<Measurement> results;
  for (const ScaleSpec& spec : scales) {
    const std::size_t total = spec.tier1 + spec.tier2 + spec.stubs;
    std::printf("measuring %zu routers...\n", total);
    results.push_back(measure(spec));
    if (!results.back().ok) {
      std::printf("measurement failed at %zu routers\n", total);
      return 1;
    }
  }

  bench::Table table({"nodes", "churned", "full B", "delta B", "ratio", "delta nodes",
                      "full snap ms", "delta snap ms"});
  for (const Measurement& m : results) {
    table.row({fmt_count(m.nodes), fmt_count(m.churned), fmt_count(m.full_bytes),
               fmt_count(m.delta_bytes),
               fmt(static_cast<double>(m.delta_bytes) / static_cast<double>(m.full_bytes), 3),
               fmt_count(m.delta_nodes), fmt(m.full_ms), fmt(m.delta_ms)});
  }
  table.print();

  std::string json = "{\"bench\":\"snapshot_scale\",\"scales\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    if (i != 0) json += ",";
    json += "{\"nodes\":" + std::to_string(m.nodes) +
            ",\"churned\":" + std::to_string(m.churned) +
            ",\"full_bytes\":" + std::to_string(m.full_bytes) +
            ",\"delta_bytes\":" + std::to_string(m.delta_bytes) +
            ",\"delta_nodes\":" + std::to_string(m.delta_nodes) +
            ",\"full_snapshot_ms\":" + bench::fmt(m.full_ms) +
            ",\"delta_snapshot_ms\":" + bench::fmt(m.delta_ms) + "}";
  }
  json += "]}";
  bench::emit_json("snapshot_scale", json);

  // The acceptance gate: at the largest scale, delta bytes < 25% of full.
  const Measurement& largest = results.back();
  const double ratio =
      static_cast<double>(largest.delta_bytes) / static_cast<double>(largest.full_bytes);
  if (ratio >= 0.25) {
    std::printf("\nFAIL: delta/full byte ratio %.3f >= 0.25 at %zu nodes\n", ratio,
                largest.nodes);
    return 1;
  }
  std::printf("\nOK: delta cut is %.1f%% of the full cut at %zu nodes (%zu churned)\n",
              ratio * 100.0, largest.nodes, largest.churned);
  return 0;
}
