// E1 — operator-mistake detection latency (prefix hijack).
//
// §3 of the paper: "our prototype quickly detects faults that can occur
// due to ... operator mistakes". This bench measures how many clone probes
// (baseline + subjected inputs) and how much wall time DiCE needs to flag
// a hijack on the 27-router topology, for both hijack variants and for
// each input-generation strategy. The origin check fires on the baseline
// clone of the first episode whose snapshot contains the poisoned state,
// so detection is expected within the first handful of probes regardless
// of strategy — the strategies differentiate on the *programming error*
// class (bench_e3), not here.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"

namespace {

using namespace dice;

struct Scenario {
  const char* name;
  bool more_specific;
};

std::unique_ptr<core::InputStrategy> make_strategy(const std::string& which) {
  if (which == "concolic") return std::make_unique<core::ConcolicStrategy>();
  if (which == "grammar") return std::make_unique<core::GrammarStrategy>();
  return std::make_unique<core::RandomStrategy>();
}

}  // namespace

int main() {
  using bench::fmt;
  using bench::Stopwatch;

  std::puts("== E1: time-to-detection for prefix hijacks (operator mistakes) ==\n");

  bench::Table table({"scenario", "strategy", "episodes", "probes to detect", "wall ms",
                      "detected"});

  for (const Scenario scenario : {Scenario{"same-prefix MOAS", false},
                                  Scenario{"more-specific /24", true}}) {
    for (const char* strategy_name : {"concolic", "grammar", "random"}) {
      bgp::SystemBlueprint blueprint = bgp::make_internet();
      bgp::inject_hijack(blueprint, /*victim=*/12, /*attacker=*/20, scenario.more_specific);

      // Validated through the Campaign builder, lowered to the orchestrator
      // options this single-system harness drives directly.
      core::DiceOptions options = explore::CampaignOptions::builder()
                                      .inputs_per_episode(16)
                                      .build()
                                      .take()
                                      .to_dice_options();
      options.stop_on_first_fault = true;  // measure detection latency exactly
      core::Orchestrator dice(std::move(blueprint), options);
      if (!dice.bootstrap()) continue;

      auto strategy = make_strategy(strategy_name);
      Stopwatch clock;
      const std::size_t probes = dice.explore_until_fault(
          *strategy, core::FaultClass::kOperatorMistake, /*max_episodes=*/8);
      const double elapsed = clock.ms();
      table.row({scenario.name, strategy_name, std::to_string(dice.episodes_run()),
                 probes == SIZE_MAX ? "-" : std::to_string(probes), fmt(elapsed, 1),
                 probes == SIZE_MAX ? "NO" : "yes"});
    }
  }
  table.print();
  std::puts("\nexpected shape: both hijack variants detected in the first episode (the");
  std::puts("baseline clone already carries the poisoned state); wall time in the tens");
  std::puts("of milliseconds at 27-router scale.");
  return 0;
}
