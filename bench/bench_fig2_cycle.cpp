// F2 — Figure 2 reproduction: cost of the DiCE cycle stages.
//
// The paper's Figure 2 shows the loop: (1) choose explorer + trigger
// snapshot, (2) establish consistent shadow snapshot, (3..5) explore
// inputs over cloned snapshots, then check. This bench measures each
// stage's wall-clock cost as the system grows from 5 to 27 routers —
// the expected shape (per the paper's "lightweight checkpoints" claim)
// is that snapshotting stays in the sub-millisecond range and the cycle
// is dominated by exploration, not by snapshot creation.
#include <cstdio>

#include "bench_util.hpp"
#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"

int main() {
  using namespace dice;
  using bench::fmt;

  std::puts("== F2: snapshot -> clone -> explore -> check cycle cost vs system size ==\n");

  bench::Table table({"routers", "links", "snapshot ms", "clone ms (avg)", "explore ms (avg)",
                      "check ms (avg)", "cycle total ms", "snapshot share %"});

  for (const std::size_t stubs : {2UL, 6UL, 10UL, 16UL}) {
    // tier1=3, tier2=8 fixed; stubs grows the edge: 13, 17, 21, 27 routers.
    bgp::InternetTopologyParams params;
    params.stubs = stubs;
    bgp::SystemBlueprint blueprint = bgp::make_internet(params);
    const std::size_t n_links = blueprint.links.size();

    const core::DiceOptions options = explore::CampaignOptions::builder()
                                          .inputs_per_episode(16)
                                          .build()
                                          .take()
                                          .to_dice_options();
    core::Orchestrator dice(std::move(blueprint), options);
    if (!dice.bootstrap()) {
      std::printf("(%zu stubs: bootstrap failed)\n", stubs);
      continue;
    }

    core::GrammarStrategy strategy;
    double snapshot_ms = 0;
    double clone_ms = 0;
    double explore_ms = 0;
    double check_ms = 0;
    std::size_t clones = 0;
    const int episodes = 3;
    for (int i = 0; i < episodes; ++i) {
      const core::EpisodeResult episode = dice.run_episode(strategy);
      snapshot_ms += episode.snapshot_ms;
      clone_ms += episode.clone_ms;
      explore_ms += episode.explore_ms;
      check_ms += episode.check_ms;
      clones += episode.clones_run;
    }
    snapshot_ms /= episodes;
    const double avg_clone = clone_ms / static_cast<double>(clones);
    const double avg_explore = explore_ms / static_cast<double>(clones);
    const double avg_check = check_ms / static_cast<double>(clones);
    const double cycle =
        snapshot_ms + (clone_ms + explore_ms + check_ms) / episodes;
    table.row({std::to_string(dice.live().size()), std::to_string(n_links),
               fmt(snapshot_ms, 3), fmt(avg_clone, 3), fmt(avg_explore, 3), fmt(avg_check, 3),
               fmt(cycle, 2), fmt(100.0 * snapshot_ms / cycle, 1)});
  }
  table.print();
  std::puts("\nexpected shape: snapshot cost is a small, roughly constant slice of the");
  std::puts("cycle; per-clone exploration dominates — matching the paper's lightweight-");
  std::puts("checkpoint design (testing runs beside the live system, not inside it).");
  return 0;
}
