// F1 — Figure 1 reproduction: DiCE exploring a 27-router BGP topology
// with Internet-like conditions.
//
// The paper's demo shows a GUI over a live 27-router system while DiCE
// runs exploration episodes. This harness reproduces the experiment as a
// textual episode timeline: the system converges, all three fault classes
// are latently present (hijack config, a dispute wheel among three stubs'
// preferences is NOT injected here — policy conflict comes from its own
// bench — plus a parser bug), and episodes rotate explorers until every
// fault class surfaces.
#include <cstdio>

#include "bench_util.hpp"
#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"

int main() {
  using namespace dice;
  using bench::fmt;
  using bench::Stopwatch;

  std::puts("== F1: DiCE over the 27-router Internet-like topology (paper Fig. 1) ==\n");

  bgp::SystemBlueprint blueprint = bgp::make_internet();  // 3 + 8 + 16 = 27
  // Latent faults for the demo, one per class:
  //  - operator mistake: stub r20 originates a /24 of stub r12's block;
  //  - programming error: tier-2 router r5 has the COMMUNITY-length bug.
  bgp::inject_hijack(blueprint, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  bgp::inject_bug(blueprint, /*node=*/5, bgp::bugs::kCommunityLength);

  const core::DiceOptions options = explore::CampaignOptions::builder()
                                        .inputs_per_episode(24)
                                        .build()
                                        .take()
                                        .to_dice_options();
  core::Orchestrator dice(std::move(blueprint), options);

  Stopwatch boot;
  const bool converged = dice.bootstrap();
  std::printf("live system: %zu routers, converged=%s in %.1f ms (%zu routes, %zu sessions)\n\n",
              dice.live().size(), converged ? "yes" : "no", boot.ms(),
              dice.live().total_loc_rib_routes(), dice.live().established_sessions());

  core::ConcolicStrategy strategy;
  bench::Table table({"episode", "explorer", "inputs", "clones", "reused", "snap KB",
                      "snapshot ms", "restore ms", "clone ms", "explore ms", "check ms",
                      "new faults"});

  std::size_t found_classes = 0;
  bool seen[3] = {};
  std::size_t clones_total = 0;
  std::size_t reused_total = 0;
  double restore_total_ms = 0.0;
  double clone_total_ms = 0.0;
  Stopwatch total;
  for (int i = 0; i < 12 && found_classes < 2; ++i) {
    const core::EpisodeResult episode = dice.run_episode(strategy);
    for (const core::FaultReport& fault : episode.faults) {
      const auto index = static_cast<std::size_t>(fault.fault_class);
      if (!seen[index]) {
        seen[index] = true;
        ++found_classes;
      }
    }
    clones_total += episode.clones_run;
    reused_total += episode.clones_reused;
    restore_total_ms += episode.restore_ms;
    clone_total_ms += episode.clone_ms;
    table.row({std::to_string(episode.episode), "r" + std::to_string(episode.explorer),
               std::to_string(episode.inputs_subjected), std::to_string(episode.clones_run),
               std::to_string(episode.clones_reused),
               fmt(static_cast<double>(episode.snapshot_bytes) / 1024.0, 1),
               fmt(episode.snapshot_ms), fmt(episode.restore_ms), fmt(episode.clone_ms),
               fmt(episode.explore_ms), fmt(episode.check_ms),
               std::to_string(episode.faults.size())});
  }
  table.print();

  std::printf("\ntotal: %zu episodes, %.1f ms wall clock\n", dice.episodes_run(), total.ms());
  std::printf(
      "prepared pipeline: %zu/%zu clones served by arena reuse; decode-once %.1f ms, "
      "per-clone setup %.1f ms total\n",
      reused_total, clones_total, restore_total_ms, clone_total_ms);
  std::printf("concolic totals: %llu executions, %llu unique paths, %llu branch points\n",
              static_cast<unsigned long long>(strategy.stats().executions),
              static_cast<unsigned long long>(strategy.stats().unique_paths),
              static_cast<unsigned long long>(strategy.stats().branch_points));

  std::printf("\nfaults detected:\n%s",
              core::render_fault_table(dice.all_faults()).c_str());
  std::printf("\nfault classes covered: %zu/2 latent (operator mistake + programming error)\n",
              found_classes);
  return found_classes >= 2 ? 0 : 1;
}
