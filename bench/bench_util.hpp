// Shared helpers for the experiment harnesses: wall-clock timing and
// aligned table printing so every bench emits paper-style rows.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dice::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    const auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < cells.size() ? cells[i] : std::string{};
        std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t w : widths) std::printf("%s|", std::string(w + 2, '-').c_str());
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// The machine-readable receipt every harness emits: prints the JSON line
/// to stdout and mirrors it to BENCH_<name>.json for the perf-trajectory
/// records (CI and later sessions diff these files, not the tables).
/// Every receipt gets a "metrics" section — the global registry snapshot
/// at emit time (empty `{}` sections in a -DDICE_OBS=OFF build) — so the
/// perf records carry the telemetry view of the same run for free.
inline void emit_json(const std::string& name, const std::string& json) {
  std::string line = json;
  const std::size_t close = line.rfind('}');
  if (close != std::string::npos) {
    line.insert(close,
                ",\"metrics\":" + obs::MetricsRegistry::global().snapshot().to_json());
  }
  std::printf("\n%s\n", line.c_str());
  const std::string path = "BENCH_" + name + ".json";
  if (FILE* out = std::fopen(path.c_str(), "w")) {
    std::fprintf(out, "%s\n", line.c_str());
    std::fclose(out);
  }
}

[[nodiscard]] inline std::string fmt(double value, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

[[nodiscard]] inline std::string fmt_count(std::uint64_t value) {
  return std::to_string(value);
}

}  // namespace dice::bench
