// E4 — DiCE's overhead on the live node (google-benchmark micro suite).
//
// §3: "Our evaluation ... demonstrates DiCE's ... low overhead". Three
// costs matter on the live path:
//   1. instrumentation tax: the Sym* scalar types degrade to plain integer
//      operations when no recording context is active — UPDATE decode with
//      the concrete codec vs the instrumented handler outside/inside a
//      SymScope quantifies the tax and the recording cost;
//   2. checkpoint cost vs RIB size (the "lightweight node checkpoints");
//   3. the marker-protocol snapshot while the system is serving.
#include <benchmark/benchmark.h>

#include "bgp/codec.hpp"
#include "bgp/sym_update.hpp"
#include "dice/system.hpp"
#include "fuzz/bgp_grammar.hpp"

namespace {

using namespace dice;

[[nodiscard]] util::Bytes sample_update_message() {
  bgp::UpdateMessage update;
  update.attrs.origin = bgp::Origin::kIgp;
  update.attrs.as_path = bgp::AsPath{{65001, 65002, 65003}};
  update.attrs.next_hop = util::IpAddress{10, 0, 0, 2};
  update.attrs.med = 50;
  update.attrs.add_community(bgp::make_community(65001, 100));
  update.nlri.push_back(util::IpPrefix{util::IpAddress{10, 1, 0, 0}, 16});
  update.nlri.push_back(util::IpPrefix{util::IpAddress{10, 2, 0, 0}, 16});
  return bgp::encode(bgp::Message{update}).value();
}

[[nodiscard]] bgp::RouterConfig handler_config() {
  return bgp::make_internet({2, 3, 4}).configs[3];
}

/// Baseline: the plain concrete decoder (what a vanilla router runs).
void BM_DecodeConcrete(benchmark::State& state) {
  const util::Bytes message = sample_update_message();
  for (auto _ : state) {
    auto decoded = bgp::decode(message);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeConcrete);

/// Fair baseline for the instrumented handler: concrete decode PLUS the
/// concrete import-policy evaluation over every NLRI entry (the handler
/// performs both).
void BM_DecodeAndImportConcrete(benchmark::State& state) {
  const bgp::RouterConfig config = handler_config();
  const bgp::Policy& policy = config.neighbors[0].import_policy;
  const util::Bytes message = sample_update_message();
  for (auto _ : state) {
    auto decoded = bgp::decode(message);
    const auto& update = std::get<bgp::UpdateMessage>(decoded.value());
    std::size_t accepted = 0;
    for (const util::IpPrefix& prefix : update.nlri) {
      bgp::Route route;
      route.prefix = prefix;
      route.attrs = update.attrs;
      if (bgp::evaluate(policy, std::move(route), config.asn).accepted) ++accepted;
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeAndImportConcrete);

/// The instrumented handler with NO active context: this is the live-node
/// tax of shipping instrumented code (paper: negligible). Includes the
/// same decode + import-policy work as BM_DecodeAndImportConcrete.
void BM_DecodeInstrumentedIdle(benchmark::State& state) {
  const bgp::RouterConfig config = handler_config();
  bgp::SymHandlerEnv env;
  env.config = &config;
  const util::Bytes message = sample_update_message();
  const auto body = bgp::unwrap_update_body(message);
  for (auto _ : state) {
    concolic::SymCtx ctx(*body);  // constructed but NOT activated
    auto result = bgp::sym_handle_update(ctx, env);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeInstrumentedIdle);

/// The instrumented handler while recording (exploration-time cost, paid
/// only on clones — never on the live node).
void BM_DecodeInstrumentedRecording(benchmark::State& state) {
  const bgp::RouterConfig config = handler_config();
  bgp::SymHandlerEnv env;
  env.config = &config;
  const util::Bytes message = sample_update_message();
  const auto body = bgp::unwrap_update_body(message);
  for (auto _ : state) {
    concolic::SymCtx ctx(*body);
    concolic::SymScope scope(ctx);
    auto result = bgp::sym_handle_update(ctx, env);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeInstrumentedRecording);

/// Checkpoint cost as the Loc-RIB grows (the "lightweight checkpoint").
void BM_CheckpointVsRibSize(benchmark::State& state) {
  const std::size_t routes = static_cast<std::size_t>(state.range(0));
  core::System system(bgp::make_line(2));
  system.start();
  (void)system.converge();
  // Feed `routes` synthetic announcements into router 0 from router 1.
  util::Rng rng(7);
  for (std::size_t i = 0; i < routes; ++i) {
    bgp::UpdateMessage update;
    update.attrs.origin = bgp::Origin::kIgp;
    update.attrs.as_path = bgp::AsPath{{bgp::node_asn(1)}};
    update.attrs.next_hop = bgp::node_address(1);
    update.nlri.push_back(util::IpPrefix{
        util::IpAddress{static_cast<std::uint32_t>((20 << 24) | (i << 8))}, 24});
    system.inject_message(1, 0, bgp::encode(bgp::Message{update}).value());
  }
  (void)system.converge();

  for (auto _ : state) {
    util::ByteWriter writer;
    system.router(0).checkpoint(writer);
    benchmark::DoNotOptimize(writer.size());
  }
  state.counters["rib_routes"] =
      static_cast<double>(system.router(0).loc_rib().size());
  util::ByteWriter writer;
  system.router(0).checkpoint(writer);
  state.counters["checkpoint_bytes"] = static_cast<double>(writer.size());
}
BENCHMARK(BM_CheckpointVsRibSize)->Arg(10)->Arg(100)->Arg(1000)->Arg(5000);

/// Consistent snapshot of a live 27-router system (marker protocol sweep).
void BM_ConsistentSnapshot27(benchmark::State& state) {
  core::System system(bgp::make_internet());
  system.start();
  (void)system.converge();
  for (auto _ : state) {
    auto id = system.take_snapshot(0);
    benchmark::DoNotOptimize(id);
    system.snapshots().trim(1);  // bounded memory across iterations
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ConsistentSnapshot27);

/// End-to-end router work with instrumentation shipped but idle: full
/// convergence of the 27-router topology (the live "serving" path).
void BM_Converge27(benchmark::State& state) {
  for (auto _ : state) {
    core::System system(bgp::make_internet());
    system.start();
    const bool converged = system.converge();
    benchmark::DoNotOptimize(converged);
  }
}
BENCHMARK(BM_Converge27)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
