// Differential testing receipt: the heterogeneity PR must not move the
// committed topology27 fault bytes, and the differential check must have
// real coverage.
//
// Part 1 re-runs bench_explore_scale's topology27 configuration (all
// reference-engine nodes) at workers 1/2/4/8 and fails unless every run
// hashes to the committed value 63f680b04458c2a9 — the proof that the
// NodeImplementation boundary, the implementation axis, and the
// differential machinery left the historic byte streams untouched.
//
// Part 2 runs a mixed-engine campaign whose ring carries the seeded
// bgp2-only decision defect (bugs::kLongPathPreferred) and fails unless
// the implementation-divergence fault class actually surfaces — the proof
// that differential coverage is live, not vacuously green.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bgp/bugs.hpp"
#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"
#include "util/hash.hpp"

namespace {

constexpr std::uint64_t kTopology27FaultHash = 0x63f680b04458c2a9ULL;

[[nodiscard]] std::uint64_t fault_hash(const std::vector<dice::core::FaultReport>& faults) {
  std::uint64_t h = dice::util::kFnvOffset;
  for (const dice::core::FaultReport& fault : faults) {
    h = dice::util::fnv1a(fault.to_string(), h);
  }
  return dice::util::hash_finalize(h);
}

}  // namespace

int main() {
  using namespace dice;
  using bench::fmt;
  using bench::Stopwatch;

  std::puts("== Differential testing: determinism receipt + divergence coverage ==\n");

  // Part 1: the committed all-reference-engine fault-set hash.
  bench::Table receipt({"workers", "faults", "hash", "match", "ms"});
  bool hash_ok = true;
  double receipt_ms = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    bgp::SystemBlueprint blueprint = bgp::make_internet();  // 27 routers
    bgp::inject_hijack(blueprint, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
    bgp::inject_bug(blueprint, /*node=*/5, bgp::bugs::kCommunityLength);

    core::DiceOptions options;
    options.inputs_per_episode = 32;
    options.parallelism = workers;
    core::Orchestrator dice(std::move(blueprint), options);
    if (!dice.bootstrap()) {
      std::puts("FAIL: topology27 did not converge");
      return 1;
    }
    core::GrammarStrategy strategy(/*corruption_rate=*/0.05, /*rng_seed=*/0xf1f1);
    Stopwatch watch;
    for (std::size_t i = 0; i < 2; ++i) (void)dice.run_episode(strategy);
    const double ms = watch.ms();
    receipt_ms += ms;

    const std::uint64_t hash = fault_hash(dice.all_faults());
    const bool match = hash == kTopology27FaultHash;
    hash_ok = hash_ok && match;
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(hash));
    receipt.row({std::to_string(workers), std::to_string(dice.all_faults().size()), hex,
                 match ? "yes" : "NO", fmt(ms, 1)});
  }
  receipt.print();
  std::printf("\ncommitted hash %016llx %s\n\n",
              static_cast<unsigned long long>(kTopology27FaultHash),
              hash_ok ? "reproduced at every worker count" : "DRIFTED — failing");

  // Part 2: a mixed campaign with the seeded decision defect must surface
  // the implementation-divergence fault class.
  std::vector<explore::ScenarioSpec> scenarios;
  {
    bgp::SystemBlueprint mixed = bgp::make_internet({2, 3, 4});
    bgp::inject_hijack(mixed, /*victim=*/5, /*attacker=*/8);
    for (std::size_t node = 0; node < mixed.size(); ++node) {
      if (node % 2 == 1) mixed.set_implementation(node, "fsm");
    }
    scenarios.push_back({"internet9-hijack-mixed", std::move(mixed)});

    bgp::SystemBlueprint divergent = bgp::make_ring(4);
    divergent.set_implementation(3, "fsm");
    bgp::inject_bug(divergent, /*node=*/3, bgp::bugs::kLongPathPreferred);
    scenarios.push_back({"ring4-divergent", std::move(divergent)});
  }

  explore::CampaignOptions options;
  options.strategies = {explore::StrategyKind::kGrammar, explore::StrategyKind::kRandom};
  options.determinism.seeds = {1, 2};
  options.budgets.inputs_per_episode = 8;
  options.parallelism.workers = 4;
  options.parallelism.nested = true;
  options.caching.delta_snapshots = true;

  Stopwatch soak;
  explore::Campaign campaign(std::move(scenarios), options);
  const explore::CampaignResult result = campaign.run();
  const double soak_ms = soak.ms();

  std::size_t divergences = 0;
  for (const core::FaultReport& fault : result.faults) {
    if (fault.fault_class == core::FaultClass::kImplementationDivergence) ++divergences;
  }
  const bool coverage_ok =
      divergences > 0 && result.cells_completed == result.cells.size();

  bench::Table soak_table({"cells", "completed", "faults", "divergences", "ms"});
  soak_table.row({std::to_string(result.cells.size()), std::to_string(result.cells_completed),
                  std::to_string(result.faults.size()), std::to_string(divergences),
                  fmt(soak_ms, 1)});
  soak_table.print();
  std::printf("\ndifferential coverage: %zu implementation-divergence fault(s) %s\n",
              divergences, coverage_ok ? "(live)" : "(MISSING — failing)");

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"differential\",\"hash\":\"%016llx\",\"hash_ok\":%s,"
                "\"receipt_ms\":%.1f,\"cells\":%zu,\"divergences\":%zu,"
                "\"coverage_ok\":%s,\"soak_ms\":%.1f}",
                static_cast<unsigned long long>(kTopology27FaultHash),
                hash_ok ? "true" : "false", receipt_ms, result.cells.size(), divergences,
                coverage_ok ? "true" : "false", soak_ms);
  bench::emit_json("differential", json);

  return (hash_ok && coverage_ok) ? 0 : 1;
}
