// E6 — grammar-based fuzzing valid-input rate (paper §2 insight iii).
//
// "We subject the node's code to small-sized inputs, and apply grammar-
// based fuzzing to produce a large number of valid inputs." This bench
// measures the fraction of generated UPDATE messages the strict decoder
// accepts, plus generation throughput, across generator configurations.
#include <cstdio>

#include "bench_util.hpp"
#include "bgp/codec.hpp"
#include "bgp/sym_update.hpp"
#include "bgp/topology.hpp"
#include "fuzz/bgp_grammar.hpp"
#include "fuzz/mutator.hpp"

int main() {
  using namespace dice;
  using bench::fmt;
  using bench::Stopwatch;

  std::puts("== E6: valid-input rate — grammar fuzzing vs byte-level baselines ==\n");

  const bgp::SystemBlueprint bp = bgp::make_internet();
  const bgp::RouterConfig config = bp.configs[5];
  const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(config));
  const int total = 4000;

  bench::Table table({"generator", "valid %", "decode-error %", "avg bytes", "gen+decode us/input"});

  const auto measure = [&](const char* name, auto&& produce) {
    util::Rng rng(99);
    int valid = 0;
    std::size_t bytes = 0;
    Stopwatch clock;
    for (int i = 0; i < total; ++i) {
      const util::Bytes message = produce(rng);
      bytes += message.size();
      try {
        if (bgp::decode(message).ok()) ++valid;
      } catch (const concolic::CrashSignal&) {
        // bug-free config here; defensive
      }
    }
    const double us_per = clock.ms() * 1000.0 / total;
    table.row({name, fmt(100.0 * valid / total, 1), fmt(100.0 * (total - valid) / total, 1),
               fmt(static_cast<double>(bytes) / total, 1), fmt(us_per, 2)});
  };

  measure("grammar (valid-biased)", [&](util::Rng& rng) {
    return grammar.generate_message(rng, /*corruption_rate=*/0.0);
  });
  measure("grammar (5% corruption)", [&](util::Rng& rng) {
    return grammar.generate_message(rng, /*corruption_rate=*/0.05);
  });
  measure("grammar (20% corruption)", [&](util::Rng& rng) {
    return grammar.generate_message(rng, /*corruption_rate=*/0.20);
  });
  {
    // Mutated corpus: structure-aware seeds, byte-level havoc on top.
    util::Rng seed_rng(5);
    std::vector<util::Bytes> corpus;
    for (int i = 0; i < 32; ++i) corpus.push_back(grammar.generate_message(seed_rng));
    fuzz::Mutator mutator;
    measure("mutated grammar corpus", [&](util::Rng& rng) {
      return mutator.mutate(corpus[rng.below(corpus.size())], rng);
    });
  }
  measure("random bytes (w/ header)", [&](util::Rng& rng) {
    util::Bytes body(4 + rng.below(60));
    for (auto& b : body) b = rng.byte();
    return bgp::wrap_update_body(body);  // framing given away for free
  });
  measure("random bytes (raw)", [&](util::Rng& rng) {
    util::Bytes message(bgp::kHeaderLength + rng.below(60));
    for (auto& b : message) b = rng.byte();
    return message;
  });

  table.print();
  std::puts("\nexpected shape: the uncorrupted grammar produces a large majority of");
  std::puts("valid messages; corruption dials validity down smoothly; random bytes are");
  std::puts("effectively never valid (the 16-byte marker alone defeats them).");
  return 0;
}
