// Ablation study over the design choices DESIGN.md calls out:
//
//   A1. generational search bound (SAGE) on/off — without the bound every
//       child re-negates the whole prefix, and input dedup must absorb the
//       redundancy;
//   A2. solver stage composition — direct inversion / exhaustive
//       enumeration / branch-distance search, individually and combined;
//   A3. seed quality — strict-grammar seeds vs random-byte seeds for the
//       same engine budget (paper: "reuses existing protocol messages").
//
// Target: the instrumented UPDATE handler of a Gao-Rexford tier-2 router
// with all three parser bugs injected (crash discovery doubles as a
// usefulness metric).
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "bgp/bugs.hpp"
#include "bgp/sym_update.hpp"
#include "bgp/topology.hpp"
#include "concolic/engine.hpp"
#include "fuzz/bgp_grammar.hpp"

namespace {

using namespace dice;

struct RunOutcome {
  concolic::EngineStats stats;
  std::size_t distinct_bugs = 0;  ///< distinct crash reasons (max 3)
  double wall_ms = 0;
};

RunOutcome run_engine(const bgp::RouterConfig& config, const concolic::EngineOptions& options,
                      bool grammar_seeds) {
  bgp::SymHandlerEnv env;
  env.config = &config;
  env.neighbor_index = 0;

  concolic::ConcolicEngine engine(
      [&env](concolic::SymCtx& ctx) { (void)bgp::sym_handle_update(ctx, env); }, options);
  util::Rng rng(11);
  if (grammar_seeds) {
    const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(config),
                                         /*strict=*/true);
    for (int i = 0; i < 6; ++i) engine.add_seed(grammar.generate_body(rng));
  } else {
    for (int i = 0; i < 6; ++i) {
      util::Bytes seed(4 + rng.below(60));
      for (auto& b : seed) b = rng.byte();
      engine.add_seed(std::move(seed));
    }
  }

  bench::Stopwatch clock;
  const concolic::RunResult result = engine.run();
  RunOutcome out;
  out.stats = result.stats;
  std::set<std::string> reasons;
  for (const concolic::CrashInfo& crash : result.crashes) reasons.insert(crash.reason);
  out.distinct_bugs = reasons.size();
  out.wall_ms = clock.ms();
  return out;
}

}  // namespace

int main() {
  using bench::fmt;

  std::puts("== Ablations over the concolic exploration design choices ==\n");

  bgp::SystemBlueprint bp = bgp::make_internet({2, 3, 4});
  bgp::RouterConfig config = bp.configs[3];
  config.bug_mask = bgp::bugs::kCommunityLength | bgp::bugs::kAsPathZeroSegment |
                    bgp::bugs::kMedOverflow;

  concolic::EngineOptions base;
  base.max_executions = 600;
  base.max_branches_per_exec = 64;
  base.solver.search_budget = 2500;
  base.solver.restarts = 2;

  // --- A1: generational bound ------------------------------------------------
  {
    std::puts("A1: generational search bound (600-execution budget)");
    bench::Table table({"variant", "unique paths", "bugs found (of 3)", "solver queries",
                        "wall ms"});
    for (const bool generational : {true, false}) {
      concolic::EngineOptions options = base;
      options.generational = generational;
      const RunOutcome out = run_engine(config, options, /*grammar_seeds=*/true);
      table.row({generational ? "generational (SAGE)" : "no bound (re-negate all)",
                 std::to_string(out.stats.unique_paths), std::to_string(out.distinct_bugs),
                 std::to_string(out.stats.solver.queries), fmt(out.wall_ms, 1)});
    }
    table.print();
    std::puts("");
  }

  // --- A2: solver stage composition -------------------------------------------
  {
    std::puts("A2: solver stage composition (600-execution budget)");
    bench::Table table({"stages", "sat queries", "unique paths", "bugs found (of 3)",
                        "wall ms"});
    struct Stage {
      const char* name;
      bool inversion, exhaustive, search;
    };
    for (const Stage stage : {Stage{"inversion only", true, false, false},
                              Stage{"exhaustive only", false, true, false},
                              Stage{"search only", false, false, true},
                              Stage{"all stages", true, true, true}}) {
      concolic::EngineOptions options = base;
      options.solver.enable_inversion = stage.inversion;
      options.solver.enable_exhaustive = stage.exhaustive;
      options.solver.enable_search = stage.search;
      const RunOutcome out = run_engine(config, options, /*grammar_seeds=*/true);
      table.row({stage.name, std::to_string(out.stats.solver.sat),
                 std::to_string(out.stats.unique_paths), std::to_string(out.distinct_bugs),
                 fmt(out.wall_ms, 1)});
    }
    table.print();
    std::puts("");
  }

  // --- A3: seed quality --------------------------------------------------------
  {
    std::puts("A3: seed quality (600-execution budget)");
    bench::Table table({"seeds", "unique paths", "branch points", "bugs found (of 3)",
                        "wall ms"});
    for (const bool grammar : {true, false}) {
      const RunOutcome out = run_engine(config, base, grammar);
      table.row({grammar ? "strict grammar (valid messages)" : "random bytes",
                 std::to_string(out.stats.unique_paths),
                 std::to_string(out.stats.branch_points), std::to_string(out.distinct_bugs),
                 fmt(out.wall_ms, 1)});
    }
    table.print();
  }

  std::puts("\nexpected shape: the generational bound buys more paths per solver query;");
  std::puts("each solver stage contributes (inversion is cheap-but-narrow, search is");
  std::puts("broad-but-costly; the composition wins); valid seeds reach code that random");
  std::puts("seeds never parse into.");
  return 0;
}
