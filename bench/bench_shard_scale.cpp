// Sharded-matrix receipt: dealing the cell space to worker PROCESSES must
// not move a byte.
//
// Part 1 runs the committed topology27 receipt campaign through
// shard::ShardCoordinator at 1/2/4 worker processes and fails unless every
// merged fault set hashes to the committed value 63f680b04458c2a9 — the
// proof that the DSHD wire form, the deal, and the shared CellMerger
// reproduce the single-process byte stream across a process boundary.
//
// Part 2 shards the multi-cell "smoke" campaign at 1/2/4 processes against
// an in-process Campaign reference and fails on hash drift OR on a merge
// shorter than the dealt cell count — a silently short merge is the
// failure mode this harness exists to catch. The per-process-count wall
// times are the scale observation CI records.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "explore/campaign.hpp"
#include "shard/coordinator.hpp"
#include "shard/scenario_set.hpp"
#include "svc/soak_service.hpp"

namespace {

constexpr std::uint64_t kTopology27FaultHash = 0x63f680b04458c2a9ULL;

[[nodiscard]] dice::explore::CampaignOptions receipt_campaign() {
  auto built = dice::explore::CampaignOptions::builder()
                   .strategies({dice::explore::StrategyKind::kGrammar})
                   .seeds({1})
                   .episodes_per_cell(2)
                   .inputs_per_episode(32)
                   .bootstrap_events(2'000'000)
                   .strategy_seed(0xf1f1)
                   .parallelism(2)
                   .build();
  return std::move(built).take();
}

[[nodiscard]] dice::explore::CampaignOptions smoke_campaign() {
  auto built = dice::explore::CampaignOptions::builder()
                   .strategies({dice::explore::StrategyKind::kGrammar,
                                dice::explore::StrategyKind::kRandom})
                   .seeds({1, 2})
                   .episodes_per_cell(1)
                   .inputs_per_episode(8)
                   .bootstrap_events(100'000)
                   .parallelism(2)
                   .build();
  return std::move(built).take();
}

[[nodiscard]] dice::shard::ShardOptions shard_options(std::size_t processes,
                                                      std::string scenario_set) {
  dice::shard::ShardOptions options;
  options.processes = processes;
  options.worker_path = DICE_SHARD_WORKER_PATH;
  options.scenario_set = std::move(scenario_set);
  return options;
}

}  // namespace

int main() {
  using namespace dice;
  using bench::fmt;
  using bench::Stopwatch;

  std::puts("== Sharded matrix: cross-process determinism receipt + scale ==\n");

  // Part 1: the committed single-cell hash, dealt across processes.
  bench::Table receipt({"processes", "cells", "hash", "match", "ms"});
  bool hash_ok = true;
  bool merge_ok = true;
  for (const std::size_t processes : {1u, 2u, 4u}) {
    shard::ShardCoordinator coordinator(receipt_campaign(),
                                        shard_options(processes, "topology27"));
    Stopwatch watch;
    auto result = coordinator.run();
    const double ms = watch.ms();
    if (!result.ok()) {
      std::printf("FAIL: coordinator error (%s): %s\n", result.error().code.c_str(),
                  result.error().detail.c_str());
      return 1;
    }
    const std::uint64_t hash = svc::fault_set_hash(result.value().matrix.faults);
    const bool match = hash == kTopology27FaultHash;
    const bool complete = result.value().complete();
    hash_ok = hash_ok && match;
    merge_ok = merge_ok && complete;
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(hash));
    receipt.row({std::to_string(processes),
                 std::to_string(result.value().matrix.cells_completed) + "/" +
                     std::to_string(result.value().matrix.cells.size()),
                 hex, match && complete ? "yes" : "NO", fmt(ms, 1)});
  }
  receipt.print();
  std::printf("\ncommitted hash %016llx %s\n\n",
              static_cast<unsigned long long>(kTopology27FaultHash),
              hash_ok ? "reproduced at every process count" : "DRIFTED — failing");

  // Part 2: multi-cell smoke campaign, sharded vs in-process.
  auto scenarios = shard::resolve_scenario_set("smoke");
  if (!scenarios.ok()) {
    std::puts("FAIL: smoke scenario set did not resolve");
    return 1;
  }
  explore::Campaign reference(std::move(scenarios).take(), smoke_campaign());
  const explore::CampaignResult in_process = reference.run();
  const std::uint64_t expected = svc::fault_set_hash(in_process.faults);
  const std::size_t dealt = in_process.cells.size();

  bench::Table scale({"processes", "merged", "dealt", "match", "ms"});
  double sharded_ms_total = 0.0;
  for (const std::size_t processes : {1u, 2u, 4u}) {
    shard::ShardCoordinator coordinator(smoke_campaign(),
                                        shard_options(processes, "smoke"));
    Stopwatch watch;
    auto result = coordinator.run();
    const double ms = watch.ms();
    sharded_ms_total += ms;
    if (!result.ok()) {
      std::printf("FAIL: coordinator error (%s): %s\n", result.error().code.c_str(),
                  result.error().detail.c_str());
      return 1;
    }
    const std::size_t merged = result.value().matrix.cells.size();
    const bool match = svc::fault_set_hash(result.value().matrix.faults) == expected &&
                       result.value().complete();
    // The cardinal sin this bench gates on: merging fewer cells than dealt.
    const bool full = merged == dealt &&
                      result.value().matrix.cells_completed == dealt;
    hash_ok = hash_ok && match;
    merge_ok = merge_ok && full;
    scale.row({std::to_string(processes), std::to_string(merged), std::to_string(dealt),
               match && full ? "yes" : "NO", fmt(ms, 1)});
  }
  scale.print();
  std::printf("\nsharded smoke campaign %s\n",
              hash_ok && merge_ok ? "merges byte-identical and full at every "
                                    "process count"
                                  : "DRIFTED or MERGED SHORT — failing");

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"shard_scale\",\"hash\":\"%016llx\",\"hash_ok\":%s,"
                "\"merge_ok\":%s,\"cells\":%zu,\"sharded_ms\":%.1f}",
                static_cast<unsigned long long>(kTopology27FaultHash),
                hash_ok ? "true" : "false", merge_ok ? "true" : "false", dealt,
                sharded_ms_total);
  bench::emit_json("shard_scale", json);

  return (hash_ok && merge_ok) ? 0 : 1;
}
