// E8 — parallel exploration scaling (explore::ExplorePool).
//
// Part 1 runs the same grammar-strategy episodes over the paper's
// 27-router Figure 1 topology (with its latent hijack + parser bug) at
// increasing worker counts, verifying the fault set stays byte-identical
// while wall clock drops. Expected shape on a multi-core machine: ~linear
// speedup until clone cost stops dominating (clones share nothing, so
// exploration is embarrassingly parallel); on a single hardware thread the
// pool degrades gracefully to ~1x. The fault-set hash printed per row is
// the determinism receipt: every row must show the same value.
//
// Part 2 fans the ScenarioMatrix (bench topologies x strategies x seeds)
// onto the same pool — the "as many scenarios as you can imagine" soak —
// and runs it with nested (global-budget) scheduling on AND off: the fault
// hashes must match byte for byte.
//
// Part 3 is the nested-occupancy receipt: a single-cell campaign on an
// 8-worker pool, where only the global worker budget can keep more than
// one worker busy (the cell's clone batches are stolen across the cell
// boundary). Emitted into BENCH_explore_scale.json under "nested".
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace {

using namespace dice;

struct ScaleResult {
  double wall_ms = 0.0;
  std::size_t clones = 0;
  std::size_t faults = 0;
  std::uint64_t fault_hash = 0;
  std::uint64_t steals = 0;
};

ScaleResult run_at(std::size_t workers, std::size_t episodes, bool prepared_clones = true) {
  bgp::SystemBlueprint blueprint = bgp::make_internet();  // 27 routers
  bgp::inject_hijack(blueprint, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  bgp::inject_bug(blueprint, /*node=*/5, bgp::bugs::kCommunityLength);

  explore::CampaignOptions::Caching caching;
  caching.prepared_clones = prepared_clones;
  core::DiceOptions options = explore::CampaignOptions::builder()
                                  .inputs_per_episode(32)
                                  .caching(caching)
                                  .build()
                                  .take()
                                  .to_dice_options();
  // Single-system harness: a private pool sized by the row (the lowering
  // always emits parallelism = 1 — campaigns share one global pool instead).
  options.parallelism = workers;
  core::Orchestrator dice(std::move(blueprint), options);
  (void)dice.bootstrap();

  core::GrammarStrategy strategy(/*corruption_rate=*/0.05, /*rng_seed=*/0xf1f1);
  ScaleResult result;
  bench::Stopwatch watch;
  for (std::size_t i = 0; i < episodes; ++i) {
    const core::EpisodeResult episode = dice.run_episode(strategy);
    result.clones += episode.clones_run;
  }
  result.wall_ms = watch.ms();
  result.faults = dice.all_faults().size();
  std::uint64_t h = util::kFnvOffset;
  for (const core::FaultReport& fault : dice.all_faults()) {
    h = util::fnv1a(fault.to_string(), h);
  }
  result.fault_hash = util::hash_finalize(h);
  if (dice.pool() != nullptr) result.steals = dice.pool()->stats().steals;
  return result;
}

}  // namespace

int main() {
  using bench::fmt;

  std::printf("== E8: parallel exploration scaling (topology27, %u hardware threads) ==\n\n",
              std::thread::hardware_concurrency());

  constexpr std::size_t kEpisodes = 2;
  bench::Table table({"clone path", "workers", "episodes", "clones", "faults",
                      "fault-set hash", "steals", "wall ms", "speedup"});
  double serial_ms = 0.0;
  std::uint64_t serial_hash = 0;
  bool identical = true;
  bool first = true;
  // The legacy decode-per-clone row anchors the receipt: every prepared/
  // arena row must reproduce its fault-set hash bit for bit.
  for (const bool prepared : {false, true}) {
    for (const std::size_t workers : {1UL, 2UL, 4UL, 8UL}) {
      if (!prepared && workers > 1) continue;  // one legacy baseline row suffices
      const ScaleResult r = run_at(workers, kEpisodes, prepared);
      if (first) {
        serial_ms = r.wall_ms;
        serial_hash = r.fault_hash;
        first = false;
      }
      identical &= r.fault_hash == serial_hash;
      char hash_text[32];
      std::snprintf(hash_text, sizeof(hash_text), "%016llx",
                    static_cast<unsigned long long>(r.fault_hash));
      table.row({prepared ? "prepared+arena" : "legacy", std::to_string(workers),
                 std::to_string(kEpisodes), std::to_string(r.clones),
                 std::to_string(r.faults), hash_text, std::to_string(r.steals),
                 fmt(r.wall_ms, 1), fmt(serial_ms / r.wall_ms, 2)});
    }
  }
  table.print();
  std::printf(
      "\nfault sets byte-identical across clone paths and worker counts: %s\n",
      identical ? "YES" : "NO (determinism bug!)");

  std::puts("\n== scenario-matrix soak: bench topologies x strategies x seeds ==\n");
  // Driven through the Campaign builder (the lowered options are identical
  // to the old hand-built MatrixOptions, so the receipt below must not
  // move): 4 workers, grammar + concolic, seeds {1, 2}. Run with the
  // legacy cells-only schedule first (the equivalence baseline), then with
  // the nested global budget — same fault bytes required.
  const auto soak_at = [](bool nested, obs::Trace* trace,
                          explore::CampaignObserver* observer) {
    explore::CampaignOptions options =
        explore::CampaignOptions::builder()
            .strategies({explore::StrategyKind::kGrammar,
                         explore::StrategyKind::kConcolic})
            .seeds({1, 2})
            .episodes_per_cell(1)
            .inputs_per_episode(16)
            .parallelism(4)
            .nested(nested)
            .trace(trace)
            .build()
            .take();
    explore::Campaign campaign(explore::default_bench_scenarios(), options);
    return campaign.run(observer);
  };
  bench::Stopwatch cells_only_soak;
  const explore::CampaignResult result = soak_at(/*nested=*/false, nullptr, nullptr);
  const double soak_ms = cells_only_soak.ms();
  // The nested run carries the full telemetry surface — span trace plus a
  // ProgressReporter — and must reproduce the cells-only fault bytes
  // anyway: the bench doubles as the passivity receipt under load.
  obs::Trace soak_trace;
  obs::ProgressReporter reporter;
  bench::Stopwatch nested_soak;
  const explore::CampaignResult nested_result =
      soak_at(/*nested=*/true, &soak_trace, &reporter);
  const double nested_soak_ms = nested_soak.ms();
  const auto fault_set_hash = [](const explore::CampaignResult& run) {
    std::uint64_t h = util::kFnvOffset;
    for (const core::FaultReport& fault : run.faults) h = util::fnv1a(fault.to_string(), h);
    return util::hash_finalize(h);
  };
  const bool nested_match = fault_set_hash(result) == fault_set_hash(nested_result) &&
                            result.faults.size() == nested_result.faults.size();

  bench::Table cells({"scenario", "strategy", "seed", "boot", "clones", "faults", "ms"});
  for (const explore::CellResult& cell : result.cells) {
    cells.row({cell.scenario, std::string(to_string(cell.strategy)),
               std::to_string(cell.seed), cell.bootstrap_converged ? "ok" : "osc",
               std::to_string(cell.clones_run), std::to_string(cell.faults),
               fmt(cell.wall_ms, 1)});
  }
  cells.print();
  std::printf(
      "\nmatrix: %zu cells, %zu distinct faults, %.1f ms wall (cells-only) / "
      "%.1f ms (nested); pool steals=%llu; live-state cache %llu miss / %llu hit\n",
      result.cells.size(), result.faults.size(), soak_ms, nested_soak_ms,
      static_cast<unsigned long long>(result.pool.steals),
      static_cast<unsigned long long>(result.live_cache.misses),
      static_cast<unsigned long long>(result.live_cache.hits));
  std::printf(
      "nested run: %llu child batches, %llu child tasks (%llu helped / %llu stolen "
      "across cells); fault sets identical nested on/off: %s\n",
      static_cast<unsigned long long>(nested_result.pool.child_batches),
      static_cast<unsigned long long>(nested_result.pool.child_tasks),
      static_cast<unsigned long long>(nested_result.pool.helped),
      static_cast<unsigned long long>(nested_result.pool.child_steals),
      nested_match ? "YES" : "NO (determinism bug!)");
  std::printf("solver cache: %llu hits / %llu misses (%llu entries, %llu models)\n",
              static_cast<unsigned long long>(result.solver_cache.hits),
              static_cast<unsigned long long>(result.solver_cache.misses),
              static_cast<unsigned long long>(result.solver_cache.entries),
              static_cast<unsigned long long>(result.solver_cache.sat_entries));

  const char* trace_path = "TRACE_explore_scale.json";
  const bool trace_written = soak_trace.write_chrome_json(trace_path);
  std::printf(
      "trace: %zu spans (%zu canonical, %llu dropped), %llu progress lines -> %s%s\n",
      soak_trace.events().size(), soak_trace.canonical_events(),
      static_cast<unsigned long long>(soak_trace.dropped()),
      static_cast<unsigned long long>(reporter.lines_emitted()), trace_path,
      trace_written ? "" : " (WRITE FAILED)");

  // Part 3 — the occupancy receipt: ONE cell, eight workers. Before the
  // global budget this shape used exactly one worker no matter the pool
  // size; now the cell's clone batches are child tasks that idle workers
  // steal. The dev container is 1-core, so wall clock cannot show the
  // speedup here — occupied_workers and the help/steal split are the
  // hardware-independent receipt that multi-core machines will.
  std::puts("\n== single-cell campaign on an 8-worker pool (nested occupancy) ==\n");
  explore::CampaignOptions single =
      explore::CampaignOptions::builder()
          .strategies({explore::StrategyKind::kGrammar})
          .seeds({1})
          .inputs_per_episode(32)
          .episodes_per_cell(2)
          .parallelism(8)
          .build()
          .take();
  std::vector<explore::ScenarioSpec> one_cell;
  bgp::SystemBlueprint fig1 = bgp::make_internet();
  bgp::inject_hijack(fig1, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  bgp::inject_bug(fig1, /*node=*/5, bgp::bugs::kCommunityLength);
  one_cell.push_back({"topology27", std::move(fig1)});
  explore::Campaign single_campaign(std::move(one_cell), single);
  bench::Stopwatch single_watch;
  const explore::CampaignResult single_result = single_campaign.run();
  const double single_ms = single_watch.ms();
  const std::size_t occupied = single_result.pool.occupied_workers();
  std::printf(
      "1 cell, %zu clones: %zu/8 workers occupied; %llu clones helped by the cell's "
      "worker, %llu stolen by idle peers; %.1f ms wall\n",
      single_result.cells.empty() ? 0 : single_result.cells[0].clones_run, occupied,
      static_cast<unsigned long long>(single_result.pool.helped),
      static_cast<unsigned long long>(single_result.pool.child_steals), single_ms);

  char json[1536];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"explore_scale\",\"topology\":\"internet27\","
                "\"episodes\":%zu,\"fault_set_hash\":\"%016llx\","
                "\"fault_sets_identical\":%s,\"serial_wall_ms\":%.1f,"
                "\"matrix_cells\":%zu,\"matrix_faults\":%zu,\"matrix_wall_ms\":%.1f,"
                "\"live_cache_hits\":%llu,"
                "\"nested\":{\"fault_sets_identical\":%s,\"matrix_wall_ms\":%.1f,"
                "\"child_batches\":%llu,\"child_tasks\":%llu,\"helped\":%llu,"
                "\"child_steals\":%llu,\"single_cell_occupied_workers\":%zu,"
                "\"single_cell_wall_ms\":%.1f},"
                "\"trace\":{\"file\":\"%s\",\"written\":%s,\"spans\":%zu,"
                "\"canonical_spans\":%zu,\"dropped\":%llu,"
                "\"progress_lines\":%llu}}",
                kEpisodes, static_cast<unsigned long long>(serial_hash),
                identical ? "true" : "false", serial_ms, result.cells.size(),
                result.faults.size(), soak_ms,
                static_cast<unsigned long long>(result.live_cache.hits),
                nested_match ? "true" : "false", nested_soak_ms,
                static_cast<unsigned long long>(nested_result.pool.child_batches),
                static_cast<unsigned long long>(nested_result.pool.child_tasks),
                static_cast<unsigned long long>(nested_result.pool.helped),
                static_cast<unsigned long long>(nested_result.pool.child_steals),
                occupied, single_ms, trace_path, trace_written ? "true" : "false",
                soak_trace.events().size(), soak_trace.canonical_events(),
                static_cast<unsigned long long>(soak_trace.dropped()),
                static_cast<unsigned long long>(reporter.lines_emitted()));
  bench::emit_json("explore_scale", json);
  return identical && nested_match ? 0 : 1;
}
