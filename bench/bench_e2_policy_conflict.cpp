// E2 — policy-conflict detection (BGP dispute wheel).
//
// §3: DiCE detects faults due to "policy conflicts". The scenario is
// Griffin's BAD GADGET: locally sensible preferences with no global
// fixpoint. The bench measures detection latency, shows the flip-counter
// evidence, and runs a stable control topology (same shape, conflict-free
// preferences) to demonstrate the checker does not false-positive.
#include <cstdio>

#include "bench_util.hpp"
#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"

namespace {

using namespace dice;

/// Control: same wheel shape, but every node simply prefers its direct
/// route (no dispute) — converges instantly.
bgp::SystemBlueprint make_good_gadget() {
  bgp::SystemBlueprint bp = bgp::make_bad_gadget();
  for (sim::NodeId i = 1; i <= 3; ++i) {
    for (bgp::NeighborConfig& neighbor : bp.configs[i].neighbors) {
      for (bgp::PolicyRule& rule : neighbor.import_policy.rules) {
        for (bgp::Action& action : rule.actions) {
          if (action.kind == bgp::Action::Kind::kSetLocalPref) action.value = 100;
        }
      }
    }
  }
  return bp;
}

}  // namespace

int main() {
  using bench::fmt;
  using bench::Stopwatch;

  std::puts("== E2: dispute-wheel (policy conflict) detection ==\n");

  bench::Table table({"topology", "live converged", "probes to detect", "wall ms",
                      "max flips seen", "verdict"});

  for (const bool conflicted : {true, false}) {
    bgp::SystemBlueprint blueprint = conflicted ? bgp::make_bad_gadget() : make_good_gadget();
    const core::DiceOptions options = explore::CampaignOptions::builder()
                                          .inputs_per_episode(8)
                                          .clone_event_budget(20'000)
                                          .oscillation_threshold(8)
                                          .build()
                                          .take()
                                          .to_dice_options();
    core::Orchestrator dice(std::move(blueprint), options);
    const bool converged = dice.bootstrap(/*max_events=*/20'000);

    core::GrammarStrategy strategy;
    Stopwatch clock;
    const std::size_t probes = dice.explore_until_fault(
        strategy, core::FaultClass::kPolicyConflict, /*max_episodes=*/4);
    const double elapsed = clock.ms();

    std::uint32_t max_flips = 0;
    for (std::size_t i = 0; i < dice.live().size(); ++i) {
      for (const auto& [prefix, flips] :
           dice.live().router(static_cast<sim::NodeId>(i)).best_flips()) {
        max_flips = std::max(max_flips, flips);
      }
    }
    table.row({conflicted ? "BAD GADGET" : "stable control", converged ? "yes" : "no",
               probes == SIZE_MAX ? "-" : std::to_string(probes), fmt(elapsed, 1),
               std::to_string(max_flips),
               probes == SIZE_MAX ? (conflicted ? "MISSED" : "clean")
                                  : (conflicted ? "conflict detected" : "FALSE POSITIVE")});
  }
  table.print();

  std::puts("\nevidence detail (BAD GADGET episode):");
  const core::DiceOptions options = explore::CampaignOptions::builder()
                                        .inputs_per_episode(4)
                                        .clone_event_budget(20'000)
                                        .build()
                                        .take()
                                        .to_dice_options();
  core::Orchestrator dice(bgp::make_bad_gadget(), options);
  (void)dice.bootstrap(/*max_events=*/20'000);
  core::GrammarStrategy strategy;
  const core::EpisodeResult episode = dice.run_episode(strategy);
  std::printf("%s", core::render_fault_table(episode.faults).c_str());
  std::puts("\nexpected shape: conflict flagged on the first probe (non-quiescence plus");
  std::puts("per-node oscillation counters); the stable control stays clean.");
  return 0;
}
