// E7 — online soak: DiCE exploring WHILE the system serves a route feed.
//
// The paper's setting is *online* testing: the deployed system keeps
// processing real traffic while DiCE snapshots and explores beside it.
// This bench subjects a border router of the 27-router topology to a
// sustained synthetic route feed (workload.hpp) and runs the continuous
// runner concurrently (in simulated time), reporting:
//   - feed throughput absorbed by the live system,
//   - episodes completed and exploration stats,
//   - proof of non-interference: the live system converges to exactly the
//     feed's announced set afterwards, with zero standing faults.
#include <cstdio>

#include "bench_util.hpp"
#include "bgp/workload.hpp"
#include "dice/runner.hpp"
#include "explore/campaign.hpp"

int main() {
  using namespace dice;
  using bench::fmt;
  using bench::Stopwatch;

  std::puts("== E7: online exploration under live route-feed churn ==\n");

  const core::DiceOptions options = explore::CampaignOptions::builder()
                                        .inputs_per_episode(8)
                                        .build()
                                        .take()
                                        .to_dice_options();
  core::Orchestrator dice(bgp::make_internet(), options);
  if (!dice.bootstrap()) {
    std::puts("bootstrap failed");
    return 1;
  }
  core::System& live = dice.live();

  // The feed enters at stub r26 from a synthetic external peer: schedule
  // one UPDATE per 50ms of simulated time for 200 simulated seconds.
  const sim::NodeId border = 26;
  const sim::NodeId feed_peer = live.network().neighbors(border).front();
  bgp::WorkloadOptions feed_options;
  feed_options.prefix_universe = 400;
  feed_options.withdraw_ratio = 0.2;
  bgp::RouteFeedGenerator feed(feed_options, /*seed=*/7);

  std::size_t injected = 0;
  std::function<void()> pump = [&] {
    if (live.simulator().now() > 200 * sim::kSecond) return;
    auto batch = feed.encoded_batch(1, bgp::node_address(feed_peer));
    if (!batch.empty()) {
      live.inject_message(feed_peer, border, std::move(batch.front()));
      ++injected;
    }
    live.simulator().schedule_after(50 * sim::kMillisecond, pump);
  };
  live.simulator().schedule_after(50 * sim::kMillisecond, pump);

  // Online exploration every 10 simulated seconds, during the churn.
  core::GrammarStrategy strategy(/*corruption_rate=*/0.02);
  core::RunnerOptions runner_options;
  runner_options.episode_period = 10 * sim::kSecond;
  runner_options.max_episodes = 12;
  core::ContinuousRunner runner(dice, strategy, runner_options);

  std::size_t standing = 0;
  std::size_t potential = 0;
  runner.set_fault_listener([&](const core::FaultReport& fault) {
    (fault.potential ? potential : standing) += 1;
  });

  Stopwatch clock;
  const std::size_t episodes = runner.run(/*wall_budget_ms=*/60'000.0);
  const double wall = clock.ms();
  const bool converged = live.converge();

  bench::Table table({"metric", "value"});
  table.row({"feed updates injected", std::to_string(injected)});
  table.row({"feed prefixes announced (final)", std::to_string(feed.announced_count())});
  table.row({"episodes completed online", std::to_string(episodes)});
  table.row({"standing faults", std::to_string(standing)});
  table.row({"potential findings", std::to_string(potential)});
  table.row({"simulated time", fmt(static_cast<double>(live.simulator().now()) /
                                        static_cast<double>(sim::kSecond), 1) + " s"});
  table.row({"wall time", fmt(wall, 1) + " ms"});
  table.row({"live reconverged after churn", converged ? "yes" : "NO"});
  // The border router's RIB must mirror the feed's announced set plus the
  // topology's own 27 prefixes.
  const std::size_t rib = live.router(border).loc_rib().size();
  table.row({"border Loc-RIB size", std::to_string(rib)});
  table.row({"expected (27 + announced)", std::to_string(27 + feed.announced_count())});
  table.print();

  const bool rib_ok = rib == 27 + feed.announced_count();
  std::puts("\nexpected shape: the live system absorbs the full feed while episodes run;");
  std::puts("zero standing faults (churn is not a fault); the border RIB exactly mirrors");
  std::puts("the feed state afterwards (exploration never perturbed the deployment).");
  return (converged && standing == 0 && rib_ok) ? 0 : 1;
}
