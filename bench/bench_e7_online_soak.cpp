// E7 — online soak, resident-daemon edition: SoakService rounds with a
// persistent warm-start store.
//
// The paper's setting is *online* testing: DiCE runs beside the deployed
// system indefinitely, not as a batch job. Earlier editions of this bench
// proved non-interference of one exploration pass under live route-feed
// churn; since svc::SoakService exists, the online stance is the resident
// service itself, and what this harness gates is the property that makes
// residency cheap: a killed-and-restarted daemon warm-starts from the
// svc::ArtifactStore instead of re-converging its bootstraps.
//
// Two parts, each a CI gate (exit nonzero on either):
//   1. determinism — every round of the cold topology27 daemon AND the
//      restarted warm daemon reproduces the batch fault-set hash
//      63f680b04458c2a9 (daemon-vs-batch, cold-vs-warm);
//   2. warm restart latency — on the 500-router internet (where a cold
//      bootstrap is a real convergence bill), restart-to-explored
//      (store load + prime + round-1 bootstrap) must be >= 10x faster
//      warm than cold, with cold and warm fault bytes identical.
// Emits BENCH_soak_warmstart.json.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "bench_util.hpp"
#include "bgp/bugs.hpp"
#include "bgp/topology.hpp"
#include "svc/soak_service.hpp"

namespace {

using namespace dice;

constexpr std::uint64_t kReceiptHash = 0x63f680b04458c2a9ull;

[[nodiscard]] std::vector<explore::ScenarioSpec> receipt_scenarios() {
  bgp::SystemBlueprint fig1 = bgp::make_internet();
  bgp::inject_hijack(fig1, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  bgp::inject_bug(fig1, 5, bgp::bugs::kCommunityLength);
  std::vector<explore::ScenarioSpec> specs;
  specs.push_back({"topology27", std::move(fig1)});
  return specs;
}

[[nodiscard]] svc::SoakOptions receipt_options(const std::string& store_path) {
  svc::SoakOptions options;
  options.campaign = explore::CampaignOptions::builder()
                         .strategies({explore::StrategyKind::kGrammar})
                         .seeds({1})
                         .episodes_per_cell(2)
                         .inputs_per_episode(32)
                         .bootstrap_events(2'000'000)
                         .strategy_seed(0xf1f1)
                         .parallelism(2)
                         .build()
                         .take();
  options.store_path = store_path;
  return options;
}

/// The scale half: 500 routers (the bench_snapshot_scale mid tier), every
/// stub originating, tiny episode budget — the round cost is dominated by
/// the bootstrap convergence, which is exactly what the store amortizes.
[[nodiscard]] std::vector<explore::ScenarioSpec> scale_scenarios() {
  bgp::InternetTopologyParams params;
  params.tier1 = 5;
  params.tier2 = 45;
  params.stubs = 450;
  params.originate_every = 1;
  std::vector<explore::ScenarioSpec> specs;
  specs.push_back({"internet500", bgp::make_internet(params)});
  return specs;
}

[[nodiscard]] svc::SoakOptions scale_options(const std::string& store_path) {
  svc::SoakOptions options;
  options.campaign = explore::CampaignOptions::builder()
                         .strategies({explore::StrategyKind::kGrammar})
                         .seeds({1})
                         .episodes_per_cell(1)
                         .inputs_per_episode(2)
                         .bootstrap_events(20'000'000)
                         .clone_event_budget(60'000)
                         .parallelism(2)
                         .build()
                         .take();
  options.store_path = store_path;
  return options;
}

[[nodiscard]] std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return std::string(buf);
}

[[nodiscard]] std::size_t file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  return static_cast<std::size_t>(std::distance(
      std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()));
}

}  // namespace

int main() {
  using bench::fmt;
  using bench::Stopwatch;

  std::puts("== E7: resident online soak — determinism pin + warm restart ==\n");

  // --- part 1: daemon-vs-batch determinism on the receipt scenario --------
  std::puts("part 1: topology27 receipt — daemon rounds vs the batch hash");
  const std::string receipt_store = "BENCH_soak_receipt.dsvc";
  std::remove(receipt_store.c_str());
  bool hashes_ok = true;
  std::size_t faults = 0;
  {
    svc::SoakService daemon(receipt_scenarios(), receipt_options(receipt_store));
    for (int round = 0; round < 2; ++round) {
      const svc::RoundSummary summary = daemon.run_round();
      hashes_ok &= summary.fault_hash == kReceiptHash;
      faults = summary.faults;
    }
  }
  {
    svc::SoakService revived(receipt_scenarios(), receipt_options(receipt_store));
    hashes_ok &= revived.report().warm_started;
    const svc::RoundSummary warm_round = revived.run_round();
    hashes_ok &= warm_round.fault_hash == kReceiptHash;
    hashes_ok &= warm_round.cells_from_cache == 1;
    std::printf("  cold rounds + warm-restarted round all %s %s\n",
                hashes_ok ? "reproduce" : "DIVERGED FROM", hex64(kReceiptHash).c_str());
  }
  std::remove(receipt_store.c_str());

  // --- part 2: warm restart latency at 500 routers ------------------------
  std::puts("\npart 2: internet500 — cold vs warm restart latency");
  const std::string store_path = "BENCH_soak_store.dsvc";
  std::remove(store_path.c_str());

  double cold_construct_ms = 0.0;
  double cold_bootstrap_ms = 0.0;
  std::uint64_t cold_hash = 0;
  {
    Stopwatch construct;
    svc::SoakService daemon(scale_scenarios(), scale_options(store_path));
    cold_construct_ms = construct.ms();
    const svc::RoundSummary summary = daemon.run_round();
    cold_bootstrap_ms = summary.bootstrap_ms;
    cold_hash = summary.fault_hash;
  }  // destructor == kill: nothing persists beyond the round-boundary saves

  Stopwatch warm_construct;
  svc::SoakService revived(scale_scenarios(), scale_options(store_path));
  const double warm_construct_ms = warm_construct.ms();
  const svc::SoakReport boot = revived.report();
  const svc::RoundSummary warm = revived.run_round();
  const bool warm_ok = boot.warm_started && warm.cells_from_cache == 1;
  const bool scale_hash_ok = warm.fault_hash == cold_hash;

  const double cold_restart_ms = cold_construct_ms + cold_bootstrap_ms;
  const double warm_restart_ms = warm_construct_ms + warm.bootstrap_ms;
  const double speedup = warm_restart_ms > 0 ? cold_restart_ms / warm_restart_ms : 0.0;

  bench::Table table({"metric", "cold", "warm (restarted)"});
  table.row({"construction (load+prime)", fmt(cold_construct_ms) + " ms",
             fmt(warm_construct_ms) + " ms"});
  table.row({"round-1 bootstrap", fmt(cold_bootstrap_ms) + " ms",
             fmt(warm.bootstrap_ms) + " ms"});
  table.row({"restart-to-explored", fmt(cold_restart_ms) + " ms",
             fmt(warm_restart_ms) + " ms"});
  table.row({"round-1 bootstraps from cache", "0",
             std::to_string(warm.cells_from_cache)});
  table.row({"round fault hash", hex64(cold_hash), hex64(warm.fault_hash)});
  table.print();
  std::printf("\nwarm restart speedup: %.1fx (gate: >= 10x), store %zu bytes\n",
              speedup, file_bytes(store_path));

  std::string json = "{";
  json += "\"cold_construct_ms\":" + fmt(cold_construct_ms, 3);
  json += ",\"cold_bootstrap_ms\":" + fmt(cold_bootstrap_ms, 3);
  json += ",\"cold_restart_ms\":" + fmt(cold_restart_ms, 3);
  json += ",\"warm_construct_ms\":" + fmt(warm_construct_ms, 3);
  json += ",\"warm_bootstrap_ms\":" + fmt(warm.bootstrap_ms, 3);
  json += ",\"warm_restart_ms\":" + fmt(warm_restart_ms, 3);
  json += ",\"speedup\":" + fmt(speedup, 1);
  json += ",\"scale_routers\":500";
  json += ",\"receipt_faults_per_round\":" + std::to_string(faults);
  json += ",\"store_bytes\":" + std::to_string(file_bytes(store_path));
  json += ",\"warm_started\":" + std::string(warm_ok ? "true" : "false");
  json += ",\"fault_set_hash\":\"" + hex64(kReceiptHash) + "\"";
  json += ",\"fault_sets_identical\":" +
          std::string(hashes_ok && scale_hash_ok ? "true" : "false");
  json += "}";
  bench::emit_json("soak_warmstart", json);
  std::remove(store_path.c_str());

  if (!hashes_ok) {
    std::puts("FAIL: a topology27 round's fault-set hash drifted from the receipt");
    return 1;
  }
  if (!scale_hash_ok) {
    std::puts("FAIL: internet500 cold and warm rounds produced different fault bytes");
    return 1;
  }
  if (!warm_ok) {
    std::puts("FAIL: the restarted daemon did not warm-start from the store");
    return 1;
  }
  if (speedup < 10.0) {
    std::printf("FAIL: warm restart only %.1fx faster than cold (gate: 10x)\n",
                speedup);
    return 1;
  }
  std::puts("\nexpected shape: the restarted daemon loads the store, primes its");
  std::puts("bootstrap cache, serves round-1 startup from a resume instead of a");
  std::puts("re-convergence, and reproduces the cold daemon's fault bytes exactly.");
  return 0;
}
