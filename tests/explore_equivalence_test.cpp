// Prepared/arena-vs-legacy equivalence: the decode-once clone pipeline must
// be a pure optimization. For every worker count the fault sets, episode
// counters, post-convergence state hashes and re-snapshot cut hashes have to
// match the legacy decode-per-clone path byte for byte; the oscillation
// early-exit must cut dispute-wheel budgets without losing the fault.
#include <gtest/gtest.h>

#include <sstream>

#include "dice/orchestrator.hpp"
#include "explore/matrix.hpp"

namespace dice::explore {
namespace {

using core::DiceOptions;
using core::EpisodeResult;
using core::FaultReport;
using core::GrammarStrategy;
using core::Orchestrator;
using core::System;
using core::SystemPrototype;

[[nodiscard]] std::string render(const std::vector<FaultReport>& faults) {
  std::ostringstream out;
  for (const FaultReport& fault : faults) out << fault.to_string() << "\n";
  return out.str();
}

struct PathOutput {
  std::vector<std::string> episodes;
  std::vector<std::size_t> clones_run;
  std::string all_faults;
  std::size_t clones_reused = 0;
};

[[nodiscard]] PathOutput run_hijack(std::size_t parallelism, bool prepared_clones,
                                    std::size_t episodes) {
  bgp::SystemBlueprint blueprint = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(blueprint, /*victim=*/5, /*attacker=*/8);
  DiceOptions options;
  options.inputs_per_episode = 12;
  options.clone_event_budget = 60'000;
  options.parallelism = parallelism;
  options.prepared_clones = prepared_clones;
  Orchestrator dice(std::move(blueprint), options);
  EXPECT_TRUE(dice.bootstrap());
  GrammarStrategy strategy(/*corruption_rate=*/0.05, /*rng_seed=*/0x5eed);
  PathOutput output;
  for (std::size_t i = 0; i < episodes; ++i) {
    const EpisodeResult episode = dice.run_episode(strategy);
    output.episodes.push_back(render(episode.faults));
    output.clones_run.push_back(episode.clones_run);
    output.clones_reused += episode.clones_reused;
  }
  output.all_faults = render(dice.all_faults());
  return output;
}

TEST(PreparedPathEquivalenceTest, FaultSetsMatchLegacyAtWorkers1And2And8) {
  // The acceptance property: legacy clone_from and the prepared/arena path
  // are byte-identical at every parallelism level.
  const PathOutput legacy = run_hijack(/*parallelism=*/1, /*prepared=*/false,
                                       /*episodes=*/2);
  ASSERT_FALSE(legacy.all_faults.empty()) << "hijack scenario should produce faults";
  EXPECT_EQ(legacy.clones_reused, 0u) << "legacy path must never touch an arena";
  for (const std::size_t workers : {1u, 2u, 8u}) {
    const PathOutput prepared = run_hijack(workers, /*prepared=*/true, /*episodes=*/2);
    EXPECT_EQ(prepared.episodes, legacy.episodes) << "workers=" << workers;
    EXPECT_EQ(prepared.clones_run, legacy.clones_run) << "workers=" << workers;
    EXPECT_EQ(prepared.all_faults, legacy.all_faults) << "workers=" << workers;
    EXPECT_GT(prepared.clones_reused, 0u)
        << "workers=" << workers << ": arenas should be serving repeat clones";
  }
}

TEST(PreparedPathEquivalenceTest, CloneStateAndCutHashesMatchLegacy) {
  // System-level receipt: a prepared/arena clone converges to the same
  // per-node state hashes as a legacy clone, and a snapshot taken of each
  // yields the same cut hash.
  auto prototype =
      std::make_shared<const SystemPrototype>(bgp::make_internet({2, 3, 4}));
  System live(prototype);
  live.start();
  live.simulator().run(350);  // mid-convergence: in-flight frames exist
  const snapshot::SnapshotId id = live.take_snapshot(1);
  ASSERT_NE(id, 0u);
  const snapshot::Snapshot* raw = live.snapshots().find(id);
  const auto prepared = live.prepare_snapshot(id);
  ASSERT_NE(prepared, nullptr);

  auto legacy = System::clone_from(live.blueprint(), *raw);
  ASSERT_NE(legacy, nullptr);
  CloneArena arena;
  bool reused = false;
  System* fast = arena.acquire(prototype, *prepared, reused);
  ASSERT_NE(fast, nullptr);

  ASSERT_TRUE(legacy->converge());
  ASSERT_TRUE(fast->converge());
  for (std::size_t i = 0; i < live.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(fast->router(node).state_hash(), legacy->router(node).state_hash())
        << "node " << i;
  }
  const snapshot::SnapshotId legacy_snap = legacy->take_snapshot(0);
  const snapshot::SnapshotId fast_snap = fast->take_snapshot(0);
  ASSERT_NE(legacy_snap, 0u);
  ASSERT_NE(fast_snap, 0u);
  EXPECT_EQ(fast->snapshots().find(fast_snap)->cut_hash(),
            legacy->snapshots().find(legacy_snap)->cut_hash());
}

TEST(OscillationEarlyExitTest, CutsDisputeWheelBudgetAndKeepsTheFault) {
  const auto run_gadget = [](bool early_exit) {
    DiceOptions options;
    options.inputs_per_episode = 4;
    options.clone_event_budget = 120'000;
    options.oscillation_early_exit = early_exit;
    Orchestrator dice(bgp::make_bad_gadget(), options);
    (void)dice.bootstrap(/*max_events=*/20'000);  // a wheel never converges
    GrammarStrategy strategy(/*corruption_rate=*/0.05, /*rng_seed=*/0x0dd);
    return dice.run_episode(strategy);
  };

  const EpisodeResult fast = run_gadget(/*early_exit=*/true);
  ASSERT_GT(fast.clones_run, 0u);
  EXPECT_EQ(fast.clones_early_exit, fast.clones_run)
      << "every dispute-wheel clone should trip the detector";
  bool policy_conflict = false;
  for (const FaultReport& fault : fast.faults) {
    policy_conflict |= fault.fault_class == core::FaultClass::kPolicyConflict;
  }
  EXPECT_TRUE(policy_conflict) << core::render_fault_table(fast.faults);

  const EpisodeResult slow = run_gadget(/*early_exit=*/false);
  EXPECT_EQ(slow.clones_early_exit, 0u);
  // The early-exit path does strictly less simulation work for the same
  // verdict; explore_ms is wall-clock so only assert the strong invariant
  // that both paths flag the conflict.
  bool slow_conflict = false;
  for (const FaultReport& fault : slow.faults) {
    slow_conflict |= fault.fault_class == core::FaultClass::kPolicyConflict;
  }
  EXPECT_TRUE(slow_conflict);
  EXPECT_LT(fast.explore_ms, slow.explore_ms)
      << "early exit should not be slower than burning the full budget";
}

TEST(OscillationEarlyExitTest, QuiescentClonesNeverTrip) {
  DiceOptions options;
  options.inputs_per_episode = 8;
  options.clone_event_budget = 60'000;
  Orchestrator dice(bgp::make_internet({2, 3, 4}), options);
  ASSERT_TRUE(dice.bootstrap());
  GrammarStrategy strategy(/*corruption_rate=*/0.05, /*rng_seed=*/0x5eed);
  const EpisodeResult episode = dice.run_episode(strategy);
  EXPECT_GT(episode.clones_run, 0u);
  EXPECT_EQ(episode.clones_early_exit, 0u);
  EXPECT_EQ(episode.clones_non_quiescent, 0u);
}

TEST(PreparedTelemetryTest, EpisodeReportsPreparedPathCounters) {
  DiceOptions options;
  options.inputs_per_episode = 6;
  options.clone_event_budget = 60'000;
  Orchestrator dice(bgp::make_line(3), options);
  ASSERT_TRUE(dice.bootstrap());
  GrammarStrategy strategy;
  const EpisodeResult first = dice.run_episode(strategy);
  EXPECT_GT(first.snapshot_bytes, 0u);
  EXPECT_GE(first.restore_ms, 0.0);
  // Serial path, one arena: the first task constructs, the rest reuse.
  EXPECT_EQ(first.clones_reused + 1, first.clones_run);
  const EpisodeResult second = dice.run_episode(strategy);
  // The arena System survives across episodes: everything is a reuse now.
  EXPECT_EQ(second.clones_reused, second.clones_run);
}

TEST(PreparedTelemetryTest, MatrixReusesArenasAcrossCells) {
  // Two cells of the same scenario on one worker share the prototype, so
  // the second cell's clones land on the first cell's arena System.
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back({"line3", bgp::make_line(3)});
  MatrixOptions options;
  options.strategies = {StrategyKind::kGrammar};
  options.seeds = {1, 2};
  options.episodes_per_cell = 1;
  options.bootstrap_events = 300'000;
  options.dice.inputs_per_episode = 4;
  options.dice.clone_event_budget = 60'000;
  ScenarioMatrix matrix(std::move(scenarios), options);
  ExplorePool pool(1);
  const MatrixResult result = matrix.run(pool, {});
  ASSERT_EQ(result.cells.size(), 2u);
  const CloneArena::Stats arena_stats = pool.arena(0).stats();
  EXPECT_EQ(arena_stats.rebuilds, 1u)
      << "one System construction should serve both cells";
  EXPECT_EQ(arena_stats.acquires, arena_stats.reuses + arena_stats.rebuilds);
}

}  // namespace
}  // namespace dice::explore
