#include <gtest/gtest.h>

#include <map>

#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/ip.hpp"
#include "util/log.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace dice::util {
namespace {

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = make_error("x.y", "boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "x.y");
  EXPECT_EQ(r.error().to_string(), "x.y: boom");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, StatusSuccessAndFailure) {
  Status ok = Status::success();
  EXPECT_TRUE(ok.ok());
  Status bad = make_error("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "nope");
}

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

TEST(BytesTest, WriteReadRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.str("hello");
  ByteReader r(w.span());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefU);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

TEST(BytesTest, ReaderTruncation) {
  const Bytes data{0x01};
  ByteReader r(data);
  EXPECT_FALSE(r.u16().ok());
  // Failed reads do not consume.
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_TRUE(r.u8().ok());
}

TEST(BytesTest, PlaceholderPatch) {
  ByteWriter w;
  const std::size_t at = w.placeholder(2);
  w.u8(0x77);
  w.patch_u16(at, 0xbeef);
  EXPECT_EQ(w.bytes()[0], 0xbe);
  EXPECT_EQ(w.bytes()[1], 0xef);
  EXPECT_EQ(w.bytes()[2], 0x77);
}

TEST(BytesTest, HexRoundTrip) {
  const Bytes data{0x00, 0xff, 0x1c, 0xa5};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "00ff1ca5");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(BytesTest, HexRejectsBadInput) {
  EXPECT_FALSE(from_hex("abc").ok());   // odd length
  EXPECT_FALSE(from_hex("zz").ok());    // bad digit
}

TEST(BytesTest, VarintRoundTrip) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  (1u << 14) - 1,
                                  1u << 14,
                                  0xdeadbeefULL,
                                  UINT32_MAX,
                                  (1ull << 35),
                                  UINT64_MAX};
  for (std::uint64_t v : values) {
    ByteWriter w;
    w.vu64(v);
    ByteReader r(w.span());
    EXPECT_EQ(r.vu64().value(), v) << v;
    EXPECT_TRUE(r.exhausted());
    if (v <= UINT32_MAX) {
      ByteWriter w32;
      w32.vu32(static_cast<std::uint32_t>(v));
      ByteReader r32(w32.span());
      EXPECT_EQ(r32.vu32().value(), static_cast<std::uint32_t>(v)) << v;
      EXPECT_TRUE(r32.exhausted());
    }
  }
}

TEST(BytesTest, VarintEncodedLengths) {
  const auto encoded_size = [](std::uint64_t v) {
    ByteWriter w;
    w.vu64(v);
    return w.size();
  };
  EXPECT_EQ(encoded_size(0), 1u);
  EXPECT_EQ(encoded_size(127), 1u);
  EXPECT_EQ(encoded_size(128), 2u);
  EXPECT_EQ(encoded_size((1u << 14) - 1), 2u);
  EXPECT_EQ(encoded_size(1u << 14), 3u);
  EXPECT_EQ(encoded_size(UINT32_MAX), 5u);
  EXPECT_EQ(encoded_size(UINT64_MAX), 10u);
}

TEST(BytesTest, ZigzagRoundTrip) {
  const std::int64_t values[] = {0, -1, 1, -2, 2, -64, 63, -65, 64,
                                 INT32_MIN, INT32_MAX, INT64_MIN, INT64_MAX};
  for (std::int64_t v : values) {
    ByteWriter w;
    w.vi64(v);
    ByteReader r(w.span());
    EXPECT_EQ(r.vi64().value(), v) << v;
    if (v >= INT32_MIN && v <= INT32_MAX) {
      ByteWriter w32;
      w32.vi32(static_cast<std::int32_t>(v));
      ByteReader r32(w32.span());
      EXPECT_EQ(r32.vi32().value(), static_cast<std::int32_t>(v)) << v;
    }
  }
  // Small magnitudes of either sign stay one byte on the wire.
  ByteWriter w;
  w.vi32(-1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(BytesTest, VarintTruncated) {
  // Every strict prefix of a multi-byte varint fails soft with
  // bytes.truncated and consumes nothing.
  ByteWriter w;
  w.vu64(UINT64_MAX);
  const Bytes full = std::move(w).take();
  for (std::size_t len = 0; len < full.size(); ++len) {
    const Bytes prefix(full.begin(), full.begin() + static_cast<long>(len));
    ByteReader r(prefix);
    auto v = r.vu64();
    ASSERT_FALSE(v.ok()) << len;
    EXPECT_EQ(v.error().code, "bytes.truncated");
    EXPECT_EQ(r.position(), 0u);
  }
}

TEST(BytesTest, VarintOverlongRejected) {
  // 11 continuation bytes: no terminator within the 10-byte u64 limit.
  const Bytes eleven(11, 0x80);
  ByteReader r(eleven);
  auto v = r.vu64();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error().code, "bytes.varint.malformed");

  // 6-byte encoding overflows a u32 even if each byte is valid LEB128.
  const Bytes six{0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  ByteReader r32(six);
  EXPECT_EQ(r32.vu32().error().code, "bytes.varint.malformed");

  // Payload bits beyond the target width on the final byte are rejected:
  // 5th byte of a u32 varint may only carry 4 low bits.
  const Bytes wide{0xff, 0xff, 0xff, 0xff, 0x1f};
  ByteReader rw(wide);
  EXPECT_EQ(rw.vu32().error().code, "bytes.varint.malformed");
  // ...while 0x0f there still fits (UINT32_MAX).
  const Bytes max{0xff, 0xff, 0xff, 0xff, 0x0f};
  ByteReader rm(max);
  EXPECT_EQ(rm.vu32().value(), UINT32_MAX);
}

TEST(BytesTest, PeekDoesNotConsume) {
  const Bytes data{0x42};
  ByteReader r(data);
  EXPECT_EQ(r.peek_u8().value(), 0x42);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_EQ(r.u8().value(), 0x42);
  EXPECT_FALSE(r.peek_u8().ok());
}

TEST(BytesTest, SkipBounds) {
  const Bytes data{1, 2, 3};
  ByteReader r(data);
  EXPECT_TRUE(r.skip(2).ok());
  EXPECT_FALSE(r.skip(2).ok());
  EXPECT_TRUE(r.skip(1).ok());
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, ParseU64) {
  EXPECT_EQ(parse_u64("0").value(), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615").value(), UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616").ok());  // overflow
  EXPECT_FALSE(parse_u64("").ok());
  EXPECT_FALSE(parse_u64("12x").ok());
  EXPECT_FALSE(parse_u64("-1").ok());
}

TEST(StringsTest, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%s", std::string(300, 'a').c_str()).size(), 300u);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(42);
  ZipfSampler zipf(100, 1.2);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], 1000);  // rank 0 dominates
}

// ---------------------------------------------------------------------------
// Hash
// ---------------------------------------------------------------------------

TEST(HashTest, Fnv1aStable) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
}

TEST(HashTest, MixOrderSensitive) {
  const auto a = hash_mix(hash_mix(kFnvOffset, 1), 2);
  const auto b = hash_mix(hash_mix(kFnvOffset, 2), 1);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// Ip
// ---------------------------------------------------------------------------

TEST(IpTest, ParseFormatAddress) {
  auto addr = IpAddress::parse("10.1.2.3");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value().to_string(), "10.1.2.3");
  EXPECT_EQ(addr.value().value(), 0x0a010203U);
}

TEST(IpTest, ParseRejectsBadAddress) {
  EXPECT_FALSE(IpAddress::parse("10.1.2").ok());
  EXPECT_FALSE(IpAddress::parse("10.1.2.256").ok());
  EXPECT_FALSE(IpAddress::parse("10.1.2.x").ok());
  EXPECT_FALSE(IpAddress::parse("").ok());
}

TEST(IpTest, PrefixMasksHostBits) {
  const IpPrefix p{IpAddress{10, 1, 2, 3}, 16};
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
  EXPECT_EQ(p.length(), 16);
}

TEST(IpTest, PrefixParse) {
  auto p = IpPrefix::parse("192.168.0.0/24");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().to_string(), "192.168.0.0/24");
  EXPECT_FALSE(IpPrefix::parse("192.168.0.0/33").ok());
  EXPECT_FALSE(IpPrefix::parse("192.168.0.0").ok());
}

TEST(IpTest, Containment) {
  const IpPrefix wide{IpAddress{10, 0, 0, 0}, 8};
  const IpPrefix narrow{IpAddress{10, 1, 0, 0}, 16};
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.contains(IpAddress{10, 200, 1, 1}));
  EXPECT_FALSE(wide.contains(IpAddress{11, 0, 0, 1}));
  const IpPrefix all{IpAddress{0}, 0};
  EXPECT_TRUE(all.contains(narrow));
}

TEST(IpTest, TrieInsertFindErase) {
  PrefixTrie<int> trie;
  const IpPrefix a{IpAddress{10, 0, 0, 0}, 8};
  const IpPrefix b{IpAddress{10, 1, 0, 0}, 16};
  EXPECT_TRUE(trie.insert(a, 1));
  EXPECT_TRUE(trie.insert(b, 2));
  EXPECT_FALSE(trie.insert(b, 3));  // overwrite
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.find(b), nullptr);
  EXPECT_EQ(*trie.find(b), 3);
  EXPECT_EQ(trie.erase(b).value_or(-1), 3);
  EXPECT_EQ(trie.find(b), nullptr);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(IpTest, TrieLongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(IpPrefix{IpAddress{10, 0, 0, 0}, 8}, 8);
  trie.insert(IpPrefix{IpAddress{10, 1, 0, 0}, 16}, 16);
  trie.insert(IpPrefix{IpAddress{10, 1, 2, 0}, 24}, 24);
  EXPECT_EQ(*trie.longest_match(IpAddress{10, 1, 2, 3}), 24);
  EXPECT_EQ(*trie.longest_match(IpAddress{10, 1, 9, 1}), 16);
  EXPECT_EQ(*trie.longest_match(IpAddress{10, 9, 9, 9}), 8);
  EXPECT_EQ(trie.longest_match(IpAddress{11, 0, 0, 1}), nullptr);
}

/// Property: trie longest-match agrees with a brute-force linear scan on
/// randomized prefix sets (the kind of invariant DESIGN.md calls for).
TEST(IpTest, TrieMatchesLinearScanProperty) {
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    PrefixTrie<std::size_t> trie;
    std::vector<IpPrefix> prefixes;
    for (int i = 0; i < 64; ++i) {
      const IpPrefix p{IpAddress{static_cast<std::uint32_t>(rng.next())},
                       static_cast<std::uint8_t>(rng.below(33))};
      if (trie.find(p) != nullptr) continue;  // duplicate after normalization
      ASSERT_TRUE(trie.insert(p, prefixes.size()));
      prefixes.push_back(p);
    }
    for (int probe = 0; probe < 200; ++probe) {
      const IpAddress addr{static_cast<std::uint32_t>(rng.next())};
      // Brute force: longest containing prefix.
      const IpPrefix* expect = nullptr;
      for (const IpPrefix& p : prefixes) {
        if (p.contains(addr) && (expect == nullptr || p.length() > expect->length())) {
          expect = &p;
        }
      }
      const std::size_t* got = trie.longest_match(addr);
      if (expect == nullptr) {
        EXPECT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(prefixes[*got], *expect);
      }
    }
  }
}

TEST(IpTest, TrieForEachVisitsAll) {
  PrefixTrie<int> trie;
  trie.insert(IpPrefix{IpAddress{10, 0, 0, 0}, 8}, 1);
  trie.insert(IpPrefix{IpAddress{192, 168, 0, 0}, 16}, 2);
  std::size_t visited = 0;
  trie.for_each([&](const IpPrefix& p, int v) {
    ++visited;
    EXPECT_TRUE((v == 1 && p.length() == 8) || (v == 2 && p.length() == 16));
  });
  EXPECT_EQ(visited, 2u);
}

// ---------------------------------------------------------------------------
// Log
// ---------------------------------------------------------------------------

TEST(LogTest, CaptureAndLevels) {
  LogCapture capture;
  Logger log("test");
  log.info() << "hello " << 42;
  EXPECT_TRUE(capture.contains("hello 42"));
  EXPECT_TRUE(capture.contains("INFO test"));
}

TEST(LogTest, LevelFilters) {
  LogCapture capture;
  Log::set_level(LogLevel::kError);
  Logger log("test");
  log.debug() << "invisible";
  log.error() << "visible";
  EXPECT_FALSE(capture.contains("invisible"));
  EXPECT_TRUE(capture.contains("visible"));
}

}  // namespace
}  // namespace dice::util
