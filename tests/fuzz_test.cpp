#include <gtest/gtest.h>

#include "bgp/codec.hpp"
#include "bgp/sym_update.hpp"
#include "bgp/topology.hpp"
#include "fuzz/bgp_grammar.hpp"
#include "fuzz/grammar.hpp"
#include "fuzz/mutator.hpp"

namespace dice::fuzz {
namespace {

TEST(GrammarTest, LiteralAndSeq) {
  Grammar g;
  const NodeRef root = g.seq({g.literal({1, 2}), g.byte(3)});
  util::Rng rng(1);
  EXPECT_EQ(g.generate(root, rng), (util::Bytes{1, 2, 3}));
}

TEST(GrammarTest, ByteRangeStaysInRange) {
  Grammar g;
  const NodeRef root = g.byte_range(10, 20);
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const util::Bytes out = g.generate(root, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GE(out[0], 10);
    EXPECT_LE(out[0], 20);
  }
}

TEST(GrammarTest, ChoiceRespectsWeights) {
  Grammar g;
  const NodeRef root = g.choice({g.byte(1), g.byte(2)}, {95, 5});
  util::Rng rng(3);
  int ones = 0;
  for (int i = 0; i < 1000; ++i) {
    if (g.generate(root, rng)[0] == 1) ++ones;
  }
  EXPECT_GT(ones, 850);
}

TEST(GrammarTest, RepeatBounds) {
  Grammar g;
  const NodeRef root = g.repeat(g.byte(7), 2, 5);
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = g.generate(root, rng).size();
    EXPECT_GE(n, 2u);
    EXPECT_LE(n, 5u);
  }
}

TEST(GrammarTest, LengthPrefixesAreCorrect) {
  Grammar g;
  const NodeRef root = g.len16(g.repeat(g.byte(9), 3, 3));
  util::Rng rng(5);
  const util::Bytes out = g.generate(root, rng);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 3);
}

TEST(GrammarTest, CorruptionPerturbsLengths) {
  Grammar g;
  const NodeRef root = g.len8(g.repeat(g.byte(9), 4, 4));
  util::Rng rng(6);
  GenerateOptions options;
  options.corruption_rate = 1.0;  // always corrupt
  int corrupted = 0;
  for (int i = 0; i < 100; ++i) {
    const util::Bytes out = g.generate(root, rng, options);
    if (out[0] != 4) ++corrupted;
  }
  EXPECT_GT(corrupted, 90);
}

TEST(GrammarTest, DeterministicPerSeed) {
  Grammar g;
  const NodeRef root = g.repeat(g.byte_range(0, 255), 1, 8);
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(g.generate(root, a), g.generate(root, b));
  }
}

// ---------------------------------------------------------------------------
// BGP grammar
// ---------------------------------------------------------------------------

TEST(BgpGrammarTest, SeedsHarvestConfigConstants) {
  const bgp::SystemBlueprint bp = bgp::make_internet({2, 3, 4});
  const BgpGrammarSeeds seeds = BgpGrammarSeeds::from_config(bp.configs[3]);
  EXPECT_FALSE(seeds.known_prefixes.empty());
  EXPECT_FALSE(seeds.known_asns.empty());
  // The Gao-Rexford community tags must be visible to the fuzzer.
  EXPECT_TRUE(std::find(seeds.known_communities.begin(), seeds.known_communities.end(),
                        bgp::gao_rexford::kCustomerRoute) != seeds.known_communities.end());
}

TEST(BgpGrammarTest, MostGeneratedBodiesDecode) {
  // Paper §2 insight (iii): grammar fuzzing yields a high valid-input rate.
  const bgp::SystemBlueprint bp = bgp::make_internet({2, 3, 4});
  const BgpUpdateGrammar grammar(BgpGrammarSeeds::from_config(bp.configs[3]));
  util::Rng rng(7);
  int valid = 0;
  const int total = 500;
  for (int i = 0; i < total; ++i) {
    const util::Bytes body = grammar.generate_body(rng, /*corruption_rate=*/0.0);
    if (bgp::decode(bgp::wrap_update_body(body)).ok()) ++valid;
  }
  // The grammar intentionally keeps a small invalid tail (weights in
  // bgp_grammar.cpp); "most" means a strong majority.
  EXPECT_GT(valid, total / 2);
}

TEST(BgpGrammarTest, GeneratesFullMessagesWithHeader) {
  const bgp::SystemBlueprint bp = bgp::make_line(2);
  const BgpUpdateGrammar grammar(BgpGrammarSeeds::from_config(bp.configs[0]));
  util::Rng rng(8);
  const util::Bytes msg = grammar.generate_message(rng);
  ASSERT_GE(msg.size(), bgp::kHeaderLength);
  EXPECT_EQ(msg[0], 0xff);
  EXPECT_EQ(msg[bgp::kHeaderLength - 1],
            static_cast<std::uint8_t>(bgp::MessageType::kUpdate));
}

TEST(BgpGrammarTest, DefaultSeedsWhenConfigEmpty) {
  bgp::RouterConfig empty;
  const BgpGrammarSeeds seeds = BgpGrammarSeeds::from_config(empty);
  EXPECT_FALSE(seeds.known_prefixes.empty());
  EXPECT_FALSE(seeds.known_communities.empty());
}

// ---------------------------------------------------------------------------
// Mutator
// ---------------------------------------------------------------------------

TEST(MutatorTest, ProducesDifferentBytes) {
  Mutator mutator;
  util::Rng rng(9);
  const util::Bytes input{1, 2, 3, 4, 5, 6, 7, 8};
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    if (mutator.mutate(input, rng) != input) ++changed;
  }
  EXPECT_GT(changed, 95);
}

TEST(MutatorTest, DeterministicPerSeed) {
  Mutator mutator;
  util::Rng a(10);
  util::Rng b(10);
  const util::Bytes input{9, 9, 9, 9};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(mutator.mutate(input, a), mutator.mutate(input, b));
  }
}

TEST(MutatorTest, RespectsMaxSize) {
  MutatorOptions options;
  options.max_size = 16;
  options.min_mutations = 8;
  options.max_mutations = 8;
  Mutator mutator(options);
  util::Rng rng(11);
  util::Bytes input(16, 0xaa);
  for (int i = 0; i < 200; ++i) {
    input = mutator.mutate(input, rng);
    EXPECT_LE(input.size(), 16u);
    EXPECT_FALSE(input.empty());
  }
}

TEST(MutatorTest, EmptyInputGrows) {
  Mutator mutator;
  util::Rng rng(12);
  EXPECT_FALSE(mutator.mutate({}, rng).empty());
}

TEST(MutatorTest, SpliceCombinesBothParents) {
  Mutator mutator;
  util::Rng rng(13);
  const util::Bytes a(8, 0x11);
  const util::Bytes b(8, 0x22);
  bool saw_both = false;
  for (int i = 0; i < 50 && !saw_both; ++i) {
    const util::Bytes child = mutator.splice(a, b, rng);
    const bool has_a = std::find(child.begin(), child.end(), 0x11) != child.end();
    const bool has_b = std::find(child.begin(), child.end(), 0x22) != child.end();
    saw_both = has_a && has_b;
  }
  EXPECT_TRUE(saw_both);
}

}  // namespace
}  // namespace dice::fuzz
