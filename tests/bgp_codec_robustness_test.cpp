// Robustness properties of the wire codec: with no injected bugs, decode()
// must be total — it either returns a message or a typed error, never
// throws, never reads out of bounds (the fuzzing contract that makes the
// live router safe against arbitrary peers).
#include <gtest/gtest.h>

#include "bgp/checkpoint_codec.hpp"
#include "bgp/codec.hpp"
#include "bgp/sym_update.hpp"
#include "bgp/topology.hpp"
#include "dice/system.hpp"
#include "fuzz/bgp_grammar.hpp"
#include "fuzz/mutator.hpp"

namespace dice::bgp {
namespace {

class CodecRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRobustness, RandomBytesNeverThrow) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 2000; ++round) {
    util::Bytes data(rng.below(128));
    for (auto& b : data) b = rng.byte();
    EXPECT_NO_THROW({
      auto result = decode(data);
      (void)result;
    });
  }
}

TEST_P(CodecRobustness, FramedRandomBodiesNeverThrow) {
  util::Rng rng(GetParam() ^ 0xf00d);
  for (int round = 0; round < 2000; ++round) {
    util::Bytes body(rng.below(96));
    for (auto& b : body) b = rng.byte();
    const util::Bytes message = wrap_update_body(body);
    EXPECT_NO_THROW({
      auto result = decode(message);
      if (!result.ok()) {
        // Errors map to a NOTIFICATION without crashing either.
        (void)error_to_notification(result.error());
      }
    });
  }
}

TEST_P(CodecRobustness, MutatedValidMessagesNeverThrow) {
  util::Rng rng(GetParam() ^ 0xbeef);
  const SystemBlueprint bp = make_internet({2, 3, 4});
  const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(bp.configs[3]));
  const fuzz::Mutator mutator;
  for (int round = 0; round < 1000; ++round) {
    util::Bytes message = grammar.generate_message(rng);
    message = mutator.mutate(message, rng);
    EXPECT_NO_THROW({ (void)decode(message); });
  }
}

TEST_P(CodecRobustness, SymbolicHandlerTotalOnArbitraryBodies) {
  // The instrumented handler (no bugs) is equally total: every body either
  // parses or yields a typed error; CrashSignal requires an enabled bug.
  util::Rng rng(GetParam() ^ 0x5151);
  const SystemBlueprint bp = make_internet({2, 3, 4});
  const RouterConfig& config = bp.configs[3];
  SymHandlerEnv env;
  env.config = &config;
  for (int round = 0; round < 500; ++round) {
    util::Bytes body(rng.below(96));
    for (auto& b : body) b = rng.byte();
    concolic::SymCtx ctx(body);
    concolic::SymScope scope(ctx);
    EXPECT_NO_THROW({
      const SymHandlerResult result = sym_handle_update(ctx, env);
      EXPECT_TRUE(result.decode_ok || !result.error_code.empty());
    });
    EXPECT_FALSE(ctx.crashed());
  }
}

TEST_P(CodecRobustness, DecodeEncodeDecodeIsStable) {
  // Anything that decodes must re-encode to something that decodes to the
  // same message (idempotence of the canonical form).
  util::Rng rng(GetParam() ^ 0xcafe);
  const SystemBlueprint bp = make_internet({2, 3, 4});
  const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(bp.configs[3]));
  std::size_t checked = 0;
  for (int round = 0; round < 1000; ++round) {
    const util::Bytes message = grammar.generate_message(rng, /*corruption_rate=*/0.02);
    auto first = decode(message);
    if (!first.ok()) continue;
    auto encoded = encode(first.value());
    ASSERT_TRUE(encoded.ok());
    auto second = decode(encoded.value());
    ASSERT_TRUE(second.ok()) << second.error().to_string();
    EXPECT_EQ(first.value(), second.value());
    ++checked;
  }
  EXPECT_GT(checked, 400u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRobustness, ::testing::Values(17, 34, 51));

// ---------------------------------------------------------------------------
// v2 checkpoint stream robustness: parse() must be total on hostile bytes
// ---------------------------------------------------------------------------

/// A converged router's real v2 checkpoint — the corpus seed for the
/// adversarial decode loops below.
[[nodiscard]] util::Bytes checkpoint_corpus(core::System& system, sim::NodeId node) {
  util::ByteWriter writer;
  system.router(node).checkpoint(writer);
  return std::move(writer).take();
}

TEST(CheckpointRobustnessTest, EveryTruncatedPrefixFailsCleanly) {
  core::System system(make_internet({2, 3, 4}));
  system.start();
  ASSERT_TRUE(system.converge());
  const util::Bytes full = checkpoint_corpus(system, 3);
  ASSERT_GT(full.size(), 8u);
  // The whole stream parses; every strict prefix is a typed error (never a
  // throw, never an out-of-bounds read, never a silent partial decode).
  {
    util::ByteReader reader(full);
    auto decoded = system.router(3).parse(reader);
    ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  }
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    util::Bytes prefix(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    util::ByteReader reader(prefix);
    EXPECT_NO_THROW({
      auto decoded = system.router(3).parse(reader);
      EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
    });
  }
}

TEST(CheckpointRobustnessTest, SingleByteCorruptionsNeverThrow) {
  core::System system(make_internet({2, 3, 4}));
  system.start();
  ASSERT_TRUE(system.converge());
  const util::Bytes full = checkpoint_corpus(system, 3);
  // Flip every byte through a handful of values: the decoder must return a
  // message or a typed error for each mutation, and decoding the pristine
  // stream afterwards still works (no hidden state in parse).
  for (std::size_t i = 0; i < full.size(); ++i) {
    for (const std::uint8_t flip : {std::uint8_t{0xff}, std::uint8_t{0x80},
                                    static_cast<std::uint8_t>(full[i] + 1)}) {
      util::Bytes mutated = full;
      mutated[i] = flip;
      util::ByteReader reader(mutated);
      EXPECT_NO_THROW({ (void)system.router(3).parse(reader); });
    }
  }
  util::ByteReader reader(full);
  EXPECT_TRUE(system.router(3).parse(reader).ok());
}

TEST(CheckpointRobustnessTest, UnknownTagAndOverlongVarintRejected) {
  core::System system(make_internet({2, 3, 4}));
  system.start();
  ASSERT_TRUE(system.converge());

  // Unknown section tag right after the (empty) attr pool.
  util::ByteWriter writer;
  writer.u8(ckpt::kFormatV2);
  writer.u8(static_cast<std::uint8_t>(ckpt::Tag::kAttrPool));
  writer.vu32(0);
  writer.u8(0x7e);  // no such tag
  util::Bytes stream = std::move(writer).take();
  util::ByteReader reader(stream);
  auto decoded = system.router(3).parse(reader);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "router.restore.unknown_tag");

  // Overlong varint as the sessions count: 6 continuation bytes overflow a
  // vu32 — the malformed-varint error surfaces through the section code.
  util::ByteWriter overlong;
  overlong.u8(ckpt::kFormatV2);
  overlong.u8(static_cast<std::uint8_t>(ckpt::Tag::kSessions));
  for (int i = 0; i < 6; ++i) overlong.u8(0x80);
  overlong.u8(0x01);
  util::Bytes bad = std::move(overlong).take();
  util::ByteReader bad_reader(bad);
  auto bad_decoded = system.router(3).parse(bad_reader);
  ASSERT_FALSE(bad_decoded.ok());
  EXPECT_EQ(bad_decoded.error().code, "router.restore.sessions");

  // Out-of-range attr pool index inside a Loc-RIB route.
  util::ByteWriter pool_oob;
  pool_oob.u8(ckpt::kFormatV2);
  pool_oob.u8(static_cast<std::uint8_t>(ckpt::Tag::kAttrPool));
  pool_oob.vu32(0);  // empty pool
  pool_oob.u8(static_cast<std::uint8_t>(ckpt::Tag::kLocRib));
  pool_oob.vu32(1);                  // one route
  pool_oob.u32(0x0a640000);          // prefix 10.100.0.0
  pool_oob.u8(16);
  pool_oob.vu32(7);                  // pool index 7 into an empty pool
  util::Bytes oob = std::move(pool_oob).take();
  util::ByteReader oob_reader(oob);
  auto oob_decoded = system.router(3).parse(oob_reader);
  ASSERT_FALSE(oob_decoded.ok());
  EXPECT_EQ(oob_decoded.error().code, "router.restore.loc_rib");
}

TEST(SnapshotFailureTest, PartitionedSystemSnapshotFailsGracefully) {
  // Failure injection: markers cannot cross a partition, so the snapshot
  // cannot complete — take_snapshot must report failure, not hang.
  core::System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());
  system.network().set_link_up(1, 2, false);
  EXPECT_EQ(system.take_snapshot(0), 0u);
  // Healing the partition restores snapshot capability once sessions are
  // back up.
  system.network().set_link_up(1, 2, true);
  ASSERT_TRUE(system.converge());
  EXPECT_NE(system.take_snapshot(0), 0u);
}

}  // namespace
}  // namespace dice::bgp
