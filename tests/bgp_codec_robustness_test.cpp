// Robustness properties of the wire codec: with no injected bugs, decode()
// must be total — it either returns a message or a typed error, never
// throws, never reads out of bounds (the fuzzing contract that makes the
// live router safe against arbitrary peers).
#include <gtest/gtest.h>

#include "bgp/codec.hpp"
#include "bgp/sym_update.hpp"
#include "bgp/topology.hpp"
#include "dice/system.hpp"
#include "fuzz/bgp_grammar.hpp"
#include "fuzz/mutator.hpp"

namespace dice::bgp {
namespace {

class CodecRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRobustness, RandomBytesNeverThrow) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 2000; ++round) {
    util::Bytes data(rng.below(128));
    for (auto& b : data) b = rng.byte();
    EXPECT_NO_THROW({
      auto result = decode(data);
      (void)result;
    });
  }
}

TEST_P(CodecRobustness, FramedRandomBodiesNeverThrow) {
  util::Rng rng(GetParam() ^ 0xf00d);
  for (int round = 0; round < 2000; ++round) {
    util::Bytes body(rng.below(96));
    for (auto& b : body) b = rng.byte();
    const util::Bytes message = wrap_update_body(body);
    EXPECT_NO_THROW({
      auto result = decode(message);
      if (!result.ok()) {
        // Errors map to a NOTIFICATION without crashing either.
        (void)error_to_notification(result.error());
      }
    });
  }
}

TEST_P(CodecRobustness, MutatedValidMessagesNeverThrow) {
  util::Rng rng(GetParam() ^ 0xbeef);
  const SystemBlueprint bp = make_internet({2, 3, 4});
  const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(bp.configs[3]));
  const fuzz::Mutator mutator;
  for (int round = 0; round < 1000; ++round) {
    util::Bytes message = grammar.generate_message(rng);
    message = mutator.mutate(message, rng);
    EXPECT_NO_THROW({ (void)decode(message); });
  }
}

TEST_P(CodecRobustness, SymbolicHandlerTotalOnArbitraryBodies) {
  // The instrumented handler (no bugs) is equally total: every body either
  // parses or yields a typed error; CrashSignal requires an enabled bug.
  util::Rng rng(GetParam() ^ 0x5151);
  const SystemBlueprint bp = make_internet({2, 3, 4});
  const RouterConfig& config = bp.configs[3];
  SymHandlerEnv env;
  env.config = &config;
  for (int round = 0; round < 500; ++round) {
    util::Bytes body(rng.below(96));
    for (auto& b : body) b = rng.byte();
    concolic::SymCtx ctx(body);
    concolic::SymScope scope(ctx);
    EXPECT_NO_THROW({
      const SymHandlerResult result = sym_handle_update(ctx, env);
      EXPECT_TRUE(result.decode_ok || !result.error_code.empty());
    });
    EXPECT_FALSE(ctx.crashed());
  }
}

TEST_P(CodecRobustness, DecodeEncodeDecodeIsStable) {
  // Anything that decodes must re-encode to something that decodes to the
  // same message (idempotence of the canonical form).
  util::Rng rng(GetParam() ^ 0xcafe);
  const SystemBlueprint bp = make_internet({2, 3, 4});
  const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(bp.configs[3]));
  std::size_t checked = 0;
  for (int round = 0; round < 1000; ++round) {
    const util::Bytes message = grammar.generate_message(rng, /*corruption_rate=*/0.02);
    auto first = decode(message);
    if (!first.ok()) continue;
    auto encoded = encode(first.value());
    ASSERT_TRUE(encoded.ok());
    auto second = decode(encoded.value());
    ASSERT_TRUE(second.ok()) << second.error().to_string();
    EXPECT_EQ(first.value(), second.value());
    ++checked;
  }
  EXPECT_GT(checked, 400u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRobustness, ::testing::Values(17, 34, 51));

TEST(SnapshotFailureTest, PartitionedSystemSnapshotFailsGracefully) {
  // Failure injection: markers cannot cross a partition, so the snapshot
  // cannot complete — take_snapshot must report failure, not hang.
  core::System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());
  system.network().set_link_up(1, 2, false);
  EXPECT_EQ(system.take_snapshot(0), 0u);
  // Healing the partition restores snapshot capability once sessions are
  // back up.
  system.network().set_link_up(1, 2, true);
  ASSERT_TRUE(system.converge());
  EXPECT_NE(system.take_snapshot(0), 0u);
}

}  // namespace
}  // namespace dice::bgp
