// Unit tests for the input-subjection strategies.
#include <gtest/gtest.h>

#include "bgp/codec.hpp"
#include "dice/inputs.hpp"

namespace dice::core {
namespace {

using bgp::make_internet;
using bgp::make_line;

class InputsTest : public ::testing::Test {
 protected:
  InputsTest() : system_(make_internet({2, 3, 4})) {
    system_.start();
    EXPECT_TRUE(system_.converge());
  }
  System system_;
};

TEST_F(InputsTest, GrammarStrategyProducesRequestedBatch) {
  GrammarStrategy strategy(/*corruption_rate=*/0.0);
  strategy.on_episode(system_, /*explorer=*/3);
  const auto batch = strategy.next_batch(25);
  EXPECT_EQ(batch.size(), 25u);
  // Bodies wrap into decodable UPDATE messages most of the time.
  std::size_t valid = 0;
  for (const auto& body : batch) {
    if (bgp::decode(bgp::wrap_update_body(body)).ok()) ++valid;
  }
  EXPECT_GT(valid, 12u);
}

TEST_F(InputsTest, StrictGrammarStrategyIsAllValid) {
  GrammarStrategy strategy(/*corruption_rate=*/0.0, /*rng_seed=*/1, /*strict=*/true);
  strategy.on_episode(system_, 3);
  for (const auto& body : strategy.next_batch(50)) {
    EXPECT_TRUE(bgp::decode(bgp::wrap_update_body(body)).ok())
        << util::to_hex(body);
  }
}

TEST_F(InputsTest, RandomStrategyNeedsNoEpisode) {
  RandomStrategy strategy;
  strategy.on_episode(system_, 0);
  const auto batch = strategy.next_batch(10);
  EXPECT_EQ(batch.size(), 10u);
  for (const auto& body : batch) EXPECT_FALSE(body.empty());
}

TEST_F(InputsTest, ConcolicStrategyGeneratesAndTracksStats) {
  ConcolicStrategy strategy;
  strategy.on_episode(system_, 3);
  const auto batch = strategy.next_batch(20);
  EXPECT_FALSE(batch.empty());
  EXPECT_LE(batch.size(), 20u);
  EXPECT_GT(strategy.stats().executions, 0u);
  EXPECT_GT(strategy.stats().unique_paths, 0u);
  EXPECT_GT(strategy.stats().branch_points, 0u);

  // Second batch continues the same episode's exploration.
  const auto more = strategy.next_batch(20);
  EXPECT_FALSE(more.empty());
  EXPECT_GT(strategy.stats().executions, batch.size());
}

TEST_F(InputsTest, ConcolicStrategyRetargetsPerEpisode) {
  ConcolicStrategy strategy;
  strategy.on_episode(system_, 0);
  (void)strategy.next_batch(5);
  const auto execs_before = strategy.stats().executions;
  strategy.on_episode(system_, 7);  // new explorer: fresh engine, stats keep accumulating
  (void)strategy.next_batch(5);
  EXPECT_GT(strategy.stats().executions, execs_before);
}

TEST_F(InputsTest, ConcolicFindsInjectedBugDuringGeneration) {
  // Strategy-level check (no clones involved): the engine's own crash
  // log must contain the injected parser bug.
  bgp::SystemBlueprint bp = make_line(2);
  bgp::inject_bug(bp, 0, bgp::bugs::kCommunityLength);
  System buggy(std::move(bp));
  buggy.start();
  ASSERT_TRUE(buggy.converge());

  ConcolicStrategy::Options options;
  options.engine.max_executions = 3000;
  ConcolicStrategy strategy(options);
  strategy.on_episode(buggy, 0);
  for (int i = 0; i < 20 && strategy.crashes().empty(); ++i) {
    (void)strategy.next_batch(50);
  }
  ASSERT_FALSE(strategy.crashes().empty());
  EXPECT_NE(strategy.crashes()[0].reason.find("community_length"), std::string::npos);
}

TEST_F(InputsTest, StrategiesAreDeterministicPerSeed) {
  GrammarStrategy a(/*corruption_rate=*/0.1, /*rng_seed=*/42);
  GrammarStrategy b(/*corruption_rate=*/0.1, /*rng_seed=*/42);
  a.on_episode(system_, 3);
  b.on_episode(system_, 3);
  EXPECT_EQ(a.next_batch(10), b.next_batch(10));

  RandomStrategy ra(7);
  RandomStrategy rb(7);
  ra.on_episode(system_, 0);
  rb.on_episode(system_, 0);
  EXPECT_EQ(ra.next_batch(10), rb.next_batch(10));
}

}  // namespace
}  // namespace dice::core
