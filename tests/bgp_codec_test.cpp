#include <gtest/gtest.h>

#include "bgp/codec.hpp"
#include "concolic/context.hpp"
#include "util/rng.hpp"

namespace dice::bgp {
namespace {

using util::Bytes;
using util::IpAddress;
using util::IpPrefix;

[[nodiscard]] UpdateMessage sample_update() {
  UpdateMessage m;
  m.withdrawn.push_back(IpPrefix{IpAddress{192, 168, 0, 0}, 16});
  m.attrs.origin = Origin::kIgp;
  m.attrs.as_path = AsPath{{65001, 65002}};
  m.attrs.next_hop = IpAddress{10, 0, 0, 1};
  m.attrs.med = 50;
  m.attrs.local_pref = 200;
  m.attrs.atomic_aggregate = true;
  m.attrs.aggregator = Aggregator{65001, IpAddress{10, 0, 0, 9}};
  m.attrs.add_community(make_community(65001, 100));
  m.attrs.add_community(well_known::kNoExport);
  m.nlri.push_back(IpPrefix{IpAddress{10, 1, 0, 0}, 16});
  m.nlri.push_back(IpPrefix{IpAddress{10, 2, 3, 0}, 24});
  return m;
}

TEST(CodecTest, OpenRoundTrip) {
  OpenMessage open;
  open.my_asn = 65010;
  open.hold_time = 180;
  open.router_id = IpAddress{1, 2, 3, 4}.value();
  open.opt_params = {1, 2, 3};
  auto encoded = encode(Message{open});
  ASSERT_TRUE(encoded.ok());
  auto decoded = decode(encoded.value());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(std::get<OpenMessage>(decoded.value()), open);
}

TEST(CodecTest, KeepaliveRoundTrip) {
  auto encoded = encode(Message{KeepaliveMessage{}});
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.value().size(), kHeaderLength);
  auto decoded = decode(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::holds_alternative<KeepaliveMessage>(decoded.value()));
}

TEST(CodecTest, NotificationRoundTrip) {
  NotificationMessage notif;
  notif.code = NotifCode::kUpdateMessageError;
  notif.subcode = 5;
  notif.data = {0xde, 0xad};
  auto encoded = encode(Message{notif});
  ASSERT_TRUE(encoded.ok());
  auto decoded = decode(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<NotificationMessage>(decoded.value()), notif);
}

TEST(CodecTest, UpdateRoundTrip) {
  const UpdateMessage m = sample_update();
  auto encoded = encode(Message{m});
  ASSERT_TRUE(encoded.ok());
  auto decoded = decode(encoded.value());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(std::get<UpdateMessage>(decoded.value()), m);
}

TEST(CodecTest, WithdrawOnlyUpdate) {
  UpdateMessage m;
  m.withdrawn.push_back(IpPrefix{IpAddress{10, 5, 0, 0}, 16});
  auto encoded = encode(Message{m});
  ASSERT_TRUE(encoded.ok());
  auto decoded = decode(encoded.value());
  ASSERT_TRUE(decoded.ok());
  const auto& out = std::get<UpdateMessage>(decoded.value());
  EXPECT_EQ(out.withdrawn, m.withdrawn);
  EXPECT_TRUE(out.nlri.empty());
}

TEST(CodecTest, PrefixWireFormatPacksBytes) {
  util::ByteWriter w;
  encode_prefix(w, IpPrefix{IpAddress{10, 1, 2, 0}, 24});
  // 1 length byte + 3 address bytes only.
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 24);
  encode_prefix(w, IpPrefix{IpAddress{0}, 0});
  EXPECT_EQ(w.size(), 5u);  // default route: single length byte
}

TEST(CodecTest, PrefixDecodeRejectsBadLength) {
  const Bytes raw{40, 1, 2, 3, 4, 5};
  util::ByteReader r(raw);
  EXPECT_FALSE(decode_prefix(r).ok());
}

TEST(CodecTest, BadMarkerRejected) {
  auto encoded = encode(Message{KeepaliveMessage{}});
  ASSERT_TRUE(encoded.ok());
  Bytes tampered = encoded.value();
  tampered[3] = 0x00;
  auto decoded = decode(tampered);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bgp.header.connection_not_synchronized");
  EXPECT_EQ(error_to_notification(decoded.error()).code, NotifCode::kMessageHeaderError);
}

TEST(CodecTest, LengthMismatchRejected) {
  auto encoded = encode(Message{KeepaliveMessage{}});
  Bytes tampered = encoded.value();
  tampered.push_back(0x00);  // actual size no longer matches header length
  auto decoded = decode(tampered);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bgp.header.bad_message_length");
}

TEST(CodecTest, BadTypeRejected) {
  auto encoded = encode(Message{KeepaliveMessage{}});
  Bytes tampered = encoded.value();
  tampered[18] = 9;
  auto decoded = decode(tampered);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bgp.header.bad_message_type");
}

// --- attribute validation ---------------------------------------------------

/// Builds a raw UPDATE with the given attribute bytes and one NLRI entry.
[[nodiscard]] Bytes raw_update_with_attrs(const Bytes& attr_bytes) {
  util::ByteWriter w;
  for (std::size_t i = 0; i < kMarkerLength; ++i) w.u8(0xff);
  const std::size_t len_at = w.placeholder(2);
  w.u8(static_cast<std::uint8_t>(MessageType::kUpdate));
  w.u16(0);  // no withdrawn
  w.u16(static_cast<std::uint16_t>(attr_bytes.size()));
  w.raw(attr_bytes);
  w.u8(16);  // NLRI 10.9.0.0/16
  w.u8(10);
  w.u8(9);
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size()));
  return std::move(w).take();
}

[[nodiscard]] Bytes mandatory_attrs() {
  util::ByteWriter w;
  w.u8(attr_flags::kTransitive);
  w.u8(1);  // ORIGIN
  w.u8(1);
  w.u8(0);
  w.u8(attr_flags::kTransitive);
  w.u8(2);  // AS_PATH: one SEQUENCE of one ASN
  w.u8(4);
  w.u8(2);
  w.u8(1);
  w.u16(65001);
  w.u8(attr_flags::kTransitive);
  w.u8(3);  // NEXT_HOP
  w.u8(4);
  w.u32(IpAddress{10, 0, 0, 2}.value());
  return std::move(w).take();
}

TEST(CodecTest, MissingMandatoryAttrRejected) {
  util::ByteWriter w;  // only ORIGIN present
  w.u8(attr_flags::kTransitive);
  w.u8(1);
  w.u8(1);
  w.u8(0);
  auto decoded = decode(raw_update_with_attrs(std::move(w).take()));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bgp.update.missing_well_known");
  EXPECT_EQ(error_to_notification(decoded.error()).subcode,
            static_cast<std::uint8_t>(UpdateError::kMissingWellKnownAttribute));
}

TEST(CodecTest, DuplicateAttributeRejected) {
  Bytes attrs = mandatory_attrs();
  const Bytes dup = mandatory_attrs();
  attrs.insert(attrs.end(), dup.begin(), dup.begin() + 4);  // second ORIGIN
  auto decoded = decode(raw_update_with_attrs(attrs));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bgp.update.malformed_attribute_list");
}

TEST(CodecTest, BadOriginValueRejected) {
  Bytes attrs = mandatory_attrs();
  attrs[3] = 9;  // ORIGIN value
  auto decoded = decode(raw_update_with_attrs(attrs));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bgp.update.invalid_origin");
}

TEST(CodecTest, BadOriginFlagsRejected) {
  Bytes attrs = mandatory_attrs();
  attrs[0] = attr_flags::kOptional | attr_flags::kTransitive;  // well-known must not be optional
  auto decoded = decode(raw_update_with_attrs(attrs));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bgp.update.attribute_flags");
}

TEST(CodecTest, BadAttrLengthRejected) {
  Bytes attrs = mandatory_attrs();
  attrs[2] = 2;  // ORIGIN length must be 1 — also shifts parsing
  auto decoded = decode(raw_update_with_attrs(attrs));
  EXPECT_FALSE(decoded.ok());
}

TEST(CodecTest, EmptyAsSegmentRejected) {
  util::ByteWriter w;
  w.u8(attr_flags::kTransitive);
  w.u8(1);
  w.u8(1);
  w.u8(0);
  w.u8(attr_flags::kTransitive);
  w.u8(2);
  w.u8(2);
  w.u8(2);  // SEQUENCE
  w.u8(0);  // zero ASNs: invalid
  w.u8(attr_flags::kTransitive);
  w.u8(3);
  w.u8(4);
  w.u32(IpAddress{10, 0, 0, 2}.value());
  auto decoded = decode(raw_update_with_attrs(std::move(w).take()));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bgp.update.malformed_as_path");
}

TEST(CodecTest, CommunityNotMultipleOf4Rejected) {
  Bytes attrs = mandatory_attrs();
  attrs.push_back(attr_flags::kOptional | attr_flags::kTransitive);
  attrs.push_back(8);  // COMMUNITY
  attrs.push_back(3);  // length 3: invalid
  attrs.push_back(0xff);
  attrs.push_back(0xff);
  attrs.push_back(0x01);
  auto decoded = decode(raw_update_with_attrs(attrs));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bgp.update.attribute_length");
}

TEST(CodecTest, UnknownOptionalTransitivePreservedWithPartialBit) {
  Bytes attrs = mandatory_attrs();
  attrs.push_back(attr_flags::kOptional | attr_flags::kTransitive);
  attrs.push_back(222);
  attrs.push_back(2);
  attrs.push_back(0xca);
  attrs.push_back(0xfe);
  auto decoded = decode(raw_update_with_attrs(attrs));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  const auto& update = std::get<UpdateMessage>(decoded.value());
  ASSERT_EQ(update.attrs.unknown.size(), 1u);
  EXPECT_EQ(update.attrs.unknown[0].type, 222);
  EXPECT_NE(update.attrs.unknown[0].flags & attr_flags::kPartial, 0);
  EXPECT_EQ(update.attrs.unknown[0].value, (Bytes{0xca, 0xfe}));
}

TEST(CodecTest, UnknownWellKnownRejected) {
  Bytes attrs = mandatory_attrs();
  attrs.push_back(attr_flags::kTransitive);  // well-known (not optional)
  attrs.push_back(99);
  attrs.push_back(0);
  auto decoded = decode(raw_update_with_attrs(attrs));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bgp.update.unrecognized_well_known");
}

// --- injected bugs ------------------------------------------------------------

TEST(CodecTest, CommunityLengthBugCrashesWhenEnabled) {
  Bytes attrs = mandatory_attrs();
  attrs.push_back(attr_flags::kOptional | attr_flags::kTransitive);
  attrs.push_back(8);
  attrs.push_back(5);
  for (int i = 0; i < 5; ++i) attrs.push_back(0x01);
  const Bytes raw = raw_update_with_attrs(attrs);
  // Without the bug: clean RFC error.
  EXPECT_FALSE(decode(raw).ok());
  // With the bug: crash signal.
  DecodeOptions buggy;
  buggy.bug_mask = bugs::kCommunityLength;
  EXPECT_THROW((void)decode(raw, buggy), concolic::CrashSignal);
}

TEST(CodecTest, MedOverflowBugCrashesWhenEnabled) {
  Bytes attrs = mandatory_attrs();
  attrs.push_back(attr_flags::kOptional);
  attrs.push_back(4);  // MED
  attrs.push_back(4);
  for (int i = 0; i < 4; ++i) attrs.push_back(0xff);
  const Bytes raw = raw_update_with_attrs(attrs);
  EXPECT_TRUE(decode(raw).ok());  // 0xffffffff is a legal MED
  DecodeOptions buggy;
  buggy.bug_mask = bugs::kMedOverflow;
  EXPECT_THROW((void)decode(raw, buggy), concolic::CrashSignal);
}

TEST(CodecTest, AsPathZeroSegmentBugCrashesWhenEnabled) {
  util::ByteWriter w;
  w.u8(attr_flags::kTransitive);
  w.u8(1);
  w.u8(1);
  w.u8(0);
  w.u8(attr_flags::kTransitive);
  w.u8(2);
  w.u8(2);
  w.u8(2);
  w.u8(0);
  w.u8(attr_flags::kTransitive);
  w.u8(3);
  w.u8(4);
  w.u32(IpAddress{10, 0, 0, 2}.value());
  const Bytes raw = raw_update_with_attrs(std::move(w).take());
  EXPECT_FALSE(decode(raw).ok());
  DecodeOptions buggy;
  buggy.bug_mask = bugs::kAsPathZeroSegment;
  EXPECT_THROW((void)decode(raw, buggy), concolic::CrashSignal);
}

// --- randomized round-trip property -------------------------------------------

class CodecRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTripProperty, RandomUpdatesRoundTrip) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    UpdateMessage m;
    const std::size_t withdrawn = rng.below(3);
    for (std::size_t i = 0; i < withdrawn; ++i) {
      m.withdrawn.push_back(IpPrefix{IpAddress{static_cast<std::uint32_t>(rng.next())},
                                     static_cast<std::uint8_t>(rng.below(33))});
    }
    const std::size_t nlri = rng.below(4);
    if (nlri > 0) {
      m.attrs.origin = static_cast<Origin>(rng.below(3));
      std::vector<Asn> path;
      for (std::size_t i = 0; i < 1 + rng.below(4); ++i) {
        path.push_back(static_cast<Asn>(1 + rng.below(65534)));
      }
      m.attrs.as_path = AsPath{path};
      m.attrs.next_hop = IpAddress{static_cast<std::uint32_t>(rng.range(1, 0x7fffffff))};
      if (rng.chance(0.5)) m.attrs.med = static_cast<std::uint32_t>(rng.next());
      if (rng.chance(0.3)) m.attrs.local_pref = static_cast<std::uint32_t>(rng.below(1000));
      if (rng.chance(0.2)) m.attrs.atomic_aggregate = true;
      const std::size_t communities = rng.below(4);
      for (std::size_t i = 0; i < communities; ++i) {
        m.attrs.add_community(static_cast<Community>(rng.below(0xfffffffe)));
      }
      for (std::size_t i = 0; i < nlri; ++i) {
        m.nlri.push_back(IpPrefix{IpAddress{static_cast<std::uint32_t>(rng.next())},
                                  static_cast<std::uint8_t>(rng.below(33))});
      }
    }
    auto encoded = encode(Message{m});
    ASSERT_TRUE(encoded.ok());
    auto decoded = decode(encoded.value());
    ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
    EXPECT_EQ(std::get<UpdateMessage>(decoded.value()), m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dice::bgp
