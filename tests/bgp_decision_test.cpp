#include <gtest/gtest.h>

#include "bgp/decision.hpp"
#include "util/rng.hpp"

namespace dice::bgp {
namespace {

using util::IpAddress;
using util::IpPrefix;

[[nodiscard]] Route learned_route(std::uint32_t local_pref, std::vector<Asn> path,
                                  Origin origin = Origin::kIgp,
                                  std::uint32_t med = 0, bool ebgp = true,
                                  RouterId peer_id = 100,
                                  std::uint32_t peer_addr = 100) {
  Route r;
  r.prefix = IpPrefix{IpAddress{10, 1, 0, 0}, 16};
  r.attrs.local_pref = local_pref;
  r.attrs.as_path = AsPath{std::move(path)};
  r.attrs.origin = origin;
  r.attrs.med = med;
  r.attrs.next_hop = IpAddress{10, 0, 0, 2};
  r.source.peer_node = 1;
  r.source.peer_asn = r.attrs.as_path.first_asn().value_or(65001);
  r.source.peer_router_id = peer_id;
  r.source.peer_address = IpAddress{peer_addr};
  r.source.ebgp = ebgp;
  return r;
}

TEST(DecisionTest, LocalRouteWins) {
  Route local = learned_route(50, {});
  local.source.peer_node = kLocalRoute;
  const Route learned = learned_route(1000, {65001});
  const Comparison c = compare_routes(local, learned);
  EXPECT_LT(c.order, 0);
  EXPECT_EQ(c.rule, DecisionRule::kLocalRoute);
}

TEST(DecisionTest, HighestLocalPrefWins) {
  const Comparison c = compare_routes(learned_route(200, {65001, 65002, 65003}),
                                      learned_route(100, {65001}));
  EXPECT_LT(c.order, 0);
  EXPECT_EQ(c.rule, DecisionRule::kLocalPref);
}

TEST(DecisionTest, MissingLocalPrefDefaultsTo100) {
  Route no_lp = learned_route(0, {65001});
  no_lp.attrs.local_pref.reset();
  const Comparison c = compare_routes(no_lp, learned_route(100, {65001, 65002}));
  // Equal local-pref (default 100) -> falls through to path length.
  EXPECT_EQ(c.rule, DecisionRule::kAsPathLength);
  EXPECT_LT(c.order, 0);
}

TEST(DecisionTest, ShorterAsPathWins) {
  const Comparison c =
      compare_routes(learned_route(100, {65001}), learned_route(100, {65002, 65003}));
  EXPECT_LT(c.order, 0);
  EXPECT_EQ(c.rule, DecisionRule::kAsPathLength);
}

TEST(DecisionTest, AsSetCountsAsOne) {
  Route with_set = learned_route(100, {65001});
  with_set.attrs.as_path.segments().push_back(
      AsSegment{AsSegmentType::kSet, {65002, 65003, 65004}});
  // Length 2 (1 seq + 1 set) vs length 2.
  const Comparison c = compare_routes(with_set, learned_route(100, {65005, 65006}));
  EXPECT_NE(c.rule, DecisionRule::kAsPathLength);
}

TEST(DecisionTest, LowerOriginWins) {
  const Comparison c = compare_routes(learned_route(100, {65001}, Origin::kIgp),
                                      learned_route(100, {65002}, Origin::kIncomplete));
  EXPECT_LT(c.order, 0);
  EXPECT_EQ(c.rule, DecisionRule::kOrigin);
}

TEST(DecisionTest, MedComparedOnlyWithinSameNeighborAs) {
  // Same first ASN: MED decides.
  const Comparison same = compare_routes(learned_route(100, {65001}, Origin::kIgp, 10),
                                         learned_route(100, {65001}, Origin::kIgp, 20));
  EXPECT_LT(same.order, 0);
  EXPECT_EQ(same.rule, DecisionRule::kMed);
  // Different first ASN: MED skipped (falls to later rules).
  const Comparison diff = compare_routes(
      learned_route(100, {65001}, Origin::kIgp, 99, true, 5, 5),
      learned_route(100, {65002}, Origin::kIgp, 1, true, 9, 9));
  EXPECT_NE(diff.rule, DecisionRule::kMed);
}

TEST(DecisionTest, AlwaysCompareMedOption) {
  DecisionOptions options;
  options.always_compare_med = true;
  const Comparison c =
      compare_routes(learned_route(100, {65001}, Origin::kIgp, 1),
                     learned_route(100, {65002}, Origin::kIgp, 99), options);
  EXPECT_LT(c.order, 0);
  EXPECT_EQ(c.rule, DecisionRule::kMed);
}

TEST(DecisionTest, EbgpBeatsIbgp) {
  const Comparison c =
      compare_routes(learned_route(100, {65001}, Origin::kIgp, 0, true),
                     learned_route(100, {65002}, Origin::kIgp, 0, false));
  EXPECT_LT(c.order, 0);
  EXPECT_EQ(c.rule, DecisionRule::kEbgpOverIbgp);
}

TEST(DecisionTest, LowestRouterIdTieBreak) {
  const Comparison c =
      compare_routes(learned_route(100, {65001}, Origin::kIgp, 0, true, 1),
                     learned_route(100, {65002}, Origin::kIgp, 0, true, 2));
  EXPECT_LT(c.order, 0);
  EXPECT_EQ(c.rule, DecisionRule::kRouterId);
}

TEST(DecisionTest, PeerAddressFinalTieBreak) {
  const Comparison c =
      compare_routes(learned_route(100, {65001}, Origin::kIgp, 0, true, 7, 1),
                     learned_route(100, {65002}, Origin::kIgp, 0, true, 7, 2));
  EXPECT_LT(c.order, 0);
  EXPECT_EQ(c.rule, DecisionRule::kPeerAddress);
}

TEST(DecisionTest, IdenticalRoutesCompareEqual) {
  const Route r = learned_route(100, {65001});
  const Comparison c = compare_routes(r, r);
  EXPECT_EQ(c.order, 0);
  EXPECT_EQ(c.rule, DecisionRule::kEqual);
}

TEST(DecisionTest, SelectBestPicksMinimum) {
  std::vector<Route> candidates{
      learned_route(100, {65001, 65002}),
      learned_route(200, {65001, 65002, 65003}),  // highest local-pref
      learned_route(100, {65001}),
  };
  EXPECT_EQ(select_best(candidates), 1u);
  EXPECT_EQ(select_best({}), SIZE_MAX);
}

/// Property: with always-compare-med the preference relation is a strict
/// weak ordering — antisymmetric and transitive over randomized routes.
/// (Without that option BGP's MED rule is famously *not* transitive; that
/// known anomaly is exactly why the option exists, and why this property
/// pins the transitive configuration.)
class DecisionOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecisionOrderProperty, AntisymmetricAndTransitive) {
  util::Rng rng(GetParam());
  const auto random_route = [&rng] {
    std::vector<Asn> path;
    for (std::size_t i = 0; i < 1 + rng.below(3); ++i) {
      path.push_back(static_cast<Asn>(65000 + rng.below(5)));
    }
    return learned_route(static_cast<std::uint32_t>(100 * (1 + rng.below(3))),
                         std::move(path), static_cast<Origin>(rng.below(3)),
                         static_cast<std::uint32_t>(rng.below(3)), rng.chance(0.5),
                         static_cast<RouterId>(rng.below(4)),
                         static_cast<std::uint32_t>(rng.below(4)));
  };
  std::vector<Route> routes;
  for (int i = 0; i < 12; ++i) routes.push_back(random_route());

  DecisionOptions options;
  options.always_compare_med = true;
  for (const Route& a : routes) {
    for (const Route& b : routes) {
      const int ab = compare_routes(a, b, options).order;
      const int ba = compare_routes(b, a, options).order;
      EXPECT_EQ(ab, -ba) << "antisymmetry violated";
      for (const Route& c : routes) {
        const int bc = compare_routes(b, c, options).order;
        const int ac = compare_routes(a, c, options).order;
        if (ab < 0 && bc < 0) {
          EXPECT_LT(ac, 0) << "transitivity violated";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionOrderProperty, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace dice::bgp
