#include <gtest/gtest.h>

#include "dice/system.hpp"

namespace dice::snapshot {
namespace {

using bgp::make_internet;
using bgp::make_line;
using bgp::node_prefix;
using core::System;

TEST(SnapshotTest, ConvergedSystemSnapshotIsCompleteAndQuiet) {
  System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());

  const SnapshotId id = system.take_snapshot(0);
  ASSERT_NE(id, 0u);
  const Snapshot* snap = system.snapshots().find(id);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->nodes.size(), 3u);
  // Converged system: nothing in flight at the cut.
  EXPECT_EQ(snap->total_in_flight(), 0u);
  EXPECT_GT(snap->total_state_bytes(), 0u);
  for (const auto& [node, checkpoint] : snap->nodes) {
    EXPECT_EQ(checkpoint.node, node);
    EXPECT_NE(checkpoint.hash, 0u);
  }
}

TEST(SnapshotTest, LiveSystemKeepsRunningAfterSnapshot) {
  System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());
  const std::size_t routes_before = system.total_loc_rib_routes();
  ASSERT_NE(system.take_snapshot(1), 0u);
  // The live system still converges and lost nothing.
  ASSERT_TRUE(system.converge());
  EXPECT_EQ(system.total_loc_rib_routes(), routes_before);
  EXPECT_EQ(system.established_sessions(), 4u);
}

TEST(SnapshotTest, CloneMatchesLiveStateExactly) {
  System system(make_internet({2, 3, 4}));
  system.start();
  ASSERT_TRUE(system.converge());
  const SnapshotId id = system.take_snapshot(0);
  ASSERT_NE(id, 0u);
  const Snapshot* snap = system.snapshots().find(id);

  auto clone = System::clone_from(system.blueprint(), *snap);
  ASSERT_NE(clone, nullptr);
  // Clone converges instantly (nothing in flight) to the exact live state.
  ASSERT_TRUE(clone->converge());
  for (std::size_t i = 0; i < system.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(clone->router(node).loc_rib().content_hash(),
              system.router(node).loc_rib().content_hash())
        << "clone diverged at node " << i;
  }
}

TEST(SnapshotTest, MidConvergenceSnapshotCapturesInFlightAndCloneCatchesUp) {
  // Take the snapshot while UPDATEs are still flying: the cut must capture
  // channel state, and the clone — replaying it — must converge to the
  // same fixpoint the live system reaches.
  System system(make_internet({2, 3, 4}));
  system.start();
  // Run only part of the way to convergence.
  system.simulator().run(400);
  const SnapshotId id = system.take_snapshot(2);
  ASSERT_NE(id, 0u);
  const Snapshot* snap = system.snapshots().find(id);
  ASSERT_NE(snap, nullptr);

  auto clone = System::clone_from(system.blueprint(), *snap);
  ASSERT_NE(clone, nullptr);
  ASSERT_TRUE(clone->converge());
  ASSERT_TRUE(system.converge());
  for (std::size_t i = 0; i < system.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(clone->router(node).loc_rib().content_hash(),
              system.router(node).loc_rib().content_hash())
        << "clone fixpoint diverged at node " << i;
  }
}

TEST(SnapshotTest, CloneIsIsolatedFromLive) {
  System system(make_line(2));
  system.start();
  ASSERT_TRUE(system.converge());
  const SnapshotId id = system.take_snapshot(0);
  auto clone = System::clone_from(system.blueprint(), *system.snapshots().find(id));
  ASSERT_NE(clone, nullptr);

  // Perturb the clone: kill a session. The live system must not notice.
  clone->router(0).set_auto_restart(false);
  clone->router(1).set_auto_restart(false);
  clone->router(0).reset_session(1);
  clone->converge();
  EXPECT_EQ(clone->router(0).loc_rib().find(node_prefix(1)), nullptr);
  EXPECT_NE(system.router(0).loc_rib().find(node_prefix(1)), nullptr);
  EXPECT_TRUE(system.bgp_router(0).session(1)->established());
}

TEST(SnapshotTest, SequentialSnapshotsOfStableSystemAgree) {
  System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());
  const SnapshotId first = system.take_snapshot(0);
  ASSERT_TRUE(system.converge());
  const SnapshotId second = system.take_snapshot(2);  // different initiator
  ASSERT_NE(first, 0u);
  ASSERT_NE(second, 0u);
  const Snapshot* a = system.snapshots().find(first);
  const Snapshot* b = system.snapshots().find(second);
  // Same stable state -> identical per-node checkpoint hashes.
  for (const auto& [node, checkpoint] : a->nodes) {
    EXPECT_EQ(checkpoint.hash, b->nodes.at(node).hash);
  }
}

TEST(SnapshotTest, TwoClonesOfOneSnapshotAreIdentical) {
  // Clone determinism: same snapshot -> byte-identical system states, even
  // after both clones run to quiescence independently.
  System system(make_internet({2, 3, 4}));
  system.start();
  system.simulator().run(300);  // mid-convergence: in-flight frames exist
  const SnapshotId id = system.take_snapshot(1);
  ASSERT_NE(id, 0u);
  const Snapshot* snap = system.snapshots().find(id);

  auto clone_a = System::clone_from(system.blueprint(), *snap);
  auto clone_b = System::clone_from(system.blueprint(), *snap);
  ASSERT_NE(clone_a, nullptr);
  ASSERT_NE(clone_b, nullptr);
  ASSERT_TRUE(clone_a->converge());
  ASSERT_TRUE(clone_b->converge());
  for (std::size_t i = 0; i < system.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(clone_a->router(node).state_hash(), clone_b->router(node).state_hash())
        << "clone divergence at node " << i;
  }
}

TEST(SnapshotTest, CloneOfCloneMatchesOriginal) {
  // Snapshots compose: snapshotting a converged clone and cloning again
  // preserves the state (idempotent re-materialization).
  System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());
  const SnapshotId first = system.take_snapshot(0);
  auto clone = System::clone_from(system.blueprint(), *system.snapshots().find(first));
  ASSERT_NE(clone, nullptr);
  ASSERT_TRUE(clone->converge());

  const SnapshotId second = clone->take_snapshot(1);
  ASSERT_NE(second, 0u);
  auto grandclone =
      System::clone_from(clone->blueprint(), *clone->snapshots().find(second));
  ASSERT_NE(grandclone, nullptr);
  ASSERT_TRUE(grandclone->converge());
  for (std::size_t i = 0; i < system.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(grandclone->router(node).loc_rib().content_hash(),
              system.router(node).loc_rib().content_hash());
  }
}

TEST(SnapshotTest, AbortedSnapshotDoesNotBlockNextOne) {
  System system(make_line(2));
  system.start();
  ASSERT_TRUE(system.converge());
  system.network().set_link_up(0, 1, false);
  EXPECT_EQ(system.take_snapshot(0), 0u);  // markers cannot cross
  system.network().set_link_up(0, 1, true);
  ASSERT_TRUE(system.converge());
  EXPECT_NE(system.take_snapshot(0), 0u);  // abort cleaned up participant state
}

TEST(SnapshotTest, StoreTrimKeepsMostRecent) {
  SnapshotStore store;
  for (int i = 0; i < 5; ++i) {
    Snapshot snap;
    snap.id = store.next_id();
    store.put(std::move(snap));
  }
  EXPECT_EQ(store.size(), 5u);
  store.trim(2);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.find(1), nullptr);
  EXPECT_NE(store.find(5), nullptr);
}

TEST(SnapshotTest, CutHashDetectsDifferences) {
  System system(make_line(2));
  system.start();
  ASSERT_TRUE(system.converge());
  const SnapshotId a = system.take_snapshot(0);

  // Change state: drop a session, reconverge, snapshot again.
  system.router(0).set_auto_restart(false);
  system.router(1).set_auto_restart(false);
  system.router(0).reset_session(1);
  ASSERT_TRUE(system.converge());
  const SnapshotId b = system.take_snapshot(0);

  EXPECT_NE(system.snapshots().find(a)->cut_hash(), system.snapshots().find(b)->cut_hash());
}

}  // namespace
}  // namespace dice::snapshot
