// Focused unit tests for the property-check framework (complementing the
// end-to-end detections in dice_test.cpp).
#include <gtest/gtest.h>

#include "dice/orchestrator.hpp"

namespace dice::core {
namespace {

using bgp::make_line;

class ChecksFixture : public ::testing::Test {
 protected:
  ChecksFixture() : system_(make_line(3)) {
    system_.start();
    EXPECT_TRUE(system_.converge());
  }
  System system_;
};

TEST_F(ChecksFixture, CrashCheckCleanRouter) {
  const CrashCheck check;
  const CheckVerdict verdict = check.run(system_.router(0));
  EXPECT_TRUE(verdict.ok);
  EXPECT_EQ(verdict.check, "crash");
  EXPECT_EQ(verdict.counters.at("handler_crashes"), 0u);
}

TEST_F(ChecksFixture, CrashCheckFlagsCrashedRouter) {
  // Inject a bug and a triggering message directly.
  bgp::SystemBlueprint bp = make_line(2);
  bgp::inject_bug(bp, 0, bgp::bugs::kMedOverflow);
  System buggy(std::move(bp));
  buggy.start();
  ASSERT_TRUE(buggy.converge());

  bgp::UpdateMessage update;
  update.attrs.origin = bgp::Origin::kIgp;
  update.attrs.as_path = bgp::AsPath{{bgp::node_asn(1)}};
  update.attrs.next_hop = bgp::node_address(1);
  update.attrs.med = 0xffffffffU;
  update.nlri.push_back(util::IpPrefix{util::IpAddress{10, 200, 0, 0}, 16});
  buggy.inject_message(1, 0, bgp::encode(bgp::Message{update}).value());
  buggy.converge();

  const CrashCheck check;
  const CheckVerdict verdict = check.run(buggy.router(0));
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.counters.at("handler_crashes"), 1u);
  EXPECT_NE(verdict.summary.find("crash"), std::string::npos);
}

TEST_F(ChecksFixture, OscillationCheckRespectsThreshold) {
  // Flip counters from normal convergence stay below a sane threshold.
  const OscillationCheck strict(2);
  const OscillationCheck lenient(50);
  const CheckVerdict strict_verdict = strict.run(system_.router(1));
  const CheckVerdict lenient_verdict = lenient.run(system_.router(1));
  EXPECT_TRUE(lenient_verdict.ok);
  // Convergence itself flips each prefix once or twice; the strict
  // threshold of 2 may or may not fire — but counters must be reported.
  EXPECT_TRUE(strict_verdict.counters.contains("max_flips"));
  EXPECT_EQ(lenient_verdict.counters.at("threshold"), 50u);
}

TEST_F(ChecksFixture, RouteConsistencyCleanSystem) {
  const RouteConsistencyCheck check;
  for (sim::NodeId id = 0; id < 3; ++id) {
    const CheckVerdict verdict = check.run(system_.router(id));
    EXPECT_TRUE(verdict.ok) << verdict.summary;
    EXPECT_EQ(verdict.counters.at("bad_next_hop"), 0u);
    EXPECT_EQ(verdict.counters.at("own_asn_in_path"), 0u);
  }
}

TEST_F(ChecksFixture, OriginClaimsCoverLocRibAndOwnership) {
  const OriginClaimCheck check;
  const CheckVerdict verdict = check.run(system_.router(1));
  // r1's Loc-RIB holds 3 /16 routes -> 3 exact + 3*8 covering claims.
  EXPECT_EQ(verdict.origin_claims.size(), 27u);
  EXPECT_EQ(verdict.owned_prefix_hashes.size(), 1u);
  EXPECT_EQ(verdict.owned_prefix_hashes[0], hash_prefix(bgp::node_prefix(1)));
  // The claim for r1's own prefix carries r1's ASN.
  bool own_claim_found = false;
  for (const auto& claim : verdict.origin_claims) {
    if (claim.prefix_hash == hash_prefix(bgp::node_prefix(1))) {
      EXPECT_EQ(claim.origin, bgp::node_asn(1));
      own_claim_found = true;
    }
  }
  EXPECT_TRUE(own_claim_found);
}

TEST(ChecksAggregationTest, MultipleViolationsGroupedByOriginAndPrefix) {
  std::vector<CheckVerdict> verdicts(3);
  verdicts[0].node = 0;
  verdicts[0].owned_prefix_hashes = {100};
  verdicts[0].origin_claims = {{100, 65000}};
  verdicts[1].node = 1;
  verdicts[1].origin_claims = {{100, 65009}, {100, 65008}};  // two bad origins
  verdicts[2].node = 2;
  verdicts[2].origin_claims = {{100, 65009}};  // same as node 1's first

  const auto owners = collect_owners(verdicts, {{0, 65000}, {1, 65001}, {2, 65002}});
  const auto violations = aggregate_origin_claims(verdicts, owners);
  ASSERT_EQ(violations.size(), 2u);  // grouped by (prefix, origin)
  // The 65009 violation was observed on two nodes.
  for (const OriginViolation& violation : violations) {
    if (violation.observed_origin == 65009) {
      EXPECT_EQ(violation.observers, (std::vector<sim::NodeId>{1, 2}));
    } else {
      EXPECT_EQ(violation.observed_origin, 65008u);
      EXPECT_EQ(violation.observers, std::vector<sim::NodeId>{1});
    }
  }
}

TEST(ChecksAggregationTest, OwnerClaimingOwnPrefixIsNotAViolation) {
  std::vector<CheckVerdict> verdicts(1);
  verdicts[0].node = 0;
  verdicts[0].owned_prefix_hashes = {100};
  verdicts[0].origin_claims = {{100, 65000}};
  const auto owners = collect_owners(verdicts, {{0, 65000}});
  EXPECT_TRUE(aggregate_origin_claims(verdicts, owners).empty());
}

TEST(ChecksAggregationTest, CheckSystemClassifiesFaultClasses) {
  // Drive check_system directly (unit-level, no episode machinery).
  bgp::SystemBlueprint bp = make_line(2);
  bgp::inject_hijack(bp, 0, 1);
  Orchestrator dice(std::move(bp), {});
  ASSERT_TRUE(dice.bootstrap());
  auto faults = dice.check_system(dice.live(), /*episode=*/1, /*explorer=*/0,
                                  /*input=*/{}, /*quiesced=*/true);
  ASSERT_FALSE(faults.empty());
  for (const FaultReport& fault : faults) {
    EXPECT_EQ(fault.fault_class, FaultClass::kOperatorMistake);
    EXPECT_FALSE(fault.potential);  // no input: standing fault
    EXPECT_EQ(fault.episode, 1u);
  }
  // Non-quiescence reports a policy conflict.
  auto nq_faults = dice.check_system(dice.live(), 2, 0, {}, /*quiesced=*/false);
  bool saw_non_quiescence = false;
  for (const FaultReport& fault : nq_faults) {
    saw_non_quiescence |= fault.check == "non-quiescence" &&
                          fault.fault_class == FaultClass::kPolicyConflict;
  }
  EXPECT_TRUE(saw_non_quiescence);
}

}  // namespace
}  // namespace dice::core
