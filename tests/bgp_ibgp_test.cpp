// iBGP behaviors: LOCAL_PREF propagation, no prepending, and the
// no-reflection rule (iBGP-learned routes are not re-advertised to other
// iBGP peers without a route reflector).
#include <gtest/gtest.h>

#include "dice/system.hpp"

namespace dice::bgp {
namespace {

using core::System;

/// r0 -(eBGP)- r1 -(iBGP)- r2 -(iBGP)- r3, where r1, r2, r3 share AS 65100.
/// r1-r3 are NOT directly connected (the broken full-mesh case).
SystemBlueprint make_ibgp_chain() {
  SystemBlueprint bp = make_line(4);
  for (sim::NodeId i = 1; i <= 3; ++i) {
    bp.configs[i].asn = 65100;
  }
  // Fix neighbor ASNs to match.
  for (RouterConfig& config : bp.configs) {
    for (NeighborConfig& neighbor : config.neighbors) {
      for (sim::NodeId i = 1; i <= 3; ++i) {
        if (neighbor.address == node_address(i)) neighbor.asn = 65100;
      }
    }
  }
  return bp;
}

TEST(IbgpTest, LocalPrefCrossesIbgpButNotEbgp) {
  SystemBlueprint bp = make_ibgp_chain();
  // r1 sets LOCAL_PREF 250 on import from eBGP peer r0.
  PolicyRule rule;
  rule.actions.push_back(Action{Action::Kind::kSetLocalPref, 250});
  rule.verdict = Verdict::kAccept;
  bp.configs[1].neighbors[0].import_policy.rules.insert(
      bp.configs[1].neighbors[0].import_policy.rules.begin(), rule);

  System system(std::move(bp));
  system.start();
  ASSERT_TRUE(system.converge());

  // r2 (iBGP peer of r1) sees r0's prefix with LOCAL_PREF 250 preserved.
  const Route* at_r2 = system.router(2).loc_rib().find(node_prefix(0));
  ASSERT_NE(at_r2, nullptr);
  EXPECT_EQ(at_r2->attrs.local_pref, 250u);
  EXPECT_FALSE(at_r2->source.ebgp);
}

TEST(IbgpTest, NoAsPrependingWithinAs) {
  System system(make_ibgp_chain());
  system.start();
  ASSERT_TRUE(system.converge());
  // r2's route to r0's prefix crossed one eBGP hop (r0->r1) and one iBGP
  // hop (r1->r2): AS path contains only r0's ASN.
  const Route* at_r2 = system.router(2).loc_rib().find(node_prefix(0));
  ASSERT_NE(at_r2, nullptr);
  EXPECT_EQ(at_r2->attrs.as_path.to_string(), std::to_string(node_asn(0)));
  // NEXT_HOP is preserved across iBGP: still r0's address (the original
  // eBGP next hop), resolved recursively rather than rewritten.
  EXPECT_EQ(at_r2->attrs.next_hop, node_address(0));
}

TEST(IbgpTest, NoIbgpReflection) {
  System system(make_ibgp_chain());
  system.start();
  ASSERT_TRUE(system.converge());
  // r3 must NOT have r0's prefix: r2 learned it via iBGP and cannot
  // re-advertise to another iBGP peer (no route reflection).
  EXPECT_EQ(system.router(3).loc_rib().find(node_prefix(0)), nullptr);
  // But r3 does have r2's own (locally originated) prefix.
  EXPECT_NE(system.router(3).loc_rib().find(node_prefix(2)), nullptr);
  // And r1's prefix also cannot reach r3 (one iBGP hop too far).
  EXPECT_EQ(system.router(3).loc_rib().find(node_prefix(1)), nullptr);
}

TEST(IbgpTest, EbgpLearnedPropagatesToAllIbgpPeers) {
  System system(make_ibgp_chain());
  system.start();
  ASSERT_TRUE(system.converge());
  // r1 learned r0's prefix over eBGP, so its direct iBGP peer r2 gets it.
  EXPECT_NE(system.router(2).loc_rib().find(node_prefix(0)), nullptr);
  // r0 gets AS65100's prefixes that are reachable: r1's own (eBGP export
  // of local route) and r2's (iBGP-learned at r1 -> eBGP export allowed).
  EXPECT_NE(system.router(0).loc_rib().find(node_prefix(1)), nullptr);
  EXPECT_NE(system.router(0).loc_rib().find(node_prefix(2)), nullptr);
  const Route* r2_prefix_at_r0 = system.router(0).loc_rib().find(node_prefix(2));
  // One AS hop (65100) despite two router hops.
  EXPECT_EQ(r2_prefix_at_r0->attrs.as_path.to_string(), "65100");
}

TEST(IbgpTest, DefaultLocalPrefFilledOnIbgpExport) {
  System system(make_ibgp_chain());
  system.start();
  ASSERT_TRUE(system.converge());
  // §5.1.5: LOCAL_PREF must be present on iBGP sessions; r1 fills the
  // default when none was assigned at import.
  const Route* at_r2 = system.router(2).loc_rib().find(node_prefix(0));
  ASSERT_NE(at_r2, nullptr);
  ASSERT_TRUE(at_r2->attrs.local_pref.has_value());
  EXPECT_EQ(*at_r2->attrs.local_pref, PathAttributes::kDefaultLocalPref);
}

}  // namespace
}  // namespace dice::bgp
