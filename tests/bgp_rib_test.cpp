#include <gtest/gtest.h>

#include "bgp/rib.hpp"
#include "util/rng.hpp"

namespace dice::bgp {
namespace {

using util::IpAddress;
using util::IpPrefix;

[[nodiscard]] Route make_route(std::uint8_t octet, std::uint32_t local_pref = 100) {
  Route r;
  r.prefix = IpPrefix{IpAddress{10, octet, 0, 0}, 16};
  r.attrs.origin = Origin::kIgp;
  r.attrs.as_path = AsPath{{65001, 65002}};
  r.attrs.next_hop = IpAddress{10, 0, 0, 2};
  r.attrs.local_pref = local_pref;
  r.source.peer_node = 1;
  r.source.peer_asn = 65001;
  r.source.peer_router_id = 11;
  r.source.peer_address = IpAddress{10, 0, 0, 2};
  return r;
}

TEST(RibTest, UpsertReportsChanges) {
  Rib rib;
  EXPECT_TRUE(rib.upsert(make_route(1)));          // insert
  EXPECT_FALSE(rib.upsert(make_route(1)));         // identical: no change
  EXPECT_TRUE(rib.upsert(make_route(1, 200)));     // modified: change
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_TRUE(rib.upsert(make_route(2)));
  EXPECT_EQ(rib.size(), 2u);
}

TEST(RibTest, EraseAndFind) {
  Rib rib;
  const Route r = make_route(1);
  rib.upsert(r);
  ASSERT_NE(rib.find(r.prefix), nullptr);
  EXPECT_EQ(*rib.find(r.prefix), r);
  EXPECT_TRUE(rib.erase(r.prefix));
  EXPECT_FALSE(rib.erase(r.prefix));
  EXPECT_EQ(rib.find(r.prefix), nullptr);
}

TEST(RibTest, ContentHashTracksContent) {
  Rib a;
  Rib b;
  a.upsert(make_route(1));
  b.upsert(make_route(1));
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.upsert(make_route(2));
  EXPECT_NE(a.content_hash(), b.content_hash());
  b.erase(make_route(2).prefix);
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

TEST(RibTest, SerializeDeserializeRoundTrip) {
  Rib rib;
  for (std::uint8_t i = 1; i <= 20; ++i) rib.upsert(make_route(i, 50u + i));
  util::ByteWriter writer;
  rib.serialize(writer);
  util::ByteReader reader(writer.bytes());
  auto restored = Rib::deserialize(reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().size(), 20u);
  EXPECT_EQ(restored.value().content_hash(), rib.content_hash());
  EXPECT_EQ(restored.value().table(), rib.table());
}

TEST(RibTest, DeserializeRejectsTruncation) {
  Rib rib;
  rib.upsert(make_route(1));
  util::ByteWriter writer;
  rib.serialize(writer);
  util::Bytes bytes = writer.bytes();
  bytes.resize(bytes.size() / 2);
  util::ByteReader reader(bytes);
  EXPECT_FALSE(Rib::deserialize(reader).ok());
}

/// Property: attribute serialization round-trips over randomized attrs.
class AttrSerializeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AttrSerializeProperty, RoundTrip) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    PathAttributes attrs;
    attrs.origin = static_cast<Origin>(rng.below(3));
    if (rng.chance(0.8)) {
      AsSegment seg;
      seg.type = rng.chance(0.8) ? AsSegmentType::kSequence : AsSegmentType::kSet;
      for (std::size_t i = 0; i < 1 + rng.below(4); ++i) {
        seg.asns.push_back(static_cast<Asn>(rng.below(70000)));  // 4-byte ok internally
      }
      attrs.as_path.segments().push_back(std::move(seg));
    }
    attrs.next_hop = IpAddress{static_cast<std::uint32_t>(rng.next())};
    if (rng.chance(0.5)) attrs.med = static_cast<std::uint32_t>(rng.next());
    if (rng.chance(0.5)) attrs.local_pref = static_cast<std::uint32_t>(rng.next());
    attrs.atomic_aggregate = rng.chance(0.2);
    if (rng.chance(0.3)) {
      attrs.aggregator =
          Aggregator{static_cast<Asn>(rng.below(65536)),
                     IpAddress{static_cast<std::uint32_t>(rng.next())}};
    }
    for (std::size_t i = rng.below(4); i > 0; --i) {
      attrs.add_community(static_cast<Community>(rng.next()));
    }
    if (rng.chance(0.3)) {
      UnknownAttr ua;
      ua.flags = 0xc0;
      ua.type = static_cast<std::uint8_t>(128 + rng.below(100));
      for (std::size_t i = rng.below(8); i > 0; --i) ua.value.push_back(rng.byte());
      attrs.unknown.push_back(std::move(ua));
    }

    util::ByteWriter writer;
    serialize_attrs(writer, attrs);
    util::ByteReader reader(writer.bytes());
    auto restored = deserialize_attrs(reader);
    ASSERT_TRUE(restored.ok()) << restored.error().to_string();
    EXPECT_EQ(restored.value(), attrs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttrSerializeProperty, ::testing::Values(3, 6, 9));

TEST(AttrTest, CommunitySetSemantics) {
  PathAttributes attrs;
  attrs.add_community(5);
  attrs.add_community(1);
  attrs.add_community(5);  // duplicate ignored
  attrs.add_community(3);
  EXPECT_EQ(attrs.communities, (std::vector<Community>{1, 3, 5}));  // sorted
  EXPECT_TRUE(attrs.has_community(3));
  attrs.remove_community(3);
  EXPECT_FALSE(attrs.has_community(3));
  attrs.remove_community(99);  // absent: no-op
  EXPECT_EQ(attrs.communities.size(), 2u);
}

TEST(AttrTest, EffectiveDefaults) {
  PathAttributes attrs;
  EXPECT_EQ(attrs.effective_local_pref(), PathAttributes::kDefaultLocalPref);
  EXPECT_EQ(attrs.effective_med(), 0u);
  attrs.local_pref = 7;
  attrs.med = 9;
  EXPECT_EQ(attrs.effective_local_pref(), 7u);
  EXPECT_EQ(attrs.effective_med(), 9u);
}

TEST(RouteTest, ToStringMentionsKeyFields) {
  const Route r = make_route(1);
  const std::string text = r.to_string();
  EXPECT_NE(text.find("10.1.0.0/16"), std::string::npos);
  EXPECT_NE(text.find("10.0.0.2"), std::string::npos);
  EXPECT_NE(text.find("65001"), std::string::npos);
}

}  // namespace
}  // namespace dice::bgp
