// svc::SoakService: the resident soak daemon's receipts.
//
//  * Determinism: every daemon round over the fixed receipt scenario
//    reproduces the standalone batch harness's fault-set hash
//    0x63f680b04458c2a9 — at workers 1/2/4/8, cold or warm.
//  * Warm start: a killed-and-restarted daemon primes from the store,
//    serves round-1 bootstraps from cache, produces the same fault bytes,
//    and re-saves a byte-identical store file.
//  * Robustness: a corrupt store cold-starts with a typed error retained.
//  * Knob swaps: invalid options are rejected with the stable
//    "campaign.options.*" code and change nothing; valid swaps take effect
//    exactly at the next round boundary.
//  * Passivity: observers and metrics never move the fault bytes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "bgp/bugs.hpp"
#include "bgp/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "svc/soak_observer.hpp"
#include "svc/soak_service.hpp"

namespace dice::svc {
namespace {

/// The literal receipt: single-cell topology27 campaign, fixed strategy
/// seed. Pinned against the standalone batch harness.
constexpr std::uint64_t kReceiptHash = 0x63f680b04458c2a9ull;

[[nodiscard]] std::vector<explore::ScenarioSpec> receipt_scenarios() {
  bgp::SystemBlueprint fig1 = bgp::make_internet();
  bgp::inject_hijack(fig1, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  bgp::inject_bug(fig1, 5, bgp::bugs::kCommunityLength);
  std::vector<explore::ScenarioSpec> specs;
  specs.push_back({"topology27", std::move(fig1)});
  return specs;
}

[[nodiscard]] explore::CampaignOptions receipt_campaign(std::size_t workers) {
  auto built = explore::CampaignOptions::builder()
                   .strategies({explore::StrategyKind::kGrammar})
                   .seeds({1})
                   .episodes_per_cell(2)
                   .inputs_per_episode(32)
                   .bootstrap_events(2'000'000)
                   .strategy_seed(0xf1f1)
                   .parallelism(workers)
                   .build();
  EXPECT_TRUE(built.ok());
  return std::move(built).take();
}

[[nodiscard]] SoakOptions receipt_options(std::size_t workers,
                                          std::string store_path = {}) {
  SoakOptions options;
  options.campaign = receipt_campaign(workers);
  options.store_path = std::move(store_path);
  return options;
}

[[nodiscard]] std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

[[nodiscard]] util::Bytes slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return util::Bytes((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(SoakServiceTest, EveryRoundReproducesTheBatchHashAtAnyWorkerCount) {
  // The batch comparator first: a plain Campaign over the same options.
  explore::Campaign batch(receipt_scenarios(), receipt_campaign(2));
  const explore::CampaignResult batch_result = batch.run();
  ASSERT_EQ(fault_set_hash(batch_result.faults), kReceiptHash);

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    SoakService service(receipt_scenarios(), receipt_options(workers));
    for (int round = 0; round < 2; ++round) {
      const RoundSummary summary = service.run_round();
      EXPECT_EQ(summary.fault_hash, kReceiptHash)
          << "workers=" << workers << " round=" << round;
      EXPECT_EQ(summary.cells_completed, 1u);
      EXPECT_FALSE(summary.stopped);
    }
    const SoakReport report = service.report();
    EXPECT_EQ(report.rounds, 2u);
    // Round 2 resumes round 1's bootstrap from the service cache.
    ASSERT_EQ(report.round_summaries.size(), 2u);
    EXPECT_EQ(report.round_summaries[1].cells_from_cache, 1u);
    // Cross-round dedup: round 2 re-finds the same faults, adds none.
    EXPECT_EQ(report.round_summaries[1].new_faults, 0u);
    EXPECT_EQ(report.faults.size(), report.round_summaries[0].faults);
  }
}

TEST(SoakServiceTest, WarmRestartReproducesFaultBytesAndStoreBytes) {
  const std::string cold_store = temp_path("svc_soak_cold.dsvc");
  const std::string warm_store = temp_path("svc_soak_warm.dsvc");

  // Uninterrupted reference: two rounds in one process.
  std::uint64_t cold_hash = 0;
  {
    SoakService service(receipt_scenarios(), receipt_options(2, cold_store));
    const SoakReport report = service.run(2);
    ASSERT_EQ(report.rounds, 2u);
    cold_hash = report.round_summaries[1].fault_hash;
    EXPECT_FALSE(report.warm_started);
  }

  // Killed-and-restarted: one round, process death (destructor), restart.
  {
    SoakService service(receipt_scenarios(), receipt_options(2, warm_store));
    (void)service.run(1);
  }
  {
    SoakService revived(receipt_scenarios(), receipt_options(2, warm_store));
    const SoakReport boot = revived.report();
    EXPECT_TRUE(boot.warm_started);
    EXPECT_GT(boot.primed_from_store, 0u);
    EXPECT_TRUE(revived.store_error().code.empty());

    const RoundSummary summary = revived.run_round();
    // The restarted daemon's first round: bootstraps from the store...
    EXPECT_EQ(summary.cells_from_cache, 1u);
    // ...and byte-identical faults.
    EXPECT_EQ(summary.fault_hash, cold_hash);
    EXPECT_EQ(summary.fault_hash, kReceiptHash);
  }

  // The two histories converge to byte-identical stores.
  EXPECT_EQ(slurp(cold_store), slurp(warm_store));
  std::remove(cold_store.c_str());
  std::remove(warm_store.c_str());
}

TEST(SoakServiceTest, CorruptStoreDegradesToTypedColdStart) {
  const std::string store = temp_path("svc_soak_corrupt.dsvc");
  {
    std::ofstream out(store, std::ios::binary | std::ios::trunc);
    out << "garbage, not a store";
  }
  SoakService service(receipt_scenarios(), receipt_options(2, store));
  EXPECT_EQ(service.store_error().code, "svc.store.bad_magic");
  const SoakReport boot = service.report();
  EXPECT_FALSE(boot.warm_started);
  EXPECT_EQ(boot.primed_from_store, 0u);

  // The cold start is a REAL start: the round runs and reproduces the
  // receipt, and the next save replaces the corpse with a valid store.
  const RoundSummary summary = service.run_round();
  EXPECT_EQ(summary.fault_hash, kReceiptHash);
  EXPECT_EQ(summary.cells_from_cache, 0u);
  auto reloaded = ArtifactStore(store).load();
  EXPECT_TRUE(reloaded.ok());
  std::remove(store.c_str());
}

TEST(SoakServiceTest, InvalidKnobSwapIsRejectedAndChangesNothing) {
  SoakService service(receipt_scenarios(), receipt_options(2));
  (void)service.run_round();

  explore::CampaignOptions invalid = receipt_campaign(2);
  invalid.determinism.seeds.clear();
  const util::Status rejected = service.swap_options(std::move(invalid));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, "campaign.options.no_seeds");

  // The rejected swap left no trace: same options, same bytes next round.
  const RoundSummary summary = service.run_round();
  EXPECT_EQ(summary.fault_hash, kReceiptHash);
  EXPECT_EQ(service.report().knob_swaps, 0u);
}

TEST(SoakServiceTest, ValidKnobSwapTakesEffectExactlyAtTheNextRound) {
  SoakService service(receipt_scenarios(), receipt_options(2));
  const RoundSummary before = service.run_round();
  EXPECT_EQ(before.cells_completed, 1u);

  explore::CampaignOptions wider = receipt_campaign(2);
  wider.determinism.seeds = {1, 2};  // 2 cells from the next round on
  ASSERT_TRUE(service.swap_options(std::move(wider)).ok());
  // Queued, not applied: the report only moves at the round boundary.
  EXPECT_EQ(service.report().knob_swaps, 0u);

  const RoundSummary after = service.run_round();
  EXPECT_EQ(after.cells_completed, 2u);
  EXPECT_EQ(service.report().knob_swaps, 1u);
  // Warm continuity across the swap: the seed-1 cell the old options also
  // produced resumes from the re-primed cache.
  EXPECT_EQ(after.cells_from_cache, 1u);
}

TEST(SoakServiceTest, OptionsValidateRejectsNonsense) {
  SoakOptions zero_cadence;
  zero_cadence.campaign = receipt_campaign(1);
  zero_cadence.persist_every_rounds = 0;
  EXPECT_EQ(zero_cadence.validate().error().code,
            "svc.options.zero_persist_cadence");

  SoakOptions negative;
  negative.campaign = receipt_campaign(1);
  negative.round_interval = std::chrono::milliseconds(-1);
  EXPECT_EQ(negative.validate().error().code, "svc.options.negative_interval");

  SoakOptions bad_campaign;
  bad_campaign.campaign = receipt_campaign(1);
  bad_campaign.campaign.determinism.seeds.clear();
  EXPECT_EQ(bad_campaign.validate().error().code, "campaign.options.no_seeds");

  EXPECT_TRUE(receipt_options(1).validate().ok());
}

TEST(SoakServiceTest, DaemonLoopDrainsToAWellFormedPersistedReport) {
  const std::string report_path = temp_path("svc_soak_report.json");
  const std::string metrics_path = temp_path("svc_soak_metrics.prom");
  SoakOptions options = receipt_options(2);
  options.max_rounds = 2;
  options.report_path = report_path;
  options.metrics_path = metrics_path;

  SoakService service(receipt_scenarios(), options);
  service.start();
  EXPECT_TRUE(service.running());
  service.drain();  // max_rounds already bounds the loop; drain joins it
  EXPECT_FALSE(service.running());

  const SoakReport report = service.report();
  EXPECT_GE(report.rounds, 1u);
  for (const RoundSummary& summary : report.round_summaries) {
    EXPECT_EQ(summary.fault_hash, kReceiptHash);
  }

  // The control surface landed atomically: parseable-looking JSON with the
  // stable keys, Prometheus text beside it.
  const std::string json(reinterpret_cast<const char*>(slurp(report_path).data()),
                         slurp(report_path).size());
  EXPECT_NE(json.find("\"rounds\":"), std::string::npos);
  EXPECT_NE(json.find("\"fault_hash\":\"63f680b04458c2a9\""), std::string::npos);
  if (obs::kEnabled) {
    const std::string prom(
        reinterpret_cast<const char*>(slurp(metrics_path).data()),
        slurp(metrics_path).size());
    EXPECT_NE(prom.find("dice_svc_rounds_total"), std::string::npos);
  }
  std::remove(report_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(SoakServiceTest, ObserversAndMetricsAreStrictlyPassive) {
  // Wall-clock observer attached, metrics file on, report file on — none
  // of it may move the fault bytes.
  const std::uint64_t rounds_before =
      obs::MetricsRegistry::global().snapshot().counter_value(
          obs::names::kSvcRounds);

  SoakObserver observer;
  SoakOptions options = receipt_options(4);
  options.campaign.telemetry.wall_observer = &observer;
  SoakService service(receipt_scenarios(), options);
  const SoakReport report = service.run(2);

  ASSERT_EQ(report.rounds, 2u);
  for (const RoundSummary& summary : report.round_summaries) {
    EXPECT_EQ(summary.fault_hash, kReceiptHash);
  }

  // The liveness stream delivered every completed cell and its faults.
  const SoakObserver::Stats stats = observer.stats();
  EXPECT_EQ(stats.cells_seen, 2u);
  EXPECT_EQ(stats.faults_seen,
            report.round_summaries[0].faults + report.round_summaries[1].faults);
  EXPECT_EQ(observer.completion_order().size(), 2u);

  if (obs::kEnabled) {
    const std::uint64_t rounds_after =
        obs::MetricsRegistry::global().snapshot().counter_value(
            obs::names::kSvcRounds);
    EXPECT_EQ(rounds_after - rounds_before, 2u);
  }
}

TEST(SoakServiceTest, ReportJsonHasStableShape) {
  SoakReport report;
  report.rounds = 1;
  RoundSummary summary;
  summary.fault_hash = kReceiptHash;
  summary.wall_ms = 1.5;
  report.round_summaries.push_back(summary);
  core::FaultReport fault;
  fault.check = "quote\"and\\slash";
  fault.description = "line\nbreak";
  report.faults.push_back(fault);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"fault_hash\":\"63f680b04458c2a9\""), std::string::npos);
  EXPECT_NE(json.find("\\\"and\\\\"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line, atomic-friendly
}

// ---------------------------------------------------------------------------
// Sharded rounds: the cross-process knob changes nothing observable
// ---------------------------------------------------------------------------

[[nodiscard]] SoakOptions sharded_receipt_options(std::size_t processes,
                                                  std::string store_path = {}) {
  SoakOptions options = receipt_options(/*workers=*/2, std::move(store_path));
  options.shard_processes = processes;
  options.shard_worker_path = DICE_SHARD_WORKER_PATH;
  options.shard_scenario_set = "topology27";
  return options;
}

TEST(SoakServiceShardTest, OptionsValidateShardFields) {
  SoakOptions options = sharded_receipt_options(2);
  EXPECT_TRUE(options.validate().ok());
  options.shard_worker_path.clear();
  EXPECT_EQ(options.validate().error().code, "svc.options.shard_worker_path");
  options = sharded_receipt_options(2);
  options.shard_scenario_set = "no-such-set";
  EXPECT_EQ(options.validate().error().code, "svc.options.shard_scenario_set");
  // shard_processes == 0 ignores the shard fields entirely.
  options.shard_processes = 0;
  EXPECT_TRUE(options.validate().ok());
}

TEST(SoakServiceShardTest, ShardedRoundsReproduceTheReceiptHash) {
  SoakService service(receipt_scenarios(), sharded_receipt_options(2));
  for (int round = 0; round < 2; ++round) {
    const RoundSummary summary = service.run_round();
    EXPECT_EQ(summary.fault_hash, kReceiptHash) << "round=" << round;
    EXPECT_EQ(summary.cells_completed, 1u);
    EXPECT_FALSE(summary.stopped);
    // Worker processes are fresh each round: no cache resumes.
    EXPECT_EQ(summary.cells_from_cache, 0u);
  }
  // Cross-round dedup still holds: sharded round 2 re-finds, adds nothing.
  const SoakReport report = service.report();
  ASSERT_EQ(report.round_summaries.size(), 2u);
  EXPECT_EQ(report.round_summaries[1].new_faults, 0u);
}

TEST(SoakServiceShardTest, StoreStaysValidAcrossAShardedRound) {
  const std::string store = temp_path("svc_soak_sharded.dsvc");

  // Round 0 in-process (harvests topology27's live state into the store),
  // then a knob swap to sharded mode for round 1.
  {
    SoakService service(receipt_scenarios(), sharded_receipt_options(0, store));
    EXPECT_EQ(service.run_round().fault_hash, kReceiptHash);
    ASSERT_TRUE(service.swap_shard_processes(2).ok());
    const RoundSummary sharded = service.run_round();
    EXPECT_EQ(sharded.fault_hash, kReceiptHash);
    EXPECT_EQ(sharded.cells_from_cache, 0u) << "round 1 must have run sharded";
    EXPECT_EQ(service.report().knob_swaps, 1u);
  }

  // The store written after the sharded round is still a valid warm-start:
  // live states harvested in-process survive the sharded interlude.
  SoakService restarted(receipt_scenarios(), sharded_receipt_options(0, store));
  EXPECT_TRUE(restarted.store_error().code.empty());
  EXPECT_TRUE(restarted.report().warm_started);
  const RoundSummary warm = restarted.run_round();
  EXPECT_EQ(warm.fault_hash, kReceiptHash);
  EXPECT_EQ(warm.cells_from_cache, 1u) << "restart must resume from the store";
}

TEST(SoakServiceShardTest, SwapToAndFromShardedAtRoundBoundaries) {
  SoakOptions options = sharded_receipt_options(2);
  options.shard_processes = 0;  // start in-process, shard fields configured
  SoakService service(receipt_scenarios(), options);

  EXPECT_EQ(service.run_round().fault_hash, kReceiptHash);  // round 0: in-process
  ASSERT_TRUE(service.swap_shard_processes(4).ok());
  const RoundSummary sharded = service.run_round();  // round 1: 4 processes
  EXPECT_EQ(sharded.fault_hash, kReceiptHash);
  EXPECT_EQ(sharded.cells_from_cache, 0u);
  ASSERT_TRUE(service.swap_shard_processes(0).ok());
  const RoundSummary back = service.run_round();  // round 2: in-process again
  EXPECT_EQ(back.fault_hash, kReceiptHash);
  // The service cache survived the sharded interlude: round 2 resumes the
  // bootstrap round 0 harvested.
  EXPECT_EQ(back.cells_from_cache, 1u);
  EXPECT_EQ(service.report().knob_swaps, 2u);

  // Swap rejections are typed and change nothing.
  SoakOptions bare = receipt_options(2);
  SoakService unconfigured(receipt_scenarios(), bare);
  EXPECT_EQ(unconfigured.swap_shard_processes(2).error().code,
            "svc.options.shard_worker_path");
}

}  // namespace
}  // namespace dice::svc
