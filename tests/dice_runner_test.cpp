#include <gtest/gtest.h>

#include "dice/runner.hpp"

namespace dice::core {
namespace {

using bgp::inject_hijack;
using bgp::make_internet;
using bgp::make_line;

DiceOptions small_options() {
  DiceOptions options;
  options.inputs_per_episode = 4;
  return options;
}

TEST(RunnerTest, RunsRequestedEpisodesAndAdvancesSimTime) {
  Orchestrator dice(make_line(3), small_options());
  ASSERT_TRUE(dice.bootstrap());
  const sim::Time start = dice.live().simulator().now();

  GrammarStrategy strategy;
  RunnerOptions options;
  options.episode_period = 10 * sim::kSecond;
  options.max_episodes = 3;
  ContinuousRunner runner(dice, strategy, options);

  std::size_t episode_callbacks = 0;
  runner.set_episode_listener([&](const EpisodeResult&) { ++episode_callbacks; });
  EXPECT_EQ(runner.run(), 3u);
  EXPECT_EQ(episode_callbacks, 3u);
  EXPECT_EQ(dice.episodes_run(), 3u);
  // The live clock advanced by >= 3 periods (serving between episodes).
  EXPECT_GE(dice.live().simulator().now(), start + 30 * sim::kSecond);
}

TEST(RunnerTest, StreamsFaultsToListener) {
  bgp::SystemBlueprint bp = make_internet({2, 3, 4});
  inject_hijack(bp, 5, 8);
  Orchestrator dice(std::move(bp), small_options());
  ASSERT_TRUE(dice.bootstrap());

  GrammarStrategy strategy;
  RunnerOptions options;
  options.episode_period = sim::kSecond;
  options.max_episodes = 2;
  options.stop_on_fault = true;
  ContinuousRunner runner(dice, strategy, options);

  std::vector<FaultReport> streamed;
  runner.set_fault_listener([&](const FaultReport& fault) { streamed.push_back(fault); });
  runner.run();
  ASSERT_FALSE(streamed.empty());
  EXPECT_EQ(streamed[0].check, "route-origin");
  EXPECT_EQ(runner.faults_found(), streamed.size());
  // stop_on_fault: the first faulty episode ended the loop.
  EXPECT_EQ(runner.episodes_run(), 1u);
}

TEST(RunnerTest, WallBudgetBoundsTheLoop) {
  Orchestrator dice(make_line(2), small_options());
  ASSERT_TRUE(dice.bootstrap());
  GrammarStrategy strategy;
  RunnerOptions options;
  options.episode_period = sim::kSecond;
  // Unbounded episodes, tiny wall budget: must stop promptly on budget.
  ContinuousRunner runner(dice, strategy, options);
  const std::size_t ran = runner.run(/*wall_budget_ms=*/50.0);
  EXPECT_GT(ran, 0u);
  EXPECT_LT(ran, 10'000u);
}

TEST(RunnerTest, LiveSystemStateSurvivesOnlineLoop) {
  Orchestrator dice(make_line(3), small_options());
  ASSERT_TRUE(dice.bootstrap());
  const std::size_t routes = dice.live().total_loc_rib_routes();

  GrammarStrategy strategy;
  RunnerOptions options;
  options.episode_period = 60 * sim::kSecond;  // several keepalive rounds
  options.max_episodes = 4;
  ContinuousRunner runner(dice, strategy, options);
  runner.run();
  ASSERT_TRUE(dice.live().converge());
  EXPECT_EQ(dice.live().total_loc_rib_routes(), routes);
  EXPECT_EQ(dice.live().established_sessions(), 4u);
}

}  // namespace
}  // namespace dice::core
