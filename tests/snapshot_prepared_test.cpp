// PreparedSnapshot and clone-arena reuse: the decode-once/restore-many
// pipeline must be observationally identical to the legacy decode-per-clone
// path (same per-node state hashes, same fixpoints, same cut hashes), decode
// each checkpoint exactly once, and keep prepared state alive through the
// shared_ptr handle even while the store trims entries concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dice/system.hpp"
#include "explore/arena.hpp"

namespace dice::snapshot {
namespace {

using bgp::make_internet;
using bgp::make_line;
using core::System;
using core::SystemPrototype;

[[nodiscard]] std::shared_ptr<const PreparedSnapshot> snapshot_and_prepare(
    System& system, sim::NodeId initiator, SnapshotId* id_out = nullptr) {
  const SnapshotId id = system.take_snapshot(initiator);
  EXPECT_NE(id, 0u);
  if (id_out != nullptr) *id_out = id;
  return system.prepare_snapshot(id);
}

TEST(PreparedSnapshotTest, BuildMatchesRawSnapshotAndDecodesOncePerNode) {
  System system(make_internet({2, 3, 4}));
  system.start();
  ASSERT_TRUE(system.converge());

  const std::uint64_t decodes_before = bgp::checkpoint_decode_count();
  SnapshotId id = 0;
  const auto prepared = snapshot_and_prepare(system, 0, &id);
  ASSERT_NE(prepared, nullptr);
  const Snapshot* raw = system.snapshots().find(id);
  ASSERT_NE(raw, nullptr);

  EXPECT_EQ(prepared->id(), id);
  EXPECT_EQ(prepared->cut_hash(), raw->cut_hash());
  EXPECT_EQ(prepared->state_bytes(), raw->total_state_bytes());
  EXPECT_EQ(prepared->nodes().size(), raw->nodes.size());
  for (const auto& [node, entry] : prepared->nodes()) {
    EXPECT_EQ(entry.hash, raw->nodes.at(node).hash);
    EXPECT_NE(entry.state, nullptr);
  }
  // One decode per node, exactly once.
  EXPECT_EQ(bgp::checkpoint_decode_count() - decodes_before, raw->nodes.size());

  // Idempotent: a second prepare returns the published form, no re-decode.
  const auto again = system.prepare_snapshot(id);
  EXPECT_EQ(again.get(), prepared.get());
  EXPECT_EQ(bgp::checkpoint_decode_count() - decodes_before, raw->nodes.size());
}

TEST(PreparedSnapshotTest, ResetFromMatchesLegacyCloneExactly) {
  // Mid-convergence cut: in-flight frames exist, so this exercises both the
  // typed checkpoint application and the pre-built frame schedule.
  auto prototype = std::make_shared<const SystemPrototype>(make_internet({2, 3, 4}));
  System live(prototype);
  live.start();
  live.simulator().run(400);
  SnapshotId id = 0;
  const auto prepared = snapshot_and_prepare(live, 2, &id);
  ASSERT_NE(prepared, nullptr);
  const Snapshot* raw = live.snapshots().find(id);

  auto legacy = System::clone_from(live.blueprint(), *raw);
  ASSERT_NE(legacy, nullptr);
  System arena_clone(prototype);
  ASSERT_TRUE(arena_clone.reset_from(*prepared).ok());

  // Identical immediately after restore...
  for (std::size_t i = 0; i < live.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(arena_clone.router(node).state_hash(), legacy->router(node).state_hash())
        << "restore diverged at node " << i;
  }
  // ...and after replaying the in-flight frames to quiescence.
  ASSERT_TRUE(legacy->converge());
  ASSERT_TRUE(arena_clone.converge());
  for (std::size_t i = 0; i < live.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(arena_clone.router(node).state_hash(), legacy->router(node).state_hash())
        << "fixpoint diverged at node " << i;
  }
  // The decoded form restores without touching the byte decoders again.
  const std::uint64_t decodes_before = bgp::checkpoint_decode_count();
  System another(prototype);
  ASSERT_TRUE(another.reset_from(*prepared).ok());
  EXPECT_EQ(bgp::checkpoint_decode_count(), decodes_before);
}

TEST(PreparedSnapshotTest, ArenaReuseIsIndistinguishableFromFreshClone) {
  // Run a clone to quiescence, dirty it further, then reset the same
  // instance from a different snapshot: every trace of the previous run
  // must be gone (state hash, stats, sim clock).
  auto prototype = std::make_shared<const SystemPrototype>(make_line(3));
  System live(prototype);
  live.start();
  ASSERT_TRUE(live.converge());
  const auto prepared_a = snapshot_and_prepare(live, 0);
  ASSERT_NE(prepared_a, nullptr);

  // Change live state and take a second, different snapshot.
  live.router(0).set_auto_restart(false);
  live.router(1).set_auto_restart(false);
  live.router(0).reset_session(1);
  ASSERT_TRUE(live.converge());
  const auto prepared_b = snapshot_and_prepare(live, 2);
  ASSERT_NE(prepared_b, nullptr);
  ASSERT_NE(prepared_a->cut_hash(), prepared_b->cut_hash());

  explore::CloneArena arena;
  bool reused = false;
  core::System* first = arena.acquire(prototype, *prepared_a, reused);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(reused);
  ASSERT_TRUE(first->converge());
  first->router(0).reset_session(1);  // dirty the arena beyond the snapshot
  first->converge(10'000);

  core::System* second = arena.acquire(prototype, *prepared_b, reused);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(reused);
  EXPECT_EQ(second, first);  // same instance, reused
  EXPECT_EQ(second->simulator().now(), 0u);

  System reference(prototype);
  ASSERT_TRUE(reference.reset_from(*prepared_b).ok());
  ASSERT_TRUE(second->converge());
  ASSERT_TRUE(reference.converge());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(second->router(node).state_hash(), reference.router(node).state_hash())
        << "arena reuse leaked state at node " << i;
    EXPECT_EQ(second->router(node).stats().handler_crashes, 0u);
  }
  EXPECT_EQ(arena.stats().acquires, 2u);
  EXPECT_EQ(arena.stats().reuses, 1u);
  EXPECT_EQ(arena.stats().rebuilds, 1u);
}

TEST(PreparedSnapshotTest, ArenaRebuildsWhenPrototypeChanges) {
  auto proto_a = std::make_shared<const SystemPrototype>(make_line(2));
  auto proto_b = std::make_shared<const SystemPrototype>(make_line(3));
  System live_a(proto_a);
  live_a.start();
  ASSERT_TRUE(live_a.converge());
  System live_b(proto_b);
  live_b.start();
  ASSERT_TRUE(live_b.converge());
  const auto prep_a = snapshot_and_prepare(live_a, 0);
  const auto prep_b = snapshot_and_prepare(live_b, 0);
  ASSERT_NE(prep_a, nullptr);
  ASSERT_NE(prep_b, nullptr);

  explore::CloneArena arena;
  bool reused = true;
  ASSERT_NE(arena.acquire(proto_a, *prep_a, reused), nullptr);
  EXPECT_FALSE(reused);
  core::System* b = arena.acquire(proto_b, *prep_b, reused);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(reused);  // different prototype => rebuild
  EXPECT_EQ(b->size(), 3u);
  EXPECT_EQ(arena.stats().rebuilds, 2u);
}

TEST(PreparedSnapshotTest, SharedPtrKeepsPreparedAliveAcrossTrim) {
  System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());
  SnapshotId id = 0;
  auto prepared = snapshot_and_prepare(system, 0, &id);
  ASSERT_NE(prepared, nullptr);
  EXPECT_EQ(system.snapshots().prepared_size(), 1u);

  // Trim everything: the store's entry is gone, but our handle keeps the
  // decoded state (and the frame schedule) alive and usable.
  system.snapshots().trim(0);
  EXPECT_EQ(system.snapshots().prepared_size(), 0u);
  EXPECT_EQ(system.snapshots().find_prepared(id), nullptr);
  EXPECT_EQ(prepared->nodes().size(), 3u);

  System clone(system.prototype());
  ASSERT_TRUE(clone.reset_from(*prepared).ok());
  ASSERT_TRUE(clone.converge());
  for (std::size_t i = 0; i < system.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(clone.router(node).loc_rib().content_hash(),
              system.router(node).loc_rib().content_hash());
  }
}

TEST(PreparedSnapshotTest, ConcurrentFindPreparedVersusTrim) {
  // Readers resolve prepared handles while a writer churns put/trim/erase:
  // under ASan/TSan this is the lifetime-safety receipt for the shared_ptr
  // publication pattern.
  System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());

  SnapshotStore& store = system.snapshots();
  std::vector<SnapshotId> ids;
  for (int i = 0; i < 8; ++i) {
    SnapshotId id = 0;
    auto prepared = snapshot_and_prepare(system, static_cast<sim::NodeId>(i % 3), &id);
    ASSERT_NE(prepared, nullptr);
    ids.push_back(id);
    ASSERT_TRUE(system.converge());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> resolved{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const SnapshotId id : ids) {
          if (auto handle = store.find_prepared(id)) {
            // Touch the decoded state through the handle; a use-after-free
            // here is exactly what the shared_ptr design must prevent.
            resolved.fetch_add(handle->nodes().size(), std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    store.trim(round % 5);
    for (const SnapshotId id : ids) {
      if (round % 3 == 0) store.erase(id);
    }
    // Re-publish so readers keep finding entries.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Snapshot snap;
      snap.id = ids[i];
      store.put(std::move(snap));
      ASSERT_NE(system.prepare_snapshot(ids[i]), nullptr);
    }
    SnapshotId fresh = 0;
    auto prepared = snapshot_and_prepare(system, 0, &fresh);
    ASSERT_NE(prepared, nullptr);
    ASSERT_TRUE(system.converge());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  SUCCEED() << "resolved " << resolved.load() << " node states without a lifetime fault";
}

}  // namespace
}  // namespace dice::snapshot
