// dice::obs — the passive telemetry subsystem. The receipts:
// (1) metrics merge exactly across concurrent writer threads and snapshots
// come out in stable name order with byte-stable JSON/text exposition;
// (2) histogram bucket edges follow Prometheus `le` semantics (a value
// equal to a bound lands IN that bucket, above the last bound lands in
// +Inf); (3) a Trace's canonical section is the reorder-buffer cell order
// with a deterministic within-cell sort, and the emitted span sequence is
// worker-count-invariant for completed cells; (4) the passivity invariant:
// the committed topology27 fault hash 63f680b04458c2a9 is byte-identical
// with a Trace attached at workers 1, 2, 4 and 8, and a Campaign run under
// a ProgressReporter produces the same fault bytes as a bare run; (5) the
// Log sink swap/write race is gone — concurrent set_sink and write() are
// safe (TSan exercises this file).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace dice::obs {
namespace {

using core::FaultReport;

// In a -DDICE_OBS=OFF build every record call is a no-op; the value-level
// metric tests skip there, while the passivity tests below keep running —
// an OFF-build ctest IS the "telemetry compiled out" half of the receipt.
#define DICE_OBS_REQUIRE_ENABLED()                                     \
  do {                                                                 \
    if (!kEnabled) GTEST_SKIP() << "telemetry compiled out (DICE_OBS=OFF)"; \
  } while (0)

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterMergesExactlyAcrossThreads) {
  DICE_OBS_REQUIRE_ENABLED();
  MetricsRegistry registry;
  Counter& counter = registry.counter("test_merge_total");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
      counter.add(5);  // the n > 1 path
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * (kPerThread + 5));
}

TEST(MetricsTest, GaugeSumsSignedContributionsAcrossThreads) {
  DICE_OBS_REQUIRE_ENABLED();
  Gauge gauge;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 1000; ++i) gauge.add();
      for (int i = 0; i < 400; ++i) gauge.sub();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), 4 * (1000 - 400));
}

TEST(MetricsTest, HistogramBucketEdgesFollowPrometheusLeSemantics) {
  DICE_OBS_REQUIRE_ENABLED();
  Histogram histogram({1.0, 2.0, 5.0});
  histogram.observe(0.5);  // <= 1.0
  histogram.observe(1.0);  // == bound -> that bucket, not the next
  histogram.observe(1.5);  // <= 2.0
  histogram.observe(2.0);  // == bound
  histogram.observe(5.0);  // == last bound
  histogram.observe(5.5);  // above last bound -> +Inf
  const std::vector<std::uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // three bounds + the implicit +Inf bucket
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 5.5);
}

TEST(MetricsTest, SnapshotIsNameSortedAndSerializesStably) {
  DICE_OBS_REQUIRE_ENABLED();
  MetricsRegistry registry;
  registry.counter("zulu_total").add(2);
  registry.counter("alpha_total").add(1);
  registry.gauge("mid_gauge").add(3);
  registry.histogram("lat_ms", {1.0, 10.0}).observe(0.5);

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha_total");
  EXPECT_EQ(snapshot.counters[1].name, "zulu_total");
  EXPECT_EQ(snapshot.counter_value("zulu_total"), 2u);
  EXPECT_EQ(snapshot.counter_value("absent"), 0u);

  const std::string json = snapshot.to_json();
  EXPECT_NE(json.find("\"counters\":{\"alpha_total\":1,\"zulu_total\":2}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"mid_gauge\":3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  // Equal snapshots serialize to equal bytes — the stable-order receipt.
  EXPECT_EQ(json, registry.snapshot().to_json());

  const std::string text = snapshot.to_text();
  EXPECT_NE(text.find("# TYPE alpha_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_sum"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_count 1"), std::string::npos) << text;
}

TEST(MetricsTest, DeltaSinceSubtractsCountersAndKeepsGaugeLevels) {
  DICE_OBS_REQUIRE_ENABLED();
  MetricsRegistry registry;
  Counter& counter = registry.counter("work_total");
  Gauge& gauge = registry.gauge("level");
  Histogram& histogram = registry.histogram("dur_ms", {1.0});

  counter.add(3);
  gauge.add(2);
  histogram.observe(0.5);
  const MetricsSnapshot before = registry.snapshot();

  counter.add(4);
  gauge.add(5);
  histogram.observe(10.0);
  const MetricsSnapshot delta = registry.snapshot().delta_since(before);

  EXPECT_EQ(delta.counter_value("work_total"), 4u);
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(delta.gauges[0].value, 7);  // current level, not a difference
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].count, 1u);
  ASSERT_EQ(delta.histograms[0].counts.size(), 2u);
  EXPECT_EQ(delta.histograms[0].counts[0], 0u);
  EXPECT_EQ(delta.histograms[0].counts[1], 1u);  // the 10.0 -> +Inf
}

// ---------------------------------------------------------------------------
// Trace: canonical ordering, overflow, Chrome JSON
// ---------------------------------------------------------------------------

[[nodiscard]] TraceEvent make_event(const char* name, std::uint32_t cell,
                                    std::uint64_t episode = 0,
                                    std::uint32_t index = 0,
                                    std::uint32_t worker = 0) {
  TraceEvent event;
  event.name = name;
  event.cell = cell;
  event.episode = episode;
  event.index = index;
  event.worker = worker;
  event.t_start_us = 1.0;
  event.dur_us = 2.0;
  return event;
}

TEST(TraceTest, FinalizeOrdersCompletedCellsCanonicallyWithSortedInteriors) {
  DICE_OBS_REQUIRE_ENABLED();
  Trace trace(/*lanes=*/2, /*lane_capacity=*/16);
  // Recorded in scrambled cross-lane order, exactly as racing workers would.
  trace.record(make_event("episode", /*cell=*/1, /*episode=*/0, 0, /*worker=*/1));
  trace.record(make_event("clone", /*cell=*/0, /*episode=*/0, /*index=*/2));
  trace.record(make_event("clone", /*cell=*/0, /*episode=*/0, /*index=*/1, 1));
  trace.record(make_event("bootstrap", /*cell=*/0));
  trace.record(make_event("episode", /*cell=*/0, /*episode=*/1, 0, 1));
  trace.record(make_event("loose", kNoCell));        // unscoped -> tail
  trace.record(make_event("cell", /*cell=*/2));      // incomplete -> tail

  trace.cell_flushed(0, /*completed=*/true);
  trace.cell_flushed(1, /*completed=*/true);
  trace.cell_flushed(2, /*completed=*/false);
  trace.finalize();

  const std::vector<TraceEvent>& events = trace.events();
  ASSERT_EQ(events.size(), 7u);
  EXPECT_EQ(trace.canonical_events(), 5u);
  // Canonical section: cell 0 sorted by (episode, index, name), then cell 1.
  EXPECT_STREQ(events[0].name, "bootstrap");
  EXPECT_STREQ(events[1].name, "clone");
  EXPECT_EQ(events[1].index, 1u);
  EXPECT_STREQ(events[2].name, "clone");
  EXPECT_EQ(events[2].index, 2u);
  EXPECT_STREQ(events[3].name, "episode");
  EXPECT_EQ(events[3].episode, 1u);
  EXPECT_EQ(events[4].cell, 1u);
  // Tail: the incomplete cell before the unscoped sentinel.
  EXPECT_EQ(events[5].cell, 2u);
  EXPECT_EQ(events[6].cell, kNoCell);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceTest, FullLaneDropsEventsAndCountsThem) {
  DICE_OBS_REQUIRE_ENABLED();
  Trace trace(/*lanes=*/1, /*lane_capacity=*/4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    trace.record(make_event("e", /*cell=*/0, 0, i));
  }
  trace.cell_flushed(0, true);
  trace.finalize();
  EXPECT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
}

TEST(TraceTest, ChromeJsonHasCompleteEventsAndWritesToDisk) {
  DICE_OBS_REQUIRE_ENABLED();
  Trace trace;
  trace.record(make_event("cell", 0, 0, 0, /*worker=*/3));
  trace.cell_flushed(0, true);
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos) << json;
  EXPECT_EQ(json.back(), '}');

  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  EXPECT_TRUE(trace.write_chrome_json(path));
}

TEST(TraceTest, SpanOnNullTraceRecordsNothingAndOnRealTraceRecordsOnce) {
  DICE_OBS_REQUIRE_ENABLED();
  {
    Span null_span(nullptr, "nothing", 0);  // must not touch a clock or crash
  }
  Trace trace;
  {
    Span span(&trace, "work", /*worker=*/1, /*cell=*/0, /*episode=*/2, /*index=*/3);
  }
  trace.cell_flushed(0, true);
  trace.finalize();
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_STREQ(trace.events()[0].name, "work");
  EXPECT_EQ(trace.events()[0].episode, 2u);
  EXPECT_EQ(trace.events()[0].index, 3u);
  EXPECT_GE(trace.events()[0].dur_us, 0.0);
}

// ---------------------------------------------------------------------------
// ProgressReporter: formatting + decorator forwarding
// ---------------------------------------------------------------------------

struct CountingObserver : explore::CampaignObserver {
  std::size_t starts = 0, faults = 0, dones = 0, progresses = 0;
  void on_cell_start(const explore::CellDescriptor&) override { ++starts; }
  void on_fault(const explore::CellDescriptor&, const FaultReport&) override {
    ++faults;
  }
  void on_cell_done(const explore::CellDescriptor&,
                    const explore::CellResult&) override {
    ++dones;
  }
  void on_progress(const explore::CampaignProgress&) override { ++progresses; }
};

TEST(ProgressReporterTest, FormatsProgressLinesAndForwardsDownstream) {
  CountingObserver downstream;
  ProgressReporter::Options options;
  options.next = &downstream;
  ProgressReporter reporter(options);

  explore::CampaignProgress progress;
  progress.cells_done = 3;
  progress.cells_total = 8;
  progress.faults = 2;
  reporter.on_progress(progress);

  EXPECT_EQ(reporter.lines_emitted(), 1u);
  EXPECT_EQ(reporter.last().cells_done, 3u);
  EXPECT_NE(reporter.last_line().find("cells 3/8"), std::string::npos)
      << reporter.last_line();
  EXPECT_NE(reporter.last_line().find("faults=2"), std::string::npos)
      << reporter.last_line();
  EXPECT_EQ(downstream.progresses, 1u);
}

// ---------------------------------------------------------------------------
// The passivity invariant — the committed determinism receipt survives
// telemetry. bench_explore_scale's topology27 configuration has hashed to
// this value since PR 1 (tests/explore_nested_test.cpp pins the bare runs).
// ---------------------------------------------------------------------------

constexpr std::uint64_t kTopology27FaultHash = 0x63f680b04458c2a9ULL;

[[nodiscard]] std::uint64_t fault_hash(const std::vector<FaultReport>& faults) {
  std::uint64_t h = util::kFnvOffset;
  for (const FaultReport& fault : faults) h = util::fnv1a(fault.to_string(), h);
  return util::hash_finalize(h);
}

[[nodiscard]] std::uint64_t topology27_hash_with_trace(std::size_t workers,
                                                       Trace* trace) {
  bgp::SystemBlueprint blueprint = bgp::make_internet();  // 27 routers
  bgp::inject_hijack(blueprint, /*victim=*/12, /*attacker=*/20,
                     /*more_specific=*/true);
  bgp::inject_bug(blueprint, /*node=*/5, bgp::bugs::kCommunityLength);

  explore::ExplorePool pool(workers);
  core::DiceOptions options;
  options.inputs_per_episode = 32;
  options.shared_pool = &pool;
  options.trace = trace;
  core::Orchestrator dice(std::move(blueprint), options);
  EXPECT_TRUE(dice.bootstrap());
  core::GrammarStrategy strategy(/*corruption_rate=*/0.05, /*rng_seed=*/0xf1f1);
  for (std::size_t i = 0; i < 2; ++i) (void)dice.run_episode(strategy);
  return fault_hash(dice.all_faults());
}

TEST(ObsPassivityTest, Topology27HashByteIdenticalWithTraceAttached) {
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    Trace trace;
    EXPECT_EQ(topology27_hash_with_trace(workers, &trace), kTopology27FaultHash)
        << "workers=" << workers;
    if (kEnabled) {
      trace.finalize();
      EXPECT_FALSE(trace.events().empty()) << "the trace must capture spans";
    }
  }
}

[[nodiscard]] std::vector<explore::ScenarioSpec> campaign_scenarios() {
  std::vector<explore::ScenarioSpec> scenarios;
  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  scenarios.push_back({"internet9-hijack", std::move(hijack)});
  scenarios.push_back({"line3", bgp::make_line(3)});
  return scenarios;
}

[[nodiscard]] explore::CampaignOptions campaign_options(std::size_t workers,
                                                        bool nested) {
  explore::CampaignOptions options;
  options.strategies = {explore::StrategyKind::kGrammar,
                        explore::StrategyKind::kRandom};
  options.determinism.seeds = {1, 2};
  options.budgets.inputs_per_episode = 4;
  options.budgets.clone_event_budget = 60'000;
  options.budgets.bootstrap_events = 300'000;
  options.parallelism.workers = workers;
  options.parallelism.nested = nested;
  return options;
}

[[nodiscard]] std::string fault_lines(const std::vector<FaultReport>& faults) {
  std::string lines;
  for (const FaultReport& fault : faults) {
    lines += fault.to_string();
    lines += "\n";
  }
  return lines;
}

TEST(ObsPassivityTest, CampaignFaultBytesIdenticalUnderFullTelemetry) {
  // Reference: a bare serial run, no telemetry attached.
  explore::Campaign reference(campaign_scenarios(),
                              campaign_options(1, /*nested=*/false));
  const std::string expected = fault_lines(reference.run().faults);
  ASSERT_FALSE(expected.empty()) << "the hijack scenario must produce faults";

  for (const std::size_t workers : {1u, 2u, 8u}) {
    for (const bool nested : {false, true}) {
      explore::CampaignOptions options = campaign_options(workers, nested);
      Trace trace;
      options.telemetry.trace = &trace;
      options.telemetry.progress_every_cells = 2;
      explore::Campaign campaign(campaign_scenarios(), options);
      ProgressReporter::Options reporter_options;
      reporter_options.pool = &campaign.pool();
      ProgressReporter reporter(reporter_options);
      const explore::CampaignResult result = campaign.run(&reporter);
      EXPECT_EQ(fault_lines(result.faults), expected)
          << "workers=" << workers << " nested=" << nested;
      EXPECT_EQ(result.cells_completed, result.cells.size());
      EXPECT_GT(reporter.lines_emitted(), 0u);
      if (kEnabled) {
        EXPECT_GT(result.telemetry.counter_value(names::kEpisodes), 0u);
      }
    }
  }
}

/// The span signature that must be worker-count-invariant: everything but
/// the timings and the worker id.
using SpanKey = std::tuple<std::string, std::uint32_t, std::uint64_t, std::uint32_t>;

[[nodiscard]] std::vector<SpanKey> canonical_signature(Trace& trace) {
  std::vector<SpanKey> keys;
  keys.reserve(trace.canonical_events());
  for (std::size_t i = 0; i < trace.canonical_events(); ++i) {
    const TraceEvent& event = trace.events()[i];
    keys.emplace_back(event.name, event.cell, event.episode, event.index);
  }
  return keys;
}

TEST(ObsPassivityTest, CanonicalTraceSectionIsWorkerCountInvariant) {
  DICE_OBS_REQUIRE_ENABLED();
  Trace reference_trace;
  explore::CampaignOptions reference_options = campaign_options(1, /*nested=*/true);
  reference_options.telemetry.trace = &reference_trace;
  explore::Campaign reference(campaign_scenarios(), reference_options);
  (void)reference.run();
  const std::vector<SpanKey> expected = canonical_signature(reference_trace);
  ASSERT_FALSE(expected.empty());
  ASSERT_EQ(reference_trace.canonical_events(), reference_trace.events().size())
      << "a completed run should leave no unordered tail";

  for (const std::size_t workers : {2u, 4u}) {
    Trace trace;
    explore::CampaignOptions options = campaign_options(workers, /*nested=*/true);
    options.telemetry.trace = &trace;
    explore::Campaign campaign(campaign_scenarios(), options);
    (void)campaign.run();
    EXPECT_EQ(trace.dropped(), 0u);
    EXPECT_EQ(canonical_signature(trace), expected) << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// Log sink: concurrent swap/write must be race-free (the old mutex design
// could invoke a sink that set_sink was destroying). Run under TSan in CI.
// ---------------------------------------------------------------------------

TEST(LogSinkRaceTest, ConcurrentSetSinkAndWriteAreSafe) {
  const util::LogLevel previous_level = util::Log::level();
  util::Log::set_level(util::LogLevel::kInfo);

  auto counting_sink = [](std::atomic<std::uint64_t>& counter) {
    return [&counter](util::LogLevel, std::string_view, std::string_view) {
      counter.fetch_add(1, std::memory_order_relaxed);
    };
  };
  std::atomic<std::uint64_t> red{0};
  std::atomic<std::uint64_t> blue{0};
  util::Log::Sink original = util::Log::set_sink(counting_sink(red));

  constexpr std::uint64_t kWriters = 4;
  constexpr std::uint64_t kLinesPerWriter = 500;
  std::vector<std::thread> writers;
  for (std::uint64_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([] {
      const util::Logger logger("obs.race");
      for (std::uint64_t i = 0; i < kLinesPerWriter; ++i) logger.info() << "spin";
    });
  }
  // Storm of swaps between two live sinks while the writers emit. One of
  // the counting sinks is installed at every instant, so no line is lost.
  for (int i = 0; i < 400; ++i) {
    (void)util::Log::set_sink(i % 2 == 0 ? counting_sink(blue) : counting_sink(red));
  }
  for (std::thread& writer : writers) writer.join();

  (void)util::Log::set_sink(std::move(original));
  util::Log::set_level(previous_level);
  EXPECT_EQ(red.load() + blue.load(), kWriters * kLinesPerWriter);
}

TEST(LogSinkRaceTest, LogCaptureSerializesConcurrentWriters) {
  util::LogCapture capture;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 4; ++t) {
    writers.emplace_back([] {
      const util::Logger logger("obs.capture");
      for (int i = 0; i < 200; ++i) logger.warn() << "line " << i;
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_TRUE(capture.contains("obs.capture: line 0"));
  // Every append is a whole line: 4 writers x 200 lines.
  const std::string& text = capture.text();
  std::size_t lines = 0;
  for (const char c : text) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 800u);
}

}  // namespace
}  // namespace dice::obs
