#include <gtest/gtest.h>

#include "concolic/sym.hpp"

namespace dice::concolic {
namespace {

TEST(SymTest, ConcreteWithoutContext) {
  ASSERT_EQ(SymCtx::current(), nullptr);
  const SymU8 a{10};
  const SymU8 b{20};
  const SymU8 c = a + b;
  EXPECT_EQ(c.concrete(), 30);
  EXPECT_FALSE(c.symbolic());
  EXPECT_EQ(c.expr(), kNullExpr);
  EXPECT_TRUE(branch(a < b));  // records nothing, returns concrete truth
}

TEST(SymTest, InputBytesAreSymbolicUnderContext) {
  SymCtx ctx({0x11, 0x22});
  SymScope scope(ctx);
  const SymU8 b0 = input_byte(0);
  EXPECT_EQ(b0.concrete(), 0x11);
  EXPECT_TRUE(b0.symbolic());
  const SymU16 word = input_u16(0);
  EXPECT_EQ(word.concrete(), 0x1122);
  EXPECT_TRUE(word.symbolic());
}

TEST(SymTest, InputU32BigEndian) {
  SymCtx ctx({0x01, 0x02, 0x03, 0x04});
  SymScope scope(ctx);
  EXPECT_EQ(input_u32(0).concrete(), 0x01020304u);
}

TEST(SymTest, ArithmeticTracksBothViews) {
  SymCtx ctx({100});
  SymScope scope(ctx);
  const SymU8 x = input_byte(0);
  const SymU8 y = x + SymU8{28};
  EXPECT_EQ(y.concrete(), 128);
  ASSERT_TRUE(y.symbolic());
  // The symbolic expression evaluates to the same value.
  EXPECT_EQ(ctx.pool().eval(y.expr(), ctx.input()), 128u);
}

TEST(SymTest, BranchRecordsConstraint) {
  SymCtx ctx({5});
  SymScope scope(ctx);
  const SymU8 x = input_byte(0);
  EXPECT_TRUE(branch(x < SymU8{10}));
  EXPECT_FALSE(branch(x == SymU8{9}));
  ASSERT_EQ(ctx.path().size(), 2u);
  EXPECT_TRUE(ctx.path().records()[0].taken);
  EXPECT_FALSE(ctx.path().records()[1].taken);
  // Sites differ (different source lines).
  EXPECT_NE(ctx.path().records()[0].site, ctx.path().records()[1].site);
}

TEST(SymTest, ConcreteComparisonsNotRecorded) {
  SymCtx ctx({5});
  SymScope scope(ctx);
  EXPECT_TRUE(branch(SymU8{1} < SymU8{2}));  // both concrete
  EXPECT_EQ(ctx.path().size(), 0u);
}

TEST(SymTest, WideningPreservesSymbolism) {
  SymCtx ctx({0xff});
  SymScope scope(ctx);
  const SymU32 wide = input_byte(0).to<std::uint32_t>();
  EXPECT_EQ(wide.concrete(), 0xffu);
  EXPECT_TRUE(wide.symbolic());
  const SymU8 narrow = wide.to<std::uint8_t>();
  EXPECT_EQ(narrow.concrete(), 0xff);
  EXPECT_TRUE(narrow.symbolic());
}

TEST(SymTest, ShiftAndMaskSemantics) {
  SymCtx ctx({0x80});
  SymScope scope(ctx);
  const SymU8 x = input_byte(0);
  EXPECT_EQ((x >> SymU8{7}).concrete(), 1);
  EXPECT_EQ((x << SymU8{1}).concrete(), 0);    // wraps at 8 bits
  EXPECT_EQ((x & SymU8{0xc0}).concrete(), 0x80);
  EXPECT_EQ((x | SymU8{0x01}).concrete(), 0x81);
  EXPECT_EQ((x ^ SymU8{0xff}).concrete(), 0x7f);
}

TEST(SymTest, BoolCombinators) {
  SymCtx ctx({5, 20});
  SymScope scope(ctx);
  const SymU8 a = input_byte(0);
  const SymU8 b = input_byte(1);
  const SymBool both = (a < SymU8{10}) && (b > SymU8{10});
  EXPECT_TRUE(both.concrete());
  EXPECT_TRUE(both.symbolic());
  const SymBool either = (a > SymU8{100}) || (b == SymU8{20});
  EXPECT_TRUE(either.concrete());
  const SymBool negated = !either;
  EXPECT_FALSE(negated.concrete());
}

TEST(SymTest, SymAssertThrowsAndFlags) {
  SymCtx ctx({1});
  SymScope scope(ctx);
  const SymU8 x = input_byte(0);
  EXPECT_NO_THROW(sym_assert(x == SymU8{1}, "fine"));
  EXPECT_FALSE(ctx.crashed());
  EXPECT_THROW(sym_assert(x == SymU8{2}, "boom"), CrashSignal);
  EXPECT_TRUE(ctx.crashed());
  EXPECT_EQ(ctx.crash_reason(), "boom");
}

TEST(SymTest, ScopeRestoresPrevious) {
  SymCtx outer({1});
  {
    SymScope outer_scope(outer);
    EXPECT_EQ(SymCtx::current(), &outer);
    SymCtx inner({2});
    {
      SymScope inner_scope(inner);
      EXPECT_EQ(SymCtx::current(), &inner);
    }
    EXPECT_EQ(SymCtx::current(), &outer);
  }
  EXPECT_EQ(SymCtx::current(), nullptr);
}

TEST(SymTest, PathSignatureDistinguishesPaths) {
  std::uint64_t sig_a = 0;
  std::uint64_t sig_b = 0;
  {
    SymCtx ctx({5});
    SymScope scope(ctx);
    (void)branch(input_byte(0) < SymU8{10});
    sig_a = ctx.path().signature();
  }
  {
    SymCtx ctx({50});
    SymScope scope(ctx);
    (void)branch(input_byte(0) < SymU8{10});
    sig_b = ctx.path().signature();
  }
  EXPECT_NE(sig_a, sig_b);  // same site, different direction
}

}  // namespace
}  // namespace dice::concolic
