// explore::Campaign — the streaming, cancellable facade. The receipts:
// (1) a Campaign run WITH an observer and a stop token produces fault sets
// byte-identical to the legacy ScenarioMatrix::run wiring at workers 1, 2
// and 8 (hash receipt); (2) observer events arrive in canonical cell order
// and the event stream is identical at any worker count; (3) cancelling
// mid-matrix yields a well-formed partial result whose completed cells
// keep byte-identical fault sets; (4) CampaignOptions::Builder rejects
// nonsense at build time.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "explore/campaign.hpp"
#include "util/hash.hpp"

namespace dice::explore {
namespace {

// The legacy thin wrapper ScenarioMatrix::run(pool) — without a RunControl
// — shipped with one release of migration headroom and is now deleted.
// This detector keeps it deleted: if someone reintroduces a pool-only
// overload, the build fails here rather than silently growing a second
// entry point beside the Campaign facade.
template <typename Matrix, typename = void>
struct has_pool_only_run : std::false_type {};
template <typename Matrix>
struct has_pool_only_run<
    Matrix, std::void_t<decltype(std::declval<Matrix&>().run(
                std::declval<ExplorePool&>()))>> : std::true_type {};
static_assert(!has_pool_only_run<ScenarioMatrix>::value,
              "ScenarioMatrix::run(pool) without RunControl was removed after its "
              "migration release; use run(pool, RunControl{}) or explore::Campaign");

using core::FaultReport;

[[nodiscard]] std::vector<ScenarioSpec> campaign_scenarios() {
  std::vector<ScenarioSpec> scenarios;
  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  scenarios.push_back({"internet9-hijack", std::move(hijack)});
  scenarios.push_back({"line3", bgp::make_line(3)});
  return scenarios;
}

[[nodiscard]] CampaignOptions small_options(std::size_t workers) {
  CampaignOptions options;
  options.strategies = {StrategyKind::kGrammar, StrategyKind::kRandom};
  options.determinism.seeds = {1, 2};
  options.budgets.inputs_per_episode = 4;
  options.budgets.clone_event_budget = 60'000;
  options.budgets.bootstrap_events = 300'000;
  options.parallelism.workers = workers;
  return options;
}

[[nodiscard]] std::string fault_lines(const std::vector<FaultReport>& faults) {
  std::string lines;
  for (const FaultReport& fault : faults) {
    lines += fault.to_string();
    lines += "\n";
  }
  return lines;
}

[[nodiscard]] std::uint64_t line_hash(const std::string& lines) {
  return util::hash_finalize(util::fnv1a(lines, util::kFnvOffset));
}

/// Records the full event stream as a comparable trace, plus per-cell
/// fault strings. Optionally fires a StopSource after the first
/// on_cell_done — the "cancel a soak from the event stream" pattern.
struct Recorder : CampaignObserver {
  std::vector<std::string> events;
  std::map<std::size_t, std::vector<std::string>> cell_faults;
  StopSource* stop_after_first_done = nullptr;
  std::size_t dones = 0;

  void on_cell_start(const CellDescriptor& cell) override {
    events.push_back("start:" + std::to_string(cell.index) + ":" +
                     std::string(cell.scenario) + "/" + std::string(cell.strategy) +
                     "/s" + std::to_string(cell.seed));
  }
  void on_fault(const CellDescriptor& cell, const FaultReport& fault) override {
    events.push_back("fault:" + std::to_string(cell.index));
    cell_faults[cell.index].push_back(fault.to_string());
  }
  void on_cell_done(const CellDescriptor& cell, const CellResult& result) override {
    events.push_back("done:" + std::to_string(cell.index) +
                     (result.completed ? ":completed" : ":cancelled"));
    ++dones;
    if (stop_after_first_done != nullptr && dones == 1) {
      stop_after_first_done->request_stop();
    }
  }
  void on_progress(const CampaignProgress& progress) override {
    events.push_back("progress:" + std::to_string(progress.cells_done) + "/" +
                     std::to_string(progress.cells_total) + ":" +
                     std::to_string(progress.faults));
  }
};

// ---------------------------------------------------------------------------
// StopToken mechanics
// ---------------------------------------------------------------------------

TEST(StopTokenTest, DefaultTokenNeverFiresAndSourceTokenDoes) {
  const StopToken inert;
  EXPECT_FALSE(inert.stop_possible());
  EXPECT_FALSE(inert.stop_requested());

  StopSource source;
  const StopToken token = source.token();
  EXPECT_TRUE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
  source.request_stop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(source.stop_requested());
}

TEST(StopTokenTest, DeadlineFiresWithoutAnySource) {
  const StopToken inert;
  const StopToken expired =
      inert.with_deadline(StopToken::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.stop_possible());
  EXPECT_TRUE(expired.stop_requested());

  const StopToken future =
      inert.with_deadline(StopToken::Clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(future.stop_requested());
  // Combining keeps the earlier deadline.
  EXPECT_TRUE(future
                  .with_deadline(StopToken::Clock::now() -
                                 std::chrono::milliseconds(1))
                  .stop_requested());
}

// ---------------------------------------------------------------------------
// CampaignOptions: build-time validation + lowering receipt
// ---------------------------------------------------------------------------

TEST(CampaignOptionsTest, BuilderAcceptsDefaultsAndSetters) {
  const util::Result<CampaignOptions> plain = CampaignOptions::builder().build();
  ASSERT_TRUE(plain.ok());

  const util::Result<CampaignOptions> tuned =
      CampaignOptions::builder()
          .strategies({StrategyKind::kConcolic})
          .seeds({7, 8})
          .parallelism(4)
          .time_box(std::chrono::hours(1))
          .build();
  ASSERT_TRUE(tuned.ok());
  EXPECT_EQ(tuned.value().strategies.size(), 1u);
  EXPECT_EQ(tuned.value().determinism.seeds, (std::vector<std::uint64_t>{7, 8}));
  EXPECT_EQ(tuned.value().parallelism.workers, 4u);
  EXPECT_TRUE(tuned.value().deadline.has_value());
}

TEST(CampaignOptionsTest, BuilderRejectsNonsense) {
  const auto code_of = [](const util::Result<CampaignOptions>& result) {
    return result.ok() ? std::string("ok") : result.error().code;
  };
  EXPECT_EQ(code_of(CampaignOptions::builder().seeds({}).build()),
            "campaign.options.no_seeds");
  EXPECT_EQ(code_of(CampaignOptions::builder().strategies({}).build()),
            "campaign.options.no_strategies");
  EXPECT_EQ(code_of(CampaignOptions::builder()
                        .deadline(StopToken::Clock::now() - std::chrono::seconds(1))
                        .build()),
            "campaign.options.deadline_in_past");

  CampaignOptions::Budgets no_episodes;
  no_episodes.episodes_per_cell = 0;
  EXPECT_EQ(code_of(CampaignOptions::builder().budgets(no_episodes).build()),
            "campaign.options.zero_episodes");

  CampaignOptions::Budgets no_inputs;
  no_inputs.inputs_per_episode = 0;
  EXPECT_EQ(code_of(CampaignOptions::builder().budgets(no_inputs).build()),
            "campaign.options.zero_inputs");

  EXPECT_EQ(code_of(CampaignOptions::builder()
                        .parallelism(CampaignOptions::Parallelism{0, nullptr})
                        .build()),
            "campaign.options.zero_workers");

  EXPECT_EQ(code_of(CampaignOptions::builder().progress_every_cells(0).build()),
            "campaign.options.zero_progress_cadence");
}

TEST(CampaignOptionsTest, LoweringMapsEveryLegacyKnob) {
  CampaignOptions options = small_options(/*workers=*/3);
  options.budgets.include_baseline_clone = false;
  options.caching.prepared_clones = false;
  options.caching.share_solver_cache = true;
  options.determinism.rng_seed = 42;
  options.determinism.oscillation_threshold = 5;

  const core::DiceOptions dice = options.to_dice_options();
  EXPECT_EQ(dice.inputs_per_episode, 4u);
  EXPECT_EQ(dice.clone_event_budget, 60'000u);
  EXPECT_FALSE(dice.include_baseline_clone);
  EXPECT_FALSE(dice.prepared_clones);
  EXPECT_EQ(dice.rng_seed, 42u);
  EXPECT_EQ(dice.oscillation_threshold, 5u);
  EXPECT_EQ(dice.parallelism, 1u)
      << "the lowering never sizes a private pool; the matrix wires the shared one";

  const MatrixOptions matrix = options.to_matrix_options();
  EXPECT_EQ(matrix.strategies, options.strategies);
  EXPECT_EQ(matrix.seeds, options.determinism.seeds);
  EXPECT_EQ(matrix.episodes_per_cell, 1u);
  EXPECT_EQ(matrix.bootstrap_events, 300'000u);
  EXPECT_TRUE(matrix.share_solver_cache);
  EXPECT_TRUE(matrix.live_state_cache);
}

// ---------------------------------------------------------------------------
// Facade equivalence: Campaign (observer + token) vs legacy ScenarioMatrix
// ---------------------------------------------------------------------------

TEST(CampaignEquivalenceTest, ObservedTokenedRunMatchesLegacyMatrixAtWorkers1And2And8) {
  // The legacy wiring a caller had to assemble by hand before the facade.
  MatrixOptions legacy_options;
  legacy_options.strategies = {StrategyKind::kGrammar, StrategyKind::kRandom};
  legacy_options.seeds = {1, 2};
  legacy_options.episodes_per_cell = 1;
  legacy_options.bootstrap_events = 300'000;
  legacy_options.dice.inputs_per_episode = 4;
  legacy_options.dice.clone_event_budget = 60'000;
  ScenarioMatrix legacy_matrix(campaign_scenarios(), legacy_options);
  ExplorePool legacy_pool(1);
  const MatrixResult legacy = legacy_matrix.run(legacy_pool, {});
  const std::string reference = fault_lines(legacy.faults);
  const std::uint64_t reference_hash = line_hash(reference);
  ASSERT_FALSE(reference.empty()) << "the hijack scenario must produce faults";

  for (const std::size_t workers : {1u, 2u, 8u}) {
    Recorder recorder;
    StopSource source;  // real token plumbed end to end, never fired
    Campaign campaign(campaign_scenarios(), small_options(workers));
    const CampaignResult result = campaign.run(&recorder, source.token());
    EXPECT_FALSE(result.stopped) << "workers=" << workers;
    EXPECT_EQ(result.cells_completed, result.cells.size()) << "workers=" << workers;
    for (const CellResult& cell : result.cells) {
      EXPECT_TRUE(cell.started);
      EXPECT_TRUE(cell.completed);
    }
    EXPECT_EQ(fault_lines(result.faults), reference) << "workers=" << workers;
    EXPECT_EQ(line_hash(fault_lines(result.faults)), reference_hash)
        << "workers=" << workers;
  }
}

TEST(CampaignEquivalenceTest, ObserverEventStreamIsCanonicalAndWorkerCountInvariant) {
  const auto record = [](std::size_t workers) {
    Recorder recorder;
    Campaign campaign(campaign_scenarios(), small_options(workers));
    const CampaignResult result = campaign.run(&recorder);
    EXPECT_EQ(result.cells_completed, result.cells.size());
    return recorder;
  };

  const Recorder serial = record(1);
  ASSERT_FALSE(serial.events.empty());

  // Canonical order: start(0) ... done(0), progress(1/N), start(1) ...
  std::size_t expected_cell = 0;
  std::size_t cells_total = 0;
  for (std::size_t i = 0; i < serial.events.size();) {
    const std::string start_prefix = "start:" + std::to_string(expected_cell) + ":";
    ASSERT_EQ(serial.events[i].substr(0, start_prefix.size()), start_prefix);
    ++i;
    while (i < serial.events.size() &&
           serial.events[i] == "fault:" + std::to_string(expected_cell)) {
      ++i;
    }
    ASSERT_EQ(serial.events[i],
              "done:" + std::to_string(expected_cell) + ":completed");
    ++i;
    ASSERT_EQ(serial.events[i].rfind("progress:" + std::to_string(expected_cell + 1) + "/",
                                     0),
              0u);
    ++i;
    ++expected_cell;
    ++cells_total;
  }
  EXPECT_EQ(cells_total, 8u);  // 2 scenarios x 2 strategies x 2 seeds

  // The determinism receipt: byte-identical event stream at any worker count.
  EXPECT_EQ(record(2).events, serial.events);
  EXPECT_EQ(record(8).events, serial.events);
}

TEST(CampaignProgressTest, CadenceThrottlesProgressAndAlwaysEmitsTheFinalCell) {
  const auto progress_counts = [](std::size_t every) {
    Recorder recorder;
    CampaignOptions options = small_options(/*workers=*/2);
    options.telemetry.progress_every_cells = every;
    Campaign campaign(campaign_scenarios(), options);
    const CampaignResult result = campaign.run(&recorder);
    EXPECT_EQ(result.cells_completed, result.cells.size());

    // Progress counts are monotonically non-decreasing in stream order and
    // the final event covers every cell.
    std::size_t last_done = 0;
    std::size_t last_faults = 0;
    std::vector<std::size_t> dones;
    for (const std::string& event : recorder.events) {
      if (event.rfind("progress:", 0) != 0) continue;
      const std::size_t done = std::stoul(event.substr(9));
      const std::size_t faults = std::stoul(event.substr(event.rfind(':') + 1));
      EXPECT_GE(done, last_done) << event;
      EXPECT_GE(faults, last_faults) << event;
      last_done = done;
      last_faults = faults;
      dones.push_back(done);
    }
    EXPECT_EQ(last_done, result.cells.size());
    return dones;
  };

  const std::vector<std::size_t> every_cell = progress_counts(1);
  EXPECT_EQ(every_cell.size(), 8u);  // 2 scenarios x 2 strategies x 2 seeds

  const std::vector<std::size_t> every_third = progress_counts(3);
  EXPECT_EQ(every_third, (std::vector<std::size_t>{3, 6, 8}))
      << "cadence 3 over 8 cells: multiples of 3 plus the mandatory final";

  const std::vector<std::size_t> oversized = progress_counts(100);
  EXPECT_EQ(oversized, (std::vector<std::size_t>{8}))
      << "a cadence beyond the cell count still reports the final cell";
}

// ---------------------------------------------------------------------------
// Cancellation: well-formed partial results
// ---------------------------------------------------------------------------

TEST(CampaignCancellationTest, MidMatrixStopKeepsCompletedCellsByteIdentical) {
  // Uncancelled reference: per-cell fault strings in canonical order.
  Recorder reference;
  Campaign reference_campaign(campaign_scenarios(), small_options(1));
  const CampaignResult full = reference_campaign.run(&reference);
  ASSERT_FALSE(full.stopped);
  ASSERT_FALSE(full.faults.empty());

  for (const std::size_t workers : {1u, 2u, 8u}) {
    Recorder recorder;
    StopSource source;
    recorder.stop_after_first_done = &source;
    Campaign campaign(campaign_scenarios(), small_options(workers));
    const CampaignResult partial = campaign.run(&recorder, source.token());

    // Well-formed partial result: every cell describes itself, flags are
    // consistent, and the canonical fault list is exactly the completed
    // cells' reference faults in canonical order.
    ASSERT_EQ(partial.cells.size(), full.cells.size());
    std::string expected;
    for (std::size_t i = 0; i < partial.cells.size(); ++i) {
      const CellResult& cell = partial.cells[i];
      EXPECT_FALSE(cell.scenario.empty()) << "workers=" << workers << " cell " << i;
      if (cell.completed) {
        EXPECT_TRUE(cell.started);
        const auto it = reference.cell_faults.find(i);
        const std::vector<std::string> none;
        const std::vector<std::string>& cell_reference =
            it == reference.cell_faults.end() ? none : it->second;
        const auto got = recorder.cell_faults.find(i);
        EXPECT_EQ(got == recorder.cell_faults.end() ? none : got->second,
                  cell_reference)
            << "workers=" << workers << " cell " << i;
        for (const std::string& fault : cell_reference) expected += fault + "\n";
      } else {
        EXPECT_EQ(cell.faults, 0u) << "cancelled cells withhold faults";
        EXPECT_EQ(recorder.cell_faults.count(i), 0u);
      }
    }
    EXPECT_EQ(fault_lines(partial.faults), expected) << "workers=" << workers;

    EXPECT_GE(partial.cells_completed, 1u) << "the stopping cell itself completed";
    if (workers <= 2) {
      // With at most 2 workers and 8 cells, cells are certainly still
      // queued when the token fires — the run must actually stop short.
      // (At 8 workers every cell may already be in flight and allowed to
      // finish; the partial-validity checks above still apply.)
      EXPECT_TRUE(partial.stopped) << "workers=" << workers;
      EXPECT_LT(partial.cells_completed, partial.cells.size())
          << "workers=" << workers;
    }
  }
}

TEST(CampaignCancellationTest, SerialCancellationIsFullyDeterministic) {
  Recorder recorder;
  StopSource source;
  recorder.stop_after_first_done = &source;
  Campaign campaign(campaign_scenarios(), small_options(1));
  const CampaignResult partial = campaign.run(&recorder, source.token());

  // workers=1: the inline pool runs one cell at a time, so exactly the
  // first-dealt cell (canonical cell 0) completes and every other cell is
  // skipped before it starts.
  EXPECT_TRUE(partial.stopped);
  EXPECT_EQ(partial.cells_completed, 1u);
  EXPECT_TRUE(partial.cells[0].completed);
  for (std::size_t i = 1; i < partial.cells.size(); ++i) {
    EXPECT_FALSE(partial.cells[i].started) << "cell " << i;
    EXPECT_FALSE(partial.cells[i].completed) << "cell " << i;
  }
  // The event stream still covers every cell, in canonical order.
  EXPECT_EQ(recorder.dones, partial.cells.size());
}

TEST(CampaignCancellationTest, ExpiredDeadlineSkipsEveryCellButStaysWellFormed) {
  CampaignOptions options = small_options(/*workers=*/2);
  options.deadline = StopToken::Clock::now() + std::chrono::milliseconds(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  Recorder recorder;
  Campaign campaign(campaign_scenarios(), options);
  const CampaignResult result = campaign.run(&recorder);
  EXPECT_TRUE(result.stopped);
  EXPECT_EQ(result.cells_completed, 0u);
  EXPECT_TRUE(result.faults.empty());
  ASSERT_EQ(result.cells.size(), 8u);
  for (const CellResult& cell : result.cells) {
    EXPECT_FALSE(cell.started);
    EXPECT_FALSE(cell.scenario.empty());
  }
  EXPECT_EQ(recorder.dones, result.cells.size())
      << "skipped cells still stream their (cancelled) done events";
}

// ---------------------------------------------------------------------------
// Facade lifetime: owned caches serve repeat runs
// ---------------------------------------------------------------------------

TEST(CampaignSoakTest, OwnedLiveCacheServesRepeatRuns) {
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back({"line3", bgp::make_line(3)});
  CampaignOptions options = small_options(/*workers=*/1);
  options.strategies = {StrategyKind::kGrammar};
  options.determinism.seeds = {1};
  Campaign campaign(std::move(scenarios), options);

  const CampaignResult first = campaign.run();
  ASSERT_EQ(first.cells.size(), 1u);
  EXPECT_FALSE(first.cells[0].bootstrap_from_cache);
  EXPECT_EQ(first.live_cache.misses, 1u);

  const CampaignResult second = campaign.run();
  EXPECT_TRUE(second.cells[0].bootstrap_from_cache);
  EXPECT_EQ(second.live_cache.hits, 1u);
  EXPECT_EQ(second.live_cache.misses, 0u);
  EXPECT_EQ(fault_lines(second.faults), fault_lines(first.faults));

  // The owned cache is reachable for soak-loop maintenance.
  EXPECT_EQ(campaign.live_cache().size(), 1u);
  campaign.live_cache().trim(0);
  EXPECT_EQ(campaign.live_cache().size(), 0u);
}

}  // namespace
}  // namespace dice::explore

// ---------------------------------------------------------------------------
// CellMerger: stop firing MID-MERGE while out-of-order results are held
// ---------------------------------------------------------------------------
// The reorder buffer's sharpest edge: results landing out of canonical
// order while the stop token fires between landings. The stream must stay
// canonical, every held cell must still drain, progress must carry the
// fired flag, and finish_remaining must cover the never-landed tail — a
// pinned partial-validity receipt for the merge path both ScenarioMatrix
// and shard::ShardCoordinator share.

#include "explore/merge.hpp"

namespace dice::explore {
namespace {

/// Event recorder that also captures each progress event's stop flag.
struct MergeRecorder : CampaignObserver {
  std::vector<std::string> events;

  void on_cell_start(const CellDescriptor& cell) override {
    events.push_back("start:" + std::to_string(cell.index));
  }
  void on_fault(const CellDescriptor& cell, const core::FaultReport& fault) override {
    events.push_back("fault:" + std::to_string(cell.index) + ":" +
                     std::string(fault.check));
  }
  void on_cell_done(const CellDescriptor& cell, const CellResult& result) override {
    events.push_back("done:" + std::to_string(cell.index) + ":" +
                     (result.started ? "started" : "skipped"));
  }
  void on_progress(const CampaignProgress& progress) override {
    events.push_back("progress:" + std::to_string(progress.cells_done) + "/" +
                     std::to_string(progress.cells_total) +
                     (progress.stop_requested ? ":stopping" : ""));
  }
};

[[nodiscard]] std::vector<CellResult> merger_cells(std::size_t count) {
  std::vector<CellResult> cells(count);
  for (std::size_t i = 0; i < count; ++i) {
    cells[i].scenario = "cell" + std::to_string(i);
    cells[i].seed = i;
  }
  return cells;
}

[[nodiscard]] core::FaultReport merger_fault(const std::string& check,
                                             std::uint32_t node) {
  core::FaultReport fault;
  fault.fault_class = core::FaultClass::kPolicyConflict;
  fault.check = check;
  fault.description = check + " witnessed";
  fault.node = node;
  return fault;
}

TEST(CellMergerTest, StopMidMergeOfOutOfOrderResultsDrainsHeldCells) {
  std::vector<CellResult> cells = merger_cells(6);
  MergeRecorder recorder;
  StopSource source;
  CellMerger::Options options;
  options.observer = &recorder;
  options.progress_every_cells = 1;
  options.stop = source.token();
  CellMerger merger(&cells, options);

  // Cells 2 and 1 land BEFORE cell 0: nothing may stream yet.
  cells[2].started = cells[2].completed = true;
  merger.record_faults(2, {merger_fault("osc", 7)});
  merger.finish_cell(2);
  cells[1].started = cells[1].completed = true;
  merger.record_faults(1, {merger_fault("osc", 7), merger_fault("div", 3)});
  merger.finish_cell(1);
  ASSERT_TRUE(recorder.events.empty())
      << "out-of-order landings must be held for the canonical prefix";
  EXPECT_TRUE(merger.finished(1));
  EXPECT_FALSE(merger.finished(0));

  // The stop fires MID-MERGE, with two finished cells buffered out of
  // order. A fired token must not wedge or truncate the buffered prefix.
  source.request_stop();

  // Cell 0 lands: the whole held prefix 0,1,2 drains in canonical order,
  // and every progress event from here on reports the fired token.
  cells[0].started = cells[0].completed = true;
  merger.record_faults(0, {merger_fault("div", 3)});
  merger.finish_cell(0);
  const std::vector<std::string> expected_prefix = {
      "start:0", "fault:0:div", "done:0:started", "progress:1/6:stopping",
      "start:1", "fault:1:osc", "fault:1:div", "done:1:started",
      "progress:2/6:stopping",
      "start:2", "fault:2:osc", "done:2:started", "progress:3/6:stopping",
  };
  ASSERT_EQ(recorder.events, expected_prefix);

  // Cells 3-5 never land (skipped by the stop): finish_remaining covers
  // them exactly once, as skipped, still in canonical order.
  merger.finish_remaining();
  const std::vector<std::string> expected_tail = {
      "start:3", "done:3:skipped", "progress:4/6:stopping",
      "start:4", "done:4:skipped", "progress:5/6:stopping",
      "start:5", "done:5:skipped", "progress:6/6:stopping",
  };
  ASSERT_EQ(recorder.events.size(), expected_prefix.size() + expected_tail.size());
  for (std::size_t i = 0; i < expected_tail.size(); ++i) {
    EXPECT_EQ(recorder.events[expected_prefix.size() + i], expected_tail[i]);
  }

  // The canonical fault list is the completed cells' serial order —
  // per-cell salting keeps the identical "osc"/"div" evidence of
  // different cells distinct instead of cross-cell deduplicating.
  const std::vector<core::FaultReport> faults = merger.canonical_faults();
  ASSERT_EQ(faults.size(), 4u);
  EXPECT_EQ(faults[0].check, "div");  // cell 0
  EXPECT_EQ(faults[1].check, "osc");  // cell 1, encounter order
  EXPECT_EQ(faults[2].check, "div");
  EXPECT_EQ(faults[3].check, "osc");  // cell 2
}

TEST(CellMergerTest, ProgressCadenceAlwaysCoversTheFinalCell) {
  std::vector<CellResult> cells = merger_cells(5);
  MergeRecorder recorder;
  CellMerger::Options options;
  options.observer = &recorder;
  options.progress_every_cells = 3;  // 5 cells: cadence hits 3, final hits 5
  CellMerger merger(&cells, options);
  // Land in fully reversed order — the worst case for the reorder buffer.
  for (std::size_t i = cells.size(); i-- > 0;) {
    cells[i].started = cells[i].completed = true;
    merger.finish_cell(i);
  }
  merger.finish_remaining();  // nothing left: must be a no-op
  std::vector<std::string> progress;
  for (const std::string& event : recorder.events) {
    if (event.starts_with("progress:")) progress.push_back(event);
  }
  EXPECT_EQ(progress, (std::vector<std::string>{"progress:3/5", "progress:5/5"}));
  std::size_t dones = 0;
  for (const std::string& event : recorder.events) {
    if (event.starts_with("done:")) ++dones;
  }
  EXPECT_EQ(dones, cells.size()) << "every cell streams exactly once";
}

}  // namespace
}  // namespace dice::explore
