// The NodeImplementation boundary: registry resolution, blueprint
// implementation selection, the System-level interface surface, and the
// normalized RibDigest two conforming engines must agree on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "bgp2/engine.hpp"
#include "dice/system.hpp"

namespace dice::core {
namespace {

TEST(NodeImplRegistryTest, BuiltInEnginesAreRegistered) {
  auto& registry = bgp::NodeImplementationRegistry::instance();
  EXPECT_TRUE(registry.contains(bgp::kBgpRouterImplementationId));
  EXPECT_TRUE(registry.contains(bgp2::kFsmEngineImplementationId));
  EXPECT_FALSE(registry.contains("quagga"));

  const std::vector<std::string> ids = registry.ids();
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), "bgp") != ids.end());
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), "fsm") != ids.end());
}

TEST(NodeImplRegistryTest, CreateResolvesIdsAndRejectsUnknown) {
  sim::Simulator sim;
  sim::Network net(sim);
  const bgp::SystemBlueprint blueprint = bgp::make_line(2);
  auto book = std::make_shared<const std::map<util::IpAddress, sim::NodeId>>(
      blueprint.address_book());
  auto& registry = bgp::NodeImplementationRegistry::instance();

  auto reference = registry.create("bgp", net, 0, blueprint.configs[0], book);
  ASSERT_NE(reference, nullptr);
  EXPECT_EQ(reference->implementation_id(), "bgp");

  auto fsm = registry.create("fsm", net, 1, blueprint.configs[1], book);
  ASSERT_NE(fsm, nullptr);
  EXPECT_EQ(fsm->implementation_id(), "fsm");

  EXPECT_EQ(registry.create("no-such-engine", net, 0, blueprint.configs[0], book),
            nullptr);
}

TEST(BlueprintImplementationTest, DefaultsAndOverridesResolvePerNode) {
  bgp::SystemBlueprint blueprint = bgp::make_line(3);
  // Pre-heterogeneity blueprints carry no implementations vector at all.
  EXPECT_TRUE(blueprint.implementations.empty());
  for (std::size_t i = 0; i < blueprint.size(); ++i) {
    EXPECT_EQ(blueprint.implementation_for(i), "bgp");
  }

  blueprint.set_implementation(1, "fsm");
  EXPECT_EQ(blueprint.implementation_for(0), "bgp");
  EXPECT_EQ(blueprint.implementation_for(1), "fsm");
  EXPECT_EQ(blueprint.implementation_for(2), "bgp");  // short vector's tail

  blueprint.set_all_implementations("fsm");
  for (std::size_t i = 0; i < blueprint.size(); ++i) {
    EXPECT_EQ(blueprint.implementation_for(i), "fsm");
  }
}

TEST(SystemBoundaryTest, SystemBuildsTheImplementationEachNodeAsksFor) {
  bgp::SystemBlueprint blueprint = bgp::make_line(3);
  blueprint.set_implementation(1, "fsm");
  System system(std::move(blueprint));
  EXPECT_EQ(system.router(0).implementation_id(), "bgp");
  EXPECT_EQ(system.router(1).implementation_id(), "fsm");
  EXPECT_EQ(system.router(2).implementation_id(), "bgp");

  // Checked downcast: fine on the reference engine, throws on the other.
  EXPECT_NO_THROW((void)system.bgp_router(0));
  EXPECT_THROW((void)system.bgp_router(1), std::logic_error);
}

TEST(SystemBoundaryTest, UnknownImplementationIdIsRejectedAtConstruction) {
  bgp::SystemBlueprint blueprint = bgp::make_line(2);
  blueprint.set_implementation(0, "no-such-engine");
  EXPECT_THROW(System system(std::move(blueprint)), std::invalid_argument);
}

TEST(RibDigestTest, ConformingEnginesConvergeToEqualDigests) {
  // Same blueprint, one run per engine: after convergence every node's
  // normalized digest must match its counterpart's — the cross-
  // implementation comparison the differential fault class is built on.
  const bgp::SystemBlueprint base = bgp::make_ring(4);

  bgp::SystemBlueprint reference_bp = base;
  System reference(std::move(reference_bp));
  reference.start();
  ASSERT_TRUE(reference.converge());

  bgp::SystemBlueprint fsm_bp = base;
  fsm_bp.set_all_implementations("fsm");
  System fsm(std::move(fsm_bp));
  fsm.start();
  ASSERT_TRUE(fsm.converge());

  for (std::size_t node = 0; node < base.size(); ++node) {
    const bgp::RibDigest want = reference.router(static_cast<sim::NodeId>(node)).rib_digest();
    const bgp::RibDigest got = fsm.router(static_cast<sim::NodeId>(node)).rib_digest();
    EXPECT_GT(want.routes, 0u) << "node " << node;
    EXPECT_EQ(got, want) << "node " << node;
  }
}

}  // namespace
}  // namespace dice::core
