#include <gtest/gtest.h>

#include "bgp/message.hpp"
#include "bgp/types.hpp"

namespace dice::bgp {
namespace {

TEST(AsPathTest, SelectionLengthCountsSetsOnce) {
  AsPath path{{1, 2, 3}};
  EXPECT_EQ(path.selection_length(), 3u);
  path.segments().push_back(AsSegment{AsSegmentType::kSet, {4, 5, 6, 7}});
  EXPECT_EQ(path.selection_length(), 4u);  // 3 + 1
  EXPECT_EQ(path.asn_count(), 7u);
}

TEST(AsPathTest, OriginAndFirstAsn) {
  const AsPath path{{10, 20, 30}};
  EXPECT_EQ(path.first_asn(), 10u);
  EXPECT_EQ(path.origin_asn(), 30u);
  EXPECT_FALSE(AsPath{}.origin_asn().has_value());
  EXPECT_FALSE(AsPath{}.first_asn().has_value());
}

TEST(AsPathTest, OriginSkipsTrailingSets) {
  AsPath path{{10, 20}};
  path.segments().push_back(AsSegment{AsSegmentType::kSet, {30, 40}});
  // Origin is the last ASN of the last SEQUENCE, not the SET.
  EXPECT_EQ(path.origin_asn(), 20u);
}

TEST(AsPathTest, Contains) {
  AsPath path{{10, 20}};
  path.segments().push_back(AsSegment{AsSegmentType::kSet, {30}});
  EXPECT_TRUE(path.contains(10));
  EXPECT_TRUE(path.contains(30));  // sets count for loop detection
  EXPECT_FALSE(path.contains(99));
}

TEST(AsPathTest, PrependOntoEmptyAndSequence) {
  AsPath path;
  path.prepend(7, 2);
  EXPECT_EQ(path.to_string(), "7 7");
  path.prepend(8);
  EXPECT_EQ(path.to_string(), "8 7 7");
  path.prepend(9, 0);  // zero count: no-op
  EXPECT_EQ(path.to_string(), "8 7 7");
}

TEST(AsPathTest, PrependBeforeLeadingSet) {
  AsPath path;
  path.segments().push_back(AsSegment{AsSegmentType::kSet, {5}});
  path.prepend(7);
  ASSERT_EQ(path.segments().size(), 2u);
  EXPECT_EQ(path.segments()[0].type, AsSegmentType::kSequence);
  EXPECT_EQ(path.to_string(), "7 {5}");
}

TEST(AsPathTest, ToStringFormats) {
  EXPECT_EQ(AsPath{}.to_string(), "<empty>");
  AsPath path{{1, 2}};
  path.segments().push_back(AsSegment{AsSegmentType::kSet, {3, 4}});
  EXPECT_EQ(path.to_string(), "1 2 {3,4}");
}

TEST(CommunityTest, MakeAndFormat) {
  const Community c = make_community(65001, 300);
  EXPECT_EQ(c >> 16, 65001u);
  EXPECT_EQ(c & 0xffff, 300u);
  EXPECT_EQ(community_to_string(c), "(65001,300)");
  EXPECT_EQ(community_to_string(well_known::kNoExport), "(65535,65281)");
}

TEST(TypesTest, OriginNames) {
  EXPECT_EQ(to_string(Origin::kIgp), "IGP");
  EXPECT_EQ(to_string(Origin::kEgp), "EGP");
  EXPECT_EQ(to_string(Origin::kIncomplete), "INCOMPLETE");
}

TEST(TypesTest, RouterIdRendering) {
  EXPECT_EQ(router_id_to_string(util::IpAddress{10, 0, 3, 1}.value()), "10.0.3.1");
}

TEST(MessageTest, TypeOfVariant) {
  EXPECT_EQ(type_of(Message{OpenMessage{}}), MessageType::kOpen);
  EXPECT_EQ(type_of(Message{UpdateMessage{}}), MessageType::kUpdate);
  EXPECT_EQ(type_of(Message{NotificationMessage{}}), MessageType::kNotification);
  EXPECT_EQ(type_of(Message{KeepaliveMessage{}}), MessageType::kKeepalive);
}

TEST(MessageTest, ToStringCoversAll) {
  OpenMessage open;
  open.my_asn = 65001;
  EXPECT_NE(to_string(Message{open}).find("OPEN"), std::string::npos);
  EXPECT_NE(to_string(Message{open}).find("65001"), std::string::npos);

  UpdateMessage update;
  update.withdrawn.push_back(util::IpPrefix{util::IpAddress{10, 1, 0, 0}, 16});
  update.attrs.as_path = AsPath{{1}};
  update.nlri.push_back(util::IpPrefix{util::IpAddress{10, 2, 0, 0}, 16});
  const std::string text = to_string(Message{update});
  EXPECT_NE(text.find("withdraw"), std::string::npos);
  EXPECT_NE(text.find("announce"), std::string::npos);
  EXPECT_NE(text.find("10.2.0.0/16"), std::string::npos);

  NotificationMessage notif;
  notif.code = NotifCode::kHoldTimerExpired;
  EXPECT_NE(to_string(Message{notif}).find("HoldTimerExpired"), std::string::npos);

  EXPECT_EQ(to_string(Message{KeepaliveMessage{}}), "KEEPALIVE");
}

}  // namespace
}  // namespace dice::bgp
