// shard wire form (DSHD v1) receipts: codec round-trips for every message
// kind, canonical-bytes equality (equal values -> equal bytes), framing
// reassembly under adversarial chunking, and the svc_store-style robustness
// pass the coordinator stakes its uptime on — EVERY truncated prefix and
// EVERY single-byte corruption of a valid envelope decodes to a typed
// error (checksum verified before any payload parse), never a crash.
#include <gtest/gtest.h>

#include <variant>

#include "shard/scenario_set.hpp"
#include "shard/wire.hpp"
#include "util/hash.hpp"

namespace dice::shard {
namespace {

[[nodiscard]] WireCampaignSpec make_spec() {
  explore::CampaignOptions options;
  options.strategies = {explore::StrategyKind::kGrammar, explore::StrategyKind::kConcolic};
  options.determinism.seeds = {1, 7, 0xffff'ffff'ffff'ffffull};
  options.determinism.implementations = {"", "fsm"};
  options.determinism.strategy_seed = 0xf1f1;
  options.determinism.oscillation_threshold = 9;
  options.budgets.episodes_per_cell = 2;
  options.budgets.inputs_per_episode = 32;
  options.budgets.bootstrap_events = 2'000'000;
  options.budgets.clone_event_budget = 123'456;
  options.parallelism.workers = 4;
  options.parallelism.nested = false;
  options.caching.share_solver_cache = true;
  return WireCampaignSpec::from_options("topology27", options);
}

[[nodiscard]] JobSpec make_job() {
  JobSpec job;
  job.shard_id = 3;
  job.campaign = make_spec();
  job.cells = {0, 2, 4, 11};
  job.unsat_seed = {0xdead, 0xbeef};
  return job;
}

[[nodiscard]] CellResultMsg make_cell_result() {
  CellResultMsg message;
  message.index = 5;
  message.result.scenario = "topology27";
  message.result.strategy = explore::StrategyKind::kGrammarStrict;
  message.result.seed = 42;
  message.result.implementation = "fsm";
  message.result.started = true;
  message.result.completed = true;
  message.result.bootstrap_converged = true;
  message.result.bootstrap_from_cache = false;
  message.result.episodes = 2;
  message.result.clones_run = 66;
  message.result.inputs_subjected = 64;
  message.result.faults = 2;
  message.result.bootstrap_ms = 103.25;
  message.result.wall_ms = 220.5;
  core::FaultReport fault;
  fault.fault_class = core::FaultClass::kPolicyConflict;
  fault.check = "oscillation";
  fault.description = "prefix 10.0.0.0/8 flapped 9 times";
  fault.node = 12;
  fault.episode = 1;
  fault.explorer = 20;
  fault.input = {0xff, 0x00, 0x7f, 0x80};
  fault.potential = true;
  message.faults.push_back(fault);
  fault.fault_class = core::FaultClass::kImplementationDivergence;
  fault.check = "divergence";
  fault.description = "rib digest mismatch";
  fault.input.clear();
  fault.potential = false;
  message.faults.push_back(fault);
  return message;
}

TEST(ShardWire, JobRoundTripsAndIsCanonical) {
  const JobSpec job = make_job();
  const util::Bytes bytes = encode_job(job);
  auto decoded = decode_message(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().detail;
  auto* round = std::get_if<JobSpec>(&decoded.value());
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(*round, job);
  // Canonical bytes: re-encoding the decoded value reproduces the buffer.
  EXPECT_EQ(encode_job(*round), bytes);
}

TEST(ShardWire, SpecOptionLoweringRoundTrips) {
  // from_options -> wire -> to_options -> from_options must be a fixed
  // point: the worker's rebuilt campaign carries the identical
  // determinism-relevant knobs.
  const WireCampaignSpec spec = make_spec();
  const WireCampaignSpec relowered =
      WireCampaignSpec::from_options(spec.scenario_set, spec.to_options());
  EXPECT_EQ(relowered, spec);
}

TEST(ShardWire, CellResultRoundTripsAndIsCanonical) {
  const CellResultMsg message = make_cell_result();
  const util::Bytes bytes = encode_cell_result(message);
  auto decoded = decode_message(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().detail;
  auto* round = std::get_if<CellResultMsg>(&decoded.value());
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->index, message.index);
  EXPECT_EQ(round->result.scenario, message.result.scenario);
  EXPECT_EQ(round->result.strategy, message.result.strategy);
  EXPECT_EQ(round->result.seed, message.result.seed);
  EXPECT_EQ(round->result.implementation, message.result.implementation);
  EXPECT_EQ(round->result.started, message.result.started);
  EXPECT_EQ(round->result.completed, message.result.completed);
  EXPECT_EQ(round->result.bootstrap_converged, message.result.bootstrap_converged);
  EXPECT_EQ(round->result.bootstrap_from_cache, message.result.bootstrap_from_cache);
  EXPECT_EQ(round->result.episodes, message.result.episodes);
  EXPECT_EQ(round->result.clones_run, message.result.clones_run);
  EXPECT_EQ(round->result.inputs_subjected, message.result.inputs_subjected);
  EXPECT_EQ(round->result.faults, message.result.faults);
  EXPECT_DOUBLE_EQ(round->result.bootstrap_ms, message.result.bootstrap_ms);
  EXPECT_DOUBLE_EQ(round->result.wall_ms, message.result.wall_ms);
  ASSERT_EQ(round->faults.size(), message.faults.size());
  for (std::size_t i = 0; i < message.faults.size(); ++i) {
    EXPECT_EQ(round->faults[i].to_string(), message.faults[i].to_string());
    EXPECT_EQ(round->faults[i].input, message.faults[i].input);
    EXPECT_EQ(round->faults[i].episode, message.faults[i].episode);
  }
  // The strongest canonicality receipt: decode -> encode is the identity
  // on bytes.
  EXPECT_EQ(encode_cell_result(*round), bytes);
}

TEST(ShardWire, ShardDoneAndDescriptorRoundTrip) {
  ShardDoneMsg done;
  done.shard_id = 2;
  done.cells_sent = 9;
  done.unsat_keys = {1, 2, 3};
  const util::Bytes done_bytes = encode_shard_done(done);
  auto done_decoded = decode_message(done_bytes);
  ASSERT_TRUE(done_decoded.ok());
  auto* done_round = std::get_if<ShardDoneMsg>(&done_decoded.value());
  ASSERT_NE(done_round, nullptr);
  EXPECT_EQ(*done_round, done);
  EXPECT_EQ(encode_shard_done(*done_round), done_bytes);

  const explore::CellDescriptor descriptor{7, "topology27", "grammar", 42, "fsm"};
  const WireCellDescriptor wire = WireCellDescriptor::from_descriptor(descriptor);
  const util::Bytes desc_bytes = encode_cell_descriptor(wire);
  auto desc_decoded = decode_message(desc_bytes);
  ASSERT_TRUE(desc_decoded.ok());
  auto* desc_round = std::get_if<WireCellDescriptor>(&desc_decoded.value());
  ASSERT_NE(desc_round, nullptr);
  EXPECT_EQ(*desc_round, wire);
  EXPECT_EQ(encode_cell_descriptor(*desc_round), desc_bytes);
}

TEST(ShardWire, EqualValuesProduceEqualBytes) {
  EXPECT_EQ(encode_job(make_job()), encode_job(make_job()));
  EXPECT_EQ(encode_cell_result(make_cell_result()), encode_cell_result(make_cell_result()));
}

// The robustness pass: every truncation length and every single-byte flip
// of every message kind must decode to a TYPED error — exercised for all
// four tags so each payload parser sits behind the checksum.
TEST(ShardWire, EveryTruncationAndFlipFailsTyped) {
  std::vector<util::Bytes> messages;
  messages.push_back(encode_job(make_job()));
  messages.push_back(encode_cell_result(make_cell_result()));
  messages.push_back(encode_shard_done({4, 2, {9}}));
  messages.push_back(
      encode_cell_descriptor(WireCellDescriptor{1, "ring6", "random", 3, ""}));
  for (const util::Bytes& bytes : messages) {
    ASSERT_TRUE(decode_message(bytes).ok());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      auto truncated =
          decode_message(std::span<const std::uint8_t>(bytes.data(), len));
      EXPECT_FALSE(truncated.ok()) << "prefix of " << len << " bytes decoded";
      if (!truncated.ok()) {
        EXPECT_FALSE(truncated.error().code.empty());
      }
    }
    for (const std::uint8_t flip :
         {std::uint8_t{0xff}, std::uint8_t{0x80}, std::uint8_t{0x01}}) {
      for (std::size_t i = 0; i < bytes.size(); ++i) {
        util::Bytes mutant = bytes;
        mutant[i] ^= flip;
        auto corrupt = decode_message(mutant);
        EXPECT_FALSE(corrupt.ok())
            << "byte " << i << " ^ " << static_cast<unsigned>(flip) << " decoded";
        if (!corrupt.ok()) {
          EXPECT_FALSE(corrupt.error().code.empty());
        }
      }
    }
    // Trailing garbage past a complete payload is typed, not ignored.
    util::Bytes extended = bytes;
    extended.push_back(0x00);
    auto trailing = decode_message(extended);
    ASSERT_FALSE(trailing.ok());
    // The appended byte lands inside the checksummed payload span, so
    // either guard may fire — but it must be one of these two.
    EXPECT_TRUE(trailing.error().code == "shard.wire.trailing" ||
                trailing.error().code == "shard.wire.checksum")
        << trailing.error().code;
  }
}

TEST(ShardWire, SpecificCorruptionsYieldSpecificCodes) {
  const util::Bytes bytes = encode_shard_done({1, 1, {}});
  util::Bytes bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_EQ(decode_message(bad_magic).error().code, "shard.wire.magic");
  util::Bytes bad_version = bytes;
  bad_version[4] = 0x7e;
  EXPECT_EQ(decode_message(bad_version).error().code, "shard.wire.version");
  util::Bytes bad_payload = bytes;
  bad_payload.back() ^= 0xff;
  EXPECT_EQ(decode_message(bad_payload).error().code, "shard.wire.checksum");
  // A merely-flipped tag fails the checksum (it sits inside the covered
  // span); an unknown tag with a VALID checksum — an adversarial or
  // future-version peer — must fail as shard.wire.tag.
  util::ByteWriter forged;
  forged.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof(kMagic)));
  forged.u8(kVersion);
  const std::uint8_t body[] = {0x66};
  forged.u64(util::fnv1a(std::span<const std::uint8_t>(body, 1)));
  forged.u8(0x66);
  EXPECT_EQ(decode_message(forged.span()).error().code, "shard.wire.tag");
}

TEST(ShardWire, FrameBufferReassemblesByteAtATime) {
  const util::Bytes first = encode_cell_result(make_cell_result());
  const util::Bytes second = encode_shard_done({0, 1, {5}});
  util::Bytes stream;
  append_frame(stream, first);
  append_frame(stream, second);

  // Feed one byte at a time — pipes may deliver any chunking.
  FrameBuffer frames;
  std::vector<util::Bytes> out;
  for (const std::uint8_t byte : stream) {
    frames.feed(std::span<const std::uint8_t>(&byte, 1));
    for (;;) {
      auto frame = frames.next_frame();
      ASSERT_TRUE(frame.ok());
      if (!frame.value().has_value()) break;
      out.push_back(*frame.value());
    }
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], first);
  EXPECT_EQ(out[1], second);
  EXPECT_EQ(frames.pending_bytes(), 0u);
}

TEST(ShardWire, OversizeFramePoisonsTheStream) {
  util::Bytes stream = {0xff, 0xff, 0xff, 0xff, 0x00};
  FrameBuffer frames;
  frames.feed(stream);
  auto frame = frames.next_frame();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, "shard.wire.frame_oversize");
}

TEST(ShardScenarioSet, ResolvesNamedSetsAndRejectsUnknown) {
  for (const std::string& name : scenario_set_names()) {
    auto specs = resolve_scenario_set(name);
    ASSERT_TRUE(specs.ok()) << name;
    EXPECT_FALSE(specs.value().empty()) << name;
  }
  auto t27 = resolve_scenario_set("topology27");
  ASSERT_TRUE(t27.ok());
  ASSERT_EQ(t27.value().size(), 1u);
  EXPECT_EQ(t27.value()[0].name, "topology27");
  auto unknown = resolve_scenario_set("no-such-set");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, "shard.scenario_set.unknown");
}

}  // namespace
}  // namespace dice::shard
