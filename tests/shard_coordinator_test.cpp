// ShardCoordinator receipts: the cross-process determinism guarantee and
// the failure semantics, driven against the REAL dice_shard_worker binary
// (DICE_SHARD_WORKER_PATH, injected by the build).
//
// 1. Differential receipt — the sharded topology27 campaign's fault-set
//    hash is byte-identical to the single-process 63f680b04458c2a9 at
//    1/2/4 worker processes, across nested and delta-snapshot modes; a
//    multi-cell smoke campaign merges byte-identical to an in-process
//    explore::Campaign run, faults and observer stream included.
// 2. Fault injection through the worker chaos seam — a worker killed
//    mid-shard, stalled past the inactivity deadline, or returning a
//    corrupt frame is re-dealt and converges to the identical hash; with
//    retries exhausted the shard becomes a TYPED loss and a well-formed
//    partial result. Never a coordinator crash, never a silently short
//    merge.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "explore/campaign.hpp"
#include "shard/coordinator.hpp"
#include "shard/scenario_set.hpp"
#include "svc/soak_service.hpp"

namespace dice::shard {
namespace {

constexpr std::uint64_t kReceiptHash = 0x63f680b04458c2a9ull;

[[nodiscard]] std::string worker_path() { return DICE_SHARD_WORKER_PATH; }

/// The pinned receipt campaign (svc_soak_test's): one topology27 cell.
[[nodiscard]] explore::CampaignOptions receipt_campaign(bool nested, bool delta) {
  auto built = explore::CampaignOptions::builder()
                   .strategies({explore::StrategyKind::kGrammar})
                   .seeds({1})
                   .episodes_per_cell(2)
                   .inputs_per_episode(32)
                   .bootstrap_events(2'000'000)
                   .strategy_seed(0xf1f1)
                   .parallelism(2)
                   .nested(nested)
                   .build();
  EXPECT_TRUE(built.ok());
  explore::CampaignOptions options = std::move(built).take();
  options.caching.delta_snapshots = delta;
  return options;
}

/// A fast multi-cell campaign over the "smoke" set: 2 scenarios x 2
/// strategies x 2 seeds = 8 cells.
[[nodiscard]] explore::CampaignOptions smoke_campaign() {
  auto built = explore::CampaignOptions::builder()
                   .strategies({explore::StrategyKind::kGrammar,
                                explore::StrategyKind::kRandom})
                   .seeds({1, 2})
                   .episodes_per_cell(1)
                   .inputs_per_episode(8)
                   .bootstrap_events(100'000)
                   .parallelism(2)
                   .build();
  EXPECT_TRUE(built.ok());
  return std::move(built).take();
}

[[nodiscard]] ShardOptions shard_options(std::size_t processes, std::string scenario_set) {
  ShardOptions options;
  options.processes = processes;
  options.worker_path = worker_path();
  options.scenario_set = std::move(scenario_set);
  return options;
}

/// Records the canonical observer stream compactly for stream equality.
class StreamRecorder final : public explore::CampaignObserver {
 public:
  void on_cell_start(const explore::CellDescriptor& cell) override {
    log_.push_back("start:" + std::to_string(cell.index));
  }
  void on_fault(const explore::CellDescriptor& cell,
                const core::FaultReport& fault) override {
    log_.push_back("fault:" + std::to_string(cell.index) + ":" + fault.to_string());
  }
  void on_cell_done(const explore::CellDescriptor& cell,
                    const explore::CellResult& result) override {
    log_.push_back("done:" + std::to_string(cell.index) + ":" +
                   (result.completed ? "c" : "-") + (result.started ? "s" : "-"));
  }
  [[nodiscard]] const std::vector<std::string>& log() const noexcept { return log_; }

 private:
  std::vector<std::string> log_;
};

TEST(ShardCoordinator, OptionsValidate) {
  ShardOptions options = shard_options(2, "smoke");
  EXPECT_TRUE(options.validate().ok());
  options.processes = 0;
  EXPECT_EQ(options.validate().error().code, "shard.options.processes");
  options = shard_options(2, "smoke");
  options.worker_path.clear();
  EXPECT_EQ(options.validate().error().code, "shard.options.worker_path");
  options = shard_options(2, "no-such-set");
  EXPECT_EQ(options.validate().error().code, "shard.options.scenario_set");
}

// The acceptance receipt: sharded topology27 == single-process
// 63f680b04458c2a9 at 1/2/4 worker processes, nested x delta covered.
TEST(ShardCoordinator, Topology27ReceiptHashAcrossProcessesNestedDelta) {
  struct Case {
    std::size_t processes;
    bool nested;
    bool delta;
  };
  const Case cases[] = {
      {1, true, true}, {2, true, true}, {4, true, true},
      {2, false, true}, {2, true, false},
  };
  for (const Case& c : cases) {
    ShardCoordinator coordinator(receipt_campaign(c.nested, c.delta),
                                 shard_options(c.processes, "topology27"));
    auto result = coordinator.run();
    ASSERT_TRUE(result.ok()) << result.error().detail;
    EXPECT_TRUE(result.value().complete());
    EXPECT_TRUE(result.value().failures.empty());
    EXPECT_EQ(result.value().matrix.cells_completed, 1u);
    EXPECT_EQ(svc::fault_set_hash(result.value().matrix.faults), kReceiptHash)
        << "processes=" << c.processes << " nested=" << c.nested
        << " delta=" << c.delta;
  }
}

// Multi-cell differential: the sharded merge reproduces the in-process
// campaign byte for byte — merged fault list, per-cell results, and the
// canonical observer stream — at 1, 2 and 4 processes.
TEST(ShardCoordinator, SmokeCampaignMatchesInProcessByteForByte) {
  auto scenarios = resolve_scenario_set("smoke");
  ASSERT_TRUE(scenarios.ok());
  explore::Campaign campaign(std::move(scenarios).take(), smoke_campaign());
  StreamRecorder in_process_stream;
  const explore::CampaignResult in_process = campaign.run(&in_process_stream);
  ASSERT_EQ(in_process.cells_completed, in_process.cells.size());
  const std::uint64_t expected_hash = svc::fault_set_hash(in_process.faults);

  for (const std::size_t processes : {1u, 2u, 4u}) {
    ShardCoordinator coordinator(smoke_campaign(), shard_options(processes, "smoke"));
    StreamRecorder sharded_stream;
    auto sharded = coordinator.run(&sharded_stream);
    ASSERT_TRUE(sharded.ok()) << sharded.error().detail;
    EXPECT_TRUE(sharded.value().complete());
    EXPECT_EQ(sharded.value().matrix.cells_completed, in_process.cells_completed);
    EXPECT_EQ(svc::fault_set_hash(sharded.value().matrix.faults), expected_hash)
        << "processes=" << processes;
    ASSERT_EQ(sharded.value().matrix.faults.size(), in_process.faults.size());
    for (std::size_t i = 0; i < in_process.faults.size(); ++i) {
      EXPECT_EQ(sharded.value().matrix.faults[i].to_string(),
                in_process.faults[i].to_string());
    }
    // Per-cell scalar receipts travel intact.
    ASSERT_EQ(sharded.value().matrix.cells.size(), in_process.cells.size());
    for (std::size_t i = 0; i < in_process.cells.size(); ++i) {
      EXPECT_EQ(sharded.value().matrix.cells[i].faults, in_process.cells[i].faults) << i;
      EXPECT_EQ(sharded.value().matrix.cells[i].clones_run,
                in_process.cells[i].clones_run)
          << i;
      EXPECT_TRUE(sharded.value().matrix.cells[i].completed) << i;
    }
    // The canonical observer stream is worker-process-count-invariant.
    EXPECT_EQ(sharded_stream.log(), in_process_stream.log()) << "processes=" << processes;
    // Worker unsat keys merged (the warm-start path crosses back).
    EXPECT_EQ(sharded.value().matrix.unsat_keys, in_process.unsat_keys);
  }
}

// --- fault injection through the worker chaos seam -------------------------

[[nodiscard]] ShardOptions chaos_options(std::vector<std::string> first_attempt_args,
                                         std::uint64_t inactivity_ms = 60'000) {
  ShardOptions options = shard_options(2, "smoke");
  options.first_attempt_args = std::move(first_attempt_args);
  options.inactivity_timeout_ms = inactivity_ms;
  return options;
}

void expect_identical_after_redeal(const ShardRunResult& result,
                                   const std::string& expected_code) {
  EXPECT_TRUE(result.complete());
  EXPECT_GE(result.redeals, 1u);
  ASSERT_FALSE(result.failures.empty());
  for (const ShardAttemptFailure& failure : result.failures) {
    EXPECT_EQ(failure.code, expected_code) << failure.detail;
    EXPECT_EQ(failure.attempt, 0u) << "chaos must only hit first attempts";
  }
  EXPECT_EQ(result.matrix.cells_completed, result.matrix.cells.size());
}

TEST(ShardCoordinator, WorkerCrashMidShardIsRedealtToIdenticalHash) {
  ShardCoordinator baseline(smoke_campaign(), shard_options(2, "smoke"));
  auto clean = baseline.run();
  ASSERT_TRUE(clean.ok());
  const std::uint64_t expected = svc::fault_set_hash(clean.value().matrix.faults);

  ShardCoordinator coordinator(smoke_campaign(),
                               chaos_options({"--test-crash-after-cells=1"}));
  auto result = coordinator.run();
  ASSERT_TRUE(result.ok()) << result.error().detail;
  expect_identical_after_redeal(result.value(), "shard.worker.crash");
  EXPECT_EQ(svc::fault_set_hash(result.value().matrix.faults), expected);
}

TEST(ShardCoordinator, WorkerStallPastDeadlineIsKilledAndRedealt) {
  ShardCoordinator baseline(smoke_campaign(), shard_options(2, "smoke"));
  auto clean = baseline.run();
  ASSERT_TRUE(clean.ok());
  const std::uint64_t expected = svc::fault_set_hash(clean.value().matrix.faults);

  // The deadline must be generous enough that a HEALTHY re-dealt worker
  // never trips it on slow (sanitizer-instrumented) builds — the stalled
  // worker sends nothing forever, so detection stays deterministic and
  // only the wait gets longer.
  ShardCoordinator coordinator(
      smoke_campaign(),
      chaos_options({"--test-stall-after-cells=1"}, /*inactivity_ms=*/10'000));
  auto result = coordinator.run();
  ASSERT_TRUE(result.ok()) << result.error().detail;
  expect_identical_after_redeal(result.value(), "shard.worker.stall");
  EXPECT_EQ(svc::fault_set_hash(result.value().matrix.faults), expected);
}

TEST(ShardCoordinator, CorruptFrameFailsChecksumAndIsRedealt) {
  ShardCoordinator baseline(smoke_campaign(), shard_options(2, "smoke"));
  auto clean = baseline.run();
  ASSERT_TRUE(clean.ok());
  const std::uint64_t expected = svc::fault_set_hash(clean.value().matrix.faults);

  ShardCoordinator coordinator(smoke_campaign(),
                               chaos_options({"--test-corrupt-frame"}));
  auto result = coordinator.run();
  ASSERT_TRUE(result.ok()) << result.error().detail;
  expect_identical_after_redeal(result.value(), "shard.wire.checksum");
  EXPECT_EQ(svc::fault_set_hash(result.value().matrix.faults), expected);
}

// Retries exhausted: a typed loss and a well-formed partial result —
// never a coordinator crash, never a silently short merge.
TEST(ShardCoordinator, ExhaustedRetriesBecomeTypedLoss) {
  ShardOptions options = chaos_options({"--test-crash-after-cells=1"});
  options.max_redeals = 0;  // the chaotic first attempt is the only attempt
  ShardCoordinator coordinator(smoke_campaign(), options);
  StreamRecorder stream;
  auto result = coordinator.run(&stream);
  ASSERT_TRUE(result.ok()) << result.error().detail;
  EXPECT_FALSE(result.value().complete());
  ASSERT_EQ(result.value().losses.size(), 2u);  // both shards crashed
  std::size_t lost_cells = 0;
  for (const ShardLoss& loss : result.value().losses) {
    EXPECT_EQ(loss.code, "shard.worker.crash");
    EXPECT_FALSE(loss.cells.empty());
    lost_cells += loss.cells.size();
  }
  EXPECT_EQ(lost_cells, result.value().matrix.cells.size());
  // The merge is well-formed-partial: every cell present, flushed as
  // skipped, zero faults committed from rolled-back attempts.
  EXPECT_EQ(result.value().matrix.cells_completed, 0u);
  EXPECT_TRUE(result.value().matrix.stopped);
  EXPECT_TRUE(result.value().matrix.faults.empty());
  for (const explore::CellResult& cell : result.value().matrix.cells) {
    EXPECT_FALSE(cell.started);
    EXPECT_FALSE(cell.scenario.empty());  // identity prefill survives loss
  }
  // The observer stream still covers every cell exactly once.
  std::size_t done_events = 0;
  for (const std::string& event : stream.log()) {
    if (event.starts_with("done:")) ++done_events;
  }
  EXPECT_EQ(done_events, result.value().matrix.cells.size());
}

// A worker binary that cannot exec (exit 127 on spawn) is a typed loss
// after retries, not a coordinator error or crash.
TEST(ShardCoordinator, UnexecutableWorkerIsTypedLoss) {
  ShardOptions options = shard_options(1, "smoke");
  options.worker_path = "/nonexistent/dice_shard_worker";
  options.max_redeals = 1;
  ShardCoordinator coordinator(smoke_campaign(), options);
  auto result = coordinator.run();
  ASSERT_TRUE(result.ok()) << result.error().detail;
  EXPECT_FALSE(result.value().complete());
  ASSERT_EQ(result.value().losses.size(), 1u);
  EXPECT_EQ(result.value().losses[0].code, "shard.worker.crash");
  EXPECT_NE(result.value().losses[0].detail.find("exit 127"), std::string::npos)
      << result.value().losses[0].detail;
  EXPECT_EQ(result.value().failures.size(), 2u);  // first attempt + one redeal
}

}  // namespace
}  // namespace dice::shard
