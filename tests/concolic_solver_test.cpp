#include <gtest/gtest.h>

#include "concolic/solver.hpp"
#include "concolic/sym.hpp"

namespace dice::concolic {
namespace {

/// Helper: run `body` under a recording context on `input`, then return
/// (pool, constraints) where constraints require the SAME path.
struct Recorded {
  SymCtx ctx;
  std::vector<Constraint> constraints;

  explicit Recorded(util::Bytes input, const std::function<void()>& body)
      : ctx(std::move(input)) {
    SymScope scope(ctx);
    body();
    for (const BranchRecord& r : ctx.path().records()) {
      constraints.push_back(Constraint{r.cond, r.taken});
    }
  }
};

TEST(SolverTest, HintAlreadySatisfies) {
  Recorded rec({42}, [] { (void)branch(input_byte(0) == SymU8{42}); });
  Solver solver;
  auto solution = solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input());
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 42);
  EXPECT_EQ(solver.stats().hint_hits, 1u);
}

TEST(SolverTest, DirectInversionOnEquality) {
  // Record path for input 0 (x != 66), then ask for the flipped branch.
  Recorded rec({0}, [] { (void)branch(input_byte(0) == SymU8{66}); });
  ASSERT_EQ(rec.constraints.size(), 1u);
  rec.constraints[0].require = !rec.constraints[0].require;  // demand x == 66

  Solver solver;
  auto solution = solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input());
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 66);
}

TEST(SolverTest, ExhaustiveTwoBytes) {
  // Constraint couples two bytes: in[0] + in[1] == 99 with in[0] < 10.
  Recorded rec({200, 200}, [] {
    const SymU8 a = input_byte(0);
    const SymU8 b = input_byte(1);
    (void)branch(a + b == SymU8{99});
    (void)branch(a < SymU8{10});
  });
  // Flip both to required-true.
  for (Constraint& c : rec.constraints) c.require = true;

  Solver solver;
  auto solution = solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input());
  ASSERT_TRUE(solution.has_value());
  const std::uint8_t a = (*solution)[0];
  const std::uint8_t b = (*solution)[1];
  EXPECT_LT(a, 10);
  EXPECT_EQ(static_cast<std::uint8_t>(a + b), 99);
}

TEST(SolverTest, UnsatisfiableDetectedByExhaustion) {
  Recorded rec({5}, [] {
    const SymU8 x = input_byte(0);
    (void)branch(x < SymU8{10});
    (void)branch(x > SymU8{20});
  });
  rec.constraints[0].require = true;
  rec.constraints[1].require = true;  // x < 10 && x > 20: impossible

  Solver solver;
  EXPECT_FALSE(solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input()).has_value());
  EXPECT_EQ(solver.stats().unsat_or_unknown, 1u);
}

TEST(SolverTest, SearchSolvesMultiByte) {
  // 4 coupled bytes: the 32-bit big-endian word must be < 1000 while each
  // byte participates; exhaustive (<=2 bytes) cannot apply.
  Recorded rec({0xff, 0xff, 0xff, 0xff}, [] {
    const SymU32 word = input_u32(0);
    (void)branch(word < SymU32{1000});
  });
  rec.constraints[0].require = true;

  Solver solver;
  auto solution = solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input());
  ASSERT_TRUE(solution.has_value());
  const std::uint32_t word = (static_cast<std::uint32_t>((*solution)[0]) << 24) |
                             (static_cast<std::uint32_t>((*solution)[1]) << 16) |
                             (static_cast<std::uint32_t>((*solution)[2]) << 8) |
                             (*solution)[3];
  EXPECT_LT(word, 1000u);
}

TEST(SolverTest, SolutionPreservesLength) {
  Recorded rec({1, 2, 3, 4, 5}, [] { (void)branch(input_byte(2) == SymU8{77}); });
  rec.constraints[0].require = true;
  Solver solver;
  auto solution = solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input());
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(solution->size(), 5u);
  EXPECT_EQ((*solution)[2], 77);
  // Untouched bytes keep hint values.
  EXPECT_EQ((*solution)[0], 1);
  EXPECT_EQ((*solution)[4], 5);
}

/// Soundness property: whatever the solver returns satisfies ALL
/// constraints under concrete evaluation — across many random systems.
TEST(SolverTest, SoundnessProperty) {
  util::Rng rng(77);
  Solver solver;
  std::size_t solved = 0;
  for (int round = 0; round < 60; ++round) {
    util::Bytes input(6);
    for (auto& b : input) b = rng.byte();
    const std::uint8_t t0 = rng.byte();
    const std::uint8_t t1 = rng.byte();
    const std::uint8_t t2 = static_cast<std::uint8_t>(rng.byte() | 1);

    Recorded rec(input, [&] {
      const SymU8 a = input_byte(0);
      const SymU8 b = input_byte(1);
      const SymU8 c = input_byte(2);
      (void)branch((a ^ SymU8{t0}) < SymU8{t2});
      (void)branch(b == SymU8{t1});
      (void)branch((a + c) > SymU8{t0});
    });
    // Randomly flip required directions.
    for (Constraint& c : rec.constraints) c.require = rng.chance(0.5);

    auto solution = solver.solve(rec.ctx.pool(), rec.constraints, input);
    if (!solution) continue;  // incompleteness is allowed; wrongness is not
    ++solved;
    for (const Constraint& c : rec.constraints) {
      EXPECT_EQ(rec.ctx.pool().eval(c.cond, *solution) != 0, c.require)
          << "solver returned a non-satisfying assignment";
    }
  }
  EXPECT_GT(solved, 20u);  // sanity: the solver is not vacuously incomplete
}

TEST(SolverTest, IntervalPropagationProvesUnsatWithoutSearch) {
  // x < 10 && x > 20 over one byte: interval intersection is empty; the
  // solver must prove unsat with zero enumeration work.
  Recorded rec({5}, [] {
    const SymU8 x = input_byte(0);
    (void)branch(x < SymU8{10});
    (void)branch(x > SymU8{20});
  });
  rec.constraints[0].require = true;
  rec.constraints[1].require = true;
  Solver solver;
  const std::uint64_t evals_before = solver.stats().evaluations;
  EXPECT_FALSE(solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input()).has_value());
  EXPECT_EQ(solver.stats().interval_unsat, 1u);
  // Only the initial check + unsat scan evaluated; no 256-way enumeration.
  EXPECT_LT(solver.stats().evaluations - evals_before, 16u);
}

TEST(SolverTest, IntervalPropagationBoundsEnumeration) {
  // 200 <= x <= 210 && x != 205: feasible; enumeration is clamped to the
  // 11-value interval instead of 256.
  Recorded rec({0}, [] {
    const SymU8 x = input_byte(0);
    (void)branch(x >= SymU8{200});
    (void)branch(x <= SymU8{210});
    (void)branch(x == SymU8{205});
  });
  rec.constraints[0].require = true;
  rec.constraints[1].require = true;
  rec.constraints[2].require = false;
  Solver solver;
  auto solution = solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input());
  ASSERT_TRUE(solution.has_value());
  EXPECT_GE((*solution)[0], 200);
  EXPECT_LE((*solution)[0], 210);
  EXPECT_NE((*solution)[0], 205);
}

TEST(SolverTest, IntervalHandlesConstantOnLeft) {
  // Recorded as (k < x) when written x > k — both operand orders narrow.
  Recorded rec({0}, [] {
    const SymU8 x = input_byte(0);
    (void)branch(SymU8{250} < x);   // x > 250
    (void)branch(SymU8{254} == x);  // x == 254... taken=false on hint 0
  });
  rec.constraints[0].require = true;
  rec.constraints[1].require = true;
  Solver solver;
  auto solution = solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input());
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 254);
}

TEST(SolverTest, StatsAccumulate) {
  Recorded rec({1}, [] { (void)branch(input_byte(0) == SymU8{1}); });
  Solver solver;
  (void)solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input());
  (void)solver.solve(rec.ctx.pool(), rec.constraints, rec.ctx.input());
  EXPECT_EQ(solver.stats().queries, 2u);
  EXPECT_EQ(solver.stats().sat, 2u);
  solver.reset_stats();
  EXPECT_EQ(solver.stats().queries, 0u);
}

}  // namespace
}  // namespace dice::concolic
