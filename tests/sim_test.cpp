#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace dice::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, SameTimeFifoBySequence) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, CancelledEventDoesNotRun) {
  Simulator sim;
  bool ran = false;
  TimerHandle handle = sim.schedule_after(5, [&] { ran = true; });
  handle.cancel();
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule_after(10, tick);
  };
  sim.schedule_after(0, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 40u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (Time t = 10; t <= 100; t += 10) {
    sim.schedule_at(t, [&] { ++count; });
  }
  sim.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50u);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, QuiescenceIgnoresBackgroundEvents) {
  Simulator sim;
  int background_fired = 0;
  // A self-rescheduling background timer must not block quiescence.
  std::function<void()> keepalive = [&] {
    ++background_fired;
    if (background_fired < 100) sim.schedule_after(10, keepalive, /*background=*/true);
  };
  sim.schedule_after(10, keepalive, /*background=*/true);
  bool work_done = false;
  sim.schedule_after(25, [&] { work_done = true; });
  EXPECT_TRUE(sim.run_until_quiescent());
  EXPECT_TRUE(work_done);
  EXPECT_LT(background_fired, 100);  // did not drain the background chain
}

TEST(SimulatorTest, QuiescenceBudgetTripsOnLivelock) {
  Simulator sim;
  // Foreground event that reschedules itself forever: a dispute wheel in
  // miniature. The budget must trip and report non-quiescence.
  std::function<void()> churn = [&] { sim.schedule_after(1, churn); };
  sim.schedule_after(1, churn);
  EXPECT_FALSE(sim.run_until_quiescent(/*max_events=*/1000));
}

TEST(SimulatorTest, EmptyQueueWithPendingForegroundIsNotQuiescence) {
  // Regression: run_until_quiescent used to `break` out of its loop when
  // step() found the queue empty and then report quiescence — a queue/
  // accounting mismatch (foreground still accounted, nothing runnable)
  // read as convergence. The verdict must be non-quiescence.
  Simulator sim;
  SimulatorTestPeer::add_phantom_foreground(sim, 1);
  EXPECT_EQ(sim.pending_foreground(), 1u);
  EXPECT_FALSE(sim.run_until_quiescent(/*max_events=*/1000));
}

TEST(SimulatorTest, CancelledForegroundStillCountsAsQuiescence) {
  // The benign flavor of a drained queue: the last foreground events were
  // cancelled, so step() pops them (returning false) while the accounting
  // reaches zero — that IS quiescence.
  Simulator sim;
  TimerHandle handle = sim.schedule_after(5, [] { FAIL() << "cancelled event ran"; });
  handle.cancel();
  EXPECT_EQ(sim.pending_foreground(), 1u);
  EXPECT_TRUE(sim.run_until_quiescent(/*max_events=*/1000));
  EXPECT_EQ(sim.pending_foreground(), 0u);
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

class Recorder : public Node {
 public:
  void on_frame(NodeId from, const Frame& frame) override {
    frames.emplace_back(from, frame);
  }
  std::vector<std::pair<NodeId, Frame>> frames;
};

TEST(NetworkTest, DeliversWithLatency) {
  Simulator sim;
  Network net(sim);
  Recorder a;
  Recorder b;
  net.attach(1, a);
  net.attach(2, b);
  net.connect(1, 2, 5 * kMillisecond);

  Frame frame;
  frame.payload = {0xaa};
  EXPECT_TRUE(net.send(1, 2, frame));
  sim.run();
  ASSERT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(b.frames[0].first, 1u);
  EXPECT_EQ(b.frames[0].second.payload[0], 0xaa);
  EXPECT_EQ(sim.now(), 5 * kMillisecond);
}

TEST(NetworkTest, NoChannelMeansNoDelivery) {
  Simulator sim;
  Network net(sim);
  Recorder a;
  net.attach(1, a);
  EXPECT_FALSE(net.send(1, 9, Frame{}));
}

TEST(NetworkTest, OrderedDeliveryPerChannel) {
  Simulator sim;
  Network net(sim);
  Recorder a;
  Recorder b;
  net.attach(1, a);
  net.attach(2, b);
  net.connect(1, 2, kMillisecond);
  for (std::uint8_t i = 0; i < 10; ++i) {
    Frame frame;
    frame.payload = {i};
    net.send(1, 2, std::move(frame));
  }
  sim.run();
  ASSERT_EQ(b.frames.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(b.frames[i].second.payload[0], i);
}

TEST(NetworkTest, InFlightInspection) {
  Simulator sim;
  Network net(sim);
  Recorder a;
  Recorder b;
  net.attach(1, a);
  net.attach(2, b);
  net.connect(1, 2, 10 * kMillisecond);
  Frame frame;
  frame.payload = {0x42};
  net.send(1, 2, frame);
  // Before delivery the frame is visible in flight.
  EXPECT_EQ(net.in_flight(1, 2).size(), 1u);
  EXPECT_EQ(net.in_flight(2, 1).size(), 0u);
  sim.run();
  EXPECT_EQ(net.in_flight(1, 2).size(), 0u);
}

TEST(NetworkTest, LinkDownDropsInFlightAndBlocksSends) {
  Simulator sim;
  Network net(sim);
  Recorder a;
  Recorder b;
  net.attach(1, a);
  net.attach(2, b);
  net.connect(1, 2, 10 * kMillisecond);
  net.send(1, 2, Frame{});
  net.set_link_up(1, 2, false);
  EXPECT_FALSE(net.send(1, 2, Frame{}));
  sim.run();
  EXPECT_TRUE(b.frames.empty());
  net.set_link_up(1, 2, true);
  EXPECT_TRUE(net.send(1, 2, Frame{}));
  sim.run();
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST(NetworkTest, InjectBypassesChannels) {
  Simulator sim;
  Network net(sim);
  Recorder b;
  net.attach(2, b);
  Frame frame;
  frame.payload = {0x99};
  net.inject(7, 2, std::move(frame));  // 7 is not even attached
  sim.run();
  ASSERT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(b.frames[0].first, 7u);
}

TEST(NetworkTest, NeighborsAndStats) {
  Simulator sim;
  Network net(sim);
  Recorder a;
  Recorder b;
  Recorder c;
  net.attach(1, a);
  net.attach(2, b);
  net.attach(3, c);
  net.connect(1, 2, kMillisecond);
  net.connect(1, 3, kMillisecond);
  const auto neighbors = net.neighbors(1);
  EXPECT_EQ(neighbors.size(), 2u);
  EXPECT_TRUE(net.linked(1, 2));
  EXPECT_TRUE(net.linked(2, 1));
  EXPECT_FALSE(net.linked(2, 3));
  net.send(1, 2, Frame{});
  sim.run();
  EXPECT_EQ(net.total_sent(), 1u);
  EXPECT_EQ(net.total_delivered(), 1u);
}

}  // namespace
}  // namespace dice::sim
