#include <gtest/gtest.h>

#include "bgp/config.hpp"
#include "bgp/topology.hpp"

namespace dice::bgp {
namespace {

constexpr const char* kSample = R"(
# edge router of AS 65001
router {
  name r1;
  id 10.0.0.1;
  as 65001;
  address 10.0.0.1;
  hold 90;
  network 10.101.0.0/16;
  network 10.102.0.0/16;
  neighbor 10.0.0.2 {
    as 65002;
    description "transit provider";
    import {
      if prefix in 192.168.0.0/16+ then reject;
      if community (65001,666) then reject;
      if aspath ~ 65099 and originated 65098 then { prepend 1; accept; }
      then { localpref 120; community add (65001,100); accept; }
    }
    export {
      if community (65001,100) then accept;
      then reject;
    }
  }
  neighbor 10.0.0.3 {
    as 65003;
    import {
      then { localpref 200; accept; }
    }
    export {
      if nexthop 10.0.0.9 then reject;
      then accept;
    }
  }
}
)";

TEST(ConfigTest, ParsesFullExample) {
  auto parsed = parse_config(kSample);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const RouterConfig& config = parsed.value();
  EXPECT_EQ(config.name, "r1");
  EXPECT_EQ(config.asn, 65001u);
  EXPECT_EQ(config.router_id, util::IpAddress(10, 0, 0, 1).value());
  EXPECT_EQ(config.hold_time, 90);
  ASSERT_EQ(config.networks.size(), 2u);
  EXPECT_EQ(config.networks[0].to_string(), "10.101.0.0/16");
  ASSERT_EQ(config.neighbors.size(), 2u);

  const NeighborConfig& n0 = config.neighbors[0];
  EXPECT_EQ(n0.asn, 65002u);
  EXPECT_EQ(n0.description, "transit provider");
  ASSERT_EQ(n0.import_policy.rules.size(), 4u);
  EXPECT_EQ(n0.import_policy.rules[0].matches[0].kind, Match::Kind::kPrefixOrLonger);
  EXPECT_EQ(n0.import_policy.rules[0].verdict, Verdict::kReject);
  EXPECT_EQ(n0.import_policy.rules[1].matches[0].kind, Match::Kind::kCommunity);
  // Conjunction rule.
  ASSERT_EQ(n0.import_policy.rules[2].matches.size(), 2u);
  EXPECT_EQ(n0.import_policy.rules[2].matches[0].asn, 65099u);
  EXPECT_EQ(n0.import_policy.rules[2].matches[1].kind, Match::Kind::kOriginatedBy);
  // Default rule with actions.
  EXPECT_EQ(n0.import_policy.rules[3].actions.size(), 2u);
  ASSERT_EQ(n0.export_policy.rules.size(), 2u);

  EXPECT_EQ(config.neighbors[1].export_policy.rules[0].matches[0].kind,
            Match::Kind::kNextHop);
}

TEST(ConfigTest, RenderParseRoundTrip) {
  auto parsed = parse_config(kSample);
  ASSERT_TRUE(parsed.ok());
  const std::string rendered = render_config(parsed.value());
  auto reparsed = parse_config(rendered);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string() << "\n" << rendered;
  EXPECT_EQ(reparsed.value(), parsed.value()) << rendered;
}

TEST(ConfigTest, TopologyConfigsRoundTrip) {
  // Every config the topology builders emit must round-trip through the
  // text format (the blueprint is deployable as files).
  for (const SystemBlueprint& bp :
       {make_internet({2, 3, 4}), make_bad_gadget(), make_line(3)}) {
    for (const RouterConfig& config : bp.configs) {
      const std::string rendered = render_config(config);
      auto reparsed = parse_config(rendered);
      ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string() << "\n" << rendered;
      EXPECT_EQ(reparsed.value(), config) << rendered;
    }
  }
}

TEST(ConfigTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(parse_config("router { id 10.0.0.1 }").ok());          // missing ;
  EXPECT_FALSE(parse_config("router { bogus 1; }").ok());             // unknown key
  EXPECT_FALSE(parse_config("nope { }").ok());                        // wrong top
  EXPECT_FALSE(parse_config("router { as x; }").ok());                // bad number
  EXPECT_FALSE(parse_config("router { network 10.0.0.0/40; }").ok()); // bad prefix
  EXPECT_FALSE(parse_config("router { neighbor 10.0.0.2 { import { if then accept; } } }").ok());
  EXPECT_FALSE(parse_config("router { name \"unterminated; }").ok());
}

TEST(ConfigTest, CommunityRangeChecked) {
  EXPECT_FALSE(parse_config(
      "router { neighbor 10.0.0.2 { as 1; import { if community (70000,1) then reject; } } }")
      .ok());
}

TEST(ConfigTest, BugMaskRoundTrips) {
  RouterConfig config;
  config.name = "r9";
  config.router_id = 9;
  config.asn = 9;
  config.bug_mask = 5;
  auto reparsed = parse_config(render_config(config));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().bug_mask, 5u);
}

TEST(ConfigTest, ValidateCatchesMistakes) {
  auto parsed = parse_config(kSample);
  ASSERT_TRUE(parsed.ok());
  RouterConfig config = parsed.value();
  EXPECT_TRUE(validate_config(config).ok());

  RouterConfig zero_asn = config;
  zero_asn.asn = 0;
  EXPECT_FALSE(validate_config(zero_asn).ok());

  RouterConfig zero_id = config;
  zero_id.router_id = 0;
  EXPECT_FALSE(validate_config(zero_id).ok());

  RouterConfig dup = config;
  dup.neighbors.push_back(dup.neighbors[0]);
  EXPECT_FALSE(validate_config(dup).ok());

  RouterConfig bad_neighbor = config;
  bad_neighbor.neighbors[0].asn = 0;
  EXPECT_FALSE(validate_config(bad_neighbor).ok());
}

TEST(ConfigTest, NeighborLookups) {
  auto parsed = parse_config(kSample);
  ASSERT_TRUE(parsed.ok());
  const RouterConfig& config = parsed.value();
  ASSERT_NE(config.neighbor_by_address(util::IpAddress{10, 0, 0, 3}), nullptr);
  EXPECT_EQ(config.neighbor_by_address(util::IpAddress{10, 0, 0, 3})->asn, 65003u);
  EXPECT_EQ(config.neighbor_by_address(util::IpAddress{9, 9, 9, 9}), nullptr);
  ASSERT_NE(config.neighbor_by_asn(65002), nullptr);
  EXPECT_EQ(config.neighbor_by_asn(64000), nullptr);
}

TEST(ConfigTest, CommentsAndWhitespaceIgnored) {
  auto parsed = parse_config("router {\n  # comment\n  id 1.2.3.4;\tas 7;\n}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().asn, 7u);
}

}  // namespace
}  // namespace dice::bgp
