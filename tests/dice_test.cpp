// End-to-end DiCE tests: the three fault classes from the paper, detected
// by full exploration episodes over a live system, plus the narrow
// information-sharing interface and no-false-positive baselines.
#include <gtest/gtest.h>

#include "dice/orchestrator.hpp"

namespace dice::core {
namespace {

using bgp::bugs::kCommunityLength;
using bgp::inject_bug;
using bgp::inject_hijack;
using bgp::make_bad_gadget;
using bgp::make_internet;
using bgp::make_line;

DiceOptions fast_options() {
  DiceOptions options;
  options.inputs_per_episode = 12;
  options.clone_event_budget = 60'000;
  return options;
}

TEST(ChecksTest, PrefixHashIsSaltedAndStable) {
  const util::IpPrefix p{util::IpAddress{10, 1, 0, 0}, 16};
  EXPECT_EQ(hash_prefix(p), hash_prefix(p));
  EXPECT_NE(hash_prefix(p), hash_prefix(p, /*salt=*/123));
  EXPECT_NE(hash_prefix(p), hash_prefix(util::IpPrefix{util::IpAddress{10, 1, 0, 0}, 17}));
}

TEST(ChecksTest, VerdictsCarryNoRawPrefixes) {
  // The narrow interface: origin claims expose hashes + ASNs only.
  System system(make_line(2));
  system.start();
  ASSERT_TRUE(system.converge());
  const OriginClaimCheck check;
  const CheckVerdict verdict = check.run(system.router(0));
  // 2 routes, each with its exact claim plus covering claims down to /8:
  // a /16 publishes 1 + 8 = 9 claims.
  EXPECT_EQ(verdict.origin_claims.size(), 18u);
  for (const auto& claim : verdict.origin_claims) {
    EXPECT_NE(claim.prefix_hash, 0u);
  }
  // Summary is empty (nothing to redact) and counters are aggregates.
  EXPECT_TRUE(verdict.summary.empty());
  EXPECT_EQ(verdict.counters.at("claims"), 18u);
}

TEST(ChecksTest, OriginAggregationFindsMoas) {
  std::vector<CheckVerdict> verdicts(2);
  verdicts[0].node = 0;
  verdicts[0].owned_prefix_hashes = {111};
  verdicts[0].origin_claims = {{111, 65000}};
  verdicts[1].node = 1;
  verdicts[1].origin_claims = {{111, 65009}};  // wrong origin observed at node 1

  const auto owners = collect_owners(verdicts, {{0, 65000}, {1, 65001}});
  ASSERT_TRUE(owners.contains(111));
  const auto violations = aggregate_origin_claims(verdicts, owners);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].legitimate_origin, 65000u);
  EXPECT_EQ(violations[0].observed_origin, 65009u);
  EXPECT_EQ(violations[0].observers, std::vector<sim::NodeId>{1});
}

TEST(ChecksTest, UnownedPrefixesNotCheckable) {
  std::vector<CheckVerdict> verdicts(1);
  verdicts[0].node = 0;
  verdicts[0].origin_claims = {{222, 65009}};  // nobody owns 222
  const auto violations = aggregate_origin_claims(verdicts, collect_owners(verdicts, {}));
  EXPECT_TRUE(violations.empty());
}

TEST(DiceTest, CleanSystemProducesNoStandingFaults) {
  // A healthy system must report no faults about its *current* state.
  // Potential faults (reachable only via subjected inputs) are allowed —
  // a permissive import policy that would accept a hijack announcement is
  // a legitimate vulnerability finding, not a false positive.
  Orchestrator dice(make_internet({2, 3, 4}), fast_options());
  ASSERT_TRUE(dice.bootstrap());
  GrammarStrategy strategy(/*corruption_rate=*/0.0);
  const EpisodeResult episode = dice.run_episode(strategy);
  EXPECT_GT(episode.clones_run, 0u);
  for (const FaultReport& fault : episode.faults) {
    EXPECT_TRUE(fault.potential) << fault.to_string();
  }
}

TEST(DiceTest, FuzzedHijackAnnouncementFlaggedAsPotential) {
  // DiCE's proactive story: on a clean system, the grammar synthesizes a
  // more-specific announcement of a known prefix; the clone accepts it
  // (no origin filtering configured) and the checker reports a POTENTIAL
  // operator mistake — found before any real peer ever sends it.
  DiceOptions options = fast_options();
  options.inputs_per_episode = 32;
  Orchestrator dice(make_internet({2, 3, 4}), options);
  ASSERT_TRUE(dice.bootstrap());
  GrammarStrategy strategy(/*corruption_rate=*/0.0);
  bool potential_origin_fault = false;
  for (int i = 0; i < 4 && !potential_origin_fault; ++i) {
    const EpisodeResult episode = dice.run_episode(strategy);
    for (const FaultReport& fault : episode.faults) {
      potential_origin_fault |= fault.potential && fault.check == "route-origin";
    }
  }
  EXPECT_TRUE(potential_origin_fault);
}

TEST(DiceTest, DetectsOperatorMistakeHijack) {
  // The classic misconfiguration: a stub AS originates someone else's
  // prefix. DiCE's baseline clone + origin aggregation must flag it as an
  // operator mistake in the very first episode.
  bgp::SystemBlueprint bp = make_internet({2, 3, 4});
  inject_hijack(bp, /*victim=*/5, /*attacker=*/8);
  Orchestrator dice(std::move(bp), fast_options());
  ASSERT_TRUE(dice.bootstrap());
  GrammarStrategy strategy;
  const EpisodeResult episode = dice.run_episode(strategy);
  bool found = false;
  for (const FaultReport& fault : episode.faults) {
    if (fault.fault_class == FaultClass::kOperatorMistake && fault.check == "route-origin") {
      found = true;
      // Narrow interface: the description names ASNs and a prefix *hash*.
      EXPECT_NE(fault.description.find("AS"), std::string::npos);
    }
  }
  EXPECT_TRUE(found) << render_fault_table(episode.faults);
}

TEST(DiceTest, DetectsMoreSpecificSubPrefixHijack) {
  // YouTube-style: the attacker announces a /24 inside the victim's /16.
  // Longest-prefix match spreads it everywhere, and the covering-prefix
  // claims in OriginClaimCheck let the /16's owner recognize the theft.
  bgp::SystemBlueprint bp = make_internet({2, 3, 4});
  inject_hijack(bp, /*victim=*/5, /*attacker=*/8, /*more_specific=*/true);
  Orchestrator dice(std::move(bp), fast_options());
  ASSERT_TRUE(dice.bootstrap());
  GrammarStrategy strategy;
  const EpisodeResult episode = dice.run_episode(strategy);
  bool found = false;
  for (const FaultReport& fault : episode.faults) {
    found |= fault.fault_class == FaultClass::kOperatorMistake &&
             fault.check == "route-origin";
  }
  EXPECT_TRUE(found) << render_fault_table(episode.faults);
}

TEST(DiceTest, DetectsPolicyConflictDisputeWheel) {
  DiceOptions options = fast_options();
  options.clone_event_budget = 20'000;  // wheels never quiesce; keep it tight
  Orchestrator dice(make_bad_gadget(), options);
  // The live system cannot converge — bootstrap reports that.
  EXPECT_FALSE(dice.bootstrap(/*max_events=*/20'000));
  GrammarStrategy strategy;
  const EpisodeResult episode = dice.run_episode(strategy);
  bool oscillation = false;
  bool non_quiescence = false;
  for (const FaultReport& fault : episode.faults) {
    if (fault.fault_class != FaultClass::kPolicyConflict) continue;
    oscillation |= fault.check == "oscillation";
    non_quiescence |= fault.check == "non-quiescence";
  }
  EXPECT_TRUE(oscillation || non_quiescence) << render_fault_table(episode.faults);
}

TEST(DiceTest, DetectsProgrammingErrorViaConcolic) {
  // A latent parser bug on one router: no live traffic triggers it, but
  // concolic exploration of the UPDATE handler constructs the crashing
  // input and the clone run surfaces the crash.
  bgp::SystemBlueprint bp = make_line(3);
  inject_bug(bp, /*node=*/0, kCommunityLength);
  DiceOptions options = fast_options();
  options.inputs_per_episode = 48;
  Orchestrator dice(std::move(bp), options);
  ASSERT_TRUE(dice.bootstrap());

  ConcolicStrategy strategy;
  // Explorer rotation: episode 1 explores node 0 (the buggy one).
  const std::size_t inputs = dice.explore_until_fault(
      strategy, FaultClass::kProgrammingError, /*max_episodes=*/6);
  EXPECT_NE(inputs, SIZE_MAX) << "concolic exploration failed to reach the injected bug";
  // The engine itself must also have logged the crash during generation.
  EXPECT_GE(strategy.crashes().size() + strategy.stats().crashes, 1u);
}

TEST(DiceTest, ExplorerRotationCoversAllNodes) {
  Orchestrator dice(make_line(3), fast_options());
  EXPECT_EQ(dice.next_explorer(), 0u);
  EXPECT_EQ(dice.next_explorer(), 1u);
  EXPECT_EQ(dice.next_explorer(), 2u);
  EXPECT_EQ(dice.next_explorer(), 0u);
}

TEST(DiceTest, EpisodeTimingsAreRecorded) {
  Orchestrator dice(make_line(3), fast_options());
  ASSERT_TRUE(dice.bootstrap());
  GrammarStrategy strategy;
  const EpisodeResult episode = dice.run_episode(strategy);
  EXPECT_GT(episode.snapshot_ms, 0.0);
  EXPECT_GT(episode.clone_ms, 0.0);
  EXPECT_GT(episode.explore_ms, 0.0);
  EXPECT_GT(episode.check_ms, 0.0);
  EXPECT_EQ(episode.inputs_subjected, fast_options().inputs_per_episode);
}

TEST(DiceTest, FaultsDeduplicateWithinEpisode) {
  bgp::SystemBlueprint bp = make_internet({2, 3, 4});
  inject_hijack(bp, 5, 8);
  Orchestrator dice(std::move(bp), fast_options());
  ASSERT_TRUE(dice.bootstrap());
  GrammarStrategy strategy;
  const EpisodeResult episode = dice.run_episode(strategy);
  // The hijack is present in every clone, but must be reported once
  // (potential findings from fuzzed inputs are separate, standing is one).
  std::size_t standing_origin_faults = 0;
  for (const FaultReport& fault : episode.faults) {
    if (fault.check == "route-origin" && !fault.potential) ++standing_origin_faults;
  }
  EXPECT_EQ(standing_origin_faults, 1u);
}

TEST(DiceTest, LiveSystemUnchangedByExploration) {
  Orchestrator dice(make_internet({2, 3, 4}), fast_options());
  ASSERT_TRUE(dice.bootstrap());
  std::vector<std::uint64_t> hashes_before;
  for (std::size_t i = 0; i < dice.live().size(); ++i) {
    hashes_before.push_back(dice.live().router(static_cast<sim::NodeId>(i)).state_hash());
  }
  GrammarStrategy strategy(/*corruption_rate=*/0.2);
  (void)dice.run_episode(strategy);
  (void)dice.run_episode(strategy);
  ASSERT_TRUE(dice.live().converge());
  for (std::size_t i = 0; i < dice.live().size(); ++i) {
    EXPECT_EQ(dice.live().router(static_cast<sim::NodeId>(i)).state_hash(),
              hashes_before[i])
        << "exploration disturbed live node " << i;
  }
}

TEST(ReportTest, RenderingAndKeys) {
  FaultReport report;
  report.fault_class = FaultClass::kOperatorMistake;
  report.check = "route-origin";
  report.description = "prefix hash X originated by AS65009";
  report.node = 3;
  report.episode = 7;
  report.input = {0xde, 0xad};
  const std::string text = report.to_string();
  EXPECT_NE(text.find("operator-mistake"), std::string::npos);
  EXPECT_NE(text.find("route-origin"), std::string::npos);
  EXPECT_NE(text.find("dead"), std::string::npos);

  FaultReport same = report;
  same.input = {0xbe, 0xef};  // different input, same fault
  EXPECT_EQ(fault_key(report), fault_key(same));
  same.node = 4;
  EXPECT_NE(fault_key(report), fault_key(same));

  EXPECT_EQ(render_fault_table({}), "no faults detected\n");
  EXPECT_NE(render_fault_table({report}).find("route-origin"), std::string::npos);
}

}  // namespace
}  // namespace dice::core
