#include <gtest/gtest.h>

#include "dice/system.hpp"

namespace dice::bgp {
namespace {

using core::System;

TEST(TopologyTest, BuildersProduceValidConfigs) {
  for (const SystemBlueprint& bp :
       {make_line(3), make_ring(5), make_full_mesh(4), make_star(4),
        make_internet({2, 3, 4}), make_bad_gadget()}) {
    for (const RouterConfig& config : bp.configs) {
      EXPECT_TRUE(validate_config(config).ok()) << config.name;
    }
    // Every link endpoint exists and every neighbor has an address-book hit.
    const auto book = bp.address_book();
    for (const LinkSpec& link : bp.links) {
      EXPECT_LT(link.a, bp.size());
      EXPECT_LT(link.b, bp.size());
    }
    for (const RouterConfig& config : bp.configs) {
      for (const NeighborConfig& neighbor : config.neighbors) {
        EXPECT_TRUE(book.contains(neighbor.address))
            << config.name << " -> " << neighbor.address.to_string();
      }
    }
  }
}

TEST(TopologyTest, InternetDefaultsMatchPaperFigure1) {
  const SystemBlueprint bp = make_internet();
  EXPECT_EQ(bp.size(), 27u);  // 3 tier-1 + 8 tier-2 + 16 stubs
}

TEST(TopologyTest, Internet27Converges) {
  System system(make_internet());
  system.start();
  ASSERT_TRUE(system.converge());
  // Valley-free reachability: every router reaches every originated prefix
  // (each of the 27 routers originates exactly one).
  for (std::size_t i = 0; i < system.size(); ++i) {
    EXPECT_EQ(system.router(static_cast<sim::NodeId>(i)).loc_rib().size(), 27u)
        << "router " << i;
  }
}

TEST(TopologyTest, GaoRexfordPrefersCustomerRoutes) {
  // Tier-2 router t2(0) = node 3 in {3,8,16}: it has tier-1 providers and
  // stub customers. Its route to a customer prefix must carry the customer
  // tag and local-pref 200.
  const InternetTopologyParams params{3, 8, 16};
  System system(make_internet(params));
  system.start();
  ASSERT_TRUE(system.converge());

  const sim::NodeId t2_first = 3;
  const sim::NodeId stub_first = 3 + 8;  // stub(0), customer of t2(0) and t2(1)
  const Route* route = system.router(t2_first).loc_rib().find(node_prefix(stub_first));
  ASSERT_NE(route, nullptr);
  EXPECT_TRUE(route->attrs.has_community(gao_rexford::kCustomerRoute));
  EXPECT_EQ(route->attrs.effective_local_pref(), 200u);
  // Direct customer path: one hop.
  EXPECT_EQ(route->attrs.as_path.selection_length(), 1u);
}

TEST(TopologyTest, ValleyFreeExportHoldsEverywhere) {
  // No router may have learned a peer/provider-tagged route from a
  // neighbor that exported it as peer/provider (valley-free violation):
  // equivalently, every route tagged peer/provider in an Adj-RIB-In must
  // have been a customer route at the exporter. Since exporters reject
  // peer/provider-tagged routes toward peers/providers, any route a router
  // has via a *provider or peer* neighbor arrived legitimately. We verify
  // the observable invariant: a route learned from a customer neighbor
  // never carries the provider tag stamped by a prior provider import at
  // the customer (which would mean the customer exported a provider route
  // upstream).
  System system(make_internet({2, 4, 6}));
  system.start();
  ASSERT_TRUE(system.converge());
  for (std::size_t i = 0; i < system.size(); ++i) {
    const BgpRouter& router = system.bgp_router(static_cast<sim::NodeId>(i));
    for (const NeighborConfig& neighbor : router.config().neighbors) {
      if (neighbor.description != "customer") continue;
      const auto book = system.blueprint().address_book();
      const Rib* rib_in = router.adj_rib_in(book.at(neighbor.address));
      if (rib_in == nullptr) continue;
      for (const auto& [prefix, route] : rib_in->table()) {
        // Import already re-tagged to kCustomerRoute; the violation would
        // be visible as path length > 1 via a non-originating customer
        // whose own best was provider/peer learned. The AS path would then
        // contain a tier-1 ASN "below" the customer — check the path only
        // contains the customer subtree: origin must be reachable via
        // customer edges, i.e. the first ASN is the customer itself.
        EXPECT_EQ(route.attrs.as_path.first_asn(), neighbor.asn)
            << router.config().name << " learned via customer "
            << neighbor.description;
      }
    }
  }
}

TEST(TopologyTest, BadGadgetNeverQuiesces) {
  System system(make_bad_gadget());
  system.start();
  // The dispute wheel has no stable assignment: the run must hit the event
  // budget without quiescing.
  EXPECT_FALSE(system.converge(/*max_events=*/30'000));
  // And best routes keep flipping at the wheel nodes.
  std::uint32_t max_flips = 0;
  for (sim::NodeId id = 1; id <= 3; ++id) {
    for (const auto& [prefix, flips] : system.router(id).best_flips()) {
      max_flips = std::max(max_flips, flips);
    }
  }
  EXPECT_GT(max_flips, 8u);
}

TEST(TopologyTest, HijackInjectionCreatesMoasConflict) {
  SystemBlueprint bp = make_internet({2, 3, 4});
  const sim::NodeId victim = 5;    // a stub
  const sim::NodeId attacker = 8;  // another stub
  inject_hijack(bp, victim, attacker);
  EXPECT_TRUE(std::find(bp.configs[attacker].networks.begin(),
                        bp.configs[attacker].networks.end(),
                        node_prefix(victim)) != bp.configs[attacker].networks.end());

  System system(std::move(bp));
  system.start();
  ASSERT_TRUE(system.converge());
  // Some routers now route the victim's prefix toward the attacker.
  std::size_t poisoned = 0;
  for (std::size_t i = 0; i < system.size(); ++i) {
    const Route* route = system.router(static_cast<sim::NodeId>(i))
                             .loc_rib()
                             .find(node_prefix(victim));
    if (route == nullptr) continue;
    const Asn origin = route->local()
                           ? system.router(static_cast<sim::NodeId>(i)).config().asn
                           : route->attrs.as_path.origin_asn().value_or(0);
    if (origin == node_asn(attacker)) ++poisoned;
  }
  EXPECT_GT(poisoned, 0u);
}

TEST(TopologyTest, StarHubSeesAllLeaves) {
  System system(make_star(5));
  system.start();
  ASSERT_TRUE(system.converge());
  EXPECT_EQ(system.router(0).loc_rib().size(), 6u);
  // Leaves reach each other through the hub (2-hop paths).
  const Route* route = system.router(1).loc_rib().find(node_prefix(2));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->attrs.as_path.selection_length(), 2u);
}

}  // namespace
}  // namespace dice::bgp
