// Nested parallelism — the global worker budget. The receipts:
// (1) the committed fault-set hash 63f680b04458c2a9 (bench_explore_scale's
// topology27 configuration, unchanged since PR 1) is byte-identical with
// nested scheduling on and off at workers 1, 2, 4 and 8; (2) a matrix run
// produces identical fault bytes and observer streams with nesting on/off
// at every worker count; (3) a single-cell campaign actually feeds the
// whole pool: its episodes' clone batches run as child tasks, every child
// is either helped (executed by the submitting cell's worker) or stolen by
// an idle peer; (4) cancellation under nesting still yields well-formed
// partial results; (5) the pool's hierarchical run_batch works as a plain
// primitive (reentrant submission, per-group completion, drain credits).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"
#include "util/hash.hpp"

namespace dice::explore {
namespace {

using core::DiceOptions;
using core::EpisodeResult;
using core::FaultReport;
using core::GrammarStrategy;
using core::Orchestrator;

/// The committed cross-PR determinism receipt: bench_explore_scale's
/// topology27 2-episode grammar run has hashed to this value since PR 1.
constexpr std::uint64_t kTopology27FaultHash = 0x63f680b04458c2a9ULL;

[[nodiscard]] std::uint64_t fault_hash(const std::vector<FaultReport>& faults) {
  std::uint64_t h = util::kFnvOffset;
  for (const FaultReport& fault : faults) h = util::fnv1a(fault.to_string(), h);
  return util::hash_finalize(h);
}

/// Exactly bench_explore_scale's part-1 configuration. `shared` runs the
/// episodes through an externally-owned pool (the global-budget machinery);
/// otherwise the orchestrator owns a private pool when workers > 1.
[[nodiscard]] std::uint64_t topology27_hash(std::size_t workers, bool shared) {
  bgp::SystemBlueprint blueprint = bgp::make_internet();  // 27 routers
  bgp::inject_hijack(blueprint, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  bgp::inject_bug(blueprint, /*node=*/5, bgp::bugs::kCommunityLength);

  ExplorePool pool(shared ? workers : 1);
  DiceOptions options;
  options.inputs_per_episode = 32;
  if (shared) {
    options.shared_pool = &pool;
  } else {
    options.parallelism = workers;
  }
  Orchestrator dice(std::move(blueprint), options);
  EXPECT_TRUE(dice.bootstrap());
  GrammarStrategy strategy(/*corruption_rate=*/0.05, /*rng_seed=*/0xf1f1);
  for (std::size_t i = 0; i < 2; ++i) (void)dice.run_episode(strategy);
  return fault_hash(dice.all_faults());
}

TEST(NestedDeterminismTest, Topology27HashIsByteIdenticalSharedAndOwnedAtEveryWorkerCount) {
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(topology27_hash(workers, /*shared=*/true), kTopology27FaultHash)
        << "shared pool, workers=" << workers;
    EXPECT_EQ(topology27_hash(workers, /*shared=*/false), kTopology27FaultHash)
        << "owned pool, workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// Matrix-level nesting: cells submit clone batches back into the same pool
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<ScenarioSpec> nested_scenarios() {
  std::vector<ScenarioSpec> scenarios;
  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  scenarios.push_back({"internet9-hijack", std::move(hijack)});
  scenarios.push_back({"line3", bgp::make_line(3)});
  return scenarios;
}

[[nodiscard]] CampaignOptions nested_options(std::size_t workers, bool nested) {
  CampaignOptions options;
  options.strategies = {StrategyKind::kGrammar, StrategyKind::kRandom};
  options.determinism.seeds = {1, 2};
  options.budgets.inputs_per_episode = 4;
  options.budgets.clone_event_budget = 60'000;
  options.budgets.bootstrap_events = 300'000;
  options.parallelism.workers = workers;
  options.parallelism.nested = nested;
  return options;
}

[[nodiscard]] std::string fault_lines(const std::vector<FaultReport>& faults) {
  std::string lines;
  for (const FaultReport& fault : faults) {
    lines += fault.to_string();
    lines += "\n";
  }
  return lines;
}

TEST(NestedDeterminismTest, CampaignFaultBytesIdenticalNestedOnAndOffAtEveryWorkerCount) {
  Campaign reference_campaign(nested_scenarios(), nested_options(1, /*nested=*/false));
  const CampaignResult reference = reference_campaign.run();
  const std::string expected = fault_lines(reference.faults);
  ASSERT_FALSE(expected.empty()) << "the hijack scenario must produce faults";

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    for (const bool nested : {false, true}) {
      Campaign campaign(nested_scenarios(), nested_options(workers, nested));
      const CampaignResult result = campaign.run();
      EXPECT_EQ(result.cells_completed, result.cells.size())
          << "workers=" << workers << " nested=" << nested;
      EXPECT_EQ(fault_lines(result.faults), expected)
          << "workers=" << workers << " nested=" << nested;
    }
  }
}

TEST(NestedOccupancyTest, SingleCellCampaignFeedsTheWholePool) {
  // One cell on a 4-worker pool: without nesting, 3 workers have nothing to
  // do — the cells-only schedule wastes them by construction. With the
  // global budget the cell's episode batches become child tasks, and every
  // child is accounted for as either helped (run by the cell's own worker
  // while it waits on the group latch) or stolen by an idle peer.
  std::vector<ScenarioSpec> scenarios;
  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  scenarios.push_back({"internet9-hijack", std::move(hijack)});

  CampaignOptions options = nested_options(/*workers=*/4, /*nested=*/true);
  options.strategies = {StrategyKind::kGrammar};
  options.determinism.seeds = {1};
  options.budgets.inputs_per_episode = 16;
  Campaign campaign(std::move(scenarios), options);
  const CampaignResult result = campaign.run();
  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_TRUE(result.cells[0].completed);
  ASSERT_GT(result.cells[0].clones_run, 0u);

  EXPECT_EQ(result.pool.batches, 1u);
  EXPECT_EQ(result.pool.child_batches, 1u) << "one episode batch";
  EXPECT_EQ(result.pool.child_tasks, result.cells[0].clones_run);
  EXPECT_EQ(result.pool.tasks_run, 1u + result.cells[0].clones_run);
  // Conservation law: a child task leaves the queue exactly two ways.
  EXPECT_EQ(result.pool.helped + result.pool.child_steals, result.pool.child_tasks);
  std::uint64_t per_worker_total = 0;
  for (const std::uint64_t tasks : result.pool.worker_tasks) per_worker_total += tasks;
  EXPECT_EQ(per_worker_total, result.pool.tasks_run);
}

TEST(NestedCancellationTest, StopUnderNestingKeepsCompletedCellsByteIdentical) {
  Campaign reference_campaign(nested_scenarios(), nested_options(1, /*nested=*/false));
  const CampaignResult full = reference_campaign.run();
  ASSERT_FALSE(full.faults.empty());

  // Record the uncancelled per-cell fault lines via the canonical list:
  // cells appear in canonical order, each completed cell's faults are a
  // contiguous run. Simpler: rerun per-cell bookkeeping via an observer.
  struct CellFaults : CampaignObserver {
    std::vector<std::vector<std::string>> per_cell;
    void on_fault(const CellDescriptor& cell, const FaultReport& fault) override {
      if (per_cell.size() <= cell.index) per_cell.resize(cell.index + 1);
      per_cell[cell.index].push_back(fault.to_string());
    }
  };
  CellFaults reference;
  Campaign observed_reference(nested_scenarios(), nested_options(1, /*nested=*/false));
  (void)observed_reference.run(&reference);

  for (const std::size_t workers : {2u, 8u}) {
    struct Stopper : CampaignObserver {
      StopSource source;
      void on_cell_done(const CellDescriptor&, const CellResult&) override {
        source.request_stop();
      }
    };
    Stopper stopper;
    CellFaults partial_faults;
    struct Both : CampaignObserver {
      Stopper* stopper;
      CellFaults* faults;
      void on_fault(const CellDescriptor& cell, const FaultReport& fault) override {
        faults->on_fault(cell, fault);
      }
      void on_cell_done(const CellDescriptor& cell, const CellResult& result) override {
        stopper->on_cell_done(cell, result);
      }
    };
    Both both;
    both.stopper = &stopper;
    both.faults = &partial_faults;
    Campaign campaign(nested_scenarios(), nested_options(workers, /*nested=*/true));
    const CampaignResult partial = campaign.run(&both, stopper.source.token());

    ASSERT_EQ(partial.cells.size(), full.cells.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < partial.cells.size(); ++i) {
      if (!partial.cells[i].completed) {
        EXPECT_EQ(partial.cells[i].faults, 0u)
            << "interrupted cells withhold faults (workers=" << workers << ")";
        continue;
      }
      const std::vector<std::string> none;
      const std::vector<std::string>& got =
          i < partial_faults.per_cell.size() ? partial_faults.per_cell[i] : none;
      const std::vector<std::string>& want =
          i < reference.per_cell.size() ? reference.per_cell[i] : none;
      EXPECT_EQ(got, want) << "workers=" << workers << " cell " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Pool primitive: hierarchical run_batch
// ---------------------------------------------------------------------------

TEST(HierarchicalPoolTest, WorkersCanSubmitChildBatchesReentrantly) {
  for (const std::size_t workers : {1u, 3u}) {
    ExplorePool pool(workers);
    constexpr std::size_t kParents = 4;
    constexpr std::size_t kChildren = 8;
    std::vector<std::atomic<int>> child_runs(kParents * kChildren);
    std::vector<std::atomic<int>> parent_runs(kParents);
    pool.run_batch(kParents, [&](std::size_t parent, std::size_t) {
      parent_runs[parent].fetch_add(1);
      pool.run_batch(kChildren, [&](std::size_t child, std::size_t) {
        child_runs[parent * kChildren + child].fetch_add(1);
      });
    });
    for (std::size_t i = 0; i < kParents; ++i) {
      EXPECT_EQ(parent_runs[i].load(), 1) << "workers=" << workers;
    }
    for (std::size_t i = 0; i < child_runs.size(); ++i) {
      EXPECT_EQ(child_runs[i].load(), 1)
          << "workers=" << workers << " child slot " << i;
    }
    const ExplorePool::Stats stats = pool.stats();
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.child_batches, kParents);
    EXPECT_EQ(stats.tasks_run, kParents + kParents * kChildren);
    EXPECT_EQ(stats.child_tasks, kParents * kChildren);
  }
}

TEST(HierarchicalPoolTest, DrainCreditsChildLatchesSoBatchesStillReturn) {
  // Each parent submits children and (on the serial pool path the drain is
  // a no-op, so use 2 workers) a parent drains the pool mid-batch. All
  // run_batch calls must still return; drained tasks simply never run.
  ExplorePool pool(2);
  std::atomic<std::size_t> children_run{0};
  std::atomic<bool> drained{false};
  pool.run_batch(4, [&](std::size_t, std::size_t) {
    pool.run_batch(16, [&](std::size_t, std::size_t) {
      children_run.fetch_add(1);
      if (!drained.exchange(true)) (void)pool.drain();
    });
  });
  // At least the draining child ran; the drain may have dropped any queued
  // siblings and parents, all of whose latches were credited (we returned).
  EXPECT_GE(children_run.load(), 1u);
  EXPECT_TRUE(drained.load());
}

}  // namespace
}  // namespace dice::explore
