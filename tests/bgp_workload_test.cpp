#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bgp/codec.hpp"
#include "bgp/workload.hpp"
#include "dice/system.hpp"

namespace dice::bgp {
namespace {

TEST(WorkloadTest, EventsAreWellFormed) {
  RouteFeedGenerator feed({}, /*seed=*/1);
  const util::IpAddress next_hop{10, 0, 0, 2};
  for (int i = 0; i < 500; ++i) {
    const FeedEvent event = feed.next(next_hop);
    if (event.announce) {
      EXPECT_FALSE(event.attrs.as_path.empty());
      EXPECT_EQ(event.attrs.next_hop, next_hop);
      EXPECT_GE(event.attrs.as_path.selection_length(), 1u);
      EXPECT_LE(event.attrs.as_path.selection_length(), 6u);
    }
    // Every event encodes to a valid wire message.
    auto encoded = encode(Message{event.to_update()});
    ASSERT_TRUE(encoded.ok());
    EXPECT_TRUE(decode(encoded.value()).ok());
  }
}

TEST(WorkloadTest, WithdrawalsOnlyTargetAnnouncedPrefixes) {
  WorkloadOptions options;
  options.withdraw_ratio = 0.5;
  options.prefix_universe = 50;
  RouteFeedGenerator feed(options, 2);
  std::set<util::IpPrefix> announced;
  for (int i = 0; i < 2000; ++i) {
    const FeedEvent event = feed.next(util::IpAddress{10, 0, 0, 2});
    if (event.announce) {
      announced.insert(event.prefix);
    } else {
      EXPECT_TRUE(announced.contains(event.prefix))
          << "withdrew never-announced " << event.prefix.to_string();
      announced.erase(event.prefix);
    }
    EXPECT_EQ(feed.announced_count(), announced.size());
  }
}

TEST(WorkloadTest, StableOriginPerPrefix) {
  RouteFeedGenerator feed({}, 3);
  std::map<util::IpPrefix, Asn> origins;
  for (int i = 0; i < 2000; ++i) {
    const FeedEvent event = feed.next(util::IpAddress{10, 0, 0, 2});
    if (!event.announce) continue;
    const Asn origin = event.attrs.as_path.origin_asn().value();
    auto [it, inserted] = origins.emplace(event.prefix, origin);
    EXPECT_EQ(it->second, origin) << "origin flapped for " << event.prefix.to_string();
  }
}

TEST(WorkloadTest, ZipfSkewsPopularity) {
  WorkloadOptions options;
  options.prefix_universe = 200;
  options.withdraw_ratio = 0.0;
  RouteFeedGenerator feed(options, 4);
  std::map<util::IpPrefix, int> counts;
  for (int i = 0; i < 5000; ++i) {
    ++counts[feed.next(util::IpAddress{10, 0, 0, 2}).prefix];
  }
  // The most popular prefix should dominate the median one by a wide margin.
  int max_count = 0;
  for (const auto& [prefix, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 200);
  EXPECT_LT(counts.size(), 201u);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  RouteFeedGenerator a({}, 42);
  RouteFeedGenerator b({}, 42);
  for (int i = 0; i < 100; ++i) {
    const FeedEvent ea = a.next(util::IpAddress{10, 0, 0, 2});
    const FeedEvent eb = b.next(util::IpAddress{10, 0, 0, 2});
    EXPECT_EQ(ea.announce, eb.announce);
    EXPECT_EQ(ea.prefix, eb.prefix);
    EXPECT_EQ(ea.attrs, eb.attrs);
  }
}

TEST(WorkloadTest, FeedFillsRouterRib) {
  // Stream a feed into a 2-router system and verify the consumer's RIB
  // tracks the feed's announced set.
  core::System system(make_line(2));
  system.start();
  ASSERT_TRUE(system.converge());

  WorkloadOptions options;
  options.prefix_universe = 300;
  RouteFeedGenerator feed(options, 5);
  for (const util::Bytes& message : feed.encoded_batch(1500, node_address(1))) {
    system.inject_message(1, 0, message);
  }
  ASSERT_TRUE(system.converge());
  // Loc-RIB = own prefix + peer prefix + announced feed prefixes.
  EXPECT_EQ(system.router(0).loc_rib().size(), feed.announced_count() + 2);
}

}  // namespace
}  // namespace dice::bgp
