#include <gtest/gtest.h>

#include "concolic/engine.hpp"
#include "concolic/sym.hpp"

namespace dice::concolic {
namespace {

/// Classic concolic litmus test: a nested magic-byte check that random
/// testing essentially never penetrates but path negation walks straight
/// through.
void magic_target(SymCtx& ctx) {
  if (ctx.input_size() < 4) return;
  const SymU8 a = input_byte(0);
  if (!branch(a == SymU8{0xde})) return;
  const SymU8 b = input_byte(1);
  if (!branch(b == SymU8{0xad})) return;
  const SymU8 c = input_byte(2);
  if (!branch(c == SymU8{0xbe})) return;
  const SymU8 d = input_byte(3);
  sym_assert(d != SymU8{0xef}, "magic bomb reached");
}

TEST(EngineTest, FindsNestedMagicCrash) {
  EngineOptions options;
  options.max_executions = 300;
  ConcolicEngine engine(magic_target, options);
  engine.add_seed({0, 0, 0, 0});
  const RunResult result = engine.run();
  ASSERT_EQ(result.crashes.size(), 1u);
  const util::Bytes& input = result.crashes[0].input;
  EXPECT_EQ(input[0], 0xde);
  EXPECT_EQ(input[1], 0xad);
  EXPECT_EQ(input[2], 0xbe);
  EXPECT_EQ(input[3], 0xef);
  EXPECT_EQ(result.crashes[0].reason, "magic bomb reached");
  // Far fewer executions than the 2^32 random expectation.
  EXPECT_LE(result.stats.executions, 300u);
}

TEST(EngineTest, ExploresBothDirectionsOfABranch) {
  auto target = [](SymCtx& ctx) {
    if (ctx.input_size() < 1) return;
    (void)branch(input_byte(0) < SymU8{128});
  };
  EngineOptions options;
  options.max_executions = 10;
  ConcolicEngine engine(target, options);
  engine.add_seed({0});
  const RunResult result = engine.run();
  // One branch site, two directions discovered.
  EXPECT_EQ(result.stats.branch_points, 2u);
  EXPECT_GE(result.stats.unique_paths, 2u);
}

TEST(EngineTest, DeduplicatesInputsAndPaths) {
  auto target = [](SymCtx& ctx) {
    if (ctx.input_size() < 1) return;
    (void)branch(input_byte(0) == SymU8{1});
  };
  EngineOptions options;
  options.max_executions = 50;
  ConcolicEngine engine(target, options);
  engine.add_seed({0});
  engine.add_seed({0});  // duplicate seed ignored
  const RunResult result = engine.run();
  EXPECT_LE(result.stats.unique_paths, 2u);
  EXPECT_LE(result.stats.executions, 3u);  // 0, 1, maybe one more
}

TEST(EngineTest, StopOnFirstCrash) {
  auto target = [](SymCtx& ctx) {
    if (ctx.input_size() < 1) return;
    sym_assert(input_byte(0) != SymU8{7}, "seven");
  };
  EngineOptions options;
  options.max_executions = 100;
  options.stop_on_first_crash = true;
  ConcolicEngine engine(target, options);
  engine.add_seed({0});
  const RunResult result = engine.run();
  EXPECT_EQ(result.crashes.size(), 1u);
}

TEST(EngineTest, GenerationalBoundPreventsRedundantFlips) {
  // A chain of comparisons: generational search should scale linearly in
  // path depth, not exponentially.
  auto target = [](SymCtx& ctx) {
    if (ctx.input_size() < 6) return;
    for (std::size_t i = 0; i < 6; ++i) {
      if (!branch(input_byte(i) < SymU8{100})) return;  // early exit on flip
    }
  };
  EngineOptions options;
  options.max_executions = 400;
  ConcolicEngine engine(target, options);
  engine.add_seed({0, 0, 0, 0, 0, 0});
  const RunResult result = engine.run();
  // One source site, two directions; and one distinct path per early exit
  // depth plus the all-true path: exactly 7 paths, found in ~7 executions
  // (not 2^6 — that is the generational-search point).
  EXPECT_EQ(result.stats.branch_points, 2u);
  EXPECT_EQ(result.stats.unique_paths, 7u);
  EXPECT_LE(result.stats.executions, 20u);
}

TEST(EngineTest, IncrementalRunsPreserveState) {
  auto target = [](SymCtx& ctx) {
    if (ctx.input_size() < 2) return;
    if (branch(input_byte(0) == SymU8{9})) {
      sym_assert(input_byte(1) != SymU8{9}, "nines");
    }
  };
  EngineOptions options;
  options.max_executions = 1000;
  ConcolicEngine engine(target, options);
  engine.add_seed({0, 0});
  std::size_t crashes = 0;
  for (int batch = 0; batch < 10 && crashes == 0; ++batch) {
    const RunResult result = engine.run(3);  // tiny per-call budget
    crashes += result.crashes.size();
    if (engine.queue_empty()) break;
  }
  EXPECT_EQ(crashes, 1u);
}

TEST(EngineTest, ObserverSeesEveryExecution) {
  auto target = [](SymCtx& ctx) {
    if (ctx.input_size() < 1) return;
    (void)branch(input_byte(0) < SymU8{50});
  };
  EngineOptions options;
  options.max_executions = 20;
  ConcolicEngine engine(target, options);
  std::size_t observed = 0;
  engine.set_observer([&observed](const SymCtx&, const util::Bytes&) { ++observed; });
  engine.add_seed({0});
  const RunResult result = engine.run();
  EXPECT_EQ(observed, result.stats.executions);
}

TEST(EngineTest, CrashInputsAreDistinctPerReason) {
  auto target = [](SymCtx& ctx) {
    if (ctx.input_size() < 1) return;
    const SymU8 x = input_byte(0);
    if (branch(x == SymU8{1})) sym_assert(SymBool{false}, "bug-one");
    if (branch(x == SymU8{2})) sym_assert(SymBool{false}, "bug-two");
  };
  EngineOptions options;
  options.max_executions = 100;
  ConcolicEngine engine(target, options);
  engine.add_seed({0});
  const RunResult result = engine.run();
  ASSERT_EQ(result.crashes.size(), 2u);
  EXPECT_NE(result.crashes[0].reason, result.crashes[1].reason);
}

}  // namespace
}  // namespace dice::concolic
