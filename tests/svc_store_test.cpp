// svc::ArtifactStore: the warm-start store's wire format. Roundtrip and
// canonicalization receipts, then the robustness contract the resident
// daemon stakes its uptime on — EVERY truncated prefix and EVERY
// single-byte corruption of a valid store decodes to a typed error (the
// checksum is verified before any payload parsing), never a crash, never a
// partial result.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "svc/artifact_store.hpp"

namespace dice::svc {
namespace {

[[nodiscard]] snapshot::Snapshot make_snapshot(std::uint64_t id) {
  snapshot::Snapshot snap;
  snap.id = id;
  snap.baseline_id = 0;
  snap.taken_at = 12'345 + id;
  for (sim::NodeId node = 0; node < 3; ++node) {
    snapshot::Checkpoint checkpoint;
    checkpoint.node = node;
    // First byte deliberately != the delta sentinel (0x03).
    checkpoint.state = {0x01, static_cast<std::uint8_t>(0x10 + node), 0x7f,
                        static_cast<std::uint8_t>(id & 0xff)};
    checkpoint.hash = 0x1000 + node + id;
    snap.nodes.emplace(node, std::move(checkpoint));
  }
  snap.channels.emplace(snapshot::ChannelKey{0, 1},
                        std::vector<util::Bytes>{{0xaa, 0xbb}, {0xcc}});
  return snap;
}

[[nodiscard]] LiveStateArtifact make_artifact(const std::string& scenario,
                                              std::uint64_t seed) {
  LiveStateArtifact artifact;
  artifact.key = WarmKey{scenario, "", seed, 300'000, 40};
  artifact.resume_at = 98'765;
  artifact.bootstrap_executed = 4'242;
  artifact.quiesced = true;
  artifact.oscillation_exit = false;
  artifact.snap = make_snapshot(seed);
  artifact.cut_hash = artifact.snap.cut_hash();
  return artifact;
}

[[nodiscard]] StoreContents make_contents() {
  StoreContents contents;
  contents.live_states.push_back(make_artifact("ring6", 2));
  contents.live_states.push_back(make_artifact("internet9", 1));
  contents.unsat_keys = {7, 3, 3, 11};  // unsorted + dup: encode canonicalizes
  return contents;
}

TEST(ArtifactStoreTest, RoundtripPreservesEverything) {
  const StoreContents contents = make_contents();
  auto encoded = ArtifactStore::encode(contents);
  ASSERT_TRUE(encoded.ok());
  auto decoded = ArtifactStore::decode(encoded.value());
  ASSERT_TRUE(decoded.ok());

  const StoreContents& back = decoded.value();
  ASSERT_EQ(back.live_states.size(), 2u);
  // Canonical order: sorted by key, so "internet9" first.
  EXPECT_EQ(back.live_states[0].key.scenario, "internet9");
  EXPECT_EQ(back.live_states[1].key.scenario, "ring6");
  const LiveStateArtifact& artifact = back.live_states[0];
  EXPECT_EQ(artifact.key.seed, 1u);
  EXPECT_EQ(artifact.key.bootstrap_events, 300'000u);
  EXPECT_EQ(artifact.key.flip_exit, 40u);
  EXPECT_EQ(artifact.resume_at, 98'765u);
  EXPECT_EQ(artifact.bootstrap_executed, 4'242u);
  EXPECT_TRUE(artifact.quiesced);
  EXPECT_FALSE(artifact.oscillation_exit);
  EXPECT_EQ(artifact.snap.nodes.size(), 3u);
  EXPECT_EQ(artifact.snap.channels.size(), 1u);
  EXPECT_EQ(artifact.snap.cut_hash(), artifact.cut_hash);
  EXPECT_EQ(back.unsat_keys, (std::vector<std::uint64_t>{3, 7, 11}));
}

TEST(ArtifactStoreTest, EqualContentsEncodeToEqualBytes) {
  StoreContents a = make_contents();
  StoreContents b;  // same contents, different in-memory order
  b.live_states.push_back(make_artifact("internet9", 1));
  b.live_states.push_back(make_artifact("ring6", 2));
  b.unsat_keys = {11, 7, 3};
  auto ea = ArtifactStore::encode(a);
  auto eb = ArtifactStore::encode(b);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(ea.value(), eb.value());
}

TEST(ArtifactStoreTest, RefusesDeltaSnapshots) {
  StoreContents contents = make_contents();
  contents.live_states[0].snap.baseline_id = 99;
  auto encoded = ArtifactStore::encode(contents);
  ASSERT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.error().code, "svc.store.delta_snapshot");

  StoreContents enveloped = make_contents();
  enveloped.live_states[0].snap.nodes.at(0).state.front() =
      snapshot::kCheckpointSameAsBaseline;
  auto encoded2 = ArtifactStore::encode(enveloped);
  ASSERT_FALSE(encoded2.ok());
  EXPECT_EQ(encoded2.error().code, "svc.store.delta_snapshot");
}

TEST(ArtifactStoreTest, EveryTruncatedPrefixFailsTyped) {
  auto encoded = ArtifactStore::encode(make_contents());
  ASSERT_TRUE(encoded.ok());
  const util::Bytes& data = encoded.value();
  for (std::size_t len = 0; len < data.size(); ++len) {
    auto decoded = ArtifactStore::decode(
        std::span<const std::uint8_t>(data.data(), len));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
    ASSERT_FALSE(decoded.error().code.empty()) << "untagged error at " << len;
  }
}

TEST(ArtifactStoreTest, EverySingleByteCorruptionFailsTyped) {
  auto encoded = ArtifactStore::encode(make_contents());
  ASSERT_TRUE(encoded.ok());
  // FNV-1a over the payload: flipping any payload byte changes the chained
  // state at that position, and every subsequent step is bijective, so the
  // final checksum always moves. Envelope bytes are each validated
  // directly. Hence EVERY flip pattern at EVERY offset must fail typed.
  for (const std::uint8_t flip : {std::uint8_t{0xff}, std::uint8_t{0x80},
                                  std::uint8_t{0x01}}) {
    for (std::size_t i = 0; i < encoded.value().size(); ++i) {
      util::Bytes mutant = encoded.value();
      mutant[i] ^= flip;
      auto decoded = ArtifactStore::decode(mutant);
      ASSERT_FALSE(decoded.ok())
          << "byte " << i << " ^ " << static_cast<unsigned>(flip) << " decoded";
      ASSERT_FALSE(decoded.error().code.empty());
    }
  }
}

TEST(ArtifactStoreTest, EnvelopeErrorsAreDistinguished) {
  auto encoded = ArtifactStore::encode(make_contents());
  ASSERT_TRUE(encoded.ok());

  util::Bytes bad_magic = encoded.value();
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(ArtifactStore::decode(bad_magic).error().code, "svc.store.bad_magic");

  util::Bytes bad_version = encoded.value();
  bad_version[4] ^= 0xff;
  EXPECT_EQ(ArtifactStore::decode(bad_version).error().code,
            "svc.store.bad_version");

  util::Bytes bad_payload = encoded.value();
  bad_payload.back() ^= 0x01;
  EXPECT_EQ(ArtifactStore::decode(bad_payload).error().code,
            "svc.store.checksum_mismatch");

  util::Bytes trailing = encoded.value();
  trailing.push_back(0x00);  // widens the checksummed span -> mismatch
  EXPECT_EQ(ArtifactStore::decode(trailing).error().code,
            "svc.store.checksum_mismatch");
}

TEST(ArtifactStoreTest, SaveLoadRoundtripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "svc_store_test.dsvc";
  std::remove(path.c_str());
  ArtifactStore store(path);

  auto missing = store.load();
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, "svc.store.missing");

  ASSERT_TRUE(store.save(make_contents()).ok());
  auto loaded = store.load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().live_states.size(), 2u);
  EXPECT_EQ(loaded.value().unsat_keys.size(), 3u);

  // No stale tmp file left behind by the atomic publish.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(ArtifactStoreTest, CorruptFileOnDiskFailsTyped) {
  const std::string path = ::testing::TempDir() + "svc_store_corrupt.dsvc";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this is not a store file";
  }
  auto loaded = ArtifactStore(path).load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, "svc.store.bad_magic");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dice::svc
