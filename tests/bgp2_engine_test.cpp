// The second engine (bgp2::FsmEngine): wire interoperability with the
// reference BgpRouter, the shared v2 checkpoint stream (including cross-
// engine byte compatibility), OPEN-collision counting, the route-event
// bus, and the RFC 6793 4-octet-AS path at codec, session and System level.
#include <gtest/gtest.h>

#include <memory>

#include "bgp2/engine.hpp"
#include "dice/system.hpp"
#include "util/bytes.hpp"

namespace dice::bgp2 {
namespace {

using core::System;

[[nodiscard]] FsmEngine* fsm_engine(System& system, sim::NodeId node) {
  return dynamic_cast<FsmEngine*>(&system.router(node));
}

TEST(FsmEngineTest, AllFsmSystemConvergesLikeTheReference) {
  const bgp::SystemBlueprint base = bgp::make_internet({2, 3, 4});  // 9 routers

  System reference{bgp::SystemBlueprint(base)};
  reference.start();
  ASSERT_TRUE(reference.converge());

  bgp::SystemBlueprint fsm_bp = base;
  fsm_bp.set_all_implementations("fsm");
  System fsm(std::move(fsm_bp));
  fsm.start();
  ASSERT_TRUE(fsm.converge());

  EXPECT_EQ(fsm.established_sessions(), reference.established_sessions());
  EXPECT_EQ(fsm.total_loc_rib_routes(), reference.total_loc_rib_routes());
  for (std::size_t node = 0; node < base.size(); ++node) {
    EXPECT_EQ(fsm.router(static_cast<sim::NodeId>(node)).rib_digest(),
              reference.router(static_cast<sim::NodeId>(node)).rib_digest())
        << "node " << node;
  }
}

TEST(FsmEngineTest, MixedEngineSystemInteroperatesOverTheSharedWire) {
  // Alternate engines across the 9-router internet: every session has a
  // BgpRouter on one end and an FsmEngine on the other somewhere, and the
  // converged routes must match the homogeneous reference run.
  const bgp::SystemBlueprint base = bgp::make_internet({2, 3, 4});

  System reference{bgp::SystemBlueprint(base)};
  reference.start();
  ASSERT_TRUE(reference.converge());

  bgp::SystemBlueprint mixed_bp = base;
  for (std::size_t node = 0; node < mixed_bp.size(); ++node) {
    if (node % 2 == 1) mixed_bp.set_implementation(node, "fsm");
  }
  System mixed(std::move(mixed_bp));
  mixed.start();
  ASSERT_TRUE(mixed.converge());

  EXPECT_EQ(mixed.established_sessions(), reference.established_sessions());
  for (std::size_t node = 0; node < base.size(); ++node) {
    EXPECT_EQ(mixed.router(static_cast<sim::NodeId>(node)).rib_digest(),
              reference.router(static_cast<sim::NodeId>(node)).rib_digest())
        << "node " << node;
  }
}

TEST(FsmEngineTest, SimultaneousOpensAreDetectedAndCounted) {
  // System::start starts both ends at once: each FSM is in OpenSent after
  // kManualStart when the peer's OPEN arrives, which is precisely the
  // simultaneous-open collision. Both detect it, count it, and proceed to
  // Established anyway.
  bgp::SystemBlueprint blueprint = bgp::make_line(2);
  blueprint.set_all_implementations("fsm");
  System system(std::move(blueprint));
  system.start();
  ASSERT_TRUE(system.converge());
  ASSERT_EQ(system.established_sessions(), 2u);

  for (sim::NodeId node : {sim::NodeId{0}, sim::NodeId{1}}) {
    FsmEngine* engine = fsm_engine(system, node);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->collisions_detected(), 1u) << "node " << node;
  }
}

TEST(FsmEngineTest, PassiveResponderCountsNoCollision) {
  // Start only node 0: node 1 answers passively (OPEN received while Idle),
  // so node 1 never experiences a crossing. Node 0 still counts one — over
  // the merged logical transport the passive responder's answering OPEN is
  // indistinguishable from a crossing OPEN at the active end. The passive
  // side is therefore the discriminating observer between one-sided and
  // simultaneous establishment.
  bgp::SystemBlueprint blueprint = bgp::make_line(2);
  blueprint.set_all_implementations("fsm");
  System system(std::move(blueprint));
  system.router(0).start();
  ASSERT_TRUE(system.converge());
  ASSERT_GE(system.established_sessions(), 2u);

  EXPECT_EQ(fsm_engine(system, 0)->collisions_detected(), 1u);
  EXPECT_EQ(fsm_engine(system, 1)->collisions_detected(), 0u);
}

TEST(FsmEngineTest, RouteEventBusCoalescesDirtyPrefixes) {
  bgp::SystemBlueprint blueprint = bgp::make_internet({2, 3, 4});
  blueprint.set_all_implementations("fsm");
  System system(std::move(blueprint));
  system.start();
  ASSERT_TRUE(system.converge());

  const FsmEngine* engine = fsm_engine(system, 0);
  ASSERT_NE(engine, nullptr);
  const RouteEventBus::Stats stats = engine->bus().stats();
  EXPECT_GT(stats.posted, 0u);
  EXPECT_GT(stats.drains, 0u);
  EXPECT_TRUE(engine->bus().empty()) << "every drain must settle the bus";
}

// ---------------------------------------------------------------------------
// Checkpoints: the shared v2 stream
// ---------------------------------------------------------------------------

TEST(FsmCheckpointTest, SnapshotRoundTripRestoresIdenticalState) {
  bgp::SystemBlueprint blueprint = bgp::make_internet({2, 3, 4});
  blueprint.set_all_implementations("fsm");
  System system(std::move(blueprint));
  system.start();
  ASSERT_TRUE(system.converge());

  std::vector<bgp::RibDigest> digests;
  for (std::size_t node = 0; node < system.size(); ++node) {
    digests.push_back(system.router(static_cast<sim::NodeId>(node)).rib_digest());
  }

  const snapshot::SnapshotId id = system.take_snapshot(/*initiator=*/0);
  ASSERT_NE(id, 0u);
  auto prepared = system.prepare_snapshot(id);
  ASSERT_NE(prepared, nullptr);
  ASSERT_TRUE(system.reset_from(*prepared).ok());

  for (std::size_t node = 0; node < system.size(); ++node) {
    EXPECT_EQ(system.router(static_cast<sim::NodeId>(node)).rib_digest(), digests[node])
        << "node " << node;
  }
}

TEST(FsmCheckpointTest, EnginesExchangeCheckpointBytesBothWays) {
  // Both engines emit the same tagged v2 stream, so bytes written by one
  // must parse and apply through the other, given the same configuration.
  const bgp::SystemBlueprint base = bgp::make_ring(4);

  System reference{bgp::SystemBlueprint(base)};
  reference.start();
  ASSERT_TRUE(reference.converge());

  bgp::SystemBlueprint fsm_bp = base;
  fsm_bp.set_all_implementations("fsm");
  System fsm(std::move(fsm_bp));
  fsm.start();
  ASSERT_TRUE(fsm.converge());

  for (std::size_t node = 0; node < base.size(); ++node) {
    const auto id = static_cast<sim::NodeId>(node);
    // reference -> fsm
    {
      util::ByteWriter writer;
      reference.router(id).checkpoint(writer);
      util::ByteReader reader(writer.span());
      auto decoded = fsm.router(id).parse(reader);
      ASSERT_TRUE(decoded.ok()) << "node " << node << ": "
                                << decoded.error().to_string();
      ASSERT_TRUE(fsm.router(id).apply(*decoded.value()).ok()) << "node " << node;
      EXPECT_EQ(fsm.router(id).rib_digest(), reference.router(id).rib_digest())
          << "node " << node;
    }
    // fsm (now carrying the reference state) -> reference
    {
      util::ByteWriter writer;
      fsm.router(id).checkpoint(writer);
      util::ByteReader reader(writer.span());
      auto decoded = reference.router(id).parse(reader);
      ASSERT_TRUE(decoded.ok()) << "node " << node << ": "
                                << decoded.error().to_string();
      ASSERT_TRUE(reference.router(id).apply(*decoded.value()).ok()) << "node " << node;
    }
  }
}

TEST(FsmCheckpointTest, LegacyAndDeltaEnvelopesAreRejected) {
  bgp::SystemBlueprint blueprint = bgp::make_line(2);
  blueprint.set_all_implementations("fsm");
  System system(std::move(blueprint));

  {
    util::ByteWriter writer;
    writer.u8(snapshot::kCheckpointSameAsBaseline);
    util::ByteReader reader(writer.span());
    auto decoded = system.router(0).parse(reader);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, "router.restore.delta_unresolved");
  }
  {
    util::ByteWriter writer;
    writer.u8(0x01);  // the legacy pre-v2 format byte
    util::ByteReader reader(writer.span());
    auto decoded = system.router(0).parse(reader);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, "router.restore.unknown_format");
  }
}

// ---------------------------------------------------------------------------
// RFC 6793: 4-octet AS numbers
// ---------------------------------------------------------------------------

TEST(As4CodecTest, CapabilityRoundTrips) {
  std::vector<std::uint8_t> params;
  bgp::append_as4_capability(params, 70'000);
  EXPECT_EQ(bgp::find_as4_capability(params), std::optional<bgp::Asn>(70'000));

  // Unknown parameters/capabilities are skipped, not fatal.
  std::vector<std::uint8_t> padded{/*type=*/1, /*len=*/2, 0xaa, 0xbb};
  bgp::append_as4_capability(padded, 4'200'000'000u);
  EXPECT_EQ(bgp::find_as4_capability(padded),
            std::optional<bgp::Asn>(4'200'000'000u));

  EXPECT_EQ(bgp::find_as4_capability({}), std::nullopt);
  const std::vector<std::uint8_t> truncated{2, 6, 65, 4, 0x00};
  EXPECT_EQ(bgp::find_as4_capability(truncated), std::nullopt);
}

/// A 2-node blueprint whose node 0 holds a 4-byte ASN.
[[nodiscard]] bgp::SystemBlueprint four_byte_line(bgp::Asn big_asn) {
  bgp::SystemBlueprint blueprint = bgp::make_line(2);
  blueprint.configs[0].asn = big_asn;
  for (bgp::NeighborConfig& neighbor : blueprint.configs[1].neighbors) {
    neighbor.asn = big_asn;
  }
  return blueprint;
}

TEST(As4SessionTest, FourByteSpeakersEstablishViaTheCapability) {
  for (const char* impl : {"bgp", "fsm"}) {
    bgp::SystemBlueprint blueprint = four_byte_line(70'000);
    blueprint.set_all_implementations(impl);
    System system(std::move(blueprint));
    system.start();
    ASSERT_TRUE(system.converge()) << impl;
    EXPECT_EQ(system.established_sessions(), 2u) << impl;
    // Routes flow in both directions despite the AS_TRANS placeholder on
    // the wire (AS_PATH stays 2-octet; the local loop check understands
    // the truncated form).
    EXPECT_EQ(system.router(0).loc_rib().size(), 2u) << impl;
    EXPECT_EQ(system.router(1).loc_rib().size(), 2u) << impl;
  }
}

TEST(As4SessionTest, TwoByteOnlyPeerNegotiatesDownThroughAsTrans) {
  for (const char* impl : {"bgp", "fsm"}) {
    bgp::SystemBlueprint blueprint = four_byte_line(70'000);
    // Node 1 models a legacy speaker: it ignores capabilities entirely and
    // must accept the 4-byte neighbor through its AS_TRANS placeholder.
    blueprint.configs[1].as4_capable = false;
    blueprint.set_all_implementations(impl);
    System system(std::move(blueprint));
    system.start();
    ASSERT_TRUE(system.converge()) << impl;
    EXPECT_EQ(system.established_sessions(), 2u) << impl;
    EXPECT_EQ(system.router(1).loc_rib().size(), 2u) << impl;
  }
}

TEST(As4SessionTest, MismatchedAsnStillRefusesTheSession) {
  // AS4 handling must not have widened acceptance: a genuinely wrong ASN
  // (announced 65001, expected 70000) is still an OPEN error.
  bgp::SystemBlueprint blueprint = bgp::make_line(2);
  for (bgp::NeighborConfig& neighbor : blueprint.configs[1].neighbors) {
    neighbor.asn = 70'000;  // node 1 expects a 4-byte peer; node 0 is not one
  }
  System system(std::move(blueprint));
  system.router(0).set_auto_restart(false);  // no endless re-OPEN loop
  system.router(1).set_auto_restart(false);
  system.start();
  ASSERT_TRUE(system.converge());
  EXPECT_EQ(system.established_sessions(), 0u);
}

TEST(As4SystemTest, InternetTopologyWithFourByteAsnBaseConverges) {
  bgp::InternetTopologyParams params{2, 3, 4};
  params.asn_base = 4'200'000'000u;  // every router above the 2-octet range
  bgp::SystemBlueprint blueprint = bgp::make_internet(params);
  for (std::size_t node = 0; node < blueprint.size(); ++node) {
    if (node % 2 == 0) blueprint.set_implementation(node, "fsm");
  }
  System system(std::move(blueprint));
  system.start();
  ASSERT_TRUE(system.converge());
  EXPECT_GT(system.established_sessions(), 0u);
  EXPECT_GT(system.total_loc_rib_routes(), 0u);
  for (std::size_t node = 0; node < system.size(); ++node) {
    EXPECT_GT(system.router(static_cast<sim::NodeId>(node)).loc_rib().size(), 0u)
        << "node " << node;
  }
}

}  // namespace
}  // namespace dice::bgp2
