#include <gtest/gtest.h>

#include "dice/system.hpp"

namespace dice::bgp {
namespace {

using core::System;
using util::IpAddress;
using util::IpPrefix;

TEST(RouterTest, TwoRoutersConverge) {
  System system(make_line(2));
  system.start();
  ASSERT_TRUE(system.converge());

  // Both sessions established, both directions.
  EXPECT_EQ(system.established_sessions(), 2u);
  // Each router knows its own prefix plus the peer's.
  for (sim::NodeId id : {0u, 1u}) {
    const BgpRouter& router = system.bgp_router(id);
    EXPECT_EQ(router.loc_rib().size(), 2u) << "router " << id;
  }
  // r0's route to r1's prefix goes via r1 with AS path [as(r1)].
  const Route* learned = system.router(0).loc_rib().find(node_prefix(1));
  ASSERT_NE(learned, nullptr);
  EXPECT_EQ(learned->attrs.next_hop, node_address(1));
  EXPECT_EQ(learned->attrs.as_path.to_string(), std::to_string(node_asn(1)));
}

TEST(RouterTest, LineTopologyPropagatesTransitively) {
  System system(make_line(4));
  system.start();
  ASSERT_TRUE(system.converge());
  // r0 reaches r3's prefix through 3 hops.
  const Route* route = system.router(0).loc_rib().find(node_prefix(3));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->attrs.as_path.selection_length(), 3u);
  EXPECT_EQ(route->attrs.as_path.origin_asn(), node_asn(3));
  // Every router has all 4 prefixes.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(system.router(static_cast<sim::NodeId>(i)).loc_rib().size(), 4u);
  }
}

TEST(RouterTest, MeshPrefersShortestPath) {
  System system(make_full_mesh(4));
  system.start();
  ASSERT_TRUE(system.converge());
  // Direct one-hop routes beat two-hop alternatives everywhere.
  for (sim::NodeId a = 0; a < 4; ++a) {
    for (sim::NodeId b = 0; b < 4; ++b) {
      if (a == b) continue;
      const Route* route = system.router(a).loc_rib().find(node_prefix(b));
      ASSERT_NE(route, nullptr);
      EXPECT_EQ(route->attrs.as_path.selection_length(), 1u)
          << "router " << a << " -> prefix of " << b;
    }
  }
}

TEST(RouterTest, WithdrawOnSessionLossAndReconvergence) {
  System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());
  ASSERT_EQ(system.router(0).loc_rib().size(), 3u);

  // Kill the r1-r2 session administratively from r1; r1/r0 lose r2's prefix.
  system.router(1).set_auto_restart(false);
  system.router(2).set_auto_restart(false);
  system.router(1).reset_session(2);
  ASSERT_TRUE(system.converge());
  EXPECT_EQ(system.router(1).loc_rib().find(node_prefix(2)), nullptr);
  EXPECT_EQ(system.router(0).loc_rib().find(node_prefix(2)), nullptr);
  EXPECT_EQ(system.router(0).loc_rib().size(), 2u);

  // Re-enable restarts; session comes back and routes reappear.
  system.router(1).set_auto_restart(true);
  system.router(2).set_auto_restart(true);
  system.bgp_router(1).session(2)->start();
  ASSERT_TRUE(system.converge());
  EXPECT_NE(system.router(0).loc_rib().find(node_prefix(2)), nullptr);
  EXPECT_EQ(system.router(0).loc_rib().size(), 3u);
}

TEST(RouterTest, AsPathLoopRejected) {
  // Ring of 3: routes must never loop (AS path check drops them); every
  // router still reaches everything via the shorter arc.
  System system(make_ring(3));
  system.start();
  ASSERT_TRUE(system.converge());
  for (sim::NodeId id = 0; id < 3; ++id) {
    const BgpRouter& router = system.bgp_router(id);
    EXPECT_EQ(router.loc_rib().size(), 3u);
    for (const auto& [prefix, route] : router.loc_rib().table()) {
      EXPECT_FALSE(route.attrs.as_path.contains(router.config().asn))
          << router.config().name << " " << route.to_string();
    }
  }
}

TEST(RouterTest, ImportPolicyRejectionCreatesNoRoute) {
  SystemBlueprint bp = make_line(2);
  // r0 rejects everything from r1.
  bp.configs[0].neighbors[0].import_policy = Policy::reject_all();
  System system(std::move(bp));
  system.start();
  ASSERT_TRUE(system.converge());
  EXPECT_EQ(system.router(0).loc_rib().size(), 1u);  // own prefix only
  EXPECT_GT(system.router(0).stats().import_rejects, 0u);
  // r1 still learns r0's prefix (policies are directional).
  EXPECT_EQ(system.router(1).loc_rib().size(), 2u);
}

TEST(RouterTest, ExportPolicyFiltersAdvertisement) {
  SystemBlueprint bp = make_line(3);
  // r1 refuses to export r0's prefix toward r2.
  PolicyRule rule;
  rule.matches.push_back(
      Match{Match::Kind::kPrefixExact, node_prefix(0), 0, 0, {}});
  rule.verdict = Verdict::kReject;
  Policy export_policy;
  export_policy.rules.push_back(rule);
  export_policy.default_accept = true;
  // r1's second neighbor entry is r2 (added by the r1-r2 link).
  bp.configs[1].neighbors[1].export_policy = export_policy;

  System system(std::move(bp));
  system.start();
  ASSERT_TRUE(system.converge());
  EXPECT_EQ(system.router(2).loc_rib().find(node_prefix(0)), nullptr);
  EXPECT_NE(system.router(2).loc_rib().find(node_prefix(1)), nullptr);
}

TEST(RouterTest, NoExportCommunityHonored) {
  SystemBlueprint bp = make_line(3);
  // r0 tags its own announcements toward r1 with NO_EXPORT.
  PolicyRule tag;
  tag.actions.push_back(Action{Action::Kind::kAddCommunity, well_known::kNoExport});
  tag.verdict = Verdict::kAccept;
  bp.configs[1].neighbors[0].import_policy.rules.insert(
      bp.configs[1].neighbors[0].import_policy.rules.begin(), tag);

  System system(std::move(bp));
  system.start();
  ASSERT_TRUE(system.converge());
  // r1 has the route but must not pass it to eBGP peer r2.
  EXPECT_NE(system.router(1).loc_rib().find(node_prefix(0)), nullptr);
  EXPECT_EQ(system.router(2).loc_rib().find(node_prefix(0)), nullptr);
}

TEST(RouterTest, HandlerCrashResetsSessionsAndCounts) {
  SystemBlueprint bp = make_line(2);
  inject_bug(bp, 0, bugs::kMedOverflow);
  System system(std::move(bp));
  system.start();
  ASSERT_TRUE(system.converge());

  // Craft an UPDATE with MED=0xffffffff and deliver it to r0 from r1.
  UpdateMessage update;
  update.attrs.origin = Origin::kIgp;
  update.attrs.as_path = AsPath{{node_asn(1)}};
  update.attrs.next_hop = node_address(1);
  update.attrs.med = 0xffffffffU;
  update.nlri.push_back(IpPrefix{IpAddress{10, 200, 0, 0}, 16});
  auto encoded = encode(Message{update});
  ASSERT_TRUE(encoded.ok());

  system.router(0).set_auto_restart(false);
  system.router(1).set_auto_restart(false);
  system.inject_message(1, 0, encoded.value());
  system.converge();
  EXPECT_EQ(system.router(0).stats().handler_crashes, 1u);
  // The daemon crash reset r0's sessions.
  EXPECT_EQ(system.bgp_router(0).session(1)->state(), SessionState::kIdle);
}

TEST(RouterTest, MalformedUpdateTriggersNotificationAndReset) {
  System system(make_line(2));
  system.start();
  ASSERT_TRUE(system.converge());
  system.router(0).set_auto_restart(false);
  system.router(1).set_auto_restart(false);

  // Tampered marker: header error -> NOTIFICATION -> session reset.
  auto encoded = encode(Message{KeepaliveMessage{}});
  util::Bytes bad = encoded.value();
  bad[0] = 0x00;
  system.inject_message(1, 0, std::move(bad));
  system.converge();
  EXPECT_GT(system.router(0).stats().decode_failures, 0u);
  EXPECT_EQ(system.bgp_router(0).session(1)->state(), SessionState::kIdle);
  // r1 received the NOTIFICATION and also dropped to Idle.
  EXPECT_EQ(system.bgp_router(1).session(0)->state(), SessionState::kIdle);
}

TEST(RouterTest, HoldTimerExpiryResetsSession) {
  SystemBlueprint bp = make_line(2);
  bp.configs[0].hold_time = 9;  // r0 expects traffic every 9s
  bp.configs[1].hold_time = 9;
  System system(std::move(bp));
  system.start();
  ASSERT_TRUE(system.converge());
  ASSERT_TRUE(system.bgp_router(0).session(1)->established());

  // Cut the wire silently: no NOTIFICATION, keepalives stop flowing.
  system.router(0).set_auto_restart(false);
  system.router(1).set_auto_restart(false);
  system.network().set_link_up(0, 1, false);
  // Advance past the hold time; background timers fire.
  system.simulator().run_until(system.simulator().now() + 30 * sim::kSecond);
  EXPECT_EQ(system.bgp_router(0).session(1)->state(), SessionState::kIdle);
  EXPECT_EQ(system.bgp_router(1).session(0)->state(), SessionState::kIdle);
}

TEST(RouterTest, CheckpointRestoreRoundTripsState) {
  System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());
  BgpRouter& original = system.bgp_router(1);

  util::ByteWriter writer;
  original.checkpoint(writer);
  const std::uint64_t original_hash = original.state_hash();

  // Build a fresh system (same blueprint) and restore into its router 1.
  System other(system.blueprint());
  util::ByteReader reader(writer.bytes());
  ASSERT_TRUE(other.router(1).restore(reader).ok());
  EXPECT_EQ(other.router(1).state_hash(), original_hash);
  EXPECT_EQ(other.router(1).loc_rib().table().size(),
            original.loc_rib().table().size());
  EXPECT_TRUE(other.bgp_router(1).session(0)->established());
}

TEST(RouterTest, StatsTrackActivity) {
  System system(make_line(3));
  system.start();
  ASSERT_TRUE(system.converge());
  const auto& stats = system.router(1).stats();
  EXPECT_GT(stats.updates_received, 0u);
  EXPECT_GT(stats.updates_sent, 0u);
  EXPECT_GT(stats.decision_runs, 0u);
  EXPECT_GT(stats.best_changes, 0u);
  EXPECT_EQ(stats.handler_crashes, 0u);
}

}  // namespace
}  // namespace dice::bgp
