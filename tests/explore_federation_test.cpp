// The implementation axis at campaign level, and determinism across
// heterogeneous federations: mixed-engine campaigns must produce byte-
// identical fault sets at every worker count, nested scheduling on or off,
// with full or delta snapshots; the axis itself fans cells out with the
// implementation loop innermost; axis entry "bgp" reproduces the bytes of
// the as-authored axis on unpinned blueprints; and unknown ids are
// rejected at build time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bgp/bugs.hpp"
#include "explore/campaign.hpp"

namespace dice::explore {
namespace {

using core::FaultReport;

/// Mixed-engine scenarios: an internet hijack with alternating engines, a
/// ring with one fsm node carrying the seeded decision defect (so the soak
/// exercises the implementation-divergence fault class end to end), and an
/// all-fsm line.
[[nodiscard]] std::vector<ScenarioSpec> federated_scenarios() {
  std::vector<ScenarioSpec> scenarios;

  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  for (std::size_t node = 0; node < hijack.size(); ++node) {
    if (node % 2 == 1) hijack.set_implementation(node, "fsm");
  }
  scenarios.push_back({"internet9-hijack-mixed", std::move(hijack)});

  bgp::SystemBlueprint divergent = bgp::make_ring(4);
  divergent.set_implementation(3, "fsm");
  bgp::inject_bug(divergent, /*node=*/3, bgp::bugs::kLongPathPreferred);
  scenarios.push_back({"ring4-divergent", std::move(divergent)});

  bgp::SystemBlueprint line = bgp::make_line(3);
  line.set_all_implementations("fsm");
  scenarios.push_back({"line3-fsm", std::move(line)});
  return scenarios;
}

[[nodiscard]] CampaignOptions federated_options(std::size_t workers, bool nested,
                                                bool delta) {
  CampaignOptions options;
  options.strategies = {StrategyKind::kGrammar, StrategyKind::kRandom};
  options.determinism.seeds = {1, 2};
  options.budgets.inputs_per_episode = 4;
  options.budgets.clone_event_budget = 60'000;
  options.budgets.bootstrap_events = 300'000;
  options.parallelism.workers = workers;
  options.parallelism.nested = nested;
  options.caching.delta_snapshots = delta;
  return options;
}

[[nodiscard]] std::string fault_lines(const std::vector<FaultReport>& faults) {
  std::string lines;
  for (const FaultReport& fault : faults) {
    lines += fault.to_string();
    lines += "\n";
  }
  return lines;
}

TEST(FederationDeterminismTest, MixedCampaignBytesIdenticalAcrossWorkersNestingAndSnapshotMode) {
  Campaign reference_campaign(federated_scenarios(),
                              federated_options(1, /*nested=*/false, /*delta=*/false));
  const CampaignResult reference = reference_campaign.run();
  ASSERT_EQ(reference.cells_completed, reference.cells.size());
  const std::string expected = fault_lines(reference.faults);
  ASSERT_FALSE(expected.empty());
  // The divergent ring must contribute the new fault class to the soak.
  EXPECT_NE(expected.find("implementation-divergence"), std::string::npos);

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    for (const bool nested : {false, true}) {
      for (const bool delta : {false, true}) {
        Campaign campaign(federated_scenarios(),
                          federated_options(workers, nested, delta));
        const CampaignResult result = campaign.run();
        EXPECT_EQ(result.cells_completed, result.cells.size())
            << "workers=" << workers << " nested=" << nested << " delta=" << delta;
        EXPECT_EQ(fault_lines(result.faults), expected)
            << "workers=" << workers << " nested=" << nested << " delta=" << delta;
      }
    }
  }
}

TEST(ImplementationAxisTest, AxisFansCellsWithImplementationInnermost) {
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back({"line3", bgp::make_line(3)});
  scenarios.push_back({"ring4", bgp::make_ring(4)});

  CampaignOptions options = federated_options(2, /*nested=*/true, /*delta=*/true);
  options.strategies = {StrategyKind::kGrammar};
  options.determinism.seeds = {1};
  options.determinism.implementations = {"", "fsm"};

  Campaign campaign(std::move(scenarios), options);
  EXPECT_EQ(campaign.cell_count(), 4u);  // 2 scenarios x 1 strategy x 1 seed x 2 impls
  const CampaignResult result = campaign.run();
  ASSERT_EQ(result.cells.size(), 4u);
  ASSERT_EQ(result.cells_completed, 4u);
  // Canonical order keeps the axis innermost.
  EXPECT_EQ(result.cells[0].scenario, "line3");
  EXPECT_EQ(result.cells[0].implementation, "");
  EXPECT_EQ(result.cells[1].scenario, "line3");
  EXPECT_EQ(result.cells[1].implementation, "fsm");
  EXPECT_EQ(result.cells[2].scenario, "ring4");
  EXPECT_EQ(result.cells[2].implementation, "");
  EXPECT_EQ(result.cells[3].scenario, "ring4");
  EXPECT_EQ(result.cells[3].implementation, "fsm");
}

TEST(ImplementationAxisTest, BgpAxisEntryReproducesAsAuthoredBytesOnUnpinnedScenarios) {
  // On blueprints with no per-node pins, "" (as authored) and "bgp" build
  // the same systems; run each as its own single-entry axis (same cell
  // indices, same derived streams) and the fault bytes must agree.
  const auto run_with = [](const std::string& impl) {
    std::vector<ScenarioSpec> scenarios;
    bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
    bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
    scenarios.push_back({"internet9-hijack", std::move(hijack)});
    CampaignOptions options = federated_options(2, /*nested=*/true, /*delta=*/true);
    options.determinism.implementations = {impl};
    Campaign campaign(std::move(scenarios), options);
    return fault_lines(campaign.run().faults);
  };
  const std::string as_authored = run_with("");
  ASSERT_FALSE(as_authored.empty());
  EXPECT_EQ(run_with("bgp"), as_authored);
}

TEST(ImplementationAxisTest, DefaultAxisLeavesHistoricCellIdentityUntouched) {
  // MatrixOptions default-constructs with the single-"" axis; an explicit
  // single-"" axis is the same campaign: same cell count, same bytes.
  const auto run_campaign = [](bool explicit_axis) {
    std::vector<ScenarioSpec> scenarios;
    bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
    bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
    scenarios.push_back({"internet9-hijack", std::move(hijack)});
    CampaignOptions options = federated_options(1, /*nested=*/false, /*delta=*/true);
    options.strategies = {StrategyKind::kGrammar};
    if (explicit_axis) options.determinism.implementations = {std::string()};
    Campaign campaign(std::move(scenarios), options);
    const CampaignResult result = campaign.run();
    EXPECT_EQ(result.cells.size(), 2u);  // 1 scenario x 1 strategy x 2 seeds
    return fault_lines(result.faults);
  };
  EXPECT_EQ(run_campaign(true), run_campaign(false));
}

TEST(CampaignValidationTest, UnknownImplementationIdIsRejectedAtBuildTime) {
  auto built = CampaignOptions::builder().implementations({"", "quagga"}).build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().code, "campaign.options.unknown_implementation");

  auto empty_axis = CampaignOptions::builder().implementations({}).build();
  ASSERT_FALSE(empty_axis.ok());
  EXPECT_EQ(empty_axis.error().code, "campaign.options.no_implementations");

  auto valid = CampaignOptions::builder().implementations({"", "bgp", "fsm"}).build();
  EXPECT_TRUE(valid.ok());
}

}  // namespace
}  // namespace dice::explore
