#include <gtest/gtest.h>

#include "bgp/policy.hpp"

namespace dice::bgp {
namespace {

using util::IpAddress;
using util::IpPrefix;

[[nodiscard]] Route make_route(const IpPrefix& prefix, std::vector<Asn> path = {65002}) {
  Route r;
  r.prefix = prefix;
  r.attrs.as_path = AsPath{std::move(path)};
  r.attrs.next_hop = IpAddress{10, 0, 0, 2};
  r.source.peer_asn = 65002;
  return r;
}

const IpPrefix kPrefix{IpAddress{10, 1, 0, 0}, 16};

TEST(MatchTest, Any) {
  EXPECT_TRUE(Match{}.matches(make_route(kPrefix)));
}

TEST(MatchTest, PrefixExact) {
  Match m;
  m.kind = Match::Kind::kPrefixExact;
  m.prefix = kPrefix;
  EXPECT_TRUE(m.matches(make_route(kPrefix)));
  EXPECT_FALSE(m.matches(make_route(IpPrefix{IpAddress{10, 1, 0, 0}, 24})));
  EXPECT_FALSE(m.matches(make_route(IpPrefix{IpAddress{10, 2, 0, 0}, 16})));
}

TEST(MatchTest, PrefixOrLonger) {
  Match m;
  m.kind = Match::Kind::kPrefixOrLonger;
  m.prefix = kPrefix;
  EXPECT_TRUE(m.matches(make_route(kPrefix)));
  EXPECT_TRUE(m.matches(make_route(IpPrefix{IpAddress{10, 1, 128, 0}, 24})));
  EXPECT_FALSE(m.matches(make_route(IpPrefix{IpAddress{10, 0, 0, 0}, 8})));
}

TEST(MatchTest, AsPathContains) {
  Match m;
  m.kind = Match::Kind::kAsPathContains;
  m.asn = 65005;
  EXPECT_FALSE(m.matches(make_route(kPrefix, {65001, 65002})));
  EXPECT_TRUE(m.matches(make_route(kPrefix, {65001, 65005, 65002})));
}

TEST(MatchTest, OriginatedBy) {
  Match m;
  m.kind = Match::Kind::kOriginatedBy;
  m.asn = 65002;
  EXPECT_TRUE(m.matches(make_route(kPrefix, {65001, 65002})));   // rightmost
  EXPECT_FALSE(m.matches(make_route(kPrefix, {65002, 65001})));
}

TEST(MatchTest, Community) {
  Match m;
  m.kind = Match::Kind::kCommunity;
  m.community = make_community(65000, 7);
  Route r = make_route(kPrefix);
  EXPECT_FALSE(m.matches(r));
  r.attrs.add_community(make_community(65000, 7));
  EXPECT_TRUE(m.matches(r));
}

TEST(MatchTest, NextHop) {
  Match m;
  m.kind = Match::Kind::kNextHop;
  m.address = IpAddress{10, 0, 0, 2};
  EXPECT_TRUE(m.matches(make_route(kPrefix)));
  m.address = IpAddress{10, 0, 0, 9};
  EXPECT_FALSE(m.matches(make_route(kPrefix)));
}

TEST(PolicyTest, FirstMatchWins) {
  Policy policy;
  PolicyRule reject_specific;
  reject_specific.matches.push_back(Match{Match::Kind::kPrefixExact, kPrefix, 0, 0, {}});
  reject_specific.verdict = Verdict::kReject;
  policy.rules.push_back(reject_specific);
  PolicyRule accept_all;
  accept_all.verdict = Verdict::kAccept;
  policy.rules.push_back(accept_all);

  EXPECT_FALSE(evaluate(policy, make_route(kPrefix), 65001).accepted);
  const auto other = evaluate(policy, make_route(IpPrefix{IpAddress{10, 9, 0, 0}, 16}), 65001);
  EXPECT_TRUE(other.accepted);
  EXPECT_EQ(other.matched_rule, 1u);
}

TEST(PolicyTest, ConjunctionRequiresAllMatches) {
  PolicyRule rule;
  rule.matches.push_back(Match{Match::Kind::kPrefixOrLonger, kPrefix, 0, 0, {}});
  rule.matches.push_back(Match{Match::Kind::kAsPathContains, {}, 65009, 0, {}});
  rule.verdict = Verdict::kAccept;
  Policy policy;
  policy.rules.push_back(rule);

  EXPECT_FALSE(evaluate(policy, make_route(kPrefix, {65002}), 65001).accepted);
  EXPECT_TRUE(evaluate(policy, make_route(kPrefix, {65009}), 65001).accepted);
}

TEST(PolicyTest, ActionsApplyOnAccept) {
  PolicyRule rule;
  rule.actions.push_back(Action{Action::Kind::kSetLocalPref, 250});
  rule.actions.push_back(Action{Action::Kind::kSetMed, 30});
  rule.actions.push_back(Action{Action::Kind::kAddCommunity, make_community(1, 2)});
  rule.actions.push_back(Action{Action::Kind::kPrepend, 2});
  rule.verdict = Verdict::kAccept;
  Policy policy;
  policy.rules.push_back(rule);

  const auto outcome = evaluate(policy, make_route(kPrefix, {65002}), 65001);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.route.attrs.local_pref, 250u);
  EXPECT_EQ(outcome.route.attrs.med, 30u);
  EXPECT_TRUE(outcome.route.attrs.has_community(make_community(1, 2)));
  // Prepend inserts the evaluator's ASN twice at the front.
  EXPECT_EQ(outcome.route.attrs.as_path.to_string(), "65001 65001 65002");
}

TEST(PolicyTest, ClearMedAndRemoveCommunity) {
  Route r = make_route(kPrefix);
  r.attrs.med = 77;
  r.attrs.add_community(make_community(9, 9));
  PolicyRule rule;
  rule.actions.push_back(Action{Action::Kind::kClearMed, 0});
  rule.actions.push_back(Action{Action::Kind::kRemoveCommunity, make_community(9, 9)});
  rule.verdict = Verdict::kAccept;
  Policy policy;
  policy.rules.push_back(rule);

  const auto outcome = evaluate(policy, std::move(r), 65001);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_FALSE(outcome.route.attrs.med.has_value());
  EXPECT_FALSE(outcome.route.attrs.has_community(make_community(9, 9)));
}

TEST(PolicyTest, NextVerdictFallsThroughWithActions) {
  // Rule 1 tags but continues; rule 2 accepts. Both effects visible.
  PolicyRule tag;
  tag.actions.push_back(Action{Action::Kind::kAddCommunity, make_community(7, 7)});
  tag.verdict = Verdict::kNext;
  PolicyRule accept;
  accept.verdict = Verdict::kAccept;
  Policy policy;
  policy.rules.push_back(tag);
  policy.rules.push_back(accept);

  const auto outcome = evaluate(policy, make_route(kPrefix), 65001);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_TRUE(outcome.route.attrs.has_community(make_community(7, 7)));
  EXPECT_EQ(outcome.matched_rule, 1u);
}

TEST(PolicyTest, DefaultVerdicts) {
  EXPECT_FALSE(evaluate(Policy::reject_all(), make_route(kPrefix), 65001).accepted);
  EXPECT_TRUE(evaluate(Policy::accept_all(), make_route(kPrefix), 65001).accepted);
}

TEST(PolicyTest, ToStringIsReadable) {
  PolicyRule rule;
  rule.matches.push_back(Match{Match::Kind::kPrefixOrLonger, kPrefix, 0, 0, {}});
  rule.actions.push_back(Action{Action::Kind::kSetLocalPref, 200});
  rule.verdict = Verdict::kAccept;
  const std::string text = rule.to_string();
  EXPECT_NE(text.find("prefix in 10.1.0.0/16+"), std::string::npos);
  EXPECT_NE(text.find("localpref 200"), std::string::npos);
  EXPECT_NE(text.find("accept"), std::string::npos);
}

}  // namespace
}  // namespace dice::bgp
