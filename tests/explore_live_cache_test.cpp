// LiveStateCache + bootstrap-once equivalence: cells that resume a cached
// live state must be indistinguishable — byte-identical fault sets — from
// cells that replay bootstrap from scratch, at every worker count and on
// both clone paths (prepared/arena and legacy clone_from). Plus the cache's
// concurrency contracts: once-latch (one bootstrap per key, ever),
// trim-while-held lifetimes, and uncacheable-key fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "dice/orchestrator.hpp"
#include "explore/live_cache.hpp"
#include "explore/matrix.hpp"

namespace dice::explore {
namespace {

using core::DiceOptions;
using core::FaultReport;
using core::Orchestrator;
using core::System;
using core::SystemPrototype;

// ---------------------------------------------------------------------------
// System-level capture/resume receipt
// ---------------------------------------------------------------------------

TEST(LiveStateCaptureTest, ResumedSystemMatchesDonorStateAndCutHash) {
  auto prototype =
      std::make_shared<const SystemPrototype>(bgp::make_internet({2, 3, 4}));
  System donor(prototype);
  donor.start();
  ASSERT_TRUE(donor.converge());
  const auto state = donor.capture_live_state(/*initiator=*/0);
  ASSERT_NE(state, nullptr);
  ASSERT_NE(state->snapshot, nullptr);
  EXPECT_GT(state->resume_at, 0u);
  EXPECT_GT(state->bootstrap_executed, 0u);
  // The capture is standalone: its raw cut must not linger in the donor's
  // store and perturb the per-episode snapshot lifecycle.
  EXPECT_EQ(donor.snapshots().size(), 0u);

  System resumed(prototype);  // never started — resume replaces bootstrap
  ASSERT_TRUE(resumed.resume_from(*state).ok());
  EXPECT_EQ(resumed.simulator().now(), state->resume_at);
  EXPECT_EQ(resumed.total_loc_rib_routes(), donor.total_loc_rib_routes());
  EXPECT_EQ(resumed.established_sessions(), donor.established_sessions());
  for (std::size_t i = 0; i < donor.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(resumed.router(node).state_hash(), donor.router(node).state_hash())
        << "node " << i;
  }
  // Going forward the two systems snapshot identically (what episode
  // equivalence ultimately rests on).
  const snapshot::SnapshotId donor_snap = donor.take_snapshot(1);
  const snapshot::SnapshotId resumed_snap = resumed.take_snapshot(1);
  ASSERT_NE(donor_snap, 0u);
  ASSERT_NE(resumed_snap, 0u);
  EXPECT_EQ(resumed.snapshots().find(resumed_snap)->cut_hash(),
            donor.snapshots().find(donor_snap)->cut_hash());
}

// ---------------------------------------------------------------------------
// Bootstrap oscillation early-exit (the live-system side of the clone exit)
// ---------------------------------------------------------------------------

TEST(BootstrapEarlyExitTest, DisputeWheelBootstrapStopsAtFlipThreshold) {
  constexpr std::size_t kBudget = 200'000;
  const auto boot = [&](bool early_exit) {
    DiceOptions options;
    options.bootstrap_early_exit = early_exit;
    Orchestrator dice(bgp::make_bad_gadget(), options);
    EXPECT_FALSE(dice.bootstrap(kBudget)) << "a dispute wheel must not quiesce";
    return std::pair{dice.live().simulator().executed(), dice.last_bootstrap()};
  };

  const auto [fast_events, fast_outcome] = boot(/*early_exit=*/true);
  EXPECT_TRUE(fast_outcome.oscillation_exit);
  EXPECT_LT(fast_events, kBudget / 4)
      << "oscillation evidence is conclusive long before the budget";

  const auto [slow_events, slow_outcome] = boot(/*early_exit=*/false);
  EXPECT_FALSE(slow_outcome.oscillation_exit);
  EXPECT_GE(slow_events, static_cast<std::uint64_t>(kBudget))
      << "without the exit, bootstrap burns the full event budget";
  EXPECT_GT(slow_events, fast_events * 4);
}

// ---------------------------------------------------------------------------
// Quiescence verdict hardening (System::converge_bounded)
// ---------------------------------------------------------------------------

TEST(ConvergeBoundedTest, EmptyQueueWithPendingForegroundIsNotQuiescence) {
  // Regression: converge_bounded used to `break` when step() drained the
  // queue and fall through to quiesced=true even with foreground work
  // still accounted — a bookkeeping mismatch misreported as convergence
  // (and, downstream, a missing non-quiescence fault). Both the early-exit
  // and plain paths must report non-quiescence.
  System plain(bgp::make_line(2));  // never started: queue genuinely empty
  sim::SimulatorTestPeer::add_phantom_foreground(plain.simulator(), 1);
  EXPECT_FALSE(plain.converge(/*max_events=*/1000));

  System polled(bgp::make_line(2));
  sim::SimulatorTestPeer::add_phantom_foreground(polled.simulator(), 1);
  const System::ConvergeOutcome outcome =
      polled.converge_bounded(/*max_events=*/1000, 3600 * sim::kSecond,
                              /*flip_exit_threshold=*/8);
  EXPECT_FALSE(outcome.quiesced);
  EXPECT_FALSE(outcome.oscillation_exit);
}

// ---------------------------------------------------------------------------
// LiveStateCache mechanics
// ---------------------------------------------------------------------------

[[nodiscard]] LiveStateCache::Compute make_state(sim::Time resume_at) {
  return [resume_at]() -> std::shared_ptr<const snapshot::PreparedLiveState> {
    auto state = std::make_shared<snapshot::PreparedLiveState>();
    state->resume_at = resume_at;
    state->quiesced = true;
    return state;
  };
}

TEST(LiveStateCacheTest, OnceLatchComputesExactlyOncePerKey) {
  LiveStateCache cache;
  const auto anchor = std::make_shared<int>(0);
  const LiveStateCache::Key key{anchor, 1, 100};
  std::atomic<int> computes{0};
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      const LiveStateCache::Lookup lookup = cache.get_or_compute(key, [&] {
        ++computes;
        // Make the race window wide: every other worker must PARK on the
        // once-latch for the duration, not bootstrap its own copy.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        return make_state(7)();
      });
      EXPECT_NE(lookup.state, nullptr);
      EXPECT_EQ(lookup.state->resume_at, 7u);
      if (lookup.hit) ++hits;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(hits.load(), 7);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 7u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LiveStateCacheTest, DistinctKeysResolveIndependently) {
  LiveStateCache cache;
  const auto anchor_a = std::make_shared<int>(0);
  const auto anchor_b = std::make_shared<int>(0);
  const LiveStateCache::Key base{anchor_a, 1, 100};
  LiveStateCache::Key other_proto = base;
  other_proto.prototype = anchor_b;
  LiveStateCache::Key other_seed = base;
  other_seed.seed = 2;
  LiveStateCache::Key other_budget = base;
  other_budget.bootstrap_events = 200;
  LiveStateCache::Key other_flip_exit = base;
  other_flip_exit.flip_exit = 8;
  for (const auto& key :
       {base, other_proto, other_seed, other_budget, other_flip_exit}) {
    EXPECT_FALSE(cache.get_or_compute(key, make_state(1)).hit);
  }
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_TRUE(cache.get_or_compute(base, make_state(2)).hit);
}

TEST(LiveStateCacheTest, ClearWhileHeldKeepsStateAliveAndRecomputes) {
  LiveStateCache cache;
  const auto anchor = std::make_shared<int>(0);
  const LiveStateCache::Key key{anchor, 1, 100};
  const LiveStateCache::Lookup first = cache.get_or_compute(key, make_state(42));
  ASSERT_NE(first.state, nullptr);
  const std::shared_ptr<const snapshot::PreparedLiveState> held = first.state;

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(key), nullptr);
  // The holder's state outlives the trim (shared_ptr contract, mirroring
  // SnapshotStore's prepared entries).
  EXPECT_EQ(held->resume_at, 42u);
  EXPECT_TRUE(held->quiesced);

  const LiveStateCache::Lookup second = cache.get_or_compute(key, make_state(43));
  EXPECT_FALSE(second.hit);
  EXPECT_EQ(second.state->resume_at, 43u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(held->resume_at, 42u);  // old holders are never retargeted
}

TEST(LiveStateCacheTest, ConcurrentLookupsAndClearsAreSafe) {
  // Sanitizer-targeted churn: readers hammer a small key space while a
  // trimmer clears the cache underneath them. Correctness bar: every
  // lookup yields a usable state and nothing races (TSan/ASan verdict).
  LiveStateCache cache;
  const auto anchor = std::make_shared<int>(0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (std::uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const LiveStateCache::Key key{anchor, (i + t) % 8, 100};
        const auto lookup = cache.get_or_compute(key, make_state(key.seed + 1));
        ASSERT_NE(lookup.state, nullptr);
        ASSERT_EQ(lookup.state->resume_at, key.seed + 1);
      }
    });
  }
  std::thread trimmer([&] {
    for (int i = 0; i < 20; ++i) {
      cache.clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true);
  });
  trimmer.join();
  for (auto& reader : readers) reader.join();
}

TEST(LiveStateCacheTest, UncacheableKeyIsRememberedWithoutRecompute) {
  LiveStateCache cache;
  const auto anchor = std::make_shared<int>(0);
  const LiveStateCache::Key key{anchor, 3, 100};
  int computes = 0;
  const auto decline = [&]() -> std::shared_ptr<const snapshot::PreparedLiveState> {
    ++computes;
    return nullptr;  // e.g. a non-quiescent bootstrap
  };
  const LiveStateCache::Lookup miss = cache.get_or_compute(key, decline);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.state, nullptr);
  // Later callers learn "uncacheable" instantly — the compute never reruns.
  const LiveStateCache::Lookup hit = cache.get_or_compute(key, decline);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.state, nullptr);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.find(key), nullptr);
  const LiveStateCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.uncacheable, 2u);
}

TEST(LiveStateCacheTest, LruBoundEvictsLeastRecentlyUsedResolvedEntry) {
  LiveStateCache cache(/*max_entries=*/2);
  EXPECT_EQ(cache.max_entries(), 2u);
  const auto anchor = std::make_shared<int>(0);
  const LiveStateCache::Key first{anchor, 1, 100};
  const LiveStateCache::Key second{anchor, 2, 100};
  const LiveStateCache::Key third{anchor, 3, 100};
  (void)cache.get_or_compute(first, make_state(1));
  (void)cache.get_or_compute(second, make_state(2));
  // Touch `first` so `second` is the LRU victim when `third` arrives.
  EXPECT_NE(cache.find(first), nullptr);
  (void)cache.get_or_compute(third, make_state(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.find(second), nullptr) << "LRU entry must be the one evicted";
  EXPECT_NE(cache.find(first), nullptr);
  EXPECT_NE(cache.find(third), nullptr);
  // An evicted key simply recomputes — same contract as clear().
  EXPECT_FALSE(cache.get_or_compute(second, make_state(22)).hit);
}

TEST(LiveStateCacheTest, TrimDropsLruEntriesAndIsSafeWhileHeld) {
  LiveStateCache cache;  // default (generous) bound: no automatic eviction
  const auto anchor = std::make_shared<int>(0);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    (void)cache.get_or_compute({anchor, seed, 100}, make_state(seed + 1));
  }
  // Hold seed 0's state, then make it the most recently used.
  const auto held = cache.find({anchor, 0, 100});
  ASSERT_NE(held, nullptr);

  cache.trim(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_NE(cache.find({anchor, 0, 100}), nullptr) << "MRU entries survive";
  EXPECT_NE(cache.find({anchor, 3, 100}), nullptr);
  EXPECT_EQ(cache.find({anchor, 1, 100}), nullptr);
  EXPECT_EQ(cache.find({anchor, 2, 100}), nullptr);

  cache.trim(0);
  EXPECT_EQ(cache.size(), 0u);
  // The SnapshotStore::trim contract: dropping the cache's reference never
  // invalidates a holder.
  EXPECT_EQ(held->resume_at, 1u);
  EXPECT_TRUE(held->quiesced);
}

TEST(LiveStateCacheTest, InFlightComputeIsNeverEvicted) {
  LiveStateCache cache(/*max_entries=*/1);
  const auto anchor = std::make_shared<int>(0);
  const LiveStateCache::Key resolved{anchor, 1, 100};
  const LiveStateCache::Key in_flight{anchor, 2, 100};
  (void)cache.get_or_compute(resolved, make_state(1));
  const LiveStateCache::Lookup lookup = cache.get_or_compute(in_flight, [&] {
    // Inserting `in_flight` already pushed the resolved entry out (bound
    // 1); a trim-to-zero during the compute must skip the in-flight entry.
    cache.trim(0);
    EXPECT_EQ(cache.size(), 1u);
    return make_state(2)();
  });
  EXPECT_FALSE(lookup.hit);
  ASSERT_NE(lookup.state, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(in_flight), nullptr) << "the in-flight key survived and resolved";
  EXPECT_EQ(cache.find(resolved), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// ---------------------------------------------------------------------------
// Interleaved matrix deal: same-key cells spread across the batch
// ---------------------------------------------------------------------------

TEST(InterleaveDealTest, RoundRobinsAcrossKeysPreservingWithinKeyOrder) {
  // The 2-scenario x 2-strategy x 2-seed matrix shape: cells of a key
  // (scenario, seed) sit at stride |seeds| inside a scenario block.
  const std::vector<std::size_t> keys{0, 1, 0, 1, 2, 3, 2, 3};
  const std::vector<std::size_t> order = interleave_keys(keys);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 4, 5, 2, 3, 6, 7}));
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_NE(keys[order[i]], keys[order[i + 1]]) << "slot " << i;
  }
}

TEST(InterleaveDealTest, StrategyHeavyMatrixNoLongerFrontloadsOneKey) {
  // The motivating shape (bench_matrix_startup): 4 strategies x 1 seed —
  // all four of a scenario's cells share one bootstrap key, so the old
  // deal parked W-1 workers on cell 0's once-latch at batch start.
  const std::vector<std::size_t> keys{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<std::size_t> order = interleave_keys(keys);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 4, 1, 5, 2, 6, 3, 7}));
  // A permutation (every result slot runs exactly once), within-key order
  // preserved (the canonical-first cell of a key still bootstraps it).
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_LT(order[0], 4u);
  EXPECT_GE(order[1], 4u);
}

// ---------------------------------------------------------------------------
// Matrix equivalence: cached bootstrap vs fresh bootstrap
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<ScenarioSpec> equivalence_scenarios() {
  std::vector<ScenarioSpec> scenarios;
  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  scenarios.push_back({"internet9-hijack", std::move(hijack)});
  scenarios.push_back({"bad-gadget", bgp::make_bad_gadget()});  // uncacheable key
  scenarios.push_back({"line3", bgp::make_line(3)});
  return scenarios;
}

struct MatrixOutput {
  std::string faults;                     ///< canonical cell-order fault list
  std::vector<std::string> cell_lines;    ///< per-cell counters
  std::size_t cells_from_cache = 0;
  LiveStateCache::Stats cache;
};

[[nodiscard]] MatrixOutput run_matrix(std::size_t workers, bool cached,
                                      bool prepared_clones) {
  MatrixOptions options;
  options.strategies = {StrategyKind::kGrammar, StrategyKind::kRandom};
  options.seeds = {1, 2};
  options.episodes_per_cell = 1;
  options.bootstrap_events = 300'000;
  options.live_state_cache = cached;
  options.dice.inputs_per_episode = 4;
  options.dice.clone_event_budget = 60'000;
  options.dice.prepared_clones = prepared_clones;
  ScenarioMatrix matrix(equivalence_scenarios(), options);
  ExplorePool pool(workers);
  const MatrixResult result = matrix.run(pool, {});

  MatrixOutput output;
  std::ostringstream faults;
  for (const FaultReport& fault : result.faults) faults << fault.to_string() << "\n";
  output.faults = faults.str();
  for (const CellResult& cell : result.cells) {
    std::ostringstream line;
    line << cell.scenario << "/" << to_string(cell.strategy) << "/s" << cell.seed
         << " boot=" << cell.bootstrap_converged << " episodes=" << cell.episodes
         << " clones=" << cell.clones_run << " faults=" << cell.faults;
    output.cell_lines.push_back(line.str());
    if (cell.bootstrap_from_cache) ++output.cells_from_cache;
  }
  output.cache = result.live_cache;
  return output;
}

TEST(MatrixLiveCacheEquivalenceTest, CachedBootstrapFaultSetsMatchFreshAtWorkers1And2And8) {
  // The acceptance property: a matrix run that bootstraps every (scenario,
  // seed) once and resumes the rest must be byte-identical to one that
  // bootstraps every cell from scratch — for any worker count.
  const MatrixOutput fresh = run_matrix(/*workers=*/1, /*cached=*/false,
                                        /*prepared_clones=*/true);
  ASSERT_FALSE(fresh.faults.empty()) << "hijack + dispute wheel must produce faults";
  EXPECT_EQ(fresh.cells_from_cache, 0u);
  EXPECT_EQ(fresh.cache.misses, 0u) << "cache must stay untouched when disabled";

  for (const std::size_t workers : {1u, 2u, 8u}) {
    const MatrixOutput cached = run_matrix(workers, /*cached=*/true,
                                           /*prepared_clones=*/true);
    EXPECT_EQ(cached.faults, fresh.faults) << "workers=" << workers;
    EXPECT_EQ(cached.cell_lines, fresh.cell_lines) << "workers=" << workers;
    // 6 keys (3 scenarios x 2 seeds), 2 cells each: exactly one bootstrap
    // per key ever runs; the second cell of every cacheable key resumes.
    // bad-gadget never quiesces, so its 2 keys resolve uncacheable and
    // their second cells replay bootstrap (cheap via the early exit).
    EXPECT_EQ(cached.cache.misses, 6u) << "workers=" << workers;
    EXPECT_EQ(cached.cache.hits, 6u) << "workers=" << workers;
    EXPECT_EQ(cached.cache.uncacheable, 4u) << "workers=" << workers;
    EXPECT_EQ(cached.cells_from_cache, 4u) << "workers=" << workers;
  }
}

TEST(MatrixLiveCacheEquivalenceTest, LegacyClonePathMatchesToo) {
  // The cache composes with the legacy decode-per-clone path: same fault
  // bytes whether clones are arena resets or fresh clone_from systems.
  const MatrixOutput fresh = run_matrix(/*workers=*/1, /*cached=*/false,
                                        /*prepared_clones=*/false);
  const MatrixOutput cached = run_matrix(/*workers=*/2, /*cached=*/true,
                                         /*prepared_clones=*/false);
  ASSERT_FALSE(fresh.faults.empty());
  EXPECT_EQ(cached.faults, fresh.faults);
  EXPECT_EQ(cached.cell_lines, fresh.cell_lines);
  // And the clone path itself never changes the verdict (cross-receipt
  // against the prepared-path run in the test above).
  const MatrixOutput prepared = run_matrix(/*workers=*/1, /*cached=*/false,
                                           /*prepared_clones=*/true);
  EXPECT_EQ(fresh.faults, prepared.faults);
}

TEST(MatrixLiveCacheEquivalenceTest, ExternalCacheServesAcrossRuns) {
  // A shared cache turns a repeat soak's every cell into a resume (the
  // long-soak mode bench_matrix_startup measures).
  LiveStateCache shared;
  MatrixOptions options;
  options.strategies = {StrategyKind::kGrammar};
  options.seeds = {1};
  options.episodes_per_cell = 1;
  options.bootstrap_events = 300'000;
  options.live_cache = &shared;
  options.dice.inputs_per_episode = 4;
  options.dice.clone_event_budget = 60'000;
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back({"line3", bgp::make_line(3)});
  ScenarioMatrix matrix(std::move(scenarios), options);
  ExplorePool pool(1);

  const MatrixResult first = matrix.run(pool, {});
  ASSERT_EQ(first.cells.size(), 1u);
  EXPECT_FALSE(first.cells[0].bootstrap_from_cache);
  EXPECT_EQ(first.live_cache.misses, 1u);

  const MatrixResult second = matrix.run(pool, {});
  ASSERT_EQ(second.cells.size(), 1u);
  EXPECT_TRUE(second.cells[0].bootstrap_from_cache);
  EXPECT_EQ(second.live_cache.hits, 1u);
  EXPECT_EQ(second.live_cache.misses, 0u);
  EXPECT_EQ(second.cells[0].faults, first.cells[0].faults);
}

}  // namespace
}  // namespace dice::explore
