// Unit tests for the parallel exploration subsystem: work-stealing pool
// mechanics, fault-ledger determinism, solver-cache accounting, and the
// splittable RNG streams everything relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "concolic/solver.hpp"
#include "explore/ledger.hpp"
#include "explore/pool.hpp"
#include "explore/solver_cache.hpp"
#include "util/rng.hpp"

namespace dice::explore {
namespace {

// ---------------------------------------------------------------------------
// util::Rng::fork(stream_id) — the determinism primitive
// ---------------------------------------------------------------------------

TEST(RngForkTest, StreamForkIsConstAndOrderIndependent) {
  const util::Rng root(42);
  util::Rng a = root.fork(3);
  util::Rng b = root.fork(7);
  // Forking never advances the parent, so any order gives the same streams.
  util::Rng b_again = root.fork(7);
  util::Rng a_again = root.fork(3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), a_again.next());
    EXPECT_EQ(b.next(), b_again.next());
  }
}

TEST(RngForkTest, StreamsAreIndependent) {
  const util::Rng root(42);
  util::Rng a = root.fork(0);
  util::Rng b = root.fork(1);
  // Distinct ids must give distinct streams (first outputs already differ).
  EXPECT_NE(a.next(), b.next());
  // And differ from the advancing fork() of a copy.
  util::Rng mut = root;
  util::Rng child = mut.fork();
  EXPECT_NE(root.fork(0).next(), child.next());
}

TEST(RngForkTest, DifferentRootsGiveDifferentStreams) {
  EXPECT_NE(util::Rng(1).fork(5).next(), util::Rng(2).fork(5).next());
}

// ---------------------------------------------------------------------------
// ExplorePool — batch execution and work stealing
// ---------------------------------------------------------------------------

TEST(ExplorePoolTest, SingleWorkerRunsInlineWithoutThreads) {
  ExplorePool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> hits(8, 0);
  pool.run_batch(8, [&](std::size_t task, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);  // inline compatibility path
    ++hits[task];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(pool.stats().tasks_run, 8u);
  EXPECT_EQ(pool.stats().steals, 0u);
}

TEST(ExplorePoolTest, EveryTaskRunsExactlyOnceAcrossWorkers) {
  ExplorePool pool(4);
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run_batch(kTasks, [&](std::size_t task, std::size_t) { ++hits[task]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.stats().tasks_run, kTasks);
}

TEST(ExplorePoolTest, WorkStealingUnderSkewedTaskCosts) {
  // Round-robin deals task i to worker i % 2. Every even task (worker 0's
  // deque) is heavy, every odd task trivial — worker 1 drains instantly
  // and must steal from worker 0's backlog to finish the batch.
  ExplorePool pool(2);
  constexpr std::size_t kTasks = 12;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run_batch(kTasks, [&](std::size_t task, std::size_t) {
    if (task % 2 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ++hits[task];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GE(pool.stats().steals, 1u);
  EXPECT_EQ(pool.stats().tasks_run, kTasks);
}

TEST(ExplorePoolTest, BackToBackBatchesDoNotLeakWork) {
  ExplorePool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.run_batch(7, [&](std::size_t, std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 7);
  }
  EXPECT_EQ(pool.stats().tasks_run, 140u);
  EXPECT_EQ(pool.stats().batches, 20u);
}

// ---------------------------------------------------------------------------
// FaultLedger — concurrent dedup with serial-order evidence
// ---------------------------------------------------------------------------

[[nodiscard]] core::FaultReport make_report(std::string check, sim::NodeId node,
                                            std::string description) {
  core::FaultReport report;
  report.fault_class = core::FaultClass::kOperatorMistake;
  report.check = std::move(check);
  report.node = node;
  report.description = std::move(description);
  return report;
}

TEST(FaultLedgerTest, DeduplicatesBySignature) {
  FaultLedger ledger;
  EXPECT_TRUE(ledger.record(make_report("route-origin", 1, "stolen prefix"), 10));
  EXPECT_FALSE(ledger.record(make_report("route-origin", 1, "stolen prefix"), 20));
  EXPECT_TRUE(ledger.record(make_report("route-origin", 2, "stolen prefix"), 30));
  EXPECT_EQ(ledger.size(), 2u);
}

TEST(FaultLedgerTest, LowestPriorityEvidenceWinsRegardlessOfArrivalOrder) {
  // The same fault arriving from a later task first must still surface the
  // earlier task's report (reports carry the triggering input as episode
  // evidence — it must be scheduling-independent).
  FaultLedger ledger;
  core::FaultReport late = make_report("route-origin", 1, "stolen prefix");
  late.input = {0xbb};
  core::FaultReport early = make_report("route-origin", 1, "stolen prefix");
  early.input = {0xaa};
  ledger.record(std::move(late), /*priority=*/2 << 16);
  ledger.record(std::move(early), /*priority=*/1 << 16);
  const auto faults = ledger.snapshot_sorted();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].input, util::Bytes{0xaa});
}

TEST(FaultLedgerTest, SnapshotSortedFollowsPriority) {
  FaultLedger ledger;
  ledger.record(make_report("b-check", 1, "second"), 200);
  ledger.record(make_report("c-check", 1, "third"), 300);
  ledger.record(make_report("a-check", 1, "first"), 100);
  const auto faults = ledger.snapshot_sorted();
  ASSERT_EQ(faults.size(), 3u);
  EXPECT_EQ(faults[0].check, "a-check");
  EXPECT_EQ(faults[1].check, "b-check");
  EXPECT_EQ(faults[2].check, "c-check");
}

TEST(FaultLedgerTest, KeySaltPartitionsDedupSpace) {
  FaultLedger ledger;
  EXPECT_TRUE(ledger.record(make_report("route-origin", 1, "x"), 1, /*key_salt=*/1));
  EXPECT_TRUE(ledger.record(make_report("route-origin", 1, "x"), 2, /*key_salt=*/2));
  EXPECT_EQ(ledger.size(), 2u);
  // contains() applies the same salt transformation as record().
  const std::uint64_t key = core::fault_key(make_report("route-origin", 1, "x"));
  EXPECT_TRUE(ledger.contains(key, /*key_salt=*/1));
  EXPECT_TRUE(ledger.contains(key, /*key_salt=*/2));
  EXPECT_FALSE(ledger.contains(key));  // never recorded unsalted
  EXPECT_FALSE(ledger.contains(key, /*key_salt=*/3));
}

TEST(FaultLedgerTest, SaltMixingResistsCrossCellCollisions) {
  // Regression: salting used to be `key ^ (key_salt * golden)` — linear in
  // XOR, so any two cells' salts defined a fixed mask mapping one cell's
  // keys onto the other's. Construct that exact historical collision and
  // assert the splitmix64 mixing keeps the two findings distinct.
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  const std::uint64_t salt_a = 7;   // e.g. cell 6's salt (index + 1)
  const std::uint64_t salt_b = 12;  // e.g. cell 11's salt
  const core::FaultReport report = make_report("route-origin", 1, "finding A");
  const std::uint64_t key_a = core::fault_key(report);
  // Under the old scheme this distinct fault key in cell B collapsed onto
  // (key_a, salt_a): key_b ^ salt_b*g == key_a ^ salt_a*g.
  const std::uint64_t key_b = key_a ^ (salt_a * kGolden) ^ (salt_b * kGolden);
  ASSERT_NE(key_b, key_a);
  ASSERT_EQ(key_b ^ (salt_b * kGolden), key_a ^ (salt_a * kGolden));

  EXPECT_NE(salted_fault_key(key_b, salt_b), salted_fault_key(key_a, salt_a))
      << "cross-cell collision would silently merge two findings into one";

  FaultLedger ledger;
  EXPECT_TRUE(ledger.record(report, 1, salt_a));
  EXPECT_TRUE(ledger.contains(key_a, salt_a));
  EXPECT_FALSE(ledger.contains(key_b, salt_b));
}

TEST(FaultLedgerTest, WidePriorityBandsKeepCellOrder) {
  // The matrix salts per cell AND bands priorities per cell (index << 32);
  // a cell with more faults than the old 20-bit band (2^20) must not bleed
  // into the next cell's band.
  FaultLedger ledger;
  const std::uint64_t band = std::uint64_t{1} << 32;
  core::FaultReport cell1 = make_report("check", 1, "cell 1's finding");
  core::FaultReport cell0 = make_report("check", 2, "cell 0's late finding");
  ledger.record(std::move(cell1), /*priority=*/1 * band, /*key_salt=*/2);
  // Far beyond the old band, still strictly inside cell 0's 32-bit one.
  ledger.record(std::move(cell0), /*priority=*/0 * band + (1 << 21), /*key_salt=*/1);
  const auto faults = ledger.snapshot_sorted();
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].description, "cell 0's late finding");
  EXPECT_EQ(faults[1].description, "cell 1's finding");
}

TEST(FaultLedgerTest, LvalueRecordAllLeavesCallerVectorIntact) {
  // The matrix records a cell's deduplicated faults from a const ref (the
  // orchestrator keeps ownership); record_all must not consume — or force a
  // wholesale copy of — the source vector.
  FaultLedger ledger;
  std::vector<core::FaultReport> faults;
  faults.push_back(make_report("route-origin", 1, "finding A"));
  faults.push_back(make_report("route-origin", 2, "finding B"));
  faults.push_back(make_report("route-origin", 1, "finding A"));  // duplicate: no copy
  EXPECT_EQ(ledger.record_all(faults, /*base_priority=*/0, /*key_salt=*/1), 2u);
  ASSERT_EQ(faults.size(), 3u);
  EXPECT_EQ(faults[0].description, "finding A");
  EXPECT_EQ(faults[2].description, "finding A");
  EXPECT_EQ(ledger.size(), 2u);
}

TEST(FaultLedgerTest, ConcurrentRecordingIsDeterministic) {
  // 8 threads record overlapping fault sets; the surviving contents must be
  // exactly the per-key priority minima, independent of interleaving.
  FaultLedger ledger;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&ledger, t] {
      for (int i = 0; i < 50; ++i) {
        core::FaultReport report =
            make_report("check", static_cast<sim::NodeId>(i % 5), "desc");
        report.episode = static_cast<std::uint64_t>(t);
        ledger.record(std::move(report), static_cast<std::uint64_t>(t * 1000 + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto faults = ledger.snapshot_sorted();
  ASSERT_EQ(faults.size(), 5u);  // 5 distinct nodes
  for (std::size_t i = 0; i < faults.size(); ++i) {
    // Thread 0 wrote priorities 0..49 first-by-priority for each node.
    EXPECT_EQ(faults[i].episode, 0u);
  }
}

// ---------------------------------------------------------------------------
// SolverCache — memoized constraint solving with hit accounting
// ---------------------------------------------------------------------------

TEST(SolverCacheTest, SecondIdenticalQueryIsAHit) {
  concolic::ExprPool pool;
  // Constraint: input[0] == 0x42 (hint fails it; inversion solves it).
  const concolic::ExprRef cond = pool.binary(
      concolic::Op::kEq, pool.sym_byte(0), pool.constant(0x42, 8));
  const std::vector<concolic::Constraint> constraints{{cond, true}};

  SolverCache cache;
  concolic::Solver solver;
  solver.set_memo(&cache);

  const util::Bytes hint{0x00, 0x01};
  const auto first = solver.solve(pool, constraints, hint);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], 0x42);
  EXPECT_EQ(solver.stats().cache_hits, 0u);
  EXPECT_EQ(solver.stats().cache_stores, 1u);

  const auto second = solver.solve(pool, constraints, hint);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, *first);
  EXPECT_EQ(solver.stats().cache_hits, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().sat_entries, 1u);
}

TEST(SolverCacheTest, KeysAreStructuralAcrossPools) {
  // The same conjunction built in a fresh pool (fresh ExprRefs) must reuse
  // the cached model — this is what makes the cache effective across
  // episodes, which rebuild their pools from scratch.
  SolverCache cache;
  concolic::Solver solver;
  solver.set_memo(&cache);

  std::optional<util::Bytes> first;
  {
    concolic::ExprPool pool;
    const auto cond = pool.binary(concolic::Op::kEq, pool.sym_byte(0),
                                  pool.constant(0x42, 8));
    const std::vector<concolic::Constraint> constraints{{cond, true}};
    first = solver.solve(pool, constraints, util::Bytes{0x00});
  }
  {
    concolic::ExprPool pool;
    (void)pool.constant(0x99, 8);  // shift ref numbering in the new pool
    const auto cond = pool.binary(concolic::Op::kEq, pool.sym_byte(0),
                                  pool.constant(0x42, 8));
    const std::vector<concolic::Constraint> constraints{{cond, true}};
    const auto second = solver.solve(pool, constraints, util::Bytes{0x00});
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second, *first);
  }
  EXPECT_EQ(solver.stats().cache_hits, 1u);
}

TEST(SolverCacheTest, ProvenUnsatIsCachedButSearchGiveUpsAreNot) {
  SolverCache cache;
  concolic::Solver solver;
  solver.set_memo(&cache);

  concolic::ExprPool pool;
  // input[0] == 1 AND input[0] == 2: interval propagation proves UNSAT.
  const auto eq1 = pool.binary(concolic::Op::kEq, pool.sym_byte(0), pool.constant(1, 8));
  const auto eq2 = pool.binary(concolic::Op::kEq, pool.sym_byte(0), pool.constant(2, 8));
  const std::vector<concolic::Constraint> unsat{{eq1, true}, {eq2, true}};
  EXPECT_FALSE(solver.solve(pool, unsat, util::Bytes{0x00}).has_value());
  EXPECT_EQ(solver.stats().cache_stores, 1u);  // proof => memoized
  EXPECT_FALSE(solver.solve(pool, unsat, util::Bytes{0x00}).has_value());
  EXPECT_EQ(solver.stats().cache_hits, 1u);

  // Constraint on a byte beyond the hint: unsolvable *for this hint* but
  // not a proof — must not be memoized as UNSAT.
  const auto far = pool.binary(concolic::Op::kEq, pool.sym_byte(9), pool.constant(7, 8));
  const std::vector<concolic::Constraint> truncated{{far, true}};
  EXPECT_FALSE(solver.solve(pool, truncated, util::Bytes{0x00}).has_value());
  const auto stores_before = solver.stats().cache_stores;
  EXPECT_EQ(stores_before, 1u);  // nothing new stored
  // A longer hint CAN solve it — a cached UNSAT would have blocked this.
  const auto solved =
      solver.solve(pool, truncated, util::Bytes(10, 0x00));
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ((*solved)[9], 7);
}

TEST(SolverCacheTest, NonCoveringEnumerationGiveUpIsNotCachedAsUnsat) {
  // C1: input[0] == 7 (fails under the hint); C2: input[0] + input[1] == 5
  // (holds under the hint). Enumeration varies only C1's byte with byte 1
  // pinned, finds nothing — but (7, 254) satisfies both (8-bit wrap), so
  // the give-up must NOT be memoized as UNSAT for later hints.
  SolverCache cache;
  concolic::Solver solver;
  solver.set_memo(&cache);

  concolic::ExprPool pool;
  const auto c1 = pool.binary(concolic::Op::kEq, pool.sym_byte(0), pool.constant(7, 8));
  const auto sum = pool.binary(concolic::Op::kAdd, pool.sym_byte(0), pool.sym_byte(1));
  const auto c2 = pool.binary(concolic::Op::kEq, sum, pool.constant(5, 8));
  const std::vector<concolic::Constraint> constraints{{c1, true}, {c2, true}};

  EXPECT_FALSE(solver.solve(pool, constraints, util::Bytes{5, 0}).has_value());
  EXPECT_EQ(cache.size(), 0u) << "hint-dependent give-up was cached as a proof";

  // A hint that fails both constraints involves both bytes; full
  // enumeration then finds the wrap-around model a poisoned cache entry
  // would have blocked.
  const auto solved = solver.solve(pool, constraints, util::Bytes{5, 200});
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ((*solved)[0], 7);
  EXPECT_EQ((*solved)[1], 254);
}

TEST(SolverCacheTest, ConcurrentLookupsAndStoresAreSafe) {
  SolverCache cache;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < 200; ++i) {
        const std::uint64_t key = i % 37;
        std::optional<util::Bytes> result;
        if (!cache.lookup(key, result)) {
          cache.store(key, util::Bytes{static_cast<std::uint8_t>(key)});
        } else if (result) {
          // First-write-wins: the value is always the key's canonical byte.
          EXPECT_EQ((*result)[0], static_cast<std::uint8_t>(key));
        }
        (void)t;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), 37u);
}

}  // namespace
}  // namespace dice::explore
