// Differential tests between the concrete UPDATE decoder (bgp/codec.cpp)
// and the instrumented symbolic handler (bgp/sym_update.cpp). DESIGN.md
// commits to keeping the two in lock-step; these properties are the lock.
#include <gtest/gtest.h>

#include "bgp/codec.hpp"
#include "bgp/sym_update.hpp"
#include "bgp/topology.hpp"
#include "fuzz/bgp_grammar.hpp"

namespace dice::bgp {
namespace {

using concolic::SymCtx;
using util::Bytes;

[[nodiscard]] RouterConfig test_config() {
  SystemBlueprint bp = make_internet({2, 3, 4});
  return bp.configs[3];  // a tier-2 router: has Gao-Rexford policies
}

/// Runs the symbolic handler on a body (no recording context assertions).
[[nodiscard]] SymHandlerResult run_sym(const RouterConfig& config, const Bytes& body) {
  SymHandlerEnv env;
  env.config = &config;
  env.neighbor_index = 0;
  SymCtx ctx(body);
  concolic::SymScope scope(ctx);
  return sym_handle_update(ctx, env);
}

TEST(SymDiffTest, WrapUnwrapRoundTrip) {
  const Bytes body{0x00, 0x00, 0x00, 0x00};
  const Bytes message = wrap_update_body(body);
  EXPECT_EQ(message.size(), kHeaderLength + body.size());
  auto back = unwrap_update_body(message);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, body);
  EXPECT_FALSE(unwrap_update_body({1, 2, 3}).has_value());
}

TEST(SymDiffTest, EmptyUpdateAgrees) {
  const RouterConfig config = test_config();
  const Bytes body{0x00, 0x00, 0x00, 0x00};  // no withdrawn, no attrs, no nlri
  const SymHandlerResult sym = run_sym(config, body);
  EXPECT_TRUE(sym.decode_ok);
  auto concrete = decode(wrap_update_body(body));
  EXPECT_TRUE(concrete.ok());
}

TEST(SymDiffTest, RecordsConstraintsFromCodeAndConfig) {
  const RouterConfig config = test_config();
  // A valid single-announcement update built with the concrete encoder.
  UpdateMessage update;
  update.attrs.origin = Origin::kIgp;
  update.attrs.as_path = AsPath{{65001}};
  update.attrs.next_hop = util::IpAddress{10, 0, 9, 1};
  update.nlri.push_back(node_prefix(0));
  auto encoded = encode(Message{update});
  ASSERT_TRUE(encoded.ok());
  auto body = unwrap_update_body(encoded.value());
  ASSERT_TRUE(body.has_value());

  SymHandlerEnv env;
  env.config = &config;
  env.neighbor_index = 0;
  SymCtx ctx(*body);
  SymHandlerResult result;
  {
    concolic::SymScope scope(ctx);
    result = sym_handle_update(ctx, env);
  }
  EXPECT_TRUE(result.decode_ok);
  EXPECT_EQ(result.announced, 1u);
  // The path condition holds constraints from BOTH dimensions the paper
  // names: parsing (flags/lengths) and interpreted configuration (policy).
  EXPECT_GT(ctx.path().size(), 10u);
}

/// The core differential property, over grammar-fuzzed near-valid inputs:
/// decode success/failure AND the first error code agree between the
/// concrete codec and the symbolic twin.
class SymDiffProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymDiffProperty, DecodeOutcomeAgreesOnFuzzedBodies) {
  const RouterConfig config = test_config();
  util::Rng rng(GetParam());
  const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(config));

  std::size_t checked = 0;
  for (int round = 0; round < 300; ++round) {
    const Bytes body = grammar.generate_body(rng, /*corruption_rate=*/0.08);
    const SymHandlerResult sym = run_sym(config, body);
    auto concrete = decode(wrap_update_body(body));
    ++checked;

    ASSERT_EQ(sym.decode_ok, concrete.ok())
        << "divergence on body " << util::to_hex(body) << "\n concrete: "
        << (concrete.ok() ? "ok" : concrete.error().to_string())
        << "\n symbolic: " << (sym.decode_ok ? "ok" : sym.error_code);
    if (!concrete.ok()) {
      EXPECT_EQ(sym.error_code, concrete.error().code)
          << "error-code divergence on body " << util::to_hex(body);
    } else {
      const auto& update = std::get<UpdateMessage>(concrete.value());
      EXPECT_EQ(sym.withdrawn, update.withdrawn.size());
      EXPECT_EQ(sym.announced, update.nlri.size());
    }
  }
  EXPECT_EQ(checked, 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymDiffProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

/// Accept/reject agreement: the symbolic policy interpreter must agree
/// with the concrete policy engine on fuzzed *valid* updates.
class SymPolicyDiffProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymPolicyDiffProperty, ImportVerdictAgrees) {
  const RouterConfig config = test_config();
  const NeighborConfig& neighbor = config.neighbors[0];
  util::Rng rng(GetParam());
  const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(config));

  std::size_t compared = 0;
  for (int round = 0; round < 300; ++round) {
    const Bytes body = grammar.generate_body(rng, /*corruption_rate=*/0.0);
    auto concrete = decode(wrap_update_body(body));
    if (!concrete.ok()) continue;
    const auto& update = std::get<UpdateMessage>(concrete.value());
    if (update.nlri.empty()) continue;
    if (update.attrs.as_path.contains(config.asn)) continue;  // loop path

    const SymHandlerResult sym = run_sym(config, body);
    ASSERT_TRUE(sym.decode_ok);

    std::uint32_t accepted = 0;
    for (const util::IpPrefix& prefix : update.nlri) {
      Route route;
      route.prefix = prefix;
      route.attrs = update.attrs;
      route.attrs.local_pref.reset();  // eBGP import semantics
      route.source.peer_asn = neighbor.asn;
      if (evaluate(neighbor.import_policy, std::move(route), config.asn).accepted) {
        ++accepted;
      }
    }
    EXPECT_EQ(sym.accepted, accepted)
        << "policy divergence on body " << util::to_hex(body);
    ++compared;
  }
  EXPECT_GT(compared, 100u);  // the grammar must produce mostly valid inputs
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymPolicyDiffProperty, ::testing::Values(7, 14, 21));

TEST(SymDiffTest, InjectedBugsFireIdentically) {
  RouterConfig config = test_config();
  config.bug_mask = bugs::kCommunityLength;
  // Craft a community attribute with length 5 via raw bytes.
  util::ByteWriter attrs;
  attrs.u8(attr_flags::kTransitive);
  attrs.u8(1);
  attrs.u8(1);
  attrs.u8(0);
  attrs.u8(attr_flags::kTransitive);
  attrs.u8(2);
  attrs.u8(4);
  attrs.u8(2);
  attrs.u8(1);
  attrs.u16(65001);
  attrs.u8(attr_flags::kTransitive);
  attrs.u8(3);
  attrs.u8(4);
  attrs.u32(util::IpAddress{10, 0, 0, 2}.value());
  attrs.u8(attr_flags::kOptional | attr_flags::kTransitive);
  attrs.u8(8);
  attrs.u8(5);
  for (int i = 0; i < 5; ++i) attrs.u8(0x01);

  util::ByteWriter body;
  body.u16(0);
  body.u16(static_cast<std::uint16_t>(attrs.size()));
  body.raw(attrs.span());
  body.u8(16);
  body.u8(10);
  body.u8(9);
  const Bytes body_bytes = std::move(body).take();

  // Concrete: crash.
  EXPECT_THROW((void)decode(wrap_update_body(body_bytes), DecodeOptions{config.bug_mask}),
               concolic::CrashSignal);
  // Symbolic: crash too (CrashSignal escapes sym_handle_update).
  SymHandlerEnv env;
  env.config = &config;
  env.neighbor_index = 0;
  SymCtx ctx(body_bytes);
  concolic::SymScope scope(ctx);
  EXPECT_THROW((void)sym_handle_update(ctx, env), concolic::CrashSignal);
  EXPECT_TRUE(ctx.crashed());
}

}  // namespace
}  // namespace dice::bgp
