// Session FSM unit tests against a mock host (no network, no router).
#include <gtest/gtest.h>

#include "bgp/session.hpp"

namespace dice::bgp {
namespace {

class MockHost : public SessionHost {
 public:
  void session_send(sim::NodeId peer, const Message& msg, bool background) override {
    sent.emplace_back(peer, msg);
    (void)background;
  }
  void session_established(sim::NodeId peer) override { established_peers.push_back(peer); }
  void session_down(sim::NodeId peer, const std::string& reason) override {
    down_events.emplace_back(peer, reason);
  }
  void session_update(sim::NodeId peer, const UpdateMessage& update) override {
    updates.emplace_back(peer, update);
  }
  sim::Simulator& session_simulator() override { return sim; }

  [[nodiscard]] MessageType last_sent_type() const { return type_of(sent.back().second); }

  sim::Simulator sim;
  std::vector<std::pair<sim::NodeId, Message>> sent;
  std::vector<sim::NodeId> established_peers;
  std::vector<std::pair<sim::NodeId, std::string>> down_events;
  std::vector<std::pair<sim::NodeId, UpdateMessage>> updates;
};

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() {
    local_.name = "local";
    local_.router_id = 1;
    local_.asn = 65001;
    local_.hold_time = 90;
    neighbor_.address = util::IpAddress{10, 0, 0, 2};
    neighbor_.asn = 65002;
    session_ = std::make_unique<Session>(host_, /*peer_node=*/2, neighbor_, local_);
  }

  [[nodiscard]] OpenMessage peer_open(std::uint16_t asn = 65002,
                                      std::uint16_t hold = 90) const {
    OpenMessage open;
    open.my_asn = asn;
    open.hold_time = hold;
    open.router_id = 22;
    return open;
  }

  void establish() {
    session_->start();
    session_->handle_message(Message{peer_open()});
    session_->handle_message(Message{KeepaliveMessage{}});
    ASSERT_TRUE(session_->established());
  }

  MockHost host_;
  RouterConfig local_;
  NeighborConfig neighbor_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionTest, HappyPathHandshake) {
  EXPECT_EQ(session_->state(), SessionState::kIdle);
  session_->start();
  EXPECT_EQ(session_->state(), SessionState::kOpenSent);
  ASSERT_EQ(host_.sent.size(), 1u);
  EXPECT_EQ(host_.last_sent_type(), MessageType::kOpen);

  session_->handle_message(Message{peer_open()});
  EXPECT_EQ(session_->state(), SessionState::kOpenConfirm);
  EXPECT_EQ(host_.last_sent_type(), MessageType::kKeepalive);
  EXPECT_EQ(session_->peer_router_id(), 22u);

  session_->handle_message(Message{KeepaliveMessage{}});
  EXPECT_EQ(session_->state(), SessionState::kEstablished);
  EXPECT_EQ(host_.established_peers, std::vector<sim::NodeId>{2});
}

TEST_F(SessionTest, HoldTimeNegotiatedToMinimum) {
  session_->start();
  session_->handle_message(Message{peer_open(65002, /*hold=*/30)});
  EXPECT_EQ(session_->negotiated_hold(), 30u);
}

TEST_F(SessionTest, WrongPeerAsnRejected) {
  session_->start();
  session_->handle_message(Message{peer_open(/*asn=*/65099)});
  EXPECT_EQ(session_->state(), SessionState::kIdle);
  // NOTIFICATION OpenMessageError/BadPeerAS was sent.
  const auto& notif = std::get<NotificationMessage>(host_.sent.back().second);
  EXPECT_EQ(notif.code, NotifCode::kOpenMessageError);
  EXPECT_EQ(notif.subcode, 2);
  ASSERT_EQ(host_.down_events.size(), 1u);
}

TEST_F(SessionTest, PassiveOpenFromIdle) {
  // Receiving OPEN in Idle triggers our own OPEN (collision resolution).
  session_->handle_message(Message{peer_open()});
  EXPECT_EQ(session_->state(), SessionState::kOpenConfirm);
  // We sent OPEN then KEEPALIVE.
  ASSERT_EQ(host_.sent.size(), 2u);
  EXPECT_EQ(type_of(host_.sent[0].second), MessageType::kOpen);
  EXPECT_EQ(type_of(host_.sent[1].second), MessageType::kKeepalive);
}

TEST_F(SessionTest, UpdateBeforeEstablishedIsFsmError) {
  session_->start();
  session_->handle_message(Message{UpdateMessage{}});
  EXPECT_EQ(session_->state(), SessionState::kIdle);
  const auto& notif = std::get<NotificationMessage>(host_.sent.back().second);
  EXPECT_EQ(notif.code, NotifCode::kFsmError);
}

TEST_F(SessionTest, UpdateDeliveredWhenEstablished) {
  establish();
  UpdateMessage update;
  update.withdrawn.push_back(util::IpPrefix{util::IpAddress{10, 9, 0, 0}, 16});
  session_->handle_message(Message{update});
  ASSERT_EQ(host_.updates.size(), 1u);
  EXPECT_EQ(host_.updates[0].second, update);
  EXPECT_EQ(session_->stats().updates_received, 1u);
}

TEST_F(SessionTest, NotificationDropsSession) {
  establish();
  NotificationMessage notif;
  notif.code = NotifCode::kCease;
  session_->handle_message(Message{notif});
  EXPECT_EQ(session_->state(), SessionState::kIdle);
  EXPECT_EQ(session_->stats().notifications_received, 1u);
  ASSERT_EQ(host_.down_events.size(), 1u);
}

TEST_F(SessionTest, HoldTimerExpiresWithoutTraffic) {
  establish();
  // Advance past the negotiated hold time with no inbound messages.
  host_.sim.run_until(91 * sim::kSecond);
  EXPECT_EQ(session_->state(), SessionState::kIdle);
  // Hold-expiry NOTIFICATION went out.
  bool saw_hold_notif = false;
  for (const auto& [peer, msg] : host_.sent) {
    if (const auto* n = std::get_if<NotificationMessage>(&msg)) {
      saw_hold_notif |= n->code == NotifCode::kHoldTimerExpired;
    }
  }
  EXPECT_TRUE(saw_hold_notif);
}

TEST_F(SessionTest, KeepalivesRefreshHoldTimer) {
  establish();
  // Feed a keepalive every 60s; the session must stay up well past 90s.
  for (int i = 1; i <= 5; ++i) {
    host_.sim.run_until(static_cast<sim::Time>(i) * 60 * sim::kSecond);
    session_->handle_message(Message{KeepaliveMessage{}});
  }
  EXPECT_TRUE(session_->established());
}

TEST_F(SessionTest, KeepaliveTimerSendsKeepalives) {
  establish();
  const std::size_t before = host_.sent.size();
  host_.sim.run_until(35 * sim::kSecond);  // keepalive interval = 90/3 = 30s
  std::size_t keepalives = 0;
  for (std::size_t i = before; i < host_.sent.size(); ++i) {
    if (type_of(host_.sent[i].second) == MessageType::kKeepalive) ++keepalives;
  }
  EXPECT_GE(keepalives, 1u);
}

TEST_F(SessionTest, ZeroHoldTimeDisablesTimers) {
  local_.hold_time = 0;
  Session session(host_, 2, neighbor_, local_);
  session.start();
  session.handle_message(Message{peer_open(65002, /*hold=*/0)});
  session.handle_message(Message{KeepaliveMessage{}});
  ASSERT_TRUE(session.established());
  host_.sim.run_until(3600 * sim::kSecond);
  EXPECT_TRUE(session.established());  // no hold timer fired
}

TEST_F(SessionTest, TransportResetIsSilent) {
  establish();
  const std::size_t sent_before = host_.sent.size();
  session_->reset_transport("wire cut");
  EXPECT_EQ(session_->state(), SessionState::kIdle);
  EXPECT_EQ(host_.sent.size(), sent_before);  // no NOTIFICATION on the wire
  ASSERT_EQ(host_.down_events.size(), 1u);
  EXPECT_EQ(host_.down_events[0].second, "wire cut");
}

TEST_F(SessionTest, CheckpointRestoreReestablishesTimers) {
  establish();
  util::ByteWriter writer;
  session_->checkpoint(writer);

  Session restored(host_, 2, neighbor_, local_);
  util::ByteReader reader(writer.bytes());
  ASSERT_TRUE(restored.restore(reader).ok());
  EXPECT_TRUE(restored.established());
  EXPECT_EQ(restored.peer_router_id(), 22u);
  EXPECT_EQ(restored.negotiated_hold(), 90u);
  // The restored hold timer is armed: silence eventually drops the session.
  host_.sim.run_until(host_.sim.now() + 120 * sim::kSecond);
  EXPECT_FALSE(restored.established());
}

TEST_F(SessionTest, RestoreRejectsGarbage) {
  Session fresh(host_, 2, neighbor_, local_);
  const util::Bytes garbage{0x09};  // truncated + invalid state value
  util::ByteReader reader(garbage);
  EXPECT_FALSE(fresh.restore(reader).ok());
}

TEST_F(SessionTest, EbgpDetection) {
  EXPECT_TRUE(session_->ebgp());
  NeighborConfig ibgp_neighbor = neighbor_;
  ibgp_neighbor.asn = local_.asn;
  Session ibgp(host_, 3, ibgp_neighbor, local_);
  EXPECT_FALSE(ibgp.ebgp());
}

}  // namespace
}  // namespace dice::bgp
