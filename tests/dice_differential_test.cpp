// Differential fault checks across heterogeneous implementations: the
// DifferentialCheck replays every node decision through the reference
// decision procedure, and a seeded decision defect in the second engine
// (bugs::kLongPathPreferred, honored only by bgp2::FsmEngine) must surface
// as the kImplementationDivergence fault class through the full DiCE loop
// (orchestrator -> clones -> checks -> FaultLedger-visible reports), while
// bug-free engines of either kind never trip it.
#include <gtest/gtest.h>

#include <algorithm>

#include "bgp/bugs.hpp"
#include "dice/orchestrator.hpp"

namespace dice::core {
namespace {

/// Ring of 4 permissive routers: node 3 hears prefix(0) directly from node
/// 0 (path length 1) and via node 2 (length 3) — exactly the tie-free
/// shape where a longest-path preference diverges from the reference
/// shortest-path selection.
[[nodiscard]] bgp::SystemBlueprint divergence_ring(bool seed_bug) {
  bgp::SystemBlueprint blueprint = bgp::make_ring(4);
  blueprint.set_implementation(3, "fsm");
  if (seed_bug) bgp::inject_bug(blueprint, /*node=*/3, bgp::bugs::kLongPathPreferred);
  return blueprint;
}

[[nodiscard]] std::size_t divergence_faults(const std::vector<FaultReport>& faults,
                                            sim::NodeId* node = nullptr) {
  std::size_t count = 0;
  for (const FaultReport& fault : faults) {
    if (fault.fault_class == FaultClass::kImplementationDivergence) {
      ++count;
      if (node != nullptr) *node = fault.node;
    }
  }
  return count;
}

TEST(DifferentialTest, SeededDecisionBugSurfacesAsImplementationDivergence) {
  DiceOptions options;
  options.inputs_per_episode = 4;
  Orchestrator dice(divergence_ring(/*seed_bug=*/true), options);
  ASSERT_TRUE(dice.bootstrap());

  RandomStrategy strategy(/*rng_seed=*/0x5eed);
  (void)dice.run_episode(strategy);

  sim::NodeId faulty_node = sim::kInvalidNode;
  const std::size_t divergences = divergence_faults(dice.all_faults(), &faulty_node);
  ASSERT_GE(divergences, 1u) << "the seeded decision defect must be detected";
  EXPECT_EQ(faulty_node, 3u) << "only the buggy fsm node diverges";
  // The divergence exists in the system's converged state, so the baseline
  // clone already sees it: at least one report is non-potential.
  const bool baseline_hit = std::any_of(
      dice.all_faults().begin(), dice.all_faults().end(), [](const FaultReport& f) {
        return f.fault_class == FaultClass::kImplementationDivergence && !f.potential;
      });
  EXPECT_TRUE(baseline_hit);
}

TEST(DifferentialTest, DivergenceReportsCarryTheFaultClassName) {
  DiceOptions options;
  options.inputs_per_episode = 2;
  Orchestrator dice(divergence_ring(/*seed_bug=*/true), options);
  ASSERT_TRUE(dice.bootstrap());
  RandomStrategy strategy(/*rng_seed=*/0x5eed);
  (void)dice.run_episode(strategy);

  bool found = false;
  for (const FaultReport& fault : dice.all_faults()) {
    if (fault.fault_class != FaultClass::kImplementationDivergence) continue;
    found = true;
    EXPECT_EQ(fault.check, "differential");
    EXPECT_NE(fault.to_string().find("implementation-divergence"), std::string::npos);
    EXPECT_NE(fault.description.find("impl=fsm"), std::string::npos)
        << fault.description;
  }
  ASSERT_TRUE(found);
}

TEST(DifferentialTest, CleanForeignEngineNeverDiverges) {
  // The same mixed topology without the seeded defect: the fsm engine's
  // decisions replay identically through the reference procedure.
  DiceOptions options;
  options.inputs_per_episode = 4;
  Orchestrator dice(divergence_ring(/*seed_bug=*/false), options);
  ASSERT_TRUE(dice.bootstrap());
  RandomStrategy strategy(/*rng_seed=*/0x5eed);
  (void)dice.run_episode(strategy);
  EXPECT_EQ(divergence_faults(dice.all_faults()), 0u);
}

TEST(DifferentialTest, ReferenceEngineIgnoresTheDecisionBugMask) {
  // kLongPathPreferred is a bgp2-only defect: on the reference engine the
  // same mask bit is inert, so no divergence (and no behavior change) —
  // the negative control that pins which engine owns the bug.
  bgp::SystemBlueprint blueprint = bgp::make_ring(4);
  bgp::inject_bug(blueprint, /*node=*/3, bgp::bugs::kLongPathPreferred);

  DiceOptions options;
  options.inputs_per_episode = 4;
  Orchestrator dice(std::move(blueprint), options);
  ASSERT_TRUE(dice.bootstrap());
  RandomStrategy strategy(/*rng_seed=*/0x5eed);
  (void)dice.run_episode(strategy);
  EXPECT_EQ(divergence_faults(dice.all_faults()), 0u);
}

}  // namespace
}  // namespace dice::core
