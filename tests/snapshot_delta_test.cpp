// Delta checkpoints: snapshot cost scales with churn, not topology size —
// and NOTHING observable moves. The receipts: (1) a zero-churn snapshot
// writes one byte per node and resolves to the baseline's decoded objects
// (pointer-shared, not re-decoded); (2) churn re-encodes only the churned
// nodes; (3) the committed topology27 fault-set hash 63f680b04458c2a9 is
// byte-identical on the full and delta paths at workers 1, 2, 4 and 8;
// (4) a delta stream against a missing or wrong baseline fails with the
// stable codes, never a silent wrong restore; (5) legacy fixed-width
// streams (pre-v2 captures) still parse.
#include <gtest/gtest.h>

#include <vector>

#include "dice/orchestrator.hpp"
#include "dice/system.hpp"
#include "util/hash.hpp"

namespace dice::snapshot {
namespace {

using bgp::make_internet;
using core::DiceOptions;
using core::FaultReport;
using core::GrammarStrategy;
using core::Orchestrator;
using core::System;

/// The committed cross-PR determinism receipt (see docs/DETERMINISM.md).
constexpr std::uint64_t kTopology27FaultHash = 0x63f680b04458c2a9ULL;

[[nodiscard]] std::uint64_t fault_hash(const std::vector<FaultReport>& faults) {
  std::uint64_t h = util::kFnvOffset;
  for (const FaultReport& fault : faults) h = util::fnv1a(fault.to_string(), h);
  return util::hash_finalize(h);
}

[[nodiscard]] bool is_delta(const Checkpoint& checkpoint) {
  return checkpoint.state.size() == 1 &&
         checkpoint.state[0] == kCheckpointSameAsBaseline;
}

TEST(SnapshotDeltaTest, ZeroChurnSecondSnapshotIsOneBytePerNode) {
  System system(make_internet());  // 27 routers
  system.set_delta_checkpoints(true);
  system.start();
  ASSERT_TRUE(system.converge());

  const SnapshotId first = system.take_snapshot(0);
  ASSERT_NE(first, 0u);
  const auto baseline = system.prepare_snapshot(first);
  ASSERT_NE(baseline, nullptr);
  const std::size_t full_bytes = system.snapshots().find(first)->total_state_bytes();

  // Nothing happened between the cuts (the marker sweep itself does not
  // mutate checkpointed router state), so EVERY node rides the delta.
  const SnapshotId second = system.take_snapshot(0);
  ASSERT_NE(second, 0u);
  const Snapshot* raw = system.snapshots().find(second);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->baseline_id, first);
  for (const auto& [node, checkpoint] : raw->nodes) {
    EXPECT_TRUE(is_delta(checkpoint)) << "node " << node << " re-encoded in full";
  }
  EXPECT_EQ(raw->total_state_bytes(), raw->nodes.size());
  EXPECT_LT(raw->total_state_bytes(), full_bytes / 10);

  // Resolution shares the baseline's decoded objects — same pointers, same
  // hashes, same cut fingerprint as the full encode.
  const auto prepared = system.prepare_snapshot(second);
  ASSERT_NE(prepared, nullptr);
  ASSERT_EQ(prepared->nodes().size(), baseline->nodes().size());
  for (const auto& [node, entry] : prepared->nodes()) {
    const auto& base = baseline->nodes().at(node);
    EXPECT_EQ(entry.state.get(), base.state.get()) << "node " << node;
    EXPECT_EQ(entry.hash, base.hash) << "node " << node;
  }
}

TEST(SnapshotDeltaTest, ChurnReencodesOnlyChurnedNodesAndRestoresIdentically) {
  // Two systems of the same blueprint run the identical deterministic
  // script; only the checkpoint encoding differs. The delta cut must carry
  // the same per-node state as the full cut, byte-for-byte after restore.
  const auto script = [](System& system, bool delta) -> SnapshotId {
    system.set_delta_checkpoints(delta);
    system.start();
    EXPECT_TRUE(system.converge());
    const SnapshotId baseline_id = system.take_snapshot(0);
    EXPECT_NE(baseline_id, 0u);
    EXPECT_NE(system.prepare_snapshot(baseline_id), nullptr);
    // Churn one router: a session reset dirties it immediately; the second
    // cut follows before the teardown propagates far.
    const sim::NodeId churned = 12;
    system.router(churned).reset_session(system.network().neighbors(churned).front());
    return system.take_snapshot(0);
  };

  System with_delta(make_internet());
  System full_only(make_internet());
  const SnapshotId delta_id = script(with_delta, true);
  const SnapshotId full_id = script(full_only, false);
  ASSERT_NE(delta_id, 0u);
  ASSERT_NE(full_id, 0u);
  const Snapshot* delta_raw = with_delta.snapshots().find(delta_id);
  const Snapshot* full_raw = full_only.snapshots().find(full_id);
  ASSERT_NE(delta_raw, nullptr);
  ASSERT_NE(full_raw, nullptr);

  std::size_t full_nodes = 0;
  for (const auto& [node, checkpoint] : delta_raw->nodes) {
    if (!is_delta(checkpoint)) ++full_nodes;
  }
  EXPECT_GE(full_nodes, 1u);  // the churned node must re-encode...
  EXPECT_FALSE(is_delta(delta_raw->nodes.at(12)));
  // ...and churn must stay local: far fewer full encodes than nodes.
  EXPECT_LT(full_nodes, delta_raw->nodes.size() / 2);
  EXPECT_LT(delta_raw->total_state_bytes(), full_raw->total_state_bytes() / 2)
      << "delta cut did not shrink";

  // Same cut fingerprint (hashes are always full-state hashes) and
  // byte-identical restored state on both paths.
  EXPECT_EQ(delta_raw->cut_hash(), full_raw->cut_hash());
  const auto delta_prepared = with_delta.prepare_snapshot(delta_id);
  const auto full_prepared = full_only.prepare_snapshot(full_id);
  ASSERT_NE(delta_prepared, nullptr);
  ASSERT_NE(full_prepared, nullptr);
  System delta_clone(with_delta.prototype());
  System full_clone(full_only.prototype());
  ASSERT_TRUE(delta_clone.reset_from(*delta_prepared).ok());
  ASSERT_TRUE(full_clone.reset_from(*full_prepared).ok());
  for (std::size_t i = 0; i < delta_clone.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    EXPECT_EQ(delta_clone.router(node).state_hash(), full_clone.router(node).state_hash())
        << "restore diverged at node " << i;
  }
}

TEST(SnapshotDeltaTest, MissingOrWrongBaselineIsRejectedNotMisrestored) {
  System system(make_internet({2, 3, 4}));
  system.set_delta_checkpoints(true);
  system.start();
  ASSERT_TRUE(system.converge());
  const SnapshotId first = system.take_snapshot(0);
  ASSERT_NE(system.prepare_snapshot(first), nullptr);
  const SnapshotId second = system.take_snapshot(0);
  const Snapshot* raw = system.snapshots().find(second);
  ASSERT_NE(raw, nullptr);
  ASSERT_EQ(raw->baseline_id, first);

  const auto resolver = [&](sim::NodeId node) -> const Checkpointable* {
    return node < system.size() ? &system.router(node) : nullptr;
  };
  // No baseline at all.
  auto no_baseline = PreparedSnapshot::build(*raw, resolver, nullptr);
  ASSERT_FALSE(no_baseline.ok());
  EXPECT_EQ(no_baseline.error().code, "prepared.delta.baseline_mismatch");

  // A baseline with the wrong id (the delta snapshot itself, prepared).
  const auto wrong = system.prepare_snapshot(second);
  ASSERT_NE(wrong, nullptr);
  ASSERT_NE(wrong->id(), first);
  auto wrong_baseline = PreparedSnapshot::build(*raw, resolver, wrong.get());
  ASSERT_FALSE(wrong_baseline.ok());
  EXPECT_EQ(wrong_baseline.error().code, "prepared.delta.baseline_mismatch");

  // A delta envelope must never reach the byte decoder either.
  util::Bytes envelope{kCheckpointSameAsBaseline};
  util::ByteReader reader(envelope);
  auto direct = system.router(0).parse(reader);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.error().code, "router.restore.delta_unresolved");
}

TEST(SnapshotDeltaTest, LegacyFixedWidthStreamStillParses) {
  // A pre-v2 capture of an empty router: u32 session count, u32 adj-in
  // count, legacy Loc-RIB (u32 route count), u32 adj-out count, u32 flip
  // count — all zero. First byte 0x00 routes to the legacy decoder.
  System system(make_internet({2, 3, 4}));
  const util::Bytes legacy(20, 0x00);
  util::ByteReader reader(legacy);
  auto decoded = system.router(0).parse(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(reader.remaining(), 0u);
  auto status = system.router(0).apply(*decoded.value());
  EXPECT_TRUE(status.ok()) << status.error().to_string();
  EXPECT_EQ(system.router(0).loc_rib().size(), 0u);
}

// ---------------------------------------------------------------------------
// The acceptance pin: full vs delta, workers 1/2/4/8, one literal hash
// ---------------------------------------------------------------------------

[[nodiscard]] std::uint64_t topology27_hash(std::size_t workers, bool delta) {
  bgp::SystemBlueprint blueprint = make_internet();  // 27 routers
  bgp::inject_hijack(blueprint, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  bgp::inject_bug(blueprint, /*node=*/5, bgp::bugs::kCommunityLength);

  DiceOptions options;
  options.inputs_per_episode = 32;
  options.parallelism = workers;
  options.delta_snapshots = delta;
  Orchestrator dice(std::move(blueprint), options);
  EXPECT_TRUE(dice.bootstrap());
  GrammarStrategy strategy(/*corruption_rate=*/0.05, /*rng_seed=*/0xf1f1);
  std::size_t delta_nodes = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    delta_nodes += dice.run_episode(strategy).snapshot_delta_nodes;
  }
  // Episode 1 has no baseline (all full); episode 2 deltas the quiet nodes.
  if (delta) {
    EXPECT_GT(delta_nodes, 0u) << "delta path never engaged";
  } else {
    EXPECT_EQ(delta_nodes, 0u) << "delta engaged while disabled";
  }
  return fault_hash(dice.all_faults());
}

TEST(SnapshotDeltaTest, Topology27FaultHashByteIdenticalFullVsDelta) {
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(topology27_hash(workers, /*delta=*/true), kTopology27FaultHash)
        << "delta path, workers=" << workers;
    EXPECT_EQ(topology27_hash(workers, /*delta=*/false), kTopology27FaultHash)
        << "full path, workers=" << workers;
  }
}

}  // namespace
}  // namespace dice::snapshot
