// End-to-end tests of parallel exploration: DiCE episodes over the worker
// pool must be bit-identical to the serial path for any worker count, and
// the ScenarioMatrix driver must fan cells out deterministically.
#include <gtest/gtest.h>

#include <sstream>

#include "dice/orchestrator.hpp"
#include "explore/matrix.hpp"

namespace dice::explore {
namespace {

using core::DiceOptions;
using core::EpisodeResult;
using core::FaultReport;
using core::GrammarStrategy;
using core::Orchestrator;

[[nodiscard]] DiceOptions fast_options(std::size_t parallelism) {
  DiceOptions options;
  options.inputs_per_episode = 12;
  options.clone_event_budget = 60'000;
  options.parallelism = parallelism;
  return options;
}

/// Canonical byte-for-byte rendering of a fault list.
[[nodiscard]] std::string render(const std::vector<FaultReport>& faults) {
  std::ostringstream out;
  for (const FaultReport& fault : faults) out << fault.to_string() << "\n";
  return out.str();
}

/// Runs `episodes` grammar-strategy episodes over the hijacked 9-router
/// internet with the given worker count and returns (per-episode renders,
/// global render).
struct RunOutput {
  std::vector<std::string> episodes;
  std::vector<std::size_t> clones_run;
  std::vector<std::size_t> inputs_subjected;
  std::string all_faults;
};

[[nodiscard]] RunOutput run_hijack_exploration(std::size_t parallelism,
                                               std::size_t episodes) {
  bgp::SystemBlueprint blueprint = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(blueprint, /*victim=*/5, /*attacker=*/8);
  Orchestrator dice(std::move(blueprint), fast_options(parallelism));
  EXPECT_TRUE(dice.bootstrap());
  GrammarStrategy strategy(/*corruption_rate=*/0.05, /*rng_seed=*/0x5eed);
  RunOutput output;
  for (std::size_t i = 0; i < episodes; ++i) {
    const EpisodeResult episode = dice.run_episode(strategy);
    output.episodes.push_back(render(episode.faults));
    output.clones_run.push_back(episode.clones_run);
    output.inputs_subjected.push_back(episode.inputs_subjected);
  }
  output.all_faults = render(dice.all_faults());
  return output;
}

TEST(ParallelDiceTest, FaultSetIsByteIdenticalFor1And2And8Workers) {
  // The acceptance property: same seed => identical fault ledger contents
  // at every worker count. Worker scheduling may reorder clone completion
  // arbitrarily; the priority-ordered ledger must hide all of it.
  const RunOutput serial = run_hijack_exploration(/*parallelism=*/1, /*episodes=*/2);
  ASSERT_FALSE(serial.all_faults.empty()) << "hijack scenario should produce faults";
  for (const std::size_t workers : {2u, 8u}) {
    const RunOutput parallel = run_hijack_exploration(workers, /*episodes=*/2);
    EXPECT_EQ(parallel.episodes, serial.episodes) << "workers=" << workers;
    EXPECT_EQ(parallel.clones_run, serial.clones_run) << "workers=" << workers;
    EXPECT_EQ(parallel.inputs_subjected, serial.inputs_subjected)
        << "workers=" << workers;
    EXPECT_EQ(parallel.all_faults, serial.all_faults) << "workers=" << workers;
  }
}

TEST(ParallelDiceTest, ParallelEpisodeUsesThePool) {
  bgp::SystemBlueprint blueprint = bgp::make_internet({2, 3, 4});
  Orchestrator dice(std::move(blueprint), fast_options(4));
  ASSERT_NE(dice.pool(), nullptr);
  EXPECT_EQ(dice.pool()->workers(), 4u);
  ASSERT_TRUE(dice.bootstrap());
  GrammarStrategy strategy;
  const EpisodeResult episode = dice.run_episode(strategy);
  EXPECT_GT(episode.clones_run, 0u);
  EXPECT_EQ(dice.pool()->stats().tasks_run, 13u);  // baseline + 12 inputs
}

TEST(ParallelDiceTest, TypedExploreApiRunsCloneTasksEndToEnd) {
  // The typed ExplorePool::explore() path: build a snapshot by hand, fan a
  // baseline task plus one input task out, and check outcomes land in task
  // order with the same check results the orchestrator would compute.
  core::System live(bgp::make_line(2));
  live.start();
  ASSERT_TRUE(live.converge());
  const snapshot::SnapshotId id = live.take_snapshot(0);
  ASSERT_NE(id, 0u);
  const snapshot::Snapshot* snap = live.snapshots().find(id);
  ASSERT_NE(snap, nullptr);

  std::vector<CloneTask> tasks(2);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].index = i;
    tasks[i].blueprint = &live.blueprint();
    tasks[i].snap = snap;
    tasks[i].explorer = 0;
    tasks[i].event_budget = 60'000;
  }
  tasks[0].baseline = true;
  tasks[1].input = {0x00, 0x00};  // empty withdrawn+attrs UPDATE body
  tasks[1].inject_from = 1;

  ExplorePool pool(2);
  const std::vector<CloneOutcome> outcomes =
      pool.explore(tasks, [](core::System&, const CloneTask&, bool quiesced) {
        std::vector<core::FaultReport> faults;
        if (!quiesced) faults.push_back({});
        return faults;
      });
  ASSERT_EQ(outcomes.size(), 2u);
  for (const CloneOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.ran);
    EXPECT_TRUE(outcome.quiesced);
    EXPECT_TRUE(outcome.faults.empty());
  }
}

TEST(ParallelDiceTest, SerialOrchestratorHasNoPool) {
  Orchestrator dice(bgp::make_line(2), fast_options(1));
  EXPECT_EQ(dice.pool(), nullptr);
}

TEST(ParallelDiceTest, LiveSystemUnchangedByParallelExploration) {
  Orchestrator dice(bgp::make_internet({2, 3, 4}), fast_options(4));
  ASSERT_TRUE(dice.bootstrap());
  std::vector<std::uint64_t> hashes_before;
  for (std::size_t i = 0; i < dice.live().size(); ++i) {
    hashes_before.push_back(dice.live().router(static_cast<sim::NodeId>(i)).state_hash());
  }
  GrammarStrategy strategy(/*corruption_rate=*/0.2);
  (void)dice.run_episode(strategy);
  ASSERT_TRUE(dice.live().converge());
  for (std::size_t i = 0; i < dice.live().size(); ++i) {
    EXPECT_EQ(dice.live().router(static_cast<sim::NodeId>(i)).state_hash(),
              hashes_before[i]);
  }
}

// ---------------------------------------------------------------------------
// ScenarioMatrix
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<ScenarioSpec> small_scenarios() {
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back({"line3", bgp::make_line(3)});
  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  scenarios.push_back({"internet9-hijack", std::move(hijack)});
  return scenarios;
}

[[nodiscard]] MatrixOptions small_matrix_options() {
  MatrixOptions options;
  options.strategies = {StrategyKind::kGrammar, StrategyKind::kRandom};
  options.seeds = {1, 2};
  options.episodes_per_cell = 1;
  options.bootstrap_events = 300'000;
  options.dice.inputs_per_episode = 6;
  options.dice.clone_event_budget = 60'000;
  return options;
}

TEST(ScenarioMatrixTest, RunsTheFullCrossProduct) {
  ScenarioMatrix matrix(small_scenarios(), small_matrix_options());
  EXPECT_EQ(matrix.cell_count(), 8u);  // 2 scenarios x 2 strategies x 2 seeds
  ExplorePool pool(2);
  const MatrixResult result = matrix.run(pool, {});
  ASSERT_EQ(result.cells.size(), 8u);
  for (const CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.bootstrap_converged) << cell.scenario;
    EXPECT_EQ(cell.episodes, 1u);
    EXPECT_GT(cell.clones_run, 0u) << cell.scenario;
  }
  // Nested parallelism (the default): the pool ran the 8 cell tasks PLUS
  // every episode's clone batch as child tasks of its cell.
  std::size_t clones_total = 0;
  for (const CellResult& cell : result.cells) clones_total += cell.clones_run;
  EXPECT_EQ(result.pool.tasks_run, 8u + clones_total);
  EXPECT_EQ(result.pool.child_tasks, clones_total);
  EXPECT_EQ(result.pool.batches, 1u);
  EXPECT_EQ(result.pool.child_batches, 8u) << "one episode batch per cell";
  // The hijack scenario must surface its standing operator mistake in
  // every strategy/seed cell.
  bool hijack_found = false;
  for (const CellResult& cell : result.cells) {
    if (cell.scenario == "internet9-hijack") hijack_found |= cell.faults > 0;
  }
  EXPECT_TRUE(hijack_found);
  EXPECT_FALSE(result.faults.empty());
}

TEST(ScenarioMatrixTest, RepeatRunsAreDeterministicAcrossWorkerCounts) {
  const auto run_once = [](std::size_t workers) {
    ScenarioMatrix matrix(small_scenarios(), small_matrix_options());
    ExplorePool pool(workers);
    return matrix.run(pool, {});
  };
  const MatrixResult a = run_once(1);
  const MatrixResult b = run_once(2);
  const MatrixResult c = run_once(4);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  ASSERT_EQ(a.faults.size(), c.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].to_string(), b.faults[i].to_string());
    EXPECT_EQ(a.faults[i].to_string(), c.faults[i].to_string());
  }
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].faults, b.cells[i].faults);
    EXPECT_EQ(a.cells[i].clones_run, c.cells[i].clones_run);
  }
}

TEST(ScenarioMatrixTest, ConcolicCellsShareTheSolverCacheAcrossEpisodes) {
  // One concolic cell, two episodes: the second episode rebuilds its
  // engine and pool from scratch, but memoized negations must hit.
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back({"line3", bgp::make_line(3)});
  MatrixOptions options;
  options.strategies = {StrategyKind::kConcolic};
  options.seeds = {7};
  options.episodes_per_cell = 2;
  options.bootstrap_events = 300'000;
  options.dice.inputs_per_episode = 8;
  options.dice.clone_event_budget = 60'000;
  ScenarioMatrix matrix(std::move(scenarios), options);
  ExplorePool pool(2);
  const MatrixResult result = matrix.run(pool, {});
  EXPECT_GT(result.solver_cache.stores, 0u);
  EXPECT_GT(result.solver_cache.hits, 0u)
      << "second episode should reuse memoized constraint solutions";
}

}  // namespace
}  // namespace dice::explore
