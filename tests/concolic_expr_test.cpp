#include <gtest/gtest.h>

#include "concolic/expr.hpp"

namespace dice::concolic {
namespace {

TEST(ExprPoolTest, ConstantsAreInterned) {
  ExprPool pool;
  const ExprRef a = pool.constant(7, 8);
  const ExprRef b = pool.constant(7, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, pool.constant(7, 16));  // width participates in identity
}

TEST(ExprPoolTest, ConstantFolding) {
  ExprPool pool;
  const ExprRef sum = pool.binary(Op::kAdd, pool.constant(200, 8), pool.constant(100, 8));
  EXPECT_EQ(pool.node(sum).op, Op::kConst);
  EXPECT_EQ(pool.node(sum).value, (200 + 100) & 0xff);  // wraps at width
}

TEST(ExprPoolTest, AlgebraicIdentities) {
  ExprPool pool;
  const ExprRef x = pool.sym_byte(0);
  EXPECT_EQ(pool.binary(Op::kAdd, x, pool.constant(0, 8)), x);
  EXPECT_EQ(pool.binary(Op::kOr, pool.constant(0, 8), x), x);
  // BoolAnd with constant true collapses to the other side.
  const ExprRef cond = pool.binary(Op::kEq, x, pool.constant(1, 8));
  EXPECT_EQ(pool.binary(Op::kBoolAnd, pool.constant(1, 1), cond), cond);
  EXPECT_EQ(pool.node(pool.binary(Op::kBoolAnd, pool.constant(0, 1), cond)).value, 0u);
}

TEST(ExprPoolTest, EvalSymAndArith) {
  ExprPool pool;
  const ExprRef x = pool.sym_byte(0);
  const ExprRef y = pool.sym_byte(1);
  const ExprRef expr = pool.binary(Op::kAdd, x, pool.binary(Op::kMul, y, pool.constant(2, 8)));
  const std::vector<std::uint8_t> input{5, 10};
  EXPECT_EQ(pool.eval(expr, input), 25u);
}

TEST(ExprPoolTest, EvalOutOfRangeSymReadsZero) {
  ExprPool pool;
  const ExprRef x = pool.sym_byte(9);
  const std::vector<std::uint8_t> input{1};
  EXPECT_EQ(pool.eval(x, input), 0u);
}

TEST(ExprPoolTest, ZextTruncConcatExtract) {
  ExprPool pool;
  const ExprRef x = pool.sym_byte(0);
  const ExprRef wide = pool.zext(x, 16);
  EXPECT_EQ(pool.node(wide).width, 16);
  const ExprRef back = pool.trunc(wide, 8);
  // trunc(zext(x)) is not structurally simplified, but evaluates equal.
  const std::vector<std::uint8_t> input{0xcd};
  EXPECT_EQ(pool.eval(back, input), 0xcdU);

  const ExprRef hi = pool.sym_byte(0);
  const ExprRef lo = pool.sym_byte(1);
  const ExprRef cat = pool.concat(hi, lo);
  const std::vector<std::uint8_t> in2{0x12, 0x34};
  EXPECT_EQ(pool.eval(cat, in2), 0x1234u);
  EXPECT_EQ(pool.eval(pool.extract(cat, 8, 8), in2), 0x12u);
  EXPECT_EQ(pool.eval(pool.extract(cat, 0, 8), in2), 0x34u);
}

TEST(ExprPoolTest, ComparisonsAndBools) {
  ExprPool pool;
  const ExprRef x = pool.sym_byte(0);
  const ExprRef lt = pool.binary(Op::kUlt, x, pool.constant(10, 8));
  const ExprRef eq = pool.binary(Op::kEq, x, pool.constant(5, 8));
  const ExprRef both = pool.binary(Op::kBoolAnd, lt, eq);
  const std::vector<std::uint8_t> five{5};
  const std::vector<std::uint8_t> nine{9};
  EXPECT_EQ(pool.eval(both, five), 1u);
  EXPECT_EQ(pool.eval(both, nine), 0u);
}

TEST(ExprPoolTest, BoolNotPushesThroughComparisons) {
  ExprPool pool;
  const ExprRef x = pool.sym_byte(0);
  const ExprRef lt = pool.binary(Op::kUlt, x, pool.constant(10, 8));
  const ExprRef not_lt = pool.bool_not(lt);
  // !(x < 10) becomes (10 <= x).
  EXPECT_EQ(pool.node(not_lt).op, Op::kUle);
  const std::vector<std::uint8_t> ten{10};
  EXPECT_EQ(pool.eval(not_lt, ten), 1u);
  // Double negation returns the original node.
  const ExprRef raw = pool.binary(Op::kBoolAnd, lt, lt);
  EXPECT_EQ(pool.bool_not(pool.bool_not(raw)), raw);
}

TEST(ExprPoolTest, IteSelectsBranch) {
  ExprPool pool;
  const ExprRef x = pool.sym_byte(0);
  const ExprRef cond = pool.binary(Op::kUlt, x, pool.constant(5, 8));
  const ExprRef ite = pool.ite(cond, pool.constant(1, 8), pool.constant(2, 8));
  const std::vector<std::uint8_t> lo{0};
  const std::vector<std::uint8_t> hi{200};
  EXPECT_EQ(pool.eval(ite, lo), 1u);
  EXPECT_EQ(pool.eval(ite, hi), 2u);
}

TEST(ExprPoolTest, CollectSyms) {
  ExprPool pool;
  const ExprRef expr = pool.binary(
      Op::kAdd, pool.binary(Op::kXor, pool.sym_byte(3), pool.sym_byte(7)), pool.sym_byte(3));
  std::unordered_set<std::uint32_t> syms;
  pool.collect_syms(expr, syms);
  EXPECT_EQ(syms.size(), 2u);
  EXPECT_TRUE(syms.contains(3));
  EXPECT_TRUE(syms.contains(7));
}

TEST(ExprPoolTest, ShiftSemantics) {
  ExprPool pool;
  const ExprRef x = pool.sym_byte(0);
  const std::vector<std::uint8_t> input{0x81};
  EXPECT_EQ(pool.eval(pool.binary(Op::kShl, x, pool.constant(1, 8)), input), 0x02u);
  EXPECT_EQ(pool.eval(pool.binary(Op::kLshr, x, pool.constant(7, 8)), input), 0x01u);
  // Shift >= width yields 0 (defined semantics, no UB).
  EXPECT_EQ(pool.eval(pool.binary(Op::kShl, x, pool.constant(8, 8)), input), 0u);
}

TEST(ExprPoolTest, DivRemByZeroDefined) {
  ExprPool pool;
  const ExprRef x = pool.sym_byte(0);
  const std::vector<std::uint8_t> input{42};
  EXPECT_EQ(pool.eval(pool.binary(Op::kUDiv, x, pool.constant(0, 8)), input), 0xffu);
  EXPECT_EQ(pool.eval(pool.binary(Op::kURem, x, pool.constant(0, 8)), input), 42u);
}

TEST(ExprPoolTest, ToStringRendersStructure) {
  ExprPool pool;
  const ExprRef expr =
      pool.binary(Op::kEq, pool.sym_byte(1), pool.constant(66, 8));
  const std::string text = pool.to_string(expr);
  EXPECT_NE(text.find("in[1]"), std::string::npos);
  EXPECT_NE(text.find("66"), std::string::npos);
  EXPECT_NE(text.find("eq"), std::string::npos);
}

}  // namespace
}  // namespace dice::concolic
