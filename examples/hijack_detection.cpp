// Prefix-hijack detection on the paper's 27-router Internet-like topology
// (Figure 1 scale), modeled after the 2008 YouTube / Pakistan Telecom
// incident: a stub AS is misconfigured to originate a prefix owned by
// another stub. DiCE detects the Multiple-Origin-AS conflict through the
// narrow information-sharing interface — each AS publishes only hashed
// (prefix, origin) claims, and only the legitimate owner can recognize the
// hash of its own prefix.
#include <cstdio>

#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"

int main() {
  using namespace dice;

  bgp::SystemBlueprint blueprint = bgp::make_internet();  // 3+8+16 = 27 routers
  const sim::NodeId victim = blueprint.node_by_name("r12");    // a stub AS
  const sim::NodeId attacker = blueprint.node_by_name("r20");  // another stub

  std::printf("topology: %zu routers (tier-1: 3, tier-2: 8, stubs: 16)\n",
              blueprint.size());
  const util::IpPrefix owned = bgp::node_prefix(victim);
  const util::IpPrefix stolen{owned.address(), 24};
  std::printf("victim:   r%u (AS%u) originates %s\n", victim, bgp::node_asn(victim),
              owned.to_string().c_str());
  std::printf("attacker: r%u (AS%u) misconfigured to originate the more-specific %s\n\n",
              attacker, bgp::node_asn(attacker), stolen.to_string().c_str());
  bgp::inject_hijack(blueprint, victim, attacker, /*more_specific=*/true);

  const core::DiceOptions options = explore::CampaignOptions::builder()
                                        .inputs_per_episode(8)
                                        .build()
                                        .take()
                                        .to_dice_options();
  core::Orchestrator dice(std::move(blueprint), options);
  if (!dice.bootstrap()) {
    std::puts("live system failed to converge");
    return 1;
  }

  // How far did the hijack spread? The more-specific /24 wins by longest-
  // prefix match wherever it propagates.
  std::size_t poisoned = 0;
  for (std::size_t i = 0; i < dice.live().size(); ++i) {
    const auto* route = dice.live().router(static_cast<sim::NodeId>(i)).loc_rib().find(stolen);
    if (route != nullptr &&
        (route->local()
             ? dice.live().router(static_cast<sim::NodeId>(i)).config().asn
             : route->attrs.as_path.origin_asn().value_or(0)) == bgp::node_asn(attacker)) {
      ++poisoned;
    }
  }
  std::printf("live state: %zu/%zu routers carry the attacker's more-specific route\n\n",
              poisoned, dice.live().size());

  core::GrammarStrategy strategy;
  const core::EpisodeResult episode = dice.run_episode(strategy);
  std::printf("%s\n", core::render_fault_table(episode.faults).c_str());

  for (const core::FaultReport& fault : episode.faults) {
    if (fault.check == "route-origin") {
      std::puts("hijack detected via the privacy-preserving origin check.");
      return 0;
    }
  }
  std::puts("hijack NOT detected");
  return 1;
}
