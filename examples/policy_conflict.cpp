// Policy-conflict detection: Griffin's BAD GADGET dispute wheel.
//
// Three ASes each prefer the route through their clockwise neighbor over
// their direct route to the destination — a configuration with no stable
// routing. Individually every AS's policy is locally sensible; the
// conflict only exists globally, which is why the paper calls for online
// *system-wide* exploration. DiCE flags it two ways: clones never quiesce
// within budget, and per-prefix best-route flip counters blow past the
// oscillation threshold.
#include <cstdio>

#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"

int main() {
  using namespace dice;

  bgp::SystemBlueprint blueprint = bgp::make_bad_gadget();
  std::printf("BAD GADGET: destination r0 (AS%u), wheel r1-r2-r3\n", bgp::node_asn(0));
  for (sim::NodeId i = 1; i <= 3; ++i) {
    std::printf("  r%u prefers paths via r%u over its direct route\n", i,
                i == 3 ? 1 : i + 1);
  }

  const core::DiceOptions options = explore::CampaignOptions::builder()
                                        .inputs_per_episode(4)
                                        .clone_event_budget(20'000)
                                        .oscillation_threshold(8)
                                        .build()
                                        .take()
                                        .to_dice_options();
  core::Orchestrator dice(std::move(blueprint), options);

  const bool converged = dice.bootstrap(/*max_events=*/20'000);
  std::printf("\nlive system converged: %s (expected: no)\n", converged ? "yes" : "no");

  core::GrammarStrategy strategy;
  const core::EpisodeResult episode = dice.run_episode(strategy);
  std::printf("clones run: %zu, non-quiescent: %zu\n\n", episode.clones_run,
              episode.clones_non_quiescent);
  std::printf("%s", core::render_fault_table(episode.faults).c_str());

  for (const core::FaultReport& fault : episode.faults) {
    if (fault.fault_class == core::FaultClass::kPolicyConflict) {
      std::puts("\npolicy conflict detected.");
      return 0;
    }
  }
  std::puts("\npolicy conflict NOT detected");
  return 1;
}
