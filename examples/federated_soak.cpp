// Federated soak: DiCE over a heterogeneous federation — nodes running
// different BGP engines behind the NodeImplementation boundary, checked
// against each other by the differential fault class.
//
// Three short acts:
//   1. a mixed-engine internet soak — odd-numbered routers run the bgp2
//      FSM engine, even ones the reference engine; both speak the same
//      wire protocol, so hijack faults surface exactly as in a
//      homogeneous run;
//   2. a divergence hunt — one FSM node carries a seeded decision defect
//      (bugs::kLongPathPreferred, honored only by the bgp2 engine);
//      the differential check replays its decisions through the
//      reference procedure and reports implementation-divergence faults;
//   3. the implementation axis — the same scenarios fanned across
//      {as-authored, all-fsm}: one campaign, every cell re-homed onto a
//      single engine with the axis entry innermost in the cell order.
//
//   ./federated_soak
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bgp/bugs.hpp"
#include "explore/campaign.hpp"

using namespace dice;

namespace {

[[nodiscard]] std::vector<explore::ScenarioSpec> federation() {
  std::vector<explore::ScenarioSpec> specs;

  bgp::SystemBlueprint mixed = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(mixed, /*victim=*/5, /*attacker=*/8);
  for (std::size_t node = 0; node < mixed.size(); ++node) {
    if (node % 2 == 1) mixed.set_implementation(node, "fsm");
  }
  specs.push_back({"internet9-hijack-mixed", std::move(mixed)});

  bgp::SystemBlueprint divergent = bgp::make_ring(4);
  divergent.set_implementation(3, "fsm");
  bgp::inject_bug(divergent, /*node=*/3, bgp::bugs::kLongPathPreferred);
  specs.push_back({"ring4-divergent", std::move(divergent)});

  return specs;
}

[[nodiscard]] explore::CampaignOptions soak_options(
    std::vector<std::string> implementations) {
  auto built = explore::CampaignOptions::builder()
                   .strategies({explore::StrategyKind::kGrammar,
                                explore::StrategyKind::kRandom})
                   .seeds({1, 2})
                   .implementations(std::move(implementations))
                   .budgets({.episodes_per_cell = 1,
                             .inputs_per_episode = 4,
                             .bootstrap_events = 300'000,
                             .clone_event_budget = 60'000})
                   .parallelism(2)
                   .build();
  return std::move(built).take();
}

/// Streams findings as cells land, tagging each with its axis entry.
struct FederationPrinter : explore::CampaignObserver {
  std::size_t divergences = 0;
  void on_fault(const explore::CellDescriptor&,
                const core::FaultReport& fault) override {
    if (fault.fault_class == core::FaultClass::kImplementationDivergence) {
      ++divergences;
    }
    std::printf("    ! %s\n", fault.to_string().c_str());
  }
  void on_cell_done(const explore::CellDescriptor& cell,
                    const explore::CellResult& result) override {
    const std::string impl =
        cell.implementation.empty() ? "as-authored" : std::string(cell.implementation);
    std::printf("  [%zu] %s/%s/s%llu impl=%s: %s, %zu fault(s)\n", cell.index,
                std::string(cell.scenario).c_str(), std::string(cell.strategy).c_str(),
                static_cast<unsigned long long>(cell.seed), impl.c_str(),
                result.completed ? "completed" : "CANCELLED", result.faults);
  }
};

}  // namespace

int main() {
  // --- Acts 1 + 2: mixed engines, seeded divergence ------------------------
  std::puts("== federated soak (mixed engines, one seeded decision defect) ==");
  explore::Campaign campaign(federation(), soak_options({std::string()}));
  FederationPrinter printer;
  const explore::CampaignResult run = campaign.run(&printer);
  std::printf("soak: %zu/%zu cells, %zu distinct fault(s), %zu divergence(s), %.0f ms\n\n",
              run.cells_completed, run.cells.size(), run.faults.size(),
              printer.divergences, run.wall_ms);

  // --- Act 3: the implementation axis --------------------------------------
  std::puts("== implementation axis (as-authored vs all-fsm, innermost) ==");
  explore::Campaign axis(federation(), soak_options({std::string(), "fsm"}));
  FederationPrinter axis_printer;
  const explore::CampaignResult fanned = axis.run(&axis_printer);
  std::printf("axis run: %zu/%zu cells (2x the soak — every cell re-run all-fsm)\n",
              fanned.cells_completed, fanned.cells.size());

  // Smoke contract (CI runs this binary): the mixed soak finds the hijack
  // AND the seeded divergence; the axis doubles the cell count and
  // completes; an all-fsm re-home of the divergent ring still diverges.
  bool hijack_found = false;
  bool divergence_found = false;
  for (const core::FaultReport& fault : run.faults) {
    if (fault.fault_class == core::FaultClass::kOperatorMistake) hijack_found = true;
    if (fault.fault_class == core::FaultClass::kImplementationDivergence) {
      divergence_found = true;
    }
  }
  const bool ok = run.cells_completed == run.cells.size() && hijack_found &&
                  divergence_found && fanned.cells.size() == 2 * run.cells.size() &&
                  fanned.cells_completed == fanned.cells.size();
  std::printf("\n%s\n", ok ? "federated soak OK" : "federated soak FAILED");
  return ok ? 0 : 1;
}
