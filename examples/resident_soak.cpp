// Resident soak: kill-and-restart walkthrough of svc::SoakService and its
// persistent warm-start store (docs/SERVICE.md).
//
// Three acts over the topology27 receipt scenario:
//   1. a daemon runs 2 rounds with a store attached, then "dies" (the
//      destructor — a SIGTERM'd process leaves exactly what the last
//      round-boundary persist wrote, which is the point of tmp+rename);
//   2. a new daemon restarts over the same store: it loads, primes its
//      bootstrap cache, and its first round resumes the live system from
//      the store instead of re-converging (bootstrap_from_cache receipts);
//   3. the restarted daemon's round — round 3 of the interrupted history —
//      must carry byte-identical fault bytes to round 3 of an
//      uninterrupted 3-round run, and the liveness-first SoakObserver sees
//      every cell without moving those bytes.
//
// Exits nonzero on any contract breach (CI smoke-runs this binary).
//
//   ./resident_soak
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bgp/bugs.hpp"
#include "bgp/topology.hpp"
#include "svc/soak_observer.hpp"
#include "svc/soak_service.hpp"

using namespace dice;

namespace {

#define CHECK(cond, what)                                  \
  do {                                                     \
    if (!(cond)) {                                         \
      std::printf("CONTRACT BREACH: %s\n", what);          \
      return EXIT_FAILURE;                                 \
    }                                                      \
  } while (0)

[[nodiscard]] std::vector<explore::ScenarioSpec> scenarios() {
  bgp::SystemBlueprint fig1 = bgp::make_internet();
  bgp::inject_hijack(fig1, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
  bgp::inject_bug(fig1, 5, bgp::bugs::kCommunityLength);
  std::vector<explore::ScenarioSpec> specs;
  specs.push_back({"topology27", std::move(fig1)});
  return specs;
}

[[nodiscard]] svc::SoakOptions soak_options(const std::string& store) {
  svc::SoakOptions options;
  options.campaign = explore::CampaignOptions::builder()
                         .strategies({explore::StrategyKind::kGrammar})
                         .seeds({1})
                         .episodes_per_cell(2)
                         .inputs_per_episode(32)
                         .bootstrap_events(2'000'000)
                         .strategy_seed(0xf1f1)
                         .parallelism(2)
                         .build()
                         .take();
  options.store_path = store;
  return options;
}

}  // namespace

int main() {
  const std::string store = "resident_soak_store.dsvc";
  std::remove(store.c_str());

  // --- reference: an uninterrupted 3-round daemon (no store) --------------
  std::puts("== act 0: uninterrupted 3-round reference ==");
  std::uint64_t reference_round3_hash = 0;
  {
    svc::SoakService reference(scenarios(), soak_options(""));
    const svc::SoakReport report = reference.run(3);
    CHECK(report.rounds == 3, "reference daemon did not complete 3 rounds");
    reference_round3_hash = report.round_summaries[2].fault_hash;
    std::printf("  3 rounds, round-3 fault hash %016llx\n",
                static_cast<unsigned long long>(reference_round3_hash));
  }

  // --- act 1: run 2 rounds, then die -------------------------------------
  std::puts("== act 1: daemon runs 2 rounds, then is killed ==");
  {
    svc::SoakService daemon(scenarios(), soak_options(store));
    const svc::SoakReport report = daemon.run(2);
    CHECK(report.rounds == 2, "daemon did not complete 2 rounds");
    CHECK(!report.warm_started, "first boot must be cold");
    std::printf("  2 rounds done, store persisted at each round boundary\n");
    // Scope exit == SIGTERM: no graceful persist beyond what each round
    // boundary already wrote atomically.
  }

  // --- act 2: restart over the store --------------------------------------
  std::puts("== act 2: a new daemon restarts over the store ==");
  svc::SoakObserver wall([](const explore::CellDescriptor& cell,
                            const explore::CellResult& result) {
    std::printf("  [wall] cell %zu done: %zu fault(s), bootstrap %s\n", cell.index,
                result.faults, result.bootstrap_from_cache ? "RESUMED" : "converged");
  });
  svc::SoakOptions revived_options = soak_options(store);
  revived_options.campaign.telemetry.wall_observer = &wall;
  svc::SoakService revived(scenarios(), revived_options);
  CHECK(revived.store_error().code.empty(), "store load reported an error");
  const svc::SoakReport boot = revived.report();
  CHECK(boot.warm_started, "restart did not warm-start from the store");
  CHECK(boot.primed_from_store > 0, "no live state primed from the store");
  std::printf("  warm start: %zu live state(s) primed from %s\n",
              boot.primed_from_store, store.c_str());

  // --- act 3: round 3 of the interrupted history --------------------------
  std::puts("== act 3: the restarted daemon's first round is round 3 ==");
  const svc::RoundSummary round3 = revived.run_round();
  CHECK(round3.cells_from_cache == 1,
        "round 3 re-converged instead of resuming from the store");
  CHECK(round3.fault_hash == reference_round3_hash,
        "round-3 fault bytes diverged from the uninterrupted run");
  const svc::SoakObserver::Stats stats = wall.stats();
  CHECK(stats.cells_seen == 1, "the wall-clock observer missed a cell");
  std::printf("  round 3: bootstrap %.3f ms (resumed), fault hash %016llx == reference\n",
              round3.bootstrap_ms,
              static_cast<unsigned long long>(round3.fault_hash));

  std::remove(store.c_str());
  std::puts("\nresident_soak: OK — kill-and-restart is byte-equivalent to staying up");
  return EXIT_SUCCESS;
}
