// Campaign soak: the streaming, cancellable front door of the exploration
// stack (explore::Campaign).
//
// Three short acts over the same scenarios:
//   1. a streaming run — an observer prints every fault the moment its
//      cell lands (canonical order, while later cells still execute);
//   2. a cancelled run — the observer fires a StopSource after the first
//      cell, and the campaign returns a well-formed partial result whose
//      completed cells carry the exact same fault bytes as act 1;
//   3. a time-boxed run — an already-expired deadline skips every cell,
//      the "soak until the maintenance window closes" pattern.
//
//   ./campaign_soak
#include <chrono>
#include <cstdio>
#include <utility>

#include "explore/campaign.hpp"

using namespace dice;

namespace {

[[nodiscard]] std::vector<explore::ScenarioSpec> scenarios() {
  std::vector<explore::ScenarioSpec> specs;
  bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
  bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
  specs.push_back({"internet9-hijack", std::move(hijack)});
  specs.push_back({"ring6", bgp::make_ring(6)});
  return specs;
}

[[nodiscard]] explore::CampaignOptions small_campaign(std::size_t workers) {
  // Grouped knobs replace the old DiceOptions/MatrixOptions sprawl; the
  // builder validates (try seeds({}) — build() returns an error instead of
  // a silently empty matrix).
  auto built = explore::CampaignOptions::builder()
                   .strategies({explore::StrategyKind::kGrammar,
                                explore::StrategyKind::kRandom})
                   .seeds({1, 2})
                   .budgets({.episodes_per_cell = 1,
                             .inputs_per_episode = 4,
                             .bootstrap_events = 300'000,
                             .clone_event_budget = 60'000})
                   .parallelism(workers)
                   .build();
  return std::move(built).take();
}

/// Streams findings as cells land: faults print mid-run, in canonical
/// order, long before the whole matrix finishes.
struct ConsolePrinter : explore::CampaignObserver {
  void on_fault(const explore::CellDescriptor&,
                const core::FaultReport& fault) override {
    std::printf("    ! %s\n", fault.to_string().c_str());
  }
  void on_cell_done(const explore::CellDescriptor& cell,
                    const explore::CellResult& result) override {
    std::printf("  [%zu] %s/%s/s%llu: %s, %zu clones, %zu fault(s)\n", cell.index,
                std::string(cell.scenario).c_str(), std::string(cell.strategy).c_str(),
                static_cast<unsigned long long>(cell.seed),
                result.completed ? "completed" : "CANCELLED", result.clones_run,
                result.faults);
  }
};

/// Act 2's controller: watches the stream and pulls the plug early.
struct StopAfterFirstCell : ConsolePrinter {
  explore::StopSource source;
  void on_cell_done(const explore::CellDescriptor& cell,
                    const explore::CellResult& result) override {
    ConsolePrinter::on_cell_done(cell, result);
    source.request_stop();  // cancel the rest of the soak, keep what landed
  }
};

}  // namespace

int main() {
  // --- Act 1: stream a full run -------------------------------------------
  std::puts("== streaming campaign (2 scenarios x 2 strategies x 2 seeds) ==");
  explore::Campaign campaign(scenarios(), small_campaign(/*workers=*/2));
  ConsolePrinter printer;
  const explore::CampaignResult full = campaign.run(&printer);
  std::printf("full run: %zu/%zu cells, %zu distinct fault(s), %.0f ms\n\n",
              full.cells_completed, full.cells.size(), full.faults.size(),
              full.wall_ms);

  // --- Act 2: cancel mid-soak from the event stream -----------------------
  std::puts("== cancelled campaign (stop requested after the first cell) ==");
  explore::Campaign cancellable(scenarios(), small_campaign(/*workers=*/1));
  StopAfterFirstCell stopper;
  const explore::CampaignResult partial =
      cancellable.run(&stopper, stopper.source.token());
  std::printf("partial run: stopped=%s, %zu/%zu cells completed, %zu fault(s) kept\n\n",
              partial.stopped ? "yes" : "no", partial.cells_completed,
              partial.cells.size(), partial.faults.size());

  // --- Act 3: time-boxed soak ---------------------------------------------
  std::puts("== time-boxed campaign (deadline already expired) ==");
  explore::CampaignOptions boxed = small_campaign(/*workers=*/2);
  boxed.deadline = explore::StopToken::Clock::now();  // window already closed
  explore::Campaign timeboxed(scenarios(), boxed);
  const explore::CampaignResult skipped = timeboxed.run();
  std::printf("time-boxed run: stopped=%s, %zu/%zu cells completed\n",
              skipped.stopped ? "yes" : "no", skipped.cells_completed,
              skipped.cells.size());

  // Smoke contract (CI runs this binary): streaming found the hijack,
  // cancellation kept a valid prefix, the deadline skipped everything.
  const bool ok = !full.stopped && !full.faults.empty() && partial.stopped &&
                  partial.cells_completed == 1 && skipped.cells_completed == 0;
  std::printf("\n%s\n", ok ? "campaign soak OK" : "campaign soak FAILED");
  return ok ? 0 : 1;
}
