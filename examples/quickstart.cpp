// Quickstart: the smallest complete DiCE deployment.
//
// Builds a 3-router BGP system, converges it, and runs one exploration
// episode (snapshot -> clone per input -> subject input -> check). With a
// clean system the run reports zero faults; flip the `kInjectHijack` knob
// below to watch the origin checker fire.
//
//   ./quickstart            # clean system
//   ./quickstart hijack     # with an injected operator mistake
#include <cstdio>
#include <cstring>

#include "dice/orchestrator.hpp"
#include "explore/campaign.hpp"

int main(int argc, char** argv) {
  using namespace dice;

  const bool inject = argc > 1 && std::strcmp(argv[1], "hijack") == 0;

  // 1. Describe the system: three routers in a line, eBGP everywhere,
  //    each originating one /16. Blueprints can also be parsed from
  //    BIRD-flavored config text (bgp/config.hpp).
  bgp::SystemBlueprint blueprint = bgp::make_line(3);
  if (inject) {
    // Operator mistake: r2 also originates r0's prefix.
    bgp::inject_hijack(blueprint, /*victim=*/0, /*attacker=*/2);
  }

  // 2. Bring up DiCE around the live system. Options go through the
  //    Campaign builder (validated, grouped — docs/TUNING.md) and lower to
  //    the orchestrator struct this single-system harness drives directly.
  const core::DiceOptions options = explore::CampaignOptions::builder()
                                        .inputs_per_episode(16)
                                        .build()
                                        .take()
                                        .to_dice_options();
  core::Orchestrator dice(std::move(blueprint), options);
  if (!dice.bootstrap()) {
    std::puts("live system failed to converge");
    return 1;
  }
  std::printf("live system converged: %zu routes across %zu routers\n",
              dice.live().total_loc_rib_routes(), dice.live().size());

  // 3. One exploration episode with the concolic input generator.
  core::ConcolicStrategy strategy;
  const core::EpisodeResult episode = dice.run_episode(strategy);

  std::printf("episode %llu: explorer=r%u snapshot=%llu inputs=%zu clones=%zu\n",
              static_cast<unsigned long long>(episode.episode), episode.explorer,
              static_cast<unsigned long long>(episode.snapshot_id),
              episode.inputs_subjected, episode.clones_run);
  std::printf("stage timings: snapshot %.2fms, clone %.2fms, explore %.2fms, check %.2fms\n",
              episode.snapshot_ms, episode.clone_ms, episode.explore_ms, episode.check_ms);
  std::printf("concolic: %llu executions, %llu unique paths, %llu branch points\n",
              static_cast<unsigned long long>(strategy.stats().executions),
              static_cast<unsigned long long>(strategy.stats().unique_paths),
              static_cast<unsigned long long>(strategy.stats().branch_points));

  // 4. Report.
  std::printf("\n%s", core::render_fault_table(episode.faults).c_str());
  return 0;
}
