// The paper's introduction motivates DiCE with "performance and
// reliability problems due to emergent behavior resulting from a local
// session reset". This example reproduces that setting with the online
// runner:
//
//   1. the 27-router system converges and serves;
//   2. a tier-1 <-> tier-1 session is administratively reset — routes are
//      withdrawn system-wide and re-learned when the session returns
//      (BGP path hunting / churn);
//   3. DiCE keeps running episodes throughout, snapshotting whatever state
//      the live system is in (including mid-churn) — demonstrating that
//      exploration "starts from current system state" (insight i) and
//      never disturbs the deployment.
#include <cstdio>

#include "dice/runner.hpp"
#include "explore/campaign.hpp"

int main() {
  using namespace dice;

  const core::DiceOptions options = explore::CampaignOptions::builder()
                                        .inputs_per_episode(8)
                                        .build()
                                        .take()
                                        .to_dice_options();
  core::Orchestrator dice(bgp::make_internet(), options);
  if (!dice.bootstrap()) {
    std::puts("live system failed to converge");
    return 1;
  }
  core::System& live = dice.live();
  std::printf("converged: %zu routes, %zu sessions\n\n", live.total_loc_rib_routes(),
              live.established_sessions());

  // Schedule the local session reset 45 simulated seconds in: tier-1 r0
  // drops its session to tier-1 r1 (auto-restart brings it back 1s later).
  live.simulator().schedule_after(45 * sim::kSecond, [&live] {
    std::puts(">> r0 resets its session to r1 (local operator action)");
    live.router(0).reset_session(1);
  });

  const std::size_t routes_before = live.total_loc_rib_routes();
  // Churn from a tier-1 peering reset flows to *customers* (valley-free
  // exports); watch t2(0) = node 3, a customer of r0.
  const sim::NodeId bystander = 3;
  const std::uint64_t updates_before = live.router(bystander).stats().updates_received;

  core::GrammarStrategy strategy;
  core::RunnerOptions runner_options;
  runner_options.episode_period = 20 * sim::kSecond;  // episodes at t=20,40,60,80...
  runner_options.max_episodes = 5;
  core::ContinuousRunner runner(dice, strategy, runner_options);
  std::size_t standing_faults = 0;
  runner.set_fault_listener([&standing_faults](const core::FaultReport& fault) {
    if (!fault.potential) ++standing_faults;
    std::printf("   %s\n", fault.to_string().c_str());
  });
  runner.set_episode_listener([&live](const core::EpisodeResult& episode) {
    std::printf("episode %llu @t=%llus: explorer=r%u clones=%zu faults=%zu "
                "(live: %zu routes, %zu sessions)\n",
                static_cast<unsigned long long>(episode.episode),
                static_cast<unsigned long long>(live.simulator().now() / sim::kSecond),
                episode.explorer, episode.clones_run, episode.faults.size(),
                live.total_loc_rib_routes(), live.established_sessions());
  });
  runner.run(/*wall_budget_ms=*/30'000.0);

  // After the churn settles the system must be whole again.
  if (!live.converge()) {
    std::puts("\nlive system failed to reconverge after the reset");
    return 1;
  }
  const std::uint64_t churn =
      live.router(bystander).stats().updates_received - updates_before;
  std::printf("\nreconverged: %zu routes (was %zu); customer r%u processed %llu "
              "UPDATEs of reset-induced churn\n",
              live.total_loc_rib_routes(), routes_before, bystander,
              static_cast<unsigned long long>(churn));
  std::printf("episodes: %zu; standing faults: %zu (expected 0 — churn is not a fault; "
              "potential findings from fuzzed inputs are fine)\n",
              runner.episodes_run(), standing_faults);
  return standing_faults == 0 ? 0 : 1;
}
