// Standalone walkthrough of the concolic engine on the instrumented BGP
// UPDATE handler — the paper's §2 mechanism in isolation, without the
// distributed system around it.
//
// Shows: path-condition recording, constraint negation, solver-generated
// inputs, coverage growth, and discovery of an injected parser bug
// (programming-error fault class) that random bytes essentially never hit.
#include <cstdio>

#include "bgp/bugs.hpp"
#include "bgp/sym_update.hpp"
#include "bgp/topology.hpp"
#include "concolic/engine.hpp"
#include "fuzz/bgp_grammar.hpp"

int main() {
  using namespace dice;
  using concolic::SymCtx;

  // The node under test: a tier-2 router with Gao-Rexford policies and a
  // latent COMMUNITY-length parser bug.
  bgp::SystemBlueprint bp = bgp::make_internet({2, 3, 4});
  bgp::inject_bug(bp, 3, bgp::bugs::kCommunityLength);
  const bgp::RouterConfig config = bp.configs[3];

  bgp::SymHandlerEnv env;
  env.config = &config;
  env.neighbor_index = 0;

  // Watch one instrumented execution up close.
  {
    util::Rng rng(1);
    const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(config));
    const util::Bytes body = grammar.generate_body(rng);
    SymCtx ctx(body);
    concolic::SymScope scope(ctx);
    const bgp::SymHandlerResult result = bgp::sym_handle_update(ctx, env);
    std::printf("one execution over a %zu-byte UPDATE body:\n", body.size());
    std::printf("  decode_ok=%d announced=%u accepted=%u preferred=%u\n", result.decode_ok,
                result.announced, result.accepted, result.preferred);
    std::printf("  path condition: %zu branch records over %zu-node expression DAG\n",
                ctx.path().size(), ctx.pool().size());
    const auto& records = ctx.path().records();
    for (std::size_t i = 0; i < records.size() && i < 5; ++i) {
      std::printf("    [%zu] %s == %s\n", i,
                  ctx.pool().to_string(records[i].cond).c_str(),
                  records[i].taken ? "true" : "false");
    }
    if (records.size() > 5) std::printf("    ... %zu more\n", records.size() - 5);
  }

  // Full engine run: generational search with grammar seeds.
  concolic::EngineOptions options;
  options.max_executions = 1500;
  concolic::ConcolicEngine engine(
      [&env](SymCtx& ctx) { (void)bgp::sym_handle_update(ctx, env); }, options);

  util::Rng rng(7);
  const fuzz::BgpUpdateGrammar grammar(fuzz::BgpGrammarSeeds::from_config(config));
  for (int i = 0; i < 6; ++i) engine.add_seed(grammar.generate_body(rng));

  const concolic::RunResult result = engine.run();
  std::printf("\nengine run:\n");
  std::printf("  executions      %llu\n",
              static_cast<unsigned long long>(result.stats.executions));
  std::printf("  unique paths    %llu\n",
              static_cast<unsigned long long>(result.stats.unique_paths));
  std::printf("  branch points   %llu\n",
              static_cast<unsigned long long>(result.stats.branch_points));
  std::printf("  inputs solved   %llu\n",
              static_cast<unsigned long long>(result.stats.generated));
  std::printf("  solver: %llu queries, %llu sat (%llu hint, %llu inversion, "
              "%llu exhaustive, %llu search)\n",
              static_cast<unsigned long long>(result.stats.solver.queries),
              static_cast<unsigned long long>(result.stats.solver.sat),
              static_cast<unsigned long long>(result.stats.solver.hint_hits),
              static_cast<unsigned long long>(result.stats.solver.inversion_hits),
              static_cast<unsigned long long>(result.stats.solver.exhaustive_hits),
              static_cast<unsigned long long>(result.stats.solver.search_hits));

  if (result.crashes.empty()) {
    std::puts("\nno crashes found (unexpected — the injected bug was missed)");
    return 1;
  }
  std::printf("\n%zu crash(es) found:\n", result.crashes.size());
  for (const concolic::CrashInfo& crash : result.crashes) {
    std::printf("  %s\n    input=%s\n", crash.reason.c_str(),
                util::to_hex(crash.input).c_str());
  }
  return 0;
}
