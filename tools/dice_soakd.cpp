// dice_soakd — the resident soak daemon CLI (docs/SERVICE.md).
//
// Wraps svc::SoakService in a process: a key=value config file selects the
// scenarios and knobs, SIGINT/SIGTERM feed SoakService::request_stop()
// (an async-signal-safe atomic store, routed into the round's StopToken at
// its next safe point), and the exit path always leaves a well-formed
// final store/report/metrics trio behind.
//
//   dice_soakd <config-file>
//   dice_soakd --example-config      # print a commented template and exit
//
// Config keys (all optional; defaults in parentheses):
//   scenario             topology27 | internet9-hijack | ring6 | bad-gadget
//                        — repeatable; each line adds one scenario
//                        (topology27)
//   strategies           comma list: grammar,random,grammar-strict,concolic
//                        (grammar)
//   seeds                comma list of u64 (1)
//   workers              worker threads (2)
//   episodes_per_cell    episodes per matrix cell (2)
//   inputs_per_episode   inputs per episode (32)
//   bootstrap_events     bootstrap event budget (2000000)
//   max_rounds           stop after N rounds; 0 = run until signalled (0)
//   round_interval_ms    delay between rounds; 0 = back-to-back (1000)
//   persist_every_rounds persist cadence (1)
//   store                warm-start store path; empty = no persistence
//                        (dice_soak.dsvc)
//   report               cumulative report JSON path (dice_soak_report.json)
//   metrics              Prometheus text path (dice_soak_metrics.prom)
//   warm_start           true|false: load the store at boot (true)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bgp/bugs.hpp"
#include "bgp/topology.hpp"
#include "svc/soak_observer.hpp"
#include "svc/soak_service.hpp"

using namespace dice;

namespace {

svc::SoakService* g_service = nullptr;

extern "C" void handle_signal(int) {
  // Async-signal-safe: request_stop() is a relaxed atomic store. The round
  // loop notices at its next cell/episode boundary, folds the partial
  // round, persists, and exits.
  if (g_service != nullptr) g_service->request_stop();
}

struct Config {
  std::vector<std::string> scenario_names;
  std::string strategies = "grammar";
  std::string seeds = "1";
  std::size_t workers = 2;
  std::size_t episodes_per_cell = 2;
  std::size_t inputs_per_episode = 32;
  std::uint64_t bootstrap_events = 2'000'000;
  std::size_t max_rounds = 0;
  long round_interval_ms = 1000;
  std::size_t persist_every_rounds = 1;
  std::string store = "dice_soak.dsvc";
  std::string report = "dice_soak_report.json";
  std::string metrics = "dice_soak_metrics.prom";
  bool warm_start = true;
};

[[nodiscard]] std::string trim(const std::string& text) {
  const std::size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const std::size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

[[nodiscard]] std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

[[nodiscard]] bool parse_config(const std::string& path, Config& config) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dice_soakd: cannot open config %s\n", path.c_str());
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "dice_soakd: %s:%zu: expected key = value\n",
                   path.c_str(), line_no);
      return false;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "scenario") config.scenario_names.push_back(value);
    else if (key == "strategies") config.strategies = value;
    else if (key == "seeds") config.seeds = value;
    else if (key == "workers") config.workers = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "episodes_per_cell") config.episodes_per_cell = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "inputs_per_episode") config.inputs_per_episode = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "bootstrap_events") config.bootstrap_events = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "max_rounds") config.max_rounds = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "round_interval_ms") config.round_interval_ms = std::strtol(value.c_str(), nullptr, 10);
    else if (key == "persist_every_rounds") config.persist_every_rounds = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "store") config.store = value;
    else if (key == "report") config.report = value;
    else if (key == "metrics") config.metrics = value;
    else if (key == "warm_start") config.warm_start = value == "true" || value == "1";
    else {
      std::fprintf(stderr, "dice_soakd: %s:%zu: unknown key '%s'\n", path.c_str(),
                   line_no, key.c_str());
      return false;
    }
  }
  if (config.scenario_names.empty()) config.scenario_names.push_back("topology27");
  return true;
}

[[nodiscard]] bool make_scenarios(const Config& config,
                                  std::vector<explore::ScenarioSpec>& specs) {
  for (const std::string& name : config.scenario_names) {
    if (name == "topology27") {
      bgp::SystemBlueprint fig1 = bgp::make_internet();
      bgp::inject_hijack(fig1, /*victim=*/12, /*attacker=*/20, /*more_specific=*/true);
      bgp::inject_bug(fig1, 5, bgp::bugs::kCommunityLength);
      specs.push_back({"topology27", std::move(fig1)});
    } else if (name == "internet9-hijack") {
      bgp::SystemBlueprint hijack = bgp::make_internet({2, 3, 4});
      bgp::inject_hijack(hijack, /*victim=*/5, /*attacker=*/8);
      specs.push_back({"internet9-hijack", std::move(hijack)});
    } else if (name == "ring6") {
      specs.push_back({"ring6", bgp::make_ring(6)});
    } else if (name == "bad-gadget") {
      specs.push_back({"bad-gadget", bgp::make_bad_gadget()});
    } else {
      std::fprintf(stderr, "dice_soakd: unknown scenario '%s'\n", name.c_str());
      return false;
    }
  }
  return true;
}

[[nodiscard]] bool make_strategies(const Config& config,
                                   std::vector<explore::StrategyKind>& kinds) {
  for (const std::string& name : split_commas(config.strategies)) {
    if (name == "grammar") kinds.push_back(explore::StrategyKind::kGrammar);
    else if (name == "random") kinds.push_back(explore::StrategyKind::kRandom);
    else if (name == "grammar-strict") kinds.push_back(explore::StrategyKind::kGrammarStrict);
    else if (name == "concolic") kinds.push_back(explore::StrategyKind::kConcolic);
    else {
      std::fprintf(stderr, "dice_soakd: unknown strategy '%s'\n", name.c_str());
      return false;
    }
  }
  return true;
}

void print_example_config() {
  std::puts("# dice_soakd config (key = value; '#' comments)");
  std::puts("scenario = topology27");
  std::puts("strategies = grammar");
  std::puts("seeds = 1");
  std::puts("workers = 2");
  std::puts("episodes_per_cell = 2");
  std::puts("inputs_per_episode = 32");
  std::puts("bootstrap_events = 2000000");
  std::puts("max_rounds = 0            # 0 = run until SIGINT/SIGTERM");
  std::puts("round_interval_ms = 1000  # 0 = rounds back-to-back");
  std::puts("persist_every_rounds = 1");
  std::puts("store = dice_soak.dsvc");
  std::puts("report = dice_soak_report.json");
  std::puts("metrics = dice_soak_metrics.prom");
  std::puts("warm_start = true");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--example-config") == 0) {
    print_example_config();
    return EXIT_SUCCESS;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: dice_soakd <config-file>\n"
                 "       dice_soakd --example-config\n");
    return EXIT_FAILURE;
  }

  Config config;
  if (!parse_config(argv[1], config)) return EXIT_FAILURE;

  std::vector<explore::ScenarioSpec> specs;
  std::vector<explore::StrategyKind> kinds;
  if (!make_scenarios(config, specs) || !make_strategies(config, kinds)) {
    return EXIT_FAILURE;
  }
  std::vector<std::uint64_t> seeds;
  for (const std::string& seed : split_commas(config.seeds)) {
    seeds.push_back(std::strtoull(seed.c_str(), nullptr, 10));
  }

  svc::SoakOptions options;
  auto built = explore::CampaignOptions::builder()
                   .strategies(kinds)
                   .seeds(std::move(seeds))
                   .episodes_per_cell(config.episodes_per_cell)
                   .inputs_per_episode(config.inputs_per_episode)
                   .bootstrap_events(config.bootstrap_events)
                   .parallelism(config.workers)
                   .build();
  if (!built.ok()) {
    std::fprintf(stderr, "dice_soakd: invalid campaign options (%s): %s\n",
                 built.error().code.c_str(), built.error().detail.c_str());
    return EXIT_FAILURE;
  }
  options.campaign = std::move(built).take();
  options.max_rounds = config.max_rounds;
  options.round_interval = std::chrono::milliseconds(config.round_interval_ms);
  options.persist_every_rounds = config.persist_every_rounds;
  options.store_path = config.store;
  options.report_path = config.report;
  options.metrics_path = config.metrics;
  options.warm_start = config.warm_start;
  if (const util::Status valid = options.validate(); !valid.ok()) {
    std::fprintf(stderr, "dice_soakd: invalid options (%s): %s\n",
                 valid.error().code.c_str(), valid.error().detail.c_str());
    return EXIT_FAILURE;
  }

  // The liveness-first stream becomes the daemon's log: one line per cell,
  // as it completes (wall-clock order; the canonical receipt is unmoved).
  svc::SoakObserver wall([](const explore::CellDescriptor& cell,
                            const explore::CellResult& result) {
    std::printf("cell %zu %s/%s/s%llu: %zu fault(s), bootstrap %s\n", cell.index,
                std::string(cell.scenario).c_str(),
                std::string(cell.strategy).c_str(),
                static_cast<unsigned long long>(cell.seed), result.faults,
                result.bootstrap_from_cache ? "resumed" : "converged");
    std::fflush(stdout);
  });
  options.campaign.telemetry.wall_observer = &wall;

  svc::SoakService service(std::move(specs), std::move(options));
  if (!service.store_error().code.empty()) {
    std::printf("store unusable (%s): cold start\n",
                service.store_error().code.c_str());
  } else if (service.report().warm_started) {
    std::printf("warm start: %zu live state(s) primed from %s\n",
                service.report().primed_from_store, config.store.c_str());
  }

  g_service = &service;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  service.start();
  while (service.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  service.stop();  // joins; the loop already persisted its final trio
  g_service = nullptr;

  const svc::SoakReport report = service.report();
  std::printf("soak done: %llu round(s), %zu cumulative fault(s), "
              "%llu warm bootstrap(s), %llu knob swap(s)\n",
              static_cast<unsigned long long>(report.rounds), report.faults.size(),
              static_cast<unsigned long long>(report.warm_starts),
              static_cast<unsigned long long>(report.knob_swaps));
  return EXIT_SUCCESS;
}
