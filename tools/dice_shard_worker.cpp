// dice_shard_worker: one shard attempt of a sharded campaign.
//
// Spawned by shard::ShardCoordinator (never run by hand in production):
// reads a DSHD kJob frame on stdin, executes the job's canonical cell
// subset, streams kCellResult frames + a kShardDone receipt on stdout.
// The --test-* flags are the coordinator tests' fault-injection seam; see
// src/shard/worker.hpp and docs/SHARDING.md.
#include <cstdio>

#include "shard/worker.hpp"

int main(int argc, char** argv) {
  auto chaos = dice::shard::parse_worker_args(argc, argv);
  if (!chaos) {
    std::fprintf(stderr, "dice_shard_worker: %s\n", chaos.error().detail.c_str());
    return 4;
  }
  return dice::shard::worker_main(/*in_fd=*/0, /*out_fd=*/1, chaos.value());
}
