#!/usr/bin/env bash
# check_docs.sh — the docs/code drift gate.
#
# Two directions, twice over:
#   1. docs -> code: every knob named in a docs/TUNING.md table row
#      (lines shaped `| `knob_name` | ...`) must exist verbatim in the
#      public option headers. A renamed or deleted knob fails here.
#   2. code -> docs: every field of CampaignOptions and its nested option
#      groups (src/explore/campaign.hpp), and every field of
#      core::DiceOptions (src/dice/orchestrator.hpp), must be mentioned as
#      `field` somewhere in docs/TUNING.md. A new undocumented knob fails
#      here.
#   3. metrics -> docs: every metric name in src/obs/names.hpp must appear
#      backticked in docs/OBSERVABILITY.md.
#   4. docs -> metrics: every backticked `dice_*` name in
#      docs/OBSERVABILITY.md must exist in src/obs/names.hpp. Derived
#      Prometheus series (_bucket/_sum/_count) are written WITHOUT
#      backticks in the doc precisely so this direction stays exact.
#   5. implementation ids <-> docs/HETEROGENEITY.md: every engine id
#      constant in src (`... kFooImplementationId = "foo";`) must have a
#      table row (`| `foo` | ...`) in docs/HETEROGENEITY.md, and every
#      table-row id there must exist as a constant — registering a third
#      engine or renaming one without documenting it fails here.
#   6. svc::SoakOptions <-> docs/SERVICE.md: every field of SoakOptions
#      (src/svc/soak_service.hpp) must have a knob table row in
#      docs/SERVICE.md, and every table-row knob there must be declared in
#      that header — the soak daemon's own knobs get the same two-way gate
#      as the campaign's.
#   7. shard::ShardOptions <-> docs/SHARDING.md: every field of
#      ShardOptions (src/shard/coordinator.hpp) must have a knob table row
#      in docs/SHARDING.md, and every table-row knob there must be
#      declared in that header — the cross-process coordinator's knobs get
#      the same two-way gate.
#
# Exit nonzero on any drift; print every offender, not just the first.
set -u

cd "$(dirname "$0")/.."

TUNING=docs/TUNING.md
HEADERS=(
  src/explore/campaign.hpp
  src/explore/matrix.hpp
  src/explore/pool.hpp
  src/explore/live_cache.hpp
  src/dice/orchestrator.hpp
)

fail=0

if [[ ! -f "$TUNING" ]]; then
  echo "check_docs: missing $TUNING" >&2
  exit 1
fi

# --- direction 1: every documented knob exists in a public header --------
doc_knobs=$(grep -oE '^\| `[a-z][a-z0-9_]*`' "$TUNING" | sed -E 's/^\| `([a-z0-9_]*)`/\1/' | sort -u)
if [[ -z "$doc_knobs" ]]; then
  echo "check_docs: no knob table rows found in $TUNING (format changed?)" >&2
  exit 1
fi
for knob in $doc_knobs; do
  # Declaration-shaped lines only (`Type name = ...;` / `Type name{...};` /
  # `Type name;`) — matching the knob name anywhere would let a comment
  # that merely mentions the word keep a deleted knob "documented".
  if ! grep -qE "^[[:space:]]+[A-Za-z_][A-Za-z0-9_:<>,* ]*[[:space:]][*&]?${knob}([[:space:]]*=|\{|;)" \
       "${HEADERS[@]}"; then
    echo "check_docs: $TUNING documents '$knob' but no public header declares it" >&2
    fail=1
  fi
done

# --- direction 2: every option-struct field is documented ----------------
# Extract member names from `Type name = default;` / `Type name{...};`
# lines inside the option structs. The awk range covers each struct body.
extract_fields() {  # file, struct-start-regex
  awk -v start="$2" '
    $0 ~ start { depth = 1; next }
    depth > 0 {
      n = gsub(/\{/, "{"); m = gsub(/\}/, "}")
      if ($0 ~ /^};/ || (m > n && --depth == 0)) { depth = 0; next }
      if ($0 ~ /^[[:space:]]+[A-Za-z_][A-Za-z0-9_:<>,* ]*[[:space:]][a-z_][a-z0-9_]*([[:space:]]*=[^=]|\{)/ &&
          $0 !~ /\(/ && $0 !~ /using|return|static|struct|class/) {
        line = $0
        sub(/[[:space:]]*(=|\{).*$/, "", line)
        sub(/.*[[:space:]*]/, "", line)
        print line
      }
    }
  ' "$1"
}

code_knobs=$(
  {
    extract_fields src/explore/campaign.hpp 'struct Budgets \{'
    extract_fields src/explore/campaign.hpp 'struct Caching \{'
    extract_fields src/explore/campaign.hpp 'struct Parallelism \{'
    extract_fields src/explore/campaign.hpp 'struct Telemetry \{'
    extract_fields src/explore/campaign.hpp 'struct Determinism \{'
    extract_fields src/dice/orchestrator.hpp 'struct DiceOptions \{'
    # Top-level CampaignOptions members documented by name:
    echo strategies
    echo deadline
  } | sort -u
)
for knob in $code_knobs; do
  # `stop` is the plumbed StopToken, not a tunable; skip control plumbing.
  case "$knob" in stop) continue ;; esac
  if ! grep -q "\`$knob\`" "$TUNING"; then
    echo "check_docs: public knob '$knob' is not documented in $TUNING" >&2
    fail=1
  fi
done

# --- directions 3 + 4: metric names <-> docs/OBSERVABILITY.md ------------
OBS_DOC=docs/OBSERVABILITY.md
OBS_NAMES=src/obs/names.hpp
if [[ ! -f "$OBS_DOC" || ! -f "$OBS_NAMES" ]]; then
  echo "check_docs: missing $OBS_DOC or $OBS_NAMES" >&2
  exit 1
fi
code_metrics=$(grep -oE '"dice_[a-z0-9_]+"' "$OBS_NAMES" | tr -d '"' | sort -u)
doc_metrics=$(grep -oE '`dice_[a-z0-9_]+`' "$OBS_DOC" | tr -d '\`' | sort -u)
if [[ -z "$code_metrics" ]]; then
  echo "check_docs: no metric names found in $OBS_NAMES (format changed?)" >&2
  exit 1
fi
for metric in $code_metrics; do
  if ! grep -q "\`$metric\`" "$OBS_DOC"; then
    echo "check_docs: metric '$metric' ($OBS_NAMES) is not documented in $OBS_DOC" >&2
    fail=1
  fi
done
for metric in $doc_metrics; do
  if ! grep -q "\"$metric\"" "$OBS_NAMES"; then
    echo "check_docs: $OBS_DOC documents metric '$metric' but $OBS_NAMES does not define it" >&2
    fail=1
  fi
done

# --- direction 5: implementation id constants <-> docs/HETEROGENEITY.md --
HET_DOC=docs/HETEROGENEITY.md
if [[ ! -f "$HET_DOC" ]]; then
  echo "check_docs: missing $HET_DOC" >&2
  exit 1
fi
code_impls=$(grep -rhoE 'ImplementationId[A-Za-z0-9_]*[[:space:]]*=[[:space:]]*"[a-z0-9_]+"' src \
  | grep -oE '"[a-z0-9_]+"' | tr -d '"' | sort -u)
doc_impls=$(grep -oE '^\| `[a-z0-9_]+`' "$HET_DOC" | sed -E 's/^\| `([a-z0-9_]+)`/\1/' | sort -u)
if [[ -z "$code_impls" ]]; then
  echo "check_docs: no implementation id constants found in src (format changed?)" >&2
  exit 1
fi
for impl in $code_impls; do
  if ! grep -qE "^\| \`$impl\`" "$HET_DOC"; then
    echo "check_docs: implementation id '$impl' has no table row in $HET_DOC" >&2
    fail=1
  fi
done
for impl in $doc_impls; do
  case "$impl" in id) continue ;; esac  # the table header row
  if ! echo "$code_impls" | grep -qx "$impl"; then
    echo "check_docs: $HET_DOC documents implementation id '$impl' but no src constant defines it" >&2
    fail=1
  fi
done

# --- direction 6: svc::SoakOptions fields <-> docs/SERVICE.md ------------
SVC_DOC=docs/SERVICE.md
SVC_HEADER=src/svc/soak_service.hpp
if [[ ! -f "$SVC_DOC" || ! -f "$SVC_HEADER" ]]; then
  echo "check_docs: missing $SVC_DOC or $SVC_HEADER" >&2
  exit 1
fi
svc_code_knobs=$(extract_fields "$SVC_HEADER" 'struct SoakOptions \{' | sort -u)
svc_doc_knobs=$(grep -oE '^\| `[a-z][a-z0-9_]*`' "$SVC_DOC" | sed -E 's/^\| `([a-z0-9_]*)`/\1/' | sort -u)
if [[ -z "$svc_code_knobs" ]]; then
  echo "check_docs: no SoakOptions fields found in $SVC_HEADER (format changed?)" >&2
  exit 1
fi
for knob in $svc_code_knobs; do
  if ! grep -qE "^\| \`$knob\`" "$SVC_DOC"; then
    echo "check_docs: SoakOptions field '$knob' has no knob table row in $SVC_DOC" >&2
    fail=1
  fi
done
for knob in $svc_doc_knobs; do
  if ! grep -qE "^[[:space:]]+[A-Za-z_][A-Za-z0-9_:<>,* ]*[[:space:]][*&]?${knob}([[:space:]]*=|\{|;)" \
       "$SVC_HEADER"; then
    echo "check_docs: $SVC_DOC documents '$knob' but $SVC_HEADER does not declare it" >&2
    fail=1
  fi
done

# --- direction 7: shard::ShardOptions fields <-> docs/SHARDING.md --------
SHARD_DOC=docs/SHARDING.md
SHARD_HEADER=src/shard/coordinator.hpp
if [[ ! -f "$SHARD_DOC" || ! -f "$SHARD_HEADER" ]]; then
  echo "check_docs: missing $SHARD_DOC or $SHARD_HEADER" >&2
  exit 1
fi
shard_code_knobs=$(extract_fields "$SHARD_HEADER" 'struct ShardOptions \{' | sort -u)
shard_doc_knobs=$(grep -oE '^\| `[a-z][a-z0-9_]*`' "$SHARD_DOC" | sed -E 's/^\| `([a-z0-9_]*)`/\1/' | sort -u)
if [[ -z "$shard_code_knobs" ]]; then
  echo "check_docs: no ShardOptions fields found in $SHARD_HEADER (format changed?)" >&2
  exit 1
fi
for knob in $shard_code_knobs; do
  if ! grep -qE "^\| \`$knob\`" "$SHARD_DOC"; then
    echo "check_docs: ShardOptions field '$knob' has no knob table row in $SHARD_DOC" >&2
    fail=1
  fi
done
for knob in $shard_doc_knobs; do
  if ! grep -qE "^[[:space:]]+[A-Za-z_][A-Za-z0-9_:<>,* ]*[[:space:]][*&]?${knob}([[:space:]]*=|\{|;)" \
       "$SHARD_HEADER"; then
    echo "check_docs: $SHARD_DOC documents '$knob' but $SHARD_HEADER does not declare it" >&2
    fail=1
  fi
done

if [[ "$fail" -ne 0 ]]; then
  echo "check_docs: FAILED — the docs and the code drifted" >&2
  exit 1
fi
echo "check_docs: OK ($(echo "$doc_knobs" | wc -l) documented knobs, $(echo "$code_knobs" | wc -l) public knobs, $(echo "$code_metrics" | wc -l) metrics, $(echo "$code_impls" | wc -l) implementation ids, $(echo "$svc_code_knobs" | wc -l) soak knobs, $(echo "$shard_code_knobs" | wc -l) shard knobs)"
