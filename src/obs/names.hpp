// The metric name registry: every metric the system exposes, in one place.
//
// Names follow the Prometheus convention — `dice_` prefix, `_total` suffix
// for monotonic counters, a unit suffix (`_ms`) for histograms. Components
// register their handles through obs::MetricsRegistry::global() using
// these constants only; a string literal at an instrumentation site is a
// review error. tools/check_docs.sh enforces a two-way gate between this
// header and docs/OBSERVABILITY.md: every name here must be documented,
// and every documented name must exist here.
#pragma once

#include <string_view>

namespace dice::obs::names {

// --- explore::ExplorePool ---------------------------------------------------
inline constexpr std::string_view kPoolBatches = "dice_pool_batches_total";
inline constexpr std::string_view kPoolChildBatches = "dice_pool_child_batches_total";
inline constexpr std::string_view kPoolTasks = "dice_pool_tasks_total";
inline constexpr std::string_view kPoolChildTasks = "dice_pool_child_tasks_total";
inline constexpr std::string_view kPoolSteals = "dice_pool_steals_total";
inline constexpr std::string_view kPoolChildSteals = "dice_pool_child_steals_total";
inline constexpr std::string_view kPoolHelped = "dice_pool_helped_total";
inline constexpr std::string_view kPoolDrained = "dice_pool_drained_total";

// --- explore::CloneArena ----------------------------------------------------
inline constexpr std::string_view kArenaAcquires = "dice_arena_acquires_total";
inline constexpr std::string_view kArenaReuses = "dice_arena_reuses_total";
inline constexpr std::string_view kArenaRebuilds = "dice_arena_rebuilds_total";

// --- explore::SolverCache ---------------------------------------------------
inline constexpr std::string_view kSolverCacheHits = "dice_solver_cache_hits_total";
inline constexpr std::string_view kSolverCacheMisses = "dice_solver_cache_misses_total";
inline constexpr std::string_view kSolverCacheStores = "dice_solver_cache_stores_total";

// --- explore::LiveStateCache ------------------------------------------------
inline constexpr std::string_view kLiveCacheHits = "dice_live_cache_hits_total";
inline constexpr std::string_view kLiveCacheMisses = "dice_live_cache_misses_total";
inline constexpr std::string_view kLiveCacheUncacheable =
    "dice_live_cache_uncacheable_total";
inline constexpr std::string_view kLiveCacheEvictions =
    "dice_live_cache_evictions_total";

// --- snapshot / checkpoint pipeline ----------------------------------------
inline constexpr std::string_view kCheckpointDecodes = "dice_checkpoint_decodes_total";
inline constexpr std::string_view kSnapshots = "dice_snapshots_total";
inline constexpr std::string_view kSnapshotDeltaNodes =
    "dice_snapshot_delta_nodes_total";
inline constexpr std::string_view kSnapshotBaselineNodes =
    "dice_snapshot_baseline_nodes_total";

// --- core::Orchestrator / explore::ScenarioMatrix ---------------------------
inline constexpr std::string_view kEpisodes = "dice_episodes_total";
inline constexpr std::string_view kClones = "dice_clones_total";
inline constexpr std::string_view kClonesReused = "dice_clones_reused_total";
inline constexpr std::string_view kClonesEarlyExit = "dice_clones_early_exit_total";
inline constexpr std::string_view kFaults = "dice_faults_total";
inline constexpr std::string_view kCellsCompleted = "dice_cells_completed_total";

// --- heterogeneous federation (bgp2 engine + differential checks) -----------
inline constexpr std::string_view kFsmDecodes = "dice_fsm_decodes_total";
inline constexpr std::string_view kFsmApplies = "dice_fsm_applies_total";
inline constexpr std::string_view kDifferentialChecks =
    "dice_differential_checks_total";
inline constexpr std::string_view kDifferentialDivergence =
    "dice_differential_divergence_total";

// --- svc::SoakService / svc::ArtifactStore ----------------------------------
inline constexpr std::string_view kSvcRounds = "dice_svc_rounds_total";
inline constexpr std::string_view kSvcWarmStarts = "dice_svc_warm_starts_total";
inline constexpr std::string_view kSvcKnobSwaps = "dice_svc_knob_swaps_total";

// --- obs itself -------------------------------------------------------------
inline constexpr std::string_view kTraceDropped = "dice_trace_events_dropped_total";

// --- gauges -----------------------------------------------------------------
inline constexpr std::string_view kCampaignsRunning = "dice_campaigns_running";

// --- latency histograms (milliseconds) --------------------------------------
inline constexpr std::string_view kCloneMs = "dice_clone_ms";
inline constexpr std::string_view kEpisodeMs = "dice_episode_ms";
inline constexpr std::string_view kBootstrapMs = "dice_bootstrap_ms";
inline constexpr std::string_view kSnapshotMs = "dice_snapshot_ms";
inline constexpr std::string_view kSnapshotEncodeMs = "dice_snapshot_encode_ms";
inline constexpr std::string_view kSnapshotDecodeMs = "dice_snapshot_decode_ms";
inline constexpr std::string_view kSvcStoreSaveMs = "dice_svc_store_save_ms";
inline constexpr std::string_view kSvcStoreLoadMs = "dice_svc_store_load_ms";

}  // namespace dice::obs::names
