// obs::Trace — per-worker span capture with canonical-order emission.
//
// Workers record TraceEvents into preallocated per-lane rings (an atomic
// slot reservation, no locks, no allocation); a full lane drops the event
// and counts the drop. Because workers race, the raw capture order is
// scheduling-dependent — finalize() rebuilds the canonical view the same
// way ScenarioMatrix's reorder buffer does for observer events: completed
// cells in canonical flush order (reported via cell_flushed), events
// within a cell sorted by (episode, clone index, name). That makes the
// emitted trace worker-count-invariant for completed cells, which is what
// lets CI diff traces across runs. Events from cells that never completed
// (stopped runs) and unscoped events trail the canonical section.
//
// write_chrome_json() emits the Chrome trace_event format, loadable in
// Perfetto (ui.perfetto.dev) — see docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dice::obs {

/// Sentinel cell id for events recorded outside any matrix cell.
inline constexpr std::uint32_t kNoCell = 0xffffffffu;

/// One completed span. `name` must be a string literal (the trace stores
/// the pointer, never a copy). Times are microseconds since the Trace's
/// epoch (construction or last clear()).
struct TraceEvent {
  const char* name = "";
  std::uint32_t cell = kNoCell;
  std::uint32_t index = 0;  ///< clone index within the episode (0 otherwise)
  std::uint64_t episode = 0;
  std::uint32_t worker = 0;
  double t_start_us = 0.0;
  double dur_us = 0.0;
};

class Trace {
 public:
  using Clock = std::chrono::steady_clock;

  /// `lanes` bounds concurrent-writer spread (lane = min(worker, lanes-1);
  /// sharing a lane is safe, just contended); each lane holds
  /// `lane_capacity` preallocated events.
  explicit Trace(std::size_t lanes = 8, std::size_t lane_capacity = 4096);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Hot path: reserve a slot in the worker's lane and store the event.
  /// Lock-free; a full lane drops the event (see dropped()).
  void record(const TraceEvent& event) noexcept;

  /// Called by the matrix reorder buffer as it flushes cells, in canonical
  /// cell order (serialized by the emitter mutex). Fixes this trace's
  /// canonical section order.
  void cell_flushed(std::uint32_t cell, bool completed);

  /// Builds the canonical event ordering. Call after the run completes
  /// (all recording threads joined). Idempotent until the next clear().
  void finalize();

  /// The canonical event sequence (finalize() must have run).
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return ordered_;
  }
  /// How many of events() form the worker-count-invariant canonical
  /// section (completed cells); the remainder is unordered tail.
  [[nodiscard]] std::size_t canonical_events() const noexcept { return canonical_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Chrome trace_event JSON ("X" complete events, ts/dur in µs, tid =
  /// worker). Finalizes if needed.
  [[nodiscard]] std::string to_chrome_json();
  /// Writes to_chrome_json() to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path);

  /// Drops all recorded events and resets the epoch. Callers must
  /// guarantee no concurrent recorders.
  void clear();

  [[nodiscard]] Clock::time_point epoch() const noexcept { return epoch_; }

  /// Microseconds from the epoch to `at`.
  [[nodiscard]] double since_epoch_us(Clock::time_point at) const noexcept {
    return std::chrono::duration<double, std::micro>(at - epoch_).count();
  }

 private:
  struct Lane {
    std::atomic<std::size_t> next{0};
    std::vector<TraceEvent> events;
  };

  std::vector<Lane> lanes_;
  std::size_t lane_capacity_;
  std::atomic<std::uint64_t> dropped_{0};
  Clock::time_point epoch_;

  struct FlushRecord {
    std::uint32_t cell;
    bool completed;
  };
  std::vector<FlushRecord> flush_order_;  ///< serialized by the emitter mutex

  std::vector<TraceEvent> ordered_;
  std::size_t canonical_ = 0;
  bool finalized_ = false;
};

/// RAII span: stamps the clock on construction, records on destruction (or
/// end()). A null trace (or compiled-out telemetry) never touches the
/// clock, so disabled tracing costs one branch.
class Span {
 public:
  Span(Trace* trace, const char* name, std::uint32_t worker,
       std::uint32_t cell = kNoCell, std::uint64_t episode = 0,
       std::uint32_t index = 0) noexcept {
    if constexpr (!kEnabled) return;
    if (trace == nullptr) return;
    trace_ = trace;
    event_.name = name;
    event_.worker = worker;
    event_.cell = cell;
    event_.episode = episode;
    event_.index = index;
    start_ = Trace::Clock::now();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { end(); }

  void end() noexcept {
    if (trace_ == nullptr) return;
    const Trace::Clock::time_point stop = Trace::Clock::now();
    event_.t_start_us = trace_->since_epoch_us(start_);
    event_.dur_us = std::chrono::duration<double, std::micro>(stop - start_).count();
    trace_->record(event_);
    trace_ = nullptr;
  }

 private:
  Trace* trace_ = nullptr;
  TraceEvent event_;
  Trace::Clock::time_point start_{};
};

}  // namespace dice::obs
