#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace dice::obs {

namespace {

/// Free-list of per-thread slot indices. A thread leases a slot on its
/// first metric update and returns it at thread exit, so worker-pool churn
/// (every ExplorePool spawns fresh threads) recycles slots instead of
/// exhausting the pool.
class SlotPool {
 public:
  static SlotPool& instance() {
    static SlotPool pool;
    return pool;
  }

  std::size_t acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      const std::size_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    if (next_ < kMaxThreadSlots) return next_++;
    return kOverflowSlot;
  }

  void release(std::size_t slot) {
    if (slot == kOverflowSlot) return;
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(slot);
  }

 private:
  std::mutex mutex_;
  std::vector<std::size_t> free_;
  std::size_t next_ = 0;
};

struct SlotLease {
  std::size_t slot;
  SlotLease() : slot(SlotPool::instance().acquire()) {}
  ~SlotLease() { SlotPool::instance().release(slot); }
};

}  // namespace

std::size_t this_thread_slot() noexcept {
  thread_local SlotLease lease;
  return lease.slot;
}

const std::vector<double>& default_latency_bounds_ms() {
  static const std::vector<double> bounds = {0.05, 0.1, 0.25, 0.5,  1.0,  2.5,  5.0,
                                             10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                                             1000.0};
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      stride_(bounds_.size() + 1),
      counts_(kSlotCount * stride_),
      sums_(kSlotCount) {}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> merged(stride_, 0);
  for (std::size_t slot = 0; slot < kSlotCount; ++slot) {
    for (std::size_t bucket = 0; bucket < stride_; ++bucket) {
      merged[bucket] += counts_[slot * stride_ + bucket].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t bucket : bucket_counts()) total += bucket;
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const std::atomic<double>& part : sums_) {
    total += part.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset_for_test() noexcept {
  for (std::atomic<std::uint64_t>& cell : counts_) cell.store(0, std::memory_order_relaxed);
  for (std::atomic<double>& cell : sums_) cell.store(0.0, std::memory_order_relaxed);
}

// --- MetricsSnapshot --------------------------------------------------------

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const noexcept {
  for (const CounterValue& entry : counters) {
    if (entry.name == name) return entry.value;
  }
  return 0;
}

MetricsSnapshot MetricsSnapshot::delta_since(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out = *this;
  for (CounterValue& entry : out.counters) {
    const std::uint64_t before = earlier.counter_value(entry.name);
    entry.value = entry.value >= before ? entry.value - before : 0;
  }
  // Gauges stay at their current level: a gauge is not cumulative.
  for (HistogramValue& entry : out.histograms) {
    const HistogramValue* before = nullptr;
    for (const HistogramValue& candidate : earlier.histograms) {
      if (candidate.name == entry.name) {
        before = &candidate;
        break;
      }
    }
    if (before == nullptr || before->counts.size() != entry.counts.size()) continue;
    for (std::size_t bucket = 0; bucket < entry.counts.size(); ++bucket) {
      const std::uint64_t prev = before->counts[bucket];
      entry.counts[bucket] = entry.counts[bucket] >= prev ? entry.counts[bucket] - prev : 0;
    }
    entry.count = entry.count >= before->count ? entry.count - before->count : 0;
    entry.sum -= before->sum;
    if (entry.sum < 0.0) entry.sum = 0.0;
  }
  return out;
}

namespace {

void append_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  // Metric names are [a-z0-9_] by the names.hpp convention, so no JSON
  // string escaping is needed.
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterValue& entry : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += entry.name;
    out += "\":";
    out += std::to_string(entry.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeValue& entry : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += entry.name;
    out += "\":";
    out += std::to_string(entry.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramValue& entry : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += entry.name;
    out += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < entry.bounds.size(); ++i) {
      if (i != 0) out += ',';
      append_double(out, entry.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < entry.counts.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(entry.counts[i]);
    }
    out += "],\"count\":";
    out += std::to_string(entry.count);
    out += ",\"sum\":";
    append_double(out, entry.sum);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  for (const CounterValue& entry : counters) {
    out += "# TYPE ";
    out += entry.name;
    out += " counter\n";
    out += entry.name;
    out += ' ';
    out += std::to_string(entry.value);
    out += '\n';
  }
  for (const GaugeValue& entry : gauges) {
    out += "# TYPE ";
    out += entry.name;
    out += " gauge\n";
    out += entry.name;
    out += ' ';
    out += std::to_string(entry.value);
    out += '\n';
  }
  for (const HistogramValue& entry : histograms) {
    out += "# TYPE ";
    out += entry.name;
    out += " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t bucket = 0; bucket < entry.counts.size(); ++bucket) {
      cumulative += entry.counts[bucket];
      out += entry.name;
      out += "_bucket{le=\"";
      if (bucket < entry.bounds.size()) {
        append_double(out, entry.bounds[bucket]);
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += entry.name;
    out += "_sum ";
    append_double(out, entry.sum);
    out += '\n';
    out += entry.name;
    out += "_count ";
    out += std::to_string(entry.count);
    out += '\n';
  }
  return out;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(bounds)).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back({name, counter->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.push_back({name, gauge->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.bounds = histogram->bounds();
    value.counts = histogram->bucket_counts();
    value.count = 0;
    for (const std::uint64_t bucket : value.counts) value.count += bucket;
    value.sum = histogram->sum();
    out.histograms.push_back(std::move(value));
  }
  return out;
}

void MetricsRegistry::reset_for_test() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset_for_test();
  for (auto& [name, gauge] : gauges_) gauge->reset_for_test();
  for (auto& [name, histogram] : histograms_) histogram->reset_for_test();
}

}  // namespace dice::obs
