// obs::ProgressReporter — the human-facing campaign progress surface.
//
// A CampaignObserver that folds the metrics registry into each on_progress
// event: cells done/total, faults streamed, cache hit rates, arena reuse,
// and (when given the pool) worker occupancy, emitted as one log line per
// progress event through util::Logger("obs.progress"). It is strictly
// PASSIVE — it reads metrics and forwards events, never influencing
// exploration — and strictly a decorator: wrap any downstream observer via
// Options::next and every callback is forwarded unchanged.
//
// Rates are computed against the registry snapshot taken at construction,
// so a reporter shows THIS campaign's traffic even though registry counters
// are cumulative for the process.
#pragma once

#include <cstdint>
#include <string>

#include "explore/control.hpp"
#include "obs/metrics.hpp"

namespace dice::explore {
class ExplorePool;
}

namespace dice::obs {

class ProgressReporter : public explore::CampaignObserver {
 public:
  struct Options {
    /// When set, progress lines include worker occupancy from pool stats.
    const explore::ExplorePool* pool = nullptr;
    /// Downstream observer every callback is forwarded to (may be null).
    explore::CampaignObserver* next = nullptr;
  };

  ProgressReporter() : ProgressReporter(Options{}) {}
  explicit ProgressReporter(Options options);

  void on_cell_start(const explore::CellDescriptor& cell) override;
  void on_fault(const explore::CellDescriptor& cell,
                const core::FaultReport& fault) override;
  void on_cell_done(const explore::CellDescriptor& cell,
                    const explore::CellResult& result) override;
  void on_progress(const explore::CampaignProgress& progress) override;

  /// The most recent progress event observed (all zero before the first).
  [[nodiscard]] const explore::CampaignProgress& last() const noexcept {
    return last_;
  }
  /// How many progress lines were emitted.
  [[nodiscard]] std::uint64_t lines_emitted() const noexcept { return lines_; }
  /// The most recent formatted progress line (for tests).
  [[nodiscard]] const std::string& last_line() const noexcept { return last_line_; }

 private:
  Options options_;
  MetricsSnapshot baseline_;  ///< registry state when this reporter was built
  explore::CampaignProgress last_;
  std::string last_line_;
  std::uint64_t lines_ = 0;
};

}  // namespace dice::obs
