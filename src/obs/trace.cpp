#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/names.hpp"

namespace dice::obs {

Trace::Trace(std::size_t lanes, std::size_t lane_capacity)
    : lanes_(lanes == 0 ? 1 : lanes),
      lane_capacity_(lane_capacity),
      epoch_(Clock::now()) {
  for (Lane& lane : lanes_) lane.events.resize(lane_capacity_);
}

void Trace::record(const TraceEvent& event) noexcept {
  if constexpr (!kEnabled) {
    (void)event;
    return;
  }
  const std::size_t lane_index =
      std::min<std::size_t>(event.worker, lanes_.size() - 1);
  Lane& lane = lanes_[lane_index];
  const std::size_t slot = lane.next.fetch_add(1, std::memory_order_relaxed);
  if (slot >= lane_capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    static Counter& drop_counter =
        MetricsRegistry::global().counter(names::kTraceDropped);
    drop_counter.add();
    return;
  }
  lane.events[slot] = event;
}

void Trace::cell_flushed(std::uint32_t cell, bool completed) {
  flush_order_.push_back({cell, completed});
  finalized_ = false;
}

void Trace::finalize() {
  if (finalized_) return;
  finalized_ = true;
  ordered_.clear();
  canonical_ = 0;

  // Gather the raw capture (all recording threads have joined by contract,
  // so plain reads of the reserved prefix are safe).
  std::vector<TraceEvent> raw;
  for (Lane& lane : lanes_) {
    const std::size_t used =
        std::min(lane.next.load(std::memory_order_acquire), lane_capacity_);
    raw.insert(raw.end(), lane.events.begin(),
               lane.events.begin() + static_cast<std::ptrdiff_t>(used));
  }

  const auto within_cell_order = [](const TraceEvent& a, const TraceEvent& b) {
    if (a.episode != b.episode) return a.episode < b.episode;
    if (a.index != b.index) return a.index < b.index;
    return std::strcmp(a.name, b.name) < 0;
  };

  // Canonical section: completed cells in flush order, deterministic order
  // within each cell.
  std::vector<bool> consumed(raw.size(), false);
  for (const FlushRecord& flushed : flush_order_) {
    if (!flushed.completed) continue;
    std::vector<TraceEvent> cell_events;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (!consumed[i] && raw[i].cell == flushed.cell) {
        consumed[i] = true;
        cell_events.push_back(raw[i]);
      }
    }
    std::sort(cell_events.begin(), cell_events.end(), within_cell_order);
    ordered_.insert(ordered_.end(), cell_events.begin(), cell_events.end());
  }
  canonical_ = ordered_.size();

  // Tail: incomplete cells and unscoped events, best-effort deterministic
  // (by cell, then the same within-cell key) but not worker-count-invariant.
  std::vector<TraceEvent> tail;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (!consumed[i]) tail.push_back(raw[i]);
  }
  std::sort(tail.begin(), tail.end(),
            [&within_cell_order](const TraceEvent& a, const TraceEvent& b) {
              if (a.cell != b.cell) return a.cell < b.cell;
              return within_cell_order(a, b);
            });
  ordered_.insert(ordered_.end(), tail.begin(), tail.end());
}

namespace {

void append_us(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out += buf;
}

}  // namespace

std::string Trace::to_chrome_json() {
  finalize();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : ordered_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += event.name;  // span names are identifier-shaped literals
    out += "\",\"cat\":\"dice\",\"ph\":\"X\",\"ts\":";
    append_us(out, event.t_start_us);
    out += ",\"dur\":";
    append_us(out, event.dur_us);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(event.worker);
    out += ",\"args\":{";
    if (event.cell != kNoCell) {
      out += "\"cell\":";
      out += std::to_string(event.cell);
      out += ',';
    }
    out += "\"episode\":";
    out += std::to_string(event.episode);
    out += ",\"index\":";
    out += std::to_string(event.index);
    out += "}}";
  }
  out += "]}";
  return out;
}

bool Trace::write_chrome_json(const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  const std::string json = to_chrome_json();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(file);
}

void Trace::clear() {
  for (Lane& lane : lanes_) lane.next.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  flush_order_.clear();
  ordered_.clear();
  canonical_ = 0;
  finalized_ = false;
  epoch_ = Clock::now();
}

}  // namespace dice::obs
