#include "obs/progress.hpp"

#include <cstdio>

#include "explore/pool.hpp"
#include "obs/names.hpp"
#include "util/log.hpp"

namespace dice::obs {

namespace {

/// hits / (hits + misses) as a percentage; -1 when there was no traffic.
double hit_rate(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t total = hits + misses;
  if (total == 0) return -1.0;
  return 100.0 * static_cast<double>(hits) / static_cast<double>(total);
}

void append_rate(std::string& line, const char* label, double rate) {
  char buf[64];
  if (rate < 0.0) {
    std::snprintf(buf, sizeof(buf), " %s=n/a", label);
  } else {
    std::snprintf(buf, sizeof(buf), " %s=%.1f%%", label, rate);
  }
  line += buf;
}

}  // namespace

ProgressReporter::ProgressReporter(Options options)
    : options_(options), baseline_(MetricsRegistry::global().snapshot()) {}

void ProgressReporter::on_cell_start(const explore::CellDescriptor& cell) {
  if (options_.next != nullptr) options_.next->on_cell_start(cell);
}

void ProgressReporter::on_fault(const explore::CellDescriptor& cell,
                                const core::FaultReport& fault) {
  if (options_.next != nullptr) options_.next->on_fault(cell, fault);
}

void ProgressReporter::on_cell_done(const explore::CellDescriptor& cell,
                                    const explore::CellResult& result) {
  if (options_.next != nullptr) options_.next->on_cell_done(cell, result);
}

void ProgressReporter::on_progress(const explore::CampaignProgress& progress) {
  last_ = progress;
  ++lines_;

  const MetricsSnapshot delta =
      MetricsRegistry::global().snapshot().delta_since(baseline_);

  std::string line;
  char head[128];
  std::snprintf(head, sizeof(head), "cells %zu/%zu faults=%zu", progress.cells_done,
                progress.cells_total, progress.faults);
  line += head;
  append_rate(line, "solver_hit",
              hit_rate(delta.counter_value(names::kSolverCacheHits),
                       delta.counter_value(names::kSolverCacheMisses)));
  append_rate(line, "live_hit",
              hit_rate(delta.counter_value(names::kLiveCacheHits),
                       delta.counter_value(names::kLiveCacheMisses)));
  append_rate(line, "arena_reuse",
              hit_rate(delta.counter_value(names::kArenaReuses),
                       delta.counter_value(names::kArenaRebuilds)));
  if (options_.pool != nullptr) {
    const explore::ExplorePool::Stats stats = options_.pool->stats();
    char occ[64];
    std::snprintf(occ, sizeof(occ), " occupancy=%zu/%zu", stats.occupied_workers(),
                  options_.pool->workers());
    line += occ;
  }
  if (progress.stop_requested) line += " stopping";

  last_line_ = line;
  util::Logger("obs.progress").info() << line;

  if (options_.next != nullptr) options_.next->on_progress(progress);
}

}  // namespace dice::obs
