// obs::MetricsRegistry — the process-wide telemetry counter surface.
//
// The paper's stance is ONLINE testing: DiCE runs beside a deployed system,
// so operators must be able to see what exploration is doing (overhead,
// coverage, cache traffic) without perturbing it. Before this subsystem
// that visibility was smeared across five unrelated `Stats` structs; the
// registry is the one process-wide place every layer reports into and the
// one place a scrape reads from.
//
// Hot-path contract — telemetry must be PASSIVE:
//  * No locks and no contended read-modify-write on the clone path. Every
//    metric keeps per-thread slots: a thread is leased its own slot (see
//    this_thread_slot), and the single-writer update is a relaxed
//    load+store pair that compiles to a plain add — the relaxed atomic
//    storage exists purely so a concurrent scrape has defined behavior,
//    never for ordering. Only threads beyond the slot pool (overflow) fall
//    back to a relaxed fetch_add.
//  * Recording never branches on data and never allocates. Registration
//    (name -> handle) takes a mutex, but handles are cached by callers
//    (function-local statics), so the hot path never sees it.
//  * Compiled out (-DDICE_OBS=OFF -> DICE_OBS_DISABLED), every record call
//    is an empty inline function; behavior is byte-identical either way —
//    the determinism receipt in tests/obs_test.cpp pins it.
//
// Scrape: snapshot() merges the slots of every metric into a
// MetricsSnapshot whose entries are in stable (name-sorted) order, with
// JSON and Prometheus-style text exposition. Counters are cumulative for
// the process lifetime; per-run views are deltas (delta_since), which is
// how CampaignResult::telemetry is produced.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dice::obs {

#if defined(DICE_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Exclusive per-thread slots available before threads share the overflow
/// slot. Slots are leased on first use and returned at thread exit, so a
/// process that churns pools (every ExplorePool spawns fresh workers)
/// recycles them instead of exhausting the pool.
inline constexpr std::size_t kMaxThreadSlots = 128;
/// The shared fallback slot (index kMaxThreadSlots); updates to it use a
/// relaxed fetch_add because it may have many concurrent writers.
inline constexpr std::size_t kOverflowSlot = kMaxThreadSlots;
inline constexpr std::size_t kSlotCount = kMaxThreadSlots + 1;

/// The calling thread's leased slot index (kOverflowSlot when the lease
/// pool is exhausted). Stable for the thread's lifetime.
[[nodiscard]] std::size_t this_thread_slot() noexcept;

namespace detail {
/// Single-writer relaxed bump: compiles to a plain add on the owned slot;
/// the overflow slot (shared writers) takes the atomic RMW instead.
inline void bump(std::atomic<std::uint64_t>& cell, std::uint64_t n,
                 std::size_t slot) noexcept {
  if (slot == kOverflowSlot) {
    cell.fetch_add(n, std::memory_order_relaxed);
  } else {
    cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
}
inline void bump_signed(std::atomic<std::int64_t>& cell, std::int64_t n,
                        std::size_t slot) noexcept {
  if (slot == kOverflowSlot) {
    cell.fetch_add(n, std::memory_order_relaxed);
  } else {
    cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
}
}  // namespace detail

/// Monotonic counter with per-thread slots. add() is the hot-path entry;
/// value() merges on scrape.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if constexpr (!kEnabled) {
      (void)n;
      return;
    }
    const std::size_t slot = this_thread_slot();
    detail::bump(slots_[slot].value, n, slot);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& slot : slots_) total += slot.value.load(std::memory_order_relaxed);
    return total;
  }

  /// Tests only — callers must guarantee no concurrent writers.
  void reset_for_test() noexcept {
    for (Slot& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Slot, kSlotCount> slots_{};
};

/// Additive gauge (sum of per-thread contributions): add()/sub() from any
/// thread, value() on scrape. Models in-flight counts (campaigns running),
/// not sampled levels.
class Gauge {
 public:
  void add(std::int64_t n = 1) noexcept {
    if constexpr (!kEnabled) {
      (void)n;
      return;
    }
    const std::size_t slot = this_thread_slot();
    detail::bump_signed(slots_[slot].value, n, slot);
  }
  void sub(std::int64_t n = 1) noexcept { add(-n); }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const Slot& slot : slots_) total += slot.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset_for_test() noexcept {
    for (Slot& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> value{0};
  };
  std::array<Slot, kSlotCount> slots_{};
};

/// The default latency bucket ladder (milliseconds): sub-100µs clone resets
/// up to second-scale bootstraps.
[[nodiscard]] const std::vector<double>& default_latency_bounds_ms();

/// Fixed-bucket histogram with per-thread slots. Bucket semantics match
/// Prometheus: a value lands in the first bucket whose upper bound is >= it
/// (`le`); values above the last bound land in the implicit +Inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept {
    if constexpr (!kEnabled) {
      (void)value;
      return;
    }
    const std::size_t slot = this_thread_slot();
    std::size_t bucket = 0;
    while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
    detail::bump(counts_[slot * stride_ + bucket], 1, slot);
    std::atomic<double>& sum = sums_[slot];
    if (slot == kOverflowSlot) {
      sum.fetch_add(value, std::memory_order_relaxed);
    } else {
      sum.store(sum.load(std::memory_order_relaxed) + value, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket merged counts, one entry per bound plus the final +Inf
  /// bucket (size bounds()+1).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;

  void reset_for_test() noexcept;

 private:
  std::vector<double> bounds_;
  std::size_t stride_ = 0;  ///< bounds_.size() + 1 (the +Inf bucket)
  /// kSlotCount consecutive stride_-sized bucket rows.
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::vector<std::atomic<double>> sums_;
};

/// One merged, stable-ordered (name-sorted) reading of every registered
/// metric. Plain data: copy, diff, serialize freely.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (+Inf last)
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<CounterValue> counters;      ///< name-sorted
  std::vector<GaugeValue> gauges;          ///< name-sorted
  std::vector<HistogramValue> histograms;  ///< name-sorted

  /// The counter's value, 0 when absent — the convenience the
  /// ProgressReporter rate math is written against.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept;

  /// This snapshot minus `earlier`: counters and histogram buckets
  /// subtract (clamped at 0 for metrics that did not exist earlier);
  /// gauges keep their current level (a gauge is not cumulative).
  [[nodiscard]] MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Key order is the stable name order, so equal snapshots serialize to
  /// equal bytes.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus-style text exposition (# TYPE lines, _bucket/_sum/_count
  /// series for histograms).
  [[nodiscard]] std::string to_text() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every component reports into.
  [[nodiscard]] static MetricsRegistry& global();

  /// Returns the named metric, registering it on first use. Handles stay
  /// valid for the registry's lifetime — cache them (function-local static
  /// references at instrumentation sites) so the hot path never takes the
  /// registration mutex. Names must come from obs/names.hpp.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// First registration fixes the bucket bounds; later calls with a
  /// different ladder get the existing histogram unchanged.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     const std::vector<double>& bounds =
                                         default_latency_bounds_ms());

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every slot of every metric. Tests only — callers must
  /// guarantee no concurrent writers (no pool mid-batch).
  void reset_for_test();

 private:
  mutable std::mutex mutex_;  ///< registration + scrape; never on a record path
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace dice::obs
