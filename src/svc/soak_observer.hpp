// svc::SoakObserver — the liveness-first wall-clock event stream of the
// resident soak daemon (docs/SERVICE.md).
//
// The canonical CampaignObserver stream is deterministic by construction: a
// reorder buffer holds finished cells until every earlier cell has landed,
// so a slow cell delays visibility of every cell behind it. That is the
// right trade for CI receipts and the wrong one for an operator watching a
// resident daemon: they want to see cells AS THEY COMPLETE. This observer
// plugs into the second, liveness-first stream
// (RunControl::wall_observer / CampaignOptions::Telemetry::wall_observer):
// the same start -> fault* -> done burst per cell, delivered the moment the
// cell's task body finishes, in WALL-CLOCK completion order.
//
// The completion order is explicitly NON-deterministic — it varies across
// runs and worker counts, and nothing downstream may treat it as a receipt.
// The canonical stream stays byte-identical and remains the CI surface;
// this one is for dashboards, logs and progress. Strictly passive either
// way (the passivity pin in tests/svc_soak_test.cpp covers both streams).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "explore/control.hpp"

namespace dice::svc {

class SoakObserver : public explore::CampaignObserver {
 public:
  struct Stats {
    std::uint64_t cells_seen = 0;   ///< on_cell_done deliveries
    std::uint64_t faults_seen = 0;  ///< on_fault deliveries (completed cells only)
    /// Completions that arrived before some lower-indexed cell had — direct
    /// evidence this stream really is wall-clock ordered, not canonical.
    std::uint64_t out_of_order = 0;
  };

  /// Optional sink invoked (serialized, on a worker thread) per completed
  /// delivery — how dice_soakd turns cell completions into log lines. Keep
  /// it fast: a slow sink backpressures the worker that finished the cell
  /// (though never the canonical stream, which runs under its own mutex).
  using Sink =
      std::function<void(const explore::CellDescriptor&, const explore::CellResult&)>;

  explicit SoakObserver(Sink sink = nullptr) : sink_(std::move(sink)) {}

  void on_fault(const explore::CellDescriptor& cell,
                const core::FaultReport& fault) override;
  void on_cell_done(const explore::CellDescriptor& cell,
                    const explore::CellResult& result) override;

  [[nodiscard]] Stats stats() const;
  /// Cell indices in the order their completions were delivered. A receipt
  /// of LIVENESS only — two runs may legitimately disagree.
  [[nodiscard]] std::vector<std::size_t> completion_order() const;

 private:
  mutable std::mutex mutex_;
  Stats stats_;
  std::vector<std::size_t> completion_order_;
  std::size_t max_index_seen_ = 0;
  bool any_seen_ = false;
  Sink sink_;
};

}  // namespace dice::svc
