#include "svc/soak_service.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>

#include "dice/system.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "shard/coordinator.hpp"
#include "shard/scenario_set.hpp"
#include "snapshot/prepared.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace dice::svc {

namespace {

const util::Logger& logger() {
  static util::Logger instance("svc");
  return instance;
}

struct SvcMetrics {
  obs::Counter& rounds;
  obs::Counter& warm_starts;
  obs::Counter& knob_swaps;
};

[[nodiscard]] SvcMetrics& svc_metrics() {
  static SvcMetrics metrics{
      obs::MetricsRegistry::global().counter(obs::names::kSvcRounds),
      obs::MetricsRegistry::global().counter(obs::names::kSvcWarmStarts),
      obs::MetricsRegistry::global().counter(obs::names::kSvcKnobSwaps)};
  return metrics;
}

constexpr std::size_t kNoPrototype = static_cast<std::size_t>(-1);

/// Canonical-stream capture used to fold a round into the service ledger
/// WITH cell identity: result.faults alone cannot distinguish two
/// content-identical faults from different cells (the matrix's own ledger
/// salts per cell), so the fold replays the same per-cell salting.
struct FoldObserver final : explore::CampaignObserver {
  struct Item {
    std::size_t cell = 0;
    core::FaultReport fault;
  };
  std::vector<Item> items;

  void on_fault(const explore::CellDescriptor& cell,
                const core::FaultReport& fault) override {
    items.push_back(Item{cell.index, fault});
  }
};

[[nodiscard]] std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

[[nodiscard]] std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] util::Status write_text_atomic(const std::string& path,
                                             const std::string& text,
                                             const char* code) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return util::make_error(code, "cannot open " + tmp + " for writing");
    out << text;
    out.flush();
    if (!out) return util::make_error(code, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::make_error(code, "cannot rename " + tmp + " over " + path);
  }
  return util::Status::success();
}

/// Cross-product prototype index for a stored key under the CURRENT
/// campaign, or kNoPrototype when the options no longer produce it.
[[nodiscard]] std::size_t prototype_index(const explore::ScenarioMatrix& matrix,
                                          const WarmKey& key) {
  const std::vector<explore::ScenarioSpec>& specs = matrix.scenarios();
  const std::vector<std::string>& impls = matrix.options().implementations;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    if (specs[s].name != key.scenario) continue;
    for (std::size_t p = 0; p < impls.size(); ++p) {
      if (impls[p] == key.implementation) return s * impls.size() + p;
    }
  }
  return kNoPrototype;
}

}  // namespace

std::uint64_t fault_set_hash(const std::vector<core::FaultReport>& faults) {
  std::uint64_t h = util::kFnvOffset;
  for (const core::FaultReport& fault : faults) {
    h = util::fnv1a(fault.to_string(), h);
  }
  return util::hash_finalize(h);
}

util::Status SoakOptions::validate() const {
  if (persist_every_rounds == 0) {
    return util::make_error("svc.options.zero_persist_cadence",
                            "persist_every_rounds must be >= 1");
  }
  if (round_interval.count() < 0) {
    return util::make_error("svc.options.negative_interval",
                            "round_interval cannot be negative");
  }
  if (shard_processes > 0) {
    if (shard_worker_path.empty()) {
      return util::make_error("svc.options.shard_worker_path",
                              "shard_processes > 0 requires shard_worker_path");
    }
    if (auto resolved = shard::resolve_scenario_set(shard_scenario_set);
        !resolved.ok()) {
      return util::make_error("svc.options.shard_scenario_set",
                              resolved.error().detail);
    }
  }
  return campaign.validate();
}

std::string SoakReport::to_json() const {
  std::string out = "{";
  out += "\"rounds\":" + std::to_string(rounds);
  out += ",\"knob_swaps\":" + std::to_string(knob_swaps);
  out += ",\"warm_starts\":" + std::to_string(warm_starts);
  out += ",\"primed_from_store\":" + std::to_string(primed_from_store);
  out += std::string(",\"warm_started\":") + (warm_started ? "true" : "false");
  out += ",\"round_summaries_dropped\":" + std::to_string(round_summaries_dropped);
  out += ",\"round_summaries\":[";
  for (std::size_t i = 0; i < round_summaries.size(); ++i) {
    const RoundSummary& summary = round_summaries[i];
    if (i != 0) out += ',';
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", summary.wall_ms);
    out += "{\"round\":" + std::to_string(summary.round);
    out += ",\"cells_completed\":" + std::to_string(summary.cells_completed);
    out += ",\"cells_from_cache\":" + std::to_string(summary.cells_from_cache);
    char bootstrap[32];
    std::snprintf(bootstrap, sizeof(bootstrap), "%.3f", summary.bootstrap_ms);
    out += ",\"bootstrap_ms\":" + std::string(bootstrap);
    out += ",\"faults\":" + std::to_string(summary.faults);
    out += ",\"new_faults\":" + std::to_string(summary.new_faults);
    out += ",\"fault_hash\":\"" + hex64(summary.fault_hash) + '"';
    out += std::string(",\"stopped\":") + (summary.stopped ? "true" : "false");
    out += ",\"wall_ms\":" + std::string(wall) + '}';
  }
  out += "],\"faults\":[";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const core::FaultReport& fault = faults[i];
    if (i != 0) out += ',';
    out += "{\"class\":\"" + json_escape(core::to_string(fault.fault_class)) + '"';
    out += ",\"check\":\"" + json_escape(fault.check) + '"';
    out += ",\"node\":" + std::to_string(fault.node);
    out += ",\"episode\":" + std::to_string(fault.episode);
    out += std::string(",\"potential\":") + (fault.potential ? "true" : "false");
    out += ",\"description\":\"" + json_escape(fault.description) + "\"}";
  }
  out += "]}";
  return out;
}

SoakService::SoakService(std::vector<explore::ScenarioSpec> scenarios,
                         SoakOptions options)
    : scenarios_(std::move(scenarios)),
      options_(std::move(options)),
      cache_(options_.campaign.caching.live_cache_max_entries) {
  const std::lock_guard<std::mutex> lock(mutex_);
  build_campaign_locked(options_.campaign);
  if (options_.store_path.empty() || !options_.warm_start) return;
  auto loaded = ArtifactStore(options_.store_path).load();
  if (loaded.ok()) {
    contents_ = std::move(loaded).take();
    unsat_ = contents_.unsat_keys;
    report_.primed_from_store = prime_cache_locked();
    report_.warm_started = report_.primed_from_store > 0;
    logger().info() << "warm start: primed " << report_.primed_from_store
                    << " live state(s), " << unsat_.size()
                    << " UNSAT key(s) from " << options_.store_path;
  } else if (loaded.error().code != "svc.store.missing") {
    // A bad store must never keep the daemon down: remember the typed
    // error for the operator and cold-start.
    store_error_ = loaded.error();
    logger().warn() << "store " << options_.store_path << " unusable ("
                    << store_error_.code << "): cold start";
  }
}

SoakService::~SoakService() {
  stop_.request_stop();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void SoakService::build_campaign_locked(const explore::CampaignOptions& options) {
  explore::CampaignOptions wired = options;
  // The warm-continuity machinery: every campaign generation reads and
  // feeds the SAME service-owned cache and UNSAT memo.
  wired.caching.live_cache = &cache_;
  wired.caching.unsat_seed = &unsat_;
  campaign_ = std::make_unique<explore::Campaign>(scenarios_, std::move(wired));
}

std::size_t SoakService::prime_cache_locked() {
  const explore::ScenarioMatrix& matrix = campaign_->matrix();
  const auto& prototypes = matrix.prototypes();
  std::size_t primed = 0;
  // Raw-only priming: the entry carries just the persisted cut, no decoded
  // form. The first resume of a primed key takes System::reset_from_raw's
  // fused parse+install (one pass instead of decode-then-copy), which is
  // what keeps restart-to-explored cheap; promote_decoded_locked() builds
  // the shareable decoded form AFTER round 1, off the restart path, so
  // rounds 2+ resume without re-parsing. An artifact that later turns out
  // undecodable (topology drifted under the same key) just fails its
  // resume and that cell falls back to a fresh bootstrap — same net effect
  // as not priming it, without paying a validation decode up front.
  for (const LiveStateArtifact& artifact : contents_.live_states) {
    const std::size_t proto = prototype_index(matrix, artifact.key);
    if (proto == kNoPrototype) continue;  // options no longer produce this key
    auto state = std::make_shared<snapshot::PreparedLiveState>();
    state->raw = std::make_shared<const snapshot::Snapshot>(artifact.snap);
    state->resume_at = artifact.resume_at;
    state->bootstrap_executed = artifact.bootstrap_executed;
    state->quiesced = artifact.quiesced;
    state->oscillation_exit = artifact.oscillation_exit;
    const explore::LiveStateCache::Key key{
        prototypes[proto], artifact.key.seed,
        static_cast<std::size_t>(artifact.key.bootstrap_events),
        artifact.key.flip_exit};
    const explore::LiveStateCache::Lookup lookup = cache_.get_or_compute(
        key, [&state]() -> std::shared_ptr<const snapshot::PreparedLiveState> {
          return state;
        });
    if (!lookup.hit) ++primed;
  }
  return primed;
}

void SoakService::promote_decoded_locked() {
  // Raw-only entries (primed from the store) served their first resume via
  // the fused one-shot restore; every LATER round resumes the same key
  // again, and for those the decode-once shareable form wins. Build it here
  // — round end, restart latency already banked — and swap it in. The raw
  // cut rides along so harvest keeps persisting the entry.
  const explore::ScenarioMatrix& matrix = campaign_->matrix();
  const auto& prototypes = matrix.prototypes();
  std::map<std::size_t, std::unique_ptr<core::System>> resolvers;
  for (const explore::LiveStateCache::ResolvedEntry& entry :
       cache_.resolved_entries()) {
    if (entry.state == nullptr) continue;
    if (entry.state->snapshot != nullptr) continue;  // already decoded
    if (entry.state->raw == nullptr) continue;
    std::size_t proto = kNoPrototype;
    for (std::size_t i = 0; i < prototypes.size(); ++i) {
      if (static_cast<const void*>(prototypes[i].get()) ==
          entry.key.prototype.get()) {
        proto = i;
        break;
      }
    }
    if (proto == kNoPrototype) continue;
    // One resolver System per prototype: never started, only consulted for
    // its routers' checkpoint codecs while decoding raw cuts.
    std::unique_ptr<core::System>& resolver = resolvers[proto];
    if (resolver == nullptr) {
      resolver = std::make_unique<core::System>(prototypes[proto]);
    }
    core::System* sys = resolver.get();
    auto prepared = snapshot::PreparedSnapshot::build(
        *entry.state->raw,
        [sys](sim::NodeId node) -> const snapshot::Checkpointable* {
          return node < sys->size() ? &sys->router(node) : nullptr;
        });
    if (!prepared.ok()) continue;  // undecodable: keep the raw-only entry
    auto promoted = std::make_shared<snapshot::PreparedLiveState>(*entry.state);
    promoted->snapshot = std::move(prepared).take();
    (void)cache_.replace(entry.key, std::move(promoted));
  }
}

void SoakService::harvest_locked(const explore::MatrixResult& result) {
  // UNSAT memo: union of what we seeded and what the round proved (both
  // sides ascending+deduplicated).
  std::vector<std::uint64_t> merged;
  merged.reserve(contents_.unsat_keys.size() + result.unsat_keys.size());
  std::set_union(contents_.unsat_keys.begin(), contents_.unsat_keys.end(),
                 result.unsat_keys.begin(), result.unsat_keys.end(),
                 std::back_inserter(merged));
  contents_.unsat_keys = std::move(merged);
  unsat_ = contents_.unsat_keys;

  // Live states: every resolved cache entry that still carries its raw cut
  // replaces (or joins) the stored artifact under its stable name key.
  const explore::ScenarioMatrix& matrix = campaign_->matrix();
  const std::vector<explore::ScenarioSpec>& specs = matrix.scenarios();
  const std::vector<std::string>& impls = matrix.options().implementations;
  const auto& prototypes = matrix.prototypes();
  for (const explore::LiveStateCache::ResolvedEntry& entry :
       cache_.resolved_entries()) {
    if (entry.state == nullptr || entry.state->raw == nullptr) continue;
    std::size_t found = kNoPrototype;
    for (std::size_t i = 0; i < prototypes.size(); ++i) {
      if (static_cast<const void*>(prototypes[i].get()) ==
          entry.key.prototype.get()) {
        found = i;
        break;
      }
    }
    if (found == kNoPrototype) continue;  // entry from a pre-swap generation
    LiveStateArtifact artifact;
    artifact.key = WarmKey{specs[found / impls.size()].name,
                           impls[found % impls.size()], entry.key.seed,
                           entry.key.bootstrap_events, entry.key.flip_exit};
    artifact.resume_at = entry.state->resume_at;
    artifact.bootstrap_executed = entry.state->bootstrap_executed;
    artifact.quiesced = entry.state->quiesced;
    artifact.oscillation_exit = entry.state->oscillation_exit;
    artifact.snap = *entry.state->raw;
    artifact.cut_hash = artifact.snap.cut_hash();
    const auto it = std::lower_bound(
        contents_.live_states.begin(), contents_.live_states.end(), artifact.key,
        [](const LiveStateArtifact& a, const WarmKey& k) { return a.key < k; });
    if (it != contents_.live_states.end() && it->key == artifact.key) {
      *it = std::move(artifact);
    } else {
      contents_.live_states.insert(it, std::move(artifact));
    }
  }
}

void SoakService::apply_pending_swap_locked() {
  if (pending_shard_.has_value()) {
    options_.shard_processes = *pending_shard_;
    pending_shard_.reset();
    ++report_.knob_swaps;
    svc_metrics().knob_swaps.add(1);
    logger().info() << "shard swap applied at round " << report_.rounds << ": "
                    << (options_.shard_processes == 0
                            ? std::string("in-process")
                            : std::to_string(options_.shard_processes) +
                                  " worker process(es)");
  }
  if (!pending_.has_value()) return;
  options_.campaign = std::move(*pending_);
  pending_.reset();
  // The old campaign's prototypes die with it, so its cache entries can
  // never be hit again: drop them and re-prime from the in-memory contents
  // against the NEW prototypes. Warm state carries across the swap for
  // every key the new options still produce.
  cache_.clear();
  build_campaign_locked(options_.campaign);
  const std::size_t reprimed = prime_cache_locked();
  ++report_.knob_swaps;
  svc_metrics().knob_swaps.add(1);
  logger().info() << "knob swap applied at round " << report_.rounds
                  << " (re-primed " << reprimed << " live state(s))";
}

RoundSummary SoakService::run_round() {
  std::uint64_t round = 0;
  shard::ShardOptions shard_options;
  std::vector<std::uint64_t> unsat_seed;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    apply_pending_swap_locked();
    round = report_.rounds;
    shard_options.processes = options_.shard_processes;
    if (shard_options.processes > 0) {
      shard_options.worker_path = options_.shard_worker_path;
      shard_options.scenario_set = options_.shard_scenario_set;
      unsat_seed = unsat_;  // the warm-start memo crossing to the workers
    }
  }

  // The round itself runs unlocked: swap_options()/report() stay reachable
  // while cells execute. The thread model (one driver) guarantees nobody
  // rebuilds campaign_ underneath us.
  FoldObserver fold;
  explore::CampaignResult result;
  if (shard_options.processes > 0) {
    // Sharded round: the coordinator deals the identical cell space to
    // worker processes and merges through the same CellMerger, so the
    // canonical stream FoldObserver sees — and every hash downstream — is
    // byte-identical to the in-process branch. Worker bootstrap caches die
    // with their processes (no live-state harvest crosses back); the UNSAT
    // memo crosses in both directions via the job/done frames. A stop
    // request interrupts at the round boundary, not mid-round.
    const auto begin = std::chrono::steady_clock::now();
    auto sharded =
        shard::ShardCoordinator(options_.campaign, shard_options).run(&fold, &unsat_seed);
    if (sharded.ok()) {
      for (const shard::ShardLoss& loss : sharded.value().losses) {
        logger().warn() << "round " << round << " lost shard " << loss.shard
                        << " (" << loss.cells.size() << " cell(s), " << loss.code
                        << "): " << loss.detail;
      }
      static_cast<explore::MatrixResult&>(result) = std::move(sharded.value().matrix);
    } else {
      logger().warn() << "sharded round " << round << " failed ("
                      << sharded.error().code << "): " << sharded.error().detail;
      result.stopped = true;
    }
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - begin)
                         .count();
  } else {
    result = campaign_->run(&fold, stop_.token());
  }

  RoundSummary summary;
  summary.round = round;
  summary.cells_completed = result.cells_completed;
  for (const explore::CellResult& cell : result.cells) {
    if (cell.bootstrap_from_cache) ++summary.cells_from_cache;
    summary.bootstrap_ms += cell.bootstrap_ms;
  }
  summary.faults = result.faults.size();
  summary.fault_hash = fault_set_hash(result.faults);
  summary.stopped = result.stopped;
  summary.wall_ms = result.wall_ms;

  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < fold.items.size(); ++i) {
    // Priority = serial encounter order across the whole soak (round-major,
    // canonical stream order within the round); salt = cell index + 1,
    // mirroring the matrix's own per-cell salting, so a content-identical
    // fault in two cells stays two findings while the same finding
    // recurring every round merges to its first sighting.
    if (ledger_.record(fold.items[i].fault, (round << 32) | i,
                       fold.items[i].cell + 1)) {
      ++summary.new_faults;
    }
  }
  harvest_locked(result);
  promote_decoded_locked();
  ++report_.rounds;
  report_.warm_starts += summary.cells_from_cache;
  report_.faults = ledger_.snapshot_sorted();
  if (report_.round_summaries.size() == kMaxRoundSummaries) {
    report_.round_summaries.erase(report_.round_summaries.begin());
    ++report_.round_summaries_dropped;
  }
  report_.round_summaries.push_back(summary);
  svc_metrics().rounds.add(1);
  svc_metrics().warm_starts.add(summary.cells_from_cache);
  if (report_.rounds % options_.persist_every_rounds == 0) {
    const util::Status persisted = persist_locked();
    if (!persisted.ok()) {
      logger().warn() << "persist failed (" << persisted.error().code << "): "
                      << persisted.error().detail;
    }
  }
  return summary;
}

SoakReport SoakService::run(std::size_t rounds) {
  for (std::size_t i = 0; i < rounds; ++i) {
    if (stop_.stop_requested()) break;
    (void)run_round();
  }
  return report();
}

void SoakService::loop() {
  // draining_ is consulted only AFTER a round: drain() never aborts work,
  // so a drain racing ahead of the first round still gets one well-formed
  // round (stop() is the abort path — it fires the token checked here and
  // inside the round itself).
  while (!stop_.stop_requested()) {
    (void)run_round();
    bool done = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done = options_.max_rounds != 0 && report_.rounds >= options_.max_rounds;
    }
    if (done || stop_.stop_requested() ||
        draining_.load(std::memory_order_acquire)) {
      break;
    }
    // Cadence sleep in small slices: request_stop() is an atomic store
    // (usable from a signal handler), so the loop polls rather than waits
    // on a condition variable and reacts within ~50ms.
    std::chrono::milliseconds remaining = options_.round_interval;
    while (remaining.count() > 0 && !stop_.stop_requested() &&
           !draining_.load(std::memory_order_acquire)) {
      const std::chrono::milliseconds slice =
          std::min(remaining, std::chrono::milliseconds(50));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
  // Final persist: even a SIGINT'd daemon leaves a well-formed store,
  // report and metrics file behind.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const util::Status persisted = persist_locked();
    if (!persisted.ok()) {
      logger().warn() << "final persist failed (" << persisted.error().code
                      << "): " << persisted.error().detail;
    }
  }
  running_.store(false, std::memory_order_release);
}

void SoakService::start() {
  assert(!lifecycle_used_ && "SoakService supports one start/stop lifecycle");
  lifecycle_used_ = true;
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { loop(); });
}

void SoakService::stop() {
  stop_.request_stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  running_.store(false, std::memory_order_release);
}

void SoakService::drain() {
  draining_.store(true, std::memory_order_release);
  if (loop_thread_.joinable()) loop_thread_.join();
  running_.store(false, std::memory_order_release);
}

void SoakService::request_stop() noexcept { stop_.request_stop(); }

bool SoakService::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

util::Status SoakService::swap_options(explore::CampaignOptions next) {
  if (util::Status status = next.validate(); !status.ok()) return status;
  const std::lock_guard<std::mutex> lock(mutex_);
  pending_ = std::move(next);  // last queued swap wins
  return util::Status::success();
}

util::Status SoakService::swap_shard_processes(std::size_t processes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (processes > 0) {
    if (options_.shard_worker_path.empty()) {
      return util::make_error("svc.options.shard_worker_path",
                              "cannot swap to sharded mode without shard_worker_path");
    }
    if (auto resolved = shard::resolve_scenario_set(options_.shard_scenario_set);
        !resolved.ok()) {
      return util::make_error("svc.options.shard_scenario_set",
                              resolved.error().detail);
    }
  }
  pending_shard_ = processes;  // last queued swap wins
  return util::Status::success();
}

SoakReport SoakService::report() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return report_;
}

util::Status SoakService::persist() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return persist_locked();
}

util::Status SoakService::persist_locked() {
  util::Status status = util::Status::success();
  auto note = [&status](util::Status candidate) {
    if (status.ok() && !candidate.ok()) status = std::move(candidate);
  };
  if (!options_.store_path.empty()) {
    note(ArtifactStore(options_.store_path).save(contents_));
  }
  if (!options_.report_path.empty()) {
    note(write_text_atomic(options_.report_path, report_.to_json() + "\n",
                           "svc.report.io"));
  }
  if (!options_.metrics_path.empty()) {
    note(write_text_atomic(options_.metrics_path,
                           obs::MetricsRegistry::global().snapshot().to_text(),
                           "svc.metrics.io"));
  }
  return status;
}

util::Error SoakService::store_error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_error_;
}

}  // namespace dice::svc
