// svc::SoakService — the resident online soak daemon (docs/SERVICE.md).
//
// The paper's deployment model is a *resident* tester: DiCE runs beside the
// live system indefinitely, not as a batch job someone re-launches. Before
// this subsystem the repo's soaks were batch Campaigns driven by hand:
// every restart paid the full cold-start bill and every result vanished
// with the process. SoakService closes both gaps:
//
//  * it drives explore::Campaign in ROUNDS — fixed cadence or back-to-back
//    ("run when idle") — folding each round's CampaignResult into one
//    cumulative SoakReport whose fault sets merge through a FaultLedger
//    (content-identical faults dedup across rounds; serial-order
//    determinism per round is untouched);
//  * it persists warm-start state (svc::ArtifactStore): harvested
//    PreparedLiveStates and the proven-UNSAT solver memo survive the
//    process, so a killed-and-restarted daemon resumes bootstraps in
//    microseconds instead of replaying them;
//  * live knobs: swap_options() validates a whole CampaignOptions and
//    applies it exactly at the next round boundary — a rejected swap keeps
//    the old options and returns the typed "campaign.options.*" error, and
//    the running round is never perturbed;
//  * a control surface: periodic SoakReport JSON and Prometheus text
//    written atomically (tmp + rename), so an operator tails files instead
//    of attaching a debugger.
//
// Determinism receipt: every round re-runs the same campaign over the same
// seeds, so each round's canonical fault-set hash equals the standalone
// batch harness's, at any worker count, cold or warm — pinned by
// tests/svc_soak_test.cpp against the literal topology27 hash.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "explore/campaign.hpp"
#include "svc/artifact_store.hpp"

namespace dice::svc {

/// The canonical fault-set hash: FNV-1a chained over each report's
/// to_string() in order, finalized. The ONE hash definition shared by the
/// service, the benches and the receipt tests — byte-identical fault lists
/// and only those collide.
[[nodiscard]] std::uint64_t fault_set_hash(const std::vector<core::FaultReport>& faults);

/// Everything the daemon itself tunes. The exploration knobs live in the
/// nested CampaignOptions; fields here govern rounds, persistence and the
/// control files. docs/SERVICE.md documents every field (two-way gate in
/// tools/check_docs.sh).
struct SoakOptions {
  /// Exploration configuration for every round. Validated through
  /// CampaignOptions::validate() by SoakOptions::validate(). The service
  /// overrides `caching.live_cache` and `caching.unsat_seed` with its own
  /// service-owned instances (that is the warm-continuity machinery);
  /// everything else is honored as given.
  explore::CampaignOptions campaign{};
  /// Stop after this many rounds; 0 = unbounded (run until stop()/drain()).
  std::size_t max_rounds = 0;
  /// Fixed round cadence: the delay between one round's end and the next
  /// round's start. 0 = run-when-idle (rounds back to back).
  std::chrono::milliseconds round_interval{0};
  /// Warm-start store file (svc::ArtifactStore). "" = no persistence: every
  /// start is cold and nothing is saved.
  std::string store_path{};
  /// Cumulative SoakReport JSON, rewritten atomically (tmp + rename) on the
  /// persist cadence and at shutdown. "" = no report file.
  std::string report_path{};
  /// Prometheus text exposition of the global metrics registry, written
  /// beside the report on the same cadence. "" = no metrics file.
  std::string metrics_path{};
  /// Persist (store + report + metrics) once every N completed rounds; the
  /// final round always persists. Rejected at 0 by validate().
  std::size_t persist_every_rounds = 1;
  /// Load the store at construction and prime the bootstrap cache + UNSAT
  /// memo from it. Off = ignore any existing store (still saved to, if
  /// `store_path` is set).
  bool warm_start = true;
  /// Worker PROCESSES per round: 0 = in-process rounds (the default), N>0 =
  /// each round runs through shard::ShardCoordinator, dealing the cell
  /// space to N spawned dice_shard_worker processes and merging their
  /// results. The merged canonical stream is byte-identical to an
  /// in-process round (same CellMerger), so every round receipt — fault
  /// hash included — is unchanged by this knob.
  std::size_t shard_processes = 0;
  /// Path to the dice_shard_worker binary; required when shard_processes>0.
  std::string shard_worker_path{};
  /// Named scenario set (shard::resolve_scenario_set) the workers rebuild.
  /// Must resolve to the same scenarios this service was constructed with,
  /// or round hashes will (correctly) differ. Required when
  /// shard_processes > 0.
  std::string shard_scenario_set{};

  /// Rejects nonsense with stable "svc.options.*" codes (and whatever
  /// "campaign.options.*" code the nested options fail with).
  [[nodiscard]] util::Status validate() const;
};

/// One round's fold into the cumulative report.
struct RoundSummary {
  std::uint64_t round = 0;  ///< 0-based
  std::size_t cells_completed = 0;
  std::size_t cells_from_cache = 0;  ///< bootstraps served by a cache resume
  /// Summed live-system startup across this round's cells (fresh converge
  /// or cache resume) — the cold-vs-warm restart receipt bench_e7 gates on.
  double bootstrap_ms = 0.0;
  std::size_t faults = 0;            ///< this round's canonical fault count
  std::size_t new_faults = 0;        ///< fault keys this round added to the ledger
  /// Canonical hash of THIS round's fault set (fault_set_hash). Equal for
  /// every uninterrupted round of a fixed configuration — the receipt the
  /// soak tests pin against the batch harness.
  std::uint64_t fault_hash = 0;
  bool stopped = false;  ///< the round was cut short by stop()/deadline
  double wall_ms = 0.0;
};

/// The cumulative state of the soak, exposed by report() and serialized to
/// the report file. Cross-round fault dedup: content-identical faults from
/// different rounds merge to one entry (ledger priority = earliest round).
struct SoakReport {
  std::uint64_t rounds = 0;       ///< rounds completed (including stopped ones)
  std::uint64_t knob_swaps = 0;   ///< options swaps applied at round boundaries
  std::uint64_t warm_starts = 0;  ///< cumulative cells_from_cache over all rounds
  std::size_t primed_from_store = 0;  ///< artifacts loaded+decoded from the store
  bool warm_started = false;          ///< the store primed at least one artifact
  std::vector<RoundSummary> round_summaries;  ///< oldest first (bounded; see cap)
  std::uint64_t round_summaries_dropped = 0;  ///< oldest summaries beyond the cap
  std::vector<core::FaultReport> faults;  ///< cumulative, deduplicated, stable order

  /// Stable JSON (fixed key order, 64-bit hashes as hex strings). What the
  /// report file holds.
  [[nodiscard]] std::string to_json() const;
};

/// Thread model: ONE driver at a time. Either the daemon loop (start/stop/
/// drain) or a synchronous caller (run_round/run) owns round execution;
/// mixing them is a caller error. swap_options(), report(), request_stop()
/// and running() are safe from any thread while the loop runs.
class SoakService {
 public:
  /// Bound on retained per-round summaries (the cumulative counters and the
  /// fault ledger are unaffected): a resident daemon must not grow without
  /// bound. Oldest summaries are dropped and counted.
  static constexpr std::size_t kMaxRoundSummaries = 4096;

  /// Builds the campaign (service-wired caches) and — when `store_path` is
  /// set and `warm_start` — loads the store and primes the bootstrap cache
  /// and UNSAT memo. A missing store is the normal first boot; a corrupt or
  /// truncated one degrades to a cold start with the typed error retained
  /// in store_error() (the daemon NEVER refuses to start over a bad store).
  SoakService(std::vector<explore::ScenarioSpec> scenarios, SoakOptions options);
  ~SoakService();
  SoakService(const SoakService&) = delete;
  SoakService& operator=(const SoakService&) = delete;

  /// --- daemon lifecycle ---------------------------------------------------
  /// Spawns the round loop. One lifecycle per service: start() after a
  /// stop()/drain() is a caller error (assert).
  void start();
  /// Requests stop (interrupting the running round at its next safe point),
  /// joins the loop, persists. The final report is well-formed: a cut-short
  /// round folds only its completed cells.
  void stop();
  /// Lets the running round FINISH, then exits the loop, joins, persists.
  void drain();
  /// The stop request alone — an atomic flag store, safe from a signal
  /// handler (dice_soakd's SIGINT path). The loop notices within its
  /// polling slice; call stop()/drain() afterwards to join.
  void request_stop() noexcept;
  [[nodiscard]] bool running() const noexcept;

  /// --- synchronous driving (tests, examples, benches) ---------------------
  /// Runs exactly one round on the calling thread (applying any pending
  /// knob swap at its start) and returns its summary.
  RoundSummary run_round();
  /// Runs `rounds` rounds back to back and returns the final report.
  SoakReport run(std::size_t rounds);

  /// --- control surface -----------------------------------------------------
  /// Validates `next` and queues it; the swap is applied exactly at the
  /// next round boundary (the running round is never perturbed). On
  /// rejection the old options stay and the typed "campaign.options.*"
  /// error is returned. A second queued swap replaces the first. The
  /// service re-applies its cache wiring on top of `next`; warm state
  /// carries across the swap for keys the new options still produce.
  [[nodiscard]] util::Status swap_options(explore::CampaignOptions next);

  /// Queues a shard-mode change — N>0 worker processes, or 0 back to
  /// in-process — applied exactly at the next round boundary, like
  /// swap_options. Warm state carries across the swap: the UNSAT memo
  /// crosses the process boundary in both directions, and live states
  /// harvested from in-process rounds stay primed for the swap back.
  /// Rejects (typed "svc.options.*") when N>0 but shard_worker_path or
  /// shard_scenario_set is unusable.
  [[nodiscard]] util::Status swap_shard_processes(std::size_t processes);

  /// Snapshot of the cumulative report (copy; safe while the loop runs).
  [[nodiscard]] SoakReport report() const;
  /// Persists store + report + metrics now (first error wins). The round
  /// loop calls this on the persist cadence; external callers should only
  /// use it while no round is running.
  [[nodiscard]] util::Status persist();

  /// The typed error of the most recent failed store load (cold-start
  /// cause), empty code when the last load succeeded or never ran.
  [[nodiscard]] util::Error store_error() const;
  [[nodiscard]] const SoakOptions& options() const noexcept { return options_; }

 private:
  void loop();
  /// Applies a queued swap (campaign rebuild + cache re-prime). Caller
  /// holds mutex_.
  void apply_pending_swap_locked();
  /// Rebuilds campaign_ from `options` with the service's cache wiring.
  void build_campaign_locked(const explore::CampaignOptions& options);
  /// Publishes contents_' artifacts into the bootstrap cache as raw-only
  /// entries (no decode — the first resume per key takes the fused
  /// one-shot restore). Returns how many primed. Caller holds mutex_.
  std::size_t prime_cache_locked();
  /// Folds a finished round's cache/solver state back into contents_.
  /// Caller holds mutex_.
  void harvest_locked(const explore::MatrixResult& result);
  /// Decodes any still-raw-only cache entries into their shareable
  /// PreparedSnapshot form and swaps them in (LiveStateCache::replace), so
  /// rounds 2+ resume without re-parsing. Runs at round end, off the
  /// restart-critical path. Caller holds mutex_.
  void promote_decoded_locked();
  [[nodiscard]] util::Status persist_locked();

  std::vector<explore::ScenarioSpec> scenarios_;
  SoakOptions options_;
  /// Service-owned warm-start state, wired into every campaign this service
  /// builds: the bootstrap cache (CampaignOptions::Caching::live_cache) and
  /// the UNSAT seed vector (Caching::unsat_seed). Stable addresses for the
  /// service's lifetime — campaign rebuilds re-point at the same objects.
  explore::LiveStateCache cache_;
  std::vector<std::uint64_t> unsat_;
  std::unique_ptr<explore::Campaign> campaign_;
  explore::FaultLedger ledger_;

  mutable std::mutex mutex_;  ///< guards report_, contents_, pending_, store error
  SoakReport report_;
  StoreContents contents_;
  std::optional<explore::CampaignOptions> pending_;
  std::optional<std::size_t> pending_shard_;
  util::Error store_error_;

  explore::StopSource stop_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  bool lifecycle_used_ = false;
};

}  // namespace dice::svc
