// svc::ArtifactStore — the persistent warm-start store of the resident soak
// daemon (docs/SERVICE.md).
//
// A restarted daemon used to pay the full cold-start bill: every
// (scenario, seed) live system re-bootstrapped from zero and every solver
// verdict re-derived, even though the previous process had already done
// both. The store closes that gap across PROCESS lifetimes the same way
// LiveStateCache closes it across cells: it serializes every harvested
// PreparedLiveState (as its raw, standalone snapshot plus the resume
// metadata) together with the SolverCache's proven-UNSAT memo, and a fresh
// daemon re-decodes them against its own routers before the first round.
//
// Only artifacts that are sound to replay are persisted:
//  * live states are raw Chandy-Lamport cuts re-decoded through the exact
//    checkpoint codec a live capture uses — byte-identical resume;
//  * of the solver memo only proven-UNSAT keys travel (a seeded hit skips
//    solving with the verdict a fresh solve would reach; a replayed SAT
//    *model* could differ byte-wise and move fault bytes, so models never
//    travel).
//
// Robustness contract (mirrors bgp/checkpoint_codec): versioned magic
// envelope, whole-payload checksum, strict bounds-checked decode. A
// truncated, corrupted or alien file yields a typed error ("svc.store.*" /
// "bytes.*") and the caller cold-starts; it never crashes the daemon and
// never half-applies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/store.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace dice::svc {

/// Stable on-disk identity of one cached bootstrap. The in-memory
/// LiveStateCache keys by prototype POINTER identity, which cannot survive
/// a process; this is the same key projected onto names: the scenario and
/// implementation-axis entry select the prototype, the rest mirrors
/// explore::LiveStateCache::Key.
struct WarmKey {
  std::string scenario;
  std::string implementation;  ///< "" = blueprint as authored
  std::uint64_t seed = 0;
  std::uint64_t bootstrap_events = 0;
  std::uint32_t flip_exit = 0;  ///< bootstrap oscillation early-exit threshold

  [[nodiscard]] auto operator<=>(const WarmKey&) const = default;
};

/// One persisted bootstrap capture: the WarmKey plus everything
/// snapshot::PreparedLiveState carries, with the decoded cut replaced by
/// its raw (standalone) snapshot — the form that can travel between
/// processes and be re-decoded against the loading daemon's own routers.
struct LiveStateArtifact {
  WarmKey key;
  sim::Time resume_at = 0;
  std::uint64_t bootstrap_executed = 0;
  bool quiesced = false;
  bool oscillation_exit = false;
  /// snap.cut_hash() at save time; re-verified on decode so a store whose
  /// payload was regenerated inconsistently fails typed, never resumes a
  /// wrong state.
  std::uint64_t cut_hash = 0;
  snapshot::Snapshot snap;  ///< raw standalone cut (baseline_id must be 0)
};

/// Everything one store file holds. `live_states` is kept sorted by key and
/// `unsat_keys` ascending+deduplicated, so equal contents encode to equal
/// bytes (the cold-vs-warm byte-identity receipt diffs these files).
struct StoreContents {
  std::vector<LiveStateArtifact> live_states;
  std::vector<std::uint64_t> unsat_keys;
};

class ArtifactStore {
 public:
  /// v1 wire format: "DSVC" magic, version byte, u64 FNV-1a checksum over
  /// the payload, payload. The checksum is verified BEFORE any payload
  /// parsing, so every single-byte corruption is detected deterministically.
  static constexpr char kMagic[4] = {'D', 'S', 'V', 'C'};
  static constexpr std::uint8_t kVersion = 1;

  explicit ArtifactStore(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Serializes `contents` (canonicalized: artifacts sorted by key, unsat
  /// keys ascending+deduplicated — equal contents always encode to equal
  /// bytes). Refuses artifacts that are not sound to persist: a snapshot
  /// with `baseline_id != 0` or a node checkpoint riding the delta envelope
  /// ("svc.store.delta_snapshot") — a standalone capture never has either,
  /// and a delta cut re-decoded without its baseline would be garbage.
  [[nodiscard]] static util::Result<util::Bytes> encode(const StoreContents& contents);

  /// Strict decode: bad magic ("svc.store.bad_magic"), unknown version
  /// ("svc.store.bad_version"), checksum mismatch — any corruption or
  /// truncation inside the payload — ("svc.store.checksum_mismatch"),
  /// bytes left over after the payload ("svc.store.trailing_bytes"),
  /// undefined flag bits ("svc.store.malformed"), a snapshot whose
  /// recomputed cut hash moved ("svc.store.hash_mismatch"), or the
  /// bounds-checked reader's own "bytes.*" errors on a file shorter than
  /// the envelope. Never crashes, never returns a partial result.
  [[nodiscard]] static util::Result<StoreContents> decode(
      std::span<const std::uint8_t> data);

  /// Atomic save: encode, write to `path() + ".tmp"`, rename over the
  /// target — a crash mid-save leaves the previous store intact, a reader
  /// never observes a half-written file. I/O failures are
  /// "svc.store.io".
  [[nodiscard]] util::Status save(const StoreContents& contents) const;

  /// Reads and decodes the store. A missing file is the distinguished
  /// "svc.store.missing" (the normal first-boot cold start); everything
  /// else decodes strictly per decode().
  [[nodiscard]] util::Result<StoreContents> load() const;

 private:
  std::string path_;
};

}  // namespace dice::svc
