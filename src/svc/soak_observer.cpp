#include "svc/soak_observer.hpp"

#include "explore/matrix.hpp"

namespace dice::svc {

void SoakObserver::on_fault(const explore::CellDescriptor& cell,
                            const core::FaultReport& fault) {
  (void)cell;
  (void)fault;
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.faults_seen;
}

void SoakObserver::on_cell_done(const explore::CellDescriptor& cell,
                                const explore::CellResult& result) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.cells_seen;
    if (any_seen_ && cell.index < max_index_seen_) ++stats_.out_of_order;
    max_index_seen_ = any_seen_ ? std::max(max_index_seen_, cell.index) : cell.index;
    any_seen_ = true;
    completion_order_.push_back(cell.index);
  }
  // Outside our mutex: the sink may log or block briefly without holding up
  // a concurrent stats() reader. Deliveries themselves stay serialized by
  // the matrix's wall-stream mutex.
  if (sink_) sink_(cell, result);
}

SoakObserver::Stats SoakObserver::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<std::size_t> SoakObserver::completion_order() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completion_order_;
}

}  // namespace dice::svc
