#include "svc/artifact_store.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "snapshot/checkpoint.hpp"
#include "util/hash.hpp"

namespace dice::svc {

namespace {

using Clock = std::chrono::steady_clock;

struct StoreMetrics {
  obs::Histogram& save_ms;
  obs::Histogram& load_ms;
};

[[nodiscard]] StoreMetrics& store_metrics() {
  static StoreMetrics metrics{
      obs::MetricsRegistry::global().histogram(obs::names::kSvcStoreSaveMs),
      obs::MetricsRegistry::global().histogram(obs::names::kSvcStoreLoadMs)};
  return metrics;
}

constexpr std::uint8_t kFlagQuiesced = 0x01;
constexpr std::uint8_t kFlagOscillationExit = 0x02;
constexpr std::uint8_t kKnownFlags = kFlagQuiesced | kFlagOscillationExit;

void encode_artifact(util::ByteWriter& writer, const LiveStateArtifact& artifact) {
  writer.str(artifact.key.scenario);
  writer.str(artifact.key.implementation);
  writer.u64(artifact.key.seed);
  writer.vu64(artifact.key.bootstrap_events);
  writer.vu32(artifact.key.flip_exit);
  writer.vu64(artifact.resume_at);
  writer.vu64(artifact.bootstrap_executed);
  std::uint8_t flags = 0;
  if (artifact.quiesced) flags |= kFlagQuiesced;
  if (artifact.oscillation_exit) flags |= kFlagOscillationExit;
  writer.u8(flags);
  writer.u64(artifact.cut_hash);
  writer.vu64(artifact.snap.id);
  writer.vu64(artifact.snap.taken_at);
  writer.vu64(artifact.snap.nodes.size());
  for (const auto& [node, checkpoint] : artifact.snap.nodes) {
    writer.vu32(node);
    writer.u64(checkpoint.hash);
    writer.vu64(checkpoint.state.size());
    writer.raw(checkpoint.state);
  }
  writer.vu64(artifact.snap.channels.size());
  for (const auto& [channel, frames] : artifact.snap.channels) {
    writer.vu32(channel.from);
    writer.vu32(channel.to);
    writer.vu64(frames.size());
    for (const util::Bytes& frame : frames) {
      writer.vu64(frame.size());
      writer.raw(frame);
    }
  }
}

[[nodiscard]] util::Result<LiveStateArtifact> decode_artifact(util::ByteReader& reader) {
  LiveStateArtifact artifact;
  auto scenario = reader.str();
  if (!scenario) return scenario.error();
  artifact.key.scenario = std::move(scenario).take();
  auto implementation = reader.str();
  if (!implementation) return implementation.error();
  artifact.key.implementation = std::move(implementation).take();
  auto seed = reader.u64();
  if (!seed) return seed.error();
  artifact.key.seed = seed.value();
  auto bootstrap_events = reader.vu64();
  if (!bootstrap_events) return bootstrap_events.error();
  artifact.key.bootstrap_events = bootstrap_events.value();
  auto flip_exit = reader.vu32();
  if (!flip_exit) return flip_exit.error();
  artifact.key.flip_exit = flip_exit.value();
  auto resume_at = reader.vu64();
  if (!resume_at) return resume_at.error();
  artifact.resume_at = resume_at.value();
  auto bootstrap_executed = reader.vu64();
  if (!bootstrap_executed) return bootstrap_executed.error();
  artifact.bootstrap_executed = bootstrap_executed.value();
  auto flags = reader.u8();
  if (!flags) return flags.error();
  if ((flags.value() & ~kKnownFlags) != 0) {
    return util::make_error("svc.store.malformed", "undefined artifact flag bits");
  }
  artifact.quiesced = (flags.value() & kFlagQuiesced) != 0;
  artifact.oscillation_exit = (flags.value() & kFlagOscillationExit) != 0;
  auto cut_hash = reader.u64();
  if (!cut_hash) return cut_hash.error();
  artifact.cut_hash = cut_hash.value();
  auto id = reader.vu64();
  if (!id) return id.error();
  artifact.snap.id = id.value();
  artifact.snap.baseline_id = 0;  // standalone by construction (encode refuses deltas)
  auto taken_at = reader.vu64();
  if (!taken_at) return taken_at.error();
  artifact.snap.taken_at = taken_at.value();
  auto node_count = reader.vu64();
  if (!node_count) return node_count.error();
  for (std::uint64_t i = 0; i < node_count.value(); ++i) {
    auto node = reader.vu32();
    if (!node) return node.error();
    snapshot::Checkpoint checkpoint;
    checkpoint.node = node.value();
    auto hash = reader.u64();
    if (!hash) return hash.error();
    checkpoint.hash = hash.value();
    auto state_len = reader.vu64();
    if (!state_len) return state_len.error();
    auto state = reader.raw(state_len.value());
    if (!state) return state.error();
    checkpoint.state.assign(state.value().begin(), state.value().end());
    artifact.snap.nodes.emplace(node.value(), std::move(checkpoint));
  }
  auto channel_count = reader.vu64();
  if (!channel_count) return channel_count.error();
  for (std::uint64_t i = 0; i < channel_count.value(); ++i) {
    auto from = reader.vu32();
    if (!from) return from.error();
    auto to = reader.vu32();
    if (!to) return to.error();
    auto frame_count = reader.vu64();
    if (!frame_count) return frame_count.error();
    std::vector<util::Bytes> frames;
    frames.reserve(frame_count.value());
    for (std::uint64_t f = 0; f < frame_count.value(); ++f) {
      auto frame_len = reader.vu64();
      if (!frame_len) return frame_len.error();
      auto frame = reader.raw(frame_len.value());
      if (!frame) return frame.error();
      frames.emplace_back(frame.value().begin(), frame.value().end());
    }
    artifact.snap.channels.emplace(
        snapshot::ChannelKey{from.value(), to.value()}, std::move(frames));
  }
  // The checksum guards the bytes; this guards the semantics — a payload
  // regenerated inconsistently (right envelope, wrong snapshot) must fail
  // typed rather than resume a wrong live state.
  if (artifact.snap.cut_hash() != artifact.cut_hash) {
    return util::make_error("svc.store.hash_mismatch",
                            "snapshot cut hash does not match the recorded one");
  }
  return artifact;
}

}  // namespace

util::Result<util::Bytes> ArtifactStore::encode(const StoreContents& contents) {
  for (const LiveStateArtifact& artifact : contents.live_states) {
    if (artifact.snap.baseline_id != 0) {
      return util::make_error("svc.store.delta_snapshot",
                              "only standalone snapshots are persistable");
    }
    for (const auto& [node, checkpoint] : artifact.snap.nodes) {
      if (!checkpoint.state.empty() &&
          checkpoint.state.front() == snapshot::kCheckpointSameAsBaseline) {
        return util::make_error("svc.store.delta_snapshot",
                                "node " + std::to_string(node) +
                                    " rides a delta envelope");
      }
    }
  }

  // Canonicalize: equal contents must encode to equal bytes regardless of
  // harvest order (the cold-vs-warm receipt diffs store files).
  std::vector<const LiveStateArtifact*> ordered;
  ordered.reserve(contents.live_states.size());
  for (const LiveStateArtifact& artifact : contents.live_states) {
    ordered.push_back(&artifact);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const LiveStateArtifact* a, const LiveStateArtifact* b) {
              return a->key < b->key;
            });
  std::vector<std::uint64_t> unsat = contents.unsat_keys;
  std::sort(unsat.begin(), unsat.end());
  unsat.erase(std::unique(unsat.begin(), unsat.end()), unsat.end());

  util::ByteWriter payload;
  payload.vu64(ordered.size());
  for (const LiveStateArtifact* artifact : ordered) encode_artifact(payload, *artifact);
  payload.vu64(unsat.size());
  for (const std::uint64_t key : unsat) payload.u64(key);

  util::ByteWriter out(payload.size() + 16);
  out.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof(kMagic)));
  out.u8(kVersion);
  out.u64(util::fnv1a(payload.span()));
  out.raw(payload.span());
  return std::move(out).take();
}

util::Result<StoreContents> ArtifactStore::decode(std::span<const std::uint8_t> data) {
  util::ByteReader reader(data);
  auto magic = reader.raw(sizeof(kMagic));
  if (!magic) return magic.error();
  if (!std::equal(magic.value().begin(), magic.value().end(),
                  reinterpret_cast<const std::uint8_t*>(kMagic))) {
    return util::make_error("svc.store.bad_magic", "not an artifact store file");
  }
  auto version = reader.u8();
  if (!version) return version.error();
  if (version.value() != kVersion) {
    return util::make_error("svc.store.bad_version",
                            "unknown store version " + std::to_string(version.value()));
  }
  auto checksum = reader.u64();
  if (!checksum) return checksum.error();
  // Verify BEFORE parsing: every corrupted or truncated payload byte is
  // caught here deterministically, so the parser below only ever sees what
  // the encoder wrote.
  const std::span<const std::uint8_t> payload = data.subspan(reader.position());
  if (util::fnv1a(payload) != checksum.value()) {
    return util::make_error("svc.store.checksum_mismatch",
                            "payload checksum does not match");
  }

  StoreContents contents;
  auto artifact_count = reader.vu64();
  if (!artifact_count) return artifact_count.error();
  for (std::uint64_t i = 0; i < artifact_count.value(); ++i) {
    auto artifact = decode_artifact(reader);
    if (!artifact) return artifact.error();
    contents.live_states.push_back(std::move(artifact).take());
  }
  auto unsat_count = reader.vu64();
  if (!unsat_count) return unsat_count.error();
  contents.unsat_keys.reserve(unsat_count.value());
  for (std::uint64_t i = 0; i < unsat_count.value(); ++i) {
    auto key = reader.u64();
    if (!key) return key.error();
    contents.unsat_keys.push_back(key.value());
  }
  if (!reader.exhausted()) {
    return util::make_error("svc.store.trailing_bytes",
                            std::to_string(reader.remaining()) +
                                " byte(s) after the payload");
  }
  return contents;
}

util::Status ArtifactStore::save(const StoreContents& contents) const {
  const auto start = Clock::now();
  auto encoded = encode(contents);
  if (!encoded) return encoded.error();
  // Atomic publish: a crash between write and rename leaves the previous
  // store intact; rename within one directory replaces it in one step.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::make_error("svc.store.io", "cannot open " + tmp + " for writing");
    }
    out.write(reinterpret_cast<const char*>(encoded.value().data()),
              static_cast<std::streamsize>(encoded.value().size()));
    out.flush();
    if (!out) return util::make_error("svc.store.io", "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::make_error("svc.store.io", "cannot rename " + tmp + " over " + path_);
  }
  store_metrics().save_ms.observe(
      std::chrono::duration<double, std::milli>(Clock::now() - start).count());
  return util::Status::success();
}

util::Result<StoreContents> ArtifactStore::load() const {
  const auto start = Clock::now();
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    return util::make_error("svc.store.missing", path_ + " does not exist");
  }
  util::Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return util::make_error("svc.store.io", "read failure on " + path_);
  auto contents = decode(data);
  if (!contents) return contents.error();
  store_metrics().load_ms.observe(
      std::chrono::duration<double, std::milli>(Clock::now() - start).count());
  return contents;
}

}  // namespace dice::svc
