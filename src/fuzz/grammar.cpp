#include "fuzz/grammar.hpp"

#include <cassert>
#include <numeric>

namespace dice::fuzz {

NodeRef Grammar::add(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeRef>(nodes_.size() - 1);
}

NodeRef Grammar::literal(util::Bytes bytes) {
  Node n;
  n.kind = Kind::kLiteral;
  n.literal = std::move(bytes);
  return add(std::move(n));
}

NodeRef Grammar::byte_range(std::uint8_t lo, std::uint8_t hi) {
  assert(lo <= hi);
  Node n;
  n.kind = Kind::kByteRange;
  n.lo = lo;
  n.hi = hi;
  return add(std::move(n));
}

NodeRef Grammar::random_bytes(std::size_t count) {
  Node n;
  n.kind = Kind::kRandomBytes;
  n.count = count;
  return add(std::move(n));
}

NodeRef Grammar::pick_u16(std::vector<std::uint16_t> values) {
  assert(!values.empty());
  Node n;
  n.kind = Kind::kPickU16;
  n.u16s = std::move(values);
  return add(std::move(n));
}

NodeRef Grammar::pick_u32(std::vector<std::uint32_t> values) {
  assert(!values.empty());
  Node n;
  n.kind = Kind::kPickU32;
  n.u32s = std::move(values);
  return add(std::move(n));
}

NodeRef Grammar::seq(std::vector<NodeRef> children) {
  Node n;
  n.kind = Kind::kSeq;
  n.children = std::move(children);
  return add(std::move(n));
}

NodeRef Grammar::choice(std::vector<NodeRef> children, std::vector<std::uint32_t> weights) {
  assert(!children.empty());
  assert(weights.empty() || weights.size() == children.size());
  Node n;
  n.kind = Kind::kChoice;
  n.children = std::move(children);
  n.weights = std::move(weights);
  return add(std::move(n));
}

NodeRef Grammar::repeat(NodeRef child, std::size_t min, std::size_t max) {
  assert(min <= max);
  Node n;
  n.kind = Kind::kRepeat;
  n.children = {child};
  n.min = min;
  n.max = max;
  return add(std::move(n));
}

NodeRef Grammar::len8(NodeRef child) {
  Node n;
  n.kind = Kind::kLen8;
  n.children = {child};
  return add(std::move(n));
}

NodeRef Grammar::len16(NodeRef child) {
  Node n;
  n.kind = Kind::kLen16;
  n.children = {child};
  return add(std::move(n));
}

util::Bytes Grammar::generate(NodeRef root, util::Rng& rng,
                              const GenerateOptions& options) const {
  util::Bytes out;
  emit(root, rng, options, 0, out);
  if (out.size() > options.max_output) out.resize(options.max_output);
  return out;
}

void Grammar::emit(NodeRef ref, util::Rng& rng, const GenerateOptions& options,
                   std::size_t depth, util::Bytes& out) const {
  if (depth > options.max_depth || out.size() >= options.max_output) return;
  const Node& n = nodes_[ref];
  switch (n.kind) {
    case Kind::kLiteral:
      out.insert(out.end(), n.literal.begin(), n.literal.end());
      break;
    case Kind::kByteRange:
      out.push_back(static_cast<std::uint8_t>(rng.range(n.lo, n.hi)));
      break;
    case Kind::kRandomBytes:
      for (std::size_t i = 0; i < n.count; ++i) out.push_back(rng.byte());
      break;
    case Kind::kPickU16: {
      const std::uint16_t v = n.u16s[rng.below(n.u16s.size())];
      out.push_back(static_cast<std::uint8_t>(v >> 8));
      out.push_back(static_cast<std::uint8_t>(v));
      break;
    }
    case Kind::kPickU32: {
      const std::uint32_t v = n.u32s[rng.below(n.u32s.size())];
      out.push_back(static_cast<std::uint8_t>(v >> 24));
      out.push_back(static_cast<std::uint8_t>(v >> 16));
      out.push_back(static_cast<std::uint8_t>(v >> 8));
      out.push_back(static_cast<std::uint8_t>(v));
      break;
    }
    case Kind::kSeq:
      for (NodeRef child : n.children) emit(child, rng, options, depth + 1, out);
      break;
    case Kind::kChoice: {
      std::size_t index = 0;
      if (n.weights.empty()) {
        index = rng.below(n.children.size());
      } else {
        const std::uint64_t total =
            std::accumulate(n.weights.begin(), n.weights.end(), std::uint64_t{0});
        std::uint64_t pick = rng.below(total);
        while (index + 1 < n.weights.size() && pick >= n.weights[index]) {
          pick -= n.weights[index];
          ++index;
        }
      }
      emit(n.children[index], rng, options, depth + 1, out);
      break;
    }
    case Kind::kRepeat: {
      const std::size_t count =
          n.min + static_cast<std::size_t>(rng.below(n.max - n.min + 1));
      for (std::size_t i = 0; i < count; ++i) {
        emit(n.children[0], rng, options, depth + 1, out);
      }
      break;
    }
    case Kind::kLen8:
    case Kind::kLen16: {
      util::Bytes body;
      emit(n.children[0], rng, options, depth + 1, body);
      std::uint32_t length = static_cast<std::uint32_t>(body.size());
      if (options.corruption_rate > 0 && rng.chance(options.corruption_rate)) {
        const std::int64_t delta = rng.range(1, 2) * (rng.chance(0.5) ? 1 : -1);
        length = static_cast<std::uint32_t>(
            std::max<std::int64_t>(0, static_cast<std::int64_t>(length) + delta));
      }
      if (n.kind == Kind::kLen8) {
        out.push_back(static_cast<std::uint8_t>(length));
      } else {
        out.push_back(static_cast<std::uint8_t>(length >> 8));
        out.push_back(static_cast<std::uint8_t>(length));
      }
      out.insert(out.end(), body.begin(), body.end());
      break;
    }
  }
}

}  // namespace dice::fuzz
