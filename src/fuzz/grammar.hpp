// Grammar-based input generation (paper §2, insight iii: "we subject the
// node's code to small-sized inputs, and apply grammar-based fuzzing to
// produce a large number of valid inputs").
//
// A Grammar is a DAG of production nodes (literals, byte ranges, choices,
// sequences, repeats, length-prefixed regions). generate() walks it with a
// seeded Rng, so corpora are reproducible. A small corruption rate can be
// enabled to bias *near*-valid inputs (length off-by-ones, flag flips),
// which is where parser bugs live.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace dice::fuzz {

using NodeRef = std::uint32_t;

struct GenerateOptions {
  std::size_t max_depth = 24;       ///< recursion guard for nested repeats
  double corruption_rate = 0.0;     ///< chance to corrupt each length field
  std::size_t max_output = 4096;    ///< hard output size cap
};

class Grammar {
 public:
  /// Emits the given bytes verbatim.
  [[nodiscard]] NodeRef literal(util::Bytes bytes);
  [[nodiscard]] NodeRef byte(std::uint8_t value) { return literal({value}); }
  /// Emits one uniformly random byte in [lo, hi].
  [[nodiscard]] NodeRef byte_range(std::uint8_t lo, std::uint8_t hi);
  /// Emits `count` random bytes.
  [[nodiscard]] NodeRef random_bytes(std::size_t count);
  /// Emits a big-endian u16 chosen uniformly from the list.
  [[nodiscard]] NodeRef pick_u16(std::vector<std::uint16_t> values);
  /// Emits a big-endian u32 chosen uniformly from the list.
  [[nodiscard]] NodeRef pick_u32(std::vector<std::uint32_t> values);
  /// All children in order.
  [[nodiscard]] NodeRef seq(std::vector<NodeRef> children);
  /// One child, weighted.
  [[nodiscard]] NodeRef choice(std::vector<NodeRef> children,
                               std::vector<std::uint32_t> weights = {});
  /// Child repeated uniform-random [min, max] times.
  [[nodiscard]] NodeRef repeat(NodeRef child, std::size_t min, std::size_t max);
  /// Child prefixed with its byte length as u8 / u16 (subject to
  /// corruption_rate, which perturbs the emitted length by ±1..2).
  [[nodiscard]] NodeRef len8(NodeRef child);
  [[nodiscard]] NodeRef len16(NodeRef child);

  [[nodiscard]] util::Bytes generate(NodeRef root, util::Rng& rng,
                                     const GenerateOptions& options = {}) const;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  enum class Kind : std::uint8_t {
    kLiteral,
    kByteRange,
    kRandomBytes,
    kPickU16,
    kPickU32,
    kSeq,
    kChoice,
    kRepeat,
    kLen8,
    kLen16,
  };
  struct Node {
    Kind kind;
    util::Bytes literal;
    std::uint8_t lo = 0, hi = 0;
    std::size_t count = 0, min = 0, max = 0;
    std::vector<NodeRef> children;
    std::vector<std::uint32_t> weights;
    std::vector<std::uint16_t> u16s;
    std::vector<std::uint32_t> u32s;
  };

  void emit(NodeRef ref, util::Rng& rng, const GenerateOptions& options, std::size_t depth,
            util::Bytes& out) const;
  [[nodiscard]] NodeRef add(Node node);

  std::vector<Node> nodes_;
};

}  // namespace dice::fuzz
