#include "fuzz/bgp_grammar.hpp"

#include "bgp/codec.hpp"
#include "bgp/sym_update.hpp"
#include "bgp/types.hpp"

namespace dice::fuzz {

using bgp::AttrType;

BgpGrammarSeeds BgpGrammarSeeds::from_config(const bgp::RouterConfig& config) {
  BgpGrammarSeeds seeds;
  seeds.known_asns.push_back(config.asn);
  for (const util::IpPrefix& p : config.networks) seeds.known_prefixes.push_back(p);
  for (const bgp::NeighborConfig& n : config.neighbors) {
    seeds.known_asns.push_back(n.asn);
    seeds.known_next_hops.push_back(n.address);
    for (const bgp::Policy* policy : {&n.import_policy, &n.export_policy}) {
      for (const bgp::PolicyRule& rule : policy->rules) {
        for (const bgp::Match& m : rule.matches) {
          switch (m.kind) {
            case bgp::Match::Kind::kPrefixExact:
            case bgp::Match::Kind::kPrefixOrLonger:
              seeds.known_prefixes.push_back(m.prefix);
              break;
            case bgp::Match::Kind::kAsPathContains:
            case bgp::Match::Kind::kOriginatedBy:
              seeds.known_asns.push_back(m.asn);
              break;
            case bgp::Match::Kind::kCommunity:
              seeds.known_communities.push_back(m.community);
              break;
            default:
              break;
          }
        }
        for (const bgp::Action& a : rule.actions) {
          if (a.kind == bgp::Action::Kind::kAddCommunity ||
              a.kind == bgp::Action::Kind::kRemoveCommunity) {
            seeds.known_communities.push_back(a.value);
          }
        }
      }
    }
  }
  if (seeds.known_prefixes.empty()) {
    seeds.known_prefixes.push_back(
        util::IpPrefix{util::IpAddress{10, 1, 0, 0}, 16});
  }
  if (seeds.known_communities.empty()) {
    seeds.known_communities.push_back(bgp::make_community(65000, 1));
  }
  return seeds;
}

namespace {

[[nodiscard]] util::Bytes wire_prefix(const util::IpPrefix& prefix) {
  util::ByteWriter w;
  bgp::encode_prefix(w, prefix);
  return std::move(w).take();
}

}  // namespace

BgpUpdateGrammar::BgpUpdateGrammar(BgpGrammarSeeds seeds, bool strict) {
  Grammar& g = grammar_;

  // --- prefixes -------------------------------------------------------------
  std::vector<NodeRef> prefix_variants;
  for (const util::IpPrefix& p : seeds.known_prefixes) {
    prefix_variants.push_back(g.literal(wire_prefix(p)));
    // More-specific of a known prefix (hijack-shaped announcements).
    if (p.length() <= 24) {
      prefix_variants.push_back(g.literal(
          wire_prefix(util::IpPrefix{p.address(), static_cast<std::uint8_t>(p.length() + 8)})));
    }
  }
  // Random short prefixes: len in {0,8,16,24,32} with matching body bytes.
  prefix_variants.push_back(g.seq({g.byte(0)}));
  prefix_variants.push_back(g.seq({g.byte(8), g.random_bytes(1)}));
  prefix_variants.push_back(g.seq({g.byte(16), g.random_bytes(2)}));
  prefix_variants.push_back(g.seq({g.byte(24), g.random_bytes(3)}));
  prefix_variants.push_back(g.seq({g.byte(32), g.random_bytes(4)}));
  std::vector<std::uint32_t> prefix_weights(prefix_variants.size(), 10);
  if (!strict) {
    // Invalid length (> 32) — the decoder must reject these. Thin tail.
    prefix_variants.push_back(g.seq({g.byte_range(33, 255), g.random_bytes(4)}));
    prefix_weights.push_back(2);
  }
  const NodeRef prefix_node = g.choice(prefix_variants, std::move(prefix_weights));

  // --- ASNs / communities / next hops -----------------------------------------
  std::vector<std::uint16_t> asn_values;
  for (bgp::Asn asn : seeds.known_asns) {
    asn_values.push_back(static_cast<std::uint16_t>(asn));
  }
  asn_values.push_back(64512);
  asn_values.push_back(1);
  const NodeRef asn_node = g.pick_u16(asn_values);

  std::vector<std::uint32_t> community_values;
  for (bgp::Community c : seeds.known_communities) community_values.push_back(c);
  community_values.push_back(bgp::well_known::kNoExport);
  const NodeRef community_node = g.pick_u32(community_values);

  std::vector<std::uint32_t> next_hop_values;
  for (const util::IpAddress& addr : seeds.known_next_hops) {
    next_hop_values.push_back(addr.value());
  }
  if (next_hop_values.empty()) next_hop_values.push_back(util::IpAddress{10, 0, 0, 1}.value());
  const NodeRef known_next_hop = g.pick_u32(next_hop_values);

  // --- attributes -------------------------------------------------------------
  const auto attr = [&](std::uint8_t flags, AttrType type, NodeRef value) {
    return g.seq({g.byte(flags), g.byte(static_cast<std::uint8_t>(type)), g.len8(value)});
  };

  const NodeRef origin_attr =
      attr(bgp::attr_flags::kTransitive, AttrType::kOrigin, g.byte_range(0, 2));

  std::vector<NodeRef> segment_variants{
      g.seq({g.byte(2), g.byte(1), asn_node}),                      // SEQ of 1
      g.seq({g.byte(2), g.byte(2), asn_node, asn_node}),            // SEQ of 2
      g.seq({g.byte(2), g.byte(3), asn_node, asn_node, asn_node}),  // SEQ of 3
      g.seq({g.byte(1), g.byte(2), asn_node, asn_node})};           // SET of 2
  std::vector<std::uint32_t> segment_weights{30, 30, 20, 15};
  if (!strict) {
    segment_variants.push_back(g.seq({g.byte(2), g.byte(0)}));  // empty SEQ (invalid)
    segment_weights.push_back(5);
  }
  const NodeRef as_segment = g.choice(std::move(segment_variants), std::move(segment_weights));
  // Strict announcements always carry a non-empty AS_PATH (eBGP reality).
  const NodeRef as_path_attr = attr(bgp::attr_flags::kTransitive, AttrType::kAsPath,
                                    g.repeat(as_segment, strict ? 1 : 0, 2));

  const NodeRef next_hop_attr =
      attr(bgp::attr_flags::kTransitive, AttrType::kNextHop,
           strict ? known_next_hop
                  : g.choice({known_next_hop, g.seq({g.byte(10), g.random_bytes(3)}),
                              g.random_bytes(4)},
                             {50, 30, 20}));

  const NodeRef med_attr =
      attr(bgp::attr_flags::kOptional, AttrType::kMed,
           strict ? g.pick_u32({0, 1, 50, 100, 4096})
                  : g.choice({g.pick_u32({0, 1, 100, 0xffffffffU}), g.random_bytes(4)},
                             {70, 30}));

  const NodeRef local_pref_attr =
      attr(bgp::attr_flags::kTransitive, AttrType::kLocalPref,
           g.pick_u32({50, 100, 150, 200, 300}));

  const NodeRef community_attr =
      attr(bgp::attr_flags::kOptional | bgp::attr_flags::kTransitive, AttrType::kCommunity,
           g.repeat(community_node, 1, 3));

  // Unknown optional transitive attribute (carried opaquely; valid per RFC).
  const NodeRef unknown_attr = attr(
      bgp::attr_flags::kOptional | bgp::attr_flags::kTransitive,
      static_cast<AttrType>(200), g.random_bytes(3));

  const NodeRef mandatory_attrs = g.seq({origin_attr, as_path_attr, next_hop_attr});
  const NodeRef optional_attrs =
      g.seq({g.choice({med_attr, g.literal({})}, {40, 60}),
             g.choice({local_pref_attr, g.literal({})}, {30, 70}),
             g.choice({community_attr, g.literal({})}, {50, 50}),
             g.choice({unknown_attr, g.literal({})}, {15, 85})});
  const NodeRef attrs_valid = g.seq({mandatory_attrs, optional_attrs});

  NodeRef attrs = attrs_valid;
  if (!strict) {
    // Occasionally an out-of-range origin value.
    const NodeRef bad_origin_attr =
        attr(bgp::attr_flags::kTransitive, AttrType::kOrigin, g.byte_range(3, 255));
    // Truncated community payload (length not a multiple of 4).
    const NodeRef bad_community_attr =
        attr(bgp::attr_flags::kOptional | bgp::attr_flags::kTransitive, AttrType::kCommunity,
             g.seq({community_node, g.random_bytes(1)}));
    // Flag corruption: well-known attribute with optional bit set.
    const NodeRef bad_flags_attr =
        attr(bgp::attr_flags::kOptional | bgp::attr_flags::kTransitive, AttrType::kOrigin,
             g.byte_range(0, 2));
    const NodeRef attrs_invalid =
        g.choice({g.seq({bad_origin_attr, as_path_attr, next_hop_attr}),
                  g.seq({bad_flags_attr, as_path_attr, next_hop_attr}),
                  g.seq({mandatory_attrs, bad_community_attr}),
                  as_path_attr},  // missing mandatory attrs
                 {25, 25, 25, 25});
    attrs = g.choice({attrs_valid, attrs_invalid}, {85, 15});
  }

  // --- whole body -------------------------------------------------------------
  const NodeRef withdrawn = g.len16(g.repeat(prefix_node, 0, 2));
  const NodeRef nlri = g.repeat(prefix_node, strict ? 1 : 0, 3);
  // Pure withdrawals carry no attributes.
  const NodeRef with_announce = g.seq({withdrawn, g.len16(attrs), nlri});
  const NodeRef withdraw_only = g.seq({withdrawn, g.literal({0x00, 0x00})});
  body_root_ = g.choice({with_announce, withdraw_only}, {85, 15});
}

util::Bytes BgpUpdateGrammar::generate_body(util::Rng& rng, double corruption_rate) const {
  GenerateOptions options;
  options.corruption_rate = corruption_rate;
  return grammar_.generate(body_root_, rng, options);
}

util::Bytes BgpUpdateGrammar::generate_message(util::Rng& rng, double corruption_rate) const {
  return bgp::wrap_update_body(generate_body(rng, corruption_rate));
}

}  // namespace dice::fuzz
