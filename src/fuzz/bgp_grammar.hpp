// The BGP UPDATE grammar instance: generates message *bodies* (the region
// after the 19-byte header — the same region sym_update treats as the
// symbolic input). Values are biased toward the constants that appear in
// deployed configurations (Gao-Rexford community tags, topology prefixes)
// so fuzzed inputs exercise policy paths, mirroring how the paper derives
// inputs from "existing protocol messages to the extent possible".
#pragma once

#include <vector>

#include "bgp/config.hpp"
#include "fuzz/grammar.hpp"

namespace dice::fuzz {

struct BgpGrammarSeeds {
  /// Prefixes that exist in the deployment (announced targets).
  std::vector<util::IpPrefix> known_prefixes;
  /// ASNs present in the topology (for plausible AS_PATHs).
  std::vector<bgp::Asn> known_asns;
  /// Community values referenced by policies.
  std::vector<bgp::Community> known_communities;
  /// Neighbor addresses (plausible NEXT_HOP values that pass import).
  std::vector<util::IpAddress> known_next_hops;

  /// Harvests seeds from a router's configuration (its own view of the
  /// world: networks, neighbor ASNs, policy constants).
  [[nodiscard]] static BgpGrammarSeeds from_config(const bgp::RouterConfig& config);
};

class BgpUpdateGrammar {
 public:
  /// `strict` drops every intentionally-invalid production (bad flags,
  /// out-of-range values, truncated payloads): the generator then emits
  /// only protocol-valid messages, modeling "existing protocol messages"
  /// as exploration seeds. The default grammar keeps a thin invalid tail
  /// for robustness fuzzing.
  explicit BgpUpdateGrammar(BgpGrammarSeeds seeds, bool strict = false);

  /// One UPDATE body (withdrawn section + attributes + NLRI).
  [[nodiscard]] util::Bytes generate_body(util::Rng& rng,
                                          double corruption_rate = 0.0) const;

  /// A full wire message (header prepended).
  [[nodiscard]] util::Bytes generate_message(util::Rng& rng,
                                             double corruption_rate = 0.0) const;

 private:
  Grammar grammar_;
  NodeRef body_root_ = 0;
};

}  // namespace dice::fuzz
