#include "fuzz/mutator.hpp"

#include <algorithm>

namespace dice::fuzz {

namespace {
constexpr std::uint8_t kInteresting[] = {0x00, 0x01, 0x02, 0x04, 0x10, 0x20, 0x40,
                                         0x7f, 0x80, 0xc0, 0xfe, 0xff};
}

util::Bytes Mutator::mutate(const util::Bytes& input, util::Rng& rng) const {
  util::Bytes out = input;
  const std::size_t rounds = static_cast<std::size_t>(
      rng.range(static_cast<std::int64_t>(options_.min_mutations),
                static_cast<std::int64_t>(options_.max_mutations)));
  for (std::size_t round = 0; round < rounds; ++round) {
    if (out.empty()) {
      out.push_back(rng.byte());
      continue;
    }
    switch (rng.below(6)) {
      case 0: {  // bit flip
        const std::size_t i = rng.below(out.size());
        out[i] ^= static_cast<std::uint8_t>(1U << rng.below(8));
        break;
      }
      case 1: {  // interesting byte
        out[rng.below(out.size())] = kInteresting[rng.below(std::size(kInteresting))];
        break;
      }
      case 2: {  // arithmetic nudge
        const std::size_t i = rng.below(out.size());
        out[i] = static_cast<std::uint8_t>(out[i] + rng.range(-8, 8));
        break;
      }
      case 3: {  // insert random byte
        if (out.size() < options_.max_size) {
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(rng.below(out.size() + 1)),
                     rng.byte());
        }
        break;
      }
      case 4: {  // delete byte
        if (out.size() > 1) {
          out.erase(out.begin() + static_cast<std::ptrdiff_t>(rng.below(out.size())));
        }
        break;
      }
      default: {  // duplicate a short block
        if (out.size() >= 2 && out.size() < options_.max_size - 8) {
          const std::size_t len = 1 + rng.below(std::min<std::size_t>(8, out.size()));
          const std::size_t src = rng.below(out.size() - len + 1);
          const std::size_t dst = rng.below(out.size() + 1);
          util::Bytes block(out.begin() + static_cast<std::ptrdiff_t>(src),
                            out.begin() + static_cast<std::ptrdiff_t>(src + len));
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(dst), block.begin(),
                     block.end());
        }
        break;
      }
    }
  }
  if (out.size() > options_.max_size) out.resize(options_.max_size);
  return out;
}

util::Bytes Mutator::splice(const util::Bytes& a, const util::Bytes& b,
                            util::Rng& rng) const {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const std::size_t cut_a = rng.below(a.size());
  const std::size_t cut_b = rng.below(b.size());
  util::Bytes out(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(cut_a));
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(cut_b), b.end());
  if (out.size() > options_.max_size) out.resize(options_.max_size);
  return out;
}

}  // namespace dice::fuzz
