// Byte-level mutation of existing inputs (AFL-style havoc). Used to derive
// neighbors of concolic-generated seeds and as the pure-random baseline in
// the exploration benches (E5: concolic vs grammar-fuzz vs random).
#pragma once

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace dice::fuzz {

struct MutatorOptions {
  std::size_t min_mutations = 1;
  std::size_t max_mutations = 6;
  std::size_t max_size = 4096;
};

class Mutator {
 public:
  explicit Mutator(MutatorOptions options = {}) : options_(options) {}

  /// Returns a mutated copy of `input` (never the identical input unless
  /// it is empty and growth is capped).
  [[nodiscard]] util::Bytes mutate(const util::Bytes& input, util::Rng& rng) const;

  /// Splices a random prefix of `a` with a random suffix of `b`.
  [[nodiscard]] util::Bytes splice(const util::Bytes& a, const util::Bytes& b,
                                   util::Rng& rng) const;

 private:
  MutatorOptions options_;
};

}  // namespace dice::fuzz
