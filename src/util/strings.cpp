#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace dice::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t at = s.find(delim, start);
    if (at == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, at - start));
    start = at + 1;
  }
}

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<std::uint64_t> parse_u64(std::string_view s) noexcept {
  if (s.empty()) return make_error("strings.parse_u64.empty");
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return make_error("strings.parse_u64.bad_digit");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return make_error("strings.parse_u64.overflow");
    value = value * 10 + digit;
  }
  return value;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace dice::util
