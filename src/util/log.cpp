#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dice::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// Serializes sink replacement and every emission: concurrent workers each
/// format their own line, then take this mutex for the single sink call.
std::mutex& sink_mutex() {
  static std::mutex instance;
  return instance;
}

Log::Sink& sink_slot() {
  static Log::Sink instance;  // empty => default stderr sink
  return instance;
}

void default_sink(LogLevel level, std::string_view tag, std::string_view msg) {
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", to_string(level).data(),
               static_cast<int>(tag.size()), tag.data(), static_cast<int>(msg.size()),
               msg.data());
}

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() noexcept { return g_level.load(std::memory_order_relaxed); }
bool Log::enabled(LogLevel level) noexcept {
  const LogLevel current = g_level.load(std::memory_order_relaxed);
  return level >= current && current != LogLevel::kOff;
}

Log::Sink Log::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  Sink previous = std::move(sink_slot());
  sink_slot() = std::move(sink);
  return previous;
}

void Log::write(LogLevel level, std::string_view tag, std::string_view msg) {
  if (!enabled(level)) return;
  const std::lock_guard<std::mutex> lock(sink_mutex());
  if (const Sink& sink = sink_slot()) {
    sink(level, tag, msg);
  } else {
    default_sink(level, tag, msg);
  }
}

LogCapture::LogCapture() : previous_level_(Log::level()) {
  Log::set_level(LogLevel::kTrace);
  previous_ = Log::set_sink([this](LogLevel level, std::string_view tag, std::string_view msg) {
    text_.append(to_string(level));
    text_.append(" ");
    text_.append(tag);
    text_.append(": ");
    text_.append(msg);
    text_.push_back('\n');
  });
}

LogCapture::~LogCapture() {
  Log::set_sink(std::move(previous_));
  Log::set_level(previous_level_);
}

}  // namespace dice::util
