#include "util/log.hpp"

#include <cstdio>

namespace dice::util {

namespace {

LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;  // empty => default stderr sink

void default_sink(LogLevel level, std::string_view tag, std::string_view msg) {
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", to_string(level).data(),
               static_cast<int>(tag.size()), tag.data(), static_cast<int>(msg.size()),
               msg.data());
}

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Log::set_level(LogLevel level) noexcept { g_level = level; }
LogLevel Log::level() noexcept { return g_level; }
bool Log::enabled(LogLevel level) noexcept {
  return level >= g_level && g_level != LogLevel::kOff;
}

Log::Sink Log::set_sink(Sink sink) {
  Sink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void Log::write(LogLevel level, std::string_view tag, std::string_view msg) {
  if (!enabled(level)) return;
  if (g_sink) {
    g_sink(level, tag, msg);
  } else {
    default_sink(level, tag, msg);
  }
}

LogCapture::LogCapture() : previous_level_(Log::level()) {
  Log::set_level(LogLevel::kTrace);
  previous_ = Log::set_sink([this](LogLevel level, std::string_view tag, std::string_view msg) {
    text_.append(to_string(level));
    text_.append(" ");
    text_.append(tag);
    text_.append(": ");
    text_.append(msg);
    text_.push_back('\n');
  });
}

LogCapture::~LogCapture() {
  Log::set_sink(std::move(previous_));
  Log::set_level(previous_level_);
}

}  // namespace dice::util
