#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace dice::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// The published sink. A shared_ptr handed out under a mutex held only for
/// the pointer copy: the old design serialized every emission behind one
/// mutex, and a sink swap could still race an in-flight invocation the
/// moment emission left the lock. Here writers copy the handle and invoke
/// OUTSIDE the lock, so set_sink can retire a sink at any time without
/// destroying it under a caller. Not std::atomic<std::shared_ptr>:
/// libstdc++'s lock-free _Sp_atomic releases its internal lock bit with a
/// relaxed op in load(), which TSan (correctly, per the formal model) flags
/// as a race against a later swap — a plain mutex gives the same guarantee
/// and stays sanitizer-clean. nullptr means the default stderr sink.
struct SinkSlot {
  std::mutex mutex;
  std::shared_ptr<const Log::Sink> sink;
};

SinkSlot& sink_slot() {
  static SinkSlot instance;
  return instance;
}

void default_sink(LogLevel level, std::string_view tag, std::string_view msg) {
  // One fprintf per line: stdio's internal stream lock keeps concurrent
  // whole-line writes from interleaving.
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", to_string(level).data(),
               static_cast<int>(tag.size()), tag.data(), static_cast<int>(msg.size()),
               msg.data());
}

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() noexcept { return g_level.load(std::memory_order_relaxed); }
bool Log::enabled(LogLevel level) noexcept {
  const LogLevel current = g_level.load(std::memory_order_relaxed);
  return level >= current && current != LogLevel::kOff;
}

Log::Sink Log::set_sink(Sink sink) {
  std::shared_ptr<const Sink> next;
  if (sink) next = std::make_shared<const Sink>(std::move(sink));
  std::shared_ptr<const Sink> previous;
  {
    SinkSlot& slot = sink_slot();
    const std::lock_guard<std::mutex> lock(slot.mutex);
    previous = std::exchange(slot.sink, std::move(next));
  }
  // Copy, not move: a concurrent writer may still be invoking through its
  // own reference to the retired sink.
  return previous != nullptr ? *previous : Sink{};
}

void Log::write(LogLevel level, std::string_view tag, std::string_view msg) {
  if (!enabled(level)) return;
  // Copy the handle under the lock, invoke outside it: our shared_ptr keeps
  // the sink alive across any concurrent replacement, and a slow sink never
  // blocks set_sink. Sinks own their thread safety.
  std::shared_ptr<const Sink> sink;
  {
    SinkSlot& slot = sink_slot();
    const std::lock_guard<std::mutex> lock(slot.mutex);
    sink = slot.sink;
  }
  if (sink != nullptr && *sink) {
    (*sink)(level, tag, msg);
  } else {
    default_sink(level, tag, msg);
  }
}

/// Shared between the LogCapture handle and the sink closure it installs:
/// a write racing the capture's teardown lands here, never on a dangling
/// member of the destroyed handle.
struct LogCapture::State {
  std::mutex mutex;
  std::string text;
};

LogCapture::LogCapture()
    : state_(std::make_shared<State>()), previous_level_(Log::level()) {
  Log::set_level(LogLevel::kTrace);
  std::shared_ptr<State> state = state_;  // captured by value, outlives *this
  previous_ = Log::set_sink(
      [state](LogLevel level, std::string_view tag, std::string_view msg) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        state->text.append(to_string(level));
        state->text.append(" ");
        state->text.append(tag);
        state->text.append(": ");
        state->text.append(msg);
        state->text.push_back('\n');
      });
}

LogCapture::~LogCapture() {
  Log::set_sink(std::move(previous_));
  Log::set_level(previous_level_);
}

const std::string& LogCapture::text() const noexcept {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  snapshot_ = state_->text;
  return snapshot_;
}

}  // namespace dice::util
