// IPv4 address / prefix types and a binary prefix trie with longest-prefix
// match. These are the base vocabulary of the BGP substrate: NLRI entries,
// RIB keys, and policy prefix lists all build on IpPrefix.
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace dice::util {

/// IPv4 address stored host-order for arithmetic convenience.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  explicit constexpr IpAddress(std::uint32_t value) noexcept : value_(value) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_((static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// Parses dotted-quad notation ("10.0.0.1").
  [[nodiscard]] static Result<IpAddress> parse(std::string_view text);

  constexpr auto operator<=>(const IpAddress&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv4 prefix: address + mask length, with host bits always zeroed.
class IpPrefix {
 public:
  constexpr IpPrefix() = default;
  constexpr IpPrefix(IpAddress addr, std::uint8_t length) noexcept
      : addr_(IpAddress{mask_off(addr.value(), length)}), length_(length > 32 ? 32 : length) {}

  [[nodiscard]] constexpr IpAddress address() const noexcept { return addr_; }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept { return length_; }

  /// True when `other` is equal to or more specific than this prefix.
  [[nodiscard]] constexpr bool contains(const IpPrefix& other) const noexcept {
    return other.length_ >= length_ &&
           mask_off(other.addr_.value(), length_) == addr_.value();
  }
  [[nodiscard]] constexpr bool contains(IpAddress addr) const noexcept {
    return mask_off(addr.value(), length_) == addr_.value();
  }

  [[nodiscard]] std::string to_string() const;

  /// Parses "a.b.c.d/len".
  [[nodiscard]] static Result<IpPrefix> parse(std::string_view text);

  constexpr auto operator<=>(const IpPrefix&) const noexcept = default;

 private:
  [[nodiscard]] static constexpr std::uint32_t mask_off(std::uint32_t v,
                                                        std::uint8_t len) noexcept {
    if (len == 0) return 0;
    if (len >= 32) return v;
    return v & ~((1U << (32 - len)) - 1U);
  }

  IpAddress addr_;
  std::uint8_t length_ = 0;
};

/// Hash functor so prefixes can key unordered containers.
struct IpPrefixHash {
  [[nodiscard]] std::size_t operator()(const IpPrefix& p) const noexcept {
    const std::uint64_t x =
        (static_cast<std::uint64_t>(p.address().value()) << 8) | p.length();
    // splitmix64 finalizer for avalanche.
    std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// Binary trie keyed by prefix bits with longest-prefix-match lookups.
/// T is the payload (e.g. a RIB entry pointer or a policy action).
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or overwrites the payload at `prefix`. Returns true when a new
  /// entry was created (false = overwrite).
  bool insert(const IpPrefix& prefix, T value) {
    Node* node = descend_create(prefix);
    const bool created = !node->value.has_value();
    node->value = std::move(value);
    if (created) ++size_;
    return created;
  }

  /// Removes the exact prefix. Returns the removed payload if present.
  std::optional<T> erase(const IpPrefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value.has_value()) return std::nullopt;
    std::optional<T> out = std::move(node->value);
    node->value.reset();
    --size_;
    return out;
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* find(const IpPrefix& prefix) const {
    const Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }
  [[nodiscard]] T* find(const IpPrefix& prefix) {
    Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }

  /// Longest-prefix match for a full address; nullptr when nothing covers it.
  [[nodiscard]] const T* longest_match(IpAddress addr) const {
    const Node* node = root_.get();
    const T* best = node->value.has_value() ? &*node->value : nullptr;
    std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node != nullptr && node->value.has_value()) best = &*node->value;
    }
    return best;
  }

  /// Longest *covering* prefix strictly shorter than or equal to `prefix`.
  [[nodiscard]] const T* longest_match(const IpPrefix& prefix) const {
    const Node* node = root_.get();
    const T* best = node->value.has_value() ? &*node->value : nullptr;
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length() && node != nullptr; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node != nullptr && node->value.has_value()) best = &*node->value;
    }
    return best;
  }

  /// Visits all (prefix, payload) pairs in lexicographic bit order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(root_.get(), 0, 0, fn);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  [[nodiscard]] Node* descend_create(const IpPrefix& prefix) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  [[nodiscard]] const Node* descend(const IpPrefix& prefix) const {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length() && node != nullptr; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
    }
    return node;
  }
  [[nodiscard]] Node* descend(const IpPrefix& prefix) {
    return const_cast<Node*>(std::as_const(*this).descend(prefix));
  }

  template <typename Fn>
  void walk(const Node* node, std::uint32_t bits, int depth, Fn& fn) const {
    if (node == nullptr) return;
    if (node->value.has_value()) {
      fn(IpPrefix(IpAddress{bits}, static_cast<std::uint8_t>(depth)), *node->value);
    }
    if (depth < 32) {
      walk(node->child[0].get(), bits, depth + 1, fn);
      walk(node->child[1].get(), bits | (1U << (31 - depth)), depth + 1, fn);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace dice::util
