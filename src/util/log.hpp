// Lightweight structured logging with levels and per-component tags.
// A global sink keeps the API ergonomic; tests can capture output via
// LogCapture. Each simulator instance is single-threaded, but exploration
// runs many cloned simulators on concurrent workers (explore::ExplorePool),
// so the sink is PUBLISHED as a shared_ptr behind a mutex held only for
// the pointer copy: write() copies the handle and invokes the sink outside
// the lock, and a concurrent set_sink can never destroy a sink
// mid-invocation — the writer's shared_ptr keeps it alive. The flip side of
// emission happening outside the lock is that
// sinks may be invoked CONCURRENTLY: a sink must either be thread-safe
// itself (LogCapture serializes internally; the default stderr sink leans
// on stdio's per-call stream lock, so whole lines never interleave) or the
// caller must guarantee single-threaded logging.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

namespace dice::util {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Process-wide logging configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view tag, std::string_view msg)>;

  static void set_level(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel level() noexcept;
  [[nodiscard]] static bool enabled(LogLevel level) noexcept;

  /// Replaces the output sink; returns the previous one. Pass nullptr to
  /// restore the default stderr sink. Safe against concurrent write()
  /// calls: a writer that loaded the old sink finishes its invocation on
  /// it (shared ownership), later writers see the new one.
  static Sink set_sink(Sink sink);

  static void write(LogLevel level, std::string_view tag, std::string_view msg);
};

/// Builder-style log statement: Logger("bgp").info() << "converged in " << n;
class Logger {
 public:
  explicit Logger(std::string tag) : tag_(std::move(tag)) {}

  class Line {
   public:
    Line(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;
    Line(Line&& other) noexcept
        : level_(other.level_),
          tag_(other.tag_),
          stream_(std::move(other.stream_)),
          active_(other.active_) {
      other.active_ = false;
    }
    Line& operator=(Line&&) = delete;
    ~Line() {
      if (active_) Log::write(level_, tag_, stream_.str());
    }

    template <typename T>
    Line& operator<<(const T& value) {
      if (active_) stream_ << value;
      return *this;
    }

    void disable() noexcept { active_ = false; }

   private:
    LogLevel level_;
    std::string_view tag_;
    std::ostringstream stream_;
    bool active_ = true;
  };

  [[nodiscard]] Line trace() const { return make(LogLevel::kTrace); }
  [[nodiscard]] Line debug() const { return make(LogLevel::kDebug); }
  [[nodiscard]] Line info() const { return make(LogLevel::kInfo); }
  [[nodiscard]] Line warn() const { return make(LogLevel::kWarn); }
  [[nodiscard]] Line error() const { return make(LogLevel::kError); }

 private:
  [[nodiscard]] Line make(LogLevel level) const {
    Line line(level, tag_);
    if (!Log::enabled(level)) line.disable();
    return line;
  }

  std::string tag_;
};

/// RAII helper that redirects log output into a buffer for test assertions.
/// Safe under concurrent writers (appends are serialized internally), and
/// the buffer state lives in a shared_ptr captured by the installed sink —
/// a write racing this capture's teardown appends to the detached state
/// instead of a dangling member.
class LogCapture {
 public:
  LogCapture();
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  /// A snapshot of everything captured so far. The reference stays valid
  /// for the LogCapture's lifetime and is refreshed by the next text()
  /// call; take the snapshot AFTER joining concurrent logging threads.
  [[nodiscard]] const std::string& text() const noexcept;
  [[nodiscard]] bool contains(std::string_view needle) const noexcept {
    return text().find(needle) != std::string::npos;
  }

 private:
  struct State;
  std::shared_ptr<State> state_;
  mutable std::string snapshot_;  ///< backing storage for text()
  Log::Sink previous_;
  LogLevel previous_level_;
};

}  // namespace dice::util
