// Lightweight structured logging with levels and per-component tags.
// A global sink keeps the API ergonomic; tests can capture output via
// LogCapture. Each simulator instance is single-threaded, but exploration
// runs many cloned simulators on concurrent workers (explore::ExplorePool),
// so emission is serialized behind a single sink mutex: concurrent workers
// never interleave partial lines. Message formatting stays outside the
// lock (each Line owns its stream); only the sink call is serialized.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace dice::util {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Process-wide logging configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view tag, std::string_view msg)>;

  static void set_level(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel level() noexcept;
  [[nodiscard]] static bool enabled(LogLevel level) noexcept;

  /// Replaces the output sink; returns the previous one. Pass nullptr to
  /// restore the default stderr sink.
  static Sink set_sink(Sink sink);

  static void write(LogLevel level, std::string_view tag, std::string_view msg);
};

/// Builder-style log statement: Logger("bgp").info() << "converged in " << n;
class Logger {
 public:
  explicit Logger(std::string tag) : tag_(std::move(tag)) {}

  class Line {
   public:
    Line(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;
    Line(Line&& other) noexcept
        : level_(other.level_),
          tag_(other.tag_),
          stream_(std::move(other.stream_)),
          active_(other.active_) {
      other.active_ = false;
    }
    Line& operator=(Line&&) = delete;
    ~Line() {
      if (active_) Log::write(level_, tag_, stream_.str());
    }

    template <typename T>
    Line& operator<<(const T& value) {
      if (active_) stream_ << value;
      return *this;
    }

    void disable() noexcept { active_ = false; }

   private:
    LogLevel level_;
    std::string_view tag_;
    std::ostringstream stream_;
    bool active_ = true;
  };

  [[nodiscard]] Line trace() const { return make(LogLevel::kTrace); }
  [[nodiscard]] Line debug() const { return make(LogLevel::kDebug); }
  [[nodiscard]] Line info() const { return make(LogLevel::kInfo); }
  [[nodiscard]] Line warn() const { return make(LogLevel::kWarn); }
  [[nodiscard]] Line error() const { return make(LogLevel::kError); }

 private:
  [[nodiscard]] Line make(LogLevel level) const {
    Line line(level, tag_);
    if (!Log::enabled(level)) line.disable();
    return line;
  }

  std::string tag_;
};

/// RAII helper that redirects log output into a buffer for test assertions.
class LogCapture {
 public:
  LogCapture();
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  [[nodiscard]] bool contains(std::string_view needle) const noexcept {
    return text_.find(needle) != std::string::npos;
  }

 private:
  std::string text_;
  Log::Sink previous_;
  LogLevel previous_level_;
};

}  // namespace dice::util
