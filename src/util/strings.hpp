// Small string helpers for the config parser and report formatting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace dice::util {

/// Splits on a delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Parses an unsigned decimal integer; rejects empty/overflow/junk.
[[nodiscard]] Result<std::uint64_t> parse_u64(std::string_view s) noexcept;

/// Joins items with a separator (reporting convenience).
[[nodiscard]] std::string join(const std::vector<std::string>& items, std::string_view sep);

/// printf-style formatting into std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dice::util
