#include "util/ip.hpp"

#include "util/strings.hpp"

namespace dice::util {

std::string IpAddress::to_string() const {
  return format("%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
}

Result<IpAddress> IpAddress::parse(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return make_error("ip.parse.quad_count", std::string(text));
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    auto octet = parse_u64(part);
    if (!octet) return make_error("ip.parse.bad_octet", std::string(text));
    if (octet.value() > 255) return make_error("ip.parse.octet_range", std::string(text));
    value = (value << 8) | static_cast<std::uint32_t>(octet.value());
  }
  return IpAddress{value};
}

std::string IpPrefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

Result<IpPrefix> IpPrefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return make_error("ip.prefix.missing_length", std::string(text));
  }
  auto addr = IpAddress::parse(text.substr(0, slash));
  if (!addr) return addr.error();
  auto len = parse_u64(text.substr(slash + 1));
  if (!len) return make_error("ip.prefix.bad_length", std::string(text));
  if (len.value() > 32) return make_error("ip.prefix.length_range", std::string(text));
  return IpPrefix{addr.value(), static_cast<std::uint8_t>(len.value())};
}

}  // namespace dice::util
