// Big-endian (network byte order) byte buffer reader/writer used by the BGP
// wire codec and the checkpoint serializer. Readers are bounds-checked and
// fail soft (Result) so malformed fuzzer inputs cannot crash the decoder.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace dice::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian integers and raw bytes to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  /// LEB128 varint: 7 value bits per byte, high bit = continuation.
  /// Encodes 0..127 in one byte; a u32 takes at most 5 bytes, a u64 at
  /// most 10. The checkpoint codec leans on these for counts, ids, and
  /// pool indices, which are overwhelmingly small.
  void vu32(std::uint32_t v) { vu64(v); }
  void vu64(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  /// Zigzag-coded signed varints: small magnitudes (either sign) stay small
  /// on the wire. -1 -> 1, 1 -> 2, -2 -> 3, ...
  void vi32(std::int32_t v) {
    vu32((static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31));
  }
  void vi64(std::int64_t v) {
    vu64((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
  }
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Reserves `n` bytes at the current position and returns their offset;
  /// use patch_u16 to fill a length field once the payload size is known.
  [[nodiscard]] std::size_t placeholder(std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(buf_.size() + n, 0);
    return at;
  }
  void patch_u8(std::size_t at, std::uint8_t v) { buf_.at(at) = v; }
  void patch_u16(std::size_t at, std::uint16_t v) {
    buf_.at(at) = static_cast<std::uint8_t>(v >> 8);
    buf_.at(at + 1) = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const& noexcept { return buf_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept { return buf_; }

 private:
  Bytes buf_;
};

/// Bounds-checked big-endian reader over a borrowed byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= data_.size(); }

  [[nodiscard]] Result<std::uint8_t> u8() noexcept {
    if (remaining() < 1) return truncated("u8");
    return data_[pos_++];
  }
  /// Looks at the next byte without consuming it — the checkpoint decoder
  /// dispatches on the format-version byte this way before handing the
  /// stream to the matching parser.
  [[nodiscard]] Result<std::uint8_t> peek_u8() const noexcept {
    if (remaining() < 1) return truncated("peek_u8");
    return data_[pos_];
  }
  [[nodiscard]] Result<std::uint16_t> u16() noexcept {
    if (remaining() < 2) return truncated("u16");
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  [[nodiscard]] Result<std::uint32_t> u32() noexcept {
    if (remaining() < 4) return truncated("u32");
    const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                            static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  [[nodiscard]] Result<std::uint64_t> u64() noexcept {
    auto hi = u32();
    if (!hi) return hi.error();
    auto lo = u32();
    if (!lo) return lo.error();
    return (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
  }
  /// LEB128 varint reads. Fail soft (never read past the buffer): a varint
  /// hitting the end of data returns bytes.truncated, one running past the
  /// maximum encoded length for its width — or carrying payload bits beyond
  /// that width — returns bytes.varint.malformed. Canonical-length overlong
  /// encodings that still fit the width (e.g. 0x80 0x00 for zero) decode
  /// normally; only streams that could overflow are rejected.
  [[nodiscard]] Result<std::uint32_t> vu32() noexcept {
    auto v = varint(5, 32, "vu32");
    if (!v) return v.error();
    return static_cast<std::uint32_t>(v.value());
  }
  [[nodiscard]] Result<std::uint64_t> vu64() noexcept { return varint(10, 64, "vu64"); }
  [[nodiscard]] Result<std::int32_t> vi32() noexcept {
    auto v = vu32();
    if (!v) return v.error();
    return static_cast<std::int32_t>((v.value() >> 1) ^ (~(v.value() & 1) + 1));
  }
  [[nodiscard]] Result<std::int64_t> vi64() noexcept {
    auto v = vu64();
    if (!v) return v.error();
    return static_cast<std::int64_t>((v.value() >> 1) ^ (~(v.value() & 1) + 1));
  }
  [[nodiscard]] Result<std::span<const std::uint8_t>> raw(std::size_t n) noexcept {
    if (remaining() < n) return truncated("raw");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  [[nodiscard]] Result<std::string> str() {
    auto len = u32();
    if (!len) return len.error();
    auto body = raw(len.value());
    if (!body) return body.error();
    return std::string(body.value().begin(), body.value().end());
  }
  Status skip(std::size_t n) noexcept {
    if (remaining() < n) return truncated("skip");
    pos_ += n;
    return Status::success();
  }

 private:
  [[nodiscard]] static Error truncated(const char* what) {
    return make_error("bytes.truncated", what);
  }
  [[nodiscard]] Result<std::uint64_t> varint(std::size_t max_bytes,
                                             unsigned bits,
                                             const char* what) noexcept {
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < max_bytes; ++i) {
      if (pos_ + i >= data_.size()) return truncated(what);
      const std::uint8_t byte = data_[pos_ + i];
      const unsigned shift = static_cast<unsigned>(i) * 7;
      const std::uint64_t group = byte & 0x7f;
      // Reject payload bits that fall outside the target width: on the
      // final permitted byte only (bits - shift) low bits may be set.
      if (shift + 7 > bits && (group >> (bits - shift)) != 0) {
        return make_error("bytes.varint.malformed", what);
      }
      out |= group << shift;
      if ((byte & 0x80) == 0) {
        pos_ += i + 1;
        return out;
      }
    }
    return make_error("bytes.varint.malformed", what);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex dump (lowercase, no separators) — used in fault report evidence.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);

/// Parses a hex string produced by to_hex. Fails on odd length or bad digit.
[[nodiscard]] Result<Bytes> from_hex(std::string_view hex);

}  // namespace dice::util
