// Deterministic random number generation (xoshiro256** + splitmix64 seeding).
// All randomized components (fuzzer, solver search, workload generators) take
// an explicit Rng so experiments are reproducible from a single seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dice::util {

/// splitmix64: used to expand a single seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Small, fast, and deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eedc0de) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound==0 yields 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Debiased multiply-shift (Lemire); bias is negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Random byte.
  constexpr std::uint8_t byte() noexcept { return static_cast<std::uint8_t>(next() & 0xff); }

  /// Derives an independent child generator (for per-component streams).
  /// Advances this generator; successive calls yield distinct children.
  [[nodiscard]] constexpr Rng fork() noexcept { return Rng{next() ^ 0x9e3779b97f4a7c15ULL}; }

  /// Splittable fork: derives the independent stream named `stream_id`
  /// WITHOUT advancing this generator. fork(i) depends only on the current
  /// state and i, so any subset of streams, taken in any order — or
  /// concurrently by different workers — yields identical generators.
  /// This is what makes parallel clone exploration bit-reproducible.
  [[nodiscard]] constexpr Rng fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ stream_id;
    for (const std::uint64_t word : state_) {
      std::uint64_t s = h ^ word;
      h = splitmix64_next(s);
    }
    std::uint64_t s = h ^ (stream_id * 0xff51afd7ed558ccdULL);
    return Rng{splitmix64_next(s)};
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Zipf-like sampler over [0, n): rank r drawn with probability ~ 1/(r+1)^s.
/// Used by the workload generator to skew prefix popularity.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : n_(n), s_(s) {
    cumulative_.reserve(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / pow_s(static_cast<double>(i + 1));
      cumulative_.push_back(sum);
    }
    total_ = sum;
  }

  [[nodiscard]] std::size_t sample(Rng& rng) const {
    if (n_ == 0) return 0;
    const double target = rng.uniform() * total_;
    // Binary search for the first cumulative weight >= target.
    std::size_t lo = 0;
    std::size_t hi = n_ - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  [[nodiscard]] double pow_s(double x) const {
    // Cheap pow for the common s values; falls back to exp/log.
    if (s_ == 1.0) return x;
    return __builtin_exp(s_ * __builtin_log(x));
  }

  std::size_t n_;
  double s_;
  double total_ = 0.0;
  std::vector<double> cumulative_;
};

}  // namespace dice::util
