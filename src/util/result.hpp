// Minimal expected-like result type used across the codebase for fallible
// operations (codec, parsing, solving). Keeps error paths explicit without
// exceptions on hot paths, per the project error-handling policy.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dice::util {

/// Error payload: a short machine-readable code plus human-readable detail.
struct Error {
  std::string code;    ///< stable identifier, e.g. "bgp.decode.truncated"
  std::string detail;  ///< free-form context for logs / debugging

  [[nodiscard]] std::string to_string() const {
    return detail.empty() ? code : code + ": " + detail;
  }
};

/// Result<T> holds either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : storage_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : err_(std::move(err)), failed_(true) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Status success() { return Status{}; }

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(failed_);
    return err_;
  }

 private:
  Error err_;
  bool failed_ = false;
};

/// Convenience factory for error results.
inline Error make_error(std::string code, std::string detail = {}) {
  return Error{std::move(code), std::move(detail)};
}

}  // namespace dice::util
