// Small non-cryptographic hashing utilities: FNV-1a and hash combining.
// Used for checkpoint content hashing and the narrow information-sharing
// interface (nodes exchange hashes of evidence rather than raw state).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace dice::util {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a byte span; `seed` allows chaining across fields.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::span<const std::uint8_t> data,
                                            std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s,
                                            std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Mixes an integral value into a running hash (order-sensitive).
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffU;
    h *= kFnvPrime;
  }
  return h;
}

/// 64->64 bit finalizer (splitmix64 finalization) for avalanche quality.
[[nodiscard]] constexpr std::uint64_t hash_finalize(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace dice::util
