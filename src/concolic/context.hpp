// SymCtx: the per-execution concolic recording context. Instrumented code
// (the BGP UPDATE handler and policy interpreter) runs against Sym* scalar
// types (sym.hpp); whenever control flow depends on a symbolic value, the
// branch outcome and its condition are appended to the PathCondition here.
// With no active context the instrumented types degrade to plain integers —
// this is what keeps DiCE's overhead on the live node low (paper §3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "concolic/expr.hpp"
#include "util/bytes.hpp"

namespace dice::concolic {

/// Identifies a branch location in the instrumented source (hashed
/// file:line from std::source_location). Used for coverage accounting.
using BranchSite = std::uint32_t;

/// One recorded branch: the symbolic condition and the direction the
/// concrete execution took at a given source site.
struct BranchRecord {
  ExprRef cond = kNullExpr;
  bool taken = false;
  BranchSite site = 0;
};

/// Ordered list of branch records for a single execution.
class PathCondition {
 public:
  void record(ExprRef cond, bool taken, BranchSite site) {
    records_.push_back(BranchRecord{cond, taken, site});
  }

  [[nodiscard]] const std::vector<BranchRecord>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  void clear() noexcept { records_.clear(); }

  /// Order-sensitive signature of (site, taken) pairs: two executions with
  /// the same signature followed the same explored path.
  [[nodiscard]] std::uint64_t signature() const noexcept;

 private:
  std::vector<BranchRecord> records_;
};

/// Thrown by sym_assert / instrumented invariants; the concolic engine (and
/// the router's top-level handler) catch it and classify as a programming
/// error — the paper's third fault class.
struct CrashSignal {
  std::string what;
  util::Bytes input;  // filled in by the engine when known
};

/// Execution context: symbolic input bytes, expression pool, path condition.
class SymCtx {
 public:
  explicit SymCtx(util::Bytes input) : input_(std::move(input)) {}

  [[nodiscard]] ExprPool& pool() noexcept { return pool_; }
  [[nodiscard]] const ExprPool& pool() const noexcept { return pool_; }
  [[nodiscard]] PathCondition& path() noexcept { return path_; }
  [[nodiscard]] const PathCondition& path() const noexcept { return path_; }
  [[nodiscard]] const util::Bytes& input() const noexcept { return input_; }
  [[nodiscard]] std::size_t input_size() const noexcept { return input_.size(); }

  /// Concrete value of input byte i (0 beyond the end, mirroring eval()).
  [[nodiscard]] std::uint8_t concrete_byte(std::size_t i) const noexcept {
    return i < input_.size() ? input_[i] : 0;
  }

  /// Marks an execution-level fault (caught assertion, decoder invariant).
  void flag_crash(std::string what) {
    crashed_ = true;
    crash_reason_ = std::move(what);
  }
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  [[nodiscard]] const std::string& crash_reason() const noexcept { return crash_reason_; }

  /// The active context for instrumented code, or nullptr when the code is
  /// running concretely (live node). Thread-local: each exploration worker
  /// (explore::ExplorePool, ScenarioMatrix cells) activates its own context
  /// without seeing — or disturbing — any other worker's recording.
  [[nodiscard]] static SymCtx* current() noexcept { return current_; }

 private:
  friend class SymScope;
  inline static thread_local SymCtx* current_ = nullptr;

  ExprPool pool_;
  PathCondition path_;
  util::Bytes input_;
  bool crashed_ = false;
  std::string crash_reason_;
};

/// RAII activation of a SymCtx as the current recording context.
class SymScope {
 public:
  explicit SymScope(SymCtx& ctx) noexcept : previous_(SymCtx::current_) {
    SymCtx::current_ = &ctx;
  }
  ~SymScope() noexcept { SymCtx::current_ = previous_; }
  SymScope(const SymScope&) = delete;
  SymScope& operator=(const SymScope&) = delete;

 private:
  SymCtx* previous_;
};

}  // namespace dice::concolic
