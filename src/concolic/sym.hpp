// Instrumented scalar types for source-level concolic execution.
//
// A Sym<U> carries a concrete value plus (optionally) a symbolic expression.
// Arithmetic and comparisons compute concretely AND build the matching
// expression when a SymCtx is active and at least one operand is symbolic.
// Control flow over symbolic booleans must go through branch(), which
// records the (condition, direction) pair in the active path condition and
// returns the concrete truth value — exactly the concolic discipline the
// Oasis engine applies to BIRD in the paper, here done at the source level.
//
// With no active SymCtx every operation is a plain integer operation plus a
// null check, which is what bench_e4_overhead measures against vanilla code.
#pragma once

#include <cstdint>
#include <source_location>
#include <type_traits>

#include "concolic/context.hpp"
#include "util/hash.hpp"

namespace dice::concolic {

namespace detail {

template <typename U>
inline constexpr std::uint8_t width_of = sizeof(U) * 8;

[[nodiscard]] inline BranchSite site_of(const std::source_location& loc) noexcept {
  std::uint64_t h = util::fnv1a(loc.file_name());
  h = util::hash_mix(h, loc.line());
  h = util::hash_mix(h, loc.column());
  return static_cast<BranchSite>(util::hash_finalize(h));
}

}  // namespace detail

template <typename U>
class Sym;

/// Symbolic boolean: result of instrumented comparisons.
class SymBool {
 public:
  SymBool(bool v) : conc_(v) {}  // NOLINT(google-explicit-constructor)
  SymBool(bool v, ExprRef e) : conc_(v), expr_(e) {}

  [[nodiscard]] bool concrete() const noexcept { return conc_; }
  [[nodiscard]] ExprRef expr() const noexcept { return expr_; }
  [[nodiscard]] bool symbolic() const noexcept {
    return expr_ != kNullExpr && SymCtx::current() != nullptr;
  }

  [[nodiscard]] SymBool operator!() const {
    if (!symbolic()) return SymBool{!conc_};
    return SymBool{!conc_, SymCtx::current()->pool().bool_not(expr_)};
  }
  [[nodiscard]] SymBool operator&&(const SymBool& other) const {
    const bool value = conc_ && other.conc_;
    SymCtx* ctx = SymCtx::current();
    if (ctx == nullptr || (expr_ == kNullExpr && other.expr_ == kNullExpr)) {
      return SymBool{value};
    }
    return SymBool{value, ctx->pool().binary(Op::kBoolAnd, materialize(*ctx), other.materialize(*ctx))};
  }
  [[nodiscard]] SymBool operator||(const SymBool& other) const {
    const bool value = conc_ || other.conc_;
    SymCtx* ctx = SymCtx::current();
    if (ctx == nullptr || (expr_ == kNullExpr && other.expr_ == kNullExpr)) {
      return SymBool{value};
    }
    return SymBool{value, ctx->pool().binary(Op::kBoolOr, materialize(*ctx), other.materialize(*ctx))};
  }

  [[nodiscard]] ExprRef materialize(SymCtx& ctx) const {
    return expr_ != kNullExpr ? expr_ : ctx.pool().constant(conc_ ? 1 : 0, 1);
  }

 private:
  bool conc_;
  ExprRef expr_ = kNullExpr;
};

/// Records a symbolic branch and returns the concrete direction. ALL
/// control flow on symbolic data in instrumented code must flow through
/// here; plain `if (x.concrete())` would silently drop the constraint.
[[nodiscard]] inline bool branch(const SymBool& cond,
                                 const std::source_location loc =
                                     std::source_location::current()) {
  SymCtx* ctx = SymCtx::current();
  if (ctx != nullptr && cond.expr() != kNullExpr) {
    ctx->path().record(cond.expr(), cond.concrete(), detail::site_of(loc));
  }
  return cond.concrete();
}

/// Instrumented assertion: records the condition like a branch, then raises
/// CrashSignal when concretely violated. Models the "programming error"
/// fault class: the engine searches for inputs that reach the violation.
inline void sym_assert(const SymBool& cond, const char* what,
                       const std::source_location loc = std::source_location::current()) {
  if (!branch(cond, loc)) {
    if (SymCtx* ctx = SymCtx::current()) ctx->flag_crash(what);
    throw CrashSignal{what, {}};
  }
}

/// Instrumented unsigned integer.
template <typename U>
class Sym {
  static_assert(std::is_unsigned_v<U> && sizeof(U) <= 8);

 public:
  using value_type = U;
  static constexpr std::uint8_t kWidth = detail::width_of<U>;

  constexpr Sym() = default;
  constexpr Sym(U v) : conc_(v) {}  // NOLINT(google-explicit-constructor)
  constexpr Sym(U v, ExprRef e) : conc_(v), expr_(e) {}

  [[nodiscard]] constexpr U concrete() const noexcept { return conc_; }
  [[nodiscard]] constexpr ExprRef expr() const noexcept { return expr_; }
  [[nodiscard]] bool symbolic() const noexcept {
    return expr_ != kNullExpr && SymCtx::current() != nullptr;
  }

  /// Widening/narrowing conversion that preserves the symbolic expression.
  template <typename V>
  [[nodiscard]] Sym<V> to() const {
    const V value = static_cast<V>(conc_);
    SymCtx* ctx = SymCtx::current();
    if (ctx == nullptr || expr_ == kNullExpr) return Sym<V>{value};
    constexpr std::uint8_t target = detail::width_of<V>;
    if constexpr (detail::width_of<V> == kWidth) {
      return Sym<V>{value, expr_};
    } else if constexpr (detail::width_of<V> > kWidth) {
      return Sym<V>{value, ctx->pool().zext(expr_, target)};
    } else {
      return Sym<V>{value, ctx->pool().trunc(expr_, target)};
    }
  }

  // --- arithmetic / bitwise -------------------------------------------------
  friend Sym operator+(const Sym& a, const Sym& b) { return combine(Op::kAdd, a, b, static_cast<U>(a.conc_ + b.conc_)); }
  friend Sym operator-(const Sym& a, const Sym& b) { return combine(Op::kSub, a, b, static_cast<U>(a.conc_ - b.conc_)); }
  friend Sym operator*(const Sym& a, const Sym& b) { return combine(Op::kMul, a, b, static_cast<U>(a.conc_ * b.conc_)); }
  friend Sym operator&(const Sym& a, const Sym& b) { return combine(Op::kAnd, a, b, static_cast<U>(a.conc_ & b.conc_)); }
  friend Sym operator|(const Sym& a, const Sym& b) { return combine(Op::kOr, a, b, static_cast<U>(a.conc_ | b.conc_)); }
  friend Sym operator^(const Sym& a, const Sym& b) { return combine(Op::kXor, a, b, static_cast<U>(a.conc_ ^ b.conc_)); }
  friend Sym operator<<(const Sym& a, const Sym& b) {
    const U value = b.conc_ >= kWidth ? U{0} : static_cast<U>(a.conc_ << b.conc_);
    return combine(Op::kShl, a, b, value);
  }
  friend Sym operator>>(const Sym& a, const Sym& b) {
    const U value = b.conc_ >= kWidth ? U{0} : static_cast<U>(a.conc_ >> b.conc_);
    return combine(Op::kLshr, a, b, value);
  }

  // --- comparisons ----------------------------------------------------------
  friend SymBool operator==(const Sym& a, const Sym& b) { return compare(Op::kEq, a, b, a.conc_ == b.conc_); }
  friend SymBool operator!=(const Sym& a, const Sym& b) { return compare(Op::kNe, a, b, a.conc_ != b.conc_); }
  friend SymBool operator<(const Sym& a, const Sym& b) { return compare(Op::kUlt, a, b, a.conc_ < b.conc_); }
  friend SymBool operator<=(const Sym& a, const Sym& b) { return compare(Op::kUle, a, b, a.conc_ <= b.conc_); }
  friend SymBool operator>(const Sym& a, const Sym& b) { return compare(Op::kUlt, b, a, a.conc_ > b.conc_); }
  friend SymBool operator>=(const Sym& a, const Sym& b) { return compare(Op::kUle, b, a, a.conc_ >= b.conc_); }

  [[nodiscard]] ExprRef materialize(SymCtx& ctx) const {
    return expr_ != kNullExpr ? expr_ : ctx.pool().constant(conc_, kWidth);
  }

 private:
  [[nodiscard]] static Sym combine(Op op, const Sym& a, const Sym& b, U value) {
    SymCtx* ctx = SymCtx::current();
    if (ctx == nullptr || (a.expr_ == kNullExpr && b.expr_ == kNullExpr)) {
      return Sym{value};
    }
    return Sym{value, ctx->pool().binary(op, a.materialize(*ctx), b.materialize(*ctx))};
  }
  [[nodiscard]] static SymBool compare(Op op, const Sym& a, const Sym& b, bool value) {
    SymCtx* ctx = SymCtx::current();
    if (ctx == nullptr || (a.expr_ == kNullExpr && b.expr_ == kNullExpr)) {
      return SymBool{value};
    }
    return SymBool{value, ctx->pool().binary(op, a.materialize(*ctx), b.materialize(*ctx))};
  }

  U conc_{};
  ExprRef expr_ = kNullExpr;
};

using SymU8 = Sym<std::uint8_t>;
using SymU16 = Sym<std::uint16_t>;
using SymU32 = Sym<std::uint32_t>;
using SymU64 = Sym<std::uint64_t>;

/// Reads input byte i as a symbolic value tied to the active context. With
/// no active context the byte is concretely zero — callers always bound
/// reads by the concrete input size, so this path is never exercised.
[[nodiscard]] inline SymU8 input_byte(std::size_t i) {
  SymCtx* ctx = SymCtx::current();
  if (ctx == nullptr) return SymU8{0};
  return SymU8{ctx->concrete_byte(i), ctx->pool().sym_byte(static_cast<std::uint32_t>(i))};
}

/// Big-endian 16-bit read of input bytes [i, i+2).
[[nodiscard]] inline SymU16 input_u16(std::size_t i) {
  const SymU16 high = input_byte(i).to<std::uint16_t>();
  const SymU16 low = input_byte(i + 1).to<std::uint16_t>();
  return (high << SymU16{8}) | low;
}

/// Big-endian 32-bit read of input bytes [i, i+4).
[[nodiscard]] inline SymU32 input_u32(std::size_t i) {
  const SymU32 b0 = input_byte(i).to<std::uint32_t>();
  const SymU32 b1 = input_byte(i + 1).to<std::uint32_t>();
  const SymU32 b2 = input_byte(i + 2).to<std::uint32_t>();
  const SymU32 b3 = input_byte(i + 3).to<std::uint32_t>();
  return (b0 << SymU32{24}) | (b1 << SymU32{16}) | (b2 << SymU32{8}) | b3;
}

}  // namespace dice::concolic
