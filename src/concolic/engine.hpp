// ConcolicEngine: generational path exploration (SAGE-style) over an
// instrumented target function.
//
// The engine repeatedly (i) executes the target on a concrete input while
// recording the path condition, (ii) picks a recorded branch at depth >= the
// input's generation bound, (iii) asks the solver for an input that keeps
// the path prefix but flips that branch, and (iv) enqueues solutions scored
// by the new branch coverage they promise. This is the code-path exploration
// role the Oasis engine plays in the paper (§2): "for each constraint, query
// a solver to find a value that negates the constraint and leads down a
// different code path".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "concolic/context.hpp"
#include "concolic/solver.hpp"
#include "util/bytes.hpp"

namespace dice::concolic {

struct EngineOptions {
  std::uint32_t max_executions = 2000;      ///< concrete executions budget
  std::uint32_t max_generated_inputs = 4000;
  std::uint32_t max_branches_per_exec = 512;  ///< cap negation fan-out per run
  SolverOptions solver;
  bool stop_on_first_crash = false;
  /// SAGE-style generational bound: children only negate branches deeper
  /// than the one that produced them. Disabling it (ablation) re-negates
  /// every prefix branch of every execution — redundant work the input
  /// dedup then has to absorb.
  bool generational = true;
};

struct EngineStats {
  std::uint64_t executions = 0;
  std::uint64_t unique_paths = 0;
  std::uint64_t branch_points = 0;   ///< distinct (site, direction) covered
  std::uint64_t generated = 0;       ///< inputs produced by solving
  std::uint64_t crashes = 0;
  SolverStats solver;
};

struct CrashInfo {
  std::string reason;
  util::Bytes input;
  std::uint64_t path_signature = 0;
};

struct RunResult {
  EngineStats stats;
  std::vector<CrashInfo> crashes;
  std::vector<util::Bytes> corpus;  ///< all distinct inputs that ran
};

class ConcolicEngine {
 public:
  /// The target runs instrumented code reading input via input_byte()/
  /// input_u16()/input_u32(); CrashSignal escapes are caught and recorded.
  using Target = std::function<void(SymCtx&)>;
  /// Optional observer invoked after every execution (for live dashboards
  /// and the exploration benches).
  using Observer = std::function<void(const SymCtx&, const util::Bytes&)>;

  ConcolicEngine(Target target, EngineOptions options = {});

  void add_seed(util::Bytes seed);
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Attaches a solver memo (explore::SolverCache) so identical branch
  /// negations are solved once across executions, episodes and clones.
  void set_solver_memo(SolverMemo* memo) noexcept { solver_.set_memo(memo); }

  /// Runs until budgets are exhausted or the queue drains.
  [[nodiscard]] RunResult run();

  /// Same, but with this call's execution budget overriding the options
  /// (incremental batch exploration: queue/coverage persist across calls).
  [[nodiscard]] RunResult run(std::uint32_t max_executions);

  [[nodiscard]] bool queue_empty() const noexcept { return queue_.empty(); }

  /// Executes exactly one input, recording stats/coverage. Exposed for
  /// deterministic unit tests and for DiCE's per-input exploration loop.
  void execute_one(const util::Bytes& input, RunResult& result);

 private:
  struct WorkItem {
    util::Bytes input;
    std::uint32_t bound = 0;   // generation bound: only negate branches >= bound
    std::uint64_t score = 0;   // higher = explored earlier
    std::uint64_t sequence = 0;  // FIFO tie-break for determinism
    bool operator<(const WorkItem& other) const noexcept {
      if (score != other.score) return score < other.score;
      return sequence > other.sequence;
    }
  };

  void expand(const SymCtx& ctx, const WorkItem& item, RunResult& result);
  [[nodiscard]] bool remember_input(const util::Bytes& input);

  Target target_;
  EngineOptions options_;
  Solver solver_;
  Observer observer_;
  std::priority_queue<WorkItem> queue_;
  std::unordered_set<std::uint64_t> seen_inputs_;
  std::unordered_set<std::uint64_t> seen_paths_;
  std::unordered_set<std::uint64_t> seen_branches_;  // (site, taken) hashes
  std::unordered_set<std::uint64_t> seen_crash_sigs_;
  std::uint64_t sequence_ = 0;
};

}  // namespace dice::concolic
