// Symbolic expression DAG for the concolic runtime (the Oasis substitute,
// see DESIGN.md). Expressions are hash-consed nodes in an arena owned by an
// ExprPool; ExprRef is an index into that arena. Widths are 1 (bool), 8, 16,
// 32 or 64 bits; every symbolic leaf is one 8-bit input byte, matching the
// paper's choice of treating raw BGP UPDATE bytes as the symbolic input.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dice::concolic {

using ExprRef = std::uint32_t;
inline constexpr ExprRef kNullExpr = 0xffffffffU;

enum class Op : std::uint8_t {
  kConst,    // value = constant (masked to width)
  kSym,      // value = input byte index, width 8
  kAdd,
  kSub,
  kMul,
  kUDiv,     // division by zero yields all-ones, like hardware-style semantics
  kURem,     // remainder by zero yields the dividend
  kAnd,
  kOr,
  kXor,
  kShl,      // shift amounts >= width yield 0
  kLshr,
  kZext,     // widen a to `width`
  kTrunc,    // narrow a to `width`
  kConcat,   // a is the high part, b the low part; width = wa + wb
  kExtract,  // value = bit offset (from LSB), extracts `width` bits of a
  kEq,       // comparisons produce width-1 booleans
  kNe,
  kUlt,
  kUle,
  kBoolNot,
  kBoolAnd,
  kBoolOr,
  kIte,      // a ? b : c is encoded as (a, b) with value = c (child ref)
};

[[nodiscard]] std::string_view op_name(Op op) noexcept;

/// One DAG node. POD by design: the pool stores nodes contiguously.
struct ExprNode {
  Op op;
  std::uint8_t width;  // result width in bits
  ExprRef a = kNullExpr;
  ExprRef b = kNullExpr;
  std::uint64_t value = 0;  // kConst: constant; kSym: byte index; kExtract: offset; kIte: child c
};

/// Arena + hash-consing + constant folding for expression construction, and
/// a concrete evaluator used by the solver to verify candidate assignments.
class ExprPool {
 public:
  ExprPool();

  [[nodiscard]] ExprRef constant(std::uint64_t value, std::uint8_t width);
  [[nodiscard]] ExprRef sym_byte(std::uint32_t input_index);
  [[nodiscard]] ExprRef binary(Op op, ExprRef a, ExprRef b);
  [[nodiscard]] ExprRef zext(ExprRef a, std::uint8_t width);
  [[nodiscard]] ExprRef trunc(ExprRef a, std::uint8_t width);
  [[nodiscard]] ExprRef concat(ExprRef high, ExprRef low);
  [[nodiscard]] ExprRef extract(ExprRef a, std::uint8_t bit_offset, std::uint8_t width);
  [[nodiscard]] ExprRef bool_not(ExprRef a);
  [[nodiscard]] ExprRef ite(ExprRef cond, ExprRef then_e, ExprRef else_e);

  [[nodiscard]] const ExprNode& node(ExprRef ref) const { return nodes_[ref]; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Evaluates `ref` under a concrete input assignment. Bytes beyond the
  /// assignment read as zero (the decoder never reaches them; see sym.hpp).
  [[nodiscard]] std::uint64_t eval(ExprRef ref, std::span<const std::uint8_t> input) const;

  /// Collects the distinct input byte indices `ref` depends on.
  void collect_syms(ExprRef ref, std::unordered_set<std::uint32_t>& out) const;

  /// Human-readable rendering for debugging and fault evidence.
  [[nodiscard]] std::string to_string(ExprRef ref) const;

 private:
  struct NodeKey {
    Op op;
    std::uint8_t width;
    ExprRef a;
    ExprRef b;
    std::uint64_t value;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    [[nodiscard]] std::size_t operator()(const NodeKey& k) const noexcept;
  };

  [[nodiscard]] ExprRef intern(const NodeKey& key);
  [[nodiscard]] static std::uint64_t mask(std::uint64_t v, std::uint8_t width) noexcept {
    return width >= 64 ? v : (v & ((std::uint64_t{1} << width) - 1));
  }
  [[nodiscard]] bool is_const(ExprRef ref) const {
    return ref != kNullExpr && nodes_[ref].op == Op::kConst;
  }
  [[nodiscard]] std::uint64_t fold_binary(Op op, std::uint64_t a, std::uint64_t b,
                                          std::uint8_t width) const noexcept;

  std::vector<ExprNode> nodes_;
  std::unordered_map<NodeKey, ExprRef, NodeKeyHash> interned_;
  mutable std::vector<std::uint64_t> eval_cache_;
  mutable std::vector<std::uint32_t> eval_epoch_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace dice::concolic
