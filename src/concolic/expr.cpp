#include "concolic/expr.hpp"

#include <cassert>

#include "util/hash.hpp"
#include "util/strings.hpp"

namespace dice::concolic {

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kSym: return "sym";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kUDiv: return "udiv";
    case Op::kURem: return "urem";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kLshr: return "lshr";
    case Op::kZext: return "zext";
    case Op::kTrunc: return "trunc";
    case Op::kConcat: return "concat";
    case Op::kExtract: return "extract";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kUlt: return "ult";
    case Op::kUle: return "ule";
    case Op::kBoolNot: return "not";
    case Op::kBoolAnd: return "band";
    case Op::kBoolOr: return "bor";
    case Op::kIte: return "ite";
  }
  return "?";
}

std::size_t ExprPool::NodeKeyHash::operator()(const NodeKey& k) const noexcept {
  std::uint64_t h = util::kFnvOffset;
  h = util::hash_mix(h, static_cast<std::uint64_t>(k.op));
  h = util::hash_mix(h, k.width);
  h = util::hash_mix(h, k.a);
  h = util::hash_mix(h, k.b);
  h = util::hash_mix(h, k.value);
  return static_cast<std::size_t>(util::hash_finalize(h));
}

ExprPool::ExprPool() {
  nodes_.reserve(1024);
  // Slot 0 is a canonical false so that callers can use ref 0 deliberately;
  // it also keeps kNullExpr distinct from any valid node.
  nodes_.push_back(ExprNode{Op::kConst, 1, kNullExpr, kNullExpr, 0});
}

ExprRef ExprPool::intern(const NodeKey& key) {
  if (auto it = interned_.find(key); it != interned_.end()) return it->second;
  const ExprRef ref = static_cast<ExprRef>(nodes_.size());
  nodes_.push_back(ExprNode{key.op, key.width, key.a, key.b, key.value});
  interned_.emplace(key, ref);
  return ref;
}

ExprRef ExprPool::constant(std::uint64_t value, std::uint8_t width) {
  return intern(NodeKey{Op::kConst, width, kNullExpr, kNullExpr, mask(value, width)});
}

ExprRef ExprPool::sym_byte(std::uint32_t input_index) {
  return intern(NodeKey{Op::kSym, 8, kNullExpr, kNullExpr, input_index});
}

std::uint64_t ExprPool::fold_binary(Op op, std::uint64_t a, std::uint64_t b,
                                    std::uint8_t width) const noexcept {
  switch (op) {
    case Op::kAdd: return mask(a + b, width);
    case Op::kSub: return mask(a - b, width);
    case Op::kMul: return mask(a * b, width);
    case Op::kUDiv: return b == 0 ? mask(~std::uint64_t{0}, width) : mask(a / b, width);
    case Op::kURem: return b == 0 ? a : mask(a % b, width);
    case Op::kAnd: return a & b;
    case Op::kOr: return a | b;
    case Op::kXor: return a ^ b;
    case Op::kShl: return b >= width ? 0 : mask(a << b, width);
    case Op::kLshr: return b >= width ? 0 : (a >> b);
    case Op::kEq: return a == b ? 1 : 0;
    case Op::kNe: return a != b ? 1 : 0;
    case Op::kUlt: return a < b ? 1 : 0;
    case Op::kUle: return a <= b ? 1 : 0;
    case Op::kBoolAnd: return (a != 0 && b != 0) ? 1 : 0;
    case Op::kBoolOr: return (a != 0 || b != 0) ? 1 : 0;
    default: return 0;
  }
}

ExprRef ExprPool::binary(Op op, ExprRef a, ExprRef b) {
  assert(a != kNullExpr && b != kNullExpr);
  const std::uint8_t wa = nodes_[a].width;
  std::uint8_t width = wa;
  switch (op) {
    case Op::kEq:
    case Op::kNe:
    case Op::kUlt:
    case Op::kUle:
    case Op::kBoolAnd:
    case Op::kBoolOr:
      width = 1;
      break;
    default:
      break;
  }
  if (is_const(a) && is_const(b)) {
    return constant(fold_binary(op, nodes_[a].value, nodes_[b].value, wa), width);
  }
  // Light algebraic simplifications keep path conditions compact.
  if (is_const(b) && nodes_[b].value == 0 &&
      (op == Op::kAdd || op == Op::kSub || op == Op::kOr || op == Op::kXor ||
       op == Op::kShl || op == Op::kLshr)) {
    return a;
  }
  if (is_const(a) && nodes_[a].value == 0 && (op == Op::kAdd || op == Op::kOr)) return b;
  if (op == Op::kBoolAnd) {
    if (is_const(a)) return nodes_[a].value != 0 ? b : constant(0, 1);
    if (is_const(b)) return nodes_[b].value != 0 ? a : constant(0, 1);
  }
  if (op == Op::kBoolOr) {
    if (is_const(a)) return nodes_[a].value != 0 ? constant(1, 1) : b;
    if (is_const(b)) return nodes_[b].value != 0 ? constant(1, 1) : a;
  }
  return intern(NodeKey{op, width, a, b, 0});
}

ExprRef ExprPool::zext(ExprRef a, std::uint8_t width) {
  assert(a != kNullExpr);
  const ExprNode& na = nodes_[a];
  if (na.width == width) return a;
  assert(na.width < width);
  if (na.op == Op::kConst) return constant(na.value, width);
  return intern(NodeKey{Op::kZext, width, a, kNullExpr, 0});
}

ExprRef ExprPool::trunc(ExprRef a, std::uint8_t width) {
  assert(a != kNullExpr);
  const ExprNode& na = nodes_[a];
  if (na.width == width) return a;
  assert(na.width > width);
  if (na.op == Op::kConst) return constant(na.value, width);
  return intern(NodeKey{Op::kTrunc, width, a, kNullExpr, 0});
}

ExprRef ExprPool::concat(ExprRef high, ExprRef low) {
  assert(high != kNullExpr && low != kNullExpr);
  const ExprNode& nh = nodes_[high];
  const ExprNode& nl = nodes_[low];
  const std::uint8_t width = static_cast<std::uint8_t>(nh.width + nl.width);
  assert(width <= 64);
  if (nh.op == Op::kConst && nl.op == Op::kConst) {
    return constant((nh.value << nl.width) | nl.value, width);
  }
  return intern(NodeKey{Op::kConcat, width, high, low, 0});
}

ExprRef ExprPool::extract(ExprRef a, std::uint8_t bit_offset, std::uint8_t width) {
  assert(a != kNullExpr);
  const ExprNode& na = nodes_[a];
  assert(bit_offset + width <= na.width);
  if (bit_offset == 0 && width == na.width) return a;
  if (na.op == Op::kConst) return constant(na.value >> bit_offset, width);
  return intern(NodeKey{Op::kExtract, width, a, kNullExpr, bit_offset});
}

ExprRef ExprPool::bool_not(ExprRef a) {
  assert(a != kNullExpr);
  const ExprNode& na = nodes_[a];
  assert(na.width == 1);
  if (na.op == Op::kConst) return constant(na.value != 0 ? 0 : 1, 1);
  if (na.op == Op::kBoolNot) return na.a;  // double negation
  // Push negation through comparisons for solver-friendlier forms.
  switch (na.op) {
    case Op::kEq: return binary(Op::kNe, na.a, na.b);
    case Op::kNe: return binary(Op::kEq, na.a, na.b);
    case Op::kUlt: return binary(Op::kUle, na.b, na.a);
    case Op::kUle: return binary(Op::kUlt, na.b, na.a);
    default: break;
  }
  return intern(NodeKey{Op::kBoolNot, 1, a, kNullExpr, 0});
}

ExprRef ExprPool::ite(ExprRef cond, ExprRef then_e, ExprRef else_e) {
  assert(cond != kNullExpr && then_e != kNullExpr && else_e != kNullExpr);
  const ExprNode& nc = nodes_[cond];
  assert(nc.width == 1);
  if (nc.op == Op::kConst) return nc.value != 0 ? then_e : else_e;
  if (then_e == else_e) return then_e;
  return intern(NodeKey{Op::kIte, nodes_[then_e].width, cond, then_e, else_e});
}

std::uint64_t ExprPool::eval(ExprRef ref, std::span<const std::uint8_t> input) const {
  assert(ref != kNullExpr && ref < nodes_.size());
  // Per-call memo: epoch-tagged cache avoids clearing between evaluations.
  if (eval_cache_.size() < nodes_.size()) {
    eval_cache_.resize(nodes_.size(), 0);
    eval_epoch_.resize(nodes_.size(), 0);
  }
  ++epoch_;
  // Iterative post-order to avoid deep recursion on long concat chains.
  std::vector<ExprRef> stack{ref};
  while (!stack.empty()) {
    const ExprRef cur = stack.back();
    if (eval_epoch_[cur] == epoch_) {
      stack.pop_back();
      continue;
    }
    const ExprNode& n = nodes_[cur];
    const ExprRef ca = n.a;
    const ExprRef cb = n.b;
    const ExprRef cc = (n.op == Op::kIte) ? static_cast<ExprRef>(n.value) : kNullExpr;
    bool ready = true;
    for (ExprRef child : {ca, cb, cc}) {
      if (child != kNullExpr && eval_epoch_[child] != epoch_) {
        stack.push_back(child);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    std::uint64_t value = 0;
    switch (n.op) {
      case Op::kConst: value = n.value; break;
      case Op::kSym:
        value = n.value < input.size() ? input[static_cast<std::size_t>(n.value)] : 0;
        break;
      case Op::kZext: value = eval_cache_[ca]; break;
      case Op::kTrunc: value = mask(eval_cache_[ca], n.width); break;
      case Op::kConcat:
        value = mask((eval_cache_[ca] << nodes_[cb].width) | eval_cache_[cb], n.width);
        break;
      case Op::kExtract: value = mask(eval_cache_[ca] >> n.value, n.width); break;
      case Op::kBoolNot: value = eval_cache_[ca] != 0 ? 0 : 1; break;
      case Op::kIte:
        value = eval_cache_[ca] != 0 ? eval_cache_[cb] : eval_cache_[cc];
        break;
      default:
        value = fold_binary(n.op, eval_cache_[ca], eval_cache_[cb], nodes_[ca].width);
        break;
    }
    eval_cache_[cur] = value;
    eval_epoch_[cur] = epoch_;
  }
  return eval_cache_[ref];
}

void ExprPool::collect_syms(ExprRef ref, std::unordered_set<std::uint32_t>& out) const {
  if (ref == kNullExpr) return;
  std::vector<ExprRef> stack{ref};
  std::unordered_set<ExprRef> seen;
  while (!stack.empty()) {
    const ExprRef cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    const ExprNode& n = nodes_[cur];
    if (n.op == Op::kSym) {
      out.insert(static_cast<std::uint32_t>(n.value));
      continue;
    }
    if (n.a != kNullExpr) stack.push_back(n.a);
    if (n.b != kNullExpr) stack.push_back(n.b);
    if (n.op == Op::kIte) stack.push_back(static_cast<ExprRef>(n.value));
  }
}

std::string ExprPool::to_string(ExprRef ref) const {
  if (ref == kNullExpr) return "<null>";
  const ExprNode& n = nodes_[ref];
  switch (n.op) {
    case Op::kConst: return util::format("%llu:w%u", static_cast<unsigned long long>(n.value), n.width);
    case Op::kSym: return util::format("in[%llu]", static_cast<unsigned long long>(n.value));
    case Op::kZext:
    case Op::kTrunc:
      return std::string(op_name(n.op)) + "(" + to_string(n.a) +
             util::format(", w%u)", n.width);
    case Op::kExtract:
      return util::format("extract(%s, off=%llu, w%u)", to_string(n.a).c_str(),
                          static_cast<unsigned long long>(n.value), n.width);
    case Op::kBoolNot: return "!(" + to_string(n.a) + ")";
    case Op::kIte:
      return "ite(" + to_string(n.a) + ", " + to_string(n.b) + ", " +
             to_string(static_cast<ExprRef>(n.value)) + ")";
    default:
      return std::string(op_name(n.op)) + "(" + to_string(n.a) + ", " + to_string(n.b) + ")";
  }
}

}  // namespace dice::concolic
