// Constraint solver for path conditions over symbolic input bytes.
//
// The solver answers: "find an input assignment under which every constraint
// in a conjunction evaluates to its required truth value", starting from a
// hint (the input of the execution whose path is being mutated — concolic
// solving is always a perturbation of a known-good assignment).
//
// Strategy, cheapest first:
//   1. verify the hint (the negated branch may already hold);
//   2. direct inversion for single-byte equalities/inequalities;
//   3. exhaustive enumeration when <=2 input bytes are involved;
//   4. branch-distance-guided stochastic local search (search-based testing
//      style) over the involved bytes, with random restarts.
// Every candidate is verified by concrete evaluation before being returned,
// so the solver is sound by construction (it can only be incomplete).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "concolic/expr.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace dice::concolic {

/// A conjunct: `cond` must evaluate to `require`.
struct Constraint {
  ExprRef cond = kNullExpr;
  bool require = true;
};

struct SolverOptions {
  std::uint32_t max_exhaustive_bytes = 2;  ///< enumerate up to 256^k assignments
  std::uint32_t search_budget = 6000;      ///< local-search candidate evaluations
  std::uint32_t restarts = 4;              ///< random restarts for local search
  std::uint64_t seed = 0x50151ca5;         ///< deterministic search stream
  // Stage toggles (ablation knobs; production keeps all enabled).
  bool enable_inversion = true;
  bool enable_exhaustive = true;
  bool enable_search = true;
};

struct SolverStats {
  std::uint64_t queries = 0;
  std::uint64_t sat = 0;
  std::uint64_t unsat_or_unknown = 0;
  std::uint64_t hint_hits = 0;        ///< solved by the hint itself
  std::uint64_t inversion_hits = 0;   ///< solved by direct inversion
  std::uint64_t exhaustive_hits = 0;  ///< solved by enumeration
  std::uint64_t search_hits = 0;      ///< solved by local search
  std::uint64_t evaluations = 0;      ///< candidate evaluations performed
  std::uint64_t interval_unsat = 0;   ///< proven unsat by interval propagation
  std::uint64_t cache_hits = 0;       ///< answered by the attached SolverMemo
  std::uint64_t cache_stores = 0;     ///< results published to the memo
};

/// Memoization hook for solver queries (implemented by explore::SolverCache).
/// Keys are structural hashes of the constraint conjunction, independent of
/// the ExprPool instance that built the expressions — two clones negating
/// the same branch in different episodes produce the same key. Stored
/// models were concretely verified against exactly those constraints, so a
/// hit is sound for any hint; UNSAT is only stored when proven (interval
/// contradiction or complete enumeration), never for search give-ups.
class SolverMemo {
 public:
  virtual ~SolverMemo() = default;
  /// Returns true when `key` is known; fills `result` (nullopt = proven UNSAT).
  [[nodiscard]] virtual bool lookup(std::uint64_t key, std::optional<util::Bytes>& result) = 0;
  virtual void store(std::uint64_t key, const std::optional<util::Bytes>& result) = 0;
};

/// Structural (pool-independent) hash of a constraint conjunction — the
/// SolverMemo key. Exposed for cache tests and external key computation.
[[nodiscard]] std::uint64_t constraints_key(const ExprPool& pool,
                                            std::span<const Constraint> constraints);

/// Per-byte feasible interval derived from single-byte comparisons against
/// constants. Each derived interval is a *necessary* condition of the
/// conjunction, so an empty intersection proves unsatisfiability outright,
/// and exhaustive enumeration can restrict itself to [lo, hi].
struct ByteInterval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 255;
  [[nodiscard]] bool empty() const noexcept { return lo > hi; }
};

class Solver {
 public:
  explicit Solver(SolverOptions options = {}) : options_(options), rng_(options.seed) {}

  /// Finds an assignment satisfying all constraints, or nullopt. Without a
  /// memo the result always has the same size as `hint`; with one attached,
  /// a hit may return a verified model cached from a different hint (and so
  /// of a different length).
  [[nodiscard]] std::optional<util::Bytes> solve(const ExprPool& pool,
                                                 std::span<const Constraint> constraints,
                                                 const util::Bytes& hint);

  /// Attaches (or detaches, with nullptr) a query memo. Not owned.
  void set_memo(SolverMemo* memo) noexcept { memo_ = memo; }

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = SolverStats{}; }

 private:
  /// The uncached pipeline. `definitive` is set when a nullopt result is a
  /// proof of unsatisfiability (safe to memoize) rather than a give-up.
  [[nodiscard]] std::optional<util::Bytes> solve_impl(const ExprPool& pool,
                                                      std::span<const Constraint> constraints,
                                                      const util::Bytes& hint,
                                                      bool& definitive);
  [[nodiscard]] bool satisfied(const ExprPool& pool, std::span<const Constraint> constraints,
                               const util::Bytes& candidate);
  /// Branch distance of one constraint: 0 iff satisfied; smaller is closer.
  [[nodiscard]] double distance(const ExprPool& pool, const Constraint& c,
                                const util::Bytes& candidate);
  [[nodiscard]] double total_distance(const ExprPool& pool,
                                      std::span<const Constraint> constraints,
                                      const util::Bytes& candidate);
  [[nodiscard]] std::optional<util::Bytes> try_inversion(const ExprPool& pool,
                                                         std::span<const Constraint> constraints,
                                                         const util::Bytes& hint);
  [[nodiscard]] std::optional<util::Bytes> try_exhaustive(
      const ExprPool& pool, std::span<const Constraint> constraints, const util::Bytes& hint,
      const std::vector<std::uint32_t>& involved);
  [[nodiscard]] std::optional<util::Bytes> try_search(const ExprPool& pool,
                                                      std::span<const Constraint> constraints,
                                                      const util::Bytes& hint,
                                                      const std::vector<std::uint32_t>& involved);
  /// Derives per-byte intervals from single-byte constraints; returns
  /// false when some byte's interval is empty (conjunction unsat).
  [[nodiscard]] bool propagate_intervals(
      const ExprPool& pool, std::span<const Constraint> constraints,
      std::unordered_map<std::uint32_t, ByteInterval>& intervals) const;

  SolverOptions options_;
  util::Rng rng_;
  SolverStats stats_;
  SolverMemo* memo_ = nullptr;
};

}  // namespace dice::concolic
