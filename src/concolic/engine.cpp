#include "concolic/engine.hpp"

#include <utility>

#include "util/hash.hpp"
#include "util/log.hpp"

namespace dice::concolic {

namespace {

const util::Logger& logger() {
  static util::Logger instance("concolic.engine");
  return instance;
}

[[nodiscard]] std::uint64_t branch_key(BranchSite site, bool taken) noexcept {
  return util::hash_finalize((static_cast<std::uint64_t>(site) << 1) | (taken ? 1 : 0));
}

}  // namespace

std::uint64_t PathCondition::signature() const noexcept {
  std::uint64_t h = util::kFnvOffset;
  for (const BranchRecord& r : records_) {
    h = util::hash_mix(h, r.site);
    h = util::hash_mix(h, r.taken ? 1 : 0);
  }
  return util::hash_finalize(h);
}

ConcolicEngine::ConcolicEngine(Target target, EngineOptions options)
    : target_(std::move(target)), options_(options), solver_(options.solver) {}

void ConcolicEngine::add_seed(util::Bytes seed) {
  if (!remember_input(seed)) return;
  queue_.push(WorkItem{std::move(seed), 0, /*score=*/~std::uint64_t{0}, sequence_++});
}

bool ConcolicEngine::remember_input(const util::Bytes& input) {
  return seen_inputs_.insert(util::fnv1a(input)).second;
}

void ConcolicEngine::execute_one(const util::Bytes& input, RunResult& result) {
  SymCtx ctx(input);
  {
    SymScope scope(ctx);
    try {
      target_(ctx);
    } catch (const CrashSignal& signal) {
      ctx.flag_crash(signal.what);
    }
  }
  ++result.stats.executions;
  if (seen_paths_.insert(ctx.path().signature()).second) {
    ++result.stats.unique_paths;
  }
  for (const BranchRecord& r : ctx.path().records()) {
    if (seen_branches_.insert(branch_key(r.site, r.taken)).second) {
      ++result.stats.branch_points;
    }
  }
  if (ctx.crashed()) {
    const std::uint64_t sig =
        util::hash_mix(ctx.path().signature(), util::fnv1a(ctx.crash_reason()));
    if (seen_crash_sigs_.insert(sig).second) {
      ++result.stats.crashes;
      result.crashes.push_back(CrashInfo{ctx.crash_reason(), input, ctx.path().signature()});
      logger().debug() << "crash found: " << ctx.crash_reason()
                       << " input=" << util::to_hex(input);
    }
  }
  result.corpus.push_back(input);
  if (observer_) observer_(ctx, input);
}

void ConcolicEngine::expand(const SymCtx& ctx, const WorkItem& item, RunResult& result) {
  const auto& records = ctx.path().records();
  const std::size_t limit =
      std::min<std::size_t>(records.size(), options_.max_branches_per_exec);

  std::vector<Constraint> prefix;
  prefix.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    if (result.stats.generated >= options_.max_generated_inputs) break;
    if (i >= item.bound) {
      // Keep prefix [0, i) as-is and require the opposite direction at i.
      prefix.push_back(Constraint{records[i].cond, !records[i].taken});
      auto solved = solver_.solve(ctx.pool(), prefix, item.input);
      if (solved && remember_input(*solved)) {
        ++result.stats.generated;
        const bool new_branch =
            !seen_branches_.contains(branch_key(records[i].site, !records[i].taken));
        // New-coverage children explore first; deeper flips break ties.
        const std::uint64_t score = (new_branch ? (1ULL << 32) : 0) + i;
        const std::uint32_t child_bound =
            options_.generational ? static_cast<std::uint32_t>(i + 1) : 0;
        queue_.push(WorkItem{std::move(*solved), child_bound, score, sequence_++});
      }
      prefix.pop_back();
    }
    prefix.push_back(Constraint{records[i].cond, records[i].taken});
  }
}

RunResult ConcolicEngine::run(std::uint32_t max_executions) {
  const std::uint32_t saved = options_.max_executions;
  options_.max_executions = max_executions;
  RunResult result = run();
  options_.max_executions = saved;
  return result;
}

RunResult ConcolicEngine::run() {
  RunResult result;
  while (!queue_.empty() && result.stats.executions < options_.max_executions) {
    WorkItem item = queue_.top();
    queue_.pop();

    SymCtx ctx(item.input);
    {
      SymScope scope(ctx);
      try {
        target_(ctx);
      } catch (const CrashSignal& signal) {
        ctx.flag_crash(signal.what);
      }
    }
    ++result.stats.executions;
    if (seen_paths_.insert(ctx.path().signature()).second) ++result.stats.unique_paths;
    for (const BranchRecord& r : ctx.path().records()) {
      if (seen_branches_.insert(branch_key(r.site, r.taken)).second) {
        ++result.stats.branch_points;
      }
    }
    if (ctx.crashed()) {
      const std::uint64_t sig =
          util::hash_mix(ctx.path().signature(), util::fnv1a(ctx.crash_reason()));
      if (seen_crash_sigs_.insert(sig).second) {
        ++result.stats.crashes;
        result.crashes.push_back(
            CrashInfo{ctx.crash_reason(), item.input, ctx.path().signature()});
        logger().debug() << "crash found: " << ctx.crash_reason();
      }
      if (options_.stop_on_first_crash) {
        result.corpus.push_back(std::move(item.input));
        break;
      }
    }
    result.corpus.push_back(item.input);
    if (observer_) observer_(ctx, item.input);

    expand(ctx, item, result);
  }
  result.stats.solver = solver_.stats();
  return result;
}

}  // namespace dice::concolic
