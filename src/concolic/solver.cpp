#include "concolic/solver.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.hpp"

namespace dice::concolic {

namespace {

/// Values that frequently flip branch predicates (boundary values).
constexpr std::uint8_t kInterestingBytes[] = {0, 1, 2, 4, 7, 8, 15, 16, 24, 31, 32,
                                              63, 64, 100, 127, 128, 192, 200, 254, 255};

/// Recognizes a (possibly zero-extended/truncated) bare input byte.
[[nodiscard]] std::optional<std::uint32_t> as_bare_sym_byte(const ExprPool& pool,
                                                            ExprRef ref) {
  const ExprNode* cur = &pool.node(ref);
  while (cur->op == Op::kZext || cur->op == Op::kTrunc) cur = &pool.node(cur->a);
  if (cur->op == Op::kSym) return static_cast<std::uint32_t>(cur->value);
  return std::nullopt;
}

[[nodiscard]] std::optional<std::uint64_t> as_constant(const ExprPool& pool, ExprRef ref) {
  const ExprNode& node = pool.node(ref);
  if (node.op == Op::kConst) return node.value;
  return std::nullopt;
}

/// Pool-independent structural hash of an expression DAG. `memo` collapses
/// shared subtrees so the walk is linear in distinct nodes.
std::uint64_t structural_hash(const ExprPool& pool, ExprRef ref,
                              std::unordered_map<ExprRef, std::uint64_t>& memo) {
  if (ref == kNullExpr) return 0x9e3779b97f4a7c15ULL;
  if (auto it = memo.find(ref); it != memo.end()) return it->second;
  const ExprNode& node = pool.node(ref);
  std::uint64_t h = util::hash_mix(util::kFnvOffset, static_cast<std::uint64_t>(node.op));
  h = util::hash_mix(h, node.width);
  // `value` is semantic for constants, input-byte leaves and extract
  // offsets; for kIte it is a third child reference and must be hashed
  // structurally; for everything else it is unused.
  if (node.op == Op::kConst || node.op == Op::kSym || node.op == Op::kExtract) {
    h = util::hash_mix(h, node.value);
  }
  h = util::hash_mix(h, structural_hash(pool, node.a, memo));
  h = util::hash_mix(h, structural_hash(pool, node.b, memo));
  if (node.op == Op::kIte) {
    h = util::hash_mix(h, structural_hash(pool, static_cast<ExprRef>(node.value), memo));
  }
  memo.emplace(ref, h);
  return h;
}

}  // namespace

std::uint64_t constraints_key(const ExprPool& pool, std::span<const Constraint> constraints) {
  std::unordered_map<ExprRef, std::uint64_t> memo;
  std::uint64_t h = util::kFnvOffset;
  for (const Constraint& c : constraints) {
    h = util::hash_mix(h, structural_hash(pool, c.cond, memo));
    h = util::hash_mix(h, c.require ? 1 : 0);
  }
  return util::hash_finalize(h);
}

bool Solver::propagate_intervals(
    const ExprPool& pool, std::span<const Constraint> constraints,
    std::unordered_map<std::uint32_t, ByteInterval>& intervals) const {
  const auto narrow_lo = [&](std::uint32_t byte, std::uint32_t lo) {
    ByteInterval& iv = intervals[byte];
    iv.lo = std::max(iv.lo, lo);
    return !iv.empty();
  };
  const auto narrow_hi = [&](std::uint32_t byte, std::uint32_t hi) {
    ByteInterval& iv = intervals[byte];
    iv.hi = std::min(iv.hi, hi);
    return !iv.empty();
  };

  for (const Constraint& c : constraints) {
    const ExprNode& node = pool.node(c.cond);
    if (node.op != Op::kEq && node.op != Op::kNe && node.op != Op::kUlt &&
        node.op != Op::kUle) {
      continue;  // only flat comparisons feed the interval domain
    }
    // Normalize to (sym CMP const) or (const CMP sym).
    auto sym_lhs = as_bare_sym_byte(pool, node.a);
    auto cst_rhs = as_constant(pool, node.b);
    auto cst_lhs = as_constant(pool, node.a);
    auto sym_rhs = as_bare_sym_byte(pool, node.b);

    if (sym_lhs && cst_rhs) {
      const std::uint32_t byte = *sym_lhs;
      const std::uint64_t k = *cst_rhs;
      switch (node.op) {
        case Op::kEq:
          if (c.require) {
            if (k > 0xff) return false;  // byte can never equal k
            if (!narrow_lo(byte, static_cast<std::uint32_t>(k)) ||
                !narrow_hi(byte, static_cast<std::uint32_t>(k))) {
              return false;
            }
          }
          // !require (x != k): not representable as one interval; skip.
          break;
        case Op::kNe:
          if (!c.require) {  // x == k required
            if (k > 0xff) return false;
            if (!narrow_lo(byte, static_cast<std::uint32_t>(k)) ||
                !narrow_hi(byte, static_cast<std::uint32_t>(k))) {
              return false;
            }
          }
          break;
        case Op::kUlt:  // x < k
          if (c.require) {
            if (k == 0) return false;
            if (!narrow_hi(byte, static_cast<std::uint32_t>(std::min<std::uint64_t>(k, 256) - 1))) {
              return false;
            }
          } else {  // x >= k
            if (k > 0xff) return false;
            if (!narrow_lo(byte, static_cast<std::uint32_t>(k))) return false;
          }
          break;
        case Op::kUle:  // x <= k
          if (c.require) {
            if (!narrow_hi(byte, static_cast<std::uint32_t>(std::min<std::uint64_t>(k, 255)))) {
              return false;
            }
          } else {  // x > k
            if (k >= 0xff) return false;
            if (!narrow_lo(byte, static_cast<std::uint32_t>(k + 1))) return false;
          }
          break;
        default:
          break;
      }
    } else if (cst_lhs && sym_rhs) {
      const std::uint32_t byte = *sym_rhs;
      const std::uint64_t k = *cst_lhs;
      switch (node.op) {
        case Op::kEq:
          if (c.require) {
            if (k > 0xff) return false;
            if (!narrow_lo(byte, static_cast<std::uint32_t>(k)) ||
                !narrow_hi(byte, static_cast<std::uint32_t>(k))) {
              return false;
            }
          }
          break;
        case Op::kNe:
          if (!c.require) {
            if (k > 0xff) return false;
            if (!narrow_lo(byte, static_cast<std::uint32_t>(k)) ||
                !narrow_hi(byte, static_cast<std::uint32_t>(k))) {
              return false;
            }
          }
          break;
        case Op::kUlt:  // k < x
          if (c.require) {
            if (k >= 0xff) return false;
            if (!narrow_lo(byte, static_cast<std::uint32_t>(k + 1))) return false;
          } else {  // k >= x, i.e. x <= k
            if (!narrow_hi(byte, static_cast<std::uint32_t>(std::min<std::uint64_t>(k, 255)))) {
              return false;
            }
          }
          break;
        case Op::kUle:  // k <= x
          if (c.require) {
            if (k > 0xff) return false;
            if (!narrow_lo(byte, static_cast<std::uint32_t>(k))) return false;
          } else {  // k > x, i.e. x < k
            if (k == 0) return false;
            if (!narrow_hi(byte, static_cast<std::uint32_t>(std::min<std::uint64_t>(k, 256) - 1))) {
              return false;
            }
          }
          break;
        default:
          break;
      }
    }
  }
  return true;
}

std::optional<util::Bytes> Solver::solve(const ExprPool& pool,
                                         std::span<const Constraint> constraints,
                                         const util::Bytes& hint) {
  ++stats_.queries;
  if (memo_ == nullptr) {
    bool definitive = false;
    return solve_impl(pool, constraints, hint, definitive);
  }
  const std::uint64_t key = constraints_key(pool, constraints);
  std::optional<util::Bytes> cached;
  if (memo_->lookup(key, cached)) {
    ++stats_.cache_hits;
    if (cached) {
      ++stats_.sat;
    } else {
      ++stats_.unsat_or_unknown;
    }
    return cached;
  }
  bool definitive = false;
  std::optional<util::Bytes> result = solve_impl(pool, constraints, hint, definitive);
  if (result || definitive) {
    memo_->store(key, result);
    ++stats_.cache_stores;
  }
  return result;
}

std::optional<util::Bytes> Solver::solve_impl(const ExprPool& pool,
                                              std::span<const Constraint> constraints,
                                              const util::Bytes& hint, bool& definitive) {
  definitive = false;

  if (satisfied(pool, constraints, hint)) {
    ++stats_.sat;
    ++stats_.hint_hits;
    return hint;
  }

  if (options_.enable_inversion) {
    if (auto direct = try_inversion(pool, constraints, hint)) {
      ++stats_.sat;
      ++stats_.inversion_hits;
      return direct;
    }
  }

  // Determine which input bytes the *unsatisfied* constraints depend on;
  // only those need to change (the rest already satisfy their conjuncts,
  // though mutations may break them — full verification guards that).
  std::unordered_set<std::uint32_t> involved_set;
  for (const Constraint& c : constraints) {
    const bool holds = (pool.eval(c.cond, hint) != 0) == c.require;
    ++stats_.evaluations;
    if (!holds) pool.collect_syms(c.cond, involved_set);
  }
  std::vector<std::uint32_t> involved(involved_set.begin(), involved_set.end());
  std::sort(involved.begin(), involved.end());
  // Bytes beyond the hint length read as zero and cannot be assigned. A
  // longer hint could still reach them, so length-truncated failures are
  // never definitive (memoizable) UNSAT proofs.
  const std::size_t involved_before_truncation = involved.size();
  std::erase_if(involved, [&](std::uint32_t i) { return i >= hint.size(); });
  const bool truncated = involved.size() != involved_before_truncation;
  if (involved.empty()) {
    ++stats_.unsat_or_unknown;
    return std::nullopt;
  }

  // Interval pre-pass: each derived bound is a necessary condition, so an
  // empty intersection proves the conjunction unsatisfiable without any
  // candidate evaluation — for every assignment, of any length.
  std::unordered_map<std::uint32_t, ByteInterval> intervals;
  if (!propagate_intervals(pool, constraints, intervals)) {
    ++stats_.interval_unsat;
    ++stats_.unsat_or_unknown;
    definitive = true;
    return std::nullopt;
  }

  if (options_.enable_exhaustive && involved.size() <= options_.max_exhaustive_bytes) {
    if (auto found = try_exhaustive(pool, constraints, hint, involved)) {
      ++stats_.sat;
      ++stats_.exhaustive_hits;
      return found;
    }
    ++stats_.unsat_or_unknown;
    // Enumeration varied only the failing constraints' bytes, pinning every
    // other byte to this hint's value. That is a proof of unsatisfiability
    // (memoizable across hints) only when the *whole* conjunction depends
    // on nothing but the enumerated bytes — a currently-satisfied
    // constraint over an un-enumerated byte could flip under a different
    // assignment and open a solution this enumeration never visited.
    if (!truncated) {
      std::unordered_set<std::uint32_t> all_syms;
      for (const Constraint& c : constraints) pool.collect_syms(c.cond, all_syms);
      const auto enumerated = [&](std::uint32_t sym) {
        return std::binary_search(involved.begin(), involved.end(), sym);
      };
      definitive = std::all_of(all_syms.begin(), all_syms.end(), enumerated);
    }
    return std::nullopt;
  }

  if (options_.enable_search) {
    if (auto found = try_search(pool, constraints, hint, involved)) {
      ++stats_.sat;
      ++stats_.search_hits;
      return found;
    }
  }
  ++stats_.unsat_or_unknown;
  return std::nullopt;
}

bool Solver::satisfied(const ExprPool& pool, std::span<const Constraint> constraints,
                       const util::Bytes& candidate) {
  for (const Constraint& c : constraints) {
    ++stats_.evaluations;
    if ((pool.eval(c.cond, candidate) != 0) != c.require) return false;
  }
  return true;
}

double Solver::distance(const ExprPool& pool, const Constraint& c,
                        const util::Bytes& candidate) {
  ++stats_.evaluations;
  const ExprNode& n = pool.node(c.cond);
  const auto eval_children = [&]() -> std::pair<std::uint64_t, std::uint64_t> {
    return {pool.eval(n.a, candidate), pool.eval(n.b, candidate)};
  };
  // Classic branch-distance metric from search-based software testing.
  switch (n.op) {
    case Op::kEq: {
      const auto [a, b] = eval_children();
      const double diff = a > b ? static_cast<double>(a - b) : static_cast<double>(b - a);
      return c.require ? diff : (a == b ? 1.0 : 0.0);
    }
    case Op::kNe: {
      const auto [a, b] = eval_children();
      const double diff = a > b ? static_cast<double>(a - b) : static_cast<double>(b - a);
      return c.require ? (a != b ? 0.0 : 1.0) : diff;
    }
    case Op::kUlt: {
      const auto [a, b] = eval_children();
      if (c.require) return a < b ? 0.0 : static_cast<double>(a - b) + 1.0;
      return a >= b ? 0.0 : static_cast<double>(b - a);
    }
    case Op::kUle: {
      const auto [a, b] = eval_children();
      if (c.require) return a <= b ? 0.0 : static_cast<double>(a - b);
      return a > b ? 0.0 : static_cast<double>(b - a) + 1.0;
    }
    case Op::kBoolAnd: {
      const Constraint ca{n.a, true};
      const Constraint cb{n.b, true};
      if (c.require) return distance(pool, ca, candidate) + distance(pool, cb, candidate);
      return std::min(distance(pool, Constraint{n.a, false}, candidate),
                      distance(pool, Constraint{n.b, false}, candidate));
    }
    case Op::kBoolOr: {
      if (c.require) {
        return std::min(distance(pool, Constraint{n.a, true}, candidate),
                        distance(pool, Constraint{n.b, true}, candidate));
      }
      return distance(pool, Constraint{n.a, false}, candidate) +
             distance(pool, Constraint{n.b, false}, candidate);
    }
    case Op::kBoolNot:
      return distance(pool, Constraint{n.a, !c.require}, candidate);
    default: {
      const bool holds = (pool.eval(c.cond, candidate) != 0) == c.require;
      return holds ? 0.0 : 1.0;
    }
  }
}

double Solver::total_distance(const ExprPool& pool, std::span<const Constraint> constraints,
                              const util::Bytes& candidate) {
  double total = 0.0;
  for (const Constraint& c : constraints) {
    // log1p keeps one huge conjunct from drowning progress on the others.
    total += std::log1p(distance(pool, c, candidate));
  }
  return total;
}

std::optional<util::Bytes> Solver::try_inversion(const ExprPool& pool,
                                                 std::span<const Constraint> constraints,
                                                 const util::Bytes& hint) {
  // Fast path: exactly one failing constraint of shape byte-expr ⊕ const
  // where the byte expression is a bare (possibly zero-extended) input byte.
  const Constraint* failing = nullptr;
  for (const Constraint& c : constraints) {
    ++stats_.evaluations;
    if ((pool.eval(c.cond, hint) != 0) != c.require) {
      if (failing != nullptr) return std::nullopt;  // more than one failing
      failing = &c;
    }
  }
  if (failing == nullptr) return std::nullopt;

  const ExprNode& n = pool.node(failing->cond);
  if (n.op != Op::kEq && n.op != Op::kNe) return std::nullopt;

  const auto as_bare_sym = [&](ExprRef ref) -> std::optional<std::uint32_t> {
    const ExprNode* cur = &pool.node(ref);
    while (cur->op == Op::kZext || cur->op == Op::kTrunc) cur = &pool.node(cur->a);
    if (cur->op == Op::kSym) return static_cast<std::uint32_t>(cur->value);
    return std::nullopt;
  };
  const auto as_const = [&](ExprRef ref) -> std::optional<std::uint64_t> {
    const ExprNode& cn = pool.node(ref);
    if (cn.op == Op::kConst) return cn.value;
    return std::nullopt;
  };

  std::optional<std::uint32_t> sym = as_bare_sym(n.a);
  std::optional<std::uint64_t> cst = as_const(n.b);
  if (!sym || !cst) {
    sym = as_bare_sym(n.b);
    cst = as_const(n.a);
  }
  if (!sym || !cst || *sym >= hint.size() || *cst > 0xff) return std::nullopt;

  util::Bytes candidate = hint;
  const bool want_equal = (n.op == Op::kEq) == failing->require;
  if (want_equal) {
    candidate[*sym] = static_cast<std::uint8_t>(*cst);
  } else {
    candidate[*sym] = static_cast<std::uint8_t>((*cst + 1) & 0xff);
  }
  if (satisfied(pool, constraints, candidate)) return candidate;
  return std::nullopt;
}

std::optional<util::Bytes> Solver::try_exhaustive(const ExprPool& pool,
                                                  std::span<const Constraint> constraints,
                                                  const util::Bytes& hint,
                                                  const std::vector<std::uint32_t>& involved) {
  util::Bytes candidate = hint;
  if (involved.size() == 1) {
    const std::uint32_t i = involved[0];
    // Enumerate only the interval-feasible range for this byte.
    std::unordered_map<std::uint32_t, ByteInterval> intervals;
    ByteInterval range;
    if (propagate_intervals(pool, constraints, intervals)) {
      if (auto it = intervals.find(i); it != intervals.end()) range = it->second;
    }
    for (std::uint32_t v = range.lo; v <= range.hi; ++v) {
      candidate[i] = static_cast<std::uint8_t>(v);
      if (satisfied(pool, constraints, candidate)) return candidate;
    }
    return std::nullopt;
  }
  // Two bytes: iterate boundary-biased order first, then the full square.
  const std::uint32_t i = involved[0];
  const std::uint32_t j = involved[1];
  for (std::uint8_t vi : kInterestingBytes) {
    for (std::uint8_t vj : kInterestingBytes) {
      candidate[i] = vi;
      candidate[j] = vj;
      if (satisfied(pool, constraints, candidate)) return candidate;
    }
  }
  for (int vi = 0; vi <= 0xff; ++vi) {
    for (int vj = 0; vj <= 0xff; ++vj) {
      candidate[i] = static_cast<std::uint8_t>(vi);
      candidate[j] = static_cast<std::uint8_t>(vj);
      if (satisfied(pool, constraints, candidate)) return candidate;
    }
  }
  return std::nullopt;
}

std::optional<util::Bytes> Solver::try_search(const ExprPool& pool,
                                              std::span<const Constraint> constraints,
                                              const util::Bytes& hint,
                                              const std::vector<std::uint32_t>& involved) {
  const std::uint32_t per_restart = options_.search_budget / std::max(1U, options_.restarts);
  for (std::uint32_t restart = 0; restart < options_.restarts; ++restart) {
    util::Bytes current = hint;
    if (restart > 0) {
      // Later restarts scramble the involved bytes to escape local minima.
      for (std::uint32_t i : involved) current[i] = rng_.byte();
    }
    double best = total_distance(pool, constraints, current);
    if (best == 0.0 && satisfied(pool, constraints, current)) return current;

    for (std::uint32_t step = 0; step < per_restart; ++step) {
      util::Bytes candidate = current;
      const std::uint32_t idx = involved[rng_.below(involved.size())];
      switch (rng_.below(4)) {
        case 0:
          candidate[idx] = kInterestingBytes[rng_.below(std::size(kInterestingBytes))];
          break;
        case 1:
          candidate[idx] = rng_.byte();
          break;
        case 2: {
          const int delta = static_cast<int>(rng_.range(1, 16)) * (rng_.chance(0.5) ? 1 : -1);
          candidate[idx] = static_cast<std::uint8_t>(candidate[idx] + delta);
          break;
        }
        default: {
          // Occasionally mutate a second byte too (coupled constraints).
          const std::uint32_t idx2 = involved[rng_.below(involved.size())];
          candidate[idx] = rng_.byte();
          candidate[idx2] = rng_.byte();
          break;
        }
      }
      const double d = total_distance(pool, constraints, candidate);
      if (d <= best) {  // accept sideways moves: plateaus are common
        best = d;
        current = std::move(candidate);
        if (best == 0.0 && satisfied(pool, constraints, current)) return current;
      }
    }
  }
  return std::nullopt;
}

}  // namespace dice::concolic
