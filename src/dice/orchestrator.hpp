// The DiCE orchestrator: drives the paper's Figure 2 loop.
//
//   1. choose explorer and trigger snapshot creation      (next_explorer)
//   2. establish consistent shadow snapshot of local node
//      checkpoints                                        (take_snapshot)
//   3-5. explore input k over cloned snapshot k           (run_episode)
//   then: check properties, classify faults.
//
// The live system keeps running throughout; exploration happens in cloned
// Systems that share nothing with it ("operates alongside the deployed
// system but in isolation from it").
#pragma once

#include <chrono>
#include <memory>
#include <unordered_set>

#include "dice/checks.hpp"
#include "dice/inputs.hpp"
#include "dice/report.hpp"
#include "dice/system.hpp"
#include "explore/pool.hpp"

namespace dice::core {

struct DiceOptions {
  std::size_t inputs_per_episode = 32;
  std::size_t clone_event_budget = 200'000;   ///< per-clone quiescence budget
  sim::Time clone_time_budget = 120 * sim::kSecond;
  std::uint32_t oscillation_threshold = 8;
  bool include_baseline_clone = true;  ///< also check a no-input clone
  bool stop_on_first_fault = false;
  /// Worker threads for clone exploration (explore::ExplorePool). 1 keeps
  /// the strictly serial compatibility path (no threads are spawned);
  /// any value produces a bit-identical fault set — clone runs depend only
  /// on their own task, and faults merge through a priority-ordered
  /// FaultLedger that reproduces serial encounter order.
  /// `stop_on_first_fault` forces the serial path (its early-exit contract
  /// is inherently sequential).
  std::size_t parallelism = 1;
  /// Root seed for the per-task RNG streams handed to CloneTasks
  /// (util::Rng::fork(stream_id)). Clone runs draw nothing from them yet
  /// (see explore::CloneTask::rng); the knob exists so future randomized
  /// clone behavior has a deterministic, scheduling-independent source.
  std::uint64_t rng_seed = 0xd1ce5eed;
};

struct EpisodeResult {
  std::uint64_t episode = 0;
  sim::NodeId explorer = sim::kInvalidNode;
  snapshot::SnapshotId snapshot_id = 0;
  std::size_t inputs_subjected = 0;
  std::size_t clones_run = 0;
  std::size_t clones_non_quiescent = 0;
  std::vector<FaultReport> faults;  ///< deduplicated within the episode
  double snapshot_ms = 0.0;         ///< wall-clock stage timings (Fig. 2)
  double clone_ms = 0.0;
  double explore_ms = 0.0;
  double check_ms = 0.0;
};

class Orchestrator {
 public:
  Orchestrator(bgp::SystemBlueprint blueprint, DiceOptions options = {});

  /// Starts the live system and converges it. Returns false when the live
  /// system fails to quiesce (e.g. an active dispute wheel) — exploration
  /// can still proceed from whatever state the budget left behind.
  bool bootstrap(std::size_t max_events = 2'000'000);

  /// Runs one full explore-and-check episode with the given strategy.
  [[nodiscard]] EpisodeResult run_episode(InputStrategy& strategy);

  /// Runs episodes until a fault of `wanted` class is found or `max_episodes`
  /// pass. Returns the number of inputs subjected before first detection
  /// (SIZE_MAX when not found) — the paper's detection-latency metric.
  [[nodiscard]] std::size_t explore_until_fault(InputStrategy& strategy, FaultClass wanted,
                                                std::size_t max_episodes);

  [[nodiscard]] System& live() noexcept { return *live_; }
  [[nodiscard]] const std::vector<FaultReport>& all_faults() const noexcept {
    return all_faults_;
  }
  [[nodiscard]] std::uint64_t episodes_run() const noexcept { return episode_counter_; }
  /// The clone-execution pool, or nullptr on the serial path (parallelism <= 1).
  [[nodiscard]] explore::ExplorePool* pool() noexcept { return pool_.get(); }

  /// Round-robin explorer election (step 1 of Fig. 2). Deterministic so
  /// experiments are reproducible; real deployments can plug any policy.
  [[nodiscard]] sim::NodeId next_explorer();

  /// Runs the full check suite over a (usually cloned) system and returns
  /// classified faults. Exposed for tests and custom harnesses.
  [[nodiscard]] std::vector<FaultReport> check_system(System& system, std::uint64_t episode,
                                                      sim::NodeId explorer,
                                                      const util::Bytes& input,
                                                      bool quiesced) const;

 private:
  bgp::SystemBlueprint blueprint_;
  DiceOptions options_;
  std::unique_ptr<System> live_;
  std::unique_ptr<explore::ExplorePool> pool_;  ///< created when parallelism > 1
  sim::NodeId next_explorer_ = 0;
  std::uint64_t episode_counter_ = 0;
  std::vector<FaultReport> all_faults_;  ///< globally deduplicated
  std::unordered_set<std::uint64_t> known_fault_keys_;
};

}  // namespace dice::core
