// The DiCE orchestrator: drives the paper's Figure 2 loop.
//
//   1. choose explorer and trigger snapshot creation      (next_explorer)
//   2. establish consistent shadow snapshot of local node
//      checkpoints                                        (take_snapshot)
//   3-5. explore input k over cloned snapshot k           (run_episode)
//   then: check properties, classify faults.
//
// The live system keeps running throughout; exploration happens in cloned
// Systems that share nothing with it ("operates alongside the deployed
// system but in isolation from it").
#pragma once

#include <chrono>
#include <memory>
#include <unordered_set>

#include "dice/checks.hpp"
#include "dice/inputs.hpp"
#include "dice/report.hpp"
#include "dice/system.hpp"
#include "explore/control.hpp"
#include "explore/pool.hpp"
#include "obs/trace.hpp"

namespace dice::explore {
class LiveStateCache;
}  // namespace dice::explore

namespace dice::core {

struct DiceOptions {
  std::size_t inputs_per_episode = 32;
  std::size_t clone_event_budget = 200'000;   ///< per-clone quiescence budget
  sim::Time clone_time_budget = 120 * sim::kSecond;
  std::uint32_t oscillation_threshold = 8;
  bool include_baseline_clone = true;  ///< also check a no-input clone
  bool stop_on_first_fault = false;
  /// Worker threads for clone exploration (explore::ExplorePool). 1 keeps
  /// the strictly serial compatibility path (no threads are spawned);
  /// any value produces a bit-identical fault set — clone runs depend only
  /// on their own task, and faults merge through a priority-ordered
  /// FaultLedger that reproduces serial encounter order.
  /// `stop_on_first_fault` forces the serial path (its early-exit contract
  /// is inherently sequential). Ignored when `shared_pool` is set.
  std::size_t parallelism = 1;
  /// The GLOBAL worker budget: an externally-owned pool to run clone
  /// batches on instead of a private `parallelism`-sized pool. When the
  /// episode runs on one of the pool's own workers (a ScenarioMatrix cell
  /// with nested parallelism), the clone batch is submitted as CHILD tasks
  /// of that worker — the cell helps execute its own clones while idle
  /// workers steal them across cell boundaries; from any other thread the
  /// batch is a regular external batch. Fault sets are byte-identical to
  /// the serial and private-pool paths for any worker count (see
  /// docs/DETERMINISM.md). The pool must outlive the orchestrator; a
  /// threadless (workers <= 1) pool degrades to the exact serial loop.
  explore::ExplorePool* shared_pool = nullptr;
  /// Root seed for the per-task RNG streams handed to CloneTasks
  /// (util::Rng::fork(stream_id)). Clone runs draw nothing from them yet
  /// (see explore::CloneTask::rng); the knob exists so future randomized
  /// clone behavior has a deterministic, scheduling-independent source.
  std::uint64_t rng_seed = 0xd1ce5eed;
  /// Decode-once clone pipeline: parse each snapshot into a
  /// PreparedSnapshot once and reset per-worker arena Systems from it,
  /// instead of constructing + re-decoding per clone. Off = the legacy
  /// clone_from path (kept as the equivalence baseline; fault sets are
  /// byte-identical either way).
  bool prepared_clones = true;
  /// Delta checkpoints: per-episode snapshots re-encode only routers whose
  /// state changed since the previous prepared snapshot; unchanged routers
  /// contribute one byte. Cuts per-episode snapshot bytes from
  /// O(topology size) to O(churn) on quiet systems. Requires
  /// `prepared_clones` (deltas resolve against the previous
  /// PreparedSnapshot; the legacy clone_from path reads raw bytes and must
  /// never see a delta envelope) — the flag is ignored without it. Fault
  /// sets are byte-identical either way: delta nodes share the baseline's
  /// decoded checkpoint object, and the cut hash is computed over
  /// full-state hashes, not encoded bytes.
  bool delta_snapshots = true;
  /// Terminate a clone run as soon as its oscillation detector is
  /// conclusive (any prefix's best-route flip count reaches
  /// `oscillation_threshold`) instead of burning the full
  /// clone_event_budget — a ~10x soak-time cut on dispute-wheel cells.
  bool oscillation_early_exit = true;
  /// The same early-exit for the LIVE system: Orchestrator::bootstrap
  /// routes through converge_bounded, so a dispute-wheel live system stops
  /// deterministically at the flip threshold instead of exhausting the
  /// bootstrap event budget (it was the last path still burning the full
  /// budget per ScenarioMatrix cell). Shares `oscillation_threshold`.
  /// Exploration proceeds from the early-exit state exactly as it did from
  /// the budget-exhausted one: both are non-quiescent oscillation evidence.
  bool bootstrap_early_exit = true;
  /// Cooperative cancellation (explore::Campaign plumbs its token through
  /// here). Polled BETWEEN clones only — a clone that started always
  /// finishes, so every fault that is reported came from a whole, checked
  /// clone run. When the token fires mid-episode the episode returns with
  /// `EpisodeResult::interrupted` set and a partial (well-formed, but not
  /// canonical) fault list. The default token never fires.
  explore::StopToken stop;
  /// Span sink for episode/snapshot/clone timing (obs::Trace). Strictly
  /// PASSIVE — exploration behavior and fault sets are byte-identical with
  /// or without it (the telemetry invariant, docs/OBSERVABILITY.md). Null
  /// disables span capture at the cost of one branch.
  obs::Trace* trace = nullptr;
  /// The matrix cell id stamped on this orchestrator's spans (ScenarioMatrix
  /// sets it); obs::kNoCell marks spans from standalone harnesses.
  std::uint32_t trace_cell = obs::kNoCell;
};

struct EpisodeResult {
  std::uint64_t episode = 0;
  sim::NodeId explorer = sim::kInvalidNode;
  snapshot::SnapshotId snapshot_id = 0;
  std::size_t inputs_subjected = 0;
  std::size_t clones_run = 0;
  std::size_t clones_non_quiescent = 0;
  std::size_t clones_reused = 0;      ///< clones served by an arena reset
  std::size_t clones_early_exit = 0;  ///< clone runs cut short by oscillation exit
  std::size_t snapshot_bytes = 0;     ///< checkpoint bytes captured (delta-aware)
  std::size_t snapshot_delta_nodes = 0;  ///< nodes that rode the 1-byte delta
  /// The stop token fired mid-episode: some clones were skipped, so
  /// `faults` is a partial list. Callers aggregating canonical fault sets
  /// (ScenarioMatrix) must treat the whole cell as incomplete.
  bool interrupted = false;
  std::vector<FaultReport> faults;  ///< deduplicated within the episode
  double snapshot_ms = 0.0;         ///< wall-clock stage timings (Fig. 2)
  double restore_ms = 0.0;          ///< one-time PreparedSnapshot decode/build
  double clone_ms = 0.0;            ///< per-clone setup total (construct or reset)
  double explore_ms = 0.0;
  double check_ms = 0.0;
};

class Orchestrator {
 public:
  Orchestrator(bgp::SystemBlueprint blueprint, DiceOptions options = {});
  /// Shared-prototype form: several orchestrators (ScenarioMatrix cells)
  /// can share one SystemPrototype, which is what lets a worker's clone
  /// arena survive across cells of the same scenario. `external_arena`,
  /// when given, replaces the orchestrator's own serial-path arena — it
  /// must outlive the orchestrator and belong to the calling worker.
  Orchestrator(std::shared_ptr<const SystemPrototype> prototype, DiceOptions options = {},
               explore::CloneArena* external_arena = nullptr);

  /// Starts the live system and converges it (through converge_bounded, so
  /// `bootstrap_early_exit` can stop a dispute wheel at the flip threshold).
  /// Returns false when the live system fails to quiesce (oscillation exit
  /// or budget) — exploration can still proceed from the state left behind.
  bool bootstrap(std::size_t max_events = 2'000'000);

  /// Cache-aware bootstrap for repeated (prototype, seed) live systems
  /// (ScenarioMatrix cells). On the key's first use this orchestrator
  /// bootstraps normally and — when the live system quiesced — donates a
  /// PreparedLiveState capture to `cache`; concurrent same-key callers
  /// block on the key's once-latch meanwhile. On a hit the live system is
  /// resume_from'd in microseconds instead of replaying bootstrap. Keys
  /// that resolved non-quiescent (uncacheable) replay bootstrap, which the
  /// bootstrap early-exit keeps cheap. Fault sets are byte-identical to
  /// per-cell fresh bootstraps either way.
  bool bootstrap_cached(explore::LiveStateCache& cache, std::uint64_t seed,
                        std::size_t max_events = 2'000'000);

  /// How the last bootstrap ended (quiesced / oscillation early-exit).
  [[nodiscard]] const System::ConvergeOutcome& last_bootstrap() const noexcept {
    return last_bootstrap_;
  }
  /// Whether the last bootstrap was served by a LiveStateCache resume.
  [[nodiscard]] bool bootstrap_from_cache() const noexcept { return bootstrap_from_cache_; }

  /// Runs one full explore-and-check episode with the given strategy.
  [[nodiscard]] EpisodeResult run_episode(InputStrategy& strategy);

  /// Runs episodes until a fault of `wanted` class is found or `max_episodes`
  /// pass. Returns the number of inputs subjected before first detection
  /// (SIZE_MAX when not found) — the paper's detection-latency metric.
  [[nodiscard]] std::size_t explore_until_fault(InputStrategy& strategy, FaultClass wanted,
                                                std::size_t max_episodes);

  [[nodiscard]] System& live() noexcept { return *live_; }
  [[nodiscard]] const std::vector<FaultReport>& all_faults() const noexcept {
    return all_faults_;
  }
  [[nodiscard]] std::uint64_t episodes_run() const noexcept { return episode_counter_; }
  /// The clone-execution pool, or nullptr on the serial path (parallelism <= 1).
  [[nodiscard]] explore::ExplorePool* pool() noexcept { return pool_.get(); }

  /// Round-robin explorer election (step 1 of Fig. 2). Deterministic so
  /// experiments are reproducible; real deployments can plug any policy.
  [[nodiscard]] sim::NodeId next_explorer();

  /// Runs the full check suite over a (usually cloned) system and returns
  /// classified faults. Exposed for tests and custom harnesses.
  [[nodiscard]] std::vector<FaultReport> check_system(System& system, std::uint64_t episode,
                                                      sim::NodeId explorer,
                                                      const util::Bytes& input,
                                                      bool quiesced) const;

 private:
  /// The arena a task should run on: the executing pool worker's (shared
  /// or owned), else the externally provided one, else this orchestrator's
  /// serial arena. `pooled` distinguishes a batch running ON pool workers
  /// (worker ids index that pool's arenas) from the inline serial loop
  /// (worker id is a constant 0 and must NOT touch shared arena 0 — that
  /// one belongs to the pool's real worker 0).
  [[nodiscard]] explore::CloneArena* arena_for(std::size_t worker, bool pooled) noexcept;

  /// The flip threshold bootstrap converges under (0 = early-exit off) —
  /// one definition for both converge_bounded and the LiveStateCache key.
  [[nodiscard]] std::uint32_t bootstrap_flip_exit() const noexcept;

  std::shared_ptr<const SystemPrototype> prototype_;
  DiceOptions options_;
  std::unique_ptr<System> live_;
  std::unique_ptr<explore::ExplorePool> pool_;  ///< created when parallelism > 1
  explore::CloneArena serial_arena_;
  explore::CloneArena* external_arena_ = nullptr;
  System::ConvergeOutcome last_bootstrap_;
  bool bootstrap_from_cache_ = false;
  sim::NodeId next_explorer_ = 0;
  std::uint64_t episode_counter_ = 0;
  std::vector<FaultReport> all_faults_;  ///< globally deduplicated
  std::unordered_set<std::uint64_t> known_fault_keys_;
};

}  // namespace dice::core
