// Fault reports: DiCE's output. Every detected violation is classified
// into the paper's three fault classes (§1: "programming errors, policy
// conflicts, and operator mistakes") and carries enough redacted evidence
// to reproduce: the exploration episode, the explorer, and the exact input
// bytes that were subjected to the clone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "util/bytes.hpp"

namespace dice::core {

enum class FaultClass : std::uint8_t {
  kProgrammingError,
  kPolicyConflict,
  kOperatorMistake,
  /// Heterogeneous-federation extension to the paper's three classes: two
  /// implementations fed the same routes disagree about the outcome
  /// (divergent decision or normalized RIB digest) — an interoperability
  /// defect neither implementation can see alone.
  kImplementationDivergence,
};

[[nodiscard]] std::string_view to_string(FaultClass fault_class) noexcept;

struct FaultReport {
  FaultClass fault_class = FaultClass::kProgrammingError;
  std::string check;        ///< which checker fired
  std::string description;  ///< redacted summary (narrow-interface safe)
  sim::NodeId node = sim::kInvalidNode;  ///< node that observed the fault
  std::uint64_t episode = 0;
  sim::NodeId explorer = sim::kInvalidNode;
  util::Bytes input;        ///< subjected UPDATE body (empty: baseline state)
  /// False: the fault exists in the system's *current* state (baseline
  /// clone). True: it only manifests under the subjected input — a latent
  /// vulnerability DiCE surfaced before any peer actually sent that input
  /// (the paper's "proactively detect potential faults").
  bool potential = false;

  [[nodiscard]] std::string to_string() const;
};

/// Deduplication key: same class+check+node+description collapses across
/// inputs (one fault, many triggering inputs).
[[nodiscard]] std::uint64_t fault_key(const FaultReport& report);

/// Renders a fault table (one line per report) for examples and benches.
[[nodiscard]] std::string render_fault_table(const std::vector<FaultReport>& reports);

}  // namespace dice::core
