#include "dice/system.hpp"

#include <set>

#include "util/log.hpp"

namespace dice::core {

namespace {
const util::Logger& logger() {
  static util::Logger instance("dice.system");
  return instance;
}
}  // namespace

System::System(bgp::SystemBlueprint blueprint)
    : blueprint_(std::move(blueprint)), net_(sim_), coordinator_(store_) {
  const auto book = blueprint_.address_book();
  std::set<sim::NodeId> members;
  routers_.reserve(blueprint_.size());
  for (std::size_t i = 0; i < blueprint_.size(); ++i) {
    const sim::NodeId id = static_cast<sim::NodeId>(i);
    routers_.push_back(
        std::make_unique<bgp::BgpRouter>(net_, id, blueprint_.configs[i], book));
    net_.attach(id, *routers_.back());
    routers_.back()->set_coordinator(&coordinator_);
    members.insert(id);
  }
  coordinator_.set_members(std::move(members));
  for (const bgp::LinkSpec& link : blueprint_.links) {
    net_.connect(link.a, link.b, link.latency);
  }
}

System::~System() = default;

void System::start() {
  for (auto& router : routers_) router->start();
}

bool System::converge(std::size_t max_events, sim::Time max_time) {
  return sim_.run_until_quiescent(max_events, sim_.now() + max_time);
}

snapshot::SnapshotId System::take_snapshot(sim::NodeId initiator) {
  const snapshot::SnapshotId id = store_.next_id();
  bool complete = false;
  coordinator_.set_on_complete([&complete](const snapshot::Snapshot&) { complete = true; });
  routers_.at(initiator)->initiate_snapshot(id);
  // Drive the simulation until markers have swept the system. Markers are
  // foreground events, so quiescence implies snapshot completion in a
  // connected topology; a bounded run guards against partitions.
  std::size_t steps = 0;
  while (!complete && steps < 1'000'000 && sim_.step()) ++steps;
  coordinator_.set_on_complete(nullptr);
  if (!complete) {
    logger().warn() << "snapshot " << id << " did not complete (partition?)";
    // Clean up so later snapshots are not blocked by the stuck attempt.
    for (auto& router : routers_) router->abort_snapshot();
    coordinator_.reset();
    return 0;
  }
  return id;
}

std::unique_ptr<System> System::clone_from(const bgp::SystemBlueprint& blueprint,
                                           const snapshot::Snapshot& snap) {
  auto clone = std::make_unique<System>(blueprint);
  // Restore node states. Sessions re-arm their own timers.
  for (const auto& [node, checkpoint] : snap.nodes) {
    util::ByteReader reader(checkpoint.state);
    if (auto status = clone->routers_.at(node)->restore(reader); !status) {
      logger().error() << "clone restore failed for node " << node << ": "
                       << status.error().to_string();
      return nullptr;
    }
  }
  // Re-originate local networks into restored Loc-RIBs (the checkpoint
  // already contains them; restore is state-complete, so nothing to do).
  // Re-inject in-flight frames in recorded order with small staggered
  // delays to preserve per-channel ordering.
  for (const auto& [key, payloads] : snap.channels) {
    sim::Time offset = 0;
    for (const util::Bytes& payload : payloads) {
      sim::Frame frame;
      frame.kind = sim::FrameKind::kData;
      frame.payload = payload;
      clone->net_.inject(key.from, key.to, std::move(frame), offset);
      offset += 1;  // one microsecond apart keeps ordering deterministic
    }
  }
  return clone;
}

void System::inject_message(sim::NodeId from, sim::NodeId target, util::Bytes message) {
  sim::Frame frame;
  frame.kind = sim::FrameKind::kData;
  frame.payload = std::move(message);
  net_.inject(from, target, std::move(frame));
}

std::size_t System::total_loc_rib_routes() const {
  std::size_t total = 0;
  for (const auto& router : routers_) total += router->loc_rib().size();
  return total;
}

std::size_t System::established_sessions() const {
  std::size_t total = 0;
  for (const auto& router : routers_) {
    for (const auto& [peer, session] : router->sessions()) {
      if (session->established()) ++total;
    }
  }
  return total;
}

std::map<sim::NodeId, bgp::Asn> System::node_asns() const {
  std::map<sim::NodeId, bgp::Asn> out;
  for (std::size_t i = 0; i < blueprint_.size(); ++i) {
    out[static_cast<sim::NodeId>(i)] = blueprint_.configs[i].asn;
  }
  return out;
}

}  // namespace dice::core
