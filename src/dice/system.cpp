#include "dice/system.hpp"

#include <set>
#include <stdexcept>
#include <string>

#include "util/log.hpp"

namespace dice::core {

namespace {
const util::Logger& logger() {
  static util::Logger instance("dice.system");
  return instance;
}
}  // namespace

SystemPrototype::SystemPrototype(bgp::SystemBlueprint blueprint)
    : blueprint_(std::move(blueprint)),
      address_book_(std::make_shared<const std::map<util::IpAddress, sim::NodeId>>(
          blueprint_.address_book())) {
  for (std::size_t i = 0; i < blueprint_.size(); ++i) {
    members_.insert(static_cast<sim::NodeId>(i));
  }
}

System::System(bgp::SystemBlueprint blueprint)
    : System(std::make_shared<const SystemPrototype>(std::move(blueprint))) {}

System::System(std::shared_ptr<const SystemPrototype> prototype)
    : prototype_(std::move(prototype)), net_(sim_), coordinator_(store_) {
  const bgp::SystemBlueprint& blueprint = prototype_->blueprint();
  routers_.reserve(blueprint.size());
  for (std::size_t i = 0; i < blueprint.size(); ++i) {
    const sim::NodeId id = static_cast<sim::NodeId>(i);
    const std::string_view impl = blueprint.implementation_for(i);
    auto node = bgp::NodeImplementationRegistry::instance().create(
        impl, net_, id, blueprint.configs[i], prototype_->address_book());
    if (node == nullptr) {
      throw std::invalid_argument("unknown node implementation '" + std::string(impl) +
                                  "' for node " + std::to_string(i));
    }
    routers_.push_back(std::move(node));
    net_.attach(id, *routers_.back());
    routers_.back()->set_coordinator(&coordinator_);
  }
  coordinator_.set_members(prototype_->members());
  for (const bgp::LinkSpec& link : blueprint.links) {
    net_.connect(link.a, link.b, link.latency);
  }
}

System::~System() = default;

void System::start() {
  for (auto& router : routers_) router->start();
}

bool System::converge(std::size_t max_events, sim::Time max_time) {
  return converge_bounded(max_events, max_time, 0).quiesced;
}

System::ConvergeOutcome System::converge_bounded(std::size_t max_events, sim::Time max_time,
                                                 std::uint32_t flip_exit_threshold) {
  ConvergeOutcome outcome;
  if (flip_exit_threshold == 0) {
    // No early-exit: the simulator's own quiescence loop is authoritative.
    outcome.quiesced = sim_.run_until_quiescent(max_events, sim_.now() + max_time);
    return outcome;
  }
  // Poll the routers' flip-count caches every 512 events: cheap (O(nodes)
  // against a cached counter) and deterministic (event-count based, never
  // wall-clock based), so early exits reproduce bit-identically.
  constexpr std::size_t kPollMask = 0x1FF;
  const sim::Time deadline = sim_.now() + max_time;
  std::size_t count = 0;
  while (sim_.pending_foreground() > 0) {
    if (count >= max_events || sim_.now() > deadline) return outcome;
    if ((count & kPollMask) == kPollMask) {
      for (const auto& router : routers_) {
        if (router->max_best_flips() >= flip_exit_threshold) {
          outcome.oscillation_exit = true;
          return outcome;
        }
      }
    }
    if (!sim_.step()) {
      // Drained queue with foreground work still accounted: a bookkeeping
      // mismatch must read as non-quiescence, never as convergence.
      outcome.quiesced = sim_.pending_foreground() == 0;
      return outcome;
    }
    ++count;
  }
  outcome.quiesced = true;
  return outcome;
}

snapshot::SnapshotId System::take_snapshot(sim::NodeId initiator) {
  const snapshot::SnapshotId id = store_.next_id();
  coordinator_.set_baseline(
      delta_checkpoints_ && delta_baseline_ != nullptr ? delta_baseline_->id() : 0);
  bool complete = false;
  coordinator_.set_on_complete([&complete](const snapshot::Snapshot&) { complete = true; });
  routers_.at(initiator)->initiate_snapshot(id);
  // Drive the simulation until markers have swept the system. Markers are
  // foreground events, so quiescence implies snapshot completion in a
  // connected topology; a bounded run guards against partitions.
  std::size_t steps = 0;
  while (!complete && steps < 1'000'000 && sim_.step()) ++steps;
  coordinator_.set_on_complete(nullptr);
  if (!complete) {
    logger().warn() << "snapshot " << id << " did not complete (partition?)";
    // Clean up so later snapshots are not blocked by the stuck attempt.
    for (auto& router : routers_) router->abort_snapshot();
    coordinator_.reset();
    return 0;
  }
  return id;
}

std::shared_ptr<const snapshot::PreparedSnapshot> System::prepare_snapshot(
    snapshot::SnapshotId id) {
  if (auto existing = store_.find_prepared(id)) return existing;
  const snapshot::Snapshot* snap = store_.find(id);
  if (snap == nullptr) return nullptr;
  auto prepared = snapshot::PreparedSnapshot::build(
      *snap,
      [this](sim::NodeId node) -> const snapshot::Checkpointable* {
        return node < routers_.size() ? routers_[node].get() : nullptr;
      },
      delta_baseline_.get());
  if (!prepared) {
    logger().error() << "prepare_snapshot " << id
                     << " failed: " << prepared.error().to_string();
    return nullptr;
  }
  store_.put_prepared(prepared.value());
  // This snapshot becomes the baseline the next take_snapshot deltas
  // against (whether or not delta encoding is currently enabled — the
  // flag is checked at advertise time).
  delta_baseline_ = prepared.value();
  return std::move(prepared).take();
}

util::Status System::reset_from(const snapshot::PreparedSnapshot& prepared,
                                sim::Time resume_at) {
  // Rewind everything dynamic. The order mirrors fresh construction +
  // clone_from exactly (same simulator sequence numbers, same timer
  // scheduling order, same injection order), which is what makes an arena
  // reset bit-identical to a freshly built clone. The clock fast-forwards
  // before apply so re-armed session timers land relative to resume_at.
  sim_.reset();
  sim_.fast_forward(resume_at);
  net_.reset_dynamic();
  coordinator_.reset();
  delta_baseline_.reset();  // reuse crosses snapshot lineages
  for (auto& router : routers_) router->reset_for_reuse();

  for (const auto& [node, entry] : prepared.nodes()) {
    if (node >= routers_.size()) return util::make_error("system.reset.unknown_node");
    if (auto status = routers_[node]->apply(*entry.state); !status) {
      logger().error() << "reset_from failed for node " << node << ": "
                       << status.error().to_string();
      return status;
    }
  }
  for (const snapshot::PreparedFrame& scheduled : prepared.schedule()) {
    sim::Frame frame;
    frame.kind = sim::FrameKind::kData;
    frame.payload = scheduled.payload;
    net_.inject(scheduled.from, scheduled.to, std::move(frame), scheduled.offset);
  }
  return util::Status::success();
}

util::Status System::reset_from_raw(const snapshot::Snapshot& snap,
                                    sim::Time resume_at) {
  // Mirrors reset_from step for step: same rewind sequence, node states
  // installed in ascending node-id order (snap.nodes is an ordered map,
  // matching PreparedSnapshot's node order), frames re-injected with the
  // same per-channel 0,1,2... offsets PreparedSnapshot::build records. Any
  // divergence here would break the cold-vs-warm fault-byte identity that
  // tests/svc_soak_test.cpp pins.
  sim_.reset();
  sim_.fast_forward(resume_at);
  net_.reset_dynamic();
  coordinator_.reset();
  delta_baseline_.reset();  // reuse crosses snapshot lineages
  for (auto& router : routers_) router->reset_for_reuse();

  for (const auto& [node, checkpoint] : snap.nodes) {
    if (node >= routers_.size()) return util::make_error("system.reset.unknown_node");
    util::ByteReader reader(checkpoint.state);
    if (auto status = routers_[node]->restore(reader); !status) {
      logger().error() << "reset_from_raw failed for node " << node << ": "
                       << status.error().to_string();
      return status;
    }
  }
  for (const auto& [key, payloads] : snap.channels) {
    sim::Time offset = 0;
    for (const util::Bytes& payload : payloads) {
      sim::Frame frame;
      frame.kind = sim::FrameKind::kData;
      frame.payload = payload;
      net_.inject(key.from, key.to, std::move(frame), offset);
      offset += 1;  // one microsecond apart keeps ordering deterministic
    }
  }
  return util::Status::success();
}

std::shared_ptr<snapshot::PreparedLiveState> System::capture_live_state(
    sim::NodeId initiator) {
  // Record the bootstrap's own event count before the marker sweep below
  // adds to it — the receipt is "work a resumed cell skips", and resumed
  // cells do not skip the sweep.
  const std::uint64_t bootstrap_executed = sim_.executed();
  const snapshot::SnapshotId id = take_snapshot(initiator);
  if (id == 0) return nullptr;
  // Copy the raw cut out before the store drops it: the encoded form is
  // what svc::ArtifactStore persists across process restarts (the decoded
  // form below is bound to THIS process's router objects).
  std::shared_ptr<const snapshot::Snapshot> raw;
  if (const snapshot::Snapshot* snap = store_.find(id)) {
    raw = std::make_shared<const snapshot::Snapshot>(*snap);
  }
  auto prepared = prepare_snapshot(id);
  // The capture cut is standalone: drop it from the live store so the
  // caller's per-episode take_snapshot/trim lifecycle sees nothing extra.
  // The shared_ptr keeps the decoded state alive for every cache holder.
  store_.erase(id);
  if (prepared == nullptr) return nullptr;
  auto state = std::make_shared<snapshot::PreparedLiveState>();
  state->snapshot = std::move(prepared);
  state->raw = std::move(raw);
  state->resume_at = sim_.now();
  state->bootstrap_executed = bootstrap_executed;
  return state;
}

util::Status System::resume_from(const snapshot::PreparedLiveState& state) {
  // Decoded form when available (shared across many resumes); otherwise the
  // raw cut through the fused one-shot restore (a warm-restarted daemon's
  // first resume, before the round-end promotion decodes the entry).
  if (state.snapshot != nullptr) return reset_from(*state.snapshot, state.resume_at);
  if (state.raw != nullptr) return reset_from_raw(*state.raw, state.resume_at);
  return util::make_error("system.resume.empty_state");
}

std::unique_ptr<System> System::clone_from(const bgp::SystemBlueprint& blueprint,
                                           const snapshot::Snapshot& snap) {
  auto clone = std::make_unique<System>(blueprint);
  // Restore node states. Sessions re-arm their own timers.
  for (const auto& [node, checkpoint] : snap.nodes) {
    util::ByteReader reader(checkpoint.state);
    if (auto status = clone->routers_.at(node)->restore(reader); !status) {
      logger().error() << "clone restore failed for node " << node << ": "
                       << status.error().to_string();
      return nullptr;
    }
  }
  // Re-originate local networks into restored Loc-RIBs (the checkpoint
  // already contains them; restore is state-complete, so nothing to do).
  // Re-inject in-flight frames in recorded order with small staggered
  // delays to preserve per-channel ordering.
  for (const auto& [key, payloads] : snap.channels) {
    sim::Time offset = 0;
    for (const util::Bytes& payload : payloads) {
      sim::Frame frame;
      frame.kind = sim::FrameKind::kData;
      frame.payload = payload;
      clone->net_.inject(key.from, key.to, std::move(frame), offset);
      offset += 1;  // one microsecond apart keeps ordering deterministic
    }
  }
  return clone;
}

void System::inject_message(sim::NodeId from, sim::NodeId target, util::Bytes message) {
  sim::Frame frame;
  frame.kind = sim::FrameKind::kData;
  frame.payload = std::move(message);
  net_.inject(from, target, std::move(frame));
}

std::size_t System::total_loc_rib_routes() const {
  std::size_t total = 0;
  for (const auto& router : routers_) total += router->loc_rib().size();
  return total;
}

std::size_t System::established_sessions() const {
  std::size_t total = 0;
  for (const auto& router : routers_) total += router->established_session_count();
  return total;
}

bgp::BgpRouter& System::bgp_router(sim::NodeId id) {
  auto* concrete = dynamic_cast<bgp::BgpRouter*>(routers_.at(id).get());
  if (concrete == nullptr) {
    throw std::logic_error("node " + std::to_string(id) + " runs implementation '" +
                           std::string(routers_.at(id)->implementation_id()) +
                           "', not the reference BgpRouter");
  }
  return *concrete;
}

const bgp::BgpRouter& System::bgp_router(sim::NodeId id) const {
  return const_cast<System*>(this)->bgp_router(id);
}

std::map<sim::NodeId, bgp::Asn> System::node_asns() const {
  std::map<sim::NodeId, bgp::Asn> out;
  for (std::size_t i = 0; i < blueprint().size(); ++i) {
    out[static_cast<sim::NodeId>(i)] = blueprint().configs[i].asn;
  }
  return out;
}

}  // namespace dice::core
