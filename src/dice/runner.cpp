#include "dice/runner.hpp"

#include <chrono>

namespace dice::core {

ContinuousRunner::ContinuousRunner(Orchestrator& orchestrator, InputStrategy& strategy,
                                   RunnerOptions options)
    : orchestrator_(orchestrator), strategy_(strategy), options_(options) {}

std::size_t ContinuousRunner::run(double wall_budget_ms) {
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start)
        .count();
  };

  while (elapsed_ms() < wall_budget_ms) {
    if (options_.max_episodes != 0 && episodes_ >= options_.max_episodes) break;

    // Let the live system serve for one period. Background timers
    // (keepalives, hold timers) and any in-progress convergence run here —
    // exploration never freezes the deployment.
    System& live = orchestrator_.live();
    live.simulator().run_until(live.simulator().now() + options_.episode_period);

    const EpisodeResult episode = orchestrator_.run_episode(strategy_);
    ++episodes_;
    faults_ += episode.faults.size();
    if (on_episode_) on_episode_(episode);
    if (on_fault_) {
      for (const FaultReport& fault : episode.faults) on_fault_(fault);
    }
    if (options_.stop_on_fault && !episode.faults.empty()) break;
  }
  return episodes_;
}

}  // namespace dice::core
