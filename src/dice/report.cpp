#include "dice/report.hpp"

#include "util/hash.hpp"
#include "util/strings.hpp"

namespace dice::core {

std::string_view to_string(FaultClass fault_class) noexcept {
  switch (fault_class) {
    case FaultClass::kProgrammingError: return "programming-error";
    case FaultClass::kPolicyConflict: return "policy-conflict";
    case FaultClass::kOperatorMistake: return "operator-mistake";
    case FaultClass::kImplementationDivergence: return "implementation-divergence";
  }
  return "?";
}

std::string FaultReport::to_string() const {
  std::string out = util::format("[%s%s] %s @node%u ep%llu",
                                 std::string(core::to_string(fault_class)).c_str(),
                                 potential ? ", potential" : "", check.c_str(), node,
                                 static_cast<unsigned long long>(episode));
  out.append(": ").append(description);
  if (!input.empty()) {
    out.append(" input=").append(util::to_hex(input).substr(0, 48));
    if (input.size() > 24) out.append("...");
  }
  return out;
}

std::uint64_t fault_key(const FaultReport& report) {
  std::uint64_t h = util::fnv1a(report.check);
  h = util::hash_mix(h, static_cast<std::uint64_t>(report.fault_class));
  h = util::hash_mix(h, report.node);
  h = util::fnv1a(report.description, h);
  return util::hash_finalize(h);
}

std::string render_fault_table(const std::vector<FaultReport>& reports) {
  if (reports.empty()) return "no faults detected\n";
  std::string out;
  for (const FaultReport& report : reports) {
    out.append(report.to_string());
    out.push_back('\n');
  }
  return out;
}

}  // namespace dice::core
