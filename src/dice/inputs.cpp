#include "dice/inputs.hpp"

namespace dice::core {

// ---------------------------------------------------------------------------
// ConcolicStrategy
// ---------------------------------------------------------------------------

ConcolicStrategy::ConcolicStrategy() : ConcolicStrategy(Options{}) {}

ConcolicStrategy::ConcolicStrategy(Options options)
    : options_(options), rng_(options.rng_seed) {}

ConcolicStrategy::~ConcolicStrategy() = default;

void ConcolicStrategy::on_episode(const System& live, sim::NodeId explorer) {
  const bgp::NodeImplementation& router = live.router(explorer);
  explorer_config_ = router.config();

  env_ = bgp::SymHandlerEnv{};
  env_.config = &explorer_config_;
  // Explore the import path of the first configured neighbor by default;
  // the paper explores local node actions, and the neighbor choice rotates
  // with the explorer across episodes.
  env_.neighbor_index = 0;
  for (const auto& [prefix, route] : router.loc_rib().table()) {
    env_.current_best[prefix] = bgp::CurrentBest{
        route.attrs.effective_local_pref(),
        static_cast<std::uint32_t>(route.attrs.as_path.selection_length())};
  }

  // Fresh engine per episode: exploration always restarts from *current*
  // state (paper insight i — no long input-history replay).
  engine_ = std::make_unique<concolic::ConcolicEngine>(
      [this](concolic::SymCtx& ctx) { (void)bgp::sym_handle_update(ctx, env_); },
      options_.engine);
  engine_->set_solver_memo(options_.solver_memo);

  // Seeds are strictly valid protocol messages (paper: DiCE "reuses
  // existing protocol messages to the extent possible"); everything
  // beyond them is *derived* by constraint negation, not pre-baked.
  const fuzz::BgpGrammarSeeds seeds = fuzz::BgpGrammarSeeds::from_config(explorer_config_);
  const fuzz::BgpUpdateGrammar grammar(seeds, /*strict=*/true);
  for (std::size_t i = 0; i < options_.grammar_seeds; ++i) {
    engine_->add_seed(grammar.generate_body(rng_, options_.seed_corruption));
  }
}

std::vector<util::Bytes> ConcolicStrategy::next_batch(std::size_t n) {
  if (!engine_) return {};
  // The engine keeps its queue and coverage across run() calls; only this
  // call's execution budget is bounded to the batch size.
  concolic::RunResult result = engine_->run(static_cast<std::uint32_t>(n));
  total_stats_.executions += result.stats.executions;
  total_stats_.unique_paths += result.stats.unique_paths;
  total_stats_.branch_points += result.stats.branch_points;
  total_stats_.generated += result.stats.generated;
  total_stats_.crashes += result.stats.crashes;
  for (concolic::CrashInfo& crash : result.crashes) crashes_.push_back(std::move(crash));
  std::vector<util::Bytes> batch = std::move(result.corpus);
  if (batch.size() > n) batch.resize(n);
  return batch;
}

// ---------------------------------------------------------------------------
// GrammarStrategy
// ---------------------------------------------------------------------------

GrammarStrategy::GrammarStrategy(double corruption_rate, std::uint64_t rng_seed, bool strict)
    : corruption_rate_(corruption_rate), rng_(rng_seed), strict_(strict) {}

void GrammarStrategy::on_episode(const System& live, sim::NodeId explorer) {
  grammar_ = std::make_unique<fuzz::BgpUpdateGrammar>(
      fuzz::BgpGrammarSeeds::from_config(live.router(explorer).config()), strict_);
}

std::vector<util::Bytes> GrammarStrategy::next_batch(std::size_t n) {
  std::vector<util::Bytes> batch;
  if (!grammar_) return batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(grammar_->generate_body(rng_, corruption_rate_));
  }
  return batch;
}

// ---------------------------------------------------------------------------
// RandomStrategy
// ---------------------------------------------------------------------------

RandomStrategy::RandomStrategy(std::uint64_t rng_seed) : rng_(rng_seed) {}

void RandomStrategy::on_episode(const System&, sim::NodeId) {}

std::vector<util::Bytes> RandomStrategy::next_batch(std::size_t n) {
  std::vector<util::Bytes> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Body sizes drawn from the same ballpark the grammar produces.
    const std::size_t size = 4 + rng_.below(60);
    util::Bytes body(size);
    for (std::uint8_t& b : body) b = rng_.byte();
    batch.push_back(std::move(body));
  }
  return batch;
}

}  // namespace dice::core
