#include "dice/orchestrator.hpp"

#include <unordered_set>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace dice::core {

namespace {

const util::Logger& logger() {
  static util::Logger instance("dice");
  return instance;
}

using Clock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

Orchestrator::Orchestrator(bgp::SystemBlueprint blueprint, DiceOptions options)
    : blueprint_(std::move(blueprint)),
      options_(options),
      live_(std::make_unique<System>(blueprint_)) {}

bool Orchestrator::bootstrap(std::size_t max_events) {
  live_->start();
  const bool quiesced = live_->converge(max_events);
  logger().info() << "live system " << (quiesced ? "converged" : "did NOT converge") << " ("
                  << live_->total_loc_rib_routes() << " routes, "
                  << live_->established_sessions() << " sessions)";
  return quiesced;
}

sim::NodeId Orchestrator::next_explorer() {
  const sim::NodeId explorer = next_explorer_;
  next_explorer_ = static_cast<sim::NodeId>((next_explorer_ + 1) % blueprint_.size());
  return explorer;
}

std::vector<FaultReport> Orchestrator::check_system(System& system, std::uint64_t episode,
                                                    sim::NodeId explorer,
                                                    const util::Bytes& input,
                                                    bool quiesced) const {
  std::vector<FaultReport> faults;
  const auto add = [&](FaultClass fault_class, std::string check, sim::NodeId node,
                       std::string description) {
    FaultReport report;
    report.fault_class = fault_class;
    report.check = std::move(check);
    report.description = std::move(description);
    report.node = node;
    report.episode = episode;
    report.explorer = explorer;
    report.input = input;
    report.potential = !input.empty();  // baseline clones carry no input
    faults.push_back(std::move(report));
  };

  // A clone that cannot quiesce within budget is itself evidence of a
  // policy conflict (persistent route oscillation).
  if (!quiesced) {
    add(FaultClass::kPolicyConflict, "non-quiescence", explorer,
        "clone did not reach quiescence within budget (persistent oscillation)");
  }

  const CrashCheck crash_check;
  const OscillationCheck oscillation_check(options_.oscillation_threshold);
  const RouteConsistencyCheck consistency_check;
  const OriginClaimCheck origin_check;

  std::vector<CheckVerdict> origin_verdicts;
  for (std::size_t i = 0; i < system.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    const bgp::BgpRouter& router = system.router(node);

    if (CheckVerdict v = crash_check.run(router); !v.ok) {
      add(FaultClass::kProgrammingError, v.check, node, v.summary);
    }
    if (CheckVerdict v = oscillation_check.run(router); !v.ok) {
      add(FaultClass::kPolicyConflict, v.check, node, v.summary);
    }
    if (CheckVerdict v = consistency_check.run(router); !v.ok) {
      add(FaultClass::kOperatorMistake, v.check, node, v.summary);
    }
    origin_verdicts.push_back(origin_check.run(router));
  }

  // Cross-node origin authorization over the narrow interface.
  const auto owners = collect_owners(origin_verdicts, system.node_asns());
  for (const OriginViolation& violation : aggregate_origin_claims(origin_verdicts, owners)) {
    std::string desc = util::format(
        "prefix hash %016llx originated by AS%u but owned by AS%u (seen on %zu node(s))",
        static_cast<unsigned long long>(violation.prefix_hash), violation.observed_origin,
        violation.legitimate_origin, violation.observers.size());
    add(FaultClass::kOperatorMistake, "route-origin",
        violation.observers.empty() ? explorer : violation.observers.front(),
        std::move(desc));
  }
  return faults;
}

EpisodeResult Orchestrator::run_episode(InputStrategy& strategy) {
  EpisodeResult result;
  result.episode = ++episode_counter_;
  result.explorer = next_explorer();

  // Step 2: consistent shadow snapshot (marker protocol on the live sim).
  const auto snapshot_start = Clock::now();
  result.snapshot_id = live_->take_snapshot(result.explorer);
  result.snapshot_ms = ms_since(snapshot_start);
  if (result.snapshot_id == 0) {
    logger().warn() << "episode " << result.episode << ": snapshot failed";
    return result;
  }
  const snapshot::Snapshot* snap = live_->snapshots().find(result.snapshot_id);

  strategy.on_episode(*live_, result.explorer);

  // Choose the injection peer: rotate over the explorer's neighbors so
  // different episodes exercise different import policies.
  const std::vector<sim::NodeId> neighbors = live_->network().neighbors(result.explorer);

  std::unordered_set<std::uint64_t> seen_faults;
  const auto record_faults = [&](std::vector<FaultReport> faults) {
    for (FaultReport& fault : faults) {
      const std::uint64_t key = fault_key(fault);
      if (seen_faults.insert(key).second) {
        logger().info() << "episode " << result.episode << ": " << fault.to_string();
        result.faults.push_back(fault);
        // The global list deduplicates across episodes (a standing fault
        // would otherwise be re-reported every episode).
        if (known_fault_keys_.insert(key).second) {
          all_faults_.push_back(std::move(fault));
        }
      }
    }
  };

  // Baseline clone: checks the *current* system state with no new input
  // (catches faults already manifest, e.g. a deployed hijack).
  if (options_.include_baseline_clone) {
    const auto clone_start = Clock::now();
    std::unique_ptr<System> clone = System::clone_from(blueprint_, *snap);
    result.clone_ms += ms_since(clone_start);
    if (clone) {
      ++result.clones_run;
      for (std::size_t i = 0; i < clone->size(); ++i) {
        clone->router(static_cast<sim::NodeId>(i)).reset_flip_counters();
      }
      const auto explore_start = Clock::now();
      const bool quiesced =
          clone->converge(options_.clone_event_budget, options_.clone_time_budget);
      result.explore_ms += ms_since(explore_start);
      if (!quiesced) ++result.clones_non_quiescent;
      const auto check_start = Clock::now();
      record_faults(check_system(*clone, result.episode, result.explorer, {}, quiesced));
      result.check_ms += ms_since(check_start);
    }
  }

  // Steps 3..5: one cloned snapshot per input.
  if (options_.stop_on_first_fault && !result.faults.empty()) return result;
  const std::vector<util::Bytes> batch = strategy.next_batch(options_.inputs_per_episode);
  for (std::size_t input_index = 0; input_index < batch.size(); ++input_index) {
    const util::Bytes& body = batch[input_index];
    const auto clone_start = Clock::now();
    std::unique_ptr<System> clone = System::clone_from(blueprint_, *snap);
    result.clone_ms += ms_since(clone_start);
    if (!clone) continue;
    ++result.clones_run;
    ++result.inputs_subjected;
    for (std::size_t i = 0; i < clone->size(); ++i) {
      clone->router(static_cast<sim::NodeId>(i)).reset_flip_counters();
    }

    const auto explore_start = Clock::now();
    if (!neighbors.empty()) {
      const sim::NodeId from = neighbors[input_index % neighbors.size()];
      clone->inject_message(from, result.explorer, bgp::wrap_update_body(body));
    }
    const bool quiesced =
        clone->converge(options_.clone_event_budget, options_.clone_time_budget);
    result.explore_ms += ms_since(explore_start);
    if (!quiesced) ++result.clones_non_quiescent;

    const auto check_start = Clock::now();
    record_faults(check_system(*clone, result.episode, result.explorer, body, quiesced));
    result.check_ms += ms_since(check_start);

    if (options_.stop_on_first_fault && !result.faults.empty()) break;
  }
  return result;
}

std::size_t Orchestrator::explore_until_fault(InputStrategy& strategy, FaultClass wanted,
                                              std::size_t max_episodes) {
  std::size_t inputs_total = 0;
  for (std::size_t i = 0; i < max_episodes; ++i) {
    EpisodeResult episode = run_episode(strategy);
    // Count baseline clone as one probe plus each subjected input.
    inputs_total += episode.clones_run;
    for (const FaultReport& fault : episode.faults) {
      if (fault.fault_class == wanted) return inputs_total;
    }
  }
  return SIZE_MAX;
}

}  // namespace dice::core
