#include "dice/orchestrator.hpp"

#include <cassert>
#include <unordered_set>

#include "explore/ledger.hpp"
#include "explore/live_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dice::core {

namespace {

const util::Logger& logger() {
  static util::Logger instance("dice");
  return instance;
}

using Clock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct EpisodeMetrics {
  obs::Counter& episodes;
  obs::Counter& snapshots;
  obs::Counter& faults;
  obs::Histogram& snapshot_ms;
  obs::Histogram& episode_ms;
};

[[nodiscard]] EpisodeMetrics& episode_metrics() {
  static EpisodeMetrics metrics{
      obs::MetricsRegistry::global().counter(obs::names::kEpisodes),
      obs::MetricsRegistry::global().counter(obs::names::kSnapshots),
      obs::MetricsRegistry::global().counter(obs::names::kFaults),
      obs::MetricsRegistry::global().histogram(obs::names::kSnapshotMs),
      obs::MetricsRegistry::global().histogram(obs::names::kEpisodeMs)};
  return metrics;
}

}  // namespace

Orchestrator::Orchestrator(bgp::SystemBlueprint blueprint, DiceOptions options)
    : Orchestrator(std::make_shared<const SystemPrototype>(std::move(blueprint)), options) {}

Orchestrator::Orchestrator(std::shared_ptr<const SystemPrototype> prototype,
                           DiceOptions options, explore::CloneArena* external_arena)
    : prototype_(std::move(prototype)),
      options_(options),
      live_(std::make_unique<System>(prototype_)),
      external_arena_(external_arena) {
  // Delta checkpoints only with the prepared pipeline: the legacy
  // clone_from fallback reads raw snapshot bytes and has no baseline to
  // resolve a delta envelope against.
  live_->set_delta_checkpoints(options_.delta_snapshots && options_.prepared_clones);
  // A shared pool replaces the private one entirely: one global worker
  // budget, no second thread team to oversubscribe it.
  if (options_.shared_pool == nullptr && options_.parallelism > 1) {
    pool_ = std::make_unique<explore::ExplorePool>(options_.parallelism);
  }
}

explore::CloneArena* Orchestrator::arena_for(std::size_t worker, bool pooled) noexcept {
  if (pooled) {
    return options_.shared_pool != nullptr ? &options_.shared_pool->arena(worker)
                                           : &pool_->arena(worker);
  }
  if (external_arena_ != nullptr) return external_arena_;
  return &serial_arena_;
}

std::uint32_t Orchestrator::bootstrap_flip_exit() const noexcept {
  // Shared by bootstrap() and the cache key: a donated state is only valid
  // for consumers converging under the SAME early-exit point.
  return options_.bootstrap_early_exit ? options_.oscillation_threshold : 0;
}

bool Orchestrator::bootstrap(std::size_t max_events) {
  live_->start();
  // Route through converge_bounded: with bootstrap_early_exit a dispute-
  // wheel live system stops at the (deterministic, event-count-polled)
  // flip threshold instead of exhausting the whole bootstrap budget.
  last_bootstrap_ =
      live_->converge_bounded(max_events, 3600 * sim::kSecond, bootstrap_flip_exit());
  bootstrap_from_cache_ = false;
  logger().info() << "live system "
                  << (last_bootstrap_.quiesced ? "converged" : "did NOT converge")
                  << (last_bootstrap_.oscillation_exit ? " (oscillation early-exit)" : "")
                  << " (" << live_->total_loc_rib_routes() << " routes, "
                  << live_->established_sessions() << " sessions)";
  return last_bootstrap_.quiesced;
}

bool Orchestrator::bootstrap_cached(explore::LiveStateCache& cache, std::uint64_t seed,
                                    std::size_t max_events) {
  const explore::LiveStateCache::Key key{prototype_, seed, max_events,
                                         bootstrap_flip_exit()};
  const explore::LiveStateCache::Lookup lookup =
      cache.get_or_compute(key, [&]() -> std::shared_ptr<const snapshot::PreparedLiveState> {
        if (!bootstrap(max_events)) {
          // Only a quiescent state is exactly reproducible from a cut:
          // restoring a churning system re-injects its in-flight frames on
          // a fresh schedule — a different interleaving — and verdicts must
          // stay scheduling-independent. Mark the key uncacheable; replays
          // are cheap now that the early-exit governs bootstrap too.
          return nullptr;
        }
        auto state = live_->capture_live_state();
        if (state != nullptr) {
          state->quiesced = last_bootstrap_.quiesced;
          state->oscillation_exit = last_bootstrap_.oscillation_exit;
        }
        return state;
      });
  if (!lookup.hit) {
    // This orchestrator ran the bootstrap itself (and, when it quiesced,
    // donated the capture — the marker sweep left its router state intact).
    return last_bootstrap_.quiesced;
  }
  if (lookup.state == nullptr) return bootstrap(max_events);  // uncacheable key
  if (auto status = live_->resume_from(*lookup.state); !status) {
    logger().warn() << "live-state resume failed (" << status.error().to_string()
                    << "); bootstrapping fresh";
    // A mid-apply failure leaves the instance half-seeded with foreign
    // state; rebuild it so the fallback bootstrap starts from the same
    // blank System a fresh cell would.
    live_ = std::make_unique<System>(prototype_);
    return bootstrap(max_events);
  }
  last_bootstrap_ = {lookup.state->quiesced, lookup.state->oscillation_exit};
  bootstrap_from_cache_ = true;
  logger().info() << "live system resumed from cached bootstrap ("
                  << live_->total_loc_rib_routes() << " routes, "
                  << live_->established_sessions() << " sessions)";
  return last_bootstrap_.quiesced;
}

sim::NodeId Orchestrator::next_explorer() {
  const sim::NodeId explorer = next_explorer_;
  next_explorer_ = static_cast<sim::NodeId>((next_explorer_ + 1) % prototype_->size());
  return explorer;
}

std::vector<FaultReport> Orchestrator::check_system(System& system, std::uint64_t episode,
                                                    sim::NodeId explorer,
                                                    const util::Bytes& input,
                                                    bool quiesced) const {
  std::vector<FaultReport> faults;
  const auto add = [&](FaultClass fault_class, std::string check, sim::NodeId node,
                       std::string description) {
    FaultReport report;
    report.fault_class = fault_class;
    report.check = std::move(check);
    report.description = std::move(description);
    report.node = node;
    report.episode = episode;
    report.explorer = explorer;
    report.input = input;
    report.potential = !input.empty();  // baseline clones carry no input
    faults.push_back(std::move(report));
  };

  // A clone that cannot quiesce within budget is itself evidence of a
  // policy conflict (persistent route oscillation).
  if (!quiesced) {
    add(FaultClass::kPolicyConflict, "non-quiescence", explorer,
        "clone did not reach quiescence within budget (persistent oscillation)");
  }

  const CrashCheck crash_check;
  const OscillationCheck oscillation_check(options_.oscillation_threshold);
  const RouteConsistencyCheck consistency_check;
  const DifferentialCheck differential_check;
  const OriginClaimCheck origin_check;

  std::vector<CheckVerdict> origin_verdicts;
  for (std::size_t i = 0; i < system.size(); ++i) {
    const sim::NodeId node = static_cast<sim::NodeId>(i);
    const bgp::NodeImplementation& router = system.router(node);

    if (CheckVerdict v = crash_check.run(router); !v.ok) {
      add(FaultClass::kProgrammingError, v.check, node, v.summary);
    }
    if (CheckVerdict v = oscillation_check.run(router); !v.ok) {
      add(FaultClass::kPolicyConflict, v.check, node, v.summary);
    }
    if (CheckVerdict v = consistency_check.run(router); !v.ok) {
      add(FaultClass::kOperatorMistake, v.check, node, v.summary);
    }
    // Differential oracle: an invariant (never adds a fault) on the
    // reference engine, the cross-implementation divergence signal on any
    // other — so all-BgpRouter fault sets are byte-identical to pre-
    // heterogeneity runs.
    if (CheckVerdict v = differential_check.run(router); !v.ok) {
      add(FaultClass::kImplementationDivergence, v.check, node, v.summary);
    }
    origin_verdicts.push_back(origin_check.run(router));
  }

  // Cross-node origin authorization over the narrow interface.
  const auto owners = collect_owners(origin_verdicts, system.node_asns());
  for (const OriginViolation& violation : aggregate_origin_claims(origin_verdicts, owners)) {
    std::string desc = util::format(
        "prefix hash %016llx originated by AS%u but owned by AS%u (seen on %zu node(s))",
        static_cast<unsigned long long>(violation.prefix_hash), violation.observed_origin,
        violation.legitimate_origin, violation.observers.size());
    add(FaultClass::kOperatorMistake, "route-origin",
        violation.observers.empty() ? explorer : violation.observers.front(),
        std::move(desc));
  }
  return faults;
}

EpisodeResult Orchestrator::run_episode(InputStrategy& strategy) {
  EpisodeResult result;
  result.episode = ++episode_counter_;
  result.explorer = next_explorer();

  EpisodeMetrics& metrics = episode_metrics();
  metrics.episodes.add();
  const auto episode_start = Clock::now();
  // Span attribution: the pool worker running this cell, 0 for standalone
  // harness threads.
  std::uint32_t span_worker = 0;
  if (options_.shared_pool != nullptr) {
    const std::size_t worker = options_.shared_pool->current_worker();
    if (worker != explore::ExplorePool::kNoWorker) {
      span_worker = static_cast<std::uint32_t>(worker);
    }
  }
  obs::Span episode_span(options_.trace, "episode", span_worker, options_.trace_cell,
                         result.episode);

  // Step 2: consistent shadow snapshot (marker protocol on the live sim).
  const auto snapshot_start = Clock::now();
  {
    obs::Span snapshot_span(options_.trace, "snapshot", span_worker,
                            options_.trace_cell, result.episode);
    result.snapshot_id = live_->take_snapshot(result.explorer);
  }
  result.snapshot_ms = ms_since(snapshot_start);
  metrics.snapshot_ms.observe(result.snapshot_ms);
  if (result.snapshot_id == 0) {
    logger().warn() << "episode " << result.episode << ": snapshot failed";
    metrics.episode_ms.observe(ms_since(episode_start));
    return result;
  }
  metrics.snapshots.add();
  const snapshot::Snapshot* snap = live_->snapshots().find(result.snapshot_id);
  result.snapshot_bytes = snap->total_state_bytes();
  for (const auto& [node, checkpoint] : snap->nodes) {
    if (checkpoint.state.size() == 1 &&
        checkpoint.state[0] == snapshot::kCheckpointSameAsBaseline) {
      ++result.snapshot_delta_nodes;
    }
  }

  // Decode-once: parse every checkpoint into the shared PreparedSnapshot
  // here, on the orchestrator thread, before any clone task exists. Workers
  // only ever apply the typed state.
  std::shared_ptr<const snapshot::PreparedSnapshot> prepared;
  if (options_.prepared_clones) {
    const auto prepare_start = Clock::now();
    prepared = live_->prepare_snapshot(result.snapshot_id);
    result.restore_ms = ms_since(prepare_start);
    if (prepared == nullptr) {
      logger().warn() << "episode " << result.episode
                      << ": snapshot preparation failed; using legacy clone path";
    }
  }

  strategy.on_episode(*live_, result.explorer);

  // Choose the injection peer: rotate over the explorer's neighbors so
  // different episodes exercise different import policies.
  const std::vector<sim::NodeId> neighbors = live_->network().neighbors(result.explorer);

  // Steps 3..5 as a task batch: input generation stays serial (strategies
  // are stateful); clone execution fans out. Task order is the serial
  // encounter order — the baseline clone first, then one task per input —
  // and doubles as the fault-merge priority.
  const util::Rng episode_rng(options_.rng_seed ^ result.episode);
  std::vector<explore::CloneTask> tasks;
  const auto make_task = [&] {
    explore::CloneTask task;
    task.index = tasks.size();
    task.blueprint = &prototype_->blueprint();
    task.snap = snap;
    task.prototype = prototype_;
    task.prepared = prepared;
    task.explorer = result.explorer;
    task.episode = result.episode;
    task.rng = episode_rng.fork(task.index);
    task.event_budget = options_.clone_event_budget;
    task.time_budget = options_.clone_time_budget;
    if (options_.oscillation_early_exit) {
      task.oscillation_exit_flips = options_.oscillation_threshold;
    }
    return task;
  };
  if (options_.include_baseline_clone) {
    // Baseline clone: checks the *current* system state with no new input
    // (catches faults already manifest, e.g. a deployed hijack).
    explore::CloneTask task = make_task();
    task.baseline = true;
    tasks.push_back(std::move(task));
  }

  const explore::CheckFn check = [this](System& system, const explore::CloneTask& task,
                                        bool quiesced) {
    return check_system(system, task.episode, task.explorer, task.input, quiesced);
  };

  // Workers push raw faults into the shared episode ledger as they finish;
  // the ledger deduplicates by signature and keeps serial-order evidence.
  explore::FaultLedger ledger;
  std::vector<explore::CloneOutcome> outcomes;
  // Between-clone cancellation point (the only one inside an episode): a
  // clone that started always finishes, so reported faults only ever come
  // from whole clone runs. `stop_possible` keeps the no-token fast path an
  // untaken branch.
  std::atomic<bool> stop_observed{false};
  const bool stoppable = options_.stop.stop_possible();
  // Which pool executes the batch: the shared (global-budget) pool wins
  // over a private one. `pooled` is captured by the worker-id -> arena
  // mapping below: batch execution indexes the pool's arenas, the serial
  // fallback uses the external/serial arena of THIS call stack.
  explore::ExplorePool* batch_pool =
      options_.shared_pool != nullptr ? options_.shared_pool : pool_.get();
  const bool pooled = batch_pool != nullptr && !options_.stop_on_first_fault;
  // Dispatch receipt, only meaningful on the pooled path: a task the pool
  // never handed to execute was swept by an ExplorePool::drain() — possibly
  // one triggered by a token THIS episode cannot observe. Such an episode
  // must report interrupted rather than pass a truncated fault list off as
  // complete. (The serial path skips tasks only by design —
  // stop_on_first_fault — and is never drained.)
  std::vector<unsigned char> dispatched;
  const auto execute = [&](std::size_t index, std::size_t worker) {
    dispatched[index] = 1;
    if (stoppable && options_.stop.stop_requested()) {
      stop_observed.store(true, std::memory_order_relaxed);
      return;  // outcome stays !ran; the episode reports interrupted
    }
    obs::Span clone_span(options_.trace, "clone", static_cast<std::uint32_t>(worker),
                         options_.trace_cell, tasks[index].episode,
                         static_cast<std::uint32_t>(index));
    outcomes[index] =
        explore::run_clone_task(tasks[index], check, arena_for(worker, pooled));
    // 32-bit priority bands: a task would need 2^32 faults to bleed into
    // the next task's band (the old 16-bit band left only 65k headroom).
    assert(outcomes[index].faults.size() < (std::uint64_t{1} << 32));
    ledger.record_all(std::move(outcomes[index].faults),
                      static_cast<std::uint64_t>(index) << 32);
  };

  std::size_t executed = 0;
  if (options_.stop_on_first_fault) {
    // Serial early-exit contract: the baseline clone runs — and can end the
    // episode — before any input is generated, so a standing fault never
    // pays for (or advances) the strategy's generation state.
    outcomes.resize(tasks.size());
    dispatched.resize(tasks.size(), 0);
    for (; executed < tasks.size() && ledger.empty(); ++executed) {
      execute(executed, 0);
    }
  }
  if (!options_.stop_on_first_fault || ledger.empty()) {
    const std::vector<util::Bytes> batch = strategy.next_batch(options_.inputs_per_episode);
    tasks.reserve(tasks.size() + batch.size());
    for (std::size_t input_index = 0; input_index < batch.size(); ++input_index) {
      explore::CloneTask task = make_task();
      task.input = batch[input_index];
      if (!neighbors.empty()) {
        task.inject_from = neighbors[input_index % neighbors.size()];
      }
      tasks.push_back(std::move(task));
    }
    outcomes.resize(tasks.size());
    dispatched.resize(tasks.size(), 0);
    if (pooled) {
      // Shared pool: the batch becomes child tasks of the calling cell when
      // this runs on a pool worker (nested parallelism — idle workers steal
      // the clones), or a regular external batch otherwise. A threadless
      // shared pool executes the same loop inline. Private pool: unchanged.
      batch_pool->run_batch(tasks.size(), execute);
    } else {
      for (; executed < tasks.size(); ++executed) {
        execute(executed, 0);
        if (options_.stop_on_first_fault && !ledger.empty()) {
          ++executed;
          break;
        }
      }
    }
  }

  // Bounded memory for long-running online testing: every episode takes a
  // fresh snapshot, so older raw + prepared entries are dead weight. All
  // clone tasks have completed (workers hold no store pointers anymore;
  // prepared state is shared_ptr-held regardless), so trimming here is the
  // store contract's "between episodes" window.
  live_->snapshots().trim(1);

  result.interrupted = stop_observed.load(std::memory_order_relaxed);
  if (!result.interrupted && pooled) {
    // A drain can also skip tasks WITHOUT execute ever observing a token:
    // a cancelling peer cell sweeps every queued task in the shared pool,
    // including this episode's still-queued clones — and the sweeping
    // token need not be one this episode can see. Any undispatched task
    // means the fault list is partial — same contract as an observed stop.
    for (const unsigned char ran : dispatched) {
      if (ran == 0) {
        result.interrupted = true;
        break;
      }
    }
  }

  // Serial merge, in task order: counters, timings, then the deduplicated
  // fault list (canonical order — identical for any worker count).
  for (std::size_t index = 0; index < outcomes.size(); ++index) {
    const explore::CloneOutcome& outcome = outcomes[index];
    result.clone_ms += outcome.clone_ms;
    if (!outcome.ran) continue;
    ++result.clones_run;
    if (!tasks[index].baseline) ++result.inputs_subjected;
    result.explore_ms += outcome.explore_ms;
    result.check_ms += outcome.check_ms;
    if (!outcome.quiesced) ++result.clones_non_quiescent;
    if (outcome.reused) ++result.clones_reused;
    if (outcome.early_exit) ++result.clones_early_exit;
  }
  for (FaultReport& fault : ledger.snapshot_sorted()) {
    const std::uint64_t key = fault_key(fault);
    logger().info() << "episode " << result.episode << ": " << fault.to_string();
    result.faults.push_back(fault);
    metrics.faults.add();
    // The global list deduplicates across episodes (a standing fault
    // would otherwise be re-reported every episode).
    if (known_fault_keys_.insert(key).second) {
      all_faults_.push_back(std::move(fault));
    }
  }
  metrics.episode_ms.observe(ms_since(episode_start));
  return result;
}

std::size_t Orchestrator::explore_until_fault(InputStrategy& strategy, FaultClass wanted,
                                              std::size_t max_episodes) {
  std::size_t inputs_total = 0;
  for (std::size_t i = 0; i < max_episodes; ++i) {
    EpisodeResult episode = run_episode(strategy);
    // Count baseline clone as one probe plus each subjected input.
    inputs_total += episode.clones_run;
    for (const FaultReport& fault : episode.faults) {
      if (fault.fault_class == wanted) return inputs_total;
    }
  }
  return SIZE_MAX;
}

}  // namespace dice::core
