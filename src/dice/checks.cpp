#include "dice/checks.hpp"

#include <algorithm>

#include "bgp/decision.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace dice::core {

std::uint64_t hash_prefix(const util::IpPrefix& prefix, std::uint64_t salt) {
  std::uint64_t h = util::hash_mix(salt, prefix.address().value());
  h = util::hash_mix(h, prefix.length());
  return util::hash_finalize(h);
}

CheckVerdict CrashCheck::run(const bgp::NodeImplementation& router) const {
  CheckVerdict verdict;
  verdict.check = std::string(name());
  verdict.node = router.node_id();
  const std::uint64_t crashes = router.stats().handler_crashes;
  verdict.counters["handler_crashes"] = crashes;
  verdict.counters["decode_failures"] = router.stats().decode_failures;
  verdict.ok = crashes == 0;
  if (!verdict.ok) {
    verdict.summary =
        util::format("%llu handler crash(es) observed", static_cast<unsigned long long>(crashes));
  }
  return verdict;
}

CheckVerdict OscillationCheck::run(const bgp::NodeImplementation& router) const {
  CheckVerdict verdict;
  verdict.check = std::string(name());
  verdict.node = router.node_id();
  std::uint32_t max_flips = 0;
  std::uint64_t oscillating_prefixes = 0;
  for (const auto& [prefix, flips] : router.best_flips()) {
    max_flips = std::max(max_flips, flips);
    if (flips >= flip_threshold_) ++oscillating_prefixes;
  }
  verdict.counters["max_flips"] = max_flips;
  verdict.counters["oscillating_prefixes"] = oscillating_prefixes;
  verdict.counters["threshold"] = flip_threshold_;
  verdict.ok = oscillating_prefixes == 0;
  if (!verdict.ok) {
    verdict.summary = util::format(
        "%llu prefix(es) flipped best route >= %u times (route oscillation)",
        static_cast<unsigned long long>(oscillating_prefixes), flip_threshold_);
  }
  return verdict;
}

CheckVerdict OriginClaimCheck::run(const bgp::NodeImplementation& router) const {
  CheckVerdict verdict;
  verdict.check = std::string(name());
  verdict.node = router.node_id();
  for (const auto& [prefix, route] : router.loc_rib().table()) {
    const bgp::Asn origin =
        route.local() ? router.config().asn
                      : route.attrs.as_path.origin_asn().value_or(route.source.peer_asn);
    // Publish the claim for the exact prefix AND for every covering prefix
    // down to /8. This keeps sub-prefix (more-specific) hijacks detectable
    // through the hashed interface: the owner of the covering block will
    // recognize its own prefix hash among the claims. Claims are still
    // only hashes — observers learn nothing about prefixes they don't own.
    verdict.origin_claims.push_back(CheckVerdict::OriginClaim{hash_prefix(prefix), origin});
    for (int len = static_cast<int>(prefix.length()) - 1; len >= 8; --len) {
      CheckVerdict::OriginClaim claim;
      claim.prefix_hash =
          hash_prefix(util::IpPrefix{prefix.address(), static_cast<std::uint8_t>(len)});
      claim.origin = origin;
      verdict.origin_claims.push_back(claim);
    }
  }
  for (const util::IpPrefix& prefix : router.config().networks) {
    verdict.owned_prefix_hashes.push_back(hash_prefix(prefix));
  }
  verdict.counters["claims"] = verdict.origin_claims.size();
  verdict.counters["owned"] = verdict.owned_prefix_hashes.size();
  return verdict;
}

CheckVerdict RouteConsistencyCheck::run(const bgp::NodeImplementation& router) const {
  CheckVerdict verdict;
  verdict.check = std::string(name());
  verdict.node = router.node_id();
  std::uint64_t bad_next_hop = 0;
  std::uint64_t own_asn_in_path = 0;
  const bgp::RouterConfig& config = router.config();
  for (const auto& [prefix, route] : router.loc_rib().table()) {
    if (route.local()) continue;
    // iBGP-learned routes keep the original eBGP next hop and resolve it
    // recursively (no IGP layer here); only eBGP routes must point at a
    // directly known neighbor.
    if (route.source.ebgp &&
        config.neighbor_by_address(route.attrs.next_hop) == nullptr &&
        route.attrs.next_hop != config.address) {
      ++bad_next_hop;
    }
    if (route.attrs.as_path.contains(config.asn)) ++own_asn_in_path;
  }
  verdict.counters["bad_next_hop"] = bad_next_hop;
  verdict.counters["own_asn_in_path"] = own_asn_in_path;
  verdict.ok = bad_next_hop == 0 && own_asn_in_path == 0;
  if (!verdict.ok) {
    verdict.summary = util::format(
        "%llu route(s) with unreachable next hop, %llu with local ASN in path",
        static_cast<unsigned long long>(bad_next_hop),
        static_cast<unsigned long long>(own_asn_in_path));
  }
  return verdict;
}

CheckVerdict DifferentialCheck::run(const bgp::NodeImplementation& router) const {
  static obs::Counter& checks_counter =
      obs::MetricsRegistry::global().counter(obs::names::kDifferentialChecks);
  static obs::Counter& divergence_counter =
      obs::MetricsRegistry::global().counter(obs::names::kDifferentialDivergence);
  checks_counter.add();

  CheckVerdict verdict;
  verdict.check = std::string(name());
  verdict.node = router.node_id();

  bgp::DecisionOptions options;
  options.always_compare_med = router.config().always_compare_med;
  std::uint64_t decisions = 0;
  std::uint64_t divergent = 0;
  // Order-stable fingerprint of the divergent prefixes (hashed — nothing
  // about the prefixes themselves leaves the node).
  std::uint64_t evidence = 0;
  router.for_each_decision([&](const bgp::NodeImplementation::DecisionView& view) {
    ++decisions;
    const std::size_t best = bgp::select_best(*view.candidates, options);
    const bgp::Route* expected = best == SIZE_MAX ? nullptr : &(*view.candidates)[best];
    const bool match =
        expected == nullptr ? view.selected == nullptr
                            : view.selected != nullptr && *view.selected == *expected;
    if (!match) {
      ++divergent;
      evidence = util::hash_mix(evidence, hash_prefix(view.prefix));
    }
  });
  verdict.counters["decisions"] = decisions;
  verdict.counters["divergent"] = divergent;
  verdict.ok = divergent == 0;
  if (!verdict.ok) {
    divergence_counter.add(divergent);
    verdict.summary = util::format(
        "%llu of %llu decision(s) diverge from the reference decision process "
        "(impl=%s evidence=%016llx)",
        static_cast<unsigned long long>(divergent),
        static_cast<unsigned long long>(decisions),
        std::string(router.implementation_id()).c_str(),
        static_cast<unsigned long long>(util::hash_finalize(evidence)));
  }
  return verdict;
}

std::map<std::uint64_t, bgp::Asn> collect_owners(
    const std::vector<CheckVerdict>& verdicts,
    const std::map<sim::NodeId, bgp::Asn>& node_asns) {
  std::map<std::uint64_t, bgp::Asn> owners;
  for (const CheckVerdict& verdict : verdicts) {
    auto asn_it = node_asns.find(verdict.node);
    if (asn_it == node_asns.end()) continue;
    for (std::uint64_t hash : verdict.owned_prefix_hashes) {
      // First owner wins; a prefix owned by two configs is itself the
      // hijack case and will surface as a violation below.
      owners.emplace(hash, asn_it->second);
    }
  }
  return owners;
}

std::vector<OriginViolation> aggregate_origin_claims(
    const std::vector<CheckVerdict>& verdicts,
    const std::map<std::uint64_t, bgp::Asn>& owners) {
  // (prefix_hash, bad origin) -> observers
  std::map<std::pair<std::uint64_t, bgp::Asn>, std::vector<sim::NodeId>> offenders;
  for (const CheckVerdict& verdict : verdicts) {
    for (const CheckVerdict::OriginClaim& claim : verdict.origin_claims) {
      auto owner_it = owners.find(claim.prefix_hash);
      if (owner_it == owners.end()) continue;  // nobody owns it; not checkable
      if (claim.origin != owner_it->second) {
        offenders[{claim.prefix_hash, claim.origin}].push_back(verdict.node);
      }
    }
  }
  std::vector<OriginViolation> violations;
  violations.reserve(offenders.size());
  for (auto& [key, observers] : offenders) {
    OriginViolation v;
    v.prefix_hash = key.first;
    v.legitimate_origin = owners.at(key.first);
    v.observed_origin = key.second;
    std::sort(observers.begin(), observers.end());
    v.observers = std::move(observers);
    violations.push_back(std::move(v));
  }
  return violations;
}

}  // namespace dice::core
