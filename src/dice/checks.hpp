// DiCE property framework (paper §2 step iii: "checks for violations of
// properties that capture the desired system behavior").
//
// Federation constraint: "there cannot be unrestricted access to remote
// node states". Checks therefore run *locally* on each node with full
// access to that node's state, but export only a CheckVerdict through the
// narrow information-sharing interface: booleans, counters and *hashed*
// evidence — never RIB contents. Cross-node checks (route-origin
// authorization) correlate verdicts by hash: a node recognizes the hash of
// a prefix it owns, and learns nothing about anyone else's prefixes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bgp/node_impl.hpp"

namespace dice::core {

/// What crosses the federation boundary. Everything here is safe to share:
/// no prefixes, no AS paths, no RIB contents in the clear (origin ASNs are
/// public data in BGP; prefixes travel only as hashes).
struct CheckVerdict {
  std::string check;                            ///< check name
  sim::NodeId node = sim::kInvalidNode;
  bool ok = true;
  std::map<std::string, std::uint64_t> counters;
  std::string summary;                          ///< redacted human summary

  /// (prefix_hash, origin ASN) claims for cross-node origin validation.
  struct OriginClaim {
    std::uint64_t prefix_hash = 0;
    bgp::Asn origin = 0;
  };
  std::vector<OriginClaim> origin_claims;

  /// Hashes of prefixes this node legitimately originates (from its own
  /// configuration — information the owner chooses to publish).
  std::vector<std::uint64_t> owned_prefix_hashes;
};

/// Salted prefix hashing for the narrow interface. All nodes of one system
/// share the salt (negotiated out of band); outsiders cannot invert it.
[[nodiscard]] std::uint64_t hash_prefix(const util::IpPrefix& prefix,
                                        std::uint64_t salt = 0xd1ce0000beefULL);

/// A local check: full access to the local node, narrow output. Checks see
/// nodes through the NodeImplementation boundary, so they apply to every
/// engine uniformly (heterogeneous federation, docs/HETEROGENEITY.md).
class LocalCheck {
 public:
  virtual ~LocalCheck() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual CheckVerdict run(const bgp::NodeImplementation& router) const = 0;
};

/// Programming-error detector: any handler crash observed on the node.
class CrashCheck final : public LocalCheck {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "crash"; }
  [[nodiscard]] CheckVerdict run(const bgp::NodeImplementation& router) const override;
};

/// Policy-conflict detector: per-prefix best-route flip counts above the
/// threshold indicate route oscillation (dispute wheel).
class OscillationCheck final : public LocalCheck {
 public:
  explicit OscillationCheck(std::uint32_t flip_threshold = 8)
      : flip_threshold_(flip_threshold) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "oscillation"; }
  [[nodiscard]] CheckVerdict run(const bgp::NodeImplementation& router) const override;

 private:
  std::uint32_t flip_threshold_;
};

/// Publishes origin claims from the local Loc-RIB plus the owned-prefix
/// hashes from the local configuration. Never fails locally — violations
/// only exist at aggregation time (OriginAggregator).
class OriginClaimCheck final : public LocalCheck {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "origin-claims"; }
  [[nodiscard]] CheckVerdict run(const bgp::NodeImplementation& router) const override;
};

/// Route sanity: every Loc-RIB entry's NEXT_HOP must be a configured
/// neighbor address (or self for local routes), and no accepted route may
/// carry the local ASN in its AS_PATH.
class RouteConsistencyCheck final : public LocalCheck {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "route-consistency"; }
  [[nodiscard]] CheckVerdict run(const bgp::NodeImplementation& router) const override;
};

/// Implementation-divergence detector (the differential oracle of
/// heterogeneous federation): replays every decision the node reports via
/// for_each_decision through the *reference* decision process
/// (bgp/decision.hpp) and flags any prefix where the node's selection
/// differs — same candidates, divergent outcome. The reference engine
/// maintains `loc_rib[prefix] == select_best(candidates)` as an invariant,
/// so this check never fires on it; on a foreign engine a firing means the
/// implementations would disagree about the network's routing. Evidence
/// crosses the federation boundary only as hashed prefixes.
class DifferentialCheck final : public LocalCheck {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "differential"; }
  [[nodiscard]] CheckVerdict run(const bgp::NodeImplementation& router) const override;
};

/// Cross-node aggregation of origin claims (the hijack detector). For each
/// prefix hash that some node declared as owned, every claim with a
/// different origin ASN is a violation (Multiple-Origin-AS conflict /
/// prefix hijack — the paper's operator-mistake fault class).
struct OriginViolation {
  std::uint64_t prefix_hash = 0;
  bgp::Asn legitimate_origin = 0;
  bgp::Asn observed_origin = 0;
  std::vector<sim::NodeId> observers;  ///< nodes whose Loc-RIB carries it
};

[[nodiscard]] std::vector<OriginViolation> aggregate_origin_claims(
    const std::vector<CheckVerdict>& verdicts,
    const std::map<std::uint64_t, bgp::Asn>& owners);

/// Builds the owner map (prefix hash -> owner ASN) from verdicts: each
/// node publishes hashes of the prefixes it originates.
[[nodiscard]] std::map<std::uint64_t, bgp::Asn> collect_owners(
    const std::vector<CheckVerdict>& verdicts,
    const std::map<sim::NodeId, bgp::Asn>& node_asns);

}  // namespace dice::core
