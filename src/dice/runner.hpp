// ContinuousRunner: the *online* in "online testing". The paper's DiCE
// "continuously and automatically explores the system behavior" — this
// component schedules exploration episodes periodically in simulated time,
// interleaved with whatever the live system is doing, and streams fault
// reports to a listener as they are found.
//
// The runner also demonstrates the intended deployment loop:
//   converge -> [serve ... episode ... serve ... episode ...]
// where each episode's snapshot captures whatever state the live system
// happens to be in (including mid-churn after failures — see
// examples/session_reset.cpp).
#pragma once

#include <functional>

#include "dice/orchestrator.hpp"

namespace dice::core {

struct RunnerOptions {
  sim::Time episode_period = 30 * sim::kSecond;  ///< sim-time between episodes
  std::size_t max_episodes = 0;                  ///< 0 = unbounded
  bool stop_on_fault = false;                    ///< stop after first faulty episode
};

class ContinuousRunner {
 public:
  /// Invoked for every newly discovered fault (already deduplicated).
  using FaultListener = std::function<void(const FaultReport&)>;
  /// Invoked after every episode with its result.
  using EpisodeListener = std::function<void(const EpisodeResult&)>;

  ContinuousRunner(Orchestrator& orchestrator, InputStrategy& strategy,
                   RunnerOptions options = {});

  void set_fault_listener(FaultListener listener) { on_fault_ = std::move(listener); }
  void set_episode_listener(EpisodeListener listener) { on_episode_ = std::move(listener); }

  /// Runs the online loop: advances the live simulation by episode_period,
  /// runs one episode, repeats — until max_episodes, stop_on_fault, or
  /// `wall_budget_ms` of host time elapses. Returns episodes run.
  std::size_t run(double wall_budget_ms = 10'000.0);

  [[nodiscard]] std::size_t episodes_run() const noexcept { return episodes_; }
  [[nodiscard]] std::size_t faults_found() const noexcept { return faults_; }

 private:
  Orchestrator& orchestrator_;
  InputStrategy& strategy_;
  RunnerOptions options_;
  FaultListener on_fault_;
  EpisodeListener on_episode_;
  std::size_t episodes_ = 0;
  std::size_t faults_ = 0;
};

}  // namespace dice::core
