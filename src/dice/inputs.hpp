// Input-subjection strategies (paper §2 step ii: "subjecting system nodes
// to many possible inputs that exercise node actions").
//
// DiCE's primary generator is concolic execution over the explorer's
// instrumented UPDATE handler (ConcolicStrategy, wrapping concolic::
// ConcolicEngine around bgp::sym_handle_update). Grammar-based fuzzing
// complements it with volume (GrammarStrategy; paper insight iii), and
// RandomStrategy is the blackbox baseline the evaluation compares against.
//
// Every strategy emits UPDATE message *bodies*; the orchestrator wraps
// them into wire messages before injecting them into clones.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bgp/sym_update.hpp"
#include "concolic/engine.hpp"
#include "dice/system.hpp"
#include "fuzz/bgp_grammar.hpp"
#include "fuzz/mutator.hpp"

namespace dice::core {

class InputStrategy {
 public:
  virtual ~InputStrategy() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Called at the start of each episode with the live system and the
  /// chosen explorer, so strategies can re-target current state/config.
  virtual void on_episode(const System& live, sim::NodeId explorer) = 0;

  /// Produces up to n UPDATE bodies for this episode.
  [[nodiscard]] virtual std::vector<util::Bytes> next_batch(std::size_t n) = 0;
};

/// Concolic exploration of the explorer's instrumented handler.
class ConcolicStrategy final : public InputStrategy {
 public:
  struct Options {
    concolic::EngineOptions engine;
    std::size_t grammar_seeds = 6;     ///< fresh seeds per episode
    double seed_corruption = 0.02;
    std::uint64_t rng_seed = 0xc0c0;
    /// Optional shared solver memo (explore::SolverCache). The engine is
    /// rebuilt every episode, but memoized constraint solutions survive —
    /// identical negations are never re-solved across episodes or clones.
    concolic::SolverMemo* solver_memo = nullptr;
  };

  ConcolicStrategy();
  explicit ConcolicStrategy(Options options);
  ~ConcolicStrategy() override;

  [[nodiscard]] std::string_view name() const noexcept override { return "concolic"; }
  void on_episode(const System& live, sim::NodeId explorer) override;
  [[nodiscard]] std::vector<util::Bytes> next_batch(std::size_t n) override;

  /// Aggregated engine statistics across all episodes so far.
  [[nodiscard]] const concolic::EngineStats& stats() const noexcept { return total_stats_; }
  /// Crashing inputs the engine found during generation (already known
  /// programming errors before any clone runs).
  [[nodiscard]] const std::vector<concolic::CrashInfo>& crashes() const noexcept {
    return crashes_;
  }

 private:
  Options options_;
  util::Rng rng_;
  bgp::RouterConfig explorer_config_;  ///< stable storage for the env
  bgp::SymHandlerEnv env_;
  std::unique_ptr<concolic::ConcolicEngine> engine_;
  concolic::EngineStats total_stats_;
  std::vector<concolic::CrashInfo> crashes_;
};

/// Grammar-based fuzzing seeded from the explorer's configuration.
/// `strict` restricts the grammar to protocol-valid productions (the
/// honest blackbox baseline: no pre-baked invalid shapes).
class GrammarStrategy final : public InputStrategy {
 public:
  explicit GrammarStrategy(double corruption_rate = 0.05,
                           std::uint64_t rng_seed = 0x96a3, bool strict = false);

  [[nodiscard]] std::string_view name() const noexcept override { return "grammar"; }
  void on_episode(const System& live, sim::NodeId explorer) override;
  [[nodiscard]] std::vector<util::Bytes> next_batch(std::size_t n) override;

 private:
  double corruption_rate_;
  util::Rng rng_;
  bool strict_;
  std::unique_ptr<fuzz::BgpUpdateGrammar> grammar_;
};

/// Blackbox baseline: random bytes with UPDATE-body-plausible lengths.
class RandomStrategy final : public InputStrategy {
 public:
  explicit RandomStrategy(std::uint64_t rng_seed = 0x7a11);

  [[nodiscard]] std::string_view name() const noexcept override { return "random"; }
  void on_episode(const System& live, sim::NodeId explorer) override;
  [[nodiscard]] std::vector<util::Bytes> next_batch(std::size_t n) override;

 private:
  util::Rng rng_;
};

}  // namespace dice::core
