// System: a running instance of a blueprint — simulator + network + BGP
// routers + snapshot machinery. DiCE uses two kinds of instances:
//
//   - the *live* system, which runs "for real" and is never disturbed
//     beyond marker frames (paper: DiCE "operates alongside the deployed
//     system but in isolation from it");
//   - *clones*: shadow instances reconstructed from a consistent snapshot
//     (System::clone_from), where inputs are subjected and checks run.
#pragma once

#include <memory>
#include <vector>

#include "bgp/router.hpp"
#include "bgp/topology.hpp"
#include "snapshot/coordinator.hpp"
#include "snapshot/store.hpp"

namespace dice::core {

class System {
 public:
  /// Builds a live system: routers attached, links connected, sessions
  /// NOT yet started (call start()).
  explicit System(bgp::SystemBlueprint blueprint);
  ~System();
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Starts every router (session establishment + route origination).
  void start();

  /// Runs until no foreground events remain. Returns true on quiescence
  /// within the budgets (a dispute wheel never quiesces — that outcome is
  /// itself a check signal).
  bool converge(std::size_t max_events = 2'000'000,
                sim::Time max_time = 3600 * sim::kSecond);

  /// Takes a consistent snapshot with `initiator` running the marker
  /// protocol; drives the simulation until the snapshot completes.
  /// Returns the snapshot id, or 0 on failure (e.g. partitioned system).
  [[nodiscard]] snapshot::SnapshotId take_snapshot(sim::NodeId initiator);

  /// Builds a clone of `snapshot` (same blueprint, restored state,
  /// re-injected in-flight frames) as a fresh isolated System.
  [[nodiscard]] static std::unique_ptr<System> clone_from(
      const bgp::SystemBlueprint& blueprint, const snapshot::Snapshot& snap);

  /// Injects a raw protocol message into `target` as if sent by `from`
  /// (DiCE input subjection on clones).
  void inject_message(sim::NodeId from, sim::NodeId target, util::Bytes message);

  [[nodiscard]] std::size_t size() const noexcept { return routers_.size(); }
  [[nodiscard]] bgp::BgpRouter& router(sim::NodeId id) { return *routers_.at(id); }
  [[nodiscard]] const bgp::BgpRouter& router(sim::NodeId id) const { return *routers_.at(id); }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] sim::Network& network() noexcept { return net_; }
  [[nodiscard]] const bgp::SystemBlueprint& blueprint() const noexcept { return blueprint_; }
  [[nodiscard]] snapshot::SnapshotStore& snapshots() noexcept { return store_; }

  /// Sum of all routers' Loc-RIB sizes (progress metric for benches).
  [[nodiscard]] std::size_t total_loc_rib_routes() const;
  /// All established sessions count (both directions).
  [[nodiscard]] std::size_t established_sessions() const;
  /// node id -> ASN map for the origin aggregation step.
  [[nodiscard]] std::map<sim::NodeId, bgp::Asn> node_asns() const;

 private:
  bgp::SystemBlueprint blueprint_;
  sim::Simulator sim_;
  sim::Network net_;
  snapshot::SnapshotStore store_;
  snapshot::SnapshotCoordinator coordinator_;
  std::vector<std::unique_ptr<bgp::BgpRouter>> routers_;
};

}  // namespace dice::core
