// System: a running instance of a blueprint — simulator + network + BGP
// routers + snapshot machinery. DiCE uses two kinds of instances:
//
//   - the *live* system, which runs "for real" and is never disturbed
//     beyond marker frames (paper: DiCE "operates alongside the deployed
//     system but in isolation from it");
//   - *clones*: shadow instances reconstructed from a consistent snapshot
//     (System::clone_from), where inputs are subjected and checks run.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "bgp/node_impl.hpp"
#include "bgp/router.hpp"
#include "bgp/topology.hpp"
#include "snapshot/coordinator.hpp"
#include "snapshot/live_state.hpp"
#include "snapshot/prepared.hpp"
#include "snapshot/store.hpp"

namespace dice::core {

/// Blueprint-derived immutables computed once and shared by every System
/// instance of that blueprint: the live system, every legacy clone, and
/// every clone-arena System. Building ~32 clones per episode used to redo
/// this work (address book, membership set) 32 times.
class SystemPrototype {
 public:
  explicit SystemPrototype(bgp::SystemBlueprint blueprint);

  [[nodiscard]] const bgp::SystemBlueprint& blueprint() const noexcept {
    return blueprint_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return blueprint_.size(); }
  [[nodiscard]] const std::shared_ptr<const std::map<util::IpAddress, sim::NodeId>>&
  address_book() const noexcept {
    return address_book_;
  }
  [[nodiscard]] const std::set<sim::NodeId>& members() const noexcept { return members_; }

 private:
  bgp::SystemBlueprint blueprint_;
  std::shared_ptr<const std::map<util::IpAddress, sim::NodeId>> address_book_;
  std::set<sim::NodeId> members_;
};

class System {
 public:
  /// Builds a live system: routers attached, links connected, sessions
  /// NOT yet started (call start()). The blueprint overload derives a
  /// private prototype; the shared-prototype overload is the cheap path
  /// (clone arenas construct many Systems from one prototype).
  explicit System(bgp::SystemBlueprint blueprint);
  explicit System(std::shared_ptr<const SystemPrototype> prototype);
  ~System();
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Starts every router (session establishment + route origination).
  void start();

  /// Runs until no foreground events remain. Returns true on quiescence
  /// within the budgets (a dispute wheel never quiesces — that outcome is
  /// itself a check signal).
  bool converge(std::size_t max_events = 2'000'000,
                sim::Time max_time = 3600 * sim::kSecond);

  struct ConvergeOutcome {
    bool quiesced = false;
    bool oscillation_exit = false;  ///< stopped early: a prefix hit the flip limit
  };
  /// converge() with an optional oscillation early-exit: when
  /// `flip_exit_threshold` > 0, the run stops as soon as any router's
  /// per-prefix best-route flip count reaches it (polled every few hundred
  /// events, deterministically). The oscillation evidence is already
  /// conclusive at that point — burning the rest of the event budget on a
  /// dispute wheel proves nothing more. Threshold 0 reproduces converge()
  /// exactly.
  [[nodiscard]] ConvergeOutcome converge_bounded(std::size_t max_events,
                                                 sim::Time max_time,
                                                 std::uint32_t flip_exit_threshold = 0);

  /// Takes a consistent snapshot with `initiator` running the marker
  /// protocol; drives the simulation until the snapshot completes.
  /// Returns the snapshot id, or 0 on failure (e.g. partitioned system).
  /// With delta checkpoints enabled, routers whose state did not change
  /// since the previous prepared snapshot write a one-byte "same as
  /// baseline" envelope instead of a full checkpoint.
  [[nodiscard]] snapshot::SnapshotId take_snapshot(sim::NodeId initiator);

  /// Enables delta checkpoints: each take_snapshot advertises the last
  /// successfully *prepared* snapshot as the baseline, and prepare_snapshot
  /// resolves delta envelopes against it. Off by default — callers that
  /// restore through the legacy clone_from path (raw bytes, no baseline)
  /// must leave it off; the Orchestrator turns it on only when every
  /// restore goes through PreparedSnapshot.
  void set_delta_checkpoints(bool enabled) noexcept { delta_checkpoints_ = enabled; }
  [[nodiscard]] bool delta_checkpoints() const noexcept { return delta_checkpoints_; }

  /// Decode-once: parses every checkpoint of stored snapshot `id` into a
  /// PreparedSnapshot, publishes it through the store (shared_ptr), and
  /// returns it. Idempotent — a second call returns the published form.
  /// nullptr when the snapshot is unknown or malformed.
  [[nodiscard]] std::shared_ptr<const snapshot::PreparedSnapshot> prepare_snapshot(
      snapshot::SnapshotId id);

  /// Re-seeds THIS instance from pre-decoded state: rewinds simulator and
  /// channels, resets every router, applies the typed checkpoints and
  /// re-injects the prepared frame schedule. No byte decoding, no
  /// construction — the restore-many half of decode-once/restore-many.
  /// The result is bit-identical to a fresh clone_from of the same cut.
  /// `resume_at` fast-forwards the rewound clock before any timer re-arms
  /// (live-state resume); clones keep the default 0.
  [[nodiscard]] util::Status reset_from(const snapshot::PreparedSnapshot& prepared,
                                        sim::Time resume_at = 0);

  /// Raw-cut sibling of reset_from: re-seeds THIS instance straight from an
  /// encoded Snapshot via the routers' fused one-shot restore — parse and
  /// install in a single pass, no intermediate shareable decode. Same reset
  /// sequence, same apply order, same frame-injection offsets, so the
  /// result is bit-identical to reset_from(prepared-form-of-snap). This is
  /// the warm-restart path: a daemon resuming a persisted cut restores it
  /// exactly once, so the decode-once/restore-many split buys nothing and
  /// the fused restore halves the per-route bill. Delta-encoded cuts
  /// (kCheckpointSameAsBaseline envelopes) fail with the usual typed error
  /// — persisted captures are always standalone (live_state.hpp).
  [[nodiscard]] util::Status reset_from_raw(const snapshot::Snapshot& snap,
                                            sim::Time resume_at = 0);

  /// Captures this (converged, live) system's state as the cacheable
  /// bootstrap artifact: takes a consistent snapshot, prepares it
  /// (decode-once) and wraps it with the simulator resume point. The raw
  /// snapshot is erased from the store again — the capture is standalone
  /// and must not perturb the per-episode snapshot lifecycle. Marker
  /// frames sweep the system but leave every router's protocol state
  /// untouched, so the caller's own episodes are unaffected. nullptr when
  /// the snapshot cannot complete (partition) or fails to prepare.
  [[nodiscard]] std::shared_ptr<snapshot::PreparedLiveState> capture_live_state(
      sim::NodeId initiator = 0);

  /// Re-seeds THIS instance as a *live* system from a captured bootstrap
  /// state: reset_from the embedded cut, with the clock resumed at the
  /// donor's bootstrap end. Valid on a freshly constructed (never started)
  /// System — the LiveStateCache fast path that replaces start()+converge.
  [[nodiscard]] util::Status resume_from(const snapshot::PreparedLiveState& state);

  /// Builds a clone of `snapshot` (same blueprint, restored state,
  /// re-injected in-flight frames) as a fresh isolated System — the legacy
  /// decode-per-clone path, kept as the equivalence baseline.
  [[nodiscard]] static std::unique_ptr<System> clone_from(
      const bgp::SystemBlueprint& blueprint, const snapshot::Snapshot& snap);

  /// Injects a raw protocol message into `target` as if sent by `from`
  /// (DiCE input subjection on clones).
  void inject_message(sim::NodeId from, sim::NodeId target, util::Bytes message);

  [[nodiscard]] std::size_t size() const noexcept { return routers_.size(); }
  /// Nodes are NodeImplementations — the harness never assumes which engine
  /// is behind a node id (heterogeneous federation, docs/HETEROGENEITY.md).
  [[nodiscard]] bgp::NodeImplementation& router(sim::NodeId id) { return *routers_.at(id); }
  [[nodiscard]] const bgp::NodeImplementation& router(sim::NodeId id) const {
    return *routers_.at(id);
  }
  /// Checked downcast to the reference engine, for tests/harnesses that
  /// genuinely need BgpRouter internals (per-session introspection, adj-RIB
  /// access). Throws std::logic_error when the node runs another
  /// implementation.
  [[nodiscard]] bgp::BgpRouter& bgp_router(sim::NodeId id);
  [[nodiscard]] const bgp::BgpRouter& bgp_router(sim::NodeId id) const;
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] sim::Network& network() noexcept { return net_; }
  [[nodiscard]] const bgp::SystemBlueprint& blueprint() const noexcept {
    return prototype_->blueprint();
  }
  [[nodiscard]] const std::shared_ptr<const SystemPrototype>& prototype() const noexcept {
    return prototype_;
  }
  [[nodiscard]] snapshot::SnapshotStore& snapshots() noexcept { return store_; }

  /// Sum of all routers' Loc-RIB sizes (progress metric for benches).
  [[nodiscard]] std::size_t total_loc_rib_routes() const;
  /// All established sessions count (both directions).
  [[nodiscard]] std::size_t established_sessions() const;
  /// node id -> ASN map for the origin aggregation step.
  [[nodiscard]] std::map<sim::NodeId, bgp::Asn> node_asns() const;

 private:
  std::shared_ptr<const SystemPrototype> prototype_;
  sim::Simulator sim_;
  sim::Network net_;
  snapshot::SnapshotStore store_;
  snapshot::SnapshotCoordinator coordinator_;
  std::vector<std::unique_ptr<bgp::NodeImplementation>> routers_;
  bool delta_checkpoints_ = false;
  /// Baseline for the next delta snapshot: the most recently prepared
  /// snapshot. The shared_ptr keeps its decoded checkpoints alive even
  /// after the store trims the entry, so delta resolution never dangles.
  std::shared_ptr<const snapshot::PreparedSnapshot> delta_baseline_;
};

}  // namespace dice::core
