// RouteEventBus: the spine of the bgp2 engine's route pipeline. Where the
// reference BgpRouter re-runs its decision process synchronously inside
// every Adj-RIB-In mutation, this engine records *events* ("prefix learned
// from peer", "prefix withdrawn", "peer lost") on a FIFO bus and decides
// once per dirty prefix when the bus drains at the end of the triggering
// protocol event. The observable outcome at event boundaries is identical
// (the drain completes before control returns to the simulator); the
// internal structure — and therefore the bug surface — is not, which is
// exactly what a heterogeneous federation looks like.
#pragma once

#include <cstdint>
#include <deque>
#include <set>

#include "sim/network.hpp"
#include "util/ip.hpp"

namespace dice::bgp2 {

struct RouteEvent {
  enum class Kind : std::uint8_t { kLearned, kWithdrawn, kPeerLost };
  Kind kind = Kind::kLearned;
  util::IpPrefix prefix;
  sim::NodeId peer = sim::kInvalidNode;
};

class RouteEventBus {
 public:
  struct Stats {
    std::uint64_t posted = 0;     ///< events accepted onto the bus
    std::uint64_t coalesced = 0;  ///< events folded into an already-dirty prefix
    std::uint64_t drains = 0;     ///< drain passes that processed >= 1 prefix
  };

  /// Records an event. Multiple events against the same prefix coalesce
  /// into one pending decision; FIFO order of first-dirtying is preserved
  /// so the decision order is deterministic.
  void post(const RouteEvent& event) {
    ++stats_.posted;
    if (dirty_.insert(event.prefix).second) {
      queue_.push_back(event.prefix);
    } else {
      ++stats_.coalesced;
    }
  }

  /// Runs `decide(prefix)` for every dirty prefix in posting order until
  /// the bus is empty. Reentrant calls (a decision posting follow-up
  /// events) fold into the active drain instead of recursing.
  template <typename Fn>
  void drain(Fn&& decide) {
    if (draining_ || queue_.empty()) return;
    draining_ = true;
    ++stats_.drains;
    while (!queue_.empty()) {
      const util::IpPrefix prefix = queue_.front();
      queue_.pop_front();
      dirty_.erase(prefix);
      decide(prefix);
    }
    draining_ = false;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  void reset() {
    queue_.clear();
    dirty_.clear();
    draining_ = false;
    stats_ = {};
  }

 private:
  std::deque<util::IpPrefix> queue_;
  std::set<util::IpPrefix> dirty_;
  bool draining_ = false;
  Stats stats_;
};

}  // namespace dice::bgp2
