#include "bgp2/fsm.hpp"

#include <algorithm>

#include "bgp/codec.hpp"
#include "util/log.hpp"

namespace dice::bgp2 {

using bgp::Message;
using bgp::NotifCode;
using bgp::SessionState;

namespace {
const util::Logger& logger() {
  static util::Logger instance("bgp2.fsm");
  return instance;
}
}  // namespace

PeerFsm::PeerFsm(Host& host, sim::NodeId peer_node, const bgp::NeighborConfig& neighbor,
                 const bgp::RouterConfig& local)
    : host_(host), peer_node_(peer_node), neighbor_(neighbor), local_(local) {}

void PeerFsm::stop(NotifCode code, std::uint8_t subcode, const std::string& reason) {
  if (state_ == SessionState::kIdle) return;
  bgp::NotificationMessage notif;
  notif.code = code;
  notif.subcode = subcode;
  host_.fsm_send(peer_node_, Message{notif}, /*background=*/false);
  enter_idle(reason);
}

void PeerFsm::reset_transport(const std::string& reason) {
  dispatch(Event::kTransportFailed, nullptr);
  (void)reason;
}

void PeerFsm::handle_message(const Message& msg) {
  struct Classify {
    Event operator()(const bgp::OpenMessage&) const { return Event::kOpenReceived; }
    Event operator()(const bgp::UpdateMessage&) const { return Event::kUpdateReceived; }
    Event operator()(const bgp::NotificationMessage&) const {
      return Event::kNotificationReceived;
    }
    Event operator()(const bgp::KeepaliveMessage&) const {
      return Event::kKeepaliveReceived;
    }
  };
  dispatch(std::visit(Classify{}, msg), &msg);
}

// The whole machine in one table: outer switch on state, inner on event.
// Every (state, event) pair either transitions, errors out with the RFC's
// NOTIFICATION, or deliberately ignores the input.
void PeerFsm::dispatch(Event event, const Message* msg) {
  switch (state_) {
    case SessionState::kIdle:
      switch (event) {
        case Event::kManualStart:
          passive_open_ = false;
          send_open();
          break;
        case Event::kOpenReceived:
          // Passive open: the peer moved first. Answer with our OPEN, then
          // evaluate theirs from OpenSent.
          passive_open_ = true;
          send_open();
          validate_open(std::get<bgp::OpenMessage>(*msg));
          break;
        default:
          break;  // everything else is noise while Idle
      }
      break;

    case SessionState::kOpenSent:
      switch (event) {
        case Event::kOpenReceived:
          if (!passive_open_) {
            // Both ends opened simultaneously; the single logical transport
            // merges the two connection attempts, so detection is the only
            // action left — count it and proceed.
            ++collisions_;
          }
          validate_open(std::get<bgp::OpenMessage>(*msg));
          break;
        case Event::kKeepaliveReceived:
          stop(NotifCode::kFsmError, 0, "KEEPALIVE in OpenSent");
          break;
        case Event::kUpdateReceived:
          stop(NotifCode::kFsmError, 0, "UPDATE in OpenSent");
          break;
        case Event::kNotificationReceived:
          enter_idle("received " + std::get<bgp::NotificationMessage>(*msg).to_string());
          break;
        case Event::kHoldTimerExpired: {
          bgp::NotificationMessage notif;
          notif.code = NotifCode::kHoldTimerExpired;
          host_.fsm_send(peer_node_, Message{notif}, /*background=*/false);
          enter_idle("hold timer expired");
          break;
        }
        case Event::kTransportFailed:
          enter_idle("transport failed");
          break;
        default:
          break;
      }
      break;

    case SessionState::kOpenConfirm:
      switch (event) {
        case Event::kKeepaliveReceived:
          enter_established();
          break;
        case Event::kOpenReceived:
          stop(NotifCode::kFsmError, 0, "OPEN in OpenConfirm");
          break;
        case Event::kUpdateReceived:
          stop(NotifCode::kFsmError, 0, "UPDATE in OpenConfirm");
          break;
        case Event::kNotificationReceived:
          enter_idle("received " + std::get<bgp::NotificationMessage>(*msg).to_string());
          break;
        case Event::kHoldTimerExpired: {
          bgp::NotificationMessage notif;
          notif.code = NotifCode::kHoldTimerExpired;
          host_.fsm_send(peer_node_, Message{notif}, /*background=*/false);
          enter_idle("hold timer expired");
          break;
        }
        case Event::kTransportFailed:
          enter_idle("transport failed");
          break;
        default:
          break;
      }
      break;

    case SessionState::kEstablished:
      switch (event) {
        case Event::kUpdateReceived:
          arm_hold_timer();
          host_.fsm_update(peer_node_, std::get<bgp::UpdateMessage>(*msg));
          break;
        case Event::kKeepaliveReceived:
          arm_hold_timer();
          break;
        case Event::kOpenReceived:
          stop(NotifCode::kFsmError, 0, "OPEN in Established");
          break;
        case Event::kNotificationReceived:
          enter_idle("received " + std::get<bgp::NotificationMessage>(*msg).to_string());
          break;
        case Event::kHoldTimerExpired: {
          bgp::NotificationMessage notif;
          notif.code = NotifCode::kHoldTimerExpired;
          host_.fsm_send(peer_node_, Message{notif}, /*background=*/false);
          enter_idle("hold timer expired");
          break;
        }
        case Event::kTransportFailed:
          enter_idle("transport failed");
          break;
        default:
          break;
      }
      break;
  }
}

void PeerFsm::send_open() {
  bgp::OpenMessage open;
  if (local_.asn > 0xffff) {
    // RFC 6793: AS_TRANS in the 2-octet field, real ASN via the capability.
    open.my_asn = static_cast<std::uint16_t>(bgp::kAsTrans);
    if (local_.as4_capable) bgp::append_as4_capability(open.opt_params, local_.asn);
  } else {
    open.my_asn = static_cast<std::uint16_t>(local_.asn);
  }
  open.hold_time = local_.hold_time;
  open.router_id = local_.router_id;
  host_.fsm_send(peer_node_, Message{open}, /*background=*/false);
  state_ = SessionState::kOpenSent;
  negotiated_hold_ = local_.hold_time;
  host_.fsm_state_dirty();
  arm_hold_timer();
}

void PeerFsm::validate_open(const bgp::OpenMessage& open) {
  // Same AS4 negotiation as the reference engine (bgp/session.cpp): trust
  // the capability when we understand it; accept AS_TRANS from a 4-byte
  // neighbor when we do not.
  bgp::Asn announced = open.my_asn;
  if (local_.as4_capable) {
    if (std::optional<bgp::Asn> as4 = bgp::find_as4_capability(open.opt_params)) {
      announced = *as4;
    }
  }
  const bool as_matches = announced == neighbor_.asn ||
                          (announced == bgp::kAsTrans && neighbor_.asn > 0xffff);
  if (!as_matches) {
    stop(NotifCode::kOpenMessageError, 2,
         "peer AS mismatch: expected " + std::to_string(neighbor_.asn) + " got " +
             std::to_string(announced));
    return;
  }
  peer_router_id_ = open.router_id;
  negotiated_hold_ = std::min<std::uint16_t>(local_.hold_time, open.hold_time);
  host_.fsm_send(peer_node_, Message{bgp::KeepaliveMessage{}}, /*background=*/false);
  state_ = SessionState::kOpenConfirm;
  host_.fsm_state_dirty();
  arm_hold_timer();
}

void PeerFsm::enter_established() {
  state_ = SessionState::kEstablished;
  host_.fsm_state_dirty();
  arm_hold_timer();
  arm_keepalive_timer();
  logger().debug() << local_.name << " fsm to AS" << neighbor_.asn << " established";
  host_.fsm_established(peer_node_);
}

void PeerFsm::enter_idle(const std::string& reason) {
  const bool was_active = state_ != SessionState::kIdle;
  state_ = SessionState::kIdle;
  peer_router_id_ = 0;
  negotiated_hold_ = 0;
  passive_open_ = false;
  if (was_active) host_.fsm_state_dirty();
  cancel_timers();
  if (was_active) {
    logger().debug() << local_.name << " fsm to AS" << neighbor_.asn
                     << " down: " << reason;
    host_.fsm_down(peer_node_, reason);
  }
}

void PeerFsm::arm_hold_timer() {
  hold_timer_.cancel();
  if (negotiated_hold_ == 0) return;  // hold time 0 disables the timer (§4.2)
  hold_timer_ = host_.fsm_simulator().schedule_after(
      static_cast<sim::Time>(negotiated_hold_) * sim::kSecond,
      [this] { dispatch(Event::kHoldTimerExpired, nullptr); },
      /*background=*/true);
}

void PeerFsm::arm_keepalive_timer() {
  keepalive_timer_.cancel();
  if (negotiated_hold_ == 0) return;
  const sim::Time interval =
      std::max<sim::Time>(1, static_cast<sim::Time>(negotiated_hold_) / 3) * sim::kSecond;
  keepalive_timer_ = host_.fsm_simulator().schedule_after(
      interval,
      [this] {
        if (state_ == SessionState::kEstablished) {
          Message ka{bgp::KeepaliveMessage{}};
          host_.fsm_send(peer_node_, ka, /*background=*/true);
          arm_keepalive_timer();
        }
      },
      /*background=*/true);
}

void PeerFsm::cancel_timers() {
  hold_timer_.cancel();
  keepalive_timer_.cancel();
}

bgp::SessionCheckpoint PeerFsm::to_checkpoint() const noexcept {
  bgp::SessionCheckpoint checkpoint;
  checkpoint.state = state_;
  checkpoint.peer_router_id = peer_router_id_;
  checkpoint.negotiated_hold = negotiated_hold_;
  return checkpoint;
}

void PeerFsm::apply_checkpoint(const bgp::SessionCheckpoint& checkpoint) {
  cancel_timers();
  host_.fsm_state_dirty();
  state_ = checkpoint.state;
  peer_router_id_ = checkpoint.peer_router_id;
  negotiated_hold_ = checkpoint.negotiated_hold;
  passive_open_ = false;
  // Timers implied by the restored state are re-armed fresh; elapsed
  // fractions are not preserved (same approximation as the reference).
  if (state_ == SessionState::kEstablished) {
    arm_hold_timer();
    arm_keepalive_timer();
  } else if (state_ != SessionState::kIdle) {
    arm_hold_timer();
  }
}

void PeerFsm::reset_for_reuse() {
  cancel_timers();
  host_.fsm_state_dirty();
  state_ = SessionState::kIdle;
  peer_router_id_ = 0;
  negotiated_hold_ = 0;
  passive_open_ = false;
  collisions_ = 0;
}

}  // namespace dice::bgp2
