// FsmEngine: the second, independently structured BGP implementation behind
// the NodeImplementation boundary. It interoperates with the reference
// BgpRouter over the shared wire codec and emits the same v2 checkpoint
// stream, but its internals follow the standalone-FSM-library shape instead
// of the monolithic-router shape:
//   - per-peer PeerFsm with an explicit (state, event) dispatch table and
//     OPEN-collision counting (bgp2/fsm.hpp);
//   - a RouteEventBus between import and decision: RIB mutations post
//     events, decisions run batched per dirty prefix when the bus drains at
//     the end of the protocol event (bgp2/bus.hpp);
//   - an injectable decision defect (bugs::kLongPathPreferred) the reference
//     engine does not have — the seeded divergence the differential check
//     (dice/checks.hpp) exists to catch.
#pragma once

#include <map>
#include <memory>

#include "bgp/checkpoint_codec.hpp"
#include "bgp/codec.hpp"
#include "bgp/config.hpp"
#include "bgp/decision.hpp"
#include "bgp/node_impl.hpp"
#include "bgp/rib.hpp"
#include "bgp2/bus.hpp"
#include "bgp2/fsm.hpp"

namespace dice::bgp2 {

/// Registry id of this engine (registered in bgp/node_impl.cpp).
inline constexpr std::string_view kFsmEngineImplementationId = "fsm";

/// Typed form of an FsmEngine checkpoint: the shared v2 stream shape,
/// parsed once and applied to any number of clones.
struct FsmCheckpoint final : snapshot::DecodedCheckpoint {
  bgp::ckpt::RouterStateV2 state;
};

class FsmEngine final : public bgp::NodeImplementation, public PeerFsm::Host {
 public:
  FsmEngine(sim::Network& network, sim::NodeId id, bgp::RouterConfig config,
            std::shared_ptr<const std::map<util::IpAddress, sim::NodeId>> address_book);

  // --- NodeImplementation ---------------------------------------------------
  [[nodiscard]] std::string_view implementation_id() const noexcept override {
    return kFsmEngineImplementationId;
  }
  void start() override;
  [[nodiscard]] const bgp::RouterConfig& config() const noexcept override {
    return config_;
  }
  [[nodiscard]] const bgp::Rib& loc_rib() const noexcept override { return loc_rib_; }
  [[nodiscard]] const std::map<util::IpPrefix, std::uint32_t>& best_flips()
      const noexcept override {
    return best_flips_;
  }
  [[nodiscard]] std::uint32_t max_best_flips() const noexcept override {
    return max_best_flips_;
  }
  void reset_flip_counters() override {
    best_flips_.clear();
    max_best_flips_ = 0;
    ++state_version_;
  }
  [[nodiscard]] const Stats& stats() const noexcept override { return stats_; }
  [[nodiscard]] std::size_t established_session_count() const override;
  void set_auto_restart(bool enabled) noexcept override { auto_restart_ = enabled; }
  void reset_session(sim::NodeId peer) override;
  void reset_for_reuse() override;
  void for_each_decision(
      const std::function<void(const DecisionView&)>& fn) const override;

  // --- introspection (tests) ------------------------------------------------
  [[nodiscard]] PeerFsm* fsm(sim::NodeId peer);
  [[nodiscard]] const bgp::Rib* adj_rib_in(sim::NodeId peer) const;
  [[nodiscard]] const RouteEventBus& bus() const noexcept { return bus_; }
  /// Sum of per-peer OPEN-collision detections.
  [[nodiscard]] std::uint64_t collisions_detected() const;
  [[nodiscard]] std::uint64_t state_version() const noexcept { return state_version_; }

  // --- Checkpointable -------------------------------------------------------
  void checkpoint(util::ByteWriter& writer) const override;
  [[nodiscard]] util::Result<std::shared_ptr<const snapshot::DecodedCheckpoint>> parse(
      util::ByteReader& reader) const override;
  [[nodiscard]] util::Status apply(const snapshot::DecodedCheckpoint& state) override;
  [[nodiscard]] std::uint64_t encode_checkpoint(util::ByteWriter& writer,
                                                snapshot::SnapshotId this_snapshot,
                                                snapshot::SnapshotId baseline) override;

  // --- PeerFsm::Host --------------------------------------------------------
  void fsm_send(sim::NodeId peer, const bgp::Message& msg, bool background) override;
  void fsm_established(sim::NodeId peer) override;
  void fsm_down(sim::NodeId peer, const std::string& reason) override;
  void fsm_update(sim::NodeId peer, const bgp::UpdateMessage& update) override;
  void fsm_state_dirty() override { ++state_version_; }
  [[nodiscard]] sim::Simulator& fsm_simulator() override {
    return network().simulator();
  }

 protected:
  // --- SnapshotParticipant --------------------------------------------------
  void deliver_data(sim::NodeId from, const util::Bytes& payload) override;

 private:
  void import_update(sim::NodeId peer, const bgp::UpdateMessage& update);
  [[nodiscard]] std::vector<bgp::Route> collect_candidates(
      const util::IpPrefix& prefix) const;
  /// The decision step the bus drain runs per dirty prefix. Selection is
  /// the reference procedure unless bugs::kLongPathPreferred is set.
  [[nodiscard]] std::size_t choose_best(const std::vector<bgp::Route>& candidates) const;
  void decide(const util::IpPrefix& prefix);
  void propagate(const util::IpPrefix& prefix);
  void export_to_peer(PeerFsm& fsm, const util::IpPrefix& prefix);
  void send_full_table(PeerFsm& fsm);
  void schedule_restart(sim::NodeId peer);

  bgp::RouterConfig config_;
  std::shared_ptr<const std::map<util::IpAddress, sim::NodeId>> address_book_;
  std::map<sim::NodeId, std::unique_ptr<PeerFsm>> fsms_;

  RouteEventBus bus_;
  std::map<sim::NodeId, bgp::Rib> adj_in_;
  bgp::Rib loc_rib_;
  std::map<sim::NodeId, bgp::Rib> adj_out_;
  std::map<util::IpPrefix, std::uint32_t> best_flips_;
  std::uint32_t max_best_flips_ = 0;

  Stats stats_;
  bool auto_restart_ = true;
  sim::Time restart_delay_ = sim::kSecond;

  // Delta-snapshot bookkeeping, same contract as the reference engine:
  // over-bumping state_version_ is safe, under-bumping would ship a stale
  // delta.
  std::uint64_t state_version_ = 0;
  struct LastCheckpoint {
    snapshot::SnapshotId snapshot = 0;
    std::uint64_t version = 0;
    std::uint64_t hash = 0;
  };
  LastCheckpoint last_checkpoint_;
};

}  // namespace dice::bgp2
