// PeerFsm: the bgp2 engine's per-neighbor finite state machine. Unlike the
// reference Session (bgp/session.hpp), which spreads its transitions across
// per-message handlers, this FSM is written as one explicit event-dispatch
// table: every (state, event) pair is visible in a single switch, the style
// of standalone BGP FSM libraries. It speaks the identical wire protocol
// (shared codec, same OPEN/KEEPALIVE choreography, same AS4 capability
// handling), reuses SessionState values so its checkpoints are
// byte-compatible with the v2 stream, and additionally *counts* OPEN
// crossings (an OPEN arriving while in an actively-entered OpenSent)
// instead of resolving them silently; see collisions_detected() for what
// that means over the simulator's merged transport.
#pragma once

#include <cstdint>
#include <string>

#include "bgp/config.hpp"
#include "bgp/message.hpp"
#include "bgp/session.hpp"  // SessionState + SessionCheckpoint (shared checkpoint shape)
#include "sim/network.hpp"

namespace dice::bgp2 {

class PeerFsm {
 public:
  /// What the FSM needs from its owning engine.
  class Host {
   public:
    virtual ~Host() = default;
    virtual void fsm_send(sim::NodeId peer, const bgp::Message& msg, bool background) = 0;
    virtual void fsm_established(sim::NodeId peer) = 0;
    /// Any transition out of Established or a failed setup.
    virtual void fsm_down(sim::NodeId peer, const std::string& reason) = 0;
    virtual void fsm_update(sim::NodeId peer, const bgp::UpdateMessage& update) = 0;
    /// Checkpointed FSM state changed (delta-snapshot churn signal).
    virtual void fsm_state_dirty() = 0;
    [[nodiscard]] virtual sim::Simulator& fsm_simulator() = 0;
  };

  /// The FSM's input alphabet. Wire messages and timer expiries funnel
  /// through the same dispatch as administrative actions.
  enum class Event : std::uint8_t {
    kManualStart,
    kManualStop,
    kTransportFailed,
    kOpenReceived,
    kKeepaliveReceived,
    kUpdateReceived,
    kNotificationReceived,
    kHoldTimerExpired,
  };

  PeerFsm(Host& host, sim::NodeId peer_node, const bgp::NeighborConfig& neighbor,
          const bgp::RouterConfig& local);

  void start() { dispatch(Event::kManualStart, nullptr); }
  void stop(bgp::NotifCode code, std::uint8_t subcode, const std::string& reason);
  void reset_transport(const std::string& reason);
  void handle_message(const bgp::Message& msg);

  [[nodiscard]] bgp::SessionState state() const noexcept { return state_; }
  [[nodiscard]] bool established() const noexcept {
    return state_ == bgp::SessionState::kEstablished;
  }
  [[nodiscard]] sim::NodeId peer_node() const noexcept { return peer_node_; }
  [[nodiscard]] const bgp::NeighborConfig& neighbor() const noexcept { return neighbor_; }
  [[nodiscard]] bgp::RouterId peer_router_id() const noexcept { return peer_router_id_; }
  [[nodiscard]] std::uint16_t negotiated_hold() const noexcept { return negotiated_hold_; }
  [[nodiscard]] bool ebgp() const noexcept { return neighbor_.asn != local_.asn; }
  /// OPEN messages that crossed an OPEN we sent from kManualStart (received
  /// while in an actively-entered OpenSent), resolved by proceeding — the
  /// single logical transport merges both connection attempts. This is the
  /// local view: a passive responder's answering OPEN also crosses ours, so
  /// one-sided establishment counts one on the initiator and zero on the
  /// responder, while a simultaneous start counts one on each end.
  [[nodiscard]] std::uint64_t collisions_detected() const noexcept { return collisions_; }

  // Checkpoint surface: same typed shape (and therefore the same v2 bytes)
  // as the reference Session, so both engines restore through one format.
  [[nodiscard]] bgp::SessionCheckpoint to_checkpoint() const noexcept;
  void apply_checkpoint(const bgp::SessionCheckpoint& checkpoint);
  void reset_for_reuse();

 private:
  void dispatch(Event event, const bgp::Message* msg);
  void send_open();
  void validate_open(const bgp::OpenMessage& open);
  void enter_established();
  void enter_idle(const std::string& reason);
  void arm_hold_timer();
  void arm_keepalive_timer();
  void cancel_timers();

  Host& host_;
  sim::NodeId peer_node_;
  bgp::NeighborConfig neighbor_;
  const bgp::RouterConfig& local_;

  bgp::SessionState state_ = bgp::SessionState::kIdle;
  bgp::RouterId peer_router_id_ = 0;
  std::uint16_t negotiated_hold_ = 0;
  /// True when OpenSent was entered by a peer's OPEN (passive open) rather
  /// than kManualStart — an OPEN crossing ours then is normal establishment,
  /// not a simultaneous-open collision.
  bool passive_open_ = false;
  std::uint64_t collisions_ = 0;
  sim::TimerHandle hold_timer_;
  sim::TimerHandle keepalive_timer_;
};

}  // namespace dice::bgp2
