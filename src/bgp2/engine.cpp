#include "bgp2/engine.hpp"

#include <algorithm>
#include <set>
#include <span>

#include "concolic/context.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace dice::bgp2 {

namespace {
const util::Logger& logger() {
  static util::Logger instance("bgp2.engine");
  return instance;
}
}  // namespace

FsmEngine::FsmEngine(
    sim::Network& network, sim::NodeId id, bgp::RouterConfig config,
    std::shared_ptr<const std::map<util::IpAddress, sim::NodeId>> address_book)
    : NodeImplementation(network, id),
      config_(std::move(config)),
      address_book_(std::move(address_book)) {
  for (const bgp::NeighborConfig& neighbor : config_.neighbors) {
    auto it = address_book_->find(neighbor.address);
    if (it == address_book_->end()) {
      logger().warn() << config_.name << ": neighbor " << neighbor.address.to_string()
                      << " has no node mapping; skipped";
      continue;
    }
    fsms_.emplace(it->second,
                  std::make_unique<PeerFsm>(*this, it->second, neighbor, config_));
  }
}

void FsmEngine::start() {
  ++state_version_;  // origination mutates Loc-RIB
  for (const util::IpPrefix& prefix : config_.networks) {
    bus_.post(RouteEvent{RouteEvent::Kind::kLearned, prefix, sim::kInvalidNode});
  }
  bus_.drain([this](const util::IpPrefix& prefix) { decide(prefix); });
  for (auto& [peer, fsm] : fsms_) fsm->start();
}

PeerFsm* FsmEngine::fsm(sim::NodeId peer) {
  auto it = fsms_.find(peer);
  return it == fsms_.end() ? nullptr : it->second.get();
}

const bgp::Rib* FsmEngine::adj_rib_in(sim::NodeId peer) const {
  auto it = adj_in_.find(peer);
  return it == adj_in_.end() ? nullptr : &it->second;
}

std::uint64_t FsmEngine::collisions_detected() const {
  std::uint64_t total = 0;
  for (const auto& [peer, fsm] : fsms_) total += fsm->collisions_detected();
  return total;
}

std::size_t FsmEngine::established_session_count() const {
  std::size_t established = 0;
  for (const auto& [peer, fsm] : fsms_) {
    if (fsm->established()) ++established;
  }
  return established;
}

void FsmEngine::reset_session(sim::NodeId peer) {
  if (PeerFsm* f = fsm(peer)) {
    f->stop(bgp::NotifCode::kCease, 0, "administrative reset");
  }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

void FsmEngine::fsm_send(sim::NodeId peer, const bgp::Message& msg, bool background) {
  auto encoded = bgp::encode(msg);
  if (!encoded) {
    logger().error() << config_.name << ": encode failed: " << encoded.error().to_string();
    return;
  }
  sim::Frame frame;
  frame.kind = sim::FrameKind::kData;
  frame.payload = std::move(encoded).take();
  frame.background = background;
  network().send(node_id(), peer, std::move(frame));
}

void FsmEngine::deliver_data(sim::NodeId from, const util::Bytes& payload) {
  PeerFsm* f = fsm(from);
  if (f == nullptr) return;  // frame from an unconfigured node
  try {
    auto msg = bgp::decode(payload, bgp::DecodeOptions{config_.bug_mask});
    if (!msg) {
      ++stats_.decode_failures;
      const bgp::NotificationMessage notif = bgp::error_to_notification(msg.error());
      f->stop(notif.code, notif.subcode, "decode error: " + msg.error().to_string());
      return;
    }
    f->handle_message(msg.value());
    // Route events raised by the message settle before control returns to
    // the simulator, so every event boundary observes a consistent Loc-RIB.
    bus_.drain([this](const util::IpPrefix& prefix) { decide(prefix); });
  } catch (const concolic::CrashSignal& crash) {
    // Injected programming error in the data path: model the daemon crash
    // as an all-sessions reset, observable through handler_crashes.
    ++stats_.handler_crashes;
    logger().warn() << config_.name << ": handler crash: " << crash.what;
    for (auto& [peer, peer_fsm] : fsms_) {
      peer_fsm->reset_transport("daemon crash: " + crash.what);
    }
    bus_.drain([this](const util::IpPrefix& prefix) { decide(prefix); });
  }
}

// ---------------------------------------------------------------------------
// FSM callbacks
// ---------------------------------------------------------------------------

void FsmEngine::fsm_established(sim::NodeId peer) {
  ++state_version_;  // full-table send populates Adj-RIB-Out
  if (PeerFsm* f = fsm(peer)) send_full_table(*f);
}

void FsmEngine::fsm_down(sim::NodeId peer, const std::string& reason) {
  (void)reason;
  ++state_version_;  // Adj-RIBs flushed below
  auto it = adj_in_.find(peer);
  if (it != adj_in_.end()) {
    for (const auto& [prefix, route] : it->second.table()) {
      bus_.post(RouteEvent{RouteEvent::Kind::kPeerLost, prefix, peer});
    }
    adj_in_.erase(it);
  }
  adj_out_.erase(peer);
  bus_.drain([this](const util::IpPrefix& prefix) { decide(prefix); });
  if (auto_restart_) schedule_restart(peer);
}

void FsmEngine::schedule_restart(sim::NodeId peer) {
  network().simulator().schedule_after(restart_delay_, [this, peer] {
    if (PeerFsm* f = fsm(peer)) {
      if (f->state() == bgp::SessionState::kIdle) f->start();
    }
  });
}

void FsmEngine::fsm_update(sim::NodeId peer, const bgp::UpdateMessage& update) {
  ++stats_.updates_received;
  ++state_version_;  // import touches Adj-RIB-In (and, via drain, the rest)
  import_update(peer, update);
  bus_.drain([this](const util::IpPrefix& prefix) { decide(prefix); });
}

// ---------------------------------------------------------------------------
// Import -> bus -> decision -> export
// ---------------------------------------------------------------------------

void FsmEngine::import_update(sim::NodeId peer, const bgp::UpdateMessage& update) {
  PeerFsm* f = fsm(peer);
  if (f == nullptr) return;
  bgp::Rib& rib_in = adj_in_[peer];

  for (const util::IpPrefix& prefix : update.withdrawn) {
    if (rib_in.erase(prefix)) {
      bus_.post(RouteEvent{RouteEvent::Kind::kWithdrawn, prefix, peer});
    }
  }

  if (!update.announces()) return;

  // Same import acceptance rules as the reference engine — these are
  // protocol semantics, not structure: AS-path loop rejection (§9.1.2,
  // including the truncated form of a 4-byte local ASN) ...
  if (update.attrs.as_path.contains(config_.asn) ||
      (config_.asn > 0xffff && update.attrs.as_path.contains(config_.asn & 0xffff))) {
    ++stats_.loop_rejects;
    for (const util::IpPrefix& prefix : update.nlri) {
      if (rib_in.erase(prefix)) {
        bus_.post(RouteEvent{RouteEvent::Kind::kWithdrawn, prefix, peer});
      }
    }
    return;
  }

  // ... and eBGP next-hop resolvability (unknown next hops are unusable).
  if (f->ebgp() && config_.neighbor_by_address(update.attrs.next_hop) == nullptr &&
      update.attrs.next_hop != config_.address) {
    ++stats_.import_rejects;
    for (const util::IpPrefix& prefix : update.nlri) {
      if (rib_in.erase(prefix)) {
        bus_.post(RouteEvent{RouteEvent::Kind::kWithdrawn, prefix, peer});
      }
    }
    return;
  }

  bgp::Route base;
  base.attrs = update.attrs;
  base.source.peer_node = peer;
  base.source.peer_asn = f->neighbor().asn;
  base.source.peer_router_id = f->peer_router_id();
  base.source.peer_address = f->neighbor().address;
  base.source.ebgp = f->ebgp();
  if (base.source.ebgp) {
    base.attrs.local_pref.reset();  // LOCAL_PREF is intra-AS only (§5.1.5)
  }

  for (const util::IpPrefix& prefix : update.nlri) {
    bgp::Route candidate = base;
    candidate.prefix = prefix;
    bgp::PolicyOutcome outcome =
        evaluate(f->neighbor().import_policy, std::move(candidate), config_.asn);
    if (outcome.accepted) {
      if (rib_in.upsert(std::move(outcome.route))) {
        bus_.post(RouteEvent{RouteEvent::Kind::kLearned, prefix, peer});
      }
    } else {
      ++stats_.import_rejects;
      if (rib_in.erase(prefix)) {
        bus_.post(RouteEvent{RouteEvent::Kind::kWithdrawn, prefix, peer});
      }
    }
  }
}

std::vector<bgp::Route> FsmEngine::collect_candidates(const util::IpPrefix& prefix) const {
  std::vector<bgp::Route> candidates;
  if (std::find(config_.networks.begin(), config_.networks.end(), prefix) !=
      config_.networks.end()) {
    bgp::Route local;
    local.prefix = prefix;
    local.attrs.origin = bgp::Origin::kIgp;
    local.attrs.next_hop = config_.address;
    local.source.peer_node = bgp::kLocalRoute;
    local.source.peer_asn = config_.asn;
    local.source.peer_router_id = config_.router_id;
    local.source.peer_address = config_.address;
    local.source.ebgp = false;
    candidates.push_back(std::move(local));
  }
  for (const auto& [peer, rib] : adj_in_) {
    if (const bgp::Route* route = rib.find(prefix)) candidates.push_back(*route);
  }
  return candidates;
}

std::size_t FsmEngine::choose_best(const std::vector<bgp::Route>& candidates) const {
  bgp::DecisionOptions options;
  options.always_compare_med = config_.always_compare_med;
  const std::size_t best = bgp::select_best(candidates, options);
  if (best == SIZE_MAX || (config_.bug_mask & bgp::bugs::kLongPathPreferred) == 0) {
    return best;
  }
  // Injected decision defect: among candidates tied on effective local
  // preference with the winner, an inverted length comparison prefers the
  // *longest* AS path. The reference procedure never does this, so the
  // differential check flags every prefix where the inversion bites.
  const std::uint32_t pref = candidates[best].attrs.effective_local_pref();
  std::size_t faulty = best;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].attrs.effective_local_pref() != pref) continue;
    if (candidates[i].attrs.as_path.selection_length() >
        candidates[faulty].attrs.as_path.selection_length()) {
      faulty = i;
    }
  }
  return faulty;
}

void FsmEngine::decide(const util::IpPrefix& prefix) {
  ++stats_.decision_runs;
  const std::vector<bgp::Route> candidates = collect_candidates(prefix);
  const std::size_t best = choose_best(candidates);

  const bgp::Route* current = loc_rib_.find(prefix);
  if (best == SIZE_MAX) {
    if (loc_rib_.erase(prefix)) {
      ++stats_.best_changes;
      max_best_flips_ = std::max(max_best_flips_, ++best_flips_[prefix]);
      propagate(prefix);
    }
    return;
  }
  if (current != nullptr && *current == candidates[best]) return;
  loc_rib_.upsert(candidates[best]);
  ++stats_.best_changes;
  max_best_flips_ = std::max(max_best_flips_, ++best_flips_[prefix]);
  propagate(prefix);
}

void FsmEngine::propagate(const util::IpPrefix& prefix) {
  for (auto& [peer, fsm] : fsms_) {
    if (fsm->established()) export_to_peer(*fsm, prefix);
  }
}

void FsmEngine::send_full_table(PeerFsm& fsm) {
  for (const auto& [prefix, route] : loc_rib_.table()) {
    export_to_peer(fsm, prefix);
  }
}

void FsmEngine::export_to_peer(PeerFsm& fsm, const util::IpPrefix& prefix) {
  const sim::NodeId peer = fsm.peer_node();
  bgp::Rib& rib_out = adj_out_[peer];
  const bgp::Route* best = loc_rib_.find(prefix);

  const auto withdraw_if_advertised = [&] {
    if (rib_out.erase(prefix)) {
      bgp::UpdateMessage update;
      update.withdrawn.push_back(prefix);
      ++stats_.withdraws_sent;
      fsm_send(peer, bgp::Message{update}, /*background=*/false);
    }
  };

  if (best == nullptr) {
    withdraw_if_advertised();
    return;
  }
  // Export invariants shared across the federation: split horizon, no
  // iBGP-to-iBGP reflection, NO_EXPORT at AS boundaries.
  if (!best->local() && best->source.peer_node == peer) {
    withdraw_if_advertised();
    return;
  }
  if (!best->local() && !best->source.ebgp && !fsm.ebgp()) {
    withdraw_if_advertised();
    return;
  }
  if (best->attrs.has_community(bgp::well_known::kNoExport) && fsm.ebgp()) {
    withdraw_if_advertised();
    return;
  }

  bgp::PolicyOutcome outcome = evaluate(fsm.neighbor().export_policy, *best, config_.asn);
  if (!outcome.accepted) {
    withdraw_if_advertised();
    return;
  }

  bgp::Route advertised = std::move(outcome.route);
  if (fsm.ebgp()) {
    advertised.attrs.as_path.prepend(config_.asn);
    advertised.attrs.next_hop = config_.address;
    advertised.attrs.local_pref.reset();
  } else {
    if (!advertised.attrs.local_pref) {
      advertised.attrs.local_pref = bgp::PathAttributes::kDefaultLocalPref;
    }
  }

  const bgp::Route* previous = rib_out.find(prefix);
  if (previous != nullptr && previous->attrs == advertised.attrs) return;

  bgp::UpdateMessage update;
  update.nlri.push_back(prefix);
  update.attrs = advertised.attrs;
  rib_out.upsert(advertised);
  ++stats_.updates_sent;
  fsm_send(peer, bgp::Message{update}, /*background=*/false);
}

void FsmEngine::for_each_decision(
    const std::function<void(const DecisionView&)>& fn) const {
  std::set<util::IpPrefix> prefixes;
  for (const util::IpPrefix& prefix : config_.networks) prefixes.insert(prefix);
  for (const auto& [peer, rib] : adj_in_) {
    for (const auto& [prefix, route] : rib.table()) prefixes.insert(prefix);
  }
  for (const auto& [prefix, route] : loc_rib_.table()) prefixes.insert(prefix);

  for (const util::IpPrefix& prefix : prefixes) {
    const std::vector<bgp::Route> candidates = collect_candidates(prefix);
    DecisionView view;
    view.prefix = prefix;
    view.selected = loc_rib_.find(prefix);
    view.candidates = &candidates;
    fn(view);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint / restore — the shared v2 stream (bgp/checkpoint_codec.hpp)
// ---------------------------------------------------------------------------

void FsmEngine::checkpoint(util::ByteWriter& writer) const {
  using bgp::ckpt::Tag;
  util::ByteWriter body;
  bgp::ckpt::AttrPoolEncoder pool;

  body.u8(static_cast<std::uint8_t>(Tag::kSessions));
  body.vu32(static_cast<std::uint32_t>(fsms_.size()));
  for (const auto& [peer, fsm] : fsms_) {
    body.vu32(peer);
    bgp::ckpt::write_session_v2(body, fsm->to_checkpoint());
  }
  body.u8(static_cast<std::uint8_t>(Tag::kAdjIn));
  body.vu32(static_cast<std::uint32_t>(adj_in_.size()));
  for (const auto& [peer, rib] : adj_in_) {
    body.vu32(peer);
    bgp::ckpt::write_rib_v2(body, rib, pool);
  }
  body.u8(static_cast<std::uint8_t>(Tag::kLocRib));
  bgp::ckpt::write_rib_v2(body, loc_rib_, pool);
  body.u8(static_cast<std::uint8_t>(Tag::kAdjOut));
  body.vu32(static_cast<std::uint32_t>(adj_out_.size()));
  for (const auto& [peer, rib] : adj_out_) {
    body.vu32(peer);
    bgp::ckpt::write_rib_v2(body, rib, pool);
  }
  body.u8(static_cast<std::uint8_t>(Tag::kFlips));
  body.vu32(static_cast<std::uint32_t>(best_flips_.size()));
  for (const auto& [prefix, count] : best_flips_) {
    body.u32(prefix.address().value());
    body.u8(prefix.length());
    body.vu32(count);
  }

  writer.u8(bgp::ckpt::kFormatV2);
  pool.emit(writer);
  writer.raw(body.span());
  writer.u8(static_cast<std::uint8_t>(Tag::kEnd));
}

util::Result<std::shared_ptr<const snapshot::DecodedCheckpoint>> FsmEngine::parse(
    util::ByteReader& reader) const {
  static obs::Counter& decode_counter =
      obs::MetricsRegistry::global().counter(obs::names::kCheckpointDecodes);
  static obs::Counter& fsm_decode_counter =
      obs::MetricsRegistry::global().counter(obs::names::kFsmDecodes);
  decode_counter.add();
  fsm_decode_counter.add();

  auto head = reader.peek_u8();
  if (!head) return util::make_error("router.restore.sessions");
  if (head.value() == snapshot::kCheckpointSameAsBaseline) {
    return util::make_error("router.restore.delta_unresolved");
  }
  if (head.value() != bgp::ckpt::kFormatV2) {
    // This engine postdates the v2 format; no legacy streams exist for it.
    return util::make_error("router.restore.unknown_format");
  }
  auto state = bgp::ckpt::read_router_v2(reader, [this](sim::NodeId peer) {
    return fsms_.find(peer) != fsms_.end();
  });
  if (!state) return state.error();
  auto decoded = std::make_shared<FsmCheckpoint>();
  decoded->state = std::move(state).take();
  return std::shared_ptr<const snapshot::DecodedCheckpoint>(std::move(decoded));
}

util::Status FsmEngine::apply(const snapshot::DecodedCheckpoint& state) {
  const auto* decoded = dynamic_cast<const FsmCheckpoint*>(&state);
  if (decoded == nullptr) return util::make_error("router.apply.wrong_type");
  static obs::Counter& apply_counter =
      obs::MetricsRegistry::global().counter(obs::names::kFsmApplies);
  apply_counter.add();
  ++state_version_;

  for (const auto& [peer, checkpoint] : decoded->state.sessions) {
    PeerFsm* f = fsm(peer);
    if (f == nullptr) return util::make_error("router.restore.unknown_peer");
    f->apply_checkpoint(checkpoint);
  }

  bus_.reset();
  adj_in_.clear();
  for (const auto& [peer, rib] : decoded->state.adj_in) adj_in_[peer] = rib;
  loc_rib_ = decoded->state.loc_rib;
  adj_out_.clear();
  for (const auto& [peer, rib] : decoded->state.adj_out) adj_out_[peer] = rib;

  best_flips_.clear();
  max_best_flips_ = 0;
  for (const auto& [prefix, count] : decoded->state.best_flips) {
    best_flips_[prefix] = count;
    max_best_flips_ = std::max(max_best_flips_, count);
  }
  return util::Status::success();
}

std::uint64_t FsmEngine::encode_checkpoint(util::ByteWriter& writer,
                                           snapshot::SnapshotId this_snapshot,
                                           snapshot::SnapshotId baseline) {
  if (baseline != 0 && last_checkpoint_.snapshot == baseline &&
      last_checkpoint_.version == state_version_) {
    writer.u8(snapshot::kCheckpointSameAsBaseline);
    last_checkpoint_.snapshot = this_snapshot;
    return last_checkpoint_.hash;
  }
  const std::size_t before = writer.size();
  checkpoint(writer);
  const std::uint64_t hash =
      util::fnv1a(std::span(writer.span()).subspan(before));
  last_checkpoint_ = {this_snapshot, state_version_, hash};
  return hash;
}

void FsmEngine::reset_for_reuse() {
  abort_snapshot();
  for (auto& [peer, fsm] : fsms_) fsm->reset_for_reuse();
  bus_.reset();
  adj_in_.clear();
  loc_rib_.clear();
  adj_out_.clear();
  best_flips_.clear();
  max_best_flips_ = 0;
  stats_ = {};
  auto_restart_ = true;
  restart_delay_ = sim::kSecond;
  ++state_version_;
  last_checkpoint_ = {};  // arena reuse crosses snapshot lineages: no deltas
}

}  // namespace dice::bgp2
