// Deterministic discrete-event simulator.
//
// Events run in (time, sequence) order, so identical seeds and inputs yield
// identical executions — the property the snapshot/clone machinery relies on
// (a clone restored from a snapshot replays deterministically).
//
// Events are either *foreground* (protocol work: UPDATE propagation, session
// establishment) or *background* (periodic keepalives, hold timers).
// run_until_quiescent() drains foreground work only: a converged BGP system
// has no foreground events left even though keepalive timers keep ticking.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace dice::sim {

/// Cancellable handle for scheduled events (used for protocol timers).
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel() noexcept {
    if (cancelled_) *cancelled_ = true;
  }
  [[nodiscard]] bool active() const noexcept { return cancelled_ && !*cancelled_; }

 private:
  friend class Simulator;
  explicit TimerHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `at` (clamped to now).
  TimerHandle schedule_at(Time at, Action action, bool background = false);
  /// Schedules `action` after `delay` from now.
  TimerHandle schedule_after(Time delay, Action action, bool background = false) {
    return schedule_at(now_ + delay, std::move(action), background);
  }

  /// Runs the earliest event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue is empty or `max_events` executed; returns events run.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs until simulated time reaches `deadline`; returns events run.
  std::size_t run_until(Time deadline);

  /// Runs until no foreground events remain (or a budget trips). Returns
  /// true when quiescence was reached within the budgets.
  bool run_until_quiescent(std::size_t max_events = 2'000'000,
                           Time max_time = 24ULL * 3600 * kSecond);

  /// Drops every pending event and rewinds the clock to zero — the clone-
  /// arena reuse hook. Outstanding TimerHandles become inert (their events
  /// are gone; cancelling them later is harmless).
  void reset();

  /// Advances the clock to `at` without running anything (never rewinds).
  /// Live-state resume hook: a System restored from a PreparedLiveState
  /// re-arms its timers relative to the donor's bootstrap-end clock, so
  /// later snapshot timestamps line up with a fresh bootstrap's.
  void fast_forward(Time at) noexcept {
    if (at > now_) now_ = at;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t pending_foreground() const noexcept { return foreground_pending_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    bool background;
    std::shared_ptr<bool> cancelled;
    Action action;
  };
  struct Later {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  friend struct SimulatorTestPeer;

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t foreground_pending_ = 0;
};

/// Test-only backdoor: fabricates the foreground-accounting mismatch
/// (pending_foreground() > 0 with an empty queue) that run_until_quiescent
/// and System::converge_bounded must report as NON-quiescence. No public
/// API can reach that state — cancelled events still decrement the counter
/// when popped — so the regression tests need a seam.
struct SimulatorTestPeer {
  static void add_phantom_foreground(Simulator& sim, std::size_t n) noexcept {
    sim.foreground_pending_ += n;
  }
};

}  // namespace dice::sim
