#include "sim/simulator.hpp"

#include <utility>

namespace dice::sim {

TimerHandle Simulator::schedule_at(Time at, Action action, bool background) {
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{at < now_ ? now_ : at, next_seq_++, background, flag, std::move(action)});
  if (!background) ++foreground_pending_;
  return TimerHandle{std::move(flag)};
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (!event.background) --foreground_pending_;
    if (*event.cancelled) continue;
    now_ = event.at;
    ++executed_;
    event.action();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && step()) ++count;
  return count;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    if (!step()) break;
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

void Simulator::reset() {
  queue_ = {};
  now_ = 0;
  next_seq_ = 0;
  executed_ = 0;
  foreground_pending_ = 0;
}

bool Simulator::run_until_quiescent(std::size_t max_events, Time max_time) {
  std::size_t count = 0;
  while (foreground_pending_ > 0) {
    if (count >= max_events || now_ > max_time) return false;
    if (!step()) {
      // The queue drained (possibly of cancelled events only) — quiescence
      // holds only if the foreground accounting drained with it. An empty
      // queue with foreground work still accounted is a bookkeeping
      // mismatch, not convergence.
      return foreground_pending_ == 0;
    }
    ++count;
  }
  return true;
}

}  // namespace dice::sim
