#include "sim/network.hpp"

#include <cassert>

#include "util/log.hpp"

namespace dice::sim {

namespace {
const util::Logger& logger() {
  static util::Logger instance("sim.net");
  return instance;
}
}  // namespace

void Network::attach(NodeId id, Node& node) {
  assert(!nodes_.contains(id));
  nodes_[id] = &node;
}

void Network::detach(NodeId id) { nodes_.erase(id); }

void Network::connect(NodeId a, NodeId b, Time latency) {
  assert(a != b);
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    Channel& ch = channels_[{from, to}];
    ch.state.from = from;
    ch.state.to = to;
    ch.state.latency = latency;
    ch.state.up = true;
  }
}

bool Network::linked(NodeId a, NodeId b) const {
  return channels_.contains({a, b});
}

std::vector<NodeId> Network::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& [key, ch] : channels_) {
    if (key.first == id) out.push_back(key.second);
  }
  return out;
}

Network::Channel* Network::channel(NodeId from, NodeId to) {
  auto it = channels_.find({from, to});
  return it == channels_.end() ? nullptr : &it->second;
}

const Network::Channel* Network::channel(NodeId from, NodeId to) const {
  auto it = channels_.find({from, to});
  return it == channels_.end() ? nullptr : &it->second;
}

bool Network::send(NodeId from, NodeId to, Frame frame) {
  Channel* ch = channel(from, to);
  if (ch == nullptr || !ch->state.up) {
    if (ch != nullptr) ++ch->state.dropped;
    logger().trace() << "drop " << from << "->" << to << " (no channel or link down)";
    return false;
  }
  ++total_sent_;
  const bool background = frame.background;
  // Ordered delivery: never before a previously sent frame on this channel.
  Time deliver_at = sim_.now() + ch->state.latency;
  if (deliver_at < ch->last_delivery) deliver_at = ch->last_delivery;
  ch->last_delivery = deliver_at;
  const std::uint64_t flight_id = next_flight_id_++;
  ch->queue.push_back(InFlight{flight_id, deliver_at, std::move(frame)});
  sim_.schedule_at(
      deliver_at, [this, from, to, flight_id] { deliver(from, to, flight_id); }, background);
  return true;
}

void Network::inject(NodeId from, NodeId to, Frame frame, Time delay) {
  auto it = nodes_.find(to);
  if (it == nodes_.end()) return;
  Node* node = it->second;
  sim_.schedule_after(delay, [node, from, frame = std::move(frame)] {
    node->on_frame(from, frame);
  });
}

void Network::deliver(NodeId from, NodeId to, std::uint64_t flight_id) {
  Channel* ch = channel(from, to);
  if (ch == nullptr) return;
  // The frame may have been flushed by a link-down event in the meantime.
  auto it = ch->queue.begin();
  while (it != ch->queue.end() && it->id != flight_id) ++it;
  if (it == ch->queue.end()) return;
  Frame frame = std::move(it->frame);
  ch->queue.erase(it);
  if (!ch->state.up) {
    ++ch->state.dropped;
    return;
  }
  ++ch->state.delivered;
  ++total_delivered_;
  auto node_it = nodes_.find(to);
  if (node_it != nodes_.end()) node_it->second->on_frame(from, frame);
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    if (Channel* ch = channel(from, to)) {
      ch->state.up = up;
      if (!up) {
        ch->state.dropped += ch->queue.size();
        ch->queue.clear();
      }
    }
  }
}

void Network::reset_dynamic() {
  for (auto& [key, ch] : channels_) {
    ch.queue.clear();
    ch.last_delivery = 0;
    ch.state.up = true;
    ch.state.delivered = 0;
    ch.state.dropped = 0;
  }
  next_flight_id_ = 1;
  total_sent_ = 0;
  total_delivered_ = 0;
}

std::vector<Frame> Network::in_flight(NodeId from, NodeId to) const {
  std::vector<Frame> out;
  if (const Channel* ch = channel(from, to)) {
    out.reserve(ch->queue.size());
    for (const InFlight& f : ch->queue) out.push_back(f.frame);
  }
  return out;
}

void Network::for_each_channel(const std::function<void(const ChannelState&)>& fn) const {
  for (const auto& [key, ch] : channels_) fn(ch.state);
}

}  // namespace dice::sim
