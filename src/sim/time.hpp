// Simulated time: unsigned microseconds since simulation start.
#pragma once

#include <cstdint>

namespace dice::sim {

using Time = std::uint64_t;

inline constexpr Time kMicrosecond = 1;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

}  // namespace dice::sim
