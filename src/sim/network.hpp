// Simulated network: nodes exchange frames over reliable, ordered,
// latency-modeled duplex links (TCP-like semantics, which is what BGP
// assumes from its transport). The network exposes per-channel in-flight
// frame inspection so the snapshot subsystem can capture channel state, and
// supports taking links down to model session resets and partitions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace dice::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffU;

/// What travels on the wire. kData carries protocol bytes; kMarker carries
/// snapshot-protocol markers (Chandy-Lamport) identified by snapshot_id.
enum class FrameKind : std::uint8_t { kData, kMarker };

struct Frame {
  FrameKind kind = FrameKind::kData;
  util::Bytes payload;
  std::uint64_t snapshot_id = 0;  ///< meaningful for kMarker only
  bool background = false;        ///< keepalives etc.; see Simulator docs
};

/// Interface every network endpoint implements.
class Node {
 public:
  virtual ~Node() = default;
  virtual void on_frame(NodeId from, const Frame& frame) = 0;
};

/// Directed channel statistics and queued in-flight frames.
struct ChannelState {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Time latency = kMillisecond;
  bool up = true;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node under a caller-chosen id (ids must be unique).
  void attach(NodeId id, Node& node);
  void detach(NodeId id);

  /// Creates a duplex link (two directed channels) with symmetric latency.
  void connect(NodeId a, NodeId b, Time latency = kMillisecond);

  [[nodiscard]] bool linked(NodeId a, NodeId b) const;
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;

  /// Sends a frame; returns false when no channel exists or the link is down
  /// (the frame is counted as dropped, like a broken TCP connection).
  bool send(NodeId from, NodeId to, Frame frame);

  /// Takes a directed pair of channels up/down. Frames already in flight
  /// when a link goes down are lost (connection reset semantics).
  void set_link_up(NodeId a, NodeId b, bool up);

  /// Returns every channel to its just-connected state (queues flushed,
  /// links up, counters zeroed) while keeping the topology and attached
  /// nodes — the clone-arena reuse hook. Callers must reset the simulator
  /// in the same breath, or stale delivery events would fire.
  void reset_dynamic();

  /// In-flight frames currently queued on the directed channel from->to,
  /// oldest first. Used by snapshot cloning to reconstruct channel state.
  [[nodiscard]] std::vector<Frame> in_flight(NodeId from, NodeId to) const;

  /// Visits every directed channel (state only, no payloads).
  void for_each_channel(const std::function<void(const ChannelState&)>& fn) const;

  /// Injects a frame for immediate local delivery to `to` as if sent by
  /// `from` — the input-subjection hook DiCE uses on clones (§2: "subjecting
  /// system nodes to many possible inputs").
  void inject(NodeId from, NodeId to, Frame frame, Time delay = 0);

  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] std::uint64_t total_sent() const noexcept { return total_sent_; }
  [[nodiscard]] std::uint64_t total_delivered() const noexcept { return total_delivered_; }

 private:
  struct InFlight {
    std::uint64_t id;
    Time deliver_at;
    Frame frame;
  };
  struct Channel {
    ChannelState state;
    std::deque<InFlight> queue;
    Time last_delivery = 0;  // enforces ordered delivery
  };

  [[nodiscard]] Channel* channel(NodeId from, NodeId to);
  [[nodiscard]] const Channel* channel(NodeId from, NodeId to) const;
  void deliver(NodeId from, NodeId to, std::uint64_t flight_id);

  Simulator& sim_;
  std::map<NodeId, Node*> nodes_;
  std::map<std::pair<NodeId, NodeId>, Channel> channels_;
  std::uint64_t next_flight_id_ = 1;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
};

}  // namespace dice::sim
