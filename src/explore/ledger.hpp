// FaultLedger: concurrent fault deduplication shared by exploration workers.
//
// Every worker pushes the raw FaultReports of its clone run; the ledger
// collapses them by fault signature (core::fault_key — class+check+node+
// description) behind a lock-striped hash map, so N workers reporting the
// same standing fault produce one entry.
//
// Determinism: each record carries a priority — the serial encounter order
// (task index, fault index within the task). When two reports share a key,
// the lowest priority wins, and snapshot_sorted() returns entries in
// ascending priority. The resulting fault list is therefore byte-identical
// to what a strictly serial run would report, regardless of worker count
// or stealing order.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dice/report.hpp"
#include "util/hash.hpp"

namespace dice::explore {

/// Mixes `key_salt` into a fault key non-linearly (splitmix64 finalizers
/// over both words). The previous `key ^ (salt * golden)` mixing was linear
/// in XOR: any two cells' salt difference mapped a fixed XOR mask over the
/// whole key space, so distinct (fault, cell) pairs could collide and
/// silently merge two findings into one. Exposed for the collision
/// regression test.
[[nodiscard]] constexpr std::uint64_t salted_fault_key(std::uint64_t key,
                                                       std::uint64_t salt) noexcept {
  return util::hash_finalize(key + util::hash_finalize(salt + 0x9e3779b97f4a7c15ULL));
}

class FaultLedger {
 public:
  explicit FaultLedger(std::size_t shards = 16);

  /// Records one report under its fault_key. Returns true when the key was
  /// new; on a duplicate key the entry with the lower priority is kept.
  /// `key_salt` partitions the dedup space (ScenarioMatrix salts by cell:
  /// the same signature in two scenarios is two distinct findings).
  bool record(core::FaultReport report, std::uint64_t priority, std::uint64_t key_salt = 0);

  /// Records a clone run's faults with priorities base, base+1, ...
  /// Returns how many keys were new. The rvalue form consumes the reports;
  /// the lvalue form leaves the caller's vector intact and copies a report
  /// only when it actually lands in the ledger (duplicates — the common
  /// case in long soaks — never copy).
  std::size_t record_all(std::vector<core::FaultReport>&& reports,
                         std::uint64_t base_priority, std::uint64_t key_salt = 0);
  std::size_t record_all(const std::vector<core::FaultReport>& reports,
                         std::uint64_t base_priority, std::uint64_t key_salt = 0);

  /// Whether `fault_key` was recorded under the same `key_salt`.
  [[nodiscard]] bool contains(std::uint64_t fault_key, std::uint64_t key_salt = 0) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// All entries in ascending priority — the canonical serial order.
  [[nodiscard]] std::vector<core::FaultReport> snapshot_sorted() const;

  void clear();

 private:
  struct Entry {
    core::FaultReport report;
    std::uint64_t priority = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> entries;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key) const {
    return *shards_[key % shards_.size()];
  }

  /// The one dedup-insert invariant both record paths share: emplace when
  /// the key is absent, replace when strictly lower priority. `Report` is
  /// a forwarding ref so the rvalue path moves and the lvalue path copies
  /// — and only when the report actually lands.
  template <typename Report>
  bool insert(std::uint64_t key, std::uint64_t priority, Report&& report);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dice::explore
