#include "explore/live_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace dice::explore {

namespace {

struct LiveCacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& uncacheable;
  obs::Counter& evictions;
};

[[nodiscard]] LiveCacheMetrics& live_cache_metrics() {
  static LiveCacheMetrics metrics{
      obs::MetricsRegistry::global().counter(obs::names::kLiveCacheHits),
      obs::MetricsRegistry::global().counter(obs::names::kLiveCacheMisses),
      obs::MetricsRegistry::global().counter(obs::names::kLiveCacheUncacheable),
      obs::MetricsRegistry::global().counter(obs::names::kLiveCacheEvictions)};
  return metrics;
}

}  // namespace

LiveStateCache::Lookup LiveStateCache::get_or_compute(const Key& key,
                                                      const Compute& compute) {
  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<Entry>& slot = entries_[key];
    const bool inserted = slot == nullptr;
    if (inserted) slot = std::make_shared<Entry>();
    entry = slot;
    entry->last_used = ++lru_clock_;
    // LRU bound: a fresh key past the bound pushes out the least-recently-
    // used resolved entry. The just-inserted entry is unresolved, so it
    // can never evict itself.
    if (inserted) evict_locked(max_entries_);
  }
  if (!entry->resolved.load(std::memory_order_acquire)) {
    // The once-latch. Holding it across compute is the point: a second
    // worker on the same key parks here for the duration of the first
    // worker's bootstrap instead of duplicating it. The map lock is NOT
    // held, so other keys proceed, and clear() may drop the map's entry
    // while we wait — our shared_ptr keeps it alive.
    const std::lock_guard<std::mutex> latch(entry->latch);
    if (!entry->resolved.load(std::memory_order_relaxed)) {
      entry->state = compute();
      entry->resolved.store(true, std::memory_order_release);
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      live_cache_metrics().misses.add();
      if (entry->state == nullptr) {
        ++stats_.uncacheable;
        live_cache_metrics().uncacheable.add();
      }
      return Lookup{entry->state, false};
    }
  }
  // Resolved entries are immutable: hits need no latch.
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.hits;
  live_cache_metrics().hits.add();
  if (entry->state == nullptr) {
    ++stats_.uncacheable;
    live_cache_metrics().uncacheable.add();
  }
  return Lookup{entry->state, true};
}

std::shared_ptr<const snapshot::PreparedLiveState> LiveStateCache::find(
    const Key& key) const {
  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    entry = it->second;
    it->second->last_used = ++lru_clock_;
  }
  // Unresolved = a compute is in flight; report absent rather than block.
  if (!entry->resolved.load(std::memory_order_acquire)) return nullptr;
  return entry->state;
}

std::vector<LiveStateCache::ResolvedEntry> LiveStateCache::resolved_entries() const {
  std::vector<ResolvedEntry> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    if (!entry->resolved.load(std::memory_order_acquire)) continue;
    if (entry->state == nullptr) continue;  // uncacheable key
    out.push_back(ResolvedEntry{key, entry->state});
  }
  return out;
}

bool LiveStateCache::replace(const Key& key,
                             std::shared_ptr<const snapshot::PreparedLiveState> state) {
  if (state == nullptr) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (!it->second->resolved.load(std::memory_order_acquire)) return false;
  // Fresh Entry, born resolved: the old one stays immutable for anyone who
  // grabbed its shared_ptr before this swap.
  auto fresh = std::make_shared<Entry>();
  fresh->state = std::move(state);
  fresh->resolved.store(true, std::memory_order_release);
  fresh->last_used = it->second->last_used;  // promotion is not a use
  it->second = std::move(fresh);
  return true;
}

void LiveStateCache::evict_locked(std::size_t max) {
  while (entries_.size() > max) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      // In-flight computes are never evicted: their worker will publish
      // into the entry, and same-key callers must keep finding the latch.
      if (!it->second->resolved.load(std::memory_order_acquire)) continue;
      if (victim == entries_.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything left is in flight
    entries_.erase(victim);
    ++stats_.evictions;
    live_cache_metrics().evictions.add();
  }
}

void LiveStateCache::trim(std::size_t keep) {
  const std::lock_guard<std::mutex> lock(mutex_);
  evict_locked(keep);
}

void LiveStateCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::size_t LiveStateCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

LiveStateCache::Stats LiveStateCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dice::explore
