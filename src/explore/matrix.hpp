// ScenarioMatrix: the diverse-soak driver. Fans the cross-product of
// blueprints x input strategies x seeds out onto an ExplorePool — each cell
// boots its own live system, runs DiCE episodes whose clone batches are
// submitted BACK into the same pool as child tasks (nested parallelism: one
// global worker budget for cells and clones, idle workers steal a parked
// cell's clones across cell boundaries), and merges its deduplicated faults
// into one matrix-wide ledger keyed by cell order, so the aggregate fault
// list is deterministic for any worker count, with nesting on or off.
//
// This turns the bench topologies (hijack, policy conflict, cycle,
// topology27) into one soak run covering many scenarios per unit time —
// the throughput-and-diversity route the distributed-testing literature
// (Dfuntest; multi-agent online testing) takes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgp/topology.hpp"
#include "dice/orchestrator.hpp"
#include "explore/control.hpp"
#include "explore/ledger.hpp"
#include "explore/live_cache.hpp"
#include "explore/pool.hpp"
#include "explore/solver_cache.hpp"

namespace dice::explore {

/// One topology under test, with the name used in reports.
struct ScenarioSpec {
  std::string name;
  bgp::SystemBlueprint blueprint;
};

/// The bench topologies as matrix rows: a clean internet, the YouTube-style
/// hijack, the BAD GADGET policy conflict, a ring, and the paper's
/// 27-router Figure 1 topology (with its latent hijack + parser bug).
[[nodiscard]] std::vector<ScenarioSpec> default_bench_scenarios();

enum class StrategyKind : std::uint8_t { kConcolic, kGrammar, kGrammarStrict, kRandom };
[[nodiscard]] std::string_view to_string(StrategyKind kind) noexcept;

struct MatrixOptions {
  std::vector<StrategyKind> strategies{StrategyKind::kGrammar, StrategyKind::kRandom};
  std::vector<std::uint64_t> seeds{1};
  /// Node-implementation axis (docs/HETEROGENEITY.md). Each entry fans the
  /// whole cross-product out once more: "" runs every blueprint exactly as
  /// authored (honoring any per-node implementation pins it carries); a
  /// registry id ("bgp", "fsm") re-homes EVERY node of every scenario onto
  /// that engine for those cells. The axis is the innermost loop, so the
  /// default single-"" axis reproduces the historic cell indices — and
  /// therefore the historic per-cell RNG streams, ledger priorities and
  /// fault bytes — exactly.
  std::vector<std::string> implementations{std::string()};
  std::size_t episodes_per_cell = 1;
  std::size_t bootstrap_events = 500'000;
  core::DiceOptions dice;  ///< per-cell episode options (parallelism forced to 1)
  /// Nested parallelism — the global worker budget. On (default): every
  /// cell submits its episodes' clone batches back into the SAME pool as
  /// child tasks of the cell's worker, so a 1-cell matrix on a W-worker
  /// pool still keeps all W workers busy (idle workers steal the parked
  /// cell's clones). Off: the legacy cells-only split — a cell's clones run
  /// serially on the one worker that owns the cell (the equivalence
  /// baseline). Fault sets are byte-identical either way at any worker
  /// count: per-clone RNG streams and ledger priorities derive from
  /// canonical indices, never from execution order (docs/DETERMINISM.md).
  bool nested_parallelism = true;
  /// Share one SolverCache across all concolic cells. Maximizes reuse but
  /// lets concurrent cells observe each other's (sound, verified) models;
  /// keep false when byte-stable repeat runs matter more than throughput.
  bool share_solver_cache = false;
  /// Bootstrap each (scenario, seed) live system ONCE: the first cell of a
  /// key converges and donates a PreparedLiveState; later cells resume
  /// from it in microseconds (LiveStateCache). Fault sets are byte-
  /// identical to per-cell fresh bootstraps — off is the equivalence
  /// baseline, not a different verdict.
  bool live_state_cache = true;
  /// External cache to share across matrix runs (long soaks re-running the
  /// same scenarios); nullptr = one private cache per run() call.
  LiveStateCache* live_cache = nullptr;
  /// Proven-UNSAT solver keys pre-seeded into every solver cache this run
  /// creates (shared or per-cell) — the svc::ArtifactStore warm-start path.
  /// Sound and byte-stable: a seeded hit skips solving with the exact
  /// verdict a fresh solve would reach (no model is replayed). The pointed-
  /// at vector must outlive run() and not change during it; nullptr = no
  /// seeding.
  const std::vector<std::uint64_t>* unsat_seed = nullptr;
  /// Overrides the per-cell derived strategy seed
  /// (`Rng(cell.seed).fork(2*index+1).next()`) with one fixed value for
  /// EVERY cell. Meant for single-cell matrices that must reproduce a
  /// standalone Orchestrator harness's input stream byte-for-byte (the
  /// svc round receipt); on a multi-cell matrix it makes same-strategy
  /// cells draw identical input streams. nullopt = the derived streams.
  std::optional<std::uint64_t> strategy_seed = std::nullopt;
  /// Progress cadence: emit CampaignObserver::on_progress once every N
  /// flushed cells (and always for the final cell). 1 = after every cell;
  /// 0 is treated as 1. Coarser cadences keep slow observers off the cell
  /// completion path of big matrices.
  std::size_t progress_every_cells = 1;
  /// Shard-worker plumbing (docs/SHARDING.md), not a tuning knob: when set,
  /// only the listed canonical cell indices EXECUTE; every other cell is
  /// flushed as skipped (started=false, no faults). Cell identity, per-cell
  /// RNG streams and ledger priorities key off the canonical index, never
  /// off the subset, so the union of disjoint subsets run in separate
  /// processes merges byte-identically to one full-space run. Out-of-range
  /// indices are ignored. nullopt = run every cell (the only mode end users
  /// drive; explore::Campaign never sets this).
  std::optional<std::vector<std::size_t>> cell_subset = std::nullopt;
};

/// Canonical cross-product identity of one cell — THE shared definition of
/// cell index <-> (scenario, strategy, seed, implementation) used by the
/// matrix body and by shard::ShardCoordinator's deal/merge. The
/// implementation axis is the innermost loop (see MatrixOptions).
struct CellIdentity {
  std::size_t scenario = 0;  ///< index into the scenario vector
  StrategyKind strategy = StrategyKind::kGrammar;
  std::uint64_t seed = 0;
  std::size_t seed_pos = 0;  ///< position in options.seeds (bootstrap-key id)
  std::size_t impl_pos = 0;  ///< position in options.implementations
};

/// Enumerates the full cell space in canonical order. An empty
/// implementations axis is treated as the documented single-"" default.
[[nodiscard]] std::vector<CellIdentity> enumerate_cells(std::size_t scenario_count,
                                                        const MatrixOptions& options);

struct CellResult {
  std::string scenario;
  StrategyKind strategy = StrategyKind::kGrammar;
  std::uint64_t seed = 0;
  /// Implementation-axis entry this cell ran under ("" = as authored).
  std::string implementation;
  /// Cancellation bookkeeping (always true/true without a stop token):
  /// `started` — the cell body ran at all (a fired token skips whole
  /// cells); `completed` — every episode finished uninterrupted. Only
  /// completed cells contribute to the canonical fault list, which keeps
  /// the faults of every completed cell byte-identical to an uncancelled
  /// run's at any worker count.
  bool started = false;
  bool completed = false;
  bool bootstrap_converged = false;
  bool bootstrap_from_cache = false;  ///< served by a LiveStateCache resume
  std::size_t episodes = 0;
  std::size_t clones_run = 0;
  std::size_t inputs_subjected = 0;
  std::size_t faults = 0;    ///< deduplicated within the cell
  double bootstrap_ms = 0.0; ///< live-system startup (fresh bootstrap or resume)
  double wall_ms = 0.0;
};

struct MatrixResult {
  std::vector<CellResult> cells;            ///< cross-product order
  std::vector<core::FaultReport> faults;    ///< completed cells, canonical cell order
  /// Proven-UNSAT solver keys accumulated by this run's caches (seeded ones
  /// included), ascending and deduplicated — what svc::ArtifactStore
  /// persists for warm starts.
  std::vector<std::uint64_t> unsat_keys;
  SolverCache::Stats solver_cache;          ///< aggregate over all cells
  LiveStateCache::Stats live_cache;         ///< bootstrap-once cache traffic
  ExplorePool::Stats pool;                  ///< pool stats delta for this run
  std::size_t cells_completed = 0;
  bool stopped = false;  ///< some cell was skipped or interrupted by the token
};

/// Observer/stop plumbing for a matrix run. Default-constructed = the
/// legacy blocking behavior (no events, never cancelled).
struct RunControl {
  CampaignObserver* observer = nullptr;  ///< may be null; callbacks serialized
  StopToken stop;                        ///< polled between cells/episodes/clones
  /// Span sink threaded down to every cell's orchestrator. The matrix
  /// reports each flushed cell into it (Trace::cell_flushed) from inside
  /// the reorder buffer and finalizes it when the run returns, so the
  /// trace's canonical section is in canonical cell order and worker-
  /// count-invariant for completed cells. Strictly passive; may be null.
  obs::Trace* trace = nullptr;
  /// Liveness-first second stream (svc::SoakObserver): receives the same
  /// start -> fault* -> done burst per cell, but the moment the cell's task
  /// body finishes — in WALL-CLOCK completion order, which is explicitly
  /// non-deterministic across runs and worker counts. Only cells that ran
  /// are delivered (skipped cells never reach it). Callbacks are serialized
  /// under their own mutex, independent of the canonical stream's reorder
  /// buffer, which stays byte-identical and remains the CI surface. May be
  /// null; strictly passive either way (docs/SERVICE.md).
  CampaignObserver* wall_observer = nullptr;
};

/// Execution-deal permutation: round-robins cell indices across distinct
/// key values (preserving each key's internal order), so cells sharing a
/// (scenario, seed) bootstrap key are not adjacent at batch start — W-1
/// workers would otherwise park on the key's LiveStateCache once-latch
/// while the first cell bootstraps. Pure reordering of EXECUTION: result
/// slots, per-cell seeds and the canonical fault order key off the cell
/// index and are untouched. Exposed for the receipt test.
[[nodiscard]] std::vector<std::size_t> interleave_keys(
    const std::vector<std::size_t>& keys);

class ScenarioMatrix {
 public:
  ScenarioMatrix(std::vector<ScenarioSpec> scenarios, MatrixOptions options);

  /// Runs every (scenario, strategy, seed, implementation) cell on the pool
  /// and blocks
  /// until all complete. (The pre-Campaign `run(pool)` wrapper without a
  /// RunControl is gone after its one release of migration headroom — pass
  /// `RunControl{}` for the legacy blocking behavior, or better, drive the
  /// matrix through explore::Campaign.) Streams events to
  /// `control.observer` in canonical cell order as cells land, and polls
  /// `control.stop` between
  /// cells, episodes and clones (never mid-clone). A cancelled run returns
  /// a well-formed partial result: completed cells keep byte-identical
  /// fault sets, skipped/interrupted ones are flagged and contribute no
  /// faults.
  [[nodiscard]] MatrixResult run(ExplorePool& pool, const RunControl& control);

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return scenarios_.size() * options_.strategies.size() * options_.seeds.size() *
           options_.implementations.size();
  }

  [[nodiscard]] const std::vector<ScenarioSpec>& scenarios() const noexcept {
    return scenarios_;
  }
  [[nodiscard]] const MatrixOptions& options() const noexcept { return options_; }
  /// The matrix-lifetime prototypes, indexed
  /// `scenario * implementations.size() + impl_pos`. What svc::SoakService
  /// maps LiveStateCache keys (prototype pointer identity) back to stable
  /// (scenario, implementation) names for persistence, and forward again
  /// when priming a warm start.
  [[nodiscard]] const std::vector<std::shared_ptr<const core::SystemPrototype>>&
  prototypes() const noexcept {
    return prototypes_;
  }

 private:
  std::vector<ScenarioSpec> scenarios_;
  MatrixOptions options_;
  /// One per (scenario, implementation) pair — indexed
  /// `scenario * implementations.size() + impl_pos` — for the matrix's
  /// lifetime: arena reuse across cells and LiveStateCache keys both hang
  /// off prototype identity, including across repeat run() calls on the
  /// same matrix. A non-"" axis entry gets its own prototype built from a
  /// copy of the blueprint with every node re-homed onto that engine.
  std::vector<std::shared_ptr<const core::SystemPrototype>> prototypes_;
};

}  // namespace dice::explore
