#include "explore/pool.hpp"

#include <algorithm>
#include <chrono>

#include "bgp/sym_update.hpp"

namespace dice::explore {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

CloneOutcome run_clone_task(const CloneTask& task, const CheckFn& check, CloneArena* arena) {
  CloneOutcome outcome;
  const auto clone_start = Clock::now();
  // Prepared path: reset the worker's arena System from pre-decoded state.
  // Legacy path: construct a System and re-decode the snapshot bytes.
  std::unique_ptr<core::System> owned;
  core::System* clone = nullptr;
  if (arena != nullptr && task.prepared != nullptr && task.prototype != nullptr) {
    clone = arena->acquire(task.prototype, *task.prepared, outcome.reused);
  }
  if (clone == nullptr && task.blueprint != nullptr && task.snap != nullptr) {
    // Legacy decode-per-clone path: no arena/prepared state, or the arena
    // reset failed — the task must still run (a dropped clone is a lost
    // fault, not just lost throughput).
    outcome.reused = false;
    owned = core::System::clone_from(*task.blueprint, *task.snap);
    clone = owned.get();
  }
  outcome.clone_ms = ms_since(clone_start);
  if (clone == nullptr) return outcome;
  outcome.ran = true;
  // Flip counters restart per clone: oscillation evidence must come from
  // this clone's own convergence, not inherited live-system churn.
  for (std::size_t i = 0; i < clone->size(); ++i) {
    clone->router(static_cast<sim::NodeId>(i)).reset_flip_counters();
  }

  const auto explore_start = Clock::now();
  if (!task.baseline && task.inject_from != sim::kInvalidNode) {
    clone->inject_message(task.inject_from, task.explorer,
                          bgp::wrap_update_body(task.input));
  }
  const core::System::ConvergeOutcome converged = clone->converge_bounded(
      task.event_budget, task.time_budget, task.oscillation_exit_flips);
  outcome.quiesced = converged.quiesced;
  outcome.early_exit = converged.oscillation_exit;
  outcome.explore_ms = ms_since(explore_start);

  const auto check_start = Clock::now();
  outcome.faults = check(*clone, task, outcome.quiesced);
  outcome.check_ms = ms_since(check_start);
  return outcome;
}

ExplorePool::ExplorePool(std::size_t workers) : workers_(std::max<std::size_t>(workers, 1)) {
  deques_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  arenas_ = std::vector<CloneArena>(workers_);
  if (workers_ <= 1) return;  // threadless compatibility path
  threads_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ExplorePool::~ExplorePool() {
  {
    const std::lock_guard<std::mutex> lock(batch_mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

bool ExplorePool::next_task(std::size_t worker_id, std::size_t& task) {
  {
    WorkerDeque& own = *deques_[worker_id];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of the fullest victim, so the thief takes the work
  // the owner would reach last (classic work-stealing order).
  while (true) {
    std::size_t victim = workers_;
    std::size_t victim_depth = 0;
    for (std::size_t v = 0; v < workers_; ++v) {
      if (v == worker_id) continue;
      const std::lock_guard<std::mutex> lock(deques_[v]->mutex);
      if (deques_[v]->tasks.size() > victim_depth) {
        victim_depth = deques_[v]->tasks.size();
        victim = v;
      }
    }
    if (victim == workers_) return false;  // everything drained
    const std::lock_guard<std::mutex> lock(deques_[victim]->mutex);
    if (deques_[victim]->tasks.empty()) continue;  // raced; rescan
    task = deques_[victim]->tasks.back();
    deques_[victim]->tasks.pop_back();
    {
      const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.steals;
    }
    return true;
  }
}

void ExplorePool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(batch_mutex_);
      work_ready_.wait(lock, [&] { return shutdown_ || batch_epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = batch_epoch_;
      fn = batch_fn_;
    }
    std::size_t completed = 0;
    std::size_t task = 0;
    while (next_task(worker_id, task)) {
      (*fn)(task, worker_id);
      ++completed;
    }
    if (completed > 0) {
      const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      stats_.tasks_run += completed;
    }
    // Every worker acknowledges the epoch — including ones that found no
    // work. run_batch returns only after all acks, so no worker can still
    // be draining epoch N when epoch N+1's tasks (and function) appear.
    bool done = false;
    {
      const std::lock_guard<std::mutex> lock(batch_mutex_);
      ++workers_done_;
      done = workers_done_ == workers_;
    }
    if (done) batch_done_.notify_all();
  }
}

void ExplorePool::run_batch(std::size_t count,
                            const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
  }
  if (workers_ <= 1) {
    // Inline compatibility path: no threads, no queues — the exact serial loop.
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.tasks_run += count;
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    WorkerDeque& deque = *deques_[i % workers_];
    const std::lock_guard<std::mutex> lock(deque.mutex);
    deque.tasks.push_back(i);
  }
  {
    const std::lock_guard<std::mutex> lock(batch_mutex_);
    batch_fn_ = &fn;
    workers_done_ = 0;
    ++batch_epoch_;
  }
  work_ready_.notify_all();
  std::unique_lock<std::mutex> lock(batch_mutex_);
  batch_done_.wait(lock, [&] { return workers_done_ == workers_; });
  batch_fn_ = nullptr;
}

std::size_t ExplorePool::drain() {
  std::size_t dropped = 0;
  for (const std::unique_ptr<WorkerDeque>& deque : deques_) {
    const std::lock_guard<std::mutex> lock(deque->mutex);
    dropped += deque->tasks.size();
    deque->tasks.clear();
  }
  return dropped;
}

std::vector<CloneOutcome> ExplorePool::explore(const std::vector<CloneTask>& tasks,
                                               const CheckFn& check) {
  std::vector<CloneOutcome> outcomes(tasks.size());
  run_batch(tasks.size(), [&](std::size_t index, std::size_t worker) {
    outcomes[index] = run_clone_task(tasks[index], check, &arena(worker));
  });
  return outcomes;
}

ExplorePool::Stats ExplorePool::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace dice::explore
