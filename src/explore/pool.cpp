#include "explore/pool.hpp"

#include <algorithm>
#include <chrono>

#include "bgp/sym_update.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace dice::explore {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Registry handles resolved once (registration takes a mutex; recording
/// through a cached handle does not).
struct PoolMetrics {
  obs::Counter& batches;
  obs::Counter& child_batches;
  obs::Counter& tasks;
  obs::Counter& child_tasks;
  obs::Counter& steals;
  obs::Counter& child_steals;
  obs::Counter& helped;
  obs::Counter& drained;
  obs::Counter& clones;
  obs::Counter& clones_reused;
  obs::Counter& clones_early_exit;
  obs::Histogram& clone_ms;
};

[[nodiscard]] PoolMetrics& pool_metrics() {
  static PoolMetrics metrics{
      obs::MetricsRegistry::global().counter(obs::names::kPoolBatches),
      obs::MetricsRegistry::global().counter(obs::names::kPoolChildBatches),
      obs::MetricsRegistry::global().counter(obs::names::kPoolTasks),
      obs::MetricsRegistry::global().counter(obs::names::kPoolChildTasks),
      obs::MetricsRegistry::global().counter(obs::names::kPoolSteals),
      obs::MetricsRegistry::global().counter(obs::names::kPoolChildSteals),
      obs::MetricsRegistry::global().counter(obs::names::kPoolHelped),
      obs::MetricsRegistry::global().counter(obs::names::kPoolDrained),
      obs::MetricsRegistry::global().counter(obs::names::kClones),
      obs::MetricsRegistry::global().counter(obs::names::kClonesReused),
      obs::MetricsRegistry::global().counter(obs::names::kClonesEarlyExit),
      obs::MetricsRegistry::global().histogram(obs::names::kCloneMs)};
  return metrics;
}

// Which pool (if any) owns the current thread. A worker of pool A that
// indirectly constructs pool B (an orchestrator with its own parallelism)
// still resolves correctly: current_worker() compares the pool pointer.
thread_local const ExplorePool* tl_pool = nullptr;
thread_local std::size_t tl_worker = ExplorePool::kNoWorker;

}  // namespace

CloneOutcome run_clone_task(const CloneTask& task, const CheckFn& check, CloneArena* arena) {
  CloneOutcome outcome;
  const auto clone_start = Clock::now();
  // Prepared path: reset the worker's arena System from pre-decoded state.
  // Legacy path: construct a System and re-decode the snapshot bytes.
  std::unique_ptr<core::System> owned;
  core::System* clone = nullptr;
  if (arena != nullptr && task.prepared != nullptr && task.prototype != nullptr) {
    clone = arena->acquire(task.prototype, *task.prepared, outcome.reused);
  }
  if (clone == nullptr && task.blueprint != nullptr && task.snap != nullptr) {
    // Legacy decode-per-clone path: no arena/prepared state, or the arena
    // reset failed — the task must still run (a dropped clone is a lost
    // fault, not just lost throughput).
    outcome.reused = false;
    owned = core::System::clone_from(*task.blueprint, *task.snap);
    clone = owned.get();
  }
  outcome.clone_ms = ms_since(clone_start);
  if (clone == nullptr) return outcome;
  outcome.ran = true;
  // Flip counters restart per clone: oscillation evidence must come from
  // this clone's own convergence, not inherited live-system churn.
  for (std::size_t i = 0; i < clone->size(); ++i) {
    clone->router(static_cast<sim::NodeId>(i)).reset_flip_counters();
  }

  const auto explore_start = Clock::now();
  if (!task.baseline && task.inject_from != sim::kInvalidNode) {
    clone->inject_message(task.inject_from, task.explorer,
                          bgp::wrap_update_body(task.input));
  }
  const core::System::ConvergeOutcome converged = clone->converge_bounded(
      task.event_budget, task.time_budget, task.oscillation_exit_flips);
  outcome.quiesced = converged.quiesced;
  outcome.early_exit = converged.oscillation_exit;
  outcome.explore_ms = ms_since(explore_start);

  const auto check_start = Clock::now();
  outcome.faults = check(*clone, task, outcome.quiesced);
  outcome.check_ms = ms_since(check_start);

  PoolMetrics& metrics = pool_metrics();
  metrics.clones.add();
  if (outcome.reused) metrics.clones_reused.add();
  if (outcome.early_exit) metrics.clones_early_exit.add();
  metrics.clone_ms.observe(outcome.clone_ms);
  return outcome;
}

ExplorePool::ExplorePool(std::size_t workers) : workers_(std::max<std::size_t>(workers, 1)) {
  deques_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  arenas_ = std::vector<CloneArena>(workers_);
  worker_stats_ = std::vector<WorkerStats>(workers_);
  if (workers_ <= 1) return;  // threadless compatibility path
  threads_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ExplorePool::~ExplorePool() {
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

std::size_t ExplorePool::current_worker() const noexcept {
  return tl_pool == this ? tl_worker : kNoWorker;
}

bool ExplorePool::next_task(std::size_t worker_id, Task& task, bool& stolen) {
  {
    WorkerDeque& own = *deques_[worker_id];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = own.tasks.front();
      own.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      stolen = false;
      return true;
    }
  }
  // Steal from the back of the fullest victim, so the thief takes the work
  // the owner would reach last (classic work-stealing order). The back of a
  // deque is also the COARSEST work available — a cell's child clones are
  // pushed to its front — so thieves prefer whole queued cells and take
  // another cell's clones exactly when nothing coarser remains.
  while (true) {
    std::size_t victim = workers_;
    std::size_t victim_depth = 0;
    for (std::size_t v = 0; v < workers_; ++v) {
      if (v == worker_id) continue;
      const std::lock_guard<std::mutex> lock(deques_[v]->mutex);
      if (deques_[v]->tasks.size() > victim_depth) {
        victim_depth = deques_[v]->tasks.size();
        victim = v;
      }
    }
    if (victim == workers_) return false;  // everything drained
    const std::lock_guard<std::mutex> lock(deques_[victim]->mutex);
    if (deques_[victim]->tasks.empty()) continue;  // raced; rescan
    task = deques_[victim]->tasks.back();
    deques_[victim]->tasks.pop_back();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    stolen = true;
    return true;
  }
}

bool ExplorePool::pop_group_task(TaskGroup& group, std::size_t worker_id, Task& task) {
  WorkerDeque& own = *deques_[worker_id];
  const std::lock_guard<std::mutex> lock(own.mutex);
  for (auto it = own.tasks.begin(); it != own.tasks.end(); ++it) {
    if (it->group == &group) {
      task = *it;
      own.tasks.erase(it);
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ExplorePool::run_task(const Task& task, std::size_t worker_id, bool stolen,
                           bool helped) {
  (*task.group->fn)(task.index, worker_id);
  const bool child = task.group->owner != kNoWorker;
  {
    // Stats BEFORE the latch credit: once pending hits zero the batch
    // submitter may return and read stats() expecting every task of the
    // finished batch to be accounted for (the latch mutex acquire/release
    // pair orders these relaxed stores before the submitter's reads).
    WorkerStats& mine = worker_stats_[worker_id];
    bump(mine.tasks);
    if (child) bump(mine.child_tasks);
    if (stolen) bump(mine.steals);
    if (stolen && child) bump(mine.child_steals);
    if (helped) bump(mine.helped);
    PoolMetrics& metrics = pool_metrics();
    metrics.tasks.add();
    if (child) metrics.child_tasks.add();
    if (stolen) metrics.steals.add();
    if (stolen && child) metrics.child_steals.add();
    if (helped) metrics.helped.add();
  }
  // Credit the latch under the group mutex: the waiter can only observe
  // pending == 0 (and destroy the group) after this critical section
  // releases, so the notify below never touches a dead group.
  const std::lock_guard<std::mutex> lock(task.group->mutex);
  if (--task.group->pending == 0) task.group->done.notify_all();
}

void ExplorePool::announce_work() {
  // The empty critical section is the publication handshake: a worker that
  // saw queued_ == 0 still holds pool_mutex_ until it sleeps, so acquiring
  // it here guarantees our notify lands after the worker is waiting.
  { const std::lock_guard<std::mutex> lock(pool_mutex_); }
  work_ready_.notify_all();
}

void ExplorePool::worker_loop(std::size_t worker_id) {
  tl_pool = this;
  tl_worker = worker_id;
  while (true) {
    Task task;
    bool stolen = false;
    if (next_task(worker_id, task, stolen)) {
      run_task(task, worker_id, stolen, /*helped=*/false);
      continue;
    }
    std::unique_lock<std::mutex> lock(pool_mutex_);
    work_ready_.wait(lock, [&] {
      return shutdown_ || queued_.load(std::memory_order_relaxed) > 0;
    });
    if (shutdown_) return;
  }
}

void ExplorePool::run_external_batch(std::size_t count,
                                     const std::function<void(std::size_t, std::size_t)>& fn) {
  TaskGroup group;
  group.fn = &fn;
  group.owner = kNoWorker;
  group.pending = count;
  for (std::size_t i = 0; i < count; ++i) {
    WorkerDeque& deque = *deques_[i % workers_];
    const std::lock_guard<std::mutex> lock(deque.mutex);
    deque.tasks.push_back(Task{&group, i});
    // Increment under the SAME mutex the pop path decrements under: for any
    // task the add strictly precedes the sub, so queued_ can never transit
    // through an unsigned underflow (which would read as "work everywhere"
    // and busy-spin every idle worker until the count caught up).
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  announce_work();
  std::unique_lock<std::mutex> lock(group.mutex);
  group.done.wait(lock, [&] { return group.pending == 0; });
}

void ExplorePool::run_child_batch(std::size_t count,
                                  const std::function<void(std::size_t, std::size_t)>& fn,
                                  std::size_t worker_id) {
  TaskGroup group;
  group.fn = &fn;
  group.owner = worker_id;
  group.pending = count;
  {
    WorkerDeque& own = *deques_[worker_id];
    const std::lock_guard<std::mutex> lock(own.mutex);
    // Front of the owner's deque, task 0 first: depth-first — the owner
    // finishes its episode's clones before touching any queued cell. The
    // count moves under the deque mutex for the same no-underflow reason
    // as the external deal.
    for (std::size_t i = count; i-- > 0;) {
      own.tasks.push_front(Task{&group, i});
    }
    queued_.fetch_add(count, std::memory_order_relaxed);
  }
  announce_work();
  // Help-then-wait: execute this group's still-queued tasks ourselves;
  // once every remaining task is in flight on a thief, sleep on the latch.
  // Helping is restricted to the awaited group so a waiting cell never
  // starts ANOTHER cell underneath itself (bounded stacks by construction).
  while (true) {
    Task task;
    if (pop_group_task(group, worker_id, task)) {
      run_task(task, worker_id, /*stolen=*/false, /*helped=*/true);
      continue;
    }
    std::unique_lock<std::mutex> lock(group.mutex);
    group.done.wait(lock, [&] { return group.pending == 0; });
    return;
  }
}

void ExplorePool::run_batch(std::size_t count,
                            const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t worker = current_worker();
  if (worker != kNoWorker || (workers_ <= 1 && inline_depth_ > 0)) {
    child_batches_.fetch_add(1, std::memory_order_relaxed);
    pool_metrics().child_batches.add();
  } else {
    batches_.fetch_add(1, std::memory_order_relaxed);
    pool_metrics().batches.add();
  }
  if (workers_ <= 1) {
    // Inline compatibility path: no threads, no queues — the exact serial
    // loop. Reentrant calls (a cell's episode batch) are plain nested loops.
    ++inline_depth_;
    const bool nested = inline_depth_ > 1;
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    --inline_depth_;
    // fetch_add, not bump: the threadless pool runs on the CALLER's thread,
    // and nothing pins successive external batches to one caller.
    WorkerStats& slot = worker_stats_[0];
    slot.tasks.fetch_add(count, std::memory_order_relaxed);
    PoolMetrics& metrics = pool_metrics();
    metrics.tasks.add(count);
    if (nested) {
      // Inline children are by definition executed by their submitter —
      // count them as helped so the helped + child_steals == child_tasks
      // conservation law holds on the threadless path too.
      slot.child_tasks.fetch_add(count, std::memory_order_relaxed);
      slot.helped.fetch_add(count, std::memory_order_relaxed);
      metrics.child_tasks.add(count);
      metrics.helped.add(count);
    }
    return;
  }
  if (worker != kNoWorker) {
    run_child_batch(count, fn, worker);
  } else {
    run_external_batch(count, fn);
  }
}

std::size_t ExplorePool::drain() {
  // Sweep every deque first, then credit the groups: a group whose last
  // queued task is dropped here may have a waiter that destroys it the
  // moment pending hits zero, so the latch update is the final touch.
  std::vector<Task> dropped;
  for (const std::unique_ptr<WorkerDeque>& deque : deques_) {
    const std::lock_guard<std::mutex> lock(deque->mutex);
    dropped.insert(dropped.end(), deque->tasks.begin(), deque->tasks.end());
    deque->tasks.clear();
  }
  if (dropped.empty()) return 0;
  queued_.fetch_sub(dropped.size(), std::memory_order_relaxed);
  pool_metrics().drained.add(dropped.size());
  for (const Task& task : dropped) {
    const std::lock_guard<std::mutex> lock(task.group->mutex);
    if (--task.group->pending == 0) task.group->done.notify_all();
  }
  return dropped.size();
}

std::vector<CloneOutcome> ExplorePool::explore(const std::vector<CloneTask>& tasks,
                                               const CheckFn& check) {
  std::vector<CloneOutcome> outcomes(tasks.size());
  run_batch(tasks.size(), [&](std::size_t index, std::size_t worker) {
    outcomes[index] = run_clone_task(tasks[index], check, &arena(worker));
  });
  return outcomes;
}

ExplorePool::Stats ExplorePool::stats() const {
  Stats merged;
  merged.batches = batches_.load(std::memory_order_relaxed);
  merged.child_batches = child_batches_.load(std::memory_order_relaxed);
  merged.worker_tasks.resize(workers_, 0);
  for (std::size_t w = 0; w < workers_; ++w) {
    const WorkerStats& slot = worker_stats_[w];
    const std::uint64_t tasks = slot.tasks.load(std::memory_order_relaxed);
    merged.worker_tasks[w] = tasks;
    merged.tasks_run += tasks;
    merged.child_tasks += slot.child_tasks.load(std::memory_order_relaxed);
    merged.steals += slot.steals.load(std::memory_order_relaxed);
    merged.child_steals += slot.child_steals.load(std::memory_order_relaxed);
    merged.helped += slot.helped.load(std::memory_order_relaxed);
  }
  return merged;
}

}  // namespace dice::explore
