// SolverCache: concurrent memoization of path-constraint solving.
//
// Concolic episodes re-derive structurally identical branch negations over
// and over — every episode rebuilds its ExprPool from scratch, and every
// clone of the same explorer walks the same UPDATE-handler branches. The
// cache keys queries by concolic::constraints_key (a pool-independent
// structural hash of the conjunction) and stores either a concretely
// verified model or a proven-UNSAT marker, so later episodes — possibly on
// other workers — skip the whole solving pipeline.
//
// Lock-striped: keys shard onto independent mutex-guarded maps, so
// concurrent ScenarioMatrix cells sharing one cache rarely contend.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "concolic/solver.hpp"
#include "util/bytes.hpp"

namespace dice::explore {

class SolverCache final : public concolic::SolverMemo {
 public:
  explicit SolverCache(std::size_t shards = 16);

  [[nodiscard]] bool lookup(std::uint64_t key, std::optional<util::Bytes>& result) override;
  void store(std::uint64_t key, const std::optional<util::Bytes>& result) override;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t entries = 0;
    std::uint64_t sat_entries = 0;  ///< entries holding a model (rest: proven UNSAT)
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Every key currently holding a proven-UNSAT marker, in ascending order
  /// (stable bytes for persistence). UNSAT entries are the only part of the
  /// memo that is sound to replay across runs and processes: a seeded hit
  /// skips solving with the exact verdict a fresh solve would reach,
  /// whereas a replayed SAT *model* could differ byte-wise from the one a
  /// fresh solve produces and move fault bytes.
  [[nodiscard]] std::vector<std::uint64_t> unsat_keys() const;

  /// Pre-loads proven-UNSAT markers (svc::ArtifactStore warm start,
  /// MatrixOptions::unsat_seed). First write wins, exactly like store():
  /// seeding never overwrites an existing entry. Does not count toward the
  /// hits/misses/stores traffic stats — seeded entries only show up in
  /// `entries`.
  void seed_unsat(const std::vector<std::uint64_t>& keys);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::optional<util::Bytes>> entries;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key) const {
    return *shards_[key % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
};

}  // namespace dice::explore
